#include "core/parallel_run.h"

#include <cstdio>
#include <stdexcept>
#include <vector>

namespace ickpt {

namespace {

std::string step_commit_key(int step) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "step-commit/%012d", step);
  return buf;
}

/// Newest globally committed step, or -1.
int last_committed_step(storage::StorageBackend& storage) {
  auto keys = storage.list();
  if (!keys.is_ok()) return -1;
  int best = -1;
  for (const auto& k : *keys) {
    int step = 0;
    if (std::sscanf(k.c_str(), "step-commit/%d", &step) == 1) {
      best = std::max(best, step);
    }
  }
  return best;
}

}  // namespace

Result<ParallelRunResult> run_parallel_recoverable(
    storage::StorageBackend& storage, const ParallelRunOptions& options,
    const ParallelBody& body) {
  if (options.nprocs < 1) return invalid_argument("nprocs must be >= 1");
  if (options.checkpoint_every < 1) {
    return invalid_argument("checkpoint_every must be >= 1");
  }

  const int committed = last_committed_step(storage);
  std::vector<Status> rank_status(
      static_cast<std::size_t>(options.nprocs));
  std::vector<int> first_steps(static_cast<std::size_t>(options.nprocs), 0);

  bool threw = false;
  std::string thrown_what;
  auto run_world = [&](const std::function<void(mpi::Comm&)>& fn) {
    try {
      mpi::Runtime::run(options.nprocs, fn);
    } catch (const std::exception& e) {
      threw = true;
      thrown_what = e.what();
    }
  };

  run_world([&](mpi::Comm& comm) {
    auto fail = [&](Status st) {
      rank_status[static_cast<std::size_t>(comm.rank())] = st;
      throw std::runtime_error("parallel run failed on rank " +
                               std::to_string(comm.rank()) + ": " +
                               st.to_string());
    };

    RecoverableRun::Options ropts;
    ropts.rank = static_cast<std::uint32_t>(comm.rank());
    ropts.checkpoint_every = options.checkpoint_every;
    ropts.full_every = options.full_every;
    ropts.engine = options.engine;
    auto run = RecoverableRun::create(storage, ropts);
    if (!run.is_ok()) fail(run.status());

    RankContext ctx{comm, **run};
    if (Status st = body(ctx, /*declare=*/true, -1); !st.is_ok()) {
      fail(st);
    }
    auto first = (*run)->begin(committed);
    if (!first.is_ok()) fail(first.status());
    first_steps[static_cast<std::size_t>(comm.rank())] = *first;

    // Ranks must agree on the resume point (the commit protocol
    // guarantees every rank checkpointed the committed step).
    double max_first = comm.allreduce_max(static_cast<double>(*first));
    if (static_cast<int>(max_first) != *first) {
      fail(internal_error("ranks disagree on the resume step"));
    }

    for (int step = *first; step < options.total_steps; ++step) {
      if (Status st = body(ctx, /*declare=*/false, step); !st.is_ok()) {
        fail(st);
      }
      if (Status st = (*run)->did_step(step); !st.is_ok()) fail(st);

      if ((step + 1) % options.checkpoint_every == 0) {
        // Global commit: all local checkpoints for `step` are durable
        // once everyone reaches this point; rank 0 then publishes the
        // marker.  A crash before the marker rolls the world back to
        // the previous commit — consistently on every rank.
        comm.barrier();
        if (comm.rank() == 0) {
          auto w = storage.create(step_commit_key(step));
          if (!w.is_ok()) fail(w.status());
          std::uint64_t payload[2] = {
              static_cast<std::uint64_t>(step),
              static_cast<std::uint64_t>(comm.size())};
          if (Status st = (*w)->write(
                  {reinterpret_cast<const std::byte*>(payload),
                   sizeof payload});
              !st.is_ok()) {
            fail(st);
          }
          if (Status st = (*w)->close(); !st.is_ok()) fail(st);
        }
        comm.barrier();
      }
    }
  });

  for (const Status& st : rank_status) {
    if (!st.is_ok()) return st;
  }
  if (threw) return internal_error(thrown_what);
  ParallelRunResult result;
  result.first_step = first_steps[0];
  result.committed_steps = last_committed_step(storage) + 1;
  return result;
}

}  // namespace ickpt

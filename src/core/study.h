// FeasibilityStudy: run one calibrated proxy application under
// timeslice sampling and return the measured series and statistics —
// the workhorse behind every table/figure reproduction.
//
// Single-rank studies run the kernel serially; multi-rank studies
// launch one thread per rank over minimpi with per-rank trackers,
// clocks and samplers (weak scaling: per-rank footprint is constant).
#pragma once

#include <string>
#include <vector>

#include "analysis/metrics.h"
#include "common/status.h"
#include "memtrack/tracker.h"
#include "obs/metrics.h"
#include "trace/time_series.h"
#include "trace/write_trace.h"

namespace ickpt {

struct StudyConfig {
  std::string app = "sage-1000";
  memtrack::EngineKind engine = memtrack::EngineKind::kMProtect;
  double timeslice = 1.0;       ///< virtual seconds
  double sample_phase = 0.0;    ///< offset of the first slice boundary
  double run_vs = 0.0;          ///< virtual run length; 0 = auto
  double footprint_scale = 1.0 / 16.0;
  int nprocs = 1;               ///< ranks (threads); 1 = serial
  int tracked_ranks = -1;       ///< ranks that carry a sampler; -1 = all
  std::uint64_t seed = 42;
  bool include_init = false;    ///< sample the initialization burst too
  bool capture_trace = false;   ///< record rank 0's dirty pages per slice

  /// When non-empty, rank 0 additionally writes a real incremental
  /// checkpoint chain to this directory (file backend) at every
  /// timeslice — the study then measures checkpointing itself, not
  /// just the dirty-page series it would consume.
  std::string checkpoint_dir;
  /// Store the chain in a log-structured segment store instead of
  /// one-file-per-object (storage::SegmentBackend vs FileBackend).
  bool segment_store = false;
  int encode_threads = 1;       ///< page-encode workers (see Checkpointer)
  bool async_writes = false;    ///< overlap backend I/O via AsyncWriter
  bool compress = true;         ///< per-page compression for the chain
};

struct StudyResult {
  /// Per-rank sample series (index = rank; serial runs have one).
  std::vector<trace::TimeSeries> per_rank;
  /// IB stats of rank 0 (the paper plots a single representative
  /// process; bulk-synchrony makes ranks near-identical, Section 6.1).
  analysis::IBStats ib;
  analysis::FootprintStats footprint;
  /// Mean over tracked ranks of each rank's average IB (bytes/s).
  double mean_rank_avg_ib = 0;
  double period_s = 0;          ///< the kernel's nominal period
  std::uint64_t iterations = 0; ///< completed by rank 0

  /// Rank 0's per-slice write trace (populated when
  /// StudyConfig::capture_trace is set) — replayable via
  /// trace::WriteTrace::replay or `ickpt replay`.
  trace::WriteTrace write_trace;

  /// Checkpoint-chain stats (populated when checkpoint_dir is set).
  std::uint64_t ckpt_objects = 0;   ///< checkpoints written
  std::uint64_t ckpt_bytes = 0;     ///< bytes stored (compressed)
  std::uint64_t ckpt_pages = 0;     ///< payload pages covered
  double ckpt_encode_seconds = 0;   ///< wall time inside the writer

  /// Process-wide observability snapshot taken when the study ended:
  /// fault-handler cost, per-stage checkpoint timing, storage and
  /// async-queue metrics (see obs/metrics.h).  `ickpt study --stats`
  /// prints it; obs::Snapshot::to_json() serializes it.
  obs::Snapshot metrics;
};

/// Auto run length: enough iterations and enough slices for stable
/// statistics (min 4 periods, min 40 slices, capped at 1200 vs).
double auto_run_length(double period_s, double timeslice);

Result<StudyResult> run_study(const StudyConfig& config);

}  // namespace ickpt

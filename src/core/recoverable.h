// RecoverableRun: checkpointed execution of a stepwise computation
// with automatic restart — the "self-heal and self-repair" loop the
// paper's autonomic-computing motivation calls for (§1).
//
// Usage:
//   RecoverableRun run(backend, {.checkpoint_every = 5});
//   auto grid = run.add_block(bytes, "grid");     // user state
//   int first = *run.begin();                     // 0, or resume point
//   for (int s = first; s < total; ++s) {
//     compute(grid, s);
//     ICKPT_RETURN_IF_ERROR(run.did_step(s));
//   }
//
// If the process dies, re-running the same program against the same
// storage restores every block from the newest checkpoint chain and
// begin() returns the step to resume from.  Dirty tracking makes the
// periodic checkpoints incremental.
#pragma once

#include <climits>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "checkpoint/checkpointer.h"
#include "common/status.h"
#include "memtrack/tracker.h"
#include "region/address_space.h"
#include "storage/backend.h"

namespace ickpt {

class RecoverableRun {
 public:
  struct Options {
    std::uint32_t rank = 0;
    int checkpoint_every = 1;        ///< steps between checkpoints
    std::uint64_t full_every = 16;   ///< re-seed the chain periodically
    memtrack::EngineKind engine = memtrack::EngineKind::kMProtect;
    /// When the chain's tail is damaged (the likely outcome of dying
    /// mid-write), resume from the newest valid prefix instead of
    /// refusing to start.  Set false to surface tail corruption as an
    /// error from begin().
    bool allow_truncated_tail = true;
  };

  /// Fails if the requested engine is unavailable.
  static Result<std::unique_ptr<RecoverableRun>> create(
      storage::StorageBackend& backend, Options options);

  ~RecoverableRun();
  RecoverableRun(const RecoverableRun&) = delete;
  RecoverableRun& operator=(const RecoverableRun&) = delete;

  /// Declare a state block (before begin()).  Block declarations must
  /// be identical across restarts — they define the recovery layout.
  Result<std::span<std::byte>> add_block(std::size_t bytes,
                                         std::string name);

  /// Start or resume: if the backend holds a checkpoint chain for this
  /// rank, restore every declared block from it and return the next
  /// step index; otherwise return 0.  Arms dirty tracking either way.
  /// `max_step` bounds how far the resume point may lie: recovery
  /// walks back through the chain until the recovered step is
  /// <= max_step (coordinated restarts pass the last globally
  /// committed step; locally newer, never-committed checkpoints are
  /// discarded).
  Result<int> begin(int max_step = INT_MAX);

  /// Record step completion; takes an incremental checkpoint every
  /// `checkpoint_every` steps (and garbage-collects obsolete chain
  /// prefixes after each full checkpoint).
  Status did_step(int step);

  /// Force a checkpoint at the current step immediately.
  Status checkpoint_now();

  region::AddressSpace& space() noexcept { return *space_; }
  const checkpoint::Checkpointer& checkpointer() const noexcept {
    return *checkpointer_;
  }
  int last_checkpointed_step() const noexcept { return last_step_; }

 private:
  RecoverableRun(storage::StorageBackend& backend, Options options,
                 std::unique_ptr<memtrack::DirtyTracker> tracker);

  Status take_checkpoint(int step);

  storage::StorageBackend& backend_;
  Options options_;
  std::unique_ptr<memtrack::DirtyTracker> tracker_;
  std::unique_ptr<region::AddressSpace> space_;
  std::unique_ptr<checkpoint::Checkpointer> checkpointer_;

  struct DeclaredBlock {
    std::string name;
    std::size_t bytes;
    region::BlockId id;
  };
  std::vector<DeclaredBlock> blocks_;
  region::BlockId meta_block_ = region::kInvalidBlock;
  bool begun_ = false;
  int last_step_ = -1;
};

}  // namespace ickpt

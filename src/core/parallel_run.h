// Parallel recoverable execution: RecoverableRun across minimpi ranks
// with coordinated commits — the full autonomic loop for a parallel
// application.
//
// Every rank owns a private RecoverableRun (its own chain in shared
// storage); step completion is committed *globally*: after each
// checkpointed step the ranks agree (allreduce) and rank 0 writes a
// step-commit marker.  On restart, every rank resumes from the newest
// globally-committed step, even if some rank had locally checkpointed
// further — no rank can run ahead of a consistent recovery line.
#pragma once

#include <functional>

#include "core/recoverable.h"
#include "minimpi/comm.h"

namespace ickpt {

struct ParallelRunOptions {
  int nprocs = 2;
  int total_steps = 10;
  int checkpoint_every = 1;
  std::uint64_t full_every = 16;
  memtrack::EngineKind engine = memtrack::EngineKind::kMProtect;
};

/// Per-rank context handed to the body.
struct RankContext {
  mpi::Comm& comm;
  RecoverableRun& run;
};

/// Rank body: declare blocks via ctx.run.add_block() when `declare` is
/// true (called before begin()); afterwards called once per step with
/// `step` >= 0.  Return a non-OK status to abort the world.
using ParallelBody =
    std::function<Status(RankContext& ctx, bool declare, int step)>;

struct ParallelRunResult {
  int first_step = 0;       ///< step the ranks resumed from (0 = fresh)
  int committed_steps = 0;  ///< globally committed after the run
};

/// Run (or resume) the parallel computation.  Rank r's chain lives
/// under "rank<r>/" in `storage`; step commits under "step-commit/".
Result<ParallelRunResult> run_parallel_recoverable(
    storage::StorageBackend& storage, const ParallelRunOptions& options,
    const ParallelBody& body);

}  // namespace ickpt

// ickpt::Monitor — the library-level equivalent of the paper's
// LD_PRELOAD instrumentation: attach your data arrays, start a
// wall-clock timeslice, run your computation unmodified, and read back
// the IWS/IB series.
//
//   ickpt::Monitor monitor({.engine = EngineKind::kMProtect,
//                           .timeslice = 1.0});
//   monitor.attach(my_field, "pressure");
//   monitor.start();
//   ... run solver ...
//   monitor.stop();
//   auto stats = monitor.ib_stats();
#pragma once

#include <memory>
#include <span>
#include <string>

#include "analysis/feasibility.h"
#include "analysis/metrics.h"
#include "common/status.h"
#include "memtrack/tracker.h"
#include "sim/sampler.h"

namespace ickpt {

struct MonitorOptions {
  memtrack::EngineKind engine = memtrack::EngineKind::kMProtect;
  double timeslice = 1.0;  ///< wall seconds between samples
};

class Monitor {
 public:
  /// Fails if the requested engine is unavailable (e.g. soft-dirty on
  /// kernels without CONFIG_MEM_SOFT_DIRTY).
  static Result<std::unique_ptr<Monitor>> create(MonitorOptions options);

  ~Monitor();
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Attach a page-aligned range of application memory.
  Result<memtrack::RegionId> attach(std::span<std::byte> mem,
                                    std::string name);
  Status detach(memtrack::RegionId id);

  Status start();
  void stop();

  /// Samples recorded so far (thread-safe snapshot).
  trace::TimeSeries series() const;

  analysis::IBStats ib_stats(std::size_t skip_first = 0) const;
  analysis::FeasibilityVerdict feasibility(std::size_t skip_first = 0) const;

  memtrack::DirtyTracker& tracker() noexcept { return *tracker_; }

 private:
  Monitor(MonitorOptions options,
          std::unique_ptr<memtrack::DirtyTracker> tracker);

  MonitorOptions options_;
  std::unique_ptr<memtrack::DirtyTracker> tracker_;
  std::unique_ptr<sim::WallClockSampler> sampler_;
};

}  // namespace ickpt

#include "core/recoverable.h"

#include <cstring>

#include "checkpoint/restore.h"
#include "common/page.h"

namespace ickpt {

namespace {
/// The hidden metadata block: last completed step, stored in tracked
/// memory so it rides inside every checkpoint.
struct RunMeta {
  std::int64_t last_step = -1;
  std::uint64_t magic = 0x69636b7072756e01ull;  // "ickprun" v1
};
}  // namespace

Result<std::unique_ptr<RecoverableRun>> RecoverableRun::create(
    storage::StorageBackend& backend, Options options) {
  if (options.checkpoint_every < 1) {
    return invalid_argument("checkpoint_every must be >= 1");
  }
  auto tracker = memtrack::make_tracker(options.engine);
  if (!tracker.is_ok()) return tracker.status();
  std::unique_ptr<RecoverableRun> run(
      new RecoverableRun(backend, options, std::move(tracker.value())));
  // Built through the validating factory so bad options surface here,
  // not as misbehaviour deep inside the run.
  checkpoint::CheckpointerOptions copts;
  copts.rank = options.rank;
  copts.full_every = options.full_every;
  auto ckpt = checkpoint::Checkpointer::create(*run->space_, &backend, copts);
  if (!ckpt.is_ok()) return ckpt.status();
  run->checkpointer_ = std::move(ckpt.value());
  return run;
}

RecoverableRun::RecoverableRun(
    storage::StorageBackend& backend, Options options,
    std::unique_ptr<memtrack::DirtyTracker> tracker)
    : backend_(backend), options_(options), tracker_(std::move(tracker)) {
  space_ = std::make_unique<region::AddressSpace>(
      *tracker_, "rank" + std::to_string(options_.rank));
}

RecoverableRun::~RecoverableRun() = default;

Result<std::span<std::byte>> RecoverableRun::add_block(std::size_t bytes,
                                                       std::string name) {
  if (begun_) return failed_precondition("add_block after begin()");
  auto ref = space_->map(bytes, region::AreaKind::kHeap, name);
  if (!ref.is_ok()) return ref.status();
  blocks_.push_back(DeclaredBlock{std::move(name), bytes, ref->id});
  return ref->mem;
}

Result<int> RecoverableRun::begin(int max_step) {
  if (begun_) return failed_precondition("begin() called twice");
  // The meta block is mapped last so user block ids are stable whether
  // or not recovery happens.
  auto meta_ref = space_->map(sizeof(RunMeta), region::AreaKind::kHeap,
                              "__ickpt_meta");
  if (!meta_ref.is_ok()) return meta_ref.status();
  meta_block_ = meta_ref->id;
  auto* meta = reinterpret_cast<RunMeta*>(meta_ref->mem.data());
  *meta = RunMeta{};
  begun_ = true;

  int resume_step = 0;
  checkpoint::RestoreOptions ropts;
  ropts.allow_truncated_tail = options_.allow_truncated_tail;
  auto state = checkpoint::restore_chain(backend_, options_.rank, ropts);
  // Honour the resume bound: walk the chain backwards until the
  // recovered step is within it (coordinated restart must not resume
  // past the last globally committed step).
  while (state.is_ok()) {
    checkpoint::RestoredState& s = state.value();
    auto it = s.blocks.rbegin();
    if (it == s.blocks.rend()) break;
    RunMeta recovered;
    if (it->second.data.size() < sizeof recovered) break;
    std::memcpy(&recovered, it->second.data.data(), sizeof recovered);
    if (recovered.last_step <= max_step) break;
    if (s.sequence == 0) {
      state = not_found("no checkpoint at or before the resume bound");
      break;
    }
    ropts.upto = s.sequence - 1;
    state = checkpoint::restore_chain(backend_, options_.rank, ropts);
  }
  if (state.is_ok()) {
    // Recovery path: restored blocks map onto declared blocks by
    // position (block ids are assigned deterministically: user blocks
    // in declaration order, then the meta block).
    if (state->blocks.size() != blocks_.size() + 1) {
      return corruption(
          "checkpoint layout does not match declared blocks");
    }
    auto it = state->blocks.begin();
    for (const DeclaredBlock& decl : blocks_) {
      const auto& restored = it->second;
      auto span = space_->block_span(decl.id);
      if (!span.is_ok()) return span.status();
      if (restored.data.size() != span->size()) {
        return corruption("block '" + decl.name +
                          "' size changed across restart");
      }
      std::memcpy(span->data(), restored.data.data(), span->size());
      ++it;
    }
    // Last restored block is the meta block.
    const auto& restored_meta = it->second;
    if (restored_meta.data.size() < sizeof(RunMeta)) {
      return corruption("meta block truncated");
    }
    RunMeta recovered;
    std::memcpy(&recovered, restored_meta.data.data(), sizeof recovered);
    if (recovered.magic != RunMeta{}.magic) {
      return corruption("meta block magic mismatch");
    }
    *meta = recovered;
    last_step_ = static_cast<int>(recovered.last_step);
    resume_step = last_step_ + 1;
    // Continue the existing chain rather than overwriting it.
    // (Sequence numbers restart per process; keep history separate by
    // truncating the old chain to its last full + applying ours on
    // top would interleave sequences, so instead clear and re-seed.)
    auto keys = backend_.list();
    if (keys.is_ok()) {
      const std::string prefix = "rank" + std::to_string(options_.rank) + "/";
      for (const auto& k : *keys) {
        if (k.rfind(prefix, 0) == 0) (void)backend_.remove(k);
      }
    }
    ICKPT_RETURN_IF_ERROR(tracker_->arm());
    // Re-seed with a full checkpoint of the recovered state so a crash
    // right after recovery still has a valid chain.
    auto seeded = checkpointer_->checkpoint_full(
        static_cast<double>(resume_step));
    if (!seeded.is_ok()) return seeded.status();
    return resume_step;
  }
  if (state.status().code() != ErrorCode::kNotFound) {
    return state.status();  // real storage/corruption problem
  }
  // Fresh start.  Remove any stale (never-committed) chain so the
  // re-seeded sequence numbers don't interleave with dead history.
  auto keys = backend_.list();
  if (keys.is_ok()) {
    const std::string prefix = "rank" + std::to_string(options_.rank) + "/";
    for (const auto& k : *keys) {
      if (k.rfind(prefix, 0) == 0) (void)backend_.remove(k);
    }
  }
  ICKPT_RETURN_IF_ERROR(tracker_->arm());
  return resume_step;
}

Status RecoverableRun::take_checkpoint(int step) {
  auto meta_span = space_->block_span(meta_block_);
  if (!meta_span.is_ok()) return meta_span.status();
  auto* meta = reinterpret_cast<RunMeta*>(meta_span->data());
  meta->last_step = step;
  tracker_->note_write(meta, sizeof(RunMeta));

  auto snap = tracker_->collect(/*rearm=*/true);
  if (!snap.is_ok()) return snap.status();
  auto written = checkpointer_->checkpoint_incremental(
      *snap, static_cast<double>(step));
  if (!written.is_ok()) return written.status();
  if (written->kind == checkpoint::Kind::kFull) {
    ICKPT_RETURN_IF_ERROR(checkpointer_->truncate_before_last_full());
  }
  last_step_ = step;
  return Status::ok();
}

Status RecoverableRun::did_step(int step) {
  if (!begun_) return failed_precondition("did_step before begin()");
  if ((step + 1) % options_.checkpoint_every != 0) return Status::ok();
  return take_checkpoint(step);
}

Status RecoverableRun::checkpoint_now() {
  if (!begun_) return failed_precondition("checkpoint_now before begin()");
  return take_checkpoint(last_step_ < 0 ? 0 : last_step_);
}

}  // namespace ickpt

#include "core/monitor.h"

namespace ickpt {

Result<std::unique_ptr<Monitor>> Monitor::create(MonitorOptions options) {
  if (options.timeslice <= 0) {
    return invalid_argument("Monitor: timeslice must be positive");
  }
  auto tracker = memtrack::make_tracker(options.engine);
  if (!tracker.is_ok()) return tracker.status();
  return std::unique_ptr<Monitor>(
      new Monitor(options, std::move(tracker.value())));
}

Monitor::Monitor(MonitorOptions options,
                 std::unique_ptr<memtrack::DirtyTracker> tracker)
    : options_(options), tracker_(std::move(tracker)) {
  sim::SamplerOptions sopts;
  sopts.timeslice = options_.timeslice;
  sampler_ = std::make_unique<sim::WallClockSampler>(*tracker_, sopts);
}

Monitor::~Monitor() { stop(); }

Result<memtrack::RegionId> Monitor::attach(std::span<std::byte> mem,
                                           std::string name) {
  return tracker_->attach(mem, std::move(name));
}

Status Monitor::detach(memtrack::RegionId id) { return tracker_->detach(id); }

Status Monitor::start() { return sampler_->start(); }

void Monitor::stop() { sampler_->stop(); }

trace::TimeSeries Monitor::series() const { return sampler_->series(); }

analysis::IBStats Monitor::ib_stats(std::size_t skip_first) const {
  return analysis::compute_ib_stats(sampler_->series(), skip_first);
}

analysis::FeasibilityVerdict Monitor::feasibility(
    std::size_t skip_first) const {
  return analysis::assess_feasibility(ib_stats(skip_first));
}

}  // namespace ickpt

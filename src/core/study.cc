#include "core/study.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "apps/catalog.h"
#include "apps/scripted_kernel.h"
#include "minimpi/comm.h"
#include "sim/sampler.h"
#include "sim/virtual_clock.h"

namespace ickpt {

double auto_run_length(double period_s, double timeslice) {
  double len = std::max(4.0 * period_s, 40.0 * timeslice);
  return std::min(len, 1200.0);
}

namespace {

struct RankOutcome {
  trace::TimeSeries series;
  trace::WriteTrace write_trace;
  std::uint64_t iterations = 0;
  Status status;
};

/// Body executed by each rank (and by the serial path with comm ==
/// nullptr).
RankOutcome run_rank(const StudyConfig& config, double run_vs,
                     mpi::Comm* comm, int rank, bool tracked) {
  RankOutcome out;
  auto tracker = memtrack::make_tracker(config.engine);
  if (!tracker.is_ok()) {
    out.status = tracker.status();
    return out;
  }
  sim::VirtualClock clock;

  apps::AppConfig app_config;
  app_config.footprint_scale = config.footprint_scale;
  app_config.nprocs = config.nprocs;
  app_config.comm = comm;
  app_config.seed = config.seed + static_cast<std::uint64_t>(rank) * 7919;

  auto app = apps::make_app(config.app, app_config, **tracker, clock);
  if (!app.is_ok()) {
    out.status = app.status();
    return out;
  }

  sim::SamplerOptions sopts;
  sopts.timeslice = config.timeslice;
  sopts.phase = config.sample_phase;
  if (comm != nullptr) {
    sopts.recv_probe = [comm] { return comm->bytes_received(); };
    sopts.sent_probe = [comm] { return comm->bytes_sent(); };
  }
  out.write_trace = trace::WriteTrace(0, config.timeslice);
  if (config.capture_trace && rank == 0) {
    // Record each slice's dirty pages in a concatenated logical page
    // space (regions in snapshot order).  Replay reproduces the IWS
    // series; page identity across dynamic remaps is positional.
    sopts.on_sample = [&out](const trace::Sample& s,
                             const memtrack::DirtySnapshot& snap) {
      std::size_t base = 0;
      for (const auto& region : snap.regions) {
        std::size_t i = 0;
        const auto& dirty = region.dirty_pages;
        while (i < dirty.size()) {
          std::size_t j = i + 1;
          while (j < dirty.size() && dirty[j] == dirty[j - 1] + 1) ++j;
          out.write_trace.record(
              s.index,
              static_cast<std::uint32_t>(base + dirty[i]),
              static_cast<std::uint32_t>(j - i));
          i = j;
        }
        base += region.range.pages();
      }
      out.write_trace.set_region_pages(base);
    };
  }
  sim::TimesliceSampler sampler(**tracker, clock, sopts);

  auto run = [&]() -> Status {
    if (config.include_init) {
      ICKPT_RETURN_IF_ERROR(sampler.start());
      ICKPT_RETURN_IF_ERROR((*app)->init());
    } else {
      // The paper excludes the initialization write burst (§6.3):
      // initialize first, then begin sampling.
      ICKPT_RETURN_IF_ERROR((*app)->init());
      if (tracked) ICKPT_RETURN_IF_ERROR(sampler.start());
    }
    double until = clock.now() + run_vs;
    return (*app)->run_until(clock, until);
  };
  out.status = run();
  if (tracked && sampler.running()) sampler.stop();
  out.series = sampler.take_series();
  out.iterations = (*app)->iterations();
  return out;
}

}  // namespace

Result<StudyResult> run_study(const StudyConfig& config) {
  auto period = apps::app_period(config.app);
  if (!period.is_ok()) return period.status();
  if (config.nprocs < 1) return invalid_argument("nprocs must be >= 1");
  if (config.timeslice <= 0) return invalid_argument("timeslice must be > 0");

  const double run_vs = config.run_vs > 0
                            ? config.run_vs
                            : auto_run_length(*period, config.timeslice);
  const int tracked =
      config.tracked_ranks < 0 ? config.nprocs
                               : std::min(config.tracked_ranks, config.nprocs);

  std::vector<RankOutcome> outcomes(
      static_cast<std::size_t>(config.nprocs));

  if (config.nprocs == 1) {
    outcomes[0] = run_rank(config, run_vs, nullptr, 0, true);
  } else {
    mpi::Runtime::run(config.nprocs, [&](mpi::Comm& comm) {
      int r = comm.rank();
      outcomes[static_cast<std::size_t>(r)] =
          run_rank(config, run_vs, &comm, r, r < tracked);
    });
  }
  for (const auto& o : outcomes) {
    if (!o.status.is_ok()) return o.status;
  }

  StudyResult result;
  result.period_s = *period;
  result.iterations = outcomes[0].iterations;
  result.per_rank.reserve(outcomes.size());
  for (auto& o : outcomes) result.per_rank.push_back(std::move(o.series));

  result.write_trace = std::move(outcomes[0].write_trace);
  result.ib = analysis::compute_ib_stats(result.per_rank[0]);
  result.footprint = analysis::compute_footprint_stats(result.per_rank[0]);

  double acc = 0;
  int n = 0;
  for (int r = 0; r < tracked; ++r) {
    const auto& series = result.per_rank[static_cast<std::size_t>(r)];
    if (series.empty()) continue;
    acc += analysis::compute_ib_stats(series).avg_ib;
    ++n;
  }
  result.mean_rank_avg_ib = n > 0 ? acc / n : 0;
  return result;
}

}  // namespace ickpt

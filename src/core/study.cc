#include "core/study.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

#include "apps/catalog.h"
#include "apps/scripted_kernel.h"
#include "checkpoint/checkpointer.h"
#include "minimpi/comm.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/sampler.h"
#include "sim/virtual_clock.h"
#include "storage/backend.h"
#include "storage/segment_backend.h"

namespace ickpt {

double auto_run_length(double period_s, double timeslice) {
  double len = std::max(4.0 * period_s, 40.0 * timeslice);
  return std::min(len, 1200.0);
}

namespace {

struct RankOutcome {
  trace::TimeSeries series;
  trace::WriteTrace write_trace;
  std::uint64_t iterations = 0;
  Status status;
  std::uint64_t ckpt_objects = 0;
  std::uint64_t ckpt_bytes = 0;
  std::uint64_t ckpt_pages = 0;
  double ckpt_encode_seconds = 0;
};

/// Body executed by each rank (and by the serial path with comm ==
/// nullptr).
RankOutcome run_rank(const StudyConfig& config, double run_vs,
                     mpi::Comm* comm, int rank, bool tracked) {
  RankOutcome out;
  auto tracker = memtrack::make_tracker(config.engine);
  if (!tracker.is_ok()) {
    out.status = tracker.status();
    return out;
  }
  sim::VirtualClock clock;

  apps::AppConfig app_config;
  app_config.footprint_scale = config.footprint_scale;
  app_config.nprocs = config.nprocs;
  app_config.comm = comm;
  app_config.seed = config.seed + static_cast<std::uint64_t>(rank) * 7919;

  auto app = apps::make_app(config.app, app_config, **tracker, clock);
  if (!app.is_ok()) {
    out.status = app.status();
    return out;
  }

  sim::SamplerOptions sopts;
  sopts.timeslice = config.timeslice;
  sopts.phase = config.sample_phase;
  if (comm != nullptr) {
    sopts.recv_probe = [comm] { return comm->bytes_received(); };
    sopts.sent_probe = [comm] { return comm->bytes_sent(); };
  }
  // Optional real checkpoint chain for rank 0: every slice's snapshot
  // feeds an incremental checkpointer so the study measures actual
  // encode/write cost alongside the IWS series.
  std::unique_ptr<storage::StorageBackend> ckpt_backend;
  std::unique_ptr<storage::MeteredBackend> ckpt_metered;
  std::unique_ptr<checkpoint::Checkpointer> ckpt;
  if (!config.checkpoint_dir.empty() && rank == 0) {
    auto backend = config.segment_store
                       ? storage::make_segment_backend(config.checkpoint_dir)
                       : storage::make_file_backend(config.checkpoint_dir);
    if (!backend.is_ok()) {
      out.status = backend.status();
      return out;
    }
    ckpt_backend = std::move(backend.value());
    // The metered decorator feeds the "ckpt.store.*" registry metrics
    // (object count, bytes, write-latency histogram).
    ckpt_metered = std::make_unique<storage::MeteredBackend>(*ckpt_backend,
                                                             "ckpt.store");
    checkpoint::CheckpointerOptions copts;
    copts.compress = config.compress;
    copts.encode_threads = config.encode_threads;
    copts.async = config.async_writes;
    auto made = checkpoint::Checkpointer::create((*app)->space(),
                                                 ckpt_metered.get(), copts);
    if (!made.is_ok()) {
      out.status = made.status();
      return out;
    }
    ckpt = std::move(made.value());
  }

  out.write_trace = trace::WriteTrace(0, config.timeslice);
  if (config.capture_trace && rank == 0) {
    // Record each slice's dirty pages in a concatenated logical page
    // space (regions in snapshot order).  Replay reproduces the IWS
    // series; page identity across dynamic remaps is positional.
    sopts.on_sample = [&out](const trace::Sample& s,
                             const memtrack::DirtySnapshot& snap) {
      std::size_t base = 0;
      for (const auto& region : snap.regions) {
        std::size_t i = 0;
        const auto& dirty = region.dirty_pages;
        while (i < dirty.size()) {
          std::size_t j = i + 1;
          while (j < dirty.size() && dirty[j] == dirty[j - 1] + 1) ++j;
          out.write_trace.record(
              s.index,
              static_cast<std::uint32_t>(base + dirty[i]),
              static_cast<std::uint32_t>(j - i));
          i = j;
        }
        base += region.range.pages();
      }
      out.write_trace.set_region_pages(base);
    };
  }
  Status ckpt_status;
  if (ckpt != nullptr) {
    // Chain behind any trace-capture hook already installed.
    auto prev = std::move(sopts.on_sample);
    auto* ckpt_ptr = ckpt.get();
    sopts.on_sample = [&out, &ckpt_status, ckpt_ptr, prev = std::move(prev)](
                          const trace::Sample& s,
                          const memtrack::DirtySnapshot& snap) {
      if (prev) prev(s, snap);
      if (!ckpt_status.is_ok()) return;
      static const std::uint16_t t_slice =
          obs::trace_name("study.slice", obs::TraceCat::kStudy);
      obs::TraceSpan slice_span(t_slice, s.index);
      const auto t0 = std::chrono::steady_clock::now();
      auto meta = ckpt_ptr->checkpoint_incremental(snap, s.t_end);
      out.ckpt_encode_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (!meta.is_ok()) {
        ckpt_status = meta.status();
        return;
      }
      ++out.ckpt_objects;
      out.ckpt_pages += meta->payload_pages;
    };
  }

  sim::TimesliceSampler sampler(**tracker, clock, sopts);

  auto run = [&]() -> Status {
    if (config.include_init) {
      ICKPT_RETURN_IF_ERROR(sampler.start());
      ICKPT_RETURN_IF_ERROR((*app)->init());
    } else {
      // The paper excludes the initialization write burst (§6.3):
      // initialize first, then begin sampling.
      ICKPT_RETURN_IF_ERROR((*app)->init());
      if (tracked) ICKPT_RETURN_IF_ERROR(sampler.start());
    }
    double until = clock.now() + run_vs;
    return (*app)->run_until(clock, until);
  };
  out.status = run();
  if (tracked && sampler.running()) sampler.stop();
  if (ckpt != nullptr) {
    auto flushed = ckpt->flush();  // async barrier; no-op in sync mode
    if (out.status.is_ok() && !flushed.is_ok()) out.status = flushed;
    out.ckpt_bytes = ckpt_backend->total_bytes_stored();
  }
  if (out.status.is_ok() && !ckpt_status.is_ok()) out.status = ckpt_status;
  out.series = sampler.take_series();
  out.iterations = (*app)->iterations();
  return out;
}

}  // namespace

Result<StudyResult> run_study(const StudyConfig& config) {
  auto period = apps::app_period(config.app);
  if (!period.is_ok()) return period.status();
  if (config.nprocs < 1) return invalid_argument("nprocs must be >= 1");
  if (config.timeslice <= 0) return invalid_argument("timeslice must be > 0");

  const double run_vs = config.run_vs > 0
                            ? config.run_vs
                            : auto_run_length(*period, config.timeslice);
  // Studies that write a real chain arm the flight recorder: a crash
  // or restore failure then leaves a post-mortem next to the objects.
  if (!config.checkpoint_dir.empty()) {
    obs::flightrec::configure(config.checkpoint_dir);
  }
  const int tracked =
      config.tracked_ranks < 0 ? config.nprocs
                               : std::min(config.tracked_ranks, config.nprocs);

  std::vector<RankOutcome> outcomes(
      static_cast<std::size_t>(config.nprocs));

  if (config.nprocs == 1) {
    outcomes[0] = run_rank(config, run_vs, nullptr, 0, true);
  } else {
    mpi::Runtime::run(config.nprocs, [&](mpi::Comm& comm) {
      int r = comm.rank();
      outcomes[static_cast<std::size_t>(r)] =
          run_rank(config, run_vs, &comm, r, r < tracked);
    });
  }
  for (const auto& o : outcomes) {
    if (!o.status.is_ok()) return o.status;
  }

  StudyResult result;
  result.period_s = *period;
  result.iterations = outcomes[0].iterations;
  result.per_rank.reserve(outcomes.size());
  for (auto& o : outcomes) result.per_rank.push_back(std::move(o.series));

  result.write_trace = std::move(outcomes[0].write_trace);
  result.ckpt_objects = outcomes[0].ckpt_objects;
  result.ckpt_bytes = outcomes[0].ckpt_bytes;
  result.ckpt_pages = outcomes[0].ckpt_pages;
  result.ckpt_encode_seconds = outcomes[0].ckpt_encode_seconds;
  result.ib = analysis::compute_ib_stats(result.per_rank[0]);
  result.footprint = analysis::compute_footprint_stats(result.per_rank[0]);
  result.metrics = obs::registry().snapshot();

  double acc = 0;
  int n = 0;
  for (int r = 0; r < tracked; ++r) {
    const auto& series = result.per_rank[static_cast<std::size_t>(r)];
    if (series.empty()) continue;
    acc += analysis::compute_ib_stats(series).avg_ib;
    ++n;
  }
  result.mean_rank_avg_ib = n > 0 ? acc / n : 0;
  return result;
}

}  // namespace ickpt

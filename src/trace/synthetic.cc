#include "trace/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/page.h"
#include "common/units.h"

namespace ickpt::trace {

namespace {

/// Distinct bytes written in the window [t0, t1) relative to the
/// iteration that starts at phase 0 (times in seconds within one
/// period).  Approximates the executor: spike once at burst start,
/// hot counted once per window it intersects, cold accrues linearly.
double window_mb(const BurstModel& m, double t0, double t1) {
  const double burst_len = m.burst_frac * m.period_s;
  double mb = 0;
  // Spike lands at the first instant of the burst.
  if (t0 <= 0.0 && t1 > 0.0) mb += m.spike_mb;
  // Hot region: counted once if the window overlaps any burst time.
  double overlap = std::max(0.0, std::min(t1, burst_len) - std::max(t0, 0.0));
  if (overlap > 0) {
    mb += std::min(m.hot_mb, m.hot_mb * (t1 - t0));  // partial-second windows
    mb += m.cold_mb_per_s * overlap;
  }
  return std::min(mb, m.active_mb);
}

}  // namespace

TimeSeries synthesize(const BurstModel& model, double timeslice,
                      double duration) {
  TimeSeries out("synthetic");
  const std::size_t psize = page_size();
  std::uint64_t index = 0;
  for (double t = 0; t + timeslice <= duration + 1e-9; t += timeslice) {
    Sample s;
    s.index = index++;
    s.t_start = t;
    s.t_end = t + timeslice;

    double mb = 0;
    if (index == 1 && model.init_coverage > 0) {
      mb = model.init_coverage * model.footprint_mb;
    } else {
      // Sum contributions of every iteration the slice overlaps.
      double first_iter = std::floor(t / model.period_s);
      double last_iter = std::floor((t + timeslice) / model.period_s);
      for (double it = first_iter; it <= last_iter; ++it) {
        double base = it * model.period_s;
        mb += window_mb(model, t - base, t + timeslice - base);
      }
      mb = std::min(mb, model.footprint_mb);
      // Communication-gap receive traffic.
      double burst_len = model.burst_frac * model.period_s;
      double phase = t - first_iter * model.period_s;
      if (phase >= burst_len) {
        s.recv_bytes = static_cast<std::uint64_t>(
            model.comm_recv_mb_per_s * timeslice *
            static_cast<double>(kMB));
      }
    }
    s.iws_bytes = static_cast<std::size_t>(mb * static_cast<double>(kMB));
    s.iws_pages = (s.iws_bytes + psize - 1) / psize;
    s.footprint_bytes = static_cast<std::size_t>(
        model.footprint_mb * static_cast<double>(kMB));
    out.add(s);
  }
  return out;
}

double expected_avg_ib_mb(const BurstModel& m, double timeslice) {
  const double burst_len = m.burst_frac * m.period_s;
  // Per iteration: spike once + hot once per slice overlapping the
  // burst + cold linear, capped by the active set per slice.
  double slices_in_burst = burst_len / timeslice;
  double per_iter =
      m.spike_mb +
      std::min(m.hot_mb, m.hot_mb * timeslice) * slices_in_burst +
      m.cold_mb_per_s * burst_len;
  double capped = std::min(per_iter, m.active_mb * (slices_in_burst + 1));
  return capped / m.period_s;
}

}  // namespace ickpt::trace

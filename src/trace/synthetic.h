// Synthetic IWS series generator.
//
// Produces the *closed-form expectation* of the timeslice samples for
// the spike/hot/cold burst model the proxy kernels execute (see
// apps/catalog.cc).  Used to property-test the analysis layer against
// known ground truth (period detection, IB statistics) without running
// a kernel, and as a quick what-if tool for checkpoint planning.
#pragma once

#include <cstdint>

#include "trace/time_series.h"

namespace ickpt::trace {

struct BurstModel {
  double period_s = 10.0;      ///< main iteration length
  double burst_frac = 0.8;     ///< fraction of the period that is burst
  double spike_mb = 0.0;       ///< written at burst start
  double hot_mb = 10.0;        ///< rewritten once per second of burst
  double cold_mb_per_s = 1.0;  ///< fresh pages per second of burst
  double active_mb = 50.0;     ///< cap on distinct bytes per iteration
  double footprint_mb = 100.0; ///< reported memory image size
  double comm_recv_mb_per_s = 0.5;  ///< received during the comm gap
  double init_coverage = 1.0;  ///< fraction written in slice 0
};

/// Expected IWS/recv per slice for `duration` seconds at `timeslice`.
/// Slice 0 carries the initialization burst when init_coverage > 0.
TimeSeries synthesize(const BurstModel& model, double timeslice,
                      double duration);

/// The model's expected long-run average IB in MB/s at `timeslice` —
/// the quantity the calibration solver in apps/catalog.cc inverts.
double expected_avg_ib_mb(const BurstModel& model, double timeslice);

}  // namespace ickpt::trace

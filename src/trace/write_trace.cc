#include "trace/write_trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "common/page.h"

namespace ickpt::trace {

void WriteTrace::record(std::uint64_t slice, std::uint32_t first_page,
                        std::uint32_t page_count) {
  if (page_count == 0) return;
  events_.push_back(WriteEvent{slice, first_page, page_count});
}

void WriteTrace::record_snapshot(
    std::uint64_t slice, const std::vector<std::uint32_t>& dirty_pages) {
  std::size_t i = 0;
  while (i < dirty_pages.size()) {
    std::size_t j = i + 1;
    while (j < dirty_pages.size() &&
           dirty_pages[j] == dirty_pages[j - 1] + 1) {
      ++j;
    }
    record(slice, dirty_pages[i], static_cast<std::uint32_t>(j - i));
    i = j;
  }
}

std::uint64_t WriteTrace::slice_count() const noexcept {
  std::uint64_t max_slice = 0;
  for (const auto& e : events_) max_slice = std::max(max_slice, e.slice + 1);
  return max_slice;
}

Result<std::vector<std::size_t>> WriteTrace::replay(
    memtrack::DirtyTracker& tracker, std::span<std::byte> mem) const {
  if (mem.size() < region_pages_ * page_size()) {
    return invalid_argument("replay: memory smaller than traced region");
  }
  auto region = tracker.attach(mem.subspan(0, region_pages_ * page_size()),
                               "trace-replay");
  if (!region.is_ok()) return region.status();
  ICKPT_RETURN_IF_ERROR(tracker.arm());

  std::vector<std::size_t> iws(slice_count(), 0);
  std::uint64_t current = 0;
  auto flush = [&](std::uint64_t upto) -> Status {
    while (current < upto) {
      auto snap = tracker.collect(/*rearm=*/true);
      if (!snap.is_ok()) return snap.status();
      iws[current] = snap->dirty_pages();
      ++current;
    }
    return Status::ok();
  };

  // Events are replayed in slice order; callers record them in order.
  for (const auto& e : events_) {
    ICKPT_RETURN_IF_ERROR(flush(e.slice));
    std::byte* base = mem.data() + std::size_t{e.first_page} * page_size();
    for (std::uint32_t p = 0; p < e.page_count; ++p) {
      base[std::size_t{p} * page_size()] ^= std::byte{0xFF};
    }
    tracker.note_write(base, std::size_t{e.page_count} * page_size());
  }
  ICKPT_RETURN_IF_ERROR(flush(slice_count()));
  ICKPT_RETURN_IF_ERROR(tracker.detach(region.value()));
  return iws;
}

Status WriteTrace::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return io_error("cannot open " + path);
  os << "ickpt-write-trace v1\n";
  os << region_pages_ << ' ' << timeslice_ << ' ' << events_.size() << '\n';
  for (const auto& e : events_) {
    os << e.slice << ' ' << e.first_page << ' ' << e.page_count << '\n';
  }
  if (!os) return io_error("write failed for " + path);
  return Status::ok();
}

Result<WriteTrace> WriteTrace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return io_error("cannot open " + path);
  std::string magic;
  std::getline(in, magic);
  if (magic != "ickpt-write-trace v1") {
    return corruption("bad trace header in " + path);
  }
  std::size_t pages = 0, count = 0;
  double timeslice = 0;
  if (!(in >> pages >> timeslice >> count)) {
    return corruption("bad trace metadata in " + path);
  }
  WriteTrace t(pages, timeslice);
  for (std::size_t i = 0; i < count; ++i) {
    WriteEvent e;
    if (!(in >> e.slice >> e.first_page >> e.page_count)) {
      return corruption("truncated trace in " + path);
    }
    t.events_.push_back(e);
  }
  return t;
}

}  // namespace ickpt::trace

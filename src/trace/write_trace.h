// WriteTrace: capture and deterministic replay of page-write patterns.
//
// A trace records, per timeslice, which pages of a logical region were
// written.  Replaying a trace through an ExplicitEngine reproduces the
// exact IWS series without re-running the application — used by the
// analysis tests and by the trace-driven examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "memtrack/tracker.h"

namespace ickpt::trace {

struct WriteEvent {
  std::uint64_t slice = 0;        ///< timeslice index
  std::uint32_t first_page = 0;   ///< first page of the run
  std::uint32_t page_count = 0;   ///< pages in the run
};

class WriteTrace {
 public:
  WriteTrace() = default;
  WriteTrace(std::size_t region_pages, double timeslice)
      : region_pages_(region_pages), timeslice_(timeslice) {}

  void record(std::uint64_t slice, std::uint32_t first_page,
              std::uint32_t page_count);

  /// Record a dirty snapshot (page-index list) as run-length events.
  void record_snapshot(std::uint64_t slice,
                       const std::vector<std::uint32_t>& dirty_pages);

  const std::vector<WriteEvent>& events() const noexcept { return events_; }
  std::size_t region_pages() const noexcept { return region_pages_; }
  double timeslice() const noexcept { return timeslice_; }

  /// Widen the logical region (captures over dynamically growing
  /// address spaces call this as new blocks appear).
  void set_region_pages(std::size_t pages) {
    region_pages_ = std::max(region_pages_, pages);
  }
  std::uint64_t slice_count() const noexcept;

  /// Replay into a tracker: for each timeslice, write-notify the traced
  /// pages inside `mem` and collect.  Returns one IWS page-count per
  /// slice.  `mem` must cover region_pages() pages.
  Result<std::vector<std::size_t>> replay(memtrack::DirtyTracker& tracker,
                                          std::span<std::byte> mem) const;

  Status save(const std::string& path) const;
  static Result<WriteTrace> load(const std::string& path);

 private:
  std::size_t region_pages_ = 0;
  double timeslice_ = 1.0;
  std::vector<WriteEvent> events_;
};

}  // namespace ickpt::trace

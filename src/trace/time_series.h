// TimeSeries: an ordered sequence of timeslice samples with CSV export
// and the series extractions the analysis module consumes.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "trace/sample.h"

namespace ickpt::trace {

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string label) : label_(std::move(label)) {}

  void add(Sample s) { samples_.push_back(s); }
  void clear() { samples_.clear(); }

  const std::vector<Sample>& samples() const noexcept { return samples_; }
  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  const Sample& operator[](std::size_t i) const { return samples_[i]; }
  const std::string& label() const noexcept { return label_; }

  /// IWS sizes in bytes, one per slice.
  std::vector<double> iws_bytes_series() const;
  /// Incremental bandwidth in bytes/s, one per slice.
  std::vector<double> ib_series() const;
  /// Data received per slice, bytes.
  std::vector<double> recv_series() const;
  /// Footprint at each slice end, bytes.
  std::vector<double> footprint_series() const;

  /// CSV with one row per sample.
  Status write_csv(const std::string& path) const;

  /// Round-trip load of write_csv output (for offline analysis tests).
  static Result<TimeSeries> read_csv(const std::string& path);

 private:
  std::string label_;
  std::vector<Sample> samples_;
};

}  // namespace ickpt::trace

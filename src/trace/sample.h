// The unit of measurement: one checkpoint-timeslice sample.
//
// Mirrors what the paper's alarm handler records at every timeslice
// boundary (Section 4.2): the Incremental Working Set accumulated
// during the slice, the current memory footprint, and the volume of
// data received from the network during the slice (Figure 1b).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ickpt::trace {

struct Sample {
  std::uint64_t index = 0;     ///< sequence number of the timeslice
  double t_start = 0.0;        ///< slice start (virtual or wall seconds)
  double t_end = 0.0;          ///< slice end
  std::size_t iws_pages = 0;   ///< Incremental Working Set, pages
  std::size_t iws_bytes = 0;   ///< Incremental Working Set, bytes
  std::size_t footprint_bytes = 0;  ///< tracked memory at slice end
  std::uint64_t recv_bytes = 0;     ///< payload received during slice
  std::uint64_t sent_bytes = 0;     ///< payload sent during slice

  double timeslice() const noexcept { return t_end - t_start; }

  /// Incremental Bandwidth for this slice: IWS / timeslice (bytes/s).
  double ib_bytes_per_s() const noexcept {
    double dt = timeslice();
    return dt > 0 ? static_cast<double>(iws_bytes) / dt : 0.0;
  }

  /// IWS size over footprint (paper Figure 4), in [0, 1].
  double iws_footprint_ratio() const noexcept {
    return footprint_bytes > 0 ? static_cast<double>(iws_bytes) /
                                     static_cast<double>(footprint_bytes)
                               : 0.0;
  }
};

}  // namespace ickpt::trace

#include "trace/time_series.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace ickpt::trace {

std::vector<double> TimeSeries::iws_bytes_series() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) {
    out.push_back(static_cast<double>(s.iws_bytes));
  }
  return out;
}

std::vector<double> TimeSeries::ib_series() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.ib_bytes_per_s());
  return out;
}

std::vector<double> TimeSeries::recv_series() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) {
    out.push_back(static_cast<double>(s.recv_bytes));
  }
  return out;
}

std::vector<double> TimeSeries::footprint_series() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) {
    out.push_back(static_cast<double>(s.footprint_bytes));
  }
  return out;
}

Status TimeSeries::write_csv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return io_error("cannot open " + path);
  os << "index,t_start,t_end,iws_pages,iws_bytes,footprint_bytes,"
        "recv_bytes,sent_bytes\n";
  for (const auto& s : samples_) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%" PRIu64 ",%.6f,%.6f,%zu,%zu,%zu,%" PRIu64 ",%" PRIu64
                  "\n",
                  s.index, s.t_start, s.t_end, s.iws_pages, s.iws_bytes,
                  s.footprint_bytes, s.recv_bytes, s.sent_bytes);
    os << buf;
  }
  if (!os) return io_error("write failed for " + path);
  return Status::ok();
}

Result<TimeSeries> TimeSeries::read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return io_error("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) return corruption("empty csv: " + path);
  TimeSeries ts(path);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Sample s;
    if (std::sscanf(line.c_str(),
                    "%" SCNu64 ",%lf,%lf,%zu,%zu,%zu,%" SCNu64 ",%" SCNu64,
                    &s.index, &s.t_start, &s.t_end, &s.iws_pages,
                    &s.iws_bytes, &s.footprint_bytes, &s.recv_bytes,
                    &s.sent_bytes) != 8) {
      return corruption("bad csv row: " + line);
    }
    ts.add(s);
  }
  return ts;
}

}  // namespace ickpt::trace

// VirtualClock: simulated time for the proxy kernels.
//
// The paper measures wall-clock timeslices of 1–20 s over runs of
// hundreds of seconds.  Re-running that in real time for every sweep
// point is infeasible, and unnecessary: the IWS/IB metrics depend on
// the *ratio* between the timeslice and the application's phase
// structure, not on wall time.  The proxy kernels therefore advance a
// virtual clock as they execute their phases; periodic subscribers
// (the timeslice sampler, checkpoint schedulers) fire deterministically
// at every boundary the advance crosses.
//
// Single-threaded by design: each rank owns its own clock.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace ickpt::sim {

class VirtualClock {
 public:
  /// Called with the clock set to the boundary time.
  using Callback = std::function<void(double t)>;

  double now() const noexcept { return now_; }

  /// Advance by dt (>= 0), firing every periodic callback whose next
  /// boundary lies in (now, now+dt].  Callbacks fire in time order;
  /// ties fire in subscription order.  Callbacks must not call
  /// advance() reentrantly (checked).
  void advance(double dt);

  /// Subscribe a callback that fires every `period` seconds, first at
  /// now() + period + phase.  Returns a subscription id.
  int subscribe_periodic(double period, Callback cb, double phase = 0.0);

  /// Remove a subscription (no-op for unknown ids).
  void unsubscribe(int id);

  std::size_t subscriber_count() const noexcept { return subs_.size(); }

 private:
  struct Subscription {
    double period;
    double next_fire;
    Callback cb;
  };

  double now_ = 0.0;
  bool advancing_ = false;
  int next_id_ = 1;
  std::map<int, Subscription> subs_;
};

}  // namespace ickpt::sim

// Timeslice samplers: drive a DirtyTracker at checkpoint-timeslice
// boundaries and record one trace::Sample per slice.
//
// TimesliceSampler fires on VirtualClock boundaries (deterministic,
// used by the calibrated experiments).  WallClockSampler runs a real
// timer thread, reproducing the paper's SIGALRM-driven measurement
// loop, and is used by the intrusiveness benchmark (§6.5).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "common/status.h"
#include "memtrack/tracker.h"
#include "sim/virtual_clock.h"
#include "trace/time_series.h"

namespace ickpt::sim {

struct SamplerOptions {
  double timeslice = 1.0;  ///< seconds (virtual or wall)

  /// Offset of the first boundary relative to start()+timeslice
  /// (virtual sampler only).  Lets experiments align checkpoints with
  /// iteration boundaries or deliberately place them mid-burst
  /// (placement ablation X3; paper §6.2 argues boundary placement).
  double phase = 0.0;

  /// Optional cumulative byte counters (e.g. Comm::bytes_received);
  /// the sampler differences them per slice.
  std::function<std::uint64_t()> recv_probe;
  std::function<std::uint64_t()> sent_probe;

  /// Optional per-sample hook, e.g. an incremental checkpointer that
  /// wants the dirty snapshot for every slice.
  std::function<void(const trace::Sample&, const memtrack::DirtySnapshot&)>
      on_sample;
};

/// Virtual-time sampler.  Not thread-safe: the owning rank drives it
/// through its clock.
class TimesliceSampler {
 public:
  TimesliceSampler(memtrack::DirtyTracker& tracker, VirtualClock& clock,
                   SamplerOptions options);
  ~TimesliceSampler();

  TimesliceSampler(const TimesliceSampler&) = delete;
  TimesliceSampler& operator=(const TimesliceSampler&) = delete;

  /// Arm the tracker and subscribe to the clock.
  Status start();

  /// Unsubscribe; the tracker is collected one final time if a partial
  /// slice is pending (discarded — the paper reports whole slices only).
  void stop();

  const trace::TimeSeries& series() const noexcept { return series_; }
  trace::TimeSeries take_series() { return std::move(series_); }
  bool running() const noexcept { return sub_id_ >= 0; }

 private:
  void on_boundary(double t);

  memtrack::DirtyTracker& tracker_;
  VirtualClock& clock_;
  SamplerOptions options_;
  trace::TimeSeries series_;
  int sub_id_ = -1;
  double slice_start_ = 0.0;
  std::uint64_t slice_index_ = 0;
  std::uint64_t last_recv_ = 0;
  std::uint64_t last_sent_ = 0;
};

/// Wall-clock sampler: a timer thread that samples the tracker every
/// `timeslice` real seconds — the paper's alarm-driven design.
class WallClockSampler {
 public:
  WallClockSampler(memtrack::DirtyTracker& tracker, SamplerOptions options);
  ~WallClockSampler();

  WallClockSampler(const WallClockSampler&) = delete;
  WallClockSampler& operator=(const WallClockSampler&) = delete;

  Status start();
  void stop();

  /// Snapshot of the samples recorded so far (copy; thread-safe).
  trace::TimeSeries series() const;

 private:
  void run();

  memtrack::DirtyTracker& tracker_;
  SamplerOptions options_;
  mutable std::mutex mu_;
  trace::TimeSeries series_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  std::uint64_t last_recv_ = 0;
  std::uint64_t last_sent_ = 0;
};

}  // namespace ickpt::sim

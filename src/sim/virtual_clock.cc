#include "sim/virtual_clock.h"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace ickpt::sim {

void VirtualClock::advance(double dt) {
  if (dt < 0) throw std::invalid_argument("VirtualClock::advance: dt < 0");
  if (advancing_) {
    throw std::logic_error("VirtualClock::advance: reentrant call");
  }
  advancing_ = true;
  const double target = now_ + dt;

  for (;;) {
    // Find the earliest pending boundary at or before `target`.
    int best_id = -1;
    double best_time = std::numeric_limits<double>::infinity();
    for (auto& [id, sub] : subs_) {
      if (sub.next_fire <= target && sub.next_fire < best_time) {
        best_time = sub.next_fire;
        best_id = id;
      }
    }
    if (best_id < 0) break;
    auto it = subs_.find(best_id);
    now_ = best_time;
    it->second.next_fire += it->second.period;
    Callback cb = it->second.cb;  // copy: the callback may unsubscribe
    cb(now_);                     // anything, including itself
  }
  now_ = target;
  advancing_ = false;
}

int VirtualClock::subscribe_periodic(double period, Callback cb,
                                     double phase) {
  if (period <= 0) {
    throw std::invalid_argument("subscribe_periodic: period <= 0");
  }
  int id = next_id_++;
  subs_.emplace(id, Subscription{period, now_ + period + phase,
                                 std::move(cb)});
  return id;
}

void VirtualClock::unsubscribe(int id) { subs_.erase(id); }

}  // namespace ickpt::sim

#include "sim/sampler.h"

#include <chrono>

namespace ickpt::sim {

// ----------------------------------------------------------------- virtual

TimesliceSampler::TimesliceSampler(memtrack::DirtyTracker& tracker,
                                   VirtualClock& clock,
                                   SamplerOptions options)
    : tracker_(tracker), clock_(clock), options_(std::move(options)) {}

TimesliceSampler::~TimesliceSampler() { stop(); }

Status TimesliceSampler::start() {
  if (running()) return failed_precondition("sampler already started");
  ICKPT_RETURN_IF_ERROR(tracker_.arm());
  slice_start_ = clock_.now();
  slice_index_ = 0;
  last_recv_ = options_.recv_probe ? options_.recv_probe() : 0;
  last_sent_ = options_.sent_probe ? options_.sent_probe() : 0;
  sub_id_ = clock_.subscribe_periodic(
      options_.timeslice, [this](double t) { on_boundary(t); },
      options_.phase);
  return Status::ok();
}

void TimesliceSampler::stop() {
  if (!running()) return;
  clock_.unsubscribe(sub_id_);
  sub_id_ = -1;
  // Leave tracked memory writable.
  (void)tracker_.collect(/*rearm=*/false);
}

void TimesliceSampler::on_boundary(double t) {
  auto snap = tracker_.collect(/*rearm=*/true);
  if (!snap.is_ok()) return;  // engine failure: drop the slice

  trace::Sample s;
  s.index = slice_index_++;
  s.t_start = slice_start_;
  s.t_end = t;
  s.iws_pages = snap->dirty_pages();
  s.iws_bytes = snap->dirty_bytes();
  s.footprint_bytes = tracker_.tracked_bytes();
  if (options_.recv_probe) {
    std::uint64_t now_recv = options_.recv_probe();
    s.recv_bytes = now_recv - last_recv_;
    last_recv_ = now_recv;
  }
  if (options_.sent_probe) {
    std::uint64_t now_sent = options_.sent_probe();
    s.sent_bytes = now_sent - last_sent_;
    last_sent_ = now_sent;
  }
  slice_start_ = t;
  if (options_.on_sample) options_.on_sample(s, *snap);
  series_.add(s);
}

// -------------------------------------------------------------- wall-clock

WallClockSampler::WallClockSampler(memtrack::DirtyTracker& tracker,
                                   SamplerOptions options)
    : tracker_(tracker), options_(std::move(options)) {}

WallClockSampler::~WallClockSampler() { stop(); }

Status WallClockSampler::start() {
  if (running_) return failed_precondition("sampler already started");
  ICKPT_RETURN_IF_ERROR(tracker_.arm());
  last_recv_ = options_.recv_probe ? options_.recv_probe() : 0;
  last_sent_ = options_.sent_probe ? options_.sent_probe() : 0;
  stop_.store(false);
  running_ = true;
  thread_ = std::thread([this] { run(); });
  return Status::ok();
}

void WallClockSampler::stop() {
  if (!running_) return;
  stop_.store(true);
  thread_.join();
  running_ = false;
  (void)tracker_.collect(/*rearm=*/false);
}

trace::TimeSeries WallClockSampler::series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_;
}

void WallClockSampler::run() {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const auto slice =
      std::chrono::duration<double>(options_.timeslice);
  std::uint64_t index = 0;
  auto next = t0 + std::chrono::duration_cast<clock::duration>(slice);
  double prev_elapsed = 0.0;

  while (!stop_.load(std::memory_order_relaxed)) {
    // Sleep in short hops so stop() stays responsive.
    while (clock::now() < next) {
      if (stop_.load(std::memory_order_relaxed)) return;
      auto remaining = next - clock::now();
      auto hop = std::min<clock::duration>(
          remaining, std::chrono::milliseconds(5));
      if (hop > clock::duration::zero()) std::this_thread::sleep_for(hop);
    }
    auto snap = tracker_.collect(/*rearm=*/true);
    double elapsed = std::chrono::duration<double>(clock::now() - t0).count();
    if (snap.is_ok()) {
      trace::Sample s;
      s.index = index++;
      s.t_start = prev_elapsed;
      s.t_end = elapsed;
      s.iws_pages = snap->dirty_pages();
      s.iws_bytes = snap->dirty_bytes();
      s.footprint_bytes = tracker_.tracked_bytes();
      if (options_.recv_probe) {
        std::uint64_t now_recv = options_.recv_probe();
        s.recv_bytes = now_recv - last_recv_;
        last_recv_ = now_recv;
      }
      if (options_.sent_probe) {
        std::uint64_t now_sent = options_.sent_probe();
        s.sent_bytes = now_sent - last_sent_;
        last_sent_ = now_sent;
      }
      if (options_.on_sample) options_.on_sample(s, *snap);
      std::lock_guard<std::mutex> lock(mu_);
      series_.add(s);
    }
    prev_elapsed = elapsed;
    next += std::chrono::duration_cast<clock::duration>(slice);
  }
}

}  // namespace ickpt::sim

// Jacobi3D: a genuine 3-D 7-point stencil solver implementing
// AppKernel directly (not through the scripted proxy machinery).
//
// Serves two purposes: it demonstrates that the study pipeline is
// engine- and kernel-agnostic (any AppKernel works), and it provides a
// workload whose memory behaviour is *derived* rather than calibrated:
// double-buffered sweeps dirty exactly half the footprint per
// iteration, with halo exchanges between sweeps.
#pragma once

#include "apps/kernel.h"

namespace ickpt::apps {

class Jacobi3DApp final : public AppKernel {
 public:
  /// Nominal (unscaled) footprint ~64 MB: two n^3 double grids.
  static constexpr double kFootprintMb = 64.0;
  /// Virtual seconds per sweep (grid update + halo exchange).
  static constexpr double kPeriod = 0.8;

  Jacobi3DApp(AppConfig config, memtrack::DirtyTracker& tracker,
              sim::VirtualClock& clock);

  std::string_view name() const noexcept override { return "jacobi3d"; }
  Status init() override;
  Status iterate() override;
  double period() const noexcept override { return kPeriod; }
  std::size_t footprint_bytes() const noexcept override {
    return space_.footprint_bytes();
  }
  region::AddressSpace& space() noexcept override { return space_; }

  std::size_t grid_dim() const noexcept { return n_; }
  std::uint64_t iterations() const noexcept override { return iterations_; }

  /// Residual-style checksum of the current source grid (for
  /// correctness checks across checkpoints/restores).
  double checksum() const;

 private:
  double& at(double* grid, std::size_t i, std::size_t j,
             std::size_t k) noexcept {
    return grid[(i * n_ + j) * n_ + k];
  }

  AppConfig config_;
  sim::VirtualClock& clock_;
  region::AddressSpace space_;
  std::size_t n_ = 0;
  region::BlockId src_id_ = region::kInvalidBlock;
  region::BlockId dst_id_ = region::kInvalidBlock;
  double* src_ = nullptr;
  double* dst_ = nullptr;
  std::uint64_t iterations_ = 0;
};

}  // namespace ickpt::apps

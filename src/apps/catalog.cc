// Calibration of the proxy kernels against the paper's measurements.
//
// ---------------------------------------------------------------------
// Sage (dynamic allocation, long iterations)
// ---------------------------------------------------------------------
// Observables (Tables 2-4): footprint max M and average; period T;
// overwrite fraction f; avg/max IB at a 1 s timeslice; and (Figure 3 /
// text of 6.3) avg IB at a 20 s timeslice, approximately
// avg1 * (12.1 / 78.8) for every footprint.
//
// The Sage iteration is modelled as
//     spike:  a sweep over [0, S) at burst start (flux-array reset)
//     burst:  hot region [0, H) rewritten once per virtual second
//             while a cold cursor advances through [H, A) at C MB/s
//     comm:   ghost exchange + allreduce for the last 20 % of T
// where A = f*M is the active set.  Writing H once per second and C
// fresh MB/s makes the IWS of a timeslice tau approximately
//     IWS(tau) = S_slice + H + C*tau            (inside a burst)
// so over a full period
//     avg IB(tau)  = [S + (T_b/tau)*H + T_b*C] * (1/T)
//     max IB(1s)  ~= S + C
// Solving the three constraints (avg1, avg20, max1) for (S, H, C):
//     S = max1 (clamped to A)
//     H = (avg1 - avg20) * T / (T_b * (1 - 1/20))
//     C = (avg1 * T - S) / T_b - H, floored so the cold cursor covers
//         A - H every iteration (keeps the per-iteration union at A).
//
// Worked example, Sage-1000MB (M=954.6, T=145, f=0.53, avg1=78.8,
// max1=274.9, avg20=12.1):  T_b = 0.75*145 - 1 ~ 107.75,
//     H = (78.8-12.1)*145/(107.75*0.95) ~ 94.5
//     C = (78.8*145 - 274.9)/107.75 - 94.5 ~ 9.0
// The calibration tests (tests/apps_calibration_test.cc) verify the
// measured IWS/IB against the paper values within tolerance.
//
// ---------------------------------------------------------------------
// NAS SP / LU / BT (static, short iterations)
// ---------------------------------------------------------------------
// Period << 1 s timeslices: each iteration rewrites its active set
// A = f*M once (one solver sweep), so IWS(tau) ~ A for every tau >= T
// and IB(tau) ~ A/tau, matching Table 4 (avg ~ max ~ A at 1 s).
//
// ---------------------------------------------------------------------
// NAS FT (multi-touch phases)
// ---------------------------------------------------------------------
// Table 4 reports avg IB (92.1 MB/s) *above* f*M/1s = 67.3 MB/s: the
// evolve+FFT phases re-touch the spectral array X within an iteration,
// and timeslice boundaries falling between touches count X twice.
// Modelled as touches X, Y, X, X with |X| = 40, |Y| = 27.3 (union
// = 67.3 = 57 % of 118 MB, matching Table 3, while the per-slice
// dirtying rate matches Table 4).
//
// ---------------------------------------------------------------------
// Sweep3D (wavefront)
// ---------------------------------------------------------------------
// Eight octant sweeps per iteration re-traverse the angular-flux
// arrays (30 MB) and one pass updates the cell arrays (25 MB):
// union = 55 MB = 52 % of 105.5 (Table 3), per-slice dirty rate
// ~ 8*30/5.6 + 25/7 ~ 46 MB/s (Table 4: 49.5).
#include "apps/catalog.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace ickpt::apps {

namespace {

Phase sweep_phase(double off, double len, double dur, int parity = -1) {
  Phase p;
  p.kind = Phase::Kind::kSweep;
  p.duration = dur;
  p.segment = {off, len};
  p.passes = 1;
  p.parity = parity;
  return p;
}

Phase comm_phase(double dur, double mb, int messages) {
  Phase p;
  p.kind = Phase::Kind::kComm;
  p.duration = dur;
  p.comm_mb = mb;
  p.comm_messages = messages;
  return p;
}

/// Build a Sage spec from paper observables (see derivation above).
KernelSpec make_sage(const std::string& label, double max_mb, double period,
                     double overwrite, double avg1, double max1) {
  const double avg20 = avg1 * (12.1 / 78.8);  // Figure 3 decay ratio
  // Sage's footprint oscillates (AMR): Table 2's average is ~0.816 of
  // the maximum.  The overwrite fraction of Table 3 is relative to the
  // *typical* (average) footprint, so the active set is f * 0.816 * M.
  const double fill_mean = 0.816;
  const double fill_amp = 0.184;
  const double active = overwrite * fill_mean * max_mb;

  const double t_spike = 0.4;  // short enough to land in one 1 s slice
  const double t_comm = 0.20 * period;
  const double t_burst = period - t_spike - t_comm;

  double hot = (avg1 - avg20) * period / (t_burst * (1.0 - 1.0 / 20.0));
  hot = std::clamp(hot, 1.0, 0.9 * active);
  // Joint solve for spike and cold rate:
  //   max1 = S + w * (H + C)                    (the spike's slice)
  //   avg1 * T = S + t_burst * (H + C)
  // w is the *expected* burst time sharing the spike's slice: the
  // spike lands at a uniformly random offset in its slice, so on
  // average (1 - t_spike)/2 ~ 0.3 s of burst writes join it.
  const double w = 0.3;
  double cold = (avg1 * period - max1 + hot * (w - t_burst)) / (t_burst - w);
  double spike = max1 - w * (hot + cold);
  // Floors: the cursor must cover the rest of the active set every
  // iteration so the per-iteration union equals A (Table 3).
  cold = std::max({cold, (active - hot) / t_burst, 0.05});
  spike = std::clamp(spike, 1.0, active);

  KernelSpec spec;
  spec.name = label;
  spec.footprint_mb = max_mb;
  spec.period_s = period;
  spec.init_coverage = 1.0;
  spec.init_duration_s = 3.0;
  spec.dynamic = true;
  spec.block_count = 20;  // allocation units of M/20
  // Table 2: avg/max footprint ~ 0.816 for Sage-1000; the AMR wave
  // oscillates the footprint between mean-amp and mean+amp = max by
  // adding/dropping refinement units beyond the permanent prefix.
  spec.fill_mean = fill_mean;
  spec.fill_amp = fill_amp;
  spec.amr_period_iters = 6.0;
  spec.comm_growth_per_log2p = 0.05;

  Phase burst;
  burst.kind = Phase::Kind::kHotCold;
  burst.duration = t_burst;
  burst.hot_mb = hot;
  burst.cold_rate_mb_s = cold;
  burst.cold_range = {hot, active - hot};

  spec.phases = {sweep_phase(0.0, spike, t_spike), burst,
                 comm_phase(t_comm, 0.75 * t_comm,
                            std::max(4, static_cast<int>(t_comm)))};
  return spec;
}

/// Build a NAS solver spec (SP, LU, BT): per iteration one sweep over
/// the shared active arrays plus a double-buffered forcing array that
/// alternates between two halves, which lifts the per-slice IWS above
/// the per-iteration union exactly as Table 4 vs Table 3 requires.
/// shared + alt = f*M (Table 3); shared + 2*alt = max IB (Table 4).
KernelSpec make_nas_sweep(const std::string& label, double mb, double period,
                          double overwrite, double max_ib1, double comm_mb) {
  const double active = overwrite * mb;
  const double alt = std::max(0.0, max_ib1 - active);
  const double shared = active - alt;

  KernelSpec spec;
  spec.name = label;
  spec.footprint_mb = mb;
  spec.period_s = period;
  spec.init_coverage = 1.0;
  spec.init_duration_s = 1.0;

  const double t_shared = 0.70 * period;
  const double t_alt = 0.15 * period;
  spec.phases = {sweep_phase(0.0, shared, t_shared),
                 sweep_phase(shared, alt, t_alt, /*parity=*/0),
                 sweep_phase(shared + alt, alt, t_alt, /*parity=*/1),
                 comm_phase(0.15 * period, comm_mb, 2)};
  return spec;
}

KernelSpec make_ft() {
  // M = 118, f = 0.57 -> A = 67.3 per iteration, split as the spectral
  // array X = 40 (touched by evolve, forward FFT, inverse FFT) and aux
  // Y = 27.3 (touched once).  X is double-buffered (u0/u1 ping-pong),
  // so consecutive iterations dirty different 40 MB regions and the
  // measured IB (92.1 avg / 101 max at 1 s, Table 4) exceeds A.
  // Footprint: X_a + X_b + Y + untouched tables = 118.
  KernelSpec spec;
  spec.name = "ft";
  spec.footprint_mb = 118.0;
  spec.period_s = 1.2;
  spec.init_coverage = 1.0;
  spec.init_duration_s = 1.0;

  auto x_touches = [&](double off, int parity) {
    spec.phases.push_back(sweep_phase(off, 40.0, 0.34, parity));  // evolve
    spec.phases.push_back(sweep_phase(80.0, 27.3, 0.24, parity)); // aux Y
    spec.phases.push_back(sweep_phase(off, 40.0, 0.32, parity));  // fwd FFT
    spec.phases.push_back(sweep_phase(off, 40.0, 0.18, parity));  // inv FFT
  };
  x_touches(0.0, 0);
  x_touches(40.0, 1);
  spec.phases.push_back(comm_phase(0.12, 4.0, 2));  // transpose
  return spec;
}

KernelSpec make_sweep3d() {
  // Double-buffered angular-flux arrays (46 MB each) re-swept by the
  // eight octants, alternating buffers between iterations, plus a
  // 9 MB cell-array update: union per iteration = 55 MB = 52 % of
  // 105.5 (Table 3) while the 8 octant re-sweeps land in distinct
  // timeslices and reproduce Table 4's 49.5 MB/s average.
  KernelSpec spec;
  spec.name = "sweep3d";
  spec.footprint_mb = 105.5;
  spec.period_s = 7.0;
  spec.init_coverage = 1.0;
  spec.init_duration_s = 2.0;

  const double octant_dur = 6.3 / 8.0;
  for (int parity = 0; parity < 2; ++parity) {
    double off = parity == 0 ? 0.0 : 46.0;
    for (int o = 0; o < 8; ++o) {
      spec.phases.push_back(sweep_phase(off, 46.0, octant_dur, parity));
    }
  }
  spec.phases.push_back(sweep_phase(92.0, 9.0, 0.35));  // cell arrays
  spec.phases.push_back(comm_phase(0.35, 2.0, 8));      // wavefront
  return spec;
}

struct Entry {
  KernelSpec spec;
  PaperTargets targets;
};

const std::map<std::string, Entry>& catalog() {
  static const std::map<std::string, Entry>* kCatalog = [] {
    auto* m = new std::map<std::string, Entry>();
    auto put = [&](KernelSpec spec, PaperTargets t) {
      std::string key = spec.name;
      (*m)[key] = Entry{std::move(spec), t};
    };
    // Sage family: Tables 2/3/4.
    put(make_sage("sage-1000", 954.6, 145, 0.53, 78.8, 274.9),
        {954.6, 779.5, 145, 0.53, 78.8, 274.9});
    put(make_sage("sage-500", 497.3, 80, 0.54, 49.9, 186.9),
        {497.3, 407.3, 80, 0.54, 49.9, 186.9});
    put(make_sage("sage-100", 103.7, 38, 0.56, 15.0, 42.6),
        {103.7, 86.9, 38, 0.56, 15.0, 42.6});
    put(make_sage("sage-50", 55.0, 20, 0.57, 9.6, 24.9),
        {55.0, 45.2, 20, 0.57, 9.6, 24.9});
    put(make_sweep3d(), {105.5, 105.5, 7, 0.52, 49.5, 79.1});
    put(make_nas_sweep("sp", 40.1, 0.16, 0.72, 32.6, 0.5),
        {40.1, 40.1, 0.16, 0.72, 32.6, 32.6});
    put(make_nas_sweep("lu", 16.6, 0.7, 0.72, 12.5, 0.3),
        {16.6, 16.6, 0.7, 0.72, 12.5, 12.5});
    put(make_nas_sweep("bt", 76.5, 0.4, 0.92, 72.7, 1.0),
        {76.5, 76.5, 0.4, 0.92, 68.6, 72.7});
    put(make_ft(), {118, 118, 1.2, 0.57, 92.1, 101});
    return m;
  }();
  return *kCatalog;
}

}  // namespace

std::vector<std::string> catalog_names() {
  return {"sage-1000", "sage-500", "sage-100", "sage-50",
          "sweep3d",   "sp",       "lu",       "bt",
          "ft"};
}

std::vector<std::string> figure2_names() {
  return {"sage-1000", "sweep3d", "bt", "sp", "ft", "lu"};
}

Result<KernelSpec> find_spec(const std::string& name) {
  auto it = catalog().find(name);
  if (it == catalog().end()) return not_found("unknown app: " + name);
  return it->second.spec;
}

Result<PaperTargets> paper_targets(const std::string& name) {
  auto it = catalog().find(name);
  if (it == catalog().end()) return not_found("unknown app: " + name);
  return it->second.targets;
}

std::vector<std::string> extra_app_names() { return {"jacobi3d"}; }

Result<double> app_period(const std::string& name) {
  if (auto it = catalog().find(name); it != catalog().end()) {
    return it->second.spec.period_s;
  }
  if (name == "jacobi3d") return 0.8;  // Jacobi3DApp::kPeriod
  return not_found("unknown app: " + name);
}

}  // namespace ickpt::apps

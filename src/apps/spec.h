// KernelSpec: the declarative description a ScriptedKernel executes.
//
// An application iteration is a sequence of phases over a logical data
// array of `footprint_mb` megabytes:
//
//   kSweep    — write a segment sequentially, `passes` times, at a
//               uniform virtual rate over `duration`.  Models solver
//               passes (SSOR, ADI, FFT stages, transport sweeps).
//   kHotCold  — Sage-style processing burst: a hot region of
//               `hot_mb` is rewritten once per virtual second while a
//               cold cursor advances through `cold_range` at
//               `cold_rate_mb_s`, wrapping.  Reproduces the sublinear
//               IWS(timeslice) growth of Figures 2a/3.
//   kComm     — communication burst: ghost exchange with ring
//               neighbours plus an allreduce; received data is copied
//               into the landing segment (dirtying those pages, like
//               the paper's NIC-receive workaround in Section 4.2).
//   kIdle     — advance time without writing (I/O waits etc.).
//
// All byte quantities are expressed in *unscaled* MB; AppConfig's
// footprint_scale is applied at execution time.
#pragma once

#include <string>
#include <vector>

namespace ickpt::apps {

/// A byte range in the logical data array, in unscaled MB.
struct Segment {
  double offset_mb = 0;
  double len_mb = 0;
};

struct Phase {
  enum class Kind { kSweep, kHotCold, kComm, kIdle };

  Kind kind = Kind::kIdle;
  double duration = 0;  ///< virtual seconds

  /// Iteration parity gate: -1 = every iteration, 0 = even iterations
  /// only, 1 = odd only.  Models double-buffered arrays (FFT ping-pong
  /// buffers, alternating flux arrays): consecutive iterations then
  /// write different pages, which is what lets the per-timeslice IWS
  /// exceed the per-iteration union, as the paper measures for FT and
  /// Sweep3D (Table 4 vs Table 3).  A skipped phase consumes no time;
  /// list both parities to keep the period constant.
  int parity = -1;

  // kSweep
  Segment segment{};
  int passes = 1;

  // kHotCold
  double hot_mb = 0;          ///< hot region [0, hot_mb), one rewrite per vs
  double cold_rate_mb_s = 0;  ///< cold cursor advance rate
  Segment cold_range{};       ///< cursor wraps within this segment

  // kComm
  double comm_mb = 0;  ///< payload received per neighbour this phase
  int comm_messages = 4;
};

struct KernelSpec {
  std::string name;
  double footprint_mb = 0;  ///< nominal maximum footprint (Table 2 max)
  double period_s = 0;      ///< main-iteration duration (Table 3)

  /// Initialization burst: fraction of the footprint written, over
  /// this many virtual seconds.
  double init_coverage = 1.0;
  double init_duration_s = 2.0;

  std::vector<Phase> phases;  ///< executed in order each iteration

  // Dynamic memory behaviour (Sage): every iteration the AMR regrid
  // reallocates the data blocks so the total footprint follows
  //   footprint = M * (fill_mean + fill_amp * sin(2*pi*iter/amr_period))
  // reproducing Table 2's max > average for Sage and exercising the
  // memory-exclusion path continuously.
  bool dynamic = false;
  int block_count = 1;
  double fill_mean = 1.0;
  double fill_amp = 0.0;
  double amr_period_iters = 6.0;

  /// Comm-phase duration multiplier: 1 + growth * log2(nprocs / 8),
  /// clamped at >= 1 (Section 6.4.2's slight per-rank IB decrease).
  double comm_growth_per_log2p = 0.0;

  /// Sum of phase durations (should approximate period_s).
  double phase_duration_sum() const noexcept {
    double t = 0;
    for (const auto& p : phases) t += p.duration;
    return t;
  }
};

}  // namespace ickpt::apps

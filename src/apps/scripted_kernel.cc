#include "apps/scripted_kernel.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "apps/catalog.h"
#include "apps/jacobi_app.h"
#include "common/page.h"
#include "common/units.h"

namespace ickpt::apps {

namespace {
/// Write chunk granularity.  Small enough that timeslice boundaries
/// resolve well inside phases, large enough to amortize the clock.
constexpr std::size_t kChunkBytes = 256 * kKB;

/// The actual "computation": a position-dependent multiplicative-
/// congruential update of every 64-bit lattice element — a genuine
/// read-modify-write, and (because neighbouring cells hold different
/// values, like any real field) the resulting pages are incompressible
/// noise rather than artificial constants.
void compute_over(std::byte* p, std::size_t len) {
  // The chunk may start at any byte offset within a tracked block, so
  // go through memcpy: same codegen, no misaligned-load UB.
  std::size_t n = len / sizeof(std::uint64_t);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t w;
    std::memcpy(&w, p + i * sizeof(w), sizeof(w));
    w = w * 2862933555777941757ull + 3037000493ull +
        (static_cast<std::uint64_t>(i) << 32 | i);
    std::memcpy(p + i * sizeof(w), &w, sizeof(w));
  }
  if (std::size_t tail = len % sizeof(std::uint64_t); tail != 0) {
    std::memset(p + len - tail, 0x5c, tail);
  }
}
}  // namespace

ScriptedKernel::ScriptedKernel(KernelSpec spec, AppConfig config,
                               memtrack::DirtyTracker& tracker,
                               sim::VirtualClock& clock)
    : spec_(std::move(spec)),
      config_(config),
      clock_(clock),
      space_(tracker, spec_.name),
      rng_(config.seed ^ 0x9e3779b9u) {}

std::size_t ScriptedKernel::scaled(double mb) const noexcept {
  double bytes = mb * static_cast<double>(kMB) * config_.footprint_scale;
  return bytes <= 0 ? 0 : static_cast<std::size_t>(bytes);
}

double ScriptedKernel::period() const noexcept {
  // Communication growth stretches the comm phases (Section 6.4.2).
  // Parity-gated phases come in even/odd pairs with equal durations;
  // count only the even variant so the sum is one iteration's time.
  double t = 0;
  for (const auto& p : spec_.phases) {
    if (p.parity == 1) continue;
    t += p.duration * (p.kind == Phase::Kind::kComm ? comm_factor() : 1.0);
  }
  return t;
}

double ScriptedKernel::comm_factor() const noexcept {
  if (spec_.comm_growth_per_log2p <= 0 || config_.nprocs <= 8) return 1.0;
  double l = std::log2(static_cast<double>(config_.nprocs) / 8.0);
  return 1.0 + spec_.comm_growth_per_log2p * l;
}

double ScriptedKernel::target_fill(std::uint64_t iter) const noexcept {
  if (!spec_.dynamic) return 1.0;
  double phase = 2.0 * 3.14159265358979323846 *
                 static_cast<double>(iter) / spec_.amr_period_iters;
  return std::clamp(spec_.fill_mean + spec_.fill_amp * std::sin(phase),
                    0.05, 1.0);
}

int ScriptedKernel::target_units(std::uint64_t iter) const noexcept {
  const int n = std::max(1, spec_.block_count);
  if (!spec_.dynamic) return n;
  int units = static_cast<int>(
      std::lround(target_fill(iter) * static_cast<double>(n)));
  return std::clamp(units, 1, n);
}

Status ScriptedKernel::map_unit(std::size_t index) {
  Slot slot;
  slot.logical_size = unit_bytes_;
  slot.physical_size = unit_bytes_;
  auto kind = spec_.dynamic
                  ? (index % 2 == 0 ? region::AreaKind::kHeap
                                    : region::AreaKind::kMmap)
                  : region::AreaKind::kStaticData;
  auto ref = space_.map(unit_bytes_, kind,
                        "block" + std::to_string(index) + "@" +
                            std::to_string(iterations_));
  if (!ref.is_ok()) return ref.status();
  slot.id = ref->id;
  slot.base = ref->mem.data();
  slots_.push_back(slot);
  logical_total_ += unit_bytes_;
  return Status::ok();
}

Status ScriptedKernel::allocate_blocks() {
  const int nblocks = std::max(1, spec_.block_count);
  const std::size_t total = scaled(spec_.footprint_mb);
  unit_bytes_ = std::max(page_size(),
                         page_ceil(total / static_cast<std::size_t>(nblocks)));
  logical_total_ = 0;
  slots_.clear();
  slots_.reserve(static_cast<std::size_t>(nblocks));
  const int units = target_units(0);
  for (int b = 0; b < units; ++b) {
    ICKPT_RETURN_IF_ERROR(map_unit(static_cast<std::size_t>(b)));
  }
  return Status::ok();
}

Status ScriptedKernel::realloc_blocks() {
  // AMR regrid: the footprint follows the spec's fill wave by adding
  // refined blocks at the *end* of the logical array and dropping them
  // again when the mesh coarsens.  Dropped blocks leave the tracked
  // set (memory exclusion, §4.2).  The active set — the first
  // `overwrite * fill_mean * M` bytes — lives entirely in the
  // permanent prefix, so regridding never discards active dirty pages,
  // matching the real code where AMR churns refinement patches, not
  // the core state.
  const int units = target_units(iterations_ + 1);
  while (static_cast<int>(slots_.size()) > units) {
    ICKPT_RETURN_IF_ERROR(space_.unmap(slots_.back().id));
    logical_total_ -= slots_.back().physical_size;
    slots_.pop_back();
  }
  while (static_cast<int>(slots_.size()) < units) {
    std::size_t index = slots_.size();
    ICKPT_RETURN_IF_ERROR(map_unit(index));
    // Touch the new block's header (allocation metadata / copy-in).
    Slot& slot = slots_.back();
    compute_over(slot.base, std::min(slot.physical_size, page_size()));
    space_.tracker().note_write(slot.base,
                                std::min(slot.physical_size, page_size()));
  }
  return Status::ok();
}

void ScriptedKernel::write_logical(std::size_t off, std::size_t len) {
  // Map a logical byte range onto the *concatenated physical* extents
  // of the blocks (compacting mapping): when the AMR wave shrinks the
  // blocks, the logical cells pack into the smaller grid, so every
  // planned write lands on real memory.  logical_total_ tracks the
  // current physical footprint.
  std::size_t pos = off;
  std::size_t end = std::min(off + len, logical_total_);
  std::size_t block_start = 0;
  for (const Slot& slot : slots_) {
    std::size_t block_end = block_start + slot.physical_size;
    if (pos >= end) break;
    if (pos < block_end && end > block_start) {
      std::size_t lo = std::max(pos, block_start) - block_start;
      std::size_t hi = std::min(end, block_end) - block_start;
      if (lo < hi) {
        compute_over(slot.base + lo, hi - lo);
        space_.tracker().note_write(slot.base + lo, hi - lo);
      }
      pos = std::min(end, block_end);
    }
    block_start = block_end;
  }
}

void ScriptedKernel::write_chunked(std::size_t off, std::size_t len,
                                   double duration, std::size_t wrap_begin,
                                   std::size_t wrap_end) {
  if (len == 0 || wrap_end <= wrap_begin) {
    clock_.advance(duration);
    return;
  }
  const std::size_t span = wrap_end - wrap_begin;
  std::size_t cursor = wrap_begin + (off - wrap_begin) % span;
  std::size_t remaining = len;
  const double dt_per_byte = duration / static_cast<double>(len);
  while (remaining > 0) {
    std::size_t chunk = std::min({remaining, kChunkBytes,
                                  wrap_end - cursor});
    write_logical(cursor, chunk);
    clock_.advance(dt_per_byte * static_cast<double>(chunk));
    cursor += chunk;
    if (cursor >= wrap_end) cursor = wrap_begin;
    remaining -= chunk;
  }
}

Status ScriptedKernel::init() {
  ICKPT_RETURN_IF_ERROR(allocate_blocks());
  std::size_t cover = static_cast<std::size_t>(
      static_cast<double>(logical_total_) * spec_.init_coverage);
  write_chunked(0, cover, spec_.init_duration_s, 0, logical_total_);
  return Status::ok();
}

Status ScriptedKernel::iterate() {
  if (spec_.dynamic) ICKPT_RETURN_IF_ERROR(realloc_blocks());
  const int parity = static_cast<int>(iterations_ % 2);
  for (const auto& phase : spec_.phases) {
    if (phase.parity >= 0 && phase.parity != parity) continue;
    ICKPT_RETURN_IF_ERROR(exec_phase(phase));
  }
  ++iterations_;
  return Status::ok();
}

Status ScriptedKernel::exec_phase(const Phase& phase) {
  switch (phase.kind) {
    case Phase::Kind::kSweep: return exec_sweep(phase);
    case Phase::Kind::kHotCold: return exec_hotcold(phase);
    case Phase::Kind::kComm: return exec_comm(phase);
    case Phase::Kind::kIdle:
      clock_.advance(phase.duration);
      return Status::ok();
  }
  return internal_error("unknown phase kind");
}

Status ScriptedKernel::exec_sweep(const Phase& phase) {
  std::size_t seg_off = scaled(phase.segment.offset_mb);
  std::size_t seg_len = scaled(phase.segment.len_mb);
  seg_off = std::min(seg_off, logical_total_);
  seg_len = std::min(seg_len, logical_total_ - seg_off);
  std::size_t total =
      seg_len * static_cast<std::size_t>(std::max(1, phase.passes));
  write_chunked(seg_off, total, phase.duration, seg_off, seg_off + seg_len);
  return Status::ok();
}

Status ScriptedKernel::exec_hotcold(const Phase& phase) {
  const std::size_t hot_len = std::min(scaled(phase.hot_mb), logical_total_);
  std::size_t cold_begin = scaled(phase.cold_range.offset_mb);
  std::size_t cold_end = cold_begin + scaled(phase.cold_range.len_mb);
  cold_begin = std::min(cold_begin, logical_total_);
  cold_end = std::min(cold_end, logical_total_);

  // Sub-step so hot rewrites and cold advances interleave in time the
  // way a real burst's writes do.
  const double kSubStep = 0.25;
  double remaining = phase.duration;
  while (remaining > 1e-9) {
    double dt = std::min(kSubStep, remaining);
    // Hot: rewrite hot_len bytes per virtual second, cycling.
    std::size_t hot_bytes = static_cast<std::size_t>(
        static_cast<double>(hot_len) * dt);
    if (hot_len > 0 && hot_bytes > 0) {
      write_chunked(hot_cursor_ % hot_len, hot_bytes, dt * 0.6, 0, hot_len);
      hot_cursor_ = (hot_cursor_ + hot_bytes) % hot_len;
    } else {
      clock_.advance(dt * 0.6);
    }
    // Cold: advance the cursor through fresh pages.
    std::size_t cold_bytes = static_cast<std::size_t>(
        phase.cold_rate_mb_s * static_cast<double>(kMB) *
        config_.footprint_scale * dt);
    if (cold_end > cold_begin && cold_bytes > 0) {
      if (cold_cursor_ < cold_begin || cold_cursor_ >= cold_end) {
        cold_cursor_ = cold_begin;
      }
      write_chunked(cold_cursor_, cold_bytes, dt * 0.4, cold_begin,
                    cold_end);
      cold_cursor_ = cold_begin +
                     (cold_cursor_ - cold_begin + cold_bytes) %
                         (cold_end - cold_begin);
    } else {
      clock_.advance(dt * 0.4);
    }
    remaining -= dt;
  }
  return Status::ok();
}

Status ScriptedKernel::exec_comm(const Phase& phase) {
  const double duration = phase.duration * comm_factor();
  mpi::Comm* comm = config_.comm;
  if (comm == nullptr || comm->size() < 2 || phase.comm_mb <= 0) {
    clock_.advance(duration);
    return Status::ok();
  }

  const int rounds = std::max(1, phase.comm_messages);
  const std::size_t per_msg = std::max<std::size_t>(
      64, scaled(phase.comm_mb) / static_cast<std::size_t>(rounds));
  const int self = comm->rank();
  const int nprocs = comm->size();
  const int left = (self + nprocs - 1) % nprocs;
  const int right = (self + 1) % nprocs;
  const int tag = 100;

  std::vector<std::byte> sendbuf(per_msg, std::byte{0x42});
  std::vector<std::byte> recvbuf(per_msg);
  const double dt = duration / static_cast<double>(rounds);

  for (int r = 0; r < rounds; ++r) {
    // Ghost exchange with both ring neighbours (buffered sends, so no
    // deadlock regardless of ordering).
    comm->send(left, tag, sendbuf);
    comm->send(right, tag, sendbuf);
    auto a = comm->recv(mpi::kAnySource, tag, recvbuf);
    if (!a.is_ok()) return a.status();
    // Received ghost cells are copied into the landing zone at the
    // start of the logical array (the paper's receive-buffer copy).
    write_logical(0, a->bytes);
    auto b = comm->recv(mpi::kAnySource, tag, recvbuf);
    if (!b.is_ok()) return b.status();
    write_logical(per_msg, b->bytes);
    clock_.advance(dt);
  }
  // Convergence check: one allreduce per iteration.
  (void)comm->allreduce_sum(1.0);
  return Status::ok();
}

Result<std::unique_ptr<AppKernel>> make_app(const std::string& name,
                                            AppConfig config,
                                            memtrack::DirtyTracker& tracker,
                                            sim::VirtualClock& clock) {
  if (name == "jacobi3d") {
    return std::unique_ptr<AppKernel>(
        new Jacobi3DApp(config, tracker, clock));
  }
  auto spec = find_spec(name);
  if (!spec.is_ok()) return spec.status();
  return std::unique_ptr<AppKernel>(
      new ScriptedKernel(std::move(spec.value()), config, tracker, clock));
}

}  // namespace ickpt::apps

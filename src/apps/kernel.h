// AppKernel: the interface every proxy scientific application exposes.
//
// The paper characterizes its applications (Sage, Sweep3D, NAS
// SP/LU/BT/FT) purely through observable memory behaviour: footprint
// size and dynamics (Table 2), main-iteration period and overwrite
// fraction (Table 3), and the resulting IWS/IB (Table 4, Figures 1-5).
// The proxies reproduce exactly those observables: each kernel is a
// real computation over real tracked memory whose phase structure is
// calibrated to the paper's measurements (see apps/catalog.cc).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "minimpi/comm.h"
#include "region/address_space.h"
#include "sim/virtual_clock.h"

namespace ickpt::apps {

struct AppConfig {
  /// Scales every byte quantity (footprints, write volumes, message
  /// sizes).  1.0 reproduces the paper's absolute sizes; benches use
  /// 1/16 by default (documented in DESIGN.md/EXPERIMENTS.md).
  double footprint_scale = 1.0;

  /// World size assumed for communication scaling (weak scaling:
  /// per-rank footprint is constant; the communication phase grows
  /// slowly with log2 of the processor count, Section 6.4.2).
  int nprocs = 1;

  /// Communicator for ghost exchanges; nullptr runs the kernel without
  /// communication (the comm-phase time still elapses).
  mpi::Comm* comm = nullptr;

  std::uint64_t seed = 42;
};

class AppKernel {
 public:
  virtual ~AppKernel() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Allocate the data memory and perform the initialization write
  /// burst (the paper's "initial peak ... caused by data
  /// initialization", Section 6.2).  Advances the virtual clock.
  virtual Status init() = 0;

  /// One main iteration: processing burst(s) followed by a
  /// communication burst.  Advances the virtual clock by ~period().
  virtual Status iterate() = 0;

  /// Nominal main-iteration duration in virtual seconds (Table 3).
  virtual double period() const noexcept = 0;

  /// Current data-memory footprint in bytes.
  virtual std::size_t footprint_bytes() const noexcept = 0;

  /// The rank's tracked address space.
  virtual region::AddressSpace& space() noexcept = 0;

  /// Main iterations completed so far.
  virtual std::uint64_t iterations() const noexcept = 0;

  /// Run iterations until the virtual clock reaches `until_vs`.
  Status run_until(sim::VirtualClock& clock, double until_vs) {
    while (clock.now() < until_vs) {
      ICKPT_RETURN_IF_ERROR(iterate());
    }
    return Status::ok();
  }
};

}  // namespace ickpt::apps

#include "apps/jacobi_app.h"

#include <cmath>
#include <cstring>

#include "common/units.h"

namespace ickpt::apps {

Jacobi3DApp::Jacobi3DApp(AppConfig config, memtrack::DirtyTracker& tracker,
                         sim::VirtualClock& clock)
    : config_(config), clock_(clock), space_(tracker, "jacobi3d") {
  // Two n^3 grids of doubles fill footprint_scale * kFootprintMb.
  double bytes = kFootprintMb * static_cast<double>(kMB) *
                 config_.footprint_scale;
  n_ = static_cast<std::size_t>(std::cbrt(bytes / (2.0 * sizeof(double))));
  n_ = std::max<std::size_t>(n_, 8);
}

Status Jacobi3DApp::init() {
  const std::size_t grid_bytes = n_ * n_ * n_ * sizeof(double);
  auto src = space_.map(grid_bytes, region::AreaKind::kHeap, "grid_src");
  if (!src.is_ok()) return src.status();
  auto dst = space_.map(grid_bytes, region::AreaKind::kHeap, "grid_dst");
  if (!dst.is_ok()) return dst.status();
  src_id_ = src->id;
  dst_id_ = dst->id;
  src_ = reinterpret_cast<double*>(src->mem.data());
  dst_ = reinterpret_cast<double*>(dst->mem.data());

  // Dirichlet boundary: hot plane at i == 0, writes tracked naturally.
  for (std::size_t j = 0; j < n_; ++j) {
    for (std::size_t k = 0; k < n_; ++k) {
      at(src_, 0, j, k) = 100.0;
      at(dst_, 0, j, k) = 100.0;
    }
  }
  space_.tracker().note_write(src_, n_ * n_ * n_ * sizeof(double));
  space_.tracker().note_write(dst_, n_ * n_ * n_ * sizeof(double));
  clock_.advance(1.0);  // initialization burst
  return Status::ok();
}

Status Jacobi3DApp::iterate() {
  if (src_ == nullptr) return failed_precondition("init() not called");

  // Sweep in i-slabs, advancing the virtual clock per slab so
  // timeslice boundaries land inside the burst.
  const double sweep_time = 0.85 * kPeriod;
  const double dt = sweep_time / static_cast<double>(n_ - 2);
  for (std::size_t i = 1; i + 1 < n_; ++i) {
    for (std::size_t j = 1; j + 1 < n_; ++j) {
      for (std::size_t k = 1; k + 1 < n_; ++k) {
        at(dst_, i, j, k) =
            (at(src_, i - 1, j, k) + at(src_, i + 1, j, k) +
             at(src_, i, j - 1, k) + at(src_, i, j + 1, k) +
             at(src_, i, j, k - 1) + at(src_, i, j, k + 1)) /
            6.0;
      }
    }
    space_.tracker().note_write(&at(dst_, i, 1, 1),
                                (n_ - 2) * n_ * sizeof(double));
    clock_.advance(dt);
  }

  // Halo exchange with ring neighbours: boundary slabs travel as
  // messages and land in the destination grid's ghost planes.
  mpi::Comm* comm = config_.comm;
  if (comm != nullptr && comm->size() > 1) {
    const std::size_t plane_bytes = n_ * n_ * sizeof(double);
    const int right = (comm->rank() + 1) % comm->size();
    auto* top_plane = &at(dst_, n_ - 1, 0, 0);
    comm->send(right, /*tag=*/11,
               {reinterpret_cast<const std::byte*>(&at(dst_, n_ - 2, 0, 0)),
                plane_bytes});
    auto info = comm->recv(mpi::kAnySource, 11,
                           {reinterpret_cast<std::byte*>(top_plane),
                            plane_bytes});
    if (!info.is_ok()) return info.status();
    space_.tracker().note_write(top_plane, plane_bytes);
  }
  clock_.advance(0.15 * kPeriod);

  std::swap(src_, dst_);
  std::swap(src_id_, dst_id_);
  ++iterations_;
  return Status::ok();
}

double Jacobi3DApp::checksum() const {
  double acc = 0;
  const std::size_t total = n_ * n_ * n_;
  for (std::size_t i = 0; i < total; ++i) acc += src_[i];
  return acc;
}

}  // namespace ickpt::apps

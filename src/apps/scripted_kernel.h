// ScriptedKernel: executes a KernelSpec against real tracked memory.
//
// The kernel owns an AddressSpace of one or more blocks covering a
// logical data array.  Phases write real data (a cheap but genuine
// read-modify-write over 64-bit lattice elements) into the logical
// array while advancing the rank's virtual clock in fine-grained
// chunks, so timeslice boundaries land *inside* phases exactly as wall
//-clock alarms land inside processing bursts on a real machine.
#pragma once

#include <vector>

#include "apps/kernel.h"
#include "apps/spec.h"
#include "common/rng.h"

namespace ickpt::apps {

class ScriptedKernel final : public AppKernel {
 public:
  ScriptedKernel(KernelSpec spec, AppConfig config,
                 memtrack::DirtyTracker& tracker, sim::VirtualClock& clock);

  std::string_view name() const noexcept override { return spec_.name; }
  Status init() override;
  Status iterate() override;
  double period() const noexcept override;
  std::size_t footprint_bytes() const noexcept override {
    return space_.footprint_bytes();
  }
  region::AddressSpace& space() noexcept override { return space_; }

  const KernelSpec& spec() const noexcept { return spec_; }
  std::uint64_t iterations() const noexcept override { return iterations_; }

  /// Write `len` bytes at logical offset `off` (scaled bytes), without
  /// advancing the clock.  Exposed for tests.
  void write_logical(std::size_t off, std::size_t len);

 private:
  std::size_t scaled(double mb) const noexcept;
  double target_fill(std::uint64_t iter) const noexcept;
  int target_units(std::uint64_t iter) const noexcept;
  Status map_unit(std::size_t index);
  Status allocate_blocks();
  Status realloc_blocks();
  void write_chunked(std::size_t off, std::size_t len, double duration,
                     std::size_t wrap_begin, std::size_t wrap_end);
  Status exec_phase(const Phase& phase);
  Status exec_sweep(const Phase& phase);
  Status exec_hotcold(const Phase& phase);
  Status exec_comm(const Phase& phase);
  double comm_factor() const noexcept;

  KernelSpec spec_;
  AppConfig config_;
  sim::VirtualClock& clock_;
  region::AddressSpace space_;
  Rng rng_;

  struct Slot {
    region::BlockId id = region::kInvalidBlock;
    std::size_t logical_size = 0;   ///< fixed extent in the logical array
    std::size_t physical_size = 0;  ///< currently mapped bytes
    std::byte* base = nullptr;
  };
  std::vector<Slot> slots_;
  std::size_t logical_total_ = 0;
  std::size_t unit_bytes_ = 0;

  std::size_t hot_cursor_ = 0;
  std::size_t cold_cursor_ = 0;
  std::uint64_t iterations_ = 0;
};

/// Convenience: build one of the catalog kernels by name
/// ("sage-1000", "sweep3d", "sp", "lu", "bt", "ft", ...).
Result<std::unique_ptr<AppKernel>> make_app(const std::string& name,
                                            AppConfig config,
                                            memtrack::DirtyTracker& tracker,
                                            sim::VirtualClock& clock);

}  // namespace ickpt::apps

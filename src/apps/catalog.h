// Catalog of calibrated proxy-application specs.
//
// Each spec reproduces the memory behaviour the paper measured for the
// corresponding application (see catalog.cc for the per-app derivation
// of the constants from Tables 2-4).
#pragma once

#include <string>
#include <vector>

#include "apps/spec.h"
#include "common/status.h"

namespace ickpt::apps {

/// The paper's measured values for one application, used by the bench
/// harnesses to print paper-vs-measured rows and by the calibration
/// tests as targets.
struct PaperTargets {
  double footprint_max_mb = 0;  ///< Table 2
  double footprint_avg_mb = 0;  ///< Table 2
  double period_s = 0;          ///< Table 3
  double overwrite_frac = 0;    ///< Table 3 ("Percent of Memory Overwritten")
  double avg_ib1_mb_s = 0;      ///< Table 4 (timeslice 1 s)
  double max_ib1_mb_s = 0;      ///< Table 4
};

/// All application names, in the paper's presentation order:
/// sage-1000, sage-500, sage-100, sage-50, sweep3d, sp, lu, bt, ft.
std::vector<std::string> catalog_names();

/// The six applications of Figure 2, in figure order.
std::vector<std::string> figure2_names();

Result<KernelSpec> find_spec(const std::string& name);
Result<PaperTargets> paper_targets(const std::string& name);

/// Apps runnable via make_app() but outside the paper's catalog
/// (currently: "jacobi3d", a genuine stencil mini-app).
std::vector<std::string> extra_app_names();

/// Nominal main-iteration period for any runnable app (catalog or
/// extra).  kNotFound for unknown names.
Result<double> app_period(const std::string& name);

}  // namespace ickpt::apps

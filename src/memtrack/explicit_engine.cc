#include "memtrack/explicit_engine.h"

namespace ickpt::memtrack {

Result<RegionId> ExplicitEngine::attach(std::span<std::byte> mem,
                                        std::string name) {
  if (mem.empty()) return invalid_argument("attach: empty range");
  auto addr = reinterpret_cast<std::uintptr_t>(mem.data());
  if (addr % page_size() != 0 || mem.size() % page_size() != 0) {
    return invalid_argument("attach: range must be page-aligned ('" + name +
                            "')");
  }
  std::lock_guard<std::mutex> lock(mu_);
  RegionId id = next_id_++;
  PageRange range{addr, addr + mem.size()};
  regions_.emplace(id, Region{id, std::move(name), range,
                              std::make_unique<AtomicBitmap>(range.pages())});
  return id;
}

Status ExplicitEngine::detach(RegionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (regions_.erase(id) == 0) return not_found("detach: unknown region id");
  return Status::ok();
}

Status ExplicitEngine::arm() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, r] : regions_) r.bitmap->clear();
  armed_ = true;
  ++arms_;
  return Status::ok();
}

Result<DirtySnapshot> ExplicitEngine::collect(bool rearm) {
  std::lock_guard<std::mutex> lock(mu_);
  DirtySnapshot snap;
  snap.regions.reserve(regions_.size());
  for (auto& [id, r] : regions_) {
    RegionDirty rd;
    rd.id = id;
    rd.name = r.name;
    rd.range = r.range;
    r.bitmap->drain_set_bits(rd.dirty_pages, r.range.pages());
    snap.regions.push_back(std::move(rd));
  }
  armed_ = rearm;
  ++collects_;
  if (rearm) ++arms_;
  return snap;
}

void ExplicitEngine::note_write(const void* addr, std::size_t len) {
  if (len == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_) return;
  ++notes_;
  PageRange w = page_range_covering(addr, len);
  const unsigned shift = page_shift();
  for (auto& [id, r] : regions_) {
    if (!r.range.overlaps(w)) continue;
    std::uintptr_t lo = std::max(w.begin, r.range.begin);
    std::uintptr_t hi = std::min(w.end, r.range.end);
    for (std::uintptr_t p = lo; p < hi; p += page_size()) {
      r.bitmap->set((p - r.range.begin) >> shift);
    }
  }
}

EngineCounters ExplicitEngine::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineCounters c;
  c.arms = arms_;
  c.collects = collects_;
  c.faults_handled = notes_;
  return c;
}

std::size_t ExplicitEngine::region_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return regions_.size();
}

std::size_t ExplicitEngine::tracked_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, r] : regions_) n += r.range.bytes();
  return n;
}

}  // namespace ickpt::memtrack

// DirtyTracker implementation over the Linux soft-dirty mechanism
// (write "4" to /proc/self/clear_refs, read bit 55 of
// /proc/self/pagemap) — the approach CRIU uses for pre-copy dumps.
//
// This is the modern counterpart to the paper's mprotect scheme: no
// per-page faults, but an O(pages) scan at every collection.  Ablation
// X1 compares the two cost models.
//
// Caveat: clear_refs resets soft-dirty bits for the *entire process*,
// so at most one SoftDirtyEngine should be armed at a time.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "memtrack/tracker.h"

namespace ickpt::memtrack {

class SoftDirtyEngine final : public DirtyTracker {
 public:
  /// Fails with kUnsupported when the kernel lacks soft-dirty support.
  static Result<std::unique_ptr<SoftDirtyEngine>> create();

  ~SoftDirtyEngine() override;

  SoftDirtyEngine(const SoftDirtyEngine&) = delete;
  SoftDirtyEngine& operator=(const SoftDirtyEngine&) = delete;

  EngineKind kind() const noexcept override { return EngineKind::kSoftDirty; }

  Result<RegionId> attach(std::span<std::byte> mem, std::string name) override;
  Status detach(RegionId id) override;
  Status arm() override;
  Result<DirtySnapshot> collect(bool rearm) override;
  EngineCounters counters() const override;
  std::size_t region_count() const override;
  std::size_t tracked_bytes() const override;

 private:
  SoftDirtyEngine(int pagemap_fd, int clear_refs_fd);

  struct Region {
    RegionId id;
    std::string name;
    PageRange range;
  };

  Status clear_refs();
  Status scan_region(const Region& r, std::vector<std::uint32_t>& out);

  mutable std::mutex mu_;
  std::map<RegionId, Region> regions_;
  RegionId next_id_ = 1;
  int pagemap_fd_ = -1;
  int clear_refs_fd_ = -1;
  std::uint64_t arms_ = 0;
  std::uint64_t collects_ = 0;
  std::uint64_t pages_scanned_ = 0;
};

}  // namespace ickpt::memtrack

// DirtyTracker implementation driven by explicit write notifications.
//
// No virtual-memory tricks: the application (or a trace replayer)
// calls note_write() for every store range.  Deterministic and exact,
// which makes it the reference oracle in the engine-equivalence
// property tests and the engine of choice for analysis-only runs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "memtrack/bitmap.h"
#include "memtrack/tracker.h"

namespace ickpt::memtrack {

class ExplicitEngine final : public DirtyTracker {
 public:
  ExplicitEngine() = default;

  EngineKind kind() const noexcept override { return EngineKind::kExplicit; }

  Result<RegionId> attach(std::span<std::byte> mem, std::string name) override;
  Status detach(RegionId id) override;
  Status arm() override;
  Result<DirtySnapshot> collect(bool rearm) override;
  void note_write(const void* addr, std::size_t len) override;
  EngineCounters counters() const override;
  std::size_t region_count() const override;
  std::size_t tracked_bytes() const override;

 private:
  struct Region {
    RegionId id;
    std::string name;
    PageRange range;
    std::unique_ptr<AtomicBitmap> bitmap;
  };

  mutable std::mutex mu_;
  std::map<RegionId, Region> regions_;
  RegionId next_id_ = 1;
  bool armed_ = false;
  std::uint64_t arms_ = 0;
  std::uint64_t collects_ = 0;
  std::uint64_t notes_ = 0;
};

}  // namespace ickpt::memtrack

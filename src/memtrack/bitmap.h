// Atomic page bitmap used by the dirty-page tracking engines.
//
// set() is called from the SIGSEGV handler, so it must be async-signal
// safe: lock-free atomic fetch_or only, no allocation, no locks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ickpt::memtrack {

class AtomicBitmap {
 public:
  AtomicBitmap() = default;
  explicit AtomicBitmap(std::size_t bits);

  // Non-copyable, non-movable once published to the signal handler.
  AtomicBitmap(const AtomicBitmap&) = delete;
  AtomicBitmap& operator=(const AtomicBitmap&) = delete;

  std::size_t size_bits() const noexcept { return bits_; }

  /// Async-signal-safe. Returns true if the bit was newly set.
  bool set(std::size_t idx) noexcept {
    const std::uint64_t mask = 1ull << (idx & 63);
    std::uint64_t prev =
        words_[idx >> 6].fetch_or(mask, std::memory_order_relaxed);
    return (prev & mask) == 0;
  }

  bool test(std::size_t idx) const noexcept {
    return (words_[idx >> 6].load(std::memory_order_relaxed) >>
            (idx & 63)) & 1u;
  }

  /// Clear all bits (not atomic as a whole; callers serialize vs. collect).
  void clear() noexcept;

  /// Number of set bits.
  std::size_t count() const noexcept;

  /// Append indices of set bits (over the first `limit_bits` bits) to
  /// `out`, atomically swapping each word to zero as it is consumed.
  void drain_set_bits(std::vector<std::uint32_t>& out,
                      std::size_t limit_bits) noexcept;

  /// Append indices of set bits without clearing.
  void copy_set_bits(std::vector<std::uint32_t>& out,
                     std::size_t limit_bits) const noexcept;

 private:
  std::size_t bits_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace ickpt::memtrack

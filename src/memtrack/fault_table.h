// Process-wide table mapping faulting addresses to tracked regions.
//
// SIGSEGV is a process-global resource, so all MProtectEngine instances
// publish their regions here.  The signal handler walks the table with
// only async-signal-safe operations: relaxed atomic loads, an atomic
// fetch_or into the region's dirty bitmap, and an mprotect(2) syscall
// to unprotect the faulted page (the same technique as the paper's
// instrumentation library and libckpt).
//
// Concurrency contract: publish/unpublish/set_armed are serialized by
// an internal mutex.  The handler reads slots lock-free behind a
// per-slot sequence guard.  Callers must guarantee no in-flight writes
// to a region while it is being unpublished (i.e. a rank detaches only
// its own quiescent regions).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "memtrack/bitmap.h"

namespace ickpt::memtrack::detail {

class FaultTable {
 public:
  static constexpr int kMaxSlots = 8192;
  static constexpr int kNoSlot = -1;

  static FaultTable& instance();

  /// Install the SIGSEGV handler (idempotent, thread-safe).
  void ensure_handler_installed();

  /// Publish a region.  `batch_pages` >= 1: on fault, that many
  /// consecutive pages are unprotected and conservatively marked dirty
  /// (fault-batching ablation; 1 == the paper's exact page granularity).
  /// Returns slot index or kNoSlot if the table is full.
  int publish(std::uintptr_t begin, std::uintptr_t end, AtomicBitmap* bitmap,
              std::atomic<std::uint64_t>* fault_counter,
              std::uint32_t batch_pages);

  void unpublish(int slot);

  void set_armed(int slot, bool armed);

  /// Update the extent of a published region (not used by the engines
  /// today; regions are republished on resize).
  void update_range(int slot, std::uintptr_t begin, std::uintptr_t end);

  /// Called from the signal handler.  Returns true if the fault was a
  /// write to an armed tracked page and has been absorbed.
  bool handle_fault(std::uintptr_t addr) noexcept;

  /// Number of currently-published slots (for tests).
  int published_count() const noexcept {
    return published_.load(std::memory_order_relaxed);
  }

 private:
  FaultTable() = default;

  struct Slot {
    std::atomic<std::uint32_t> seq{0};  ///< odd while being mutated
    std::atomic<std::uintptr_t> begin{0};
    std::atomic<std::uintptr_t> end{0};
    std::atomic<bool> armed{false};
    std::atomic<AtomicBitmap*> bitmap{nullptr};
    std::atomic<std::atomic<std::uint64_t>*> fault_counter{nullptr};
    std::atomic<std::uint32_t> batch_pages{1};
    std::atomic<bool> in_use{false};
  };

  Slot slots_[kMaxSlots];
  std::atomic<int> high_water_{0};
  std::atomic<int> published_{0};
  std::mutex write_mu_;
};

}  // namespace ickpt::memtrack::detail

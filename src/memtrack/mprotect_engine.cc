#include "memtrack/mprotect_engine.h"

#include <sys/mman.h>

#include <cerrno>
#include <cstring>

#include "memtrack/fault_table.h"
#include "obs/timer.h"

namespace ickpt::memtrack {

using detail::FaultTable;

namespace {

/// Handles are resolved once; arm/collect record via relaxed atomics.
struct EngineMetrics {
  obs::Histogram& arm_ns;
  obs::Histogram& collect_ns;
  obs::Counter& pages_protected;

  static EngineMetrics& get() {
    static EngineMetrics m{obs::registry().histogram("memtrack.arm_ns"),
                           obs::registry().histogram("memtrack.collect_ns"),
                           obs::registry().counter("memtrack.pages_protected")};
    return m;
  }
};

}  // namespace

struct MProtectEngine::Region {
  RegionId id = kInvalidRegion;
  std::string name;
  PageRange range;
  AtomicBitmap bitmap;
  int slot = FaultTable::kNoSlot;

  Region(RegionId rid, std::string n, PageRange rng)
      : id(rid), name(std::move(n)), range(rng), bitmap(rng.pages()) {}
};

MProtectEngine::MProtectEngine(Options options) : options_(options) {
  FaultTable::instance().ensure_handler_installed();
}

MProtectEngine::~MProtectEngine() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, r] : regions_) {
    FaultTable::instance().unpublish(r->slot);
    (void)protect_region(*r, /*readonly=*/false);
  }
}

Status MProtectEngine::protect_region(Region& r, bool readonly) {
  int prot = readonly ? PROT_READ : (PROT_READ | PROT_WRITE);
  if (::mprotect(reinterpret_cast<void*>(r.range.begin), r.range.bytes(),
                 prot) != 0) {
    return io_error("mprotect failed for region '" + r.name +
                    "': " + std::strerror(errno));
  }
  return Status::ok();
}

Result<RegionId> MProtectEngine::attach(std::span<std::byte> mem,
                                        std::string name) {
  if (mem.empty()) return invalid_argument("attach: empty range");
  auto addr = reinterpret_cast<std::uintptr_t>(mem.data());
  if (addr % page_size() != 0 || mem.size() % page_size() != 0) {
    return invalid_argument("attach: range must be page-aligned ('" + name +
                            "')");
  }
  std::lock_guard<std::mutex> lock(mu_);
  RegionId id = next_id_++;
  auto region = std::make_unique<Region>(
      id, std::move(name), PageRange{addr, addr + mem.size()});
  int slot = FaultTable::instance().publish(region->range.begin,
                                            region->range.end,
                                            &region->bitmap, &faults_,
                                            options_.fault_batch_pages);
  if (slot == FaultTable::kNoSlot) {
    return Status(ErrorCode::kResourceExhausted, "fault table is full");
  }
  region->slot = slot;
  if (armed_) {
    ICKPT_RETURN_IF_ERROR(protect_region(*region, /*readonly=*/true));
    FaultTable::instance().set_armed(slot, true);
  }
  regions_.emplace(id, std::move(region));
  return id;
}

Status MProtectEngine::detach(RegionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = regions_.find(id);
  if (it == regions_.end()) return not_found("detach: unknown region id");
  Region& r = *it->second;
  FaultTable::instance().unpublish(r.slot);
  Status st = protect_region(r, /*readonly=*/false);
  regions_.erase(it);
  return st;
}

Status MProtectEngine::arm() {
  std::lock_guard<std::mutex> lock(mu_);
  obs::ScopedTimer timer(EngineMetrics::get().arm_ns);
  std::uint64_t pages = 0;
  for (auto& [id, r] : regions_) {
    r->bitmap.clear();
    ICKPT_RETURN_IF_ERROR(protect_region(*r, /*readonly=*/true));
    FaultTable::instance().set_armed(r->slot, true);
    pages += r->range.pages();
  }
  EngineMetrics::get().pages_protected.inc(pages);
  armed_ = true;
  ++arms_;
  return Status::ok();
}

Result<DirtySnapshot> MProtectEngine::collect(bool rearm) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::ScopedTimer timer(EngineMetrics::get().collect_ns);
  DirtySnapshot snap;
  snap.regions.reserve(regions_.size());
  for (auto& [id, r] : regions_) {
    // Re-protect (or fully unprotect) *before* draining the bitmap so a
    // concurrent write between the two steps is attributed to the next
    // interval rather than lost — the same benign race the paper's
    // alarm handler has.
    ICKPT_RETURN_IF_ERROR(protect_region(*r, /*readonly=*/rearm));
    FaultTable::instance().set_armed(r->slot, rearm);
    if (rearm) EngineMetrics::get().pages_protected.inc(r->range.pages());
    RegionDirty rd;
    rd.id = id;
    rd.name = r->name;
    rd.range = r->range;
    r->bitmap.drain_set_bits(rd.dirty_pages, r->range.pages());
    snap.regions.push_back(std::move(rd));
  }
  armed_ = rearm;
  ++collects_;
  if (rearm) ++arms_;
  return snap;
}

EngineCounters MProtectEngine::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineCounters c;
  c.faults_handled = faults_.load(std::memory_order_relaxed);
  c.arms = arms_;
  c.collects = collects_;
  return c;
}

std::size_t MProtectEngine::region_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return regions_.size();
}

std::size_t MProtectEngine::tracked_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, r] : regions_) n += r->range.bytes();
  return n;
}

}  // namespace ickpt::memtrack

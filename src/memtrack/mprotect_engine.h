// DirtyTracker implementation using mprotect + SIGSEGV write faults —
// the exact mechanism of the paper's instrumentation library:
//
//   "The protection of each page of memory is set to read-only.  When
//    the processor attempts to write to a protected page, the operating
//    system sends the process a SEGV signal. ... The page is then
//    unprotected so that future writes to it in that timeslice do not
//    cause segmentation faults." (Section 4.2)
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "memtrack/bitmap.h"
#include "memtrack/tracker.h"

namespace ickpt::memtrack {

class MProtectEngine final : public DirtyTracker {
 public:
  struct Options {
    /// Pages unprotected (and conservatively marked dirty) per fault.
    /// 1 reproduces the paper; larger values trade IWS over-approximation
    /// for fewer faults (ablation X1/X4).
    std::uint32_t fault_batch_pages = 1;
  };

  MProtectEngine() : MProtectEngine(Options{}) {}
  explicit MProtectEngine(Options options);
  ~MProtectEngine() override;

  MProtectEngine(const MProtectEngine&) = delete;
  MProtectEngine& operator=(const MProtectEngine&) = delete;

  EngineKind kind() const noexcept override { return EngineKind::kMProtect; }

  Result<RegionId> attach(std::span<std::byte> mem, std::string name) override;
  Status detach(RegionId id) override;
  Status arm() override;
  Result<DirtySnapshot> collect(bool rearm) override;
  EngineCounters counters() const override;
  std::size_t region_count() const override;
  std::size_t tracked_bytes() const override;

 private:
  struct Region;

  Status protect_region(Region& r, bool readonly);

  Options options_;
  mutable std::mutex mu_;
  std::map<RegionId, std::unique_ptr<Region>> regions_;
  RegionId next_id_ = 1;
  bool armed_ = false;
  std::atomic<std::uint64_t> faults_{0};
  std::uint64_t arms_ = 0;
  std::uint64_t collects_ = 0;
};

}  // namespace ickpt::memtrack

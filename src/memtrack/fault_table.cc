#include "memtrack/fault_table.h"

#include <signal.h>
#include <sys/mman.h>

#include <cstdlib>

#include "common/page.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ickpt::memtrack::detail {

namespace {

struct sigaction g_prev_action;
bool g_have_prev = false;

// Registered once, on a normal thread, before the handler can run;
// after that the handler only touches them with relaxed atomics
// (see the signal-safety contract in obs/metrics.h).
obs::Counter* g_fault_counter = nullptr;
obs::Histogram* g_fault_hist = nullptr;
std::uint16_t g_fault_trace = 0;  ///< interned "memtrack.fault"

// Latency is sampled 1-in-64: at tight timeslices a run takes tens of
// thousands of faults, and two clock reads on every one of them is a
// measurable slowdown of the very path the histogram describes.  The
// counter still counts every fault.
constexpr std::uint64_t kFaultSampleMask = 63;
std::atomic<std::uint64_t> g_fault_sample{0};

void segv_handler(int sig, siginfo_t* info, void* uctx) {
  auto addr = reinterpret_cast<std::uintptr_t>(info->si_addr);
  if (FaultTable::instance().handle_fault(addr)) return;

  // Not a tracked page: forward to the previous handler or re-raise
  // with default disposition so genuine crashes still crash.
  if (g_have_prev && (g_prev_action.sa_flags & SA_SIGINFO) &&
      g_prev_action.sa_sigaction != nullptr) {
    g_prev_action.sa_sigaction(sig, info, uctx);
    return;
  }
  if (g_have_prev && !(g_prev_action.sa_flags & SA_SIGINFO) &&
      g_prev_action.sa_handler != SIG_DFL &&
      g_prev_action.sa_handler != SIG_IGN) {
    g_prev_action.sa_handler(sig);
    return;
  }
  // Genuine crash: give the flight recorder its one shot before
  // re-raising with default disposition (AS-safe dump path).
  obs::flightrec::dump_from_signal("SIGSEGV");
  ::signal(SIGSEGV, SIG_DFL);
  ::raise(SIGSEGV);
}

}  // namespace

FaultTable& FaultTable::instance() {
  static FaultTable* table = new FaultTable();  // immortal: handler may
  return *table;                                // outlive static dtors
}

void FaultTable::ensure_handler_installed() {
  static std::once_flag once;
  std::call_once(once, [] {
    g_fault_counter = &obs::registry().counter("memtrack.faults");
    g_fault_hist = &obs::registry().histogram("memtrack.fault_ns");
    g_fault_trace = obs::trace_name("memtrack.fault", obs::TraceCat::kMemtrack);
    struct sigaction sa = {};
    sa.sa_sigaction = &segv_handler;
    sa.sa_flags = SA_SIGINFO | SA_NODEFER;
    sigemptyset(&sa.sa_mask);
    if (::sigaction(SIGSEGV, &sa, &g_prev_action) == 0) {
      g_have_prev = true;
    }
  });
}

int FaultTable::publish(std::uintptr_t begin, std::uintptr_t end,
                        AtomicBitmap* bitmap,
                        std::atomic<std::uint64_t>* fault_counter,
                        std::uint32_t batch_pages) {
  std::lock_guard<std::mutex> lock(write_mu_);
  int hw = high_water_.load(std::memory_order_relaxed);
  int slot = kNoSlot;
  for (int i = 0; i < hw; ++i) {
    if (!slots_[i].in_use.load(std::memory_order_relaxed)) {
      slot = i;
      break;
    }
  }
  if (slot == kNoSlot) {
    if (hw >= kMaxSlots) return kNoSlot;
    slot = hw;
  }

  Slot& s = slots_[slot];
  s.seq.fetch_add(1, std::memory_order_release);  // now odd: unstable
  s.begin.store(begin, std::memory_order_relaxed);
  s.end.store(end, std::memory_order_relaxed);
  s.bitmap.store(bitmap, std::memory_order_relaxed);
  s.fault_counter.store(fault_counter, std::memory_order_relaxed);
  s.batch_pages.store(batch_pages == 0 ? 1 : batch_pages,
                      std::memory_order_relaxed);
  s.armed.store(false, std::memory_order_relaxed);
  s.in_use.store(true, std::memory_order_relaxed);
  s.seq.fetch_add(1, std::memory_order_release);  // even again: stable

  if (slot == hw) high_water_.store(hw + 1, std::memory_order_release);
  published_.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void FaultTable::unpublish(int slot) {
  if (slot < 0 || slot >= kMaxSlots) return;
  std::lock_guard<std::mutex> lock(write_mu_);
  Slot& s = slots_[slot];
  s.seq.fetch_add(1, std::memory_order_release);
  s.armed.store(false, std::memory_order_relaxed);
  s.begin.store(0, std::memory_order_relaxed);
  s.end.store(0, std::memory_order_relaxed);
  s.bitmap.store(nullptr, std::memory_order_relaxed);
  s.fault_counter.store(nullptr, std::memory_order_relaxed);
  s.in_use.store(false, std::memory_order_relaxed);
  s.seq.fetch_add(1, std::memory_order_release);
  published_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultTable::set_armed(int slot, bool armed) {
  if (slot < 0 || slot >= kMaxSlots) return;
  slots_[slot].armed.store(armed, std::memory_order_release);
}

void FaultTable::update_range(int slot, std::uintptr_t begin,
                              std::uintptr_t end) {
  if (slot < 0 || slot >= kMaxSlots) return;
  std::lock_guard<std::mutex> lock(write_mu_);
  Slot& s = slots_[slot];
  s.seq.fetch_add(1, std::memory_order_release);
  s.begin.store(begin, std::memory_order_relaxed);
  s.end.store(end, std::memory_order_relaxed);
  s.seq.fetch_add(1, std::memory_order_release);
}

bool FaultTable::handle_fault(std::uintptr_t addr) noexcept {
  const std::uint64_t t0 =
      g_fault_hist != nullptr && obs::enabled() &&
              (g_fault_sample.fetch_add(1, std::memory_order_relaxed) &
               kFaultSampleMask) == 0
          ? obs::now_ns()
          : 0;
  const std::size_t psize = page_size();
  const unsigned shift = page_shift();
  const int hw = high_water_.load(std::memory_order_acquire);

  for (int i = 0; i < hw; ++i) {
    Slot& s = slots_[i];
    std::uint32_t seq0 = s.seq.load(std::memory_order_acquire);
    if (seq0 & 1u) continue;  // being mutated
    std::uintptr_t begin = s.begin.load(std::memory_order_relaxed);
    std::uintptr_t end = s.end.load(std::memory_order_relaxed);
    if (addr < begin || addr >= end) continue;
    if (!s.armed.load(std::memory_order_relaxed)) continue;
    AtomicBitmap* bm = s.bitmap.load(std::memory_order_relaxed);
    std::uint32_t batch = s.batch_pages.load(std::memory_order_relaxed);
    auto* ctr = s.fault_counter.load(std::memory_order_relaxed);
    if (s.seq.load(std::memory_order_acquire) != seq0) continue;
    if (bm == nullptr) continue;

    std::uintptr_t page_addr = addr & ~(psize - 1);
    std::size_t first = (page_addr - begin) >> shift;
    std::size_t total = (end - begin) >> shift;
    std::size_t n = batch;
    if (first + n > total) n = total - first;
    for (std::size_t p = 0; p < n; ++p) bm->set(first + p);
    if (ctr != nullptr) ctr->fetch_add(1, std::memory_order_relaxed);
    // Unprotect so later writes in this interval run at full speed.
    ::mprotect(reinterpret_cast<void*>(page_addr), n * psize,
               PROT_READ | PROT_WRITE);
    if (g_fault_counter != nullptr) g_fault_counter->inc();
    if (t0 != 0) g_fault_hist->record(obs::now_ns() - t0);
    // Signal-context emit: relaxed/release stores only (obs/trace.h).
    obs::trace_instant(g_fault_trace, static_cast<std::uint64_t>(page_addr),
                       static_cast<std::uint64_t>(n));
    return true;
  }
  return false;
}

}  // namespace ickpt::memtrack::detail

// DirtyTracker implementation over userfaultfd write-protection —
// the modern production mechanism for what the paper built with
// mprotect + SIGSEGV.
//
// A poller thread services write-protect faults from the kernel: it
// records the dirty page and lifts the protection, releasing the
// faulting thread.  Compared with the SIGSEGV scheme there is no
// signal handler (no async-signal-safety constraints) and protection
// changes are batched through a single ioctl per region.
//
// Requires UFFD_FEATURE_PAGEFAULT_FLAG_WP (Linux >= 5.7 for anonymous
// memory); probe-guarded like the soft-dirty engine.  Tracked pages
// must be resident before arming (AddressSpace::map prefaults).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "memtrack/bitmap.h"
#include "memtrack/tracker.h"

namespace ickpt::memtrack {

/// True if userfaultfd write-protect mode works here.
bool uffd_supported();

class UffdEngine final : public DirtyTracker {
 public:
  /// Fails with kUnsupported when the kernel/configuration lacks
  /// userfaultfd write-protection.
  static Result<std::unique_ptr<UffdEngine>> create();

  ~UffdEngine() override;

  UffdEngine(const UffdEngine&) = delete;
  UffdEngine& operator=(const UffdEngine&) = delete;

  EngineKind kind() const noexcept override { return EngineKind::kUffd; }

  Result<RegionId> attach(std::span<std::byte> mem, std::string name) override;
  Status detach(RegionId id) override;
  Status arm() override;
  Result<DirtySnapshot> collect(bool rearm) override;
  EngineCounters counters() const override;
  std::size_t region_count() const override;
  std::size_t tracked_bytes() const override;

 private:
  UffdEngine(int uffd, int stop_read_fd, int stop_write_fd);

  struct Region {
    RegionId id;
    std::string name;
    PageRange range;
    std::unique_ptr<AtomicBitmap> bitmap;
  };

  Status write_protect(const PageRange& range, bool protect);
  void poller_loop();
  Region* find_region_locked(std::uintptr_t addr);

  int uffd_ = -1;
  int stop_read_fd_ = -1;
  int stop_write_fd_ = -1;
  std::thread poller_;

  mutable std::mutex mu_;
  std::map<RegionId, Region> regions_;
  RegionId next_id_ = 1;
  bool armed_ = false;
  std::atomic<std::uint64_t> faults_{0};
  std::uint64_t arms_ = 0;
  std::uint64_t collects_ = 0;
};

}  // namespace ickpt::memtrack

#include "memtrack/tracker.h"

#include "memtrack/explicit_engine.h"
#include "memtrack/mprotect_engine.h"
#include "memtrack/softdirty_engine.h"
#include "memtrack/uffd_engine.h"

namespace ickpt::memtrack {

std::string_view to_string(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kMProtect: return "mprotect";
    case EngineKind::kSoftDirty: return "softdirty";
    case EngineKind::kUffd: return "uffd";
    case EngineKind::kExplicit: return "explicit";
  }
  return "?";
}

Result<std::unique_ptr<DirtyTracker>> make_tracker(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMProtect:
      return std::unique_ptr<DirtyTracker>(new MProtectEngine());
    case EngineKind::kSoftDirty: {
      auto engine = SoftDirtyEngine::create();
      if (!engine.is_ok()) return engine.status();
      return std::unique_ptr<DirtyTracker>(std::move(engine.value()));
    }
    case EngineKind::kUffd: {
      auto engine = UffdEngine::create();
      if (!engine.is_ok()) return engine.status();
      return std::unique_ptr<DirtyTracker>(std::move(engine.value()));
    }
    case EngineKind::kExplicit:
      return std::unique_ptr<DirtyTracker>(new ExplicitEngine());
  }
  return invalid_argument("unknown engine kind");
}

}  // namespace ickpt::memtrack

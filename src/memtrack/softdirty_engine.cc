#include "memtrack/softdirty_engine.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/timer.h"

namespace ickpt::memtrack {

namespace {

struct SoftDirtyMetrics {
  obs::Histogram& collect_ns;
  obs::Counter& pages_scanned;

  static SoftDirtyMetrics& get() {
    static SoftDirtyMetrics m{
        obs::registry().histogram("memtrack.collect_ns"),
        obs::registry().counter("memtrack.pagemap_pages_scanned")};
    return m;
  }
};

constexpr std::uint64_t kSoftDirtyBit = 1ull << 55;

/// One-shot runtime probe: map a page, clear refs, verify the write
/// sets the soft-dirty bit and that clearing resets it.
bool probe_soft_dirty() {
  int pagemap = ::open("/proc/self/pagemap", O_RDONLY | O_CLOEXEC);
  int clear = ::open("/proc/self/clear_refs", O_WRONLY | O_CLOEXEC);
  if (pagemap < 0 || clear < 0) {
    if (pagemap >= 0) ::close(pagemap);
    if (clear >= 0) ::close(clear);
    return false;
  }
  bool ok = false;
  void* p = ::mmap(nullptr, page_size(), PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p != MAP_FAILED) {
    *static_cast<volatile char*>(p) = 1;  // fault the page in first
    if (::write(clear, "4", 1) == 1) {
      *static_cast<volatile char*>(p) = 2;  // dirty it again
      std::uint64_t entry = 0;
      auto off = static_cast<off_t>(
          (reinterpret_cast<std::uintptr_t>(p) / page_size()) * 8);
      if (::pread(pagemap, &entry, sizeof entry, off) ==
              static_cast<ssize_t>(sizeof entry) &&
          (entry & kSoftDirtyBit) != 0) {
        // And verify clearing works.
        if (::write(clear, "4", 1) == 1 &&
            ::pread(pagemap, &entry, sizeof entry, off) ==
                static_cast<ssize_t>(sizeof entry) &&
            (entry & kSoftDirtyBit) == 0) {
          ok = true;
        }
      }
    }
    ::munmap(p, page_size());
  }
  ::close(pagemap);
  ::close(clear);
  return ok;
}

}  // namespace

bool soft_dirty_supported() {
  static const bool supported = probe_soft_dirty();
  return supported;
}

Result<std::unique_ptr<SoftDirtyEngine>> SoftDirtyEngine::create() {
  if (!soft_dirty_supported()) {
    return unsupported("kernel lacks usable soft-dirty support");
  }
  int pagemap = ::open("/proc/self/pagemap", O_RDONLY | O_CLOEXEC);
  if (pagemap < 0) {
    return io_error(std::string("open pagemap: ") + std::strerror(errno));
  }
  int clear = ::open("/proc/self/clear_refs", O_WRONLY | O_CLOEXEC);
  if (clear < 0) {
    ::close(pagemap);
    return io_error(std::string("open clear_refs: ") + std::strerror(errno));
  }
  return std::unique_ptr<SoftDirtyEngine>(
      new SoftDirtyEngine(pagemap, clear));
}

SoftDirtyEngine::SoftDirtyEngine(int pagemap_fd, int clear_refs_fd)
    : pagemap_fd_(pagemap_fd), clear_refs_fd_(clear_refs_fd) {}

SoftDirtyEngine::~SoftDirtyEngine() {
  if (pagemap_fd_ >= 0) ::close(pagemap_fd_);
  if (clear_refs_fd_ >= 0) ::close(clear_refs_fd_);
}

Result<RegionId> SoftDirtyEngine::attach(std::span<std::byte> mem,
                                         std::string name) {
  if (mem.empty()) return invalid_argument("attach: empty range");
  auto addr = reinterpret_cast<std::uintptr_t>(mem.data());
  if (addr % page_size() != 0 || mem.size() % page_size() != 0) {
    return invalid_argument("attach: range must be page-aligned ('" + name +
                            "')");
  }
  std::lock_guard<std::mutex> lock(mu_);
  RegionId id = next_id_++;
  regions_.emplace(
      id, Region{id, std::move(name), PageRange{addr, addr + mem.size()}});
  return id;
}

Status SoftDirtyEngine::detach(RegionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (regions_.erase(id) == 0) return not_found("detach: unknown region id");
  return Status::ok();
}

Status SoftDirtyEngine::clear_refs() {
  if (::pwrite(clear_refs_fd_, "4", 1, 0) != 1) {
    // clear_refs ignores offsets but pwrite keeps the fd stateless.
    if (::write(clear_refs_fd_, "4", 1) != 1) {
      return io_error(std::string("clear_refs: ") + std::strerror(errno));
    }
  }
  return Status::ok();
}

Status SoftDirtyEngine::scan_region(const Region& r,
                                    std::vector<std::uint32_t>& out) {
  constexpr std::size_t kChunk = 2048;  // pagemap entries per read
  std::uint64_t buf[kChunk];
  const std::size_t npages = r.range.pages();
  const std::uint64_t first_pfn = r.range.begin / page_size();
  std::size_t done = 0;
  while (done < npages) {
    std::size_t n = std::min(kChunk, npages - done);
    auto off = static_cast<off_t>((first_pfn + done) * 8);
    ssize_t got = ::pread(pagemap_fd_, buf, n * 8, off);
    if (got < 0) {
      return io_error(std::string("pagemap read: ") + std::strerror(errno));
    }
    auto entries = static_cast<std::size_t>(got) / 8;
    if (entries == 0) break;
    for (std::size_t i = 0; i < entries; ++i) {
      if (buf[i] & kSoftDirtyBit) {
        out.push_back(static_cast<std::uint32_t>(done + i));
      }
    }
    done += entries;
    pages_scanned_ += entries;
    SoftDirtyMetrics::get().pages_scanned.inc(entries);
  }
  return Status::ok();
}

Status SoftDirtyEngine::arm() {
  std::lock_guard<std::mutex> lock(mu_);
  ICKPT_RETURN_IF_ERROR(clear_refs());
  ++arms_;
  return Status::ok();
}

Result<DirtySnapshot> SoftDirtyEngine::collect(bool rearm) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::ScopedTimer timer(SoftDirtyMetrics::get().collect_ns);
  DirtySnapshot snap;
  snap.regions.reserve(regions_.size());
  for (const auto& [id, r] : regions_) {
    RegionDirty rd;
    rd.id = id;
    rd.name = r.name;
    rd.range = r.range;
    ICKPT_RETURN_IF_ERROR(scan_region(r, rd.dirty_pages));
    snap.regions.push_back(std::move(rd));
  }
  ++collects_;
  if (rearm) {
    ICKPT_RETURN_IF_ERROR(clear_refs());
    ++arms_;
  }
  return snap;
}

EngineCounters SoftDirtyEngine::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineCounters c;
  c.arms = arms_;
  c.collects = collects_;
  c.pages_scanned = pages_scanned_;
  return c;
}

std::size_t SoftDirtyEngine::region_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return regions_.size();
}

std::size_t SoftDirtyEngine::tracked_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, r] : regions_) n += r.range.bytes();
  return n;
}

}  // namespace ickpt::memtrack

#include "memtrack/uffd_engine.h"

#include <fcntl.h>
#include <linux/userfaultfd.h>
#include <poll.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ickpt::memtrack {

namespace {

int open_uffd() {
  long fd = ::syscall(SYS_userfaultfd, O_CLOEXEC | O_NONBLOCK);
  if (fd < 0) return -1;
  struct uffdio_api api = {};
  api.api = UFFD_API;
  api.features = UFFD_FEATURE_PAGEFAULT_FLAG_WP;
  if (::ioctl(static_cast<int>(fd), UFFDIO_API, &api) < 0 ||
      (api.features & UFFD_FEATURE_PAGEFAULT_FLAG_WP) == 0) {
    ::close(static_cast<int>(fd));
    return -1;
  }
  return static_cast<int>(fd);
}

/// Full end-to-end probe: register a page, write-protect it, write
/// from another thread... too heavy; registering + WP ioctl success is
/// a reliable indicator in practice.
bool probe_uffd() {
  int fd = open_uffd();
  if (fd < 0) return false;
  bool ok = false;
  void* p = ::mmap(nullptr, page_size(), PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p != MAP_FAILED) {
    *static_cast<volatile char*>(p) = 1;  // make resident
    struct uffdio_register reg = {};
    reg.range.start = reinterpret_cast<unsigned long long>(p);
    reg.range.len = page_size();
    reg.mode = UFFDIO_REGISTER_MODE_WP;
    if (::ioctl(fd, UFFDIO_REGISTER, &reg) == 0) {
      struct uffdio_writeprotect wp = {};
      wp.range = reg.range;
      wp.mode = UFFDIO_WRITEPROTECT_MODE_WP;
      if (::ioctl(fd, UFFDIO_WRITEPROTECT, &wp) == 0) {
        wp.mode = 0;  // un-protect again
        ok = ::ioctl(fd, UFFDIO_WRITEPROTECT, &wp) == 0;
      }
      struct uffdio_range range = reg.range;
      ::ioctl(fd, UFFDIO_UNREGISTER, &range);
    }
    ::munmap(p, page_size());
  }
  ::close(fd);
  return ok;
}

}  // namespace

bool uffd_supported() {
  static const bool supported = probe_uffd();
  return supported;
}

Result<std::unique_ptr<UffdEngine>> UffdEngine::create() {
  if (!uffd_supported()) {
    return unsupported("userfaultfd write-protect unavailable");
  }
  int uffd = open_uffd();
  if (uffd < 0) {
    return io_error(std::string("userfaultfd: ") + std::strerror(errno));
  }
  int pipefd[2];
  if (::pipe2(pipefd, O_CLOEXEC) != 0) {
    ::close(uffd);
    return io_error(std::string("pipe2: ") + std::strerror(errno));
  }
  return std::unique_ptr<UffdEngine>(
      new UffdEngine(uffd, pipefd[0], pipefd[1]));
}

UffdEngine::UffdEngine(int uffd, int stop_read_fd, int stop_write_fd)
    : uffd_(uffd), stop_read_fd_(stop_read_fd), stop_write_fd_(stop_write_fd) {
  poller_ = std::thread([this] { poller_loop(); });
}

UffdEngine::~UffdEngine() {
  // Unblock any faulting threads, then stop the poller.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, r] : regions_) {
      (void)write_protect(r.range, /*protect=*/false);
      struct uffdio_range range = {};
      range.start = r.range.begin;
      range.len = r.range.bytes();
      ::ioctl(uffd_, UFFDIO_UNREGISTER, &range);
    }
    regions_.clear();
  }
  char stop = 1;
  (void)!::write(stop_write_fd_, &stop, 1);
  poller_.join();
  ::close(stop_read_fd_);
  ::close(stop_write_fd_);
  ::close(uffd_);
}

Status UffdEngine::write_protect(const PageRange& range, bool protect) {
  struct uffdio_writeprotect wp = {};
  wp.range.start = range.begin;
  wp.range.len = range.bytes();
  wp.mode = protect ? UFFDIO_WRITEPROTECT_MODE_WP : 0;
  if (::ioctl(uffd_, UFFDIO_WRITEPROTECT, &wp) != 0) {
    return io_error(std::string("UFFDIO_WRITEPROTECT: ") +
                    std::strerror(errno));
  }
  return Status::ok();
}

UffdEngine::Region* UffdEngine::find_region_locked(std::uintptr_t addr) {
  for (auto& [id, r] : regions_) {
    if (r.range.contains(addr)) return &r;
  }
  return nullptr;
}

void UffdEngine::poller_loop() {
  for (;;) {
    struct pollfd fds[2] = {{uffd_, POLLIN, 0}, {stop_read_fd_, POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents & POLLIN) return;  // shutdown
    if (!(fds[0].revents & POLLIN)) continue;

    struct uffd_msg msg;
    ssize_t n = ::read(uffd_, &msg, sizeof msg);
    if (n != static_cast<ssize_t>(sizeof msg)) continue;
    if (msg.event != UFFD_EVENT_PAGEFAULT) continue;

    const auto addr = static_cast<std::uintptr_t>(msg.arg.pagefault.address);
    const std::uintptr_t page_addr = addr & ~(page_size() - 1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (Region* r = find_region_locked(addr)) {
        if (msg.arg.pagefault.flags & UFFD_PAGEFAULT_FLAG_WP) {
          r->bitmap->set((page_addr - r->range.begin) >> page_shift());
          faults_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    // Lift write-protection on the faulted page to release the writer
    // (even for unknown ranges: leaving a thread wedged is worse).
    struct uffdio_writeprotect wp = {};
    wp.range.start = page_addr;
    wp.range.len = page_size();
    wp.mode = 0;
    ::ioctl(uffd_, UFFDIO_WRITEPROTECT, &wp);
  }
}

Result<RegionId> UffdEngine::attach(std::span<std::byte> mem,
                                    std::string name) {
  if (mem.empty()) return invalid_argument("attach: empty range");
  auto addr = reinterpret_cast<std::uintptr_t>(mem.data());
  if (addr % page_size() != 0 || mem.size() % page_size() != 0) {
    return invalid_argument("attach: range must be page-aligned ('" + name +
                            "')");
  }
  struct uffdio_register reg = {};
  reg.range.start = addr;
  reg.range.len = mem.size();
  reg.mode = UFFDIO_REGISTER_MODE_WP;
  if (::ioctl(uffd_, UFFDIO_REGISTER, &reg) != 0) {
    return io_error(std::string("UFFDIO_REGISTER: ") + std::strerror(errno));
  }

  std::lock_guard<std::mutex> lock(mu_);
  RegionId id = next_id_++;
  PageRange range{addr, addr + mem.size()};
  Region region{id, std::move(name), range,
                std::make_unique<AtomicBitmap>(range.pages())};
  if (armed_) {
    Status st = write_protect(range, true);
    if (!st.is_ok()) {
      struct uffdio_range urange = reg.range;
      ::ioctl(uffd_, UFFDIO_UNREGISTER, &urange);
      return st;
    }
  }
  regions_.emplace(id, std::move(region));
  return id;
}

Status UffdEngine::detach(RegionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = regions_.find(id);
  if (it == regions_.end()) return not_found("detach: unknown region id");
  ICKPT_RETURN_IF_ERROR(write_protect(it->second.range, false));
  struct uffdio_range range = {};
  range.start = it->second.range.begin;
  range.len = it->second.range.bytes();
  if (::ioctl(uffd_, UFFDIO_UNREGISTER, &range) != 0) {
    return io_error(std::string("UFFDIO_UNREGISTER: ") +
                    std::strerror(errno));
  }
  regions_.erase(it);
  return Status::ok();
}

Status UffdEngine::arm() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, r] : regions_) {
    r.bitmap->clear();
    ICKPT_RETURN_IF_ERROR(write_protect(r.range, true));
  }
  armed_ = true;
  ++arms_;
  return Status::ok();
}

Result<DirtySnapshot> UffdEngine::collect(bool rearm) {
  std::lock_guard<std::mutex> lock(mu_);
  DirtySnapshot snap;
  snap.regions.reserve(regions_.size());
  for (auto& [id, r] : regions_) {
    // Same ordering rationale as the mprotect engine: re-protect
    // first, then drain, so a racing write lands in the next interval.
    ICKPT_RETURN_IF_ERROR(write_protect(r.range, rearm));
    RegionDirty rd;
    rd.id = id;
    rd.name = r.name;
    rd.range = r.range;
    r.bitmap->drain_set_bits(rd.dirty_pages, r.range.pages());
    snap.regions.push_back(std::move(rd));
  }
  armed_ = rearm;
  ++collects_;
  if (rearm) ++arms_;
  return snap;
}

EngineCounters UffdEngine::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineCounters c;
  c.faults_handled = faults_.load(std::memory_order_relaxed);
  c.arms = arms_;
  c.collects = collects_;
  return c;
}

std::size_t UffdEngine::region_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return regions_.size();
}

std::size_t UffdEngine::tracked_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, r] : regions_) n += r.range.bytes();
  return n;
}

}  // namespace ickpt::memtrack

#include "memtrack/bitmap.h"

#include <bit>

namespace ickpt::memtrack {

AtomicBitmap::AtomicBitmap(std::size_t bits)
    : bits_(bits), words_((bits + 63) / 64) {
  clear();
}

void AtomicBitmap::clear() noexcept {
  for (auto& w : words_) w.store(0, std::memory_order_relaxed);
}

std::size_t AtomicBitmap::count() const noexcept {
  std::size_t n = 0;
  for (const auto& w : words_) {
    n += static_cast<std::size_t>(
        std::popcount(w.load(std::memory_order_relaxed)));
  }
  return n;
}

void AtomicBitmap::drain_set_bits(std::vector<std::uint32_t>& out,
                                  std::size_t limit_bits) noexcept {
  const std::size_t nwords = words_.size();
  for (std::size_t wi = 0; wi < nwords; ++wi) {
    std::uint64_t w = words_[wi].exchange(0, std::memory_order_relaxed);
    while (w != 0) {
      unsigned bit = static_cast<unsigned>(std::countr_zero(w));
      std::size_t idx = wi * 64 + bit;
      if (idx < limit_bits) out.push_back(static_cast<std::uint32_t>(idx));
      w &= w - 1;
    }
  }
}

void AtomicBitmap::copy_set_bits(std::vector<std::uint32_t>& out,
                                 std::size_t limit_bits) const noexcept {
  const std::size_t nwords = words_.size();
  for (std::size_t wi = 0; wi < nwords; ++wi) {
    std::uint64_t w = words_[wi].load(std::memory_order_relaxed);
    while (w != 0) {
      unsigned bit = static_cast<unsigned>(std::countr_zero(w));
      std::size_t idx = wi * 64 + bit;
      if (idx < limit_bits) out.push_back(static_cast<std::uint32_t>(idx));
      w &= w - 1;
    }
  }
}

}  // namespace ickpt::memtrack

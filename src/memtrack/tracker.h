// DirtyTracker: the common interface over the dirty-page tracking
// engines.
//
// This is the reproduction of the paper's instrumentation library
// (Section 4.2): regions of application memory are attached, an
// interval is armed (pages write-protected / soft-dirty bits cleared),
// the application runs, and collect() returns the Incremental Working
// Set — the set of pages written during the interval.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/page.h"
#include "common/status.h"

namespace ickpt::memtrack {

using RegionId = std::uint32_t;
inline constexpr RegionId kInvalidRegion = 0xffffffffu;

enum class EngineKind {
  /// mprotect + SIGSEGV write faults — the paper's mechanism.
  kMProtect,
  /// /proc/self/clear_refs + pagemap soft-dirty bits (CRIU-style).
  kSoftDirty,
  /// userfaultfd write-protection (modern kernels; no signal handler).
  kUffd,
  /// Application-annotated writes; deterministic, for tests and replay.
  kExplicit,
};

std::string_view to_string(EngineKind kind) noexcept;

/// Dirty pages of one region at collection time.
struct RegionDirty {
  RegionId id = kInvalidRegion;
  std::string name;
  PageRange range;                        ///< region extent when collected
  std::vector<std::uint32_t> dirty_pages; ///< page indices within range

  std::size_t dirty_bytes() const noexcept {
    return dirty_pages.size() * page_size();
  }
};

/// One Incremental Working Set sample across all attached regions.
struct DirtySnapshot {
  std::vector<RegionDirty> regions;

  std::size_t dirty_pages() const noexcept {
    std::size_t n = 0;
    for (const auto& r : regions) n += r.dirty_pages.size();
    return n;
  }
  std::size_t dirty_bytes() const noexcept { return dirty_pages() * page_size(); }
  std::size_t tracked_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& r : regions) n += r.range.bytes();
    return n;
  }
};

/// Engine health/cost counters for the intrusiveness analysis (§6.5).
struct EngineCounters {
  std::uint64_t faults_handled = 0;  ///< SIGSEGV faults absorbed (mprotect)
  std::uint64_t arms = 0;            ///< intervals armed
  std::uint64_t collects = 0;        ///< snapshots taken
  std::uint64_t pages_scanned = 0;   ///< pagemap entries read (soft-dirty)
};

class DirtyTracker {
 public:
  virtual ~DirtyTracker() = default;

  virtual EngineKind kind() const noexcept = 0;

  /// Attach a page-aligned memory range for tracking.  `mem` must stay
  /// mapped until detach().  Newly attached regions are armed if and
  /// only if the tracker is currently armed.
  virtual Result<RegionId> attach(std::span<std::byte> mem,
                                  std::string name) = 0;

  /// Stop tracking a region and restore full access to its pages.
  virtual Status detach(RegionId id) = 0;

  /// Begin a tracking interval: clear dirty state and arm protection on
  /// every attached region.
  virtual Status arm() = 0;

  /// Collect the dirty set accumulated since arm().  When `rearm` is
  /// true the tracker atomically starts the next interval (the paper's
  /// alarm-handler behaviour: record, reset, re-protect).
  virtual Result<DirtySnapshot> collect(bool rearm) = 0;

  /// Explicit write notification.  Only the kExplicit engine uses it;
  /// hardware-backed engines ignore it, so proxy kernels can call it
  /// unconditionally.
  virtual void note_write(const void* /*addr*/, std::size_t /*len*/) {}

  virtual EngineCounters counters() const = 0;

  /// Number of currently attached regions.
  virtual std::size_t region_count() const = 0;

  /// Total tracked bytes across attached regions.
  virtual std::size_t tracked_bytes() const = 0;
};

/// Factory.  kSoftDirty / kUffd return kUnsupported when the kernel
/// lacks the mechanism (probed at first use).
Result<std::unique_ptr<DirtyTracker>> make_tracker(EngineKind kind);

/// True if the soft-dirty mechanism works in this kernel/container.
bool soft_dirty_supported();

/// True if userfaultfd write-protection works here (see uffd_engine.h).
bool uffd_supported();

}  // namespace ickpt::memtrack

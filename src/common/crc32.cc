#include "common/crc32.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/crc32_kernels.h"

namespace ickpt {

namespace {

constexpr std::uint32_t kPoly = 0xedb88320u;

using Table = std::array<std::uint32_t, 256>;

// kTables[0] is the classic bytewise table; kTables[k] maps a byte that
// is k positions deeper in an 8-byte window, so eight lookups advance
// the CRC by eight bytes at once (slice-by-8).
constexpr std::array<Table, 8> make_tables() {
  std::array<Table, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? kPoly ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      tables[k][i] =
          tables[0][tables[k - 1][i] & 0xffu] ^ (tables[k - 1][i] >> 8);
    }
  }
  return tables;
}
constexpr auto kTables = make_tables();

// ---- GF(2) matrix helpers for crc32_combine (zlib's algorithm).
// A 32x32 bit-matrix is 32 column vectors; mat*vec is an xor-fold.

std::uint32_t gf2_matrix_times(const std::uint32_t* mat,
                               std::uint32_t vec) noexcept {
  std::uint32_t sum = 0;
  while (vec != 0) {
    if (vec & 1u) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

void gf2_matrix_square(std::uint32_t* square,
                       const std::uint32_t* mat) noexcept {
  for (int n = 0; n < 32; ++n) square[n] = gf2_matrix_times(mat, mat[n]);
}

// ---- Kernel dispatch.
//
// One relaxed atomic function pointer, resolved at namespace-scope
// init (and re-resolvable via crc32_select_default_kernel()).  Code
// that runs before this TU's initializers still computes correct CRCs:
// the pointer statically defaults to slice8.

std::atomic<crc_detail::KernelFn> g_kernel{&crc_detail::slice8};
std::atomic<CrcKernel> g_kernel_id{CrcKernel::kSlice8};

crc_detail::KernelFn kernel_fn(CrcKernel k) noexcept {
  switch (k) {
    case CrcKernel::kPclmul:
      return &crc_detail::pclmul;
    case CrcKernel::kArmCrc:
      return &crc_detail::armcrc;
    case CrcKernel::kSlice8:
      break;
  }
  return &crc_detail::slice8;
}

CrcKernel best_hw_kernel() noexcept {
  if (crc_detail::pclmul_supported()) return CrcKernel::kPclmul;
  if (crc_detail::armcrc_supported()) return CrcKernel::kArmCrc;
  return CrcKernel::kSlice8;
}

const bool g_selected = (crc32_select_default_kernel(), true);

}  // namespace

namespace crc_detail {

std::uint32_t slice8(const unsigned char* p, std::size_t len,
                     std::uint32_t state) noexcept {
  std::uint32_t c = state;
  // Eight bytes per iteration; the two-word loads are memcpy so
  // alignment never matters.  Byte order: the format (and this table
  // layout) is little-endian, like every platform the repo targets.
  while (len >= 8) {
    std::uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = kTables[7][lo & 0xffu] ^ kTables[6][(lo >> 8) & 0xffu] ^
        kTables[5][(lo >> 16) & 0xffu] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xffu] ^ kTables[2][(hi >> 8) & 0xffu] ^
        kTables[1][(hi >> 16) & 0xffu] ^ kTables[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    c = kTables[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  }
  return c;
}

}  // namespace crc_detail

void Crc32::update(std::span<const std::byte> data) noexcept {
  update(data.data(), data.size());
}

void Crc32::update(const void* data, std::size_t len) noexcept {
  state_ = g_kernel.load(std::memory_order_relaxed)(
      static_cast<const unsigned char*>(data), len, state_);
}

void Crc32::combine(std::uint32_t crc_b, std::uint64_t len_b) noexcept {
  state_ = ~crc32_combine(~state_, crc_b, len_b);
}

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  Crc32 c;
  c.update(data);
  return c.value();
}

std::uint32_t crc32_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                            std::uint64_t len_b) noexcept {
  if (len_b == 0) return crc_a;

  // odd = the operator advancing a CRC by one zero bit; square it
  // repeatedly and apply the factors selected by len_b's bits, so the
  // whole shift-by-len_b costs O(log len_b) matrix squarings.
  std::uint32_t even[32];
  std::uint32_t odd[32];
  odd[0] = kPoly;
  std::uint32_t row = 1;
  for (int n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  gf2_matrix_square(even, odd);  // shift by two zero bits
  gf2_matrix_square(odd, even);  // shift by four zero bits

  // Apply len_b zero *bytes* to crc_a, squaring toward len_b's MSB.
  do {
    gf2_matrix_square(even, odd);
    if (len_b & 1u) crc_a = gf2_matrix_times(even, crc_a);
    len_b >>= 1;
    if (len_b == 0) break;
    gf2_matrix_square(odd, even);
    if (len_b & 1u) crc_a = gf2_matrix_times(odd, crc_a);
    len_b >>= 1;
  } while (len_b != 0);

  return crc_a ^ crc_b;
}

CrcKernel crc32_active_kernel() noexcept {
  return g_kernel_id.load(std::memory_order_relaxed);
}

const char* crc32_kernel_name(CrcKernel k) noexcept {
  switch (k) {
    case CrcKernel::kSlice8:
      return "slice8";
    case CrcKernel::kPclmul:
      return "pclmul";
    case CrcKernel::kArmCrc:
      return "armv8-crc";
  }
  return "unknown";
}

bool crc32_kernel_available(CrcKernel k) noexcept {
  switch (k) {
    case CrcKernel::kSlice8:
      return true;
    case CrcKernel::kPclmul:
      return crc_detail::pclmul_supported();
    case CrcKernel::kArmCrc:
      return crc_detail::armcrc_supported();
  }
  return false;
}

bool crc32_set_kernel(CrcKernel k) noexcept {
  if (!crc32_kernel_available(k)) return false;
  g_kernel.store(kernel_fn(k), std::memory_order_relaxed);
  g_kernel_id.store(k, std::memory_order_relaxed);
  return true;
}

CrcKernel crc32_select_default_kernel() noexcept {
  CrcKernel pick = best_hw_kernel();
  if (const char* env = std::getenv("ICKPT_CRC_IMPL")) {
    if (std::strcmp(env, "soft") == 0) {
      pick = CrcKernel::kSlice8;
    } else if (std::strcmp(env, "hw") == 0) {
      // Prefer hardware; soft-only hosts keep the fallback (the
      // override exists for testing, not for making CRCs impossible).
      pick = best_hw_kernel();
    }
    // "auto", empty or unknown values keep the detected default.
  }
  crc32_set_kernel(pick);
  return pick;
}

}  // namespace ickpt

// Internal: raw CRC-32 bulk kernels behind the dispatch in crc32.cc.
//
// Every kernel advances a *register-domain* CRC state (the
// pre-inversion value Crc32 keeps internally) over `len` bytes and
// returns the new state.  Kernels accept any length and alignment —
// the hardware ones delegate short heads/tails to slice8 internally —
// so the dispatcher is a single indirect call with no size checks.
//
// Not installed / not part of the public surface: include only from
// crc32*.cc and the kernel cross-check test.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ickpt::crc_detail {

using KernelFn = std::uint32_t (*)(const unsigned char* p, std::size_t len,
                                   std::uint32_t state) noexcept;

/// Table-driven slice-by-8 (always compiled, every platform).
std::uint32_t slice8(const unsigned char* p, std::size_t len,
                     std::uint32_t state) noexcept;

/// x86-64 PCLMULQDQ folding kernel.  Compiled with a per-function
/// target attribute; call only when pclmul_supported().
bool pclmul_supported() noexcept;
std::uint32_t pclmul(const unsigned char* p, std::size_t len,
                     std::uint32_t state) noexcept;

/// ARMv8 CRC32-instruction kernel; call only when armcrc_supported().
bool armcrc_supported() noexcept;
std::uint32_t armcrc(const unsigned char* p, std::size_t len,
                     std::uint32_t state) noexcept;

}  // namespace ickpt::crc_detail

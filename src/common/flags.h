// Typed command-line flag parsing for the CLI and bench harnesses.
//
// Replaces the old ad-hoc string-map parsing: every flag is declared
// up front with a type, a default (taken from the bound variable) and
// help text.  Unknown flags, missing values and malformed numbers are
// hard errors, not silent no-ops.
//
//   std::string app = "sage-1000";
//   bool async = false;
//   FlagSet flags("ickpt study");
//   flags.add_string("app", &app, "application to study");
//   flags.add_bool("async", &async, "overlap backend writes");
//   ICKPT_RETURN_IF_ERROR(flags.parse(argc, argv, 2));
//
// Accepted syntax: --name value, --name=value; booleans additionally
// accept bare --name (true) and --name=true|false|1|0|yes|no.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace ickpt {

class FlagSet {
 public:
  explicit FlagSet(std::string program) : program_(std::move(program)) {}

  void add_string(std::string name, std::string* target, std::string help);
  void add_int(std::string name, int* target, std::string help);
  void add_double(std::string name, double* target, std::string help);
  void add_bool(std::string name, bool* target, std::string help);

  /// Parse argv[first..argc).  On error the bound variables may be
  /// partially updated; callers are expected to exit.
  Status parse(int argc, char* const* argv, int first = 1);

  /// Positional (non-flag) arguments encountered during parse().
  /// Empty unless allow_positional(true) was called; otherwise a
  /// positional argument is a parse error.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  void allow_positional(bool allow) noexcept { allow_positional_ = allow; }

  /// One line per flag: --name=<type> (default: X)  help text.
  std::string help() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };

  struct Flag {
    std::string name;
    Type type = Type::kString;
    void* target = nullptr;
    std::string help;
    std::string default_str;
  };

  const Flag* find(const std::string& name) const;
  Status set_value(const Flag& flag, const std::string& value);

  std::string program_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
  bool allow_positional_ = false;
};

}  // namespace ickpt

// Console table and CSV emission for the benchmark harnesses.
//
// Every bench binary prints a paper-style table to stdout and writes
// the same rows as CSV so figures can be re-plotted.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ickpt {

/// Column-aligned text table with a title, header row, and data rows.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> cols);
  void add_row(std::vector<std::string> cols);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 1);

  /// Render with box-drawing-free ASCII alignment.
  void print(std::ostream& os) const;

  /// Write as CSV (header + rows) to `path`.  Returns false on I/O error.
  bool write_csv(const std::string& path) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escape one CSV field (quotes fields containing , " or newline).
std::string csv_escape(const std::string& field);

}  // namespace ickpt

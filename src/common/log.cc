#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace ickpt {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[ickpt %-5s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace ickpt

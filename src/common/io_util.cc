#include "common/io_util.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace ickpt::ioutil {

Result<std::size_t> read_full(int fd, std::span<std::byte> out) {
  std::size_t got_total = 0;
  while (got_total < out.size()) {
    const ssize_t got =
        ::read(fd, out.data() + got_total, out.size() - got_total);
    if (got < 0) {
      if (errno == EINTR) continue;
      return io_error(std::string("read failed: ") + std::strerror(errno));
    }
    if (got == 0) break;  // EOF
    got_total += static_cast<std::size_t>(got);
  }
  return got_total;
}

Status write_full(int fd, std::span<const std::byte> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t got = ::write(fd, data.data() + done, data.size() - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      return io_error(std::string("write failed: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(got);
  }
  return Status::ok();
}

Status send_full(int fd, std::span<const std::byte> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t got =
        ::send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (got < 0) {
      if (errno == EINTR) continue;
      return io_error(std::string("send failed: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(got);
  }
  return Status::ok();
}

}  // namespace ickpt::ioutil

#include "common/page.h"

#include <unistd.h>

#include <bit>

namespace ickpt {

namespace {
std::size_t query_page_size() noexcept {
  long p = ::sysconf(_SC_PAGESIZE);
  return p > 0 ? static_cast<std::size_t>(p) : 4096u;
}
}  // namespace

std::size_t page_size() noexcept {
  static const std::size_t kSize = query_page_size();
  return kSize;
}

unsigned page_shift() noexcept {
  static const unsigned kShift =
      static_cast<unsigned>(std::countr_zero(page_size()));
  return kShift;
}

std::size_t page_floor(std::size_t n) noexcept {
  return page_floor(n, page_size());
}

std::size_t page_ceil(std::size_t n) noexcept {
  return page_ceil(n, page_size());
}

std::size_t pages_for(std::size_t bytes) noexcept {
  return page_ceil(bytes) >> page_shift();
}

PageRange page_range_covering(const void* addr, std::size_t len) noexcept {
  auto a = reinterpret_cast<std::uintptr_t>(addr);
  return PageRange{page_floor(a, page_size()),
                   page_ceil(a + len, page_size())};
}

}  // namespace ickpt

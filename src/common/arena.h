// Page-aligned anonymous memory arena (RAII over mmap/munmap).
//
// Every byte of application state that ickpt tracks lives inside an
// arena, mirroring the paper's focus on the data region of the process
// (initialized/uninitialized data, heap, and mmap'ed memory; Section 4.1).
#pragma once

#include <cstddef>
#include <span>

#include "common/page.h"

namespace ickpt {

/// Owning, page-aligned, anonymous memory mapping.
/// Movable, not copyable.  Pages are demand-zeroed by the kernel.
class PageArena {
 public:
  PageArena() = default;

  /// Maps ceil(bytes / page) pages.  Throws std::bad_alloc on failure.
  explicit PageArena(std::size_t bytes);

  PageArena(PageArena&& other) noexcept;
  PageArena& operator=(PageArena&& other) noexcept;
  PageArena(const PageArena&) = delete;
  PageArena& operator=(const PageArena&) = delete;
  ~PageArena();

  std::byte* data() noexcept { return data_; }
  const std::byte* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  std::span<std::byte> span() noexcept { return {data_, size_}; }
  std::span<const std::byte> span() const noexcept { return {data_, size_}; }

  /// Page-aligned address range of the mapping.
  PageRange range() const noexcept;

  /// Pre-fault all pages (touch one byte per page) so later protection
  /// changes and dirty-tracking measure steady-state behaviour rather
  /// than first-touch allocation.
  void prefault() noexcept;

  /// Release the mapping early (idempotent).
  void reset() noexcept;

 private:
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ickpt

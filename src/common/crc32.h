// CRC-32 (IEEE 802.3 polynomial) with runtime-dispatched kernels.
//
// The polynomial is fixed — crc32_combine() and the on-disk format
// depend on it — but the bulk update is served by the fastest kernel
// the host offers, selected once at startup:
//   kSlice8  table-driven slice-by-8, the universal fallback;
//   kPclmul  PCLMULQDQ carry-less-multiply folding (x86-64);
//   kArmCrc  the ARMv8 CRC32 instructions (__crc32d et al.).
// All kernels produce bit-identical CRCs; the randomized cross-check
// in common_crc32_test proves it on every hw-capable host.  The
// environment variable ICKPT_CRC_IMPL=soft|hw|auto (default auto)
// overrides the choice for testing, and crc32_set_kernel() switches it
// programmatically (benches ablate soft vs hw with it).
//
// Besides the streaming update, crc32_combine() merges the CRCs of two
// concatenated byte ranges in O(log len) without touching the bytes —
// this is what lets the parallel encode pipeline hash shards on worker
// threads and stitch one file CRC on the main thread.  Combine is pure
// GF(2) matrix algebra on the polynomial, so it is kernel-agnostic:
// shard CRCs from different kernels stitch interchangeably.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ickpt {

/// Incrementally updatable CRC-32.
class Crc32 {
 public:
  void update(std::span<const std::byte> data) noexcept;
  void update(const void* data, std::size_t len) noexcept;

  /// Append a range whose finalized CRC is `crc_b` and length is
  /// `len_b` bytes, without re-reading the bytes (O(log len_b)).
  void combine(std::uint32_t crc_b, std::uint64_t len_b) noexcept;

  /// Finalized value (can be called repeatedly; update may continue).
  std::uint32_t value() const noexcept { return ~state_; }

  void reset() noexcept { state_ = 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// One-shot convenience.
std::uint32_t crc32(std::span<const std::byte> data) noexcept;

/// CRC of A||B from the finalized CRCs of A and B and the length of B.
/// Associative: combining (A,B) then C equals A then (B,C).
std::uint32_t crc32_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                            std::uint64_t len_b) noexcept;

// ---- Kernel dispatch ----------------------------------------------

enum class CrcKernel {
  kSlice8 = 0,  ///< table-driven software fallback (always available)
  kPclmul = 1,  ///< x86-64 PCLMULQDQ folding
  kArmCrc = 2,  ///< ARMv8 CRC32 instructions
};

/// Kernel currently serving Crc32::update / crc32().
CrcKernel crc32_active_kernel() noexcept;

/// "slice8" / "pclmul" / "armv8-crc".
const char* crc32_kernel_name(CrcKernel k) noexcept;

/// True when the host can execute `k` (kSlice8 always can).
bool crc32_kernel_available(CrcKernel k) noexcept;

/// Force a kernel (tests/bench ablation).  Returns false — leaving the
/// active kernel unchanged — when the host lacks support for `k`.
/// Affects all threads; switch only around single-threaded sections.
bool crc32_set_kernel(CrcKernel k) noexcept;

/// Re-run startup selection: ICKPT_CRC_IMPL=soft|hw|auto, then feature
/// detection.  Returns the kernel selected.
CrcKernel crc32_select_default_kernel() noexcept;

}  // namespace ickpt

// CRC-32 (IEEE 802.3 polynomial), slice-by-8 table-driven.
// Used to validate checkpoint file integrity end-to-end.
//
// Besides the streaming update, crc32_combine() merges the CRCs of two
// concatenated byte ranges in O(log len) without touching the bytes —
// this is what lets the parallel encode pipeline hash shards on worker
// threads and stitch one file CRC on the main thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ickpt {

/// Incrementally updatable CRC-32.
class Crc32 {
 public:
  void update(std::span<const std::byte> data) noexcept;
  void update(const void* data, std::size_t len) noexcept;

  /// Append a range whose finalized CRC is `crc_b` and length is
  /// `len_b` bytes, without re-reading the bytes (O(log len_b)).
  void combine(std::uint32_t crc_b, std::uint64_t len_b) noexcept;

  /// Finalized value (can be called repeatedly; update may continue).
  std::uint32_t value() const noexcept { return ~state_; }

  void reset() noexcept { state_ = 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// One-shot convenience.
std::uint32_t crc32(std::span<const std::byte> data) noexcept;

/// CRC of A||B from the finalized CRCs of A and B and the length of B.
/// Associative: combining (A,B) then C equals A then (B,C).
std::uint32_t crc32_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                            std::uint64_t len_b) noexcept;

}  // namespace ickpt

// CRC-32 (IEEE 802.3 polynomial), table-driven.
// Used to validate checkpoint file integrity end-to-end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ickpt {

/// Incrementally updatable CRC-32.
class Crc32 {
 public:
  void update(std::span<const std::byte> data) noexcept;
  void update(const void* data, std::size_t len) noexcept;

  /// Finalized value (can be called repeatedly; update may continue).
  std::uint32_t value() const noexcept { return ~state_; }

  void reset() noexcept { state_ = 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

/// One-shot convenience.
std::uint32_t crc32(std::span<const std::byte> data) noexcept;

}  // namespace ickpt

// Streaming summary statistics.
//
// The paper reports per-run maxima and means "omitting the first
// [sample], because the first experiment takes considerably longer"
// (Section 5).  SummaryStats supports that warm-up skip natively.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace ickpt {

/// Welford-style accumulator: count, min, max, mean, variance.
class SummaryStats {
 public:
  /// `skip_first` warm-up samples are discarded before accumulation.
  explicit SummaryStats(std::size_t skip_first = 0) : skip_(skip_first) {}

  void add(double x) noexcept {
    if (skip_ > 0) {
      --skip_;
      ++skipped_;
      return;
    }
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const noexcept { return n_; }
  std::size_t skipped() const noexcept { return skipped_; }
  bool empty() const noexcept { return n_ == 0; }

  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double mean() const noexcept { return mean_; }

  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

  void reset() noexcept {
    n_ = 0;
    skipped_ = 0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
    mean_ = 0.0;
    m2_ = 0.0;
  }

 private:
  std::size_t skip_ = 0;
  std::size_t skipped_ = 0;
  std::size_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace ickpt

// Byte-size units and formatting.
//
// The paper reports footprints and bandwidths in "MB"; following the
// 2004 convention for memory we interpret that as MiB (2^20 bytes) and
// keep the paper's "MB" spelling in printed tables.
#pragma once

#include <cstddef>
#include <string>

namespace ickpt {

inline constexpr std::size_t kKB = 1024;
inline constexpr std::size_t kMB = 1024 * 1024;
inline constexpr std::size_t kGB = 1024 * 1024 * 1024;

constexpr double to_mb(std::size_t bytes) noexcept {
  return static_cast<double>(bytes) / static_cast<double>(kMB);
}

constexpr std::size_t from_mb(double mb) noexcept {
  return static_cast<std::size_t>(mb * static_cast<double>(kMB));
}

/// "123.4 MB", "1.2 GB", "832 KB" — for human-facing logs.
std::string format_bytes(std::size_t bytes);

/// "78.8 MB/s" — bandwidth given bytes over seconds.
std::string format_bandwidth(double bytes_per_second);

}  // namespace ickpt

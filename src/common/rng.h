// Deterministic, fast pseudo-random number generation.
//
// All stochastic choices in the proxy kernels and tests flow through
// SplitMix64 so every experiment is exactly reproducible from a seed.
#pragma once

#include <cstdint>
#include <cstddef>

namespace ickpt {

/// SplitMix64: tiny, statistically solid, and trivially seedable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free mapping; the tiny modulo
    // bias is irrelevant for workload synthesis.
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform size_t index in [0, n).
  std::size_t next_index(std::size_t n) noexcept {
    return static_cast<std::size_t>(next_below(n));
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Derive an independent stream (e.g. one per MPI rank).
  Rng split(std::uint64_t stream) noexcept {
    return Rng(next_u64() ^ (stream * 0xd1342543de82ef95ull + 0x632be59bd9b4e019ull));
  }

 private:
  std::uint64_t state_;
};

}  // namespace ickpt

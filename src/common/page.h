// Page arithmetic helpers shared by every module that deals with the
// virtual-memory system.  All tracking in ickpt happens at page
// granularity, like the paper's instrumentation library (Section 4.2).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ickpt {

/// Runtime page size of the host (sysconf(_SC_PAGESIZE)), cached.
std::size_t page_size() noexcept;

/// log2(page_size()) for cheap divisions, cached.
unsigned page_shift() noexcept;

/// Round `n` down to a page boundary.
constexpr std::size_t page_floor(std::size_t n, std::size_t psize) noexcept {
  return n & ~(psize - 1);
}

/// Round `n` up to a page boundary.
constexpr std::size_t page_ceil(std::size_t n, std::size_t psize) noexcept {
  return (n + psize - 1) & ~(psize - 1);
}

std::size_t page_floor(std::size_t n) noexcept;
std::size_t page_ceil(std::size_t n) noexcept;

/// Number of pages needed to cover `bytes`.
std::size_t pages_for(std::size_t bytes) noexcept;

/// A half-open, page-aligned address range [begin, end).
struct PageRange {
  std::uintptr_t begin = 0;
  std::uintptr_t end = 0;

  constexpr std::size_t bytes() const noexcept { return end - begin; }
  std::size_t pages() const noexcept { return bytes() >> page_shift(); }
  constexpr bool contains(std::uintptr_t addr) const noexcept {
    return addr >= begin && addr < end;
  }
  constexpr bool empty() const noexcept { return begin >= end; }
  constexpr bool overlaps(const PageRange& o) const noexcept {
    return begin < o.end && o.begin < end;
  }
  friend constexpr bool operator==(const PageRange&, const PageRange&) = default;
};

/// Build a page-aligned range covering [addr, addr+len).
PageRange page_range_covering(const void* addr, std::size_t len) noexcept;

}  // namespace ickpt

#include "common/thread_pool.h"

#include <algorithm>

namespace ickpt {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(threads, 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { run(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [&] { return in_flight_ == 0; });
}

std::size_t ThreadPool::hardware_threads() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_work_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping and drained
    auto task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
    if (--in_flight_ == 0) cv_idle_.notify_all();
  }
}

}  // namespace ickpt

#include "common/arena.h"

#include <sys/mman.h>

#include <new>
#include <utility>

namespace ickpt {

PageArena::PageArena(std::size_t bytes) {
  if (bytes == 0) return;
  std::size_t len = page_ceil(bytes);
  void* p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw std::bad_alloc();
  data_ = static_cast<std::byte*>(p);
  size_ = len;
}

PageArena::PageArena(PageArena&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

PageArena& PageArena::operator=(PageArena&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

PageArena::~PageArena() { reset(); }

PageRange PageArena::range() const noexcept {
  auto a = reinterpret_cast<std::uintptr_t>(data_);
  return PageRange{a, a + size_};
}

void PageArena::prefault() noexcept {
  const std::size_t psize = page_size();
  for (std::size_t off = 0; off < size_; off += psize) {
    data_[off] = std::byte{0};
  }
}

void PageArena::reset() noexcept {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace ickpt

// Fixed-size worker pool for CPU-bound fan-out (checkpoint page
// encoding, parallel verification).
//
// Deliberately minimal: submit() enqueues a task, wait_idle() blocks
// until everything submitted so far has finished.  Callers that need
// per-task completion ordering (the checkpointer's shard stitcher)
// layer std::promise/std::future on top; the pool itself stays a dumb
// FIFO so it is easy to reason about under TSan.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ickpt {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains already-submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task.  Tasks must not throw; submit() after the
  /// destructor has begun is undefined (the pool is owned, not shared).
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has completed.
  void wait_idle();

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_threads() noexcept;

 private:
  void run();

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ickpt

#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace ickpt {

void TextTable::set_header(std::vector<std::string> cols) {
  header_ = std::move(cols);
}

void TextTable::add_row(std::vector<std::string> cols) {
  rows_.push_back(std::move(cols));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << cell;
      if (i + 1 < widths.size()) {
        os << std::string(widths[i] - cell.size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  os << '\n';
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

bool TextTable::write_csv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return static_cast<bool>(os);
}

}  // namespace ickpt

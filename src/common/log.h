// Minimal leveled logging (stderr).  Intentionally tiny: the library is
// a measurement tool, and logging must never perturb what it measures,
// so everything below kWarn compiles to a cheap level check.
#pragma once

#include <sstream>
#include <string>

namespace ickpt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level (default kWarn; benches raise to kInfo).
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void log_emit(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace ickpt

#define ICKPT_LOG(level)                                     \
  if (::ickpt::LogLevel::level < ::ickpt::log_level()) {     \
  } else                                                     \
    ::ickpt::detail::LogLine(::ickpt::LogLevel::level)

// Lightweight error-handling vocabulary.  I/O-heavy modules (storage,
// checkpoint) return Status / Result<T> instead of throwing so that
// failure injection in tests is explicit and cheap.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ickpt {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kCorruption,
  kUnsupported,
  kResourceExhausted,
  kInternal,
};

std::string_view to_string(ErrorCode code) noexcept;

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const noexcept { return code_ == ErrorCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }
  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// Human-readable "CODE: message" form for logs and test output.
  std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status failed_precondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status io_error(std::string msg) {
  return {ErrorCode::kIoError, std::move(msg)};
}
inline Status corruption(std::string msg) {
  return {ErrorCode::kCorruption, std::move(msg)};
}
inline Status unsupported(std::string msg) {
  return {ErrorCode::kUnsupported, std::move(msg)};
}
inline Status internal_error(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}

/// Minimal expected-like result type (the toolchain predates
/// std::expected).  Holds either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(implicit)
  Result(Status status) : v_(std::move(status)) {}   // NOLINT(implicit)

  bool is_ok() const noexcept { return std::holds_alternative<T>(v_); }
  explicit operator bool() const noexcept { return is_ok(); }

  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  /// Status of a failed result; Status::ok() when a value is held.
  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(v_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

#define ICKPT_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::ickpt::Status _st = (expr);                  \
    if (!_st.is_ok()) return _st;                  \
  } while (0)

#define ICKPT_ASSIGN_OR_RETURN(lhs, expr)          \
  auto lhs##_result = (expr);                      \
  if (!lhs##_result.is_ok()) return lhs##_result.status(); \
  auto& lhs = lhs##_result.value()

}  // namespace ickpt

// Short-read / short-write loops, factored out of the storage and
// inspect code so every module (including the network stack) handles
// EINTR and partial transfers the same way.
//
// Two layers:
//   * fd-level read_full/write_full — retry EINTR, loop over short
//     counts.  read_full stops early only at EOF; write_full either
//     moves every byte or returns the errno as kIoError.
//   * a generic read_full over any "read(span) -> Result<size_t>"
//     callable (storage::Reader::read has exactly that shape), for
//     code that must read an exact number of bytes from a streaming
//     source that may legally return short counts.
#pragma once

#include <cstddef>
#include <span>

#include "common/status.h"

namespace ickpt::ioutil {

/// Read exactly out.size() bytes from `fd` unless EOF arrives first.
/// Retries EINTR and short reads.  Returns the byte count: out.size()
/// normally, less only when EOF truncated the read.
Result<std::size_t> read_full(int fd, std::span<std::byte> out);

/// Write all of `data` to `fd`, retrying EINTR and short writes.
Status write_full(int fd, std::span<const std::byte> data);

/// write_full for socket fds: uses send(2) with MSG_NOSIGNAL, so a
/// peer that closed the connection surfaces as a kIoError (EPIPE)
/// instead of delivering SIGPIPE and killing the process.  Use this
/// for every socket write; keep write_full for regular files, where
/// send() is not applicable.
Status send_full(int fd, std::span<const std::byte> data);

/// Read exactly out.size() bytes from a streaming source.  `rd` is any
/// callable with the storage::Reader::read contract: fill up to the
/// span, return the count, 0 at EOF.  Returns the total read —
/// out.size() normally, less only at EOF.
template <typename ReadFn>
Result<std::size_t> read_full(ReadFn&& rd, std::span<std::byte> out) {
  std::size_t got_total = 0;
  while (got_total < out.size()) {
    auto got = rd(out.subspan(got_total));
    if (!got.is_ok()) return got.status();
    if (*got == 0) break;  // EOF
    got_total += *got;
  }
  return got_total;
}

}  // namespace ickpt::ioutil

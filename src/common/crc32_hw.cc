// Hardware CRC-32 kernels (IEEE 802.3 polynomial, bit-reflected).
//
// Two kernels, both compiled with per-function target attributes so
// the rest of the binary keeps the project's baseline ISA and the
// dispatcher in crc32.cc can select at runtime:
//
//   pclmul — x86-64 carry-less-multiply folding per Intel's "Fast CRC
//     Computation for Generic Polynomials Using PCLMULQDQ" paper:
//     four 128-bit accumulators fold 64 input bytes per step, then a
//     single-register 16-byte fold, a 128→64 reduction and a Barrett
//     reduction back to 32 bits.  The k-constants below are the
//     paper's x^N mod P values for P = 0x104C11DB7 in the reflected
//     domain (the same ones every production zlib derivative ships).
//
//   armcrc — the ARMv8 CRC32X/CRC32B instructions, which implement
//     exactly this polynomial in the reflected domain, eight bytes per
//     instruction.
//
// Both kernels take and return the register-domain state (pre-
// inversion), accept any length/alignment, and delegate short heads
// and tails to slice8 so callers never need size checks.
#include "common/crc32_kernels.h"

#if defined(__x86_64__) || defined(_M_X64)
#define ICKPT_CRC32_X86 1
#include <immintrin.h>
#endif

#if defined(__aarch64__) && defined(__linux__)
#define ICKPT_CRC32_ARM 1
#include <arm_acle.h>
#include <sys/auxv.h>
#if __has_include(<asm/hwcap.h>)
#include <asm/hwcap.h>
#endif
#endif

namespace ickpt::crc_detail {

// ----------------------------------------------------------- x86-64

#if defined(ICKPT_CRC32_X86)

bool pclmul_supported() noexcept {
  return __builtin_cpu_supports("pclmul") &&
         __builtin_cpu_supports("sse4.1") != 0;
}

namespace {

// Folding constants for the reflected IEEE polynomial:
//   kFold512 = { x^(512+32) mod P, x^512 mod P }   (64-byte stride)
//   kFold128 = { x^(128+32) mod P, x^128 mod P }   (16-byte stride)
//   kFold64  = x^64 mod P                          (final 128→64)
//   kBarrett = { P (full 33-bit form), mu = x^64 / P }
alignas(16) constexpr std::uint64_t kFold512[2] = {0x0154442bd4,
                                                   0x01c6e41596};
alignas(16) constexpr std::uint64_t kFold128[2] = {0x01751997d0,
                                                   0x00ccaa009e};
alignas(16) constexpr std::uint64_t kFold64[2] = {0x0163cd6124, 0};
alignas(16) constexpr std::uint64_t kBarrett[2] = {0x01db710641,
                                                   0x01f7011641};

/// Core fold: `len` must be >= 64 and a multiple of 16.
__attribute__((target("pclmul,sse4.1"))) std::uint32_t pclmul_fold(
    const unsigned char* p, std::size_t len, std::uint32_t state) noexcept {
  const auto* buf = reinterpret_cast<const __m128i*>(p);

  __m128i a = _mm_loadu_si128(buf + 0);
  __m128i b = _mm_loadu_si128(buf + 1);
  __m128i c = _mm_loadu_si128(buf + 2);
  __m128i d = _mm_loadu_si128(buf + 3);
  a = _mm_xor_si128(a, _mm_cvtsi32_si128(static_cast<int>(state)));
  buf += 4;
  len -= 64;

  const __m128i k512 =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kFold512));
  while (len >= 64) {
    // Each accumulator advances 64 bytes: multiply its two halves by
    // x^512 / x^544 and xor in the next 16 input bytes.
    __m128i ta = _mm_clmulepi64_si128(a, k512, 0x00);
    __m128i tb = _mm_clmulepi64_si128(b, k512, 0x00);
    __m128i tc = _mm_clmulepi64_si128(c, k512, 0x00);
    __m128i td = _mm_clmulepi64_si128(d, k512, 0x00);
    a = _mm_clmulepi64_si128(a, k512, 0x11);
    b = _mm_clmulepi64_si128(b, k512, 0x11);
    c = _mm_clmulepi64_si128(c, k512, 0x11);
    d = _mm_clmulepi64_si128(d, k512, 0x11);
    a = _mm_xor_si128(_mm_xor_si128(a, ta), _mm_loadu_si128(buf + 0));
    b = _mm_xor_si128(_mm_xor_si128(b, tb), _mm_loadu_si128(buf + 1));
    c = _mm_xor_si128(_mm_xor_si128(c, tc), _mm_loadu_si128(buf + 2));
    d = _mm_xor_si128(_mm_xor_si128(d, td), _mm_loadu_si128(buf + 3));
    buf += 4;
    len -= 64;
  }

  // Fold the four accumulators into one (16-byte stride constants).
  const __m128i k128 =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kFold128));
  __m128i t = _mm_clmulepi64_si128(a, k128, 0x00);
  a = _mm_clmulepi64_si128(a, k128, 0x11);
  a = _mm_xor_si128(_mm_xor_si128(a, t), b);
  t = _mm_clmulepi64_si128(a, k128, 0x00);
  a = _mm_clmulepi64_si128(a, k128, 0x11);
  a = _mm_xor_si128(_mm_xor_si128(a, t), c);
  t = _mm_clmulepi64_si128(a, k128, 0x00);
  a = _mm_clmulepi64_si128(a, k128, 0x11);
  a = _mm_xor_si128(_mm_xor_si128(a, t), d);

  // Remaining whole 16-byte blocks.
  while (len >= 16) {
    t = _mm_clmulepi64_si128(a, k128, 0x00);
    a = _mm_clmulepi64_si128(a, k128, 0x11);
    a = _mm_xor_si128(_mm_xor_si128(a, t), _mm_loadu_si128(buf));
    ++buf;
    len -= 16;
  }

  // 128 → 64 bits.
  const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);
  t = _mm_clmulepi64_si128(a, k128, 0x10);
  a = _mm_srli_si128(a, 8);
  a = _mm_xor_si128(a, t);
  const __m128i k64 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(kFold64));
  t = _mm_srli_si128(a, 4);
  a = _mm_and_si128(a, mask32);
  a = _mm_clmulepi64_si128(a, k64, 0x00);
  a = _mm_xor_si128(a, t);

  // Barrett reduction 64 → 32 bits.
  const __m128i br =
      _mm_load_si128(reinterpret_cast<const __m128i*>(kBarrett));
  t = _mm_and_si128(a, mask32);
  t = _mm_clmulepi64_si128(t, br, 0x10);
  t = _mm_and_si128(t, mask32);
  t = _mm_clmulepi64_si128(t, br, 0x00);
  a = _mm_xor_si128(a, t);
  return static_cast<std::uint32_t>(_mm_extract_epi32(a, 1));
}

}  // namespace

std::uint32_t pclmul(const unsigned char* p, std::size_t len,
                     std::uint32_t state) noexcept {
  if (len >= 64) {
    const std::size_t folded = len & ~std::size_t{15};
    state = pclmul_fold(p, folded, state);
    p += folded;
    len -= folded;
  }
  return slice8(p, len, state);
}

#else  // !ICKPT_CRC32_X86

bool pclmul_supported() noexcept { return false; }
std::uint32_t pclmul(const unsigned char* p, std::size_t len,
                     std::uint32_t state) noexcept {
  return slice8(p, len, state);
}

#endif

// ------------------------------------------------------------ ARMv8

#if defined(ICKPT_CRC32_ARM) && defined(HWCAP_CRC32)

bool armcrc_supported() noexcept {
  return (::getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
}

namespace {

__attribute__((target("+crc"))) std::uint32_t armcrc_run(
    const unsigned char* p, std::size_t len, std::uint32_t state) noexcept {
  while (len >= 8) {
    std::uint64_t w;
    __builtin_memcpy(&w, p, 8);
    state = __crc32d(state, w);
    p += 8;
    len -= 8;
  }
  while (len-- > 0) state = __crc32b(state, *p++);
  return state;
}

}  // namespace

std::uint32_t armcrc(const unsigned char* p, std::size_t len,
                     std::uint32_t state) noexcept {
  return armcrc_run(p, len, state);
}

#else  // !ICKPT_CRC32_ARM

bool armcrc_supported() noexcept { return false; }
std::uint32_t armcrc(const unsigned char* p, std::size_t len,
                     std::uint32_t state) noexcept {
  return slice8(p, len, state);
}

#endif

}  // namespace ickpt::crc_detail

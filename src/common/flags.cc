#include "common/flags.h"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ickpt {

namespace {

std::string format_default(const std::string& v) { return v; }

}  // namespace

void FlagSet::add_string(std::string name, std::string* target,
                         std::string help) {
  flags_.push_back(Flag{std::move(name), Type::kString, target,
                        std::move(help), format_default(*target)});
}

void FlagSet::add_int(std::string name, int* target, std::string help) {
  flags_.push_back(Flag{std::move(name), Type::kInt, target, std::move(help),
                        std::to_string(*target)});
}

void FlagSet::add_double(std::string name, double* target, std::string help) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", *target);
  flags_.push_back(
      Flag{std::move(name), Type::kDouble, target, std::move(help), buf});
}

void FlagSet::add_bool(std::string name, bool* target, std::string help) {
  flags_.push_back(Flag{std::move(name), Type::kBool, target, std::move(help),
                        *target ? "true" : "false"});
}

const FlagSet::Flag* FlagSet::find(const std::string& name) const {
  for (const auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Status FlagSet::set_value(const Flag& flag, const std::string& value) {
  switch (flag.type) {
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::ok();
    case Type::kInt: {
      errno = 0;
      char* end = nullptr;
      long v = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || errno != 0 ||
          v < INT_MIN || v > INT_MAX) {
        return invalid_argument("--" + flag.name + ": '" + value +
                                "' is not an integer");
      }
      *static_cast<int*>(flag.target) = static_cast<int>(v);
      return Status::ok();
    }
    case Type::kDouble: {
      errno = 0;
      char* end = nullptr;
      double v = std::strtod(value.c_str(), &end);
      if (value.empty() || end == nullptr || *end != '\0' || errno != 0) {
        return invalid_argument("--" + flag.name + ": '" + value +
                                "' is not a number");
      }
      *static_cast<double*>(flag.target) = v;
      return Status::ok();
    }
    case Type::kBool: {
      if (value == "true" || value == "1" || value == "yes") {
        *static_cast<bool*>(flag.target) = true;
        return Status::ok();
      }
      if (value == "false" || value == "0" || value == "no") {
        *static_cast<bool*>(flag.target) = false;
        return Status::ok();
      }
      return invalid_argument("--" + flag.name + ": '" + value +
                              "' is not a boolean (true|false|1|0|yes|no)");
    }
  }
  return internal_error("unreachable flag type");
}

Status FlagSet::parse(int argc, char* const* argv, int first) {
  positional_.clear();
  for (int i = first; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      if (!allow_positional_) {
        return invalid_argument(program_ + ": unexpected argument '" +
                                std::string(arg) + "'");
      }
      positional_.emplace_back(arg);
      continue;
    }
    std::string name = arg + 2;
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const Flag* flag = find(name);
    if (flag == nullptr) {
      return invalid_argument(program_ + ": unknown flag '--" + name +
                              "' (see --help)");
    }
    if (flag->type == Type::kBool) {
      ICKPT_RETURN_IF_ERROR(set_value(*flag, has_value ? value : "true"));
      continue;
    }
    if (!has_value) {
      // The value is the next argument — unless there is none or it is
      // itself a flag, which means the value was forgotten.
      if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
        return invalid_argument(program_ + ": flag '--" + name +
                                "' requires a value");
      }
      value = argv[++i];
    }
    ICKPT_RETURN_IF_ERROR(set_value(*flag, value));
  }
  return Status::ok();
}

std::string FlagSet::help() const {
  static constexpr const char* kTypeNames[] = {"string", "int", "double",
                                               "bool"};
  std::string out = program_ + " flags:\n";
  for (const auto& f : flags_) {
    std::string line = "  --" + f.name + "=<" +
                       kTypeNames[static_cast<int>(f.type)] + ">";
    if (line.size() < 28) line.resize(28, ' ');
    line += f.help;
    line += " (default: " + f.default_str + ")\n";
    out += line;
  }
  return out;
}

}  // namespace ickpt

#include "common/units.h"

#include <cstdio>

namespace ickpt {

namespace {
std::string format_with_unit(double value, const char* unit) {
  char buf[64];
  if (value >= 100.0) {
    std::snprintf(buf, sizeof buf, "%.0f %s", value, unit);
  } else if (value >= 10.0) {
    std::snprintf(buf, sizeof buf, "%.1f %s", value, unit);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", value, unit);
  }
  return buf;
}
}  // namespace

std::string format_bytes(std::size_t bytes) {
  auto b = static_cast<double>(bytes);
  if (bytes >= kGB) return format_with_unit(b / static_cast<double>(kGB), "GB");
  if (bytes >= kMB) return format_with_unit(b / static_cast<double>(kMB), "MB");
  if (bytes >= kKB) return format_with_unit(b / static_cast<double>(kKB), "KB");
  return format_with_unit(b, "B");
}

std::string format_bandwidth(double bytes_per_second) {
  if (bytes_per_second < 0) bytes_per_second = 0;
  return format_bytes(static_cast<std::size_t>(bytes_per_second)) + "/s";
}

}  // namespace ickpt

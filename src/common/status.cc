#include "common/status.h"

namespace ickpt {

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kCorruption: return "CORRUPTION";
    case ErrorCode::kUnsupported: return "UNSUPPORTED";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out(ickpt::to_string(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ickpt

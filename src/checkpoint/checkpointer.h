// Checkpointer: writes full and incremental checkpoints of one rank's
// AddressSpace to a storage backend.
//
// This is the system the paper argues is feasible: at every checkpoint
// timeslice the dirty snapshot from the tracker becomes one
// incremental checkpoint; a full checkpoint seeds (and periodically
// re-seeds) the chain so recovery never replays unbounded history.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "checkpoint/format.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "memtrack/tracker.h"
#include "region/address_space.h"
#include "storage/async_writer.h"
#include "storage/backend.h"

namespace ickpt::checkpoint {

/// Validation bounds enforced by Checkpointer::create().
inline constexpr int kMaxEncodeThreads = 1024;
inline constexpr std::uint64_t kMaxFullEvery = 1ull << 32;

struct CheckpointerOptions {
  std::uint32_t rank = 0;
  /// Re-seed with a full checkpoint every N checkpoints (0 = only the
  /// initial full).  Bounds recovery-chain length.
  std::uint64_t full_every = 0;
  /// Apply per-page payload compression (zero elision + word RLE).
  bool compress = true;
  /// Worker threads for page encoding; <= 1 encodes inline on the
  /// calling thread.  The output bytes are identical either way.
  int encode_threads = 1;
  /// Overlap device latency with computation: encode each checkpoint
  /// into memory and hand it to a background writer thread.  flush()
  /// is the durability barrier; write errors surface there.
  bool async = false;
};

struct CheckpointMeta {
  std::uint64_t sequence = 0;
  Kind kind = Kind::kFull;
  std::string key;
  std::uint64_t payload_pages = 0;  ///< pages of data covered
  std::uint64_t file_bytes = 0;     ///< total object size (compressed)
  std::uint64_t zero_pages = 0;     ///< pages elided as all-zero
  std::uint64_t rle_pages = 0;      ///< pages stored run-length encoded
  double virtual_time = 0;
};

class Checkpointer {
 public:
  /// Validating factory (mirrors Monitor::create): rejects a null
  /// backend, nonsensical `encode_threads` and implausible
  /// `full_every` values instead of silently misbehaving later.
  static Result<std::unique_ptr<Checkpointer>> create(
      region::AddressSpace& space, storage::StorageBackend* storage,
      CheckpointerOptions options = {});

  /// Deprecated shim: constructs without validation, clamping
  /// `encode_threads` to at least 1.  Use create() instead.
  [[deprecated("use Checkpointer::create(), which validates options")]]
  Checkpointer(region::AddressSpace& space, storage::StorageBackend& storage,
               CheckpointerOptions options = {});

  /// Write every page of every live block.
  Result<CheckpointMeta> checkpoint_full(double virtual_time);

  /// Write the dirty pages of `snapshot` plus the live-block manifest.
  /// Automatically promotes to a full checkpoint when the chain is
  /// empty or `full_every` is due.
  Result<CheckpointMeta> checkpoint_incremental(
      const memtrack::DirtySnapshot& snapshot, double virtual_time);

  const std::vector<CheckpointMeta>& chain() const noexcept { return chain_; }

  /// Total payload pages written so far (volume metric for X2).
  std::uint64_t total_payload_pages() const noexcept { return total_pages_; }

  /// Delete every chain element strictly older than the most recent
  /// full checkpoint (they can never be needed again).
  Status truncate_before_last_full();

  /// Durability barrier.  In async mode, blocks until every submitted
  /// checkpoint has reached the backend and returns the first write
  /// error, if any; in sync mode it is a no-op.  Call before reading
  /// the store back (restore, fsck) or declaring a step committed.
  Status flush();

  std::uint64_t next_sequence() const noexcept { return next_seq_; }

 private:
  struct Validated {};  // tag: options already checked / sanitized
  Checkpointer(Validated, region::AddressSpace& space,
               storage::StorageBackend& storage, CheckpointerOptions options);

  Result<CheckpointMeta> write_checkpoint(
      Kind kind, const memtrack::DirtySnapshot* snapshot,
      double virtual_time);
  Result<CheckpointMeta> write_object(Kind kind,
                                      const memtrack::DirtySnapshot* snapshot,
                                      double virtual_time, std::uint64_t seq,
                                      const std::string& key);

  region::AddressSpace& space_;
  storage::StorageBackend& storage_;
  CheckpointerOptions options_;
  std::unique_ptr<ThreadPool> pool_;           ///< encode_threads > 1
  std::unique_ptr<storage::AsyncWriter> async_;///< options_.async
  std::vector<CheckpointMeta> chain_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t since_full_ = 0;
  std::uint64_t total_pages_ = 0;
};

}  // namespace ickpt::checkpoint

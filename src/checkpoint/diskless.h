// Diskless checkpointing: buddy replication of checkpoint objects to
// a peer rank's memory.
//
// The paper's related work surveys Plank's Diskless Checkpointing
// ("uses the memory available on each node instead of saving the
// checkpoint to stable storage", §7).  Here, after a rank writes a
// checkpoint object locally, replicate_chain() ships it to the next
// rank over minimpi; the buddy stores it under "buddy/<original key>".
// When a node's local store is lost, fetch_buddy_chain() reconstructs
// the rank's chain from its buddy's replicas — surviving any single
// node loss without touching a disk.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "minimpi/comm.h"
#include "storage/backend.h"

namespace ickpt::checkpoint {

/// Buddy of rank r in a P-rank world: (r + 1) % P.
int buddy_of(int rank, int nprocs);

/// Collective.  Every rank sends the listed objects from its local
/// `store` to its buddy and stores the objects received from the rank
/// it buddies for under "buddy/<key>".  `keys` may differ per rank
/// (each rank replicates its own chain).  Existing replicas with the
/// same key are overwritten.
Status replicate_chain(mpi::Comm& comm, storage::StorageBackend& store,
                       const std::vector<std::string>& keys);

/// Copy every "buddy/rank<rank>/..." replica held in `buddy_store`
/// back to its original key in `dest` (a fresh local store), so the
/// normal restore_chain() path runs unchanged.  Returns the number of
/// objects recovered.
Result<std::size_t> recover_from_buddy(storage::StorageBackend& buddy_store,
                                       std::uint32_t rank,
                                       storage::StorageBackend& dest);

}  // namespace ickpt::checkpoint

// Per-page payload encodings for checkpoint files.
//
// Two cheap filters that matter in practice for scientific state:
//   kZero — all-zero pages (freshly allocated AMR blocks, untouched
//           halos) carry no payload at all;
//   kRle  — runs of repeated 64-bit words (constant-initialized
//           fields) collapse to (count, word) pairs.
// Pages that don't benefit are stored plain, so compression never
// costs more than 8 bytes of record header per page.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace ickpt::checkpoint {

enum class PageEncoding : std::uint32_t {
  kPlain = 0,
  kZero = 1,
  kRle = 2,
};

/// Encode one page.  Appends the chosen encoding's payload to `out`
/// (cleared first) and returns the encoding.  `page` must be a whole
/// page (size a multiple of 8).
PageEncoding encode_page(std::span<const std::byte> page,
                         std::vector<std::byte>& out);

/// Decode a payload produced by encode_page into `page_out`
/// (page_out.size() defines the page size).  Validates sizes; returns
/// kCorruption on malformed payloads.
Status decode_page(PageEncoding encoding, std::span<const std::byte> payload,
                   std::span<std::byte> page_out);

/// True if every byte is zero.  Unrolled 64-byte block scan with a
/// per-block early-out; runs on every page of every incremental (the
/// X10 bench asserts its throughput).
bool is_zero_page(std::span<const std::byte> page);

}  // namespace ickpt::checkpoint

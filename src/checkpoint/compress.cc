#include "checkpoint/compress.h"

#include <cstring>

namespace ickpt::checkpoint {

namespace {
/// RLE element: little-endian u64 count followed by the repeated word.
struct RlePair {
  std::uint64_t count;
  std::uint64_t word;
};
}  // namespace

bool is_zero_page(std::span<const std::byte> page) {
  // This runs on every page of every incremental, so it is shaped for
  // the vectorizer: 64-byte blocks of eight independent OR-folded
  // words (one cache line per iteration, no loop-carried dependency
  // until the fold) with a per-block early-out — a dirty page is
  // detected after one line instead of a whole-page scan.
  const auto* p = reinterpret_cast<const unsigned char*>(page.data());
  std::size_t len = page.size();
  while (len >= 64) {
    std::uint64_t w[8];
    std::memcpy(w, p, 64);
    const std::uint64_t acc = (w[0] | w[1]) | (w[2] | w[3]) |
                              ((w[4] | w[5]) | (w[6] | w[7]));
    if (acc != 0) return false;
    p += 64;
    len -= 64;
  }
  std::uint64_t tail = 0;
  while (len >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    tail |= w;
    p += 8;
    len -= 8;
  }
  while (len-- > 0) tail |= *p++;
  return tail == 0;
}

PageEncoding encode_page(std::span<const std::byte> page,
                         std::vector<std::byte>& out) {
  out.clear();
  if (is_zero_page(page)) return PageEncoding::kZero;

  // Word RLE, emitted straight into `out` so a caller that reuses its
  // buffer pays zero allocations per page in steady state.  Abort to
  // plain as soon as it stops paying off.
  const auto* words = reinterpret_cast<const std::uint64_t*>(page.data());
  const std::size_t nwords = page.size() / 8;
  out.reserve(page.size());
  if (nwords * 8 == page.size() && nwords > 0) {
    std::size_t i = 0;
    bool profitable = true;
    while (i < nwords) {
      std::size_t j = i + 1;
      while (j < nwords && words[j] == words[i]) ++j;
      const RlePair pair{j - i, words[i]};
      const std::size_t old = out.size();
      out.resize(old + sizeof pair);
      std::memcpy(out.data() + old, &pair, sizeof pair);
      i = j;
      if (out.size() >= page.size()) {
        profitable = false;
        break;
      }
    }
    if (profitable && out.size() < page.size() / 2) {
      return PageEncoding::kRle;
    }
  }

  out.assign(page.begin(), page.end());
  return PageEncoding::kPlain;
}

Status decode_page(PageEncoding encoding, std::span<const std::byte> payload,
                   std::span<std::byte> page_out) {
  switch (encoding) {
    case PageEncoding::kZero:
      if (!payload.empty()) return corruption("zero page with payload");
      std::memset(page_out.data(), 0, page_out.size());
      return Status::ok();

    case PageEncoding::kPlain:
      if (payload.size() != page_out.size()) {
        return corruption("plain page payload size mismatch");
      }
      std::memcpy(page_out.data(), payload.data(), payload.size());
      return Status::ok();

    case PageEncoding::kRle: {
      if (payload.size() % sizeof(RlePair) != 0 || payload.empty()) {
        return corruption("rle payload not a pair multiple");
      }
      const std::size_t npairs = payload.size() / sizeof(RlePair);
      auto* dst = reinterpret_cast<std::uint64_t*>(page_out.data());
      const std::size_t out_words = page_out.size() / 8;
      std::size_t pos = 0;
      for (std::size_t p = 0; p < npairs; ++p) {
        RlePair pair;
        std::memcpy(&pair, payload.data() + p * sizeof(RlePair),
                    sizeof pair);
        if (pair.count == 0 || pos + pair.count > out_words) {
          return corruption("rle run exceeds page");
        }
        for (std::uint64_t k = 0; k < pair.count; ++k) dst[pos++] = pair.word;
      }
      if (pos != out_words) return corruption("rle underfills page");
      return Status::ok();
    }
  }
  return corruption("unknown page encoding");
}

}  // namespace ickpt::checkpoint

#include "checkpoint/inspect.h"

#include <algorithm>
#include <cstdio>

#include "checkpoint/format.h"
#include "checkpoint/restore.h"
#include "common/crc32.h"
#include "common/io_util.h"
#include "obs/trace.h"

namespace ickpt::checkpoint {

namespace {

struct FsckTrace {
  std::uint16_t t_inspect;  ///< "fsck.inspect" span (arg0 = rank)
  std::uint16_t t_repair;   ///< "fsck.repair" span

  static FsckTrace& get() {
    static FsckTrace t{
        obs::trace_name("fsck.inspect", obs::TraceCat::kFsck),
        obs::trace_name("fsck.repair", obs::TraceCat::kFsck)};
    return t;
  }
};

/// Lightweight structural parse of one object: header fields only,
/// with full-file CRC validation via read_checkpoint_file.
/// Read exactly `len` bytes.  Streaming backends may legitimately
/// return short counts, so a single read() is not enough.
Status read_exact(storage::Reader& in, void* out, std::size_t len) {
  auto got = ioutil::read_full(
      [&in](std::span<std::byte> span) { return in.read(span); },
      {static_cast<std::byte*>(out), len});
  if (!got.is_ok()) return got.status();
  if (*got < len) return corruption("unexpected end of object");
  return Status::ok();
}

Result<ChainElement> inspect_object(storage::StorageBackend& storage,
                                    const std::string& key) {
  auto reader = storage.open(key);
  if (!reader.is_ok()) return reader.status();
  FileHeader header;
  if (!read_exact(**reader, &header, sizeof header).is_ok() ||
      header.magic != kMagic) {
    return corruption("bad header in " + key);
  }
  // Deep validation (structure + CRC) via the restore parser.
  auto state = read_checkpoint_file(storage, key);
  if (!state.is_ok()) return state.status();

  ChainElement e;
  e.sequence = header.sequence;
  e.parent_sequence = header.parent_sequence;
  e.full = header.kind == static_cast<std::uint16_t>(Kind::kFull);
  e.file_bytes = (*reader)->size();
  e.block_count = header.block_count;
  e.virtual_time = header.virtual_time;
  e.key = key;
  return e;
}

bool parse_rank_key(const std::string& key, std::uint32_t* rank) {
  unsigned r = 0;
  if (std::sscanf(key.c_str(), "rank%u/", &r) == 1) {
    *rank = r;
    return true;
  }
  return false;
}

/// Sequence of an object for repair placement: the header if readable
/// (any zero-pad may appear in keys), the key otherwise.
bool placement_sequence(storage::StorageBackend& storage,
                        const std::string& key, std::uint64_t* seq) {
  auto reader = storage.open(key);
  if (reader.is_ok()) {
    FileHeader header;
    if (read_exact(**reader, &header, sizeof header).is_ok() &&
        header.magic == kMagic) {
      *seq = header.sequence;
      return true;
    }
  }
  unsigned long long r = 0, s = 0;
  if (std::sscanf(key.c_str(), "rank%llu/ckpt-%llu", &r, &s) == 2) {
    *seq = s;
    return true;
  }
  return false;
}

/// Move an object's bytes under "quarantine/<key>" and remove the
/// original.  Preserves evidence while getting damage out of the way
/// of restore and inspect (neither looks under "quarantine/").
Status quarantine(storage::StorageBackend& storage, const std::string& key,
                  std::string* quarantine_key) {
  *quarantine_key = "quarantine/" + key;
  auto reader = storage.open(key);
  if (!reader.is_ok()) return reader.status();
  auto writer = storage.create(*quarantine_key);
  if (!writer.is_ok()) return writer.status();
  std::vector<std::byte> buf(64 * 1024);
  for (;;) {
    auto got = (*reader)->read(buf);
    if (!got.is_ok()) return got.status();
    if (*got == 0) break;
    ICKPT_RETURN_IF_ERROR((*writer)->write({buf.data(), *got}));
  }
  ICKPT_RETURN_IF_ERROR((*writer)->close());
  return storage.remove(key);
}

}  // namespace

bool StoreReport::healthy() const noexcept {
  if (!problems.empty()) return false;
  for (const auto& [rank, chain] : chains) {
    if (!chain.healthy()) return false;
  }
  return true;
}

Result<ChainReport> inspect_chain(storage::StorageBackend& storage,
                                  std::uint32_t rank) {
  obs::TraceSpan span(FsckTrace::get().t_inspect, rank);
  auto keys = storage.list();
  if (!keys.is_ok()) return keys.status();

  ChainReport report;
  report.rank = rank;
  const std::string prefix = "rank" + std::to_string(rank) + "/";
  for (const auto& key : *keys) {
    if (key.rfind(prefix, 0) != 0) continue;
    auto element = inspect_object(storage, key);
    if (!element.is_ok()) {
      report.problems.push_back(key + ": " +
                                element.status().to_string());
      continue;
    }
    report.total_bytes += element->file_bytes;
    report.elements.push_back(std::move(element.value()));
  }
  std::sort(report.elements.begin(), report.elements.end(),
            [](const ChainElement& a, const ChainElement& b) {
              return a.sequence < b.sequence;
            });

  if (report.elements.empty()) {
    report.problems.push_back("no readable checkpoints for rank " +
                              std::to_string(rank));
    return report;
  }

  // Invariants: a full element must exist; sequences strictly
  // increase; each non-root's parent is the previous element.
  bool seen_full = false;
  for (std::size_t i = 0; i < report.elements.size(); ++i) {
    const ChainElement& e = report.elements[i];
    if (e.full) seen_full = true;
    if (i > 0) {
      const ChainElement& prev = report.elements[i - 1];
      if (e.sequence == prev.sequence) {
        report.problems.push_back("duplicate sequence " +
                                  std::to_string(e.sequence));
      }
      if (!e.full && e.parent_sequence != prev.sequence) {
        report.problems.push_back(
            "broken parent link at sequence " +
            std::to_string(e.sequence) + " (parent " +
            std::to_string(e.parent_sequence) + ", expected " +
            std::to_string(prev.sequence) + ")");
      }
    } else if (!e.full && e.parent_sequence != e.sequence) {
      report.problems.push_back(
          "chain starts with an incremental whose parent " +
          std::to_string(e.parent_sequence) + " is missing");
    }
  }
  if (!seen_full) {
    report.problems.push_back("chain has no full checkpoint");
  }

  // Recoverability check: actually run the restorer.
  auto state = restore_chain(storage, rank);
  if (state.is_ok()) {
    report.recoverable = true;
    report.recoverable_upto = state->sequence;
  } else {
    report.problems.push_back("restore failed: " +
                              state.status().to_string());
  }
  return report;
}

Result<StoreReport> inspect_store(storage::StorageBackend& storage) {
  auto keys = storage.list();
  if (!keys.is_ok()) return keys.status();

  StoreReport report;
  std::vector<std::uint32_t> ranks;
  for (const auto& key : *keys) {
    std::uint32_t rank = 0;
    if (parse_rank_key(key, &rank)) {
      if (std::find(ranks.begin(), ranks.end(), rank) == ranks.end()) {
        ranks.push_back(rank);
      }
    } else if (key.rfind("commit/", 0) == 0) {
      std::uint64_t seq = 0;
      if (std::sscanf(key.c_str(), "commit/%llu",
                      reinterpret_cast<unsigned long long*>(&seq)) == 1) {
        report.commit_markers.push_back(seq);
      } else {
        report.problems.push_back("unparseable commit marker: " + key);
      }
    }
  }
  std::sort(report.commit_markers.begin(), report.commit_markers.end());
  std::sort(ranks.begin(), ranks.end());

  for (std::uint32_t rank : ranks) {
    auto chain = inspect_chain(storage, rank);
    if (!chain.is_ok()) return chain.status();
    report.chains.emplace(rank, std::move(chain.value()));
  }

  // Every committed sequence must be restorable *at that sequence* on
  // every rank (restoring an older state silently loses the work the
  // marker promised was durable).
  for (std::uint64_t seq : report.commit_markers) {
    for (const auto& [rank, chain] : report.chains) {
      auto state = restore_chain(storage, rank, seq);
      bool covered = state.is_ok() && state->sequence == seq;
      if (!covered) {
        report.problems.push_back(
            "committed sequence " + std::to_string(seq) +
            " is not restorable on rank " + std::to_string(rank));
      }
    }
  }
  return report;
}

Result<RepairReport> repair_store(storage::StorageBackend& storage) {
  obs::TraceSpan span(FsckTrace::get().t_repair);
  auto keys = storage.list();
  if (!keys.is_ok()) return keys.status();

  RepairReport report;
  std::map<std::uint32_t, std::vector<std::string>> by_rank;
  for (const auto& key : *keys) {
    std::uint32_t rank = 0;
    if (parse_rank_key(key, &rank)) by_rank[rank].push_back(key);
  }

  auto drop = [&](const std::string& key,
                  const std::string& reason) -> Status {
    std::string qkey;
    ICKPT_RETURN_IF_ERROR(quarantine(storage, key, &qkey));
    report.dropped.push_back({key, qkey, reason});
    return Status::ok();
  };

  for (auto& [rank, rank_keys] : by_rank) {
    // Establish the newest restorable prefix for this rank.
    RestoreOptions options;
    options.allow_truncated_tail = true;
    options.decode_threads = 1;  // repair is not the hot path
    auto state = restore_chain(storage, rank, options);
    if (!state.is_ok()) {
      // Nothing restorable: keep all the evidence, let a human look.
      report.problems.push_back("rank " + std::to_string(rank) +
                                " has no restorable prefix: " +
                                state.status().to_string());
      continue;
    }
    const std::uint64_t upto = state->sequence;
    report.recovered_upto[rank] = upto;

    for (const auto& key : rank_keys) {
      std::uint64_t seq = 0;
      if (!placement_sequence(storage, key, &seq)) {
        ICKPT_RETURN_IF_ERROR(
            drop(key, "orphan: unreadable header and unparseable key"));
        continue;
      }
      if (seq > upto) {
        ICKPT_RETURN_IF_ERROR(
            drop(key, "beyond recovered sequence " + std::to_string(upto)));
        continue;
      }
      // At or below the recovered sequence but individually corrupt
      // (pre-seed garbage the planner never reads): restoring at
      // `upto` succeeded without it, so quarantining is safe.
      auto element = inspect_object(storage, key);
      if (!element.is_ok()) {
        ICKPT_RETURN_IF_ERROR(drop(key, element.status().to_string()));
      }
    }
  }

  // A commit marker promises its sequence is restorable everywhere;
  // after truncation such a promise may no longer hold.
  for (const auto& key : *keys) {
    if (key.rfind("commit/", 0) != 0) continue;
    unsigned long long seq = 0;
    if (std::sscanf(key.c_str(), "commit/%llu", &seq) != 1) {
      ICKPT_RETURN_IF_ERROR(drop(key, "unparseable commit marker"));
      continue;
    }
    bool stale = false;
    for (const auto& [rank, upto] : report.recovered_upto) {
      if (seq > upto) {
        stale = true;
        break;
      }
    }
    if (stale) {
      ICKPT_RETURN_IF_ERROR(
          drop(key, "commit marker beyond recovered sequence"));
    }
  }
  return report;
}

}  // namespace ickpt::checkpoint

#include "checkpoint/inspect.h"

#include <algorithm>
#include <cstdio>

#include "checkpoint/format.h"
#include "checkpoint/restore.h"
#include "common/crc32.h"

namespace ickpt::checkpoint {

namespace {

/// Lightweight structural parse of one object: header fields only,
/// with full-file CRC validation via read_checkpoint_file.
Result<ChainElement> inspect_object(storage::StorageBackend& storage,
                                    const std::string& key) {
  auto reader = storage.open(key);
  if (!reader.is_ok()) return reader.status();
  FileHeader header;
  auto got = (*reader)->read(
      {reinterpret_cast<std::byte*>(&header), sizeof header});
  if (!got.is_ok()) return got.status();
  if (*got != sizeof header || header.magic != kMagic) {
    return corruption("bad header in " + key);
  }
  // Deep validation (structure + CRC) via the restore parser.
  auto state = read_checkpoint_file(storage, key);
  if (!state.is_ok()) return state.status();

  ChainElement e;
  e.sequence = header.sequence;
  e.parent_sequence = header.parent_sequence;
  e.full = header.kind == static_cast<std::uint16_t>(Kind::kFull);
  e.file_bytes = (*reader)->size();
  e.block_count = header.block_count;
  e.virtual_time = header.virtual_time;
  e.key = key;
  return e;
}

bool parse_rank_key(const std::string& key, std::uint32_t* rank) {
  unsigned r = 0;
  if (std::sscanf(key.c_str(), "rank%u/", &r) == 1) {
    *rank = r;
    return true;
  }
  return false;
}

}  // namespace

bool StoreReport::healthy() const noexcept {
  if (!problems.empty()) return false;
  for (const auto& [rank, chain] : chains) {
    if (!chain.healthy()) return false;
  }
  return true;
}

Result<ChainReport> inspect_chain(storage::StorageBackend& storage,
                                  std::uint32_t rank) {
  auto keys = storage.list();
  if (!keys.is_ok()) return keys.status();

  ChainReport report;
  report.rank = rank;
  const std::string prefix = "rank" + std::to_string(rank) + "/";
  for (const auto& key : *keys) {
    if (key.rfind(prefix, 0) != 0) continue;
    auto element = inspect_object(storage, key);
    if (!element.is_ok()) {
      report.problems.push_back(key + ": " +
                                element.status().to_string());
      continue;
    }
    report.total_bytes += element->file_bytes;
    report.elements.push_back(std::move(element.value()));
  }
  std::sort(report.elements.begin(), report.elements.end(),
            [](const ChainElement& a, const ChainElement& b) {
              return a.sequence < b.sequence;
            });

  if (report.elements.empty()) {
    report.problems.push_back("no readable checkpoints for rank " +
                              std::to_string(rank));
    return report;
  }

  // Invariants: a full element must exist; sequences strictly
  // increase; each non-root's parent is the previous element.
  bool seen_full = false;
  for (std::size_t i = 0; i < report.elements.size(); ++i) {
    const ChainElement& e = report.elements[i];
    if (e.full) seen_full = true;
    if (i > 0) {
      const ChainElement& prev = report.elements[i - 1];
      if (e.sequence == prev.sequence) {
        report.problems.push_back("duplicate sequence " +
                                  std::to_string(e.sequence));
      }
      if (!e.full && e.parent_sequence != prev.sequence) {
        report.problems.push_back(
            "broken parent link at sequence " +
            std::to_string(e.sequence) + " (parent " +
            std::to_string(e.parent_sequence) + ", expected " +
            std::to_string(prev.sequence) + ")");
      }
    } else if (!e.full && e.parent_sequence != e.sequence) {
      report.problems.push_back(
          "chain starts with an incremental whose parent " +
          std::to_string(e.parent_sequence) + " is missing");
    }
  }
  if (!seen_full) {
    report.problems.push_back("chain has no full checkpoint");
  }

  // Recoverability check: actually run the restorer.
  auto state = restore_chain(storage, rank);
  if (state.is_ok()) {
    report.recoverable = true;
    report.recoverable_upto = state->sequence;
  } else {
    report.problems.push_back("restore failed: " +
                              state.status().to_string());
  }
  return report;
}

Result<StoreReport> inspect_store(storage::StorageBackend& storage) {
  auto keys = storage.list();
  if (!keys.is_ok()) return keys.status();

  StoreReport report;
  std::vector<std::uint32_t> ranks;
  for (const auto& key : *keys) {
    std::uint32_t rank = 0;
    if (parse_rank_key(key, &rank)) {
      if (std::find(ranks.begin(), ranks.end(), rank) == ranks.end()) {
        ranks.push_back(rank);
      }
    } else if (key.rfind("commit/", 0) == 0) {
      std::uint64_t seq = 0;
      if (std::sscanf(key.c_str(), "commit/%llu",
                      reinterpret_cast<unsigned long long*>(&seq)) == 1) {
        report.commit_markers.push_back(seq);
      } else {
        report.problems.push_back("unparseable commit marker: " + key);
      }
    }
  }
  std::sort(report.commit_markers.begin(), report.commit_markers.end());
  std::sort(ranks.begin(), ranks.end());

  for (std::uint32_t rank : ranks) {
    auto chain = inspect_chain(storage, rank);
    if (!chain.is_ok()) return chain.status();
    report.chains.emplace(rank, std::move(chain.value()));
  }

  // Every committed sequence must be restorable *at that sequence* on
  // every rank (restoring an older state silently loses the work the
  // marker promised was durable).
  for (std::uint64_t seq : report.commit_markers) {
    for (const auto& [rank, chain] : report.chains) {
      auto state = restore_chain(storage, rank, seq);
      bool covered = state.is_ok() && state->sequence == seq;
      if (!covered) {
        report.problems.push_back(
            "committed sequence " + std::to_string(seq) +
            " is not restorable on rank " + std::to_string(rank));
      }
    }
  }
  return report;
}

}  // namespace ickpt::checkpoint

#include "checkpoint/diskless.h"

#include <cstring>

namespace ickpt::checkpoint {

namespace {
constexpr int kCountTag = 41;
constexpr int kHeaderTag = 42;
constexpr int kDataTag = 43;

Result<std::vector<std::byte>> read_object(storage::StorageBackend& store,
                                           const std::string& key) {
  auto reader = store.open(key);
  if (!reader.is_ok()) return reader.status();
  std::vector<std::byte> data((*reader)->size());
  std::size_t off = 0;
  while (off < data.size()) {
    auto got = (*reader)->read({data.data() + off, data.size() - off});
    if (!got.is_ok()) return got.status();
    if (*got == 0) break;
    off += *got;
  }
  data.resize(off);
  return data;
}

Status write_object(storage::StorageBackend& store, const std::string& key,
                    std::span<const std::byte> data) {
  auto writer = store.create(key);
  if (!writer.is_ok()) return writer.status();
  ICKPT_RETURN_IF_ERROR((*writer)->write(data));
  return (*writer)->close();
}
}  // namespace

int buddy_of(int rank, int nprocs) { return (rank + 1) % nprocs; }

Status replicate_chain(mpi::Comm& comm, storage::StorageBackend& store,
                       const std::vector<std::string>& keys) {
  if (comm.size() < 2) {
    return failed_precondition("diskless replication needs >= 2 ranks");
  }
  const int buddy = buddy_of(comm.rank(), comm.size());
  const int source = (comm.rank() + comm.size() - 1) % comm.size();

  // Announce how many objects travel each way.
  std::uint64_t count = keys.size();
  comm.send(buddy, kCountTag,
            {reinterpret_cast<const std::byte*>(&count), sizeof count});
  std::uint64_t incoming = 0;
  {
    auto info = comm.recv(source, kCountTag,
                          {reinterpret_cast<std::byte*>(&incoming),
                           sizeof incoming});
    if (!info.is_ok()) return info.status();
  }

  // Send our objects (header = [u64 payload size][key bytes], then the
  // payload), interleaved with receiving the buddy's — buffered sends
  // make the ordering safe.
  for (const std::string& key : keys) {
    auto data = read_object(store, key);
    if (!data.is_ok()) return data.status();
    std::vector<std::byte> header(sizeof(std::uint64_t) + key.size());
    std::uint64_t size = data->size();
    std::memcpy(header.data(), &size, sizeof size);
    std::memcpy(header.data() + sizeof size, key.data(), key.size());
    comm.send(buddy, kHeaderTag, header);
    comm.send(buddy, kDataTag, *data);
  }
  for (std::uint64_t i = 0; i < incoming; ++i) {
    std::vector<std::byte> header(sizeof(std::uint64_t) + 4096);
    auto keyinfo = comm.recv(source, kHeaderTag, header);
    if (!keyinfo.is_ok()) return keyinfo.status();
    if (keyinfo->bytes < sizeof(std::uint64_t)) {
      return corruption("diskless: short replica header");
    }
    std::uint64_t size = 0;
    std::memcpy(&size, header.data(), sizeof size);
    std::string key(
        reinterpret_cast<const char*>(header.data() + sizeof size),
        keyinfo->bytes - sizeof size);
    std::vector<std::byte> data(size);
    auto datainfo = comm.recv(source, kDataTag, data);
    if (!datainfo.is_ok()) return datainfo.status();
    if (datainfo->bytes != size) {
      return corruption("diskless: replica size mismatch");
    }
    ICKPT_RETURN_IF_ERROR(write_object(store, "buddy/" + key, data));
  }
  comm.barrier();  // replication epoch complete everywhere
  return Status::ok();
}

Result<std::size_t> recover_from_buddy(storage::StorageBackend& buddy_store,
                                       std::uint32_t rank,
                                       storage::StorageBackend& dest) {
  auto keys = buddy_store.list();
  if (!keys.is_ok()) return keys.status();
  const std::string prefix = "buddy/rank" + std::to_string(rank) + "/";
  std::size_t recovered = 0;
  for (const auto& key : *keys) {
    if (key.rfind(prefix, 0) != 0) continue;
    auto data = read_object(buddy_store, key);
    if (!data.is_ok()) return data.status();
    ICKPT_RETURN_IF_ERROR(
        write_object(dest, key.substr(6), *data));  // drop "buddy/"
    ++recovered;
  }
  if (recovered == 0) {
    return not_found("no buddy replicas for rank " + std::to_string(rank));
  }
  return recovered;
}

}  // namespace ickpt::checkpoint

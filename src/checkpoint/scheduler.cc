#include "checkpoint/scheduler.h"

namespace ickpt::checkpoint {

BurstAwareScheduler::BurstAwareScheduler(Options options)
    : options_(options) {}

bool BurstAwareScheduler::observe(const trace::Sample& sample) {
  const auto iws = static_cast<double>(sample.iws_bytes);
  if (seen_ == 0) {
    ewma_ = iws;
    // Anchor the first interval to the trace's own clock: a scheduler
    // attached mid-trace (t_end far from 0) must not see a huge
    // phantom interval and immediately force a max-interval fire.
    anchor_ = sample.t_end;
  } else {
    ewma_ = options_.ewma_alpha * iws + (1 - options_.ewma_alpha) * ewma_;
  }
  ++seen_;

  const double since_fire =
      has_fired_ ? sample.t_end - last_fire_ : sample.t_end - anchor_;

  bool fire = false;
  bool was_forced = false;
  if (seen_ > options_.warmup_slices) {
    if (since_fire >= options_.max_interval) {
      fire = true;  // rollback-window bound
      was_forced = true;
    } else if (since_fire >= options_.min_interval &&
               iws < options_.quiet_fraction * ewma_) {
      fire = true;  // quiet gap between bursts
    }
  }
  if (fire) {
    last_fire_ = sample.t_end;
    has_fired_ = true;
    ++decisions_;
    if (was_forced) ++forced_;
  }
  return fire;
}

}  // namespace ickpt::checkpoint

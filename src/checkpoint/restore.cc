#include "checkpoint/restore.h"

#include <algorithm>
#include <cstring>

#include "checkpoint/compress.h"
#include "checkpoint/format.h"
#include "common/crc32.h"
#include "common/page.h"

namespace ickpt::checkpoint {

namespace {

/// Buffered sequential reader with CRC tracking and strict bounds.
class CrcReader {
 public:
  explicit CrcReader(storage::Reader& in) : in_(in) {}

  Status read_exact(void* out, std::size_t len) {
    auto* dst = static_cast<std::byte*>(out);
    std::size_t got_total = 0;
    while (got_total < len) {
      auto got = in_.read({dst + got_total, len - got_total});
      if (!got.is_ok()) return got.status();
      if (*got == 0) return corruption("truncated checkpoint file");
      got_total += *got;
    }
    crc_.update(out, len);
    consumed_ += len;
    return Status::ok();
  }

  /// Read without CRC accounting (for the trailer itself).
  Status read_raw(void* out, std::size_t len) {
    auto* dst = static_cast<std::byte*>(out);
    std::size_t got_total = 0;
    while (got_total < len) {
      auto got = in_.read({dst + got_total, len - got_total});
      if (!got.is_ok()) return got.status();
      if (*got == 0) return corruption("truncated checkpoint trailer");
      got_total += *got;
    }
    consumed_ += len;
    return Status::ok();
  }

  std::uint32_t crc() const noexcept { return crc_.value(); }
  std::uint64_t consumed() const noexcept { return consumed_; }

 private:
  storage::Reader& in_;
  Crc32 crc_;
  std::uint64_t consumed_ = 0;
};

struct ParsedCheckpoint {
  FileHeader header;
  RestoredState state;  ///< blocks with only *this file's* runs applied
  /// For incrementals: per block, the runs present (page spans).
  std::map<std::uint32_t, std::vector<RunHeader>> runs;
};

Result<ParsedCheckpoint> parse(storage::StorageBackend& storage,
                               const std::string& key) {
  auto reader = storage.open(key);
  if (!reader.is_ok()) return reader.status();
  CrcReader in(**reader);

  ParsedCheckpoint out;
  FileHeader& h = out.header;
  ICKPT_RETURN_IF_ERROR(in.read_exact(&h, sizeof h));
  if (h.magic != kMagic) return corruption("bad magic in " + key);
  if (h.version != kFormatVersion) {
    return unsupported("unknown checkpoint version in " + key);
  }
  if (h.page_size == 0 || (h.page_size & (h.page_size - 1)) != 0) {
    return corruption("bad page size in " + key);
  }
  if (h.kind != static_cast<std::uint16_t>(Kind::kFull) &&
      h.kind != static_cast<std::uint16_t>(Kind::kIncremental)) {
    return corruption("bad checkpoint kind in " + key);
  }
  if (h.block_count > 1u << 20) {
    return corruption("implausible block count in " + key);
  }

  out.state.sequence = h.sequence;
  out.state.virtual_time = h.virtual_time;

  const std::size_t psize = h.page_size;
  for (std::uint32_t b = 0; b < h.block_count; ++b) {
    BlockHeader bh;
    ICKPT_RETURN_IF_ERROR(in.read_exact(&bh, sizeof bh));
    if (bh.name_len > 4096) return corruption("block name too long in " + key);
    if (bh.bytes > (std::uint64_t{1} << 40)) {
      return corruption("implausible block size in " + key);
    }
    std::string name(bh.name_len, '\0');
    ICKPT_RETURN_IF_ERROR(in.read_exact(name.data(), name.size()));

    RestoredBlock block;
    block.id = bh.block_id;
    block.name = std::move(name);
    block.kind = static_cast<region::AreaKind>(bh.kind);
    const std::size_t rounded = page_ceil(bh.bytes, psize);
    block.data.assign(rounded, std::byte{0});
    const std::size_t block_pages = rounded / psize;

    auto& run_list = out.runs[bh.block_id];
    std::vector<std::byte> payload;
    for (std::uint32_t r = 0; r < bh.run_count; ++r) {
      RunHeader run;
      ICKPT_RETURN_IF_ERROR(in.read_exact(&run, sizeof run));
      if (std::size_t{run.first_page} + run.page_count > block_pages) {
        return corruption("run out of block bounds in " + key);
      }
      for (std::uint32_t p = 0; p < run.page_count; ++p) {
        PageRecord rec;
        ICKPT_RETURN_IF_ERROR(in.read_exact(&rec, sizeof rec));
        if (rec.payload_len > 2 * psize) {
          return corruption("implausible page payload in " + key);
        }
        payload.resize(rec.payload_len);
        if (!payload.empty()) {
          ICKPT_RETURN_IF_ERROR(
              in.read_exact(payload.data(), payload.size()));
        }
        std::span<std::byte> page_out{
            block.data.data() + (std::size_t{run.first_page} + p) * psize,
            psize};
        ICKPT_RETURN_IF_ERROR(decode_page(
            static_cast<PageEncoding>(rec.encoding), payload, page_out));
      }
      run_list.push_back(run);
    }
    out.state.blocks.emplace(block.id, std::move(block));
  }

  std::uint32_t computed_crc = in.crc();
  FileTrailer trailer;
  ICKPT_RETURN_IF_ERROR(in.read_raw(&trailer, sizeof trailer));
  if (trailer.end_magic != kEndMagic) {
    return corruption("bad end magic in " + key);
  }
  if (trailer.crc32 != computed_crc) {
    return corruption("crc mismatch in " + key);
  }
  return out;
}

}  // namespace

Result<RestoredState> read_checkpoint_file(storage::StorageBackend& storage,
                                           const std::string& key) {
  auto parsed = parse(storage, key);
  if (!parsed.is_ok()) return parsed.status();
  return std::move(parsed->state);
}

Result<RestoredState> restore_chain(storage::StorageBackend& storage,
                                    std::uint32_t rank, std::uint64_t upto) {
  auto keys = storage.list();
  if (!keys.is_ok()) return keys.status();
  const std::string prefix = "rank" + std::to_string(rank) + "/";
  std::vector<std::string> chain_keys;
  for (const auto& k : *keys) {
    if (k.rfind(prefix, 0) == 0) chain_keys.push_back(k);
  }
  std::sort(chain_keys.begin(), chain_keys.end());
  if (chain_keys.empty()) {
    return not_found("no checkpoints for rank " + std::to_string(rank));
  }

  // Walk backwards to the newest full checkpoint with sequence <= upto.
  std::vector<ParsedCheckpoint> to_apply;
  std::ptrdiff_t start = -1;
  std::vector<ParsedCheckpoint> parsed_files;
  parsed_files.reserve(chain_keys.size());
  for (const auto& k : chain_keys) {
    auto p = parse(storage, k);
    if (!p.is_ok()) return p.status();
    if (p->header.sequence > upto) continue;
    parsed_files.push_back(std::move(p.value()));
  }
  if (parsed_files.empty()) {
    return not_found("no checkpoint at or before requested sequence");
  }
  for (std::ptrdiff_t i =
           static_cast<std::ptrdiff_t>(parsed_files.size()) - 1;
       i >= 0; --i) {
    if (parsed_files[static_cast<std::size_t>(i)].header.kind ==
        static_cast<std::uint16_t>(Kind::kFull)) {
      start = i;
      break;
    }
  }
  if (start < 0) {
    return corruption("chain has no full checkpoint to seed recovery");
  }

  // Seed with the full checkpoint, then overlay each incremental.
  RestoredState state =
      std::move(parsed_files[static_cast<std::size_t>(start)].state);
  std::uint64_t prev_seq =
      parsed_files[static_cast<std::size_t>(start)].header.sequence;
  for (std::size_t i = static_cast<std::size_t>(start) + 1;
       i < parsed_files.size(); ++i) {
    ParsedCheckpoint& inc = parsed_files[i];
    // A gap in the chain means lost deltas: refuse to fabricate state.
    if (inc.header.parent_sequence != prev_seq) {
      return corruption("chain gap: sequence " +
                        std::to_string(inc.header.sequence) +
                        " expects parent " +
                        std::to_string(inc.header.parent_sequence) +
                        " but " + std::to_string(prev_seq) +
                        " is the newest applied");
    }
    prev_seq = inc.header.sequence;
    // Memory exclusion: drop blocks absent from the newer manifest.
    for (auto it = state.blocks.begin(); it != state.blocks.end();) {
      if (inc.state.blocks.find(it->first) == inc.state.blocks.end()) {
        it = state.blocks.erase(it);
      } else {
        ++it;
      }
    }
    const std::size_t psize = inc.header.page_size;
    for (auto& [id, newer] : inc.state.blocks) {
      auto it = state.blocks.find(id);
      if (it == state.blocks.end()) {
        // New block: starts zero-filled with this file's runs applied.
        state.blocks.emplace(id, std::move(newer));
        continue;
      }
      RestoredBlock& base = it->second;
      if (base.data.size() != newer.data.size()) {
        // Same id cannot change extent (reallocation assigns fresh
        // ids); treat as corruption rather than guessing.
        return corruption("block " + std::to_string(id) +
                          " changed size mid-chain");
      }
      for (const RunHeader& run : inc.runs[id]) {
        std::size_t off = std::size_t{run.first_page} * psize;
        std::size_t len = std::size_t{run.page_count} * psize;
        std::memcpy(base.data.data() + off, newer.data.data() + off, len);
      }
    }
    state.sequence = inc.state.sequence;
    state.virtual_time = inc.state.virtual_time;
  }
  return state;
}

Result<std::map<std::uint32_t, region::BlockId>> materialize(
    const RestoredState& state, region::AddressSpace& space) {
  std::map<std::uint32_t, region::BlockId> mapping;
  for (const auto& [id, block] : state.blocks) {
    auto ref = space.map(block.data.size(), block.kind, block.name);
    if (!ref.is_ok()) return ref.status();
    std::memcpy(ref->mem.data(), block.data.data(), block.data.size());
    mapping[id] = ref->id;
  }
  return mapping;
}

}  // namespace ickpt::checkpoint

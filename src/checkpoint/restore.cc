#include "checkpoint/restore.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <set>

#include "checkpoint/compress.h"
#include "checkpoint/format.h"
#include "common/crc32.h"
#include "common/page.h"
#include "common/thread_pool.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace ickpt::checkpoint {

namespace {

/// Stage metrics for the restore pipeline (see DESIGN.md §10).
struct RestoreMetrics {
  obs::Counter& chains;
  obs::Counter& objects;
  obs::Counter& pages_decoded;
  obs::Counter& pages_skipped;
  obs::Counter& bytes_read;
  obs::Counter& bytes_mapped;  ///< of bytes_read, served zero-copy
  obs::Counter& truncated_tails;
  obs::Histogram& plan_ns;
  obs::Histogram& decode_ns;
  obs::Histogram& stitch_ns;
  std::uint16_t t_plan;          ///< "restore.plan" span
  std::uint16_t t_decode_shard;  ///< "restore.decode_shard" span
  std::uint16_t t_stitch;        ///< "restore.stitch" span
  std::uint16_t t_fail;          ///< "restore.fail" instant

  static RestoreMetrics& get() {
    auto& r = obs::registry();
    static RestoreMetrics m{r.counter("restore.chains"),
                            r.counter("restore.objects"),
                            r.counter("restore.pages_decoded"),
                            r.counter("restore.pages_skipped"),
                            r.counter("restore.bytes_read"),
                            r.counter("restore.bytes_mapped"),
                            r.counter("restore.truncated_tails"),
                            r.histogram("restore.plan_ns"),
                            r.histogram("restore.decode_ns"),
                            r.histogram("restore.stitch_ns"),
                            obs::trace_name("restore.plan",
                                            obs::TraceCat::kRestore),
                            obs::trace_name("restore.decode_shard",
                                            obs::TraceCat::kRestore),
                            obs::trace_name("restore.stitch",
                                            obs::TraceCat::kRestore),
                            obs::trace_name("restore.fail",
                                            obs::TraceCat::kRestore)};
    return m;
  }
};

/// Buffered sequential reader with CRC tracking and strict bounds.
class CrcReader {
 public:
  explicit CrcReader(storage::Reader& in) : in_(in) {}

  Status read_exact(void* out, std::size_t len) {
    auto* dst = static_cast<std::byte*>(out);
    std::size_t got_total = 0;
    while (got_total < len) {
      auto got = in_.read({dst + got_total, len - got_total});
      if (!got.is_ok()) return got.status();
      if (*got == 0) return corruption("truncated checkpoint file");
      got_total += *got;
    }
    crc_.update(out, len);
    consumed_ += len;
    return Status::ok();
  }

  /// Read without CRC accounting (for the trailer itself).
  Status read_raw(void* out, std::size_t len) {
    auto* dst = static_cast<std::byte*>(out);
    std::size_t got_total = 0;
    while (got_total < len) {
      auto got = in_.read({dst + got_total, len - got_total});
      if (!got.is_ok()) return got.status();
      if (*got == 0) return corruption("truncated checkpoint trailer");
      got_total += *got;
    }
    consumed_ += len;
    return Status::ok();
  }

  std::uint32_t crc() const noexcept { return crc_.value(); }
  std::uint64_t consumed() const noexcept { return consumed_; }

 private:
  storage::Reader& in_;
  Crc32 crc_;
  std::uint64_t consumed_ = 0;
};

Status validate_header(const FileHeader& h, const std::string& key) {
  if (h.magic != kMagic) return corruption("bad magic in " + key);
  if (h.version != kFormatVersion) {
    return unsupported("unknown checkpoint version in " + key);
  }
  if (h.page_size == 0 || (h.page_size & (h.page_size - 1)) != 0) {
    return corruption("bad page size in " + key);
  }
  if (h.kind != static_cast<std::uint16_t>(Kind::kFull) &&
      h.kind != static_cast<std::uint16_t>(Kind::kIncremental)) {
    return corruption("bad checkpoint kind in " + key);
  }
  if (h.block_count > 1u << 20) {
    return corruption("implausible block count in " + key);
  }
  return Status::ok();
}

struct ParsedCheckpoint {
  FileHeader header;
  RestoredState state;  ///< blocks with only *this file's* runs applied
  /// For incrementals: per block, the runs present (page spans).
  std::map<std::uint32_t, std::vector<RunHeader>> runs;
};

Result<ParsedCheckpoint> parse(storage::StorageBackend& storage,
                               const std::string& key) {
  auto reader = storage.open(key);
  if (!reader.is_ok()) return reader.status();
  CrcReader in(**reader);

  ParsedCheckpoint out;
  FileHeader& h = out.header;
  ICKPT_RETURN_IF_ERROR(in.read_exact(&h, sizeof h));
  ICKPT_RETURN_IF_ERROR(validate_header(h, key));

  out.state.sequence = h.sequence;
  out.state.virtual_time = h.virtual_time;

  const std::size_t psize = h.page_size;
  for (std::uint32_t b = 0; b < h.block_count; ++b) {
    BlockHeader bh;
    ICKPT_RETURN_IF_ERROR(in.read_exact(&bh, sizeof bh));
    if (bh.name_len > 4096) return corruption("block name too long in " + key);
    if (bh.bytes > (std::uint64_t{1} << 40)) {
      return corruption("implausible block size in " + key);
    }
    std::string name(bh.name_len, '\0');
    ICKPT_RETURN_IF_ERROR(in.read_exact(name.data(), name.size()));

    RestoredBlock block;
    block.id = bh.block_id;
    block.name = std::move(name);
    block.kind = static_cast<region::AreaKind>(bh.kind);
    const std::size_t rounded = page_ceil(bh.bytes, psize);
    block.data.assign(rounded, std::byte{0});
    const std::size_t block_pages = rounded / psize;

    auto& run_list = out.runs[bh.block_id];
    std::vector<std::byte> payload;
    for (std::uint32_t r = 0; r < bh.run_count; ++r) {
      RunHeader run;
      ICKPT_RETURN_IF_ERROR(in.read_exact(&run, sizeof run));
      if (std::size_t{run.first_page} + run.page_count > block_pages) {
        return corruption("run out of block bounds in " + key);
      }
      for (std::uint32_t p = 0; p < run.page_count; ++p) {
        PageRecord rec;
        ICKPT_RETURN_IF_ERROR(in.read_exact(&rec, sizeof rec));
        if (rec.payload_len > 2 * psize) {
          return corruption("implausible page payload in " + key);
        }
        payload.resize(rec.payload_len);
        if (!payload.empty()) {
          ICKPT_RETURN_IF_ERROR(
              in.read_exact(payload.data(), payload.size()));
        }
        std::span<std::byte> page_out{
            block.data.data() + (std::size_t{run.first_page} + p) * psize,
            psize};
        ICKPT_RETURN_IF_ERROR(decode_page(
            static_cast<PageEncoding>(rec.encoding), payload, page_out));
      }
      run_list.push_back(run);
    }
    out.state.blocks.emplace(block.id, std::move(block));
  }

  std::uint32_t computed_crc = in.crc();
  FileTrailer trailer;
  ICKPT_RETURN_IF_ERROR(in.read_raw(&trailer, sizeof trailer));
  if (trailer.end_magic != kEndMagic) {
    return corruption("bad end magic in " + key);
  }
  if (trailer.crc32 != computed_crc) {
    return corruption("crc mismatch in " + key);
  }
  return out;
}

// ===================================================================
// Phase 1 (plan): header peek, manifest scan, newest-wins page plan.
// ===================================================================

/// One page payload inside one object, located during the manifest
/// scan.  `decode` is set during planning for the single newest writer
/// of each surviving (block, page).
struct PageEntry {
  std::uint64_t rec_offset = 0;  ///< file offset of the PageRecord
  std::uint32_t payload_len = 0;
  std::uint32_t encoding = 0;
  std::uint32_t block_id = 0;
  std::uint32_t page_index = 0;  ///< within the block
  bool decode = false;
};

/// A contiguous byte range of one object, in file order.  Structural
/// segments (headers, names, run tables) are CRC'd during the scan;
/// page segments (PageRecord + payload interleavings of one run) are
/// CRC'd by the decode shards that read them.  Folding all segment
/// CRCs in order via crc32_combine reproduces the full-file CRC.
struct Segment {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint32_t crc = 0;       ///< structural segments only
  bool structural = true;
  std::size_t first_page = 0;  ///< page segments: index into pages
  std::size_t page_count = 0;
};

/// Block manifest entry as first seen (restore keeps the oldest live
/// object's name/kind for a block, like the serial overlay did).
struct BlockMeta {
  std::uint32_t id = 0;
  std::string name;
  region::AreaKind kind = region::AreaKind::kHeap;
  std::size_t rounded = 0;  ///< page-rounded extent
};

struct ObjectPlan {
  std::string key;
  FileHeader header;
  std::vector<BlockMeta> manifest;  ///< every block listed (runs or not)
  std::vector<PageEntry> pages;     ///< file order
  std::vector<Segment> segments;    ///< file order, header..last payload
  std::uint32_t trailer_crc = 0;
};

/// Buffered scanner over a storage::Reader that separates structural
/// bytes (CRC'd now) from payload bytes (skipped now, CRC'd by decode
/// shards).  Works on random-access and purely sequential readers.
class ObjectScanner {
 public:
  static constexpr std::size_t kBufSize = 64 * 1024;

  explicit ObjectScanner(storage::Reader& in)
      : in_(in), random_(in.supports_read_at()) {}

  /// Read bytes without CRC accounting (PageRecords, the trailer).
  Status read_plain(void* out, std::size_t len) {
    auto* dst = static_cast<std::byte*>(out);
    std::size_t got = 0;
    while (got < len) {
      if (pos_ == len_) ICKPT_RETURN_IF_ERROR(refill());
      std::size_t n = std::min(len - got, len_ - pos_);
      std::memcpy(dst + got, buf_.data() + pos_, n);
      pos_ += n;
      offset_ += n;
      got += n;
    }
    return Status::ok();
  }

  /// Read bytes into the current structural segment.
  Status read_struct(void* out, std::size_t len) {
    if (piece_len_ == 0) piece_off_ = offset_;
    ICKPT_RETURN_IF_ERROR(read_plain(out, len));
    piece_.update(out, len);
    piece_len_ += len;
    return Status::ok();
  }

  /// Skip payload bytes.  Random-access readers jump; sequential ones
  /// read through a scratch window.
  Status skip(std::uint64_t len) {
    while (len > 0) {
      if (pos_ < len_) {
        auto n = std::min<std::uint64_t>(len, len_ - pos_);
        pos_ += static_cast<std::size_t>(n);
        offset_ += n;
        len -= n;
        continue;
      }
      if (random_) {
        offset_ += len;
        return Status::ok();
      }
      ICKPT_RETURN_IF_ERROR(refill());
    }
    return Status::ok();
  }

  /// Close the current structural segment, if any, into `segs`.
  void end_struct(std::vector<Segment>& segs) {
    if (piece_len_ == 0) return;
    Segment s;
    s.offset = piece_off_;
    s.length = piece_len_;
    s.crc = piece_.value();
    s.structural = true;
    segs.push_back(s);
    piece_.reset();
    piece_len_ = 0;
  }

  std::uint64_t offset() const noexcept { return offset_; }

 private:
  Status refill() {
    buf_.resize(kBufSize);
    pos_ = 0;
    len_ = 0;
    Result<std::size_t> got = random_
                                  ? in_.read_at(offset_, {buf_.data(),
                                                          buf_.size()})
                                  : in_.read({buf_.data(), buf_.size()});
    if (!got.is_ok()) return got.status();
    if (*got == 0) return corruption("truncated checkpoint file");
    len_ = *got;
    return Status::ok();
  }

  storage::Reader& in_;
  bool random_;
  std::uint64_t offset_ = 0;  ///< logical position == buffer start + pos_
  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
  Crc32 piece_;
  std::uint64_t piece_len_ = 0;
  std::uint64_t piece_off_ = 0;
};

/// Read just the FileHeader (read-exact loop: streaming backends may
/// return short counts), without touching the rest of the object.
Result<FileHeader> peek_header(storage::StorageBackend& storage,
                               const std::string& key) {
  auto reader = storage.open(key);
  if (!reader.is_ok()) return reader.status();
  FileHeader h;
  auto* dst = reinterpret_cast<std::byte*>(&h);
  std::size_t got_total = 0;
  while (got_total < sizeof h) {
    auto got = (*reader)->read({dst + got_total, sizeof h - got_total});
    if (!got.is_ok()) return got.status();
    if (*got == 0) return corruption("bad header in " + key);
    got_total += *got;
  }
  ICKPT_RETURN_IF_ERROR(validate_header(h, key));
  return h;
}

/// Structural scan of one object: headers, names, run tables and page
/// records are read (and CRC'd into structural segments); page
/// payloads are skipped.  No payload is decoded.
Result<ObjectPlan> scan_object(storage::StorageBackend& storage,
                               const std::string& key) {
  auto reader = storage.open(key);
  if (!reader.is_ok()) return reader.status();
  ObjectScanner in(**reader);

  ObjectPlan out;
  out.key = key;
  FileHeader& h = out.header;
  ICKPT_RETURN_IF_ERROR(in.read_struct(&h, sizeof h));
  ICKPT_RETURN_IF_ERROR(validate_header(h, key));

  const std::size_t psize = h.page_size;
  for (std::uint32_t b = 0; b < h.block_count; ++b) {
    BlockHeader bh;
    ICKPT_RETURN_IF_ERROR(in.read_struct(&bh, sizeof bh));
    if (bh.name_len > 4096) return corruption("block name too long in " + key);
    if (bh.bytes > (std::uint64_t{1} << 40)) {
      return corruption("implausible block size in " + key);
    }
    std::string name(bh.name_len, '\0');
    ICKPT_RETURN_IF_ERROR(in.read_struct(name.data(), name.size()));

    BlockMeta meta;
    meta.id = bh.block_id;
    meta.name = std::move(name);
    meta.kind = static_cast<region::AreaKind>(bh.kind);
    meta.rounded = page_ceil(bh.bytes, psize);
    const std::size_t block_pages = meta.rounded / psize;

    for (std::uint32_t r = 0; r < bh.run_count; ++r) {
      RunHeader run;
      ICKPT_RETURN_IF_ERROR(in.read_struct(&run, sizeof run));
      if (std::size_t{run.first_page} + run.page_count > block_pages) {
        return corruption("run out of block bounds in " + key);
      }
      if (run.page_count == 0) continue;
      in.end_struct(out.segments);
      Segment seg;
      seg.structural = false;
      seg.offset = in.offset();
      seg.first_page = out.pages.size();
      seg.page_count = run.page_count;
      for (std::uint32_t p = 0; p < run.page_count; ++p) {
        PageRecord rec;
        const std::uint64_t rec_offset = in.offset();
        ICKPT_RETURN_IF_ERROR(in.read_plain(&rec, sizeof rec));
        if (rec.payload_len > 2 * psize) {
          return corruption("implausible page payload in " + key);
        }
        PageEntry pe;
        pe.rec_offset = rec_offset;
        pe.payload_len = rec.payload_len;
        pe.encoding = rec.encoding;
        pe.block_id = bh.block_id;
        pe.page_index = run.first_page + p;
        out.pages.push_back(pe);
        ICKPT_RETURN_IF_ERROR(in.skip(rec.payload_len));
      }
      seg.length = in.offset() - seg.offset;
      out.segments.push_back(seg);
    }
    out.manifest.push_back(std::move(meta));
  }
  in.end_struct(out.segments);

  FileTrailer trailer;
  ICKPT_RETURN_IF_ERROR(in.read_plain(&trailer, sizeof trailer));
  if (trailer.end_magic != kEndMagic) {
    return corruption("bad end magic in " + key);
  }
  out.trailer_crc = trailer.crc32;
  return out;
}

/// Parse "rank<r>/ckpt-<seq>" (any zero-pad width).  Lets the planner
/// place an object in the chain even when its header is unreadable.
bool parse_key_sequence(const std::string& key, std::uint64_t* seq) {
  unsigned long long r = 0, s = 0;
  if (std::sscanf(key.c_str(), "rank%llu/ckpt-%llu", &r, &s) == 2) {
    *seq = s;
    return true;
  }
  return false;
}

struct Candidate {
  std::string key;
  std::uint64_t sequence = 0;
  bool header_ok = false;
  FileHeader header;
};

// ===================================================================
// Phase 2 (decode): sharded payload read + decode, CRC stitching.
// ===================================================================

struct DecodeShard {
  std::size_t obj_idx = 0;
  std::uint64_t offset = 0;  ///< byte range in the object
  std::uint64_t length = 0;
  std::size_t first_page = 0;  ///< into ObjectPlan::pages
  std::uint32_t page_count = 0;
  std::uint32_t crc = 0;  ///< CRC of the byte range (set by the worker)
  std::uint32_t decoded = 0;
  std::uint32_t skipped = 0;
  bool mapped = false;  ///< served from a zero-copy mapping
  Status status;  ///< per-shard result
};

/// Read [offset, offset+len) of an object into `out`, preferring
/// random access and falling back to a sequential skip-read.
Status read_range(storage::Reader& in, std::uint64_t offset,
                  std::span<std::byte> out) {
  if (in.supports_read_at()) {
    std::size_t got_total = 0;
    while (got_total < out.size()) {
      auto got = in.read_at(offset + got_total,
                            out.subspan(got_total));
      if (!got.is_ok()) return got.status();
      if (*got == 0) return corruption("truncated checkpoint file");
      got_total += *got;
    }
    return Status::ok();
  }
  // Sequential reader: discard up to `offset`, then read-exact.
  std::vector<std::byte> scratch(ObjectScanner::kBufSize);
  std::uint64_t to_skip = offset;
  while (to_skip > 0) {
    auto n = std::min<std::uint64_t>(to_skip, scratch.size());
    auto got = in.read({scratch.data(), static_cast<std::size_t>(n)});
    if (!got.is_ok()) return got.status();
    if (*got == 0) return corruption("truncated checkpoint file");
    to_skip -= *got;
  }
  std::size_t got_total = 0;
  while (got_total < out.size()) {
    auto got = in.read(out.subspan(got_total));
    if (!got.is_ok()) return got.status();
    if (*got == 0) return corruption("truncated checkpoint file");
    got_total += *got;
  }
  return Status::ok();
}

/// Decode one shard: read its byte range, CRC it, decode the winner
/// pages straight into the final block buffers.  Shards touch disjoint
/// output pages, so workers never race.  When the backend supports
/// map_at() (and the caller allows it) the byte range is a zero-copy
/// view of the object; otherwise it is read into a shard-local buffer.
/// CRC coverage and decoded bytes are identical either way.
void run_shard(storage::StorageBackend& storage,
               const std::vector<ObjectPlan>& objs,
               const std::map<std::uint32_t, std::byte*>& out_base,
               bool map_reads, DecodeShard& s) {
  obs::TraceSpan span(RestoreMetrics::get().t_decode_shard, s.page_count,
                      s.length);
  const ObjectPlan& obj = objs[s.obj_idx];
  auto reader = storage.open(obj.key);
  if (!reader.is_ok()) {
    s.status = reader.status();
    return;
  }
  std::span<const std::byte> bytes;
  std::vector<std::byte> buf;
  if (map_reads && (*reader)->supports_map()) {
    auto mapped = (*reader)->map_at(s.offset,
                                    static_cast<std::size_t>(s.length));
    if (mapped.is_ok()) {
      bytes = *mapped;
      s.mapped = true;
    } else if (mapped.status().code() == ErrorCode::kCorruption) {
      // The range came from the object's own plan; a short object is
      // damage, not a reason to retry through the buffered path.
      s.status = mapped.status();
      return;
    }
    // Any other failure (transient mmap exhaustion, decorator without
    // pass-through): fall back to the buffered read below.
  }
  if (!s.mapped) {
    buf.resize(static_cast<std::size_t>(s.length));
    s.status = read_range(**reader, s.offset, buf);
    if (!s.status.is_ok()) return;
    bytes = buf;
  }
  s.crc = crc32(bytes);

  const std::size_t psize = obj.header.page_size;
  for (std::size_t i = s.first_page; i < s.first_page + s.page_count; ++i) {
    const PageEntry& pe = obj.pages[i];
    const std::size_t rel =
        static_cast<std::size_t>(pe.rec_offset - s.offset);
    PageRecord rec;
    std::memcpy(&rec, bytes.data() + rel, sizeof rec);
    if (rec.payload_len != pe.payload_len || rec.encoding != pe.encoding) {
      s.status = corruption("object changed during restore: " + obj.key);
      return;
    }
    if (!pe.decode) {
      ++s.skipped;
      continue;
    }
    std::span<const std::byte> payload{bytes.data() + rel + sizeof rec,
                                       pe.payload_len};
    std::span<std::byte> page_out{
        out_base.at(pe.block_id) + std::size_t{pe.page_index} * psize,
        psize};
    s.status = decode_page(static_cast<PageEncoding>(pe.encoding), payload,
                           page_out);
    if (!s.status.is_ok()) return;
    ++s.decoded;
  }
}

/// Shard granularity: mirror the encoder's policy — enough shards to
/// balance the workers, large enough to amortize dispatch, bounded so
/// one shard's buffer stays a few MB.
std::uint32_t pick_shard_pages(std::uint64_t total_pages, int threads) {
  const std::uint64_t target =
      total_pages / (static_cast<std::uint64_t>(threads) * 8) + 1;
  return static_cast<std::uint32_t>(
      std::clamp<std::uint64_t>(target, 16, 1024));
}

/// One strict plan-then-decode attempt at `upto`.  In tolerant mode
/// (`truncate_tail`) chain damage detectable from headers alone is
/// healed by cutting the candidate list; damage found later (corrupt
/// manifest or payload in the live range) is reported via *failed_seq
/// so the caller can retry below it.
Result<RestoredState> attempt(storage::StorageBackend& storage,
                              std::uint32_t rank, std::uint64_t upto,
                              int threads, bool truncate_tail,
                              bool map_reads, std::uint64_t* failed_seq,
                              bool* have_failed_seq) {
  auto& metrics = RestoreMetrics::get();
  obs::ScopedTimer plan_timer(metrics.plan_ns);
  obs::TraceSpan plan_span(metrics.t_plan, upto);

  auto keys = storage.list();
  if (!keys.is_ok()) return keys.status();
  const std::string prefix = "rank" + std::to_string(rank) + "/";
  std::vector<std::string> chain_keys;
  for (const auto& k : *keys) {
    if (k.rfind(prefix, 0) == 0) chain_keys.push_back(k);
  }
  if (chain_keys.empty()) {
    return not_found("no checkpoints for rank " + std::to_string(rank));
  }

  // ---- Header peek: place every object in the chain by sequence.
  std::vector<Candidate> cands;
  cands.reserve(chain_keys.size());
  for (const auto& k : chain_keys) {
    Candidate c;
    c.key = k;
    auto h = peek_header(storage, k);
    if (h.is_ok()) {
      c.header_ok = true;
      c.header = *h;
      c.sequence = h->sequence;
    } else if (!parse_key_sequence(k, &c.sequence)) {
      // Unreadable header and unparseable key: the object cannot even
      // be placed in the chain.
      if (!truncate_tail) return h.status();
      continue;  // orphan; fsck --repair quarantines these
    }
    if (c.sequence > upto) continue;  // peeked only, never fully parsed
    if (!c.header_ok && !truncate_tail) {
      auto again = peek_header(storage, k);
      return again.status();
    }
    cands.push_back(std::move(c));
  }
  if (cands.empty()) {
    return not_found("no checkpoint at or before requested sequence");
  }
  // Sequences are compared numerically — never trust the key sort
  // (zero-pad widths may differ across writer versions).
  std::stable_sort(cands.begin(), cands.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.sequence < b.sequence;
                   });
  for (std::size_t i = 1; i < cands.size(); ++i) {
    if (cands[i].sequence == cands[i - 1].sequence) {
      if (!truncate_tail) {
        return corruption("duplicate sequence " +
                          std::to_string(cands[i].sequence) + " in chain");
      }
      cands.resize(i);
      break;
    }
  }
  // Tolerant mode: an unreadable header ends the usable prefix there.
  if (truncate_tail) {
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (!cands[i].header_ok) {
        cands.resize(i);
        break;
      }
    }
    if (cands.empty()) {
      return not_found("no checkpoint at or before requested sequence");
    }
  }

  // ---- Seed: newest full checkpoint; validate parent links after it.
  std::ptrdiff_t start = -1;
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(cands.size()) - 1;
       i >= 0; --i) {
    if (cands[static_cast<std::size_t>(i)].header.kind ==
        static_cast<std::uint16_t>(Kind::kFull)) {
      start = i;
      break;
    }
  }
  if (start < 0) {
    return corruption("chain has no full checkpoint to seed recovery");
  }
  std::size_t end = cands.size();
  for (std::size_t i = static_cast<std::size_t>(start) + 1; i < end; ++i) {
    if (cands[i].header.parent_sequence != cands[i - 1].sequence) {
      if (!truncate_tail) {
        return corruption(
            "chain gap: sequence " + std::to_string(cands[i].sequence) +
            " expects parent " +
            std::to_string(cands[i].header.parent_sequence) + " but " +
            std::to_string(cands[i - 1].sequence) +
            " is the newest applied");
      }
      end = i;  // recover the prefix before the gap
      break;
    }
  }

  // ---- Manifest scan of the live range (seed..end) and page plan.
  std::vector<ObjectPlan> objs;
  objs.reserve(end - static_cast<std::size_t>(start));
  for (std::size_t i = static_cast<std::size_t>(start); i < end; ++i) {
    auto plan = scan_object(storage, cands[i].key);
    if (!plan.is_ok()) {
      *failed_seq = cands[i].sequence;
      *have_failed_seq = true;
      return plan.status();
    }
    objs.push_back(std::move(plan.value()));
  }

  struct Winner {
    std::uint32_t obj = UINT32_MAX;
    std::uint32_t page = 0;  ///< into objs[obj].pages
  };
  struct LiveBlock {
    BlockMeta meta;  ///< first-seen name/kind/extent
    std::vector<Winner> winners;
  };
  std::map<std::uint32_t, LiveBlock> live;
  const std::uint32_t psize = objs.front().header.page_size;
  std::set<std::uint32_t> listed;
  for (std::size_t o = 0; o < objs.size(); ++o) {
    ObjectPlan& obj = objs[o];
    if (obj.header.page_size != psize) {
      *failed_seq = obj.header.sequence;
      *have_failed_seq = true;
      return corruption("page size changed mid-chain in " + obj.key);
    }
    // Memory exclusion: drop blocks absent from the newer manifest.
    listed.clear();
    for (const BlockMeta& m : obj.manifest) listed.insert(m.id);
    for (auto it = live.begin(); it != live.end();) {
      if (listed.count(it->first) == 0) {
        it = live.erase(it);
      } else {
        ++it;
      }
    }
    for (BlockMeta& m : obj.manifest) {
      auto it = live.find(m.id);
      if (it == live.end()) {
        LiveBlock lb;
        lb.winners.assign(m.rounded / psize, Winner{});
        lb.meta = std::move(m);
        live.emplace(lb.meta.id, std::move(lb));
      } else if (it->second.meta.rounded != m.rounded) {
        // Same id cannot change extent (reallocation assigns fresh
        // ids); treat as corruption rather than guessing.
        *failed_seq = obj.header.sequence;
        *have_failed_seq = true;
        return corruption("block " + std::to_string(m.id) +
                          " changed size mid-chain");
      }
    }
    for (std::size_t p = 0; p < obj.pages.size(); ++p) {
      const PageEntry& pe = obj.pages[p];
      auto it = live.find(pe.block_id);
      if (it == live.end() || pe.page_index >= it->second.winners.size()) {
        *failed_seq = obj.header.sequence;
        *have_failed_seq = true;
        return corruption("run out of block bounds in " + obj.key);
      }
      it->second.winners[pe.page_index] =
          Winner{static_cast<std::uint32_t>(o),
                 static_cast<std::uint32_t>(p)};
    }
  }
  // Newest-wins: mark the single decoder of each surviving page.
  for (const auto& [id, lb] : live) {
    for (const Winner& w : lb.winners) {
      if (w.obj != UINT32_MAX) objs[w.obj].pages[w.page].decode = true;
    }
  }

  // ---- Output state: final footprint only, zero-filled.
  RestoredState state;
  state.sequence = objs.back().header.sequence;
  state.virtual_time = objs.back().header.virtual_time;
  std::map<std::uint32_t, std::byte*> out_base;
  for (const auto& [id, lb] : live) {
    RestoredBlock b;
    b.id = id;
    b.name = lb.meta.name;
    b.kind = lb.meta.kind;
    b.data.assign(lb.meta.rounded, std::byte{0});
    auto [it, inserted] = state.blocks.emplace(id, std::move(b));
    out_base[id] = it->second.data.data();
  }

  // ---- Shard every page segment for the decode pool.
  std::uint64_t total_pages = 0;
  for (const auto& obj : objs) total_pages += obj.pages.size();
  const std::uint32_t shard_pages =
      pick_shard_pages(total_pages, std::max(1, threads));
  std::vector<DecodeShard> shards;
  // Per object, the indices of its shards in file order (for the fold).
  std::vector<std::vector<std::size_t>> object_shards(objs.size());
  for (std::size_t o = 0; o < objs.size(); ++o) {
    const ObjectPlan& obj = objs[o];
    for (const Segment& seg : obj.segments) {
      if (seg.structural) continue;
      for (std::size_t off = 0; off < seg.page_count; off += shard_pages) {
        DecodeShard s;
        s.obj_idx = o;
        s.first_page = seg.first_page + off;
        s.page_count = static_cast<std::uint32_t>(
            std::min<std::size_t>(shard_pages, seg.page_count - off));
        s.offset = obj.pages[s.first_page].rec_offset;
        const std::size_t last = s.first_page + s.page_count - 1;
        s.length = obj.pages[last].rec_offset + sizeof(PageRecord) +
                   obj.pages[last].payload_len - s.offset;
        object_shards[o].push_back(shards.size());
        shards.push_back(s);
      }
    }
  }

  plan_timer.stop();
  plan_span.end(total_pages, shards.size());
  obs::ScopedTimer decode_timer(metrics.decode_ns);

  if (threads > 1 && shards.size() > 1) {
    ThreadPool pool(static_cast<std::size_t>(threads));
    for (DecodeShard& s : shards) {
      pool.submit([&storage, &objs, &out_base, map_reads, &s] {
        run_shard(storage, objs, out_base, map_reads, s);
      });
    }
    pool.wait_idle();
  } else {
    for (DecodeShard& s : shards) {
      run_shard(storage, objs, out_base, map_reads, s);
    }
  }

  decode_timer.stop();
  obs::ScopedTimer stitch_timer(metrics.stitch_ns);
  obs::TraceSpan stitch_span(metrics.t_stitch);

  // ---- Stitch: surface shard failures (oldest object first, so a
  // tolerant retry truncates as little as possible), then fold segment
  // CRCs in file order and compare against each trailer.
  std::uint64_t pages_decoded = 0;
  std::uint64_t pages_skipped = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_mapped = 0;
  for (std::size_t o = 0; o < objs.size(); ++o) {
    for (std::size_t si : object_shards[o]) {
      const DecodeShard& s = shards[si];
      if (!s.status.is_ok()) {
        *failed_seq = objs[o].header.sequence;
        *have_failed_seq = true;
        return s.status;
      }
      pages_decoded += s.decoded;
      pages_skipped += s.skipped;
      bytes_read += s.length;
      if (s.mapped) bytes_mapped += s.length;
    }
    Crc32 fold;
    std::size_t next_shard = 0;
    for (const Segment& seg : objs[o].segments) {
      if (seg.structural) {
        fold.combine(seg.crc, seg.length);
        continue;
      }
      std::uint64_t covered = 0;
      while (covered < seg.length) {
        const DecodeShard& s = shards[object_shards[o][next_shard++]];
        fold.combine(s.crc, s.length);
        covered += s.length;
      }
    }
    if (fold.value() != objs[o].trailer_crc) {
      *failed_seq = objs[o].header.sequence;
      *have_failed_seq = true;
      return corruption("crc mismatch in " + objs[o].key);
    }
  }
  stitch_timer.stop();

  metrics.chains.inc();
  metrics.objects.inc(objs.size());
  metrics.pages_decoded.inc(pages_decoded);
  metrics.pages_skipped.inc(pages_skipped);
  metrics.bytes_read.inc(bytes_read);
  metrics.bytes_mapped.inc(bytes_mapped);
  return state;
}

/// Final-failure bookkeeping for restore_chain: an instant trace event
/// carrying the failing sequence plus a flight-recorder dump (when one
/// is configured) so the failure is diagnosable post-mortem.
Status note_restore_failure(const Status& st, std::uint64_t failed_seq) {
  obs::trace_instant(RestoreMetrics::get().t_fail, failed_seq,
                     static_cast<std::uint64_t>(st.code()));
  obs::flightrec::dump("restore_chain failed: " + st.to_string());
  return st;
}

}  // namespace

Result<RestoredState> read_checkpoint_file(storage::StorageBackend& storage,
                                           const std::string& key) {
  auto parsed = parse(storage, key);
  if (!parsed.is_ok()) return parsed.status();
  return std::move(parsed->state);
}

Result<RestoredState> restore_chain(storage::StorageBackend& storage,
                                    std::uint32_t rank,
                                    const RestoreOptions& options) {
  int threads = options.decode_threads;
  if (threads <= 0) {
    threads = static_cast<int>(ThreadPool::hardware_threads());
  }
  std::uint64_t upto = options.upto;
  for (;;) {
    std::uint64_t failed_seq = 0;
    bool have_failed_seq = false;
    auto state = attempt(storage, rank, upto, threads,
                         options.allow_truncated_tail, options.map_reads,
                         &failed_seq, &have_failed_seq);
    if (state.is_ok()) return state;
    if (!options.allow_truncated_tail ||
        state.status().code() != ErrorCode::kCorruption ||
        !have_failed_seq || failed_seq == 0) {
      return note_restore_failure(state.status(), failed_seq);
    }
    // A corrupt object at failed_seq: recover the prefix below it.
    RestoreMetrics::get().truncated_tails.inc();
    upto = failed_seq - 1;
  }
}

Result<RestoredState> restore_chain(storage::StorageBackend& storage,
                                    std::uint32_t rank, std::uint64_t upto) {
  RestoreOptions options;
  options.upto = upto;
  return restore_chain(storage, rank, options);
}

Result<RestoredState> restore_chain_serial(storage::StorageBackend& storage,
                                           std::uint32_t rank,
                                           std::uint64_t upto) {
  auto keys = storage.list();
  if (!keys.is_ok()) return keys.status();
  const std::string prefix = "rank" + std::to_string(rank) + "/";
  std::vector<std::string> chain_keys;
  for (const auto& k : *keys) {
    if (k.rfind(prefix, 0) == 0) chain_keys.push_back(k);
  }
  std::sort(chain_keys.begin(), chain_keys.end());
  if (chain_keys.empty()) {
    return not_found("no checkpoints for rank " + std::to_string(rank));
  }

  // Parse everything, then walk backwards to the newest full
  // checkpoint with sequence <= upto.
  std::ptrdiff_t start = -1;
  std::vector<ParsedCheckpoint> parsed_files;
  parsed_files.reserve(chain_keys.size());
  for (const auto& k : chain_keys) {
    auto p = parse(storage, k);
    if (!p.is_ok()) return p.status();
    if (p->header.sequence > upto) continue;
    parsed_files.push_back(std::move(p.value()));
  }
  std::sort(parsed_files.begin(), parsed_files.end(),
            [](const ParsedCheckpoint& a, const ParsedCheckpoint& b) {
              return a.header.sequence < b.header.sequence;
            });
  if (parsed_files.empty()) {
    return not_found("no checkpoint at or before requested sequence");
  }
  for (std::ptrdiff_t i =
           static_cast<std::ptrdiff_t>(parsed_files.size()) - 1;
       i >= 0; --i) {
    if (parsed_files[static_cast<std::size_t>(i)].header.kind ==
        static_cast<std::uint16_t>(Kind::kFull)) {
      start = i;
      break;
    }
  }
  if (start < 0) {
    return corruption("chain has no full checkpoint to seed recovery");
  }

  // Seed with the full checkpoint, then overlay each incremental.
  RestoredState state =
      std::move(parsed_files[static_cast<std::size_t>(start)].state);
  std::uint64_t prev_seq =
      parsed_files[static_cast<std::size_t>(start)].header.sequence;
  for (std::size_t i = static_cast<std::size_t>(start) + 1;
       i < parsed_files.size(); ++i) {
    ParsedCheckpoint& inc = parsed_files[i];
    // A gap in the chain means lost deltas: refuse to fabricate state.
    if (inc.header.parent_sequence != prev_seq) {
      return corruption("chain gap: sequence " +
                        std::to_string(inc.header.sequence) +
                        " expects parent " +
                        std::to_string(inc.header.parent_sequence) +
                        " but " + std::to_string(prev_seq) +
                        " is the newest applied");
    }
    prev_seq = inc.header.sequence;
    // Memory exclusion: drop blocks absent from the newer manifest.
    for (auto it = state.blocks.begin(); it != state.blocks.end();) {
      if (inc.state.blocks.find(it->first) == inc.state.blocks.end()) {
        it = state.blocks.erase(it);
      } else {
        ++it;
      }
    }
    const std::size_t psize = inc.header.page_size;
    for (auto& [id, newer] : inc.state.blocks) {
      auto it = state.blocks.find(id);
      if (it == state.blocks.end()) {
        // New block: starts zero-filled with this file's runs applied.
        state.blocks.emplace(id, std::move(newer));
        continue;
      }
      RestoredBlock& base = it->second;
      if (base.data.size() != newer.data.size()) {
        return corruption("block " + std::to_string(id) +
                          " changed size mid-chain");
      }
      for (const RunHeader& run : inc.runs[id]) {
        std::size_t off = std::size_t{run.first_page} * psize;
        std::size_t len = std::size_t{run.page_count} * psize;
        std::memcpy(base.data.data() + off, newer.data.data() + off, len);
      }
    }
    state.sequence = inc.state.sequence;
    state.virtual_time = inc.state.virtual_time;
  }
  return state;
}

Result<std::map<std::uint32_t, region::BlockId>> materialize(
    const RestoredState& state, region::AddressSpace& space) {
  std::map<std::uint32_t, region::BlockId> mapping;
  for (const auto& [id, block] : state.blocks) {
    auto ref = space.map(block.data.size(), block.kind, block.name);
    if (!ref.is_ok()) return ref.status();
    std::memcpy(ref->mem.data(), block.data.data(), block.data.size());
    mapping[id] = ref->id;
  }
  return mapping;
}

}  // namespace ickpt::checkpoint

// Checkpoint file format.
//
// One checkpoint object per (rank, sequence number):
//
//   FileHeader                       (fixed-size, little-endian)
//   BlockRecord * block_count
//     BlockHeader
//     name bytes                     (name_len)
//     PageRun * run_count
//       RunHeader {first_page, page_count}
//       PageRecord {encoding, payload_len} + payload, per page
//   FileTrailer {crc32, end magic}
//
// A *full* checkpoint records every page of every block; an
// *incremental* checkpoint records only the pages dirty during the
// last timeslice, but its block table always lists every live block —
// that manifest is what lets restore apply memory exclusion (blocks
// that disappear from the manifest are dropped, Section 4.2 of the
// paper) and zero-fill newly appeared blocks.
#pragma once

#include <cstdint>
#include <string>

namespace ickpt::checkpoint {

inline constexpr std::uint32_t kMagic = 0x49434b50;      // "ICKP"
inline constexpr std::uint32_t kEndMagic = 0x50424b43;   // "CKBP"
/// v2: each page payload is preceded by a PageRecord carrying its
/// encoding (plain / zero-elided / word-RLE, see compress.h).
inline constexpr std::uint16_t kFormatVersion = 2;

enum class Kind : std::uint16_t {
  kFull = 1,
  kIncremental = 2,
};

#pragma pack(push, 1)
struct FileHeader {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kFormatVersion;
  std::uint16_t kind = 0;           ///< Kind
  std::uint32_t rank = 0;
  std::uint32_t page_size = 0;
  std::uint64_t sequence = 0;       ///< position in the chain
  std::uint64_t parent_sequence = 0;///< previous element (== sequence for roots)
  std::uint32_t block_count = 0;
  std::uint32_t reserved = 0;
  double virtual_time = 0;          ///< clock at checkpoint time
};

struct BlockHeader {
  std::uint32_t block_id = 0;
  std::uint32_t kind = 0;           ///< region::AreaKind
  std::uint64_t bytes = 0;          ///< current block size
  std::uint32_t name_len = 0;
  std::uint32_t run_count = 0;
};

struct RunHeader {
  std::uint32_t first_page = 0;
  std::uint32_t page_count = 0;
};

/// Precedes each page payload inside a run (format v2).
struct PageRecord {
  std::uint32_t encoding = 0;      ///< PageEncoding
  std::uint32_t payload_len = 0;   ///< bytes following this record
};

struct FileTrailer {
  std::uint32_t crc32 = 0;          ///< over header..last run payload
  std::uint32_t end_magic = kEndMagic;
};
#pragma pack(pop)

static_assert(sizeof(FileHeader) == 48);
static_assert(sizeof(BlockHeader) == 24);
static_assert(sizeof(RunHeader) == 8);
static_assert(sizeof(PageRecord) == 8);
static_assert(sizeof(FileTrailer) == 8);

/// Storage key for rank r, sequence s: "rank<r>/ckpt-<s, zero padded>".
/// Defined here so writer, restorer and GC agree on the layout.
std::string checkpoint_key(std::uint32_t rank, std::uint64_t sequence);

}  // namespace ickpt::checkpoint

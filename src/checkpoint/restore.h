// Rollback recovery: rebuild a rank's data memory from its checkpoint
// chain (the newest full checkpoint plus every later incremental).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "region/address_space.h"
#include "storage/backend.h"

namespace ickpt::checkpoint {

struct RestoredBlock {
  std::uint32_t id = 0;
  std::string name;
  region::AreaKind kind = region::AreaKind::kHeap;
  std::vector<std::byte> data;  ///< page-rounded contents
};

struct RestoredState {
  std::uint64_t sequence = 0;    ///< chain element the state reflects
  double virtual_time = 0;       ///< clock value at that checkpoint
  std::map<std::uint32_t, RestoredBlock> blocks;  ///< by block id
};

/// Parse and validate one checkpoint object (header, structure, CRC).
/// Returns kCorruption on any integrity violation.
Result<RestoredState> read_checkpoint_file(storage::StorageBackend& storage,
                                           const std::string& key);

/// Rebuild rank state from its chain: locate the newest full
/// checkpoint with sequence <= `upto` (UINT64_MAX = newest available),
/// then apply the later incrementals in order.  Blocks that leave the
/// manifest are dropped (memory exclusion); new blocks start
/// zero-filled.
Result<RestoredState> restore_chain(storage::StorageBackend& storage,
                                    std::uint32_t rank,
                                    std::uint64_t upto = UINT64_MAX);

/// Materialize a restored state into a fresh AddressSpace; returns the
/// mapping from checkpointed block ids to new block ids (ascending by
/// old id, preserving the logical block order).
Result<std::map<std::uint32_t, region::BlockId>> materialize(
    const RestoredState& state, region::AddressSpace& space);

}  // namespace ickpt::checkpoint

// Rollback recovery: rebuild a rank's data memory from its checkpoint
// chain (the newest full checkpoint plus every later incremental).
//
// restore_chain runs a two-phase plan-then-decode pipeline:
//   phase 1 (plan)   — scan only headers and manifests (no page
//                      payloads): pick the seed full checkpoint,
//                      validate parent links, and build a newest-wins
//                      page plan mapping each (block, page) to the one
//                      object that last wrote it;
//   phase 2 (decode) — read and decode each surviving page exactly
//                      once, sharded across a thread pool, writing
//                      directly into the final RestoredState.  Pages
//                      superseded by a newer write are CRC-checked but
//                      never decoded, and peak memory stays
//                      O(footprint) instead of O(chain x footprint).
// Shards hash the byte ranges they read; the stitch step folds shard
// CRCs with the manifest-scan CRCs via crc32_combine and compares the
// result against each object's trailer, so integrity coverage equals
// the serial parser's.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "region/address_space.h"
#include "storage/backend.h"

namespace ickpt::checkpoint {

struct RestoredBlock {
  std::uint32_t id = 0;
  std::string name;
  region::AreaKind kind = region::AreaKind::kHeap;
  std::vector<std::byte> data;  ///< page-rounded contents
};

struct RestoredState {
  std::uint64_t sequence = 0;    ///< chain element the state reflects
  double virtual_time = 0;       ///< clock value at that checkpoint
  std::map<std::uint32_t, RestoredBlock> blocks;  ///< by block id
};

struct RestoreOptions {
  /// Restore the newest state with sequence <= upto.
  std::uint64_t upto = UINT64_MAX;
  /// When the tail of the chain is damaged (corrupt object, broken
  /// parent link, missing element), recover to the newest prefix
  /// ending in a valid object instead of failing.  The default is
  /// strict: any damage in the live range is kCorruption.
  bool allow_truncated_tail = false;
  /// Worker threads for page decoding; <= 1 decodes inline on the
  /// calling thread, 0 picks the hardware thread count.  The restored
  /// bytes are identical either way.
  int decode_threads = 0;
  /// Decode page payloads from a zero-copy mapping of the object
  /// (Reader::map_at) instead of read()+memcpy into a shard buffer.
  /// Used automatically when the backend supports it; disable to force
  /// the buffered read path (X9 ablates the two).  Restored bytes and
  /// CRC coverage are identical either way.
  bool map_reads = true;
};

/// Parse and validate one checkpoint object (header, structure, CRC).
/// Returns kCorruption on any integrity violation.
Result<RestoredState> read_checkpoint_file(storage::StorageBackend& storage,
                                           const std::string& key);

/// Rebuild rank state from its chain: locate the newest full
/// checkpoint with sequence <= `options.upto`, then apply the later
/// incrementals in order (plan-then-decode, see above).  Blocks that
/// leave the manifest are dropped (memory exclusion); new blocks start
/// zero-filled.
Result<RestoredState> restore_chain(storage::StorageBackend& storage,
                                    std::uint32_t rank,
                                    const RestoreOptions& options);

/// Convenience overload: strict restore at default parallelism.
Result<RestoredState> restore_chain(storage::StorageBackend& storage,
                                    std::uint32_t rank,
                                    std::uint64_t upto = UINT64_MAX);

/// Reference implementation: the pre-pipeline serial restorer, which
/// fully parses every object and overlays them in memory.  Kept as the
/// byte-identity oracle for tests and bench/ablation_restore; new code
/// should call restore_chain.
Result<RestoredState> restore_chain_serial(storage::StorageBackend& storage,
                                           std::uint32_t rank,
                                           std::uint64_t upto = UINT64_MAX);

/// Materialize a restored state into a fresh AddressSpace; returns the
/// mapping from checkpointed block ids to new block ids (ascending by
/// old id, preserving the logical block order).
Result<std::map<std::uint32_t, region::BlockId>> materialize(
    const RestoredState& state, region::AddressSpace& space);

}  // namespace ickpt::checkpoint

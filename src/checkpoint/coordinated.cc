#include "checkpoint/coordinated.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace ickpt::checkpoint {

namespace {
std::string commit_key(std::uint64_t sequence) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "commit/%012llu",
                static_cast<unsigned long long>(sequence));
  return buf;
}
}  // namespace

Result<std::uint64_t> CoordinatedCheckpointer::checkpoint(
    mpi::Comm& comm, Checkpointer& local,
    const memtrack::DirtySnapshot& snapshot, double virtual_time,
    storage::StorageBackend& storage) {
  // Phase boundary: the caller invokes this between bursts, so the
  // barrier drains any stragglers and no messages are in flight.
  comm.barrier();

  auto meta = local.checkpoint_incremental(snapshot, virtual_time);
  double ok_local = meta.is_ok() ? 1.0 : 0.0;
  double ok_all = comm.allreduce_sum(ok_local);
  const bool committed = ok_all >= static_cast<double>(comm.size());

  std::uint64_t sequence = meta.is_ok() ? meta->sequence : 0;
  if (!committed) {
    // No marker: the previous committed checkpoint remains the
    // recovery point.  (Orphaned local files are garbage-collected by
    // the next truncate_before_last_full.)
    return internal_error("coordinated checkpoint failed on some rank");
  }

  if (comm.rank() == 0) {
    auto writer = storage.create(commit_key(sequence));
    if (!writer.is_ok()) return writer.status();
    std::uint64_t payload[2] = {sequence,
                                static_cast<std::uint64_t>(comm.size())};
    ICKPT_RETURN_IF_ERROR((*writer)->write(
        {reinterpret_cast<const std::byte*>(payload), sizeof payload}));
    ICKPT_RETURN_IF_ERROR((*writer)->close());
  }
  comm.barrier();  // everyone sees the marker before proceeding
  return sequence;
}

Result<std::uint64_t> CoordinatedCheckpointer::last_committed(
    storage::StorageBackend& storage) {
  auto keys = storage.list();
  if (!keys.is_ok()) return keys.status();
  std::uint64_t best = 0;
  bool found = false;
  for (const auto& k : *keys) {
    if (k.rfind("commit/", 0) != 0) continue;
    std::uint64_t seq = 0;
    if (std::sscanf(k.c_str(), "commit/%llu",
                    reinterpret_cast<unsigned long long*>(&seq)) == 1) {
      best = std::max(best, seq);
      found = true;
    }
  }
  if (!found) return not_found("no committed checkpoint");
  return best;
}

}  // namespace ickpt::checkpoint

// Chain inspection and verification (fsck for checkpoint stores).
//
// Walks a storage backend, parses every checkpoint object, validates
// structure and CRC, checks chain invariants (a full root, contiguous
// sequences, consistent parent links, per-rank agreement with the
// commit markers) and reports per-chain statistics.  This is what an
// operator runs before trusting a store for recovery.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/backend.h"

namespace ickpt::checkpoint {

struct ChainElement {
  std::uint64_t sequence = 0;
  std::uint64_t parent_sequence = 0;
  bool full = false;
  std::uint64_t file_bytes = 0;
  std::uint32_t block_count = 0;
  double virtual_time = 0;
  std::string key;
};

struct ChainReport {
  std::uint32_t rank = 0;
  std::vector<ChainElement> elements;   ///< ascending by sequence
  std::vector<std::string> problems;    ///< human-readable findings
  std::uint64_t total_bytes = 0;
  std::uint64_t recoverable_upto = 0;   ///< newest restorable sequence
  bool recoverable = false;

  bool healthy() const noexcept { return problems.empty(); }
};

struct StoreReport {
  std::map<std::uint32_t, ChainReport> chains;  ///< by rank
  std::vector<std::uint64_t> commit_markers;    ///< ascending
  std::vector<std::string> problems;            ///< store-level findings

  bool healthy() const noexcept;
};

/// Inspect one rank's chain.
Result<ChainReport> inspect_chain(storage::StorageBackend& storage,
                                  std::uint32_t rank);

/// Inspect the whole store: every rank chain plus the commit markers'
/// consistency (a committed sequence must be restorable on every rank
/// that has a chain).
Result<StoreReport> inspect_store(storage::StorageBackend& storage);

/// Outcome of `fsck --repair`: what was quarantined and where each
/// rank's chain ends after repair.
struct RepairReport {
  struct Dropped {
    std::string key;             ///< original object key
    std::string quarantine_key;  ///< where the bytes were preserved
    std::string reason;          ///< why it was dropped
  };
  std::vector<Dropped> dropped;
  /// Newest restorable sequence per rank after repair.
  std::map<std::uint32_t, std::uint64_t> recovered_upto;
  /// Damage repair could not fix (e.g. a chain with no usable prefix).
  std::vector<std::string> problems;

  bool clean() const noexcept { return problems.empty(); }
};

/// Repair a damaged store in place: for each rank, find the newest
/// restorable prefix (truncated-tail restore), then move everything
/// past it — corrupt tails, orphans whose chain position cannot be
/// determined, and individually corrupt objects the restore does not
/// need — under "quarantine/<key>" so no bytes are destroyed.  Commit
/// markers that promise a sequence newer than some rank's recovered
/// prefix are quarantined too.  Idempotent: a second run drops
/// nothing.
Result<RepairReport> repair_store(storage::StorageBackend& storage);

}  // namespace ickpt::checkpoint

// Coordinated multi-rank checkpointing.
//
// The paper observes (Section 6.2) that the bulk-synchronous structure
// of scientific codes gives natural global checkpoint points: at phase
// boundaries no messages are in flight, so a barrier-aligned local
// checkpoint on every rank is a consistent global state — no
// Chandy-Lamport marker machinery needed.  A two-phase commit marker
// makes the global checkpoint atomic: a crash between local writes
// and the commit leaves the previous committed sequence intact.
#pragma once

#include <cstdint>

#include "checkpoint/checkpointer.h"
#include "minimpi/comm.h"

namespace ickpt::checkpoint {

class CoordinatedCheckpointer {
 public:
  /// Collective: every rank calls with its own checkpointer and dirty
  /// snapshot.  Ranks barrier, write local checkpoints, agree on
  /// success via allreduce, and rank 0 writes the commit marker.
  /// Returns the committed sequence, or kInternal if any rank failed
  /// (in which case no marker is written and the previous commit
  /// stands).
  static Result<std::uint64_t> checkpoint(
      mpi::Comm& comm, Checkpointer& local,
      const memtrack::DirtySnapshot& snapshot, double virtual_time,
      storage::StorageBackend& storage);

  /// The newest committed global sequence (kNotFound if none).
  static Result<std::uint64_t> last_committed(
      storage::StorageBackend& storage);
};

}  // namespace ickpt::checkpoint

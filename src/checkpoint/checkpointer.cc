#include "checkpoint/checkpointer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>

#include "checkpoint/compress.h"
#include "common/crc32.h"
#include "common/page.h"

namespace ickpt::checkpoint {

std::string checkpoint_key(std::uint32_t rank, std::uint64_t sequence) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "rank%u/ckpt-%012llu", rank,
                static_cast<unsigned long long>(sequence));
  return buf;
}

Checkpointer::Checkpointer(region::AddressSpace& space,
                           storage::StorageBackend& storage,
                           CheckpointerOptions options)
    : space_(space), storage_(storage), options_(options) {}

namespace {

/// Compress a sorted page-index list into contiguous runs.
std::vector<RunHeader> make_runs(const std::vector<std::uint32_t>& pages) {
  std::vector<RunHeader> runs;
  std::size_t i = 0;
  while (i < pages.size()) {
    std::size_t j = i + 1;
    while (j < pages.size() && pages[j] == pages[j - 1] + 1) ++j;
    runs.push_back(RunHeader{pages[i],
                             static_cast<std::uint32_t>(j - i)});
    i = j;
  }
  return runs;
}

/// CRC-tracking write helper.
struct CrcWriter {
  storage::Writer& out;
  Crc32 crc;

  Status write(const void* data, std::size_t len) {
    crc.update(data, len);
    return out.write({static_cast<const std::byte*>(data), len});
  }
};

}  // namespace

Result<CheckpointMeta> Checkpointer::checkpoint_full(double virtual_time) {
  auto meta = write_checkpoint(Kind::kFull, nullptr, virtual_time);
  if (meta.is_ok()) since_full_ = 0;
  return meta;
}

Result<CheckpointMeta> Checkpointer::checkpoint_incremental(
    const memtrack::DirtySnapshot& snapshot, double virtual_time) {
  const bool need_full =
      chain_.empty() ||
      (options_.full_every > 0 && since_full_ >= options_.full_every);
  if (need_full) return checkpoint_full(virtual_time);
  auto meta = write_checkpoint(Kind::kIncremental, &snapshot, virtual_time);
  if (meta.is_ok()) ++since_full_;
  return meta;
}

Result<CheckpointMeta> Checkpointer::write_checkpoint(
    Kind kind, const memtrack::DirtySnapshot* snapshot,
    double virtual_time) {
  const auto blocks = space_.blocks();
  const std::size_t psize = page_size();

  // Index dirty regions by tracker region id.
  std::map<memtrack::RegionId, const memtrack::RegionDirty*> dirty;
  if (snapshot != nullptr) {
    for (const auto& r : snapshot->regions) dirty[r.id] = &r;
  }

  const std::uint64_t seq = next_seq_++;
  const std::string key = checkpoint_key(options_.rank, seq);
  auto writer = storage_.create(key);
  if (!writer.is_ok()) return writer.status();
  CrcWriter w{**writer, {}};

  FileHeader header;
  header.kind = static_cast<std::uint16_t>(kind);
  header.rank = options_.rank;
  header.page_size = static_cast<std::uint32_t>(psize);
  header.sequence = seq;
  header.parent_sequence = chain_.empty() ? seq : chain_.back().sequence;
  header.block_count = static_cast<std::uint32_t>(blocks.size());
  header.virtual_time = virtual_time;
  ICKPT_RETURN_IF_ERROR(w.write(&header, sizeof header));

  std::uint64_t payload_pages = 0;
  std::uint64_t zero_pages = 0;
  std::uint64_t rle_pages = 0;
  for (const auto& block : blocks) {
    std::vector<RunHeader> runs;
    if (kind == Kind::kFull) {
      auto npages =
          static_cast<std::uint32_t>(pages_for(block.bytes));
      if (npages > 0) runs.push_back(RunHeader{0, npages});
    } else if (auto it = dirty.find(block.region); it != dirty.end()) {
      runs = make_runs(it->second->dirty_pages);
    }

    BlockHeader bh;
    bh.block_id = block.id;
    bh.kind = static_cast<std::uint32_t>(block.kind);
    bh.bytes = block.bytes;
    bh.name_len = static_cast<std::uint32_t>(block.name.size());
    bh.run_count = static_cast<std::uint32_t>(runs.size());
    ICKPT_RETURN_IF_ERROR(w.write(&bh, sizeof bh));
    ICKPT_RETURN_IF_ERROR(w.write(block.name.data(), block.name.size()));

    auto span = space_.block_span(block.id);
    if (!span.is_ok()) return span.status();
    const std::size_t block_pages = pages_for(block.bytes);
    std::vector<std::byte> encoded;
    for (const auto& run : runs) {
      if (std::size_t{run.first_page} + run.page_count > block_pages) {
        return internal_error("dirty run exceeds block extent");
      }
      ICKPT_RETURN_IF_ERROR(w.write(&run, sizeof run));
      for (std::uint32_t p = 0; p < run.page_count; ++p) {
        const std::byte* page_data =
            span->data() + (std::size_t{run.first_page} + p) * psize;
        PageRecord rec;
        if (options_.compress) {
          PageEncoding enc = encode_page({page_data, psize}, encoded);
          rec.encoding = static_cast<std::uint32_t>(enc);
          rec.payload_len = static_cast<std::uint32_t>(encoded.size());
          ICKPT_RETURN_IF_ERROR(w.write(&rec, sizeof rec));
          if (!encoded.empty()) {
            ICKPT_RETURN_IF_ERROR(w.write(encoded.data(), encoded.size()));
          }
          if (enc == PageEncoding::kZero) ++zero_pages;
          if (enc == PageEncoding::kRle) ++rle_pages;
        } else {
          rec.encoding = static_cast<std::uint32_t>(PageEncoding::kPlain);
          rec.payload_len = static_cast<std::uint32_t>(psize);
          ICKPT_RETURN_IF_ERROR(w.write(&rec, sizeof rec));
          ICKPT_RETURN_IF_ERROR(w.write(page_data, psize));
        }
      }
      payload_pages += run.page_count;
    }
  }

  FileTrailer trailer;
  trailer.crc32 = w.crc.value();
  ICKPT_RETURN_IF_ERROR(
      (*writer)->write({reinterpret_cast<const std::byte*>(&trailer),
                        sizeof trailer}));
  ICKPT_RETURN_IF_ERROR((*writer)->close());

  CheckpointMeta meta;
  meta.sequence = seq;
  meta.kind = kind;
  meta.key = key;
  meta.payload_pages = payload_pages;
  meta.file_bytes = (*writer)->bytes_written();
  meta.zero_pages = zero_pages;
  meta.rle_pages = rle_pages;
  meta.virtual_time = virtual_time;
  chain_.push_back(meta);
  total_pages_ += payload_pages;
  return meta;
}

Status Checkpointer::truncate_before_last_full() {
  // Find the newest full checkpoint.
  auto it = std::find_if(chain_.rbegin(), chain_.rend(),
                         [](const CheckpointMeta& m) {
                           return m.kind == Kind::kFull;
                         });
  if (it == chain_.rend()) return Status::ok();
  std::size_t keep_from = chain_.size() - 1 -
                          static_cast<std::size_t>(it - chain_.rbegin());
  for (std::size_t i = 0; i < keep_from; ++i) {
    ICKPT_RETURN_IF_ERROR(storage_.remove(chain_[i].key));
  }
  chain_.erase(chain_.begin(),
               chain_.begin() + static_cast<std::ptrdiff_t>(keep_from));
  return Status::ok();
}

}  // namespace ickpt::checkpoint

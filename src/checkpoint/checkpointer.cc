#include "checkpoint/checkpointer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <memory>

#include "checkpoint/compress.h"
#include "common/crc32.h"
#include "common/page.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace ickpt::checkpoint {

namespace {

/// Stage metrics for the encode pipeline.  Handles are resolved once;
/// workers and the calling thread record via relaxed atomics only.
struct CkptMetrics {
  obs::Counter& objects;
  obs::Counter& full;
  obs::Counter& incremental;
  obs::Counter& pages;
  obs::Counter& file_bytes;
  obs::Counter& shards;
  obs::Counter& zero_pages;
  obs::Counter& rle_pages;
  obs::Histogram& plan_ns;
  obs::Histogram& encode_ns;
  obs::Histogram& crc_ns;
  obs::Histogram& write_ns;
  obs::Histogram& encode_stall_ns;
  obs::Histogram& flush_ns;
  std::uint16_t t_plan;         ///< "ckpt.plan" span
  std::uint16_t t_encode_shard; ///< "ckpt.encode_shard" span
  std::uint16_t t_write;        ///< "ckpt.write" span
  std::uint16_t t_flush;        ///< "ckpt.flush" span

  static CkptMetrics& get() {
    auto& r = obs::registry();
    static CkptMetrics m{r.counter("ckpt.objects"),
                         r.counter("ckpt.full"),
                         r.counter("ckpt.incremental"),
                         r.counter("ckpt.pages"),
                         r.counter("ckpt.file_bytes"),
                         r.counter("ckpt.shards"),
                         r.counter("ckpt.zero_pages"),
                         r.counter("ckpt.rle_pages"),
                         r.histogram("ckpt.plan_ns"),
                         r.histogram("ckpt.encode_ns"),
                         r.histogram("ckpt.crc_ns"),
                         r.histogram("ckpt.write_ns"),
                         r.histogram("ckpt.encode_stall_ns"),
                         r.histogram("ckpt.flush_ns"),
                         obs::trace_name("ckpt.plan", obs::TraceCat::kCkpt),
                         obs::trace_name("ckpt.encode_shard",
                                         obs::TraceCat::kCkpt),
                         obs::trace_name("ckpt.write", obs::TraceCat::kCkpt),
                         obs::trace_name("ckpt.flush", obs::TraceCat::kCkpt)};
    return m;
  }
};

}  // namespace

std::string checkpoint_key(std::uint32_t rank, std::uint64_t sequence) {
  // 20 digits covers the full uint64 range, so lexicographic key order
  // matches numeric sequence order (the old 12-digit pad mis-sorted at
  // sequence >= 10^12).  Readers still sort parsed sequences
  // numerically, which also keeps mixed-pad stores restorable.
  char buf[64];
  std::snprintf(buf, sizeof buf, "rank%u/ckpt-%020llu", rank,
                static_cast<unsigned long long>(sequence));
  return buf;
}

Checkpointer::Checkpointer(Validated, region::AddressSpace& space,
                           storage::StorageBackend& storage,
                           CheckpointerOptions options)
    : space_(space), storage_(storage), options_(options) {
  if (options_.encode_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(options_.encode_threads));
  }
  if (options_.async) {
    async_ = std::make_unique<storage::AsyncWriter>(storage_);
  }
}

Checkpointer::Checkpointer(region::AddressSpace& space,
                           storage::StorageBackend& storage,
                           CheckpointerOptions options)
    : Checkpointer(Validated{}, space, storage, [&] {
        options.encode_threads = std::max(1, options.encode_threads);
        return options;
      }()) {}

Result<std::unique_ptr<Checkpointer>> Checkpointer::create(
    region::AddressSpace& space, storage::StorageBackend* storage,
    CheckpointerOptions options) {
  if (storage == nullptr) {
    return invalid_argument("Checkpointer: storage backend must not be null");
  }
  if (options.encode_threads < 1 ||
      options.encode_threads > kMaxEncodeThreads) {
    return invalid_argument(
        "Checkpointer: encode_threads must be in [1, " +
        std::to_string(kMaxEncodeThreads) + "], got " +
        std::to_string(options.encode_threads));
  }
  if (options.full_every > kMaxFullEvery) {
    return invalid_argument(
        "Checkpointer: full_every " + std::to_string(options.full_every) +
        " exceeds " + std::to_string(kMaxFullEvery) +
        " (likely an overflowed or negative value)");
  }
  return std::unique_ptr<Checkpointer>(
      new Checkpointer(Validated{}, space, *storage, options));
}

namespace {

/// Compress a sorted page-index list into contiguous runs.
std::vector<RunHeader> make_runs(const std::vector<std::uint32_t>& pages) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < pages.size(); ++i) {
    if (i == 0 || pages[i] != pages[i - 1] + 1) ++count;
  }
  std::vector<RunHeader> runs;
  runs.reserve(count);
  std::size_t i = 0;
  while (i < pages.size()) {
    std::size_t j = i + 1;
    while (j < pages.size() && pages[j] == pages[j - 1] + 1) ++j;
    runs.push_back(RunHeader{pages[i],
                             static_cast<std::uint32_t>(j - i)});
    i = j;
  }
  return runs;
}

/// CRC-tracking write helper.
struct CrcWriter {
  storage::Writer& out;
  Crc32 crc;

  Status write(const void* data, std::size_t len) {
    crc.update(data, len);
    return out.write({static_cast<const std::byte*>(data), len});
  }

  /// Write a pre-encoded byte range whose finalized CRC is already
  /// known, folding it into the stream CRC in O(log len).
  Status write_hashed(std::span<const std::byte> data, std::uint32_t data_crc) {
    crc.combine(data_crc, data.size());
    return out.write(data);
  }
};

/// Writer that accumulates the object in memory (async mode: the
/// buffer is handed to the AsyncWriter once complete).
class VectorWriter final : public storage::Writer {
 public:
  Status write(std::span<const std::byte> data) override {
    buf_.insert(buf_.end(), data.begin(), data.end());
    return Status::ok();
  }
  Status close() override { return Status::ok(); }
  std::uint64_t bytes_written() const noexcept override {
    return buf_.size();
  }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// One unit of parallel encoding: a contiguous page range of one run.
/// A worker fills `buf` with exactly the bytes the serial writer would
/// emit for those pages (PageRecord + payload each) plus their CRC, so
/// the main thread stitches shards into a byte-identical file.
struct EncodeShard {
  const std::byte* base = nullptr;  ///< first page's data
  std::uint32_t page_count = 0;

  std::vector<std::byte> buf;
  std::uint32_t crc = 0;  ///< finalized CRC of buf
  std::uint32_t zero_pages = 0;
  std::uint32_t rle_pages = 0;
};

void append(std::vector<std::byte>& buf, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::byte*>(data);
  buf.insert(buf.end(), p, p + len);
}

void encode_shard(EncodeShard& shard, std::size_t psize, bool compress) {
  auto& metrics = CkptMetrics::get();
  obs::ScopedTimer encode_timer(metrics.encode_ns);
  obs::TraceSpan span(metrics.t_encode_shard, shard.page_count);
  shard.buf.reserve(shard.page_count * (sizeof(PageRecord) + psize));
  std::vector<std::byte> payload;
  for (std::uint32_t p = 0; p < shard.page_count; ++p) {
    const std::byte* page_data = shard.base + std::size_t{p} * psize;
    PageRecord rec;
    if (compress) {
      PageEncoding enc = encode_page({page_data, psize}, payload);
      rec.encoding = static_cast<std::uint32_t>(enc);
      rec.payload_len = static_cast<std::uint32_t>(payload.size());
      append(shard.buf, &rec, sizeof rec);
      if (!payload.empty()) {
        append(shard.buf, payload.data(), payload.size());
      }
      if (enc == PageEncoding::kZero) ++shard.zero_pages;
      if (enc == PageEncoding::kRle) ++shard.rle_pages;
    } else {
      rec.encoding = static_cast<std::uint32_t>(PageEncoding::kPlain);
      rec.payload_len = static_cast<std::uint32_t>(psize);
      append(shard.buf, &rec, sizeof rec);
      append(shard.buf, page_data, psize);
    }
  }
  {
    obs::ScopedTimer crc_timer(metrics.crc_ns);
    shard.crc = crc32(shard.buf);
  }
  metrics.shards.inc();
}

/// Shard granularity: enough shards to balance `threads` workers,
/// large enough to amortize dispatch, bounded so one shard's buffer
/// stays a few MB.
std::uint32_t pick_shard_pages(std::uint64_t total_pages, int threads) {
  const std::uint64_t target =
      total_pages / (static_cast<std::uint64_t>(threads) * 8) + 1;
  return static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
      target, 16, 1024));
}

}  // namespace

Result<CheckpointMeta> Checkpointer::checkpoint_full(double virtual_time) {
  auto meta = write_checkpoint(Kind::kFull, nullptr, virtual_time);
  if (meta.is_ok()) since_full_ = 0;
  return meta;
}

Result<CheckpointMeta> Checkpointer::checkpoint_incremental(
    const memtrack::DirtySnapshot& snapshot, double virtual_time) {
  const bool need_full =
      chain_.empty() ||
      (options_.full_every > 0 && since_full_ >= options_.full_every);
  if (need_full) return checkpoint_full(virtual_time);
  auto meta = write_checkpoint(Kind::kIncremental, &snapshot, virtual_time);
  if (meta.is_ok()) ++since_full_;
  return meta;
}

Result<CheckpointMeta> Checkpointer::write_checkpoint(
    Kind kind, const memtrack::DirtySnapshot* snapshot,
    double virtual_time) {
  const std::uint64_t seq = next_seq_++;
  const std::string key = checkpoint_key(options_.rank, seq);
  auto meta = write_object(kind, snapshot, virtual_time, seq, key);
  if (!meta.is_ok()) {
    // A mid-write failure must not leak a partially-written object or
    // burn the sequence number: remove whatever the backend kept (a
    // no-op for backends whose writers abort cleanly) and roll the
    // sequence back so the next attempt reuses it.
    (void)storage_.remove(key);
    next_seq_ = seq;
    return meta;
  }
  chain_.push_back(*meta);
  total_pages_ += meta->payload_pages;
  return meta;
}

Result<CheckpointMeta> Checkpointer::write_object(
    Kind kind, const memtrack::DirtySnapshot* snapshot, double virtual_time,
    std::uint64_t seq, const std::string& key) {
  auto& metrics = CkptMetrics::get();
  obs::ScopedTimer plan_timer(metrics.plan_ns);
  obs::TraceSpan plan_span(metrics.t_plan, seq);
  const auto blocks = space_.blocks();
  const std::size_t psize = page_size();

  // Index dirty regions by tracker region id.
  std::map<memtrack::RegionId, const memtrack::RegionDirty*> dirty;
  if (snapshot != nullptr) {
    for (const auto& r : snapshot->regions) dirty[r.id] = &r;
  }

  // ---- Plan: per-block runs, validated extents, and the shard list
  // in file order.  All bounds are checked before any worker starts.
  struct BlockPlan {
    std::vector<RunHeader> runs;
    const std::byte* data = nullptr;
  };
  std::vector<BlockPlan> plans;
  plans.reserve(blocks.size());
  std::uint64_t total_pages = 0;
  for (const auto& block : blocks) {
    BlockPlan plan;
    if (kind == Kind::kFull) {
      auto npages = static_cast<std::uint32_t>(pages_for(block.bytes));
      if (npages > 0) plan.runs.push_back(RunHeader{0, npages});
    } else if (auto it = dirty.find(block.region); it != dirty.end()) {
      plan.runs = make_runs(it->second->dirty_pages);
    }
    auto span = space_.block_span(block.id);
    if (!span.is_ok()) return span.status();
    plan.data = span->data();
    const std::size_t block_pages = pages_for(block.bytes);
    for (const auto& run : plan.runs) {
      if (std::size_t{run.first_page} + run.page_count > block_pages) {
        return internal_error("dirty run exceeds block extent");
      }
      total_pages += run.page_count;
    }
    plans.push_back(std::move(plan));
  }

  const int threads = std::max(1, options_.encode_threads);
  const std::uint32_t shard_pages = pick_shard_pages(total_pages, threads);

  // Chunk every run into shards.  The same deterministic chunking is
  // replayed by the stitch loop below, so no index bookkeeping needed.
  std::vector<EncodeShard> shards;
  shards.reserve(static_cast<std::size_t>(total_pages / shard_pages) +
                 plans.size());
  for (const auto& plan : plans) {
    for (const auto& run : plan.runs) {
      for (std::uint32_t off = 0; off < run.page_count; off += shard_pages) {
        EncodeShard s;
        s.base = plan.data + (std::size_t{run.first_page} + off) * psize;
        s.page_count = std::min(shard_pages, run.page_count - off);
        shards.push_back(std::move(s));
      }
    }
  }

  plan_timer.stop();
  plan_span.end(total_pages, shards.size());
  obs::ScopedTimer write_timer(metrics.write_ns);
  obs::TraceSpan write_span(metrics.t_write, seq, total_pages);

  // Workers encode shards out of order; the stitcher consumes them in
  // file order as each completes, so writing overlaps encoding.  The
  // drain guard keeps `shards` alive past any early (error) return
  // until every in-flight worker task has finished.
  std::vector<std::future<void>> encoded;
  struct PoolDrain {
    ThreadPool* pool;
    ~PoolDrain() {
      if (pool != nullptr) pool->wait_idle();
    }
  } drain{nullptr};
  if (pool_ != nullptr && threads > 1 && shards.size() > 1) {
    drain.pool = pool_.get();
    encoded.reserve(shards.size());
    const bool compress = options_.compress;
    for (auto& s : shards) {
      auto promise = std::make_shared<std::promise<void>>();
      encoded.push_back(promise->get_future());
      pool_->submit([&s, psize, compress, promise] {
        encode_shard(s, psize, compress);
        promise->set_value();
      });
    }
  }

  // ---- Sink: the backend directly (sync), or an in-memory buffer
  // that is submitted to the background writer once complete (async).
  std::unique_ptr<storage::Writer> sink;
  VectorWriter* vec = nullptr;
  if (async_ != nullptr) {
    auto v = std::make_unique<VectorWriter>();
    vec = v.get();
    sink = std::move(v);
  } else {
    auto writer = storage_.create(key);
    if (!writer.is_ok()) return writer.status();
    sink = std::move(*writer);
  }
  CrcWriter w{*sink, {}};

  FileHeader header;
  header.kind = static_cast<std::uint16_t>(kind);
  header.rank = options_.rank;
  header.page_size = static_cast<std::uint32_t>(psize);
  header.sequence = seq;
  header.parent_sequence = chain_.empty() ? seq : chain_.back().sequence;
  header.block_count = static_cast<std::uint32_t>(blocks.size());
  header.virtual_time = virtual_time;
  ICKPT_RETURN_IF_ERROR(w.write(&header, sizeof header));

  // ---- Stitch: headers from this thread, page payloads from the
  // shard buffers, byte-identical to the serial writer's output.
  std::uint64_t payload_pages = 0;
  std::uint64_t zero_pages = 0;
  std::uint64_t rle_pages = 0;
  std::size_t shard_idx = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const auto& block = blocks[b];
    const auto& plan = plans[b];

    BlockHeader bh;
    bh.block_id = block.id;
    bh.kind = static_cast<std::uint32_t>(block.kind);
    bh.bytes = block.bytes;
    bh.name_len = static_cast<std::uint32_t>(block.name.size());
    bh.run_count = static_cast<std::uint32_t>(plan.runs.size());
    ICKPT_RETURN_IF_ERROR(w.write(&bh, sizeof bh));
    ICKPT_RETURN_IF_ERROR(w.write(block.name.data(), block.name.size()));

    for (const auto& run : plan.runs) {
      ICKPT_RETURN_IF_ERROR(w.write(&run, sizeof run));
      for (std::uint32_t off = 0; off < run.page_count; off += shard_pages) {
        EncodeShard& s = shards[shard_idx];
        if (shard_idx < encoded.size()) {
          auto& done = encoded[shard_idx];
          if (done.wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready) {
            // The stitcher outran the workers: record the bubble.
            obs::StallClock stall;
            done.wait();
            if (obs::enabled()) {
              metrics.encode_stall_ns.record(stall.elapsed_ns());
            }
          }
        } else {
          encode_shard(s, psize, options_.compress);
        }
        ++shard_idx;
        ICKPT_RETURN_IF_ERROR(w.write_hashed(s.buf, s.crc));
        zero_pages += s.zero_pages;
        rle_pages += s.rle_pages;
        std::vector<std::byte>().swap(s.buf);  // bound peak memory
      }
      payload_pages += run.page_count;
    }
  }

  FileTrailer trailer;
  trailer.crc32 = w.crc.value();
  ICKPT_RETURN_IF_ERROR(
      sink->write({reinterpret_cast<const std::byte*>(&trailer),
                   sizeof trailer}));
  ICKPT_RETURN_IF_ERROR(sink->close());

  CheckpointMeta meta;
  meta.sequence = seq;
  meta.kind = kind;
  meta.key = key;
  meta.payload_pages = payload_pages;
  meta.file_bytes = sink->bytes_written();
  meta.zero_pages = zero_pages;
  meta.rle_pages = rle_pages;
  meta.virtual_time = virtual_time;

  if (vec != nullptr) {
    ICKPT_RETURN_IF_ERROR(async_->submit(key, vec->take()));
  }

  metrics.objects.inc();
  (kind == Kind::kFull ? metrics.full : metrics.incremental).inc();
  metrics.pages.inc(payload_pages);
  metrics.file_bytes.inc(meta.file_bytes);
  metrics.zero_pages.inc(zero_pages);
  metrics.rle_pages.inc(rle_pages);
  return meta;
}

Status Checkpointer::flush() {
  if (async_ == nullptr) return Status::ok();
  auto& metrics = CkptMetrics::get();
  obs::ScopedTimer timer(metrics.flush_ns);
  obs::TraceSpan span(metrics.t_flush);
  return async_->flush();
}

Status Checkpointer::truncate_before_last_full() {
  // Find the newest full checkpoint.
  auto it = std::find_if(chain_.rbegin(), chain_.rend(),
                         [](const CheckpointMeta& m) {
                           return m.kind == Kind::kFull;
                         });
  if (it == chain_.rend()) return Status::ok();
  // Removal races with queued writes in async mode; drain first.
  ICKPT_RETURN_IF_ERROR(flush());
  std::size_t keep_from = chain_.size() - 1 -
                          static_cast<std::size_t>(it - chain_.rbegin());
  for (std::size_t i = 0; i < keep_from; ++i) {
    ICKPT_RETURN_IF_ERROR(storage_.remove(chain_[i].key));
  }
  chain_.erase(chain_.begin(),
               chain_.begin() + static_cast<std::ptrdiff_t>(keep_from));
  return Status::ok();
}

}  // namespace ickpt::checkpoint

// BurstAwareScheduler: online detection of the cheap moments to
// checkpoint.
//
// The paper (§1, §6.2): scientific codes "alternate between processing
// and communication bursts that can automatically be identified at run
// time, for example using global operators such as the STORM
// mechanisms. This behavior can be exploited to implement efficient
// coordinated checkpoints", and "it may not be convenient to
// checkpoint during a processing burst".
//
// The scheduler watches the per-slice IWS stream and fires when the
// write activity falls well below its recent level (the gap between
// processing bursts), subject to a minimum and maximum checkpoint
// interval.  It is deliberately simple and fully online: one EWMA and
// two thresholds — the kind of decision logic a STORM-like global
// operator could evaluate across a whole machine.
#pragma once

#include <cstdint>

#include "trace/sample.h"

namespace ickpt::checkpoint {

class BurstAwareScheduler {
 public:
  struct Options {
    /// Fire when slice IWS < quiet_fraction * EWMA(IWS).
    double quiet_fraction = 0.35;
    /// EWMA smoothing factor per slice.
    double ewma_alpha = 0.2;
    /// Never fire more often than this (seconds).
    double min_interval = 2.0;
    /// Always fire at least this often, burst or not (bounds the
    /// rollback window even for codes with no quiet gaps).
    double max_interval = 60.0;
    /// Slices to observe before the EWMA is trusted.
    std::uint64_t warmup_slices = 3;
  };

  BurstAwareScheduler() : BurstAwareScheduler(default_options()) {}
  explicit BurstAwareScheduler(Options options);

  static Options default_options() { return Options{}; }

  /// Feed one timeslice sample; returns true if a checkpoint should be
  /// taken at this boundary.
  bool observe(const trace::Sample& sample);

  double ewma_iws() const noexcept { return ewma_; }
  std::uint64_t decisions() const noexcept { return decisions_; }
  std::uint64_t forced() const noexcept { return forced_; }
  double last_fire_time() const noexcept { return last_fire_; }

 private:
  Options options_;
  double ewma_ = 0;
  std::uint64_t seen_ = 0;
  double anchor_ = 0;  ///< t_end of the first observed sample
  double last_fire_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t forced_ = 0;
  bool has_fired_ = false;
};

}  // namespace ickpt::checkpoint

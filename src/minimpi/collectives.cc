#include "minimpi/collectives.h"

#include <cstring>

namespace ickpt::mpi {

namespace {
// Reserved internal tag space (application tags are >= 0; bcast in
// comm.cc uses -1000).  Each collective call gets a distinct tag via
// the per-rank collective sequence counter — without it, back-to-back
// any-source collectives (allgather/alltoall) could steal messages
// from a neighbouring round, since a fast rank's round-k+1 sends can
// arrive before a slow rank's round-k sends.
enum class Op : int {
  kGather = 0,
  kScatter = 1,
  kAllgather = 2,
  kAlltoall = 3,
  kVecReduce = 4,
};
constexpr int kOps = 8;

int collective_tag(Comm& comm, Op op) {
  return -(3000 + comm.next_collective_seq() * kOps +
           static_cast<int>(op));
}
}  // namespace

Status gather(Comm& comm, int root, std::span<const std::byte> chunk,
              std::span<std::byte> out) {
  const auto nprocs = static_cast<std::size_t>(comm.size());
  const int tag = collective_tag(comm, Op::kGather);
  if (comm.rank() == root) {
    if (out.size() < nprocs * chunk.size()) {
      return invalid_argument("gather: output buffer too small");
    }
    std::memcpy(out.data() +
                    static_cast<std::size_t>(root) * chunk.size(),
                chunk.data(), chunk.size());
    for (int r = 0; r < comm.size(); ++r) {
      if (r == root) continue;
      auto piece = out.subspan(
          static_cast<std::size_t>(r) * chunk.size(), chunk.size());
      auto info = comm.recv(r, tag, piece);
      if (!info.is_ok()) return info.status();
      if (info->bytes != chunk.size()) {
        return corruption("gather: chunk size mismatch");
      }
    }
  } else {
    comm.send(root, tag, chunk);
  }
  return Status::ok();
}

Status scatter(Comm& comm, int root, std::span<const std::byte> data,
               std::span<std::byte> out) {
  const auto nprocs = static_cast<std::size_t>(comm.size());
  const std::size_t chunk = out.size();
  const int tag = collective_tag(comm, Op::kScatter);
  if (comm.rank() == root) {
    if (data.size() < nprocs * chunk) {
      return invalid_argument("scatter: input buffer too small");
    }
    for (int r = 0; r < comm.size(); ++r) {
      auto piece =
          data.subspan(static_cast<std::size_t>(r) * chunk, chunk);
      if (r == root) {
        std::memcpy(out.data(), piece.data(), chunk);
      } else {
        comm.send(r, tag, piece);
      }
    }
  } else {
    auto info = comm.recv(root, tag, out);
    if (!info.is_ok()) return info.status();
    if (info->bytes != chunk) {
      return corruption("scatter: chunk size mismatch");
    }
  }
  return Status::ok();
}

Status allgather(Comm& comm, std::span<const std::byte> chunk,
                 std::span<std::byte> out) {
  const auto nprocs = static_cast<std::size_t>(comm.size());
  const int tag = collective_tag(comm, Op::kAllgather);
  if (out.size() < nprocs * chunk.size()) {
    return invalid_argument("allgather: output buffer too small");
  }
  // Buffered sends: everyone posts to everyone, then drains.
  for (int r = 0; r < comm.size(); ++r) {
    if (r == comm.rank()) continue;
    comm.send(r, tag, chunk);
  }
  std::memcpy(out.data() +
                  static_cast<std::size_t>(comm.rank()) * chunk.size(),
              chunk.data(), chunk.size());
  for (int i = 1; i < comm.size(); ++i) {
    // Accept from any source; place by the reported source rank.
    std::vector<std::byte> tmp(chunk.size());
    auto info = comm.recv(kAnySource, tag, tmp);
    if (!info.is_ok()) return info.status();
    if (info->bytes != chunk.size()) {
      return corruption("allgather: chunk size mismatch");
    }
    std::memcpy(out.data() +
                    static_cast<std::size_t>(info->source) * chunk.size(),
                tmp.data(), chunk.size());
  }
  return Status::ok();
}

Status alltoall(Comm& comm, std::span<const std::byte> send,
                std::span<std::byte> out, std::size_t chunk) {
  const auto nprocs = static_cast<std::size_t>(comm.size());
  const int tag = collective_tag(comm, Op::kAlltoall);
  if (send.size() < nprocs * chunk) {
    return invalid_argument("alltoall: send buffer too small");
  }
  if (out.size() < nprocs * chunk) {
    return invalid_argument("alltoall: output buffer too small");
  }
  for (int r = 0; r < comm.size(); ++r) {
    auto piece = send.subspan(static_cast<std::size_t>(r) * chunk, chunk);
    if (r == comm.rank()) {
      std::memcpy(out.data() + static_cast<std::size_t>(r) * chunk,
                  piece.data(), chunk);
    } else {
      comm.send(r, tag, piece);
    }
  }
  for (int i = 1; i < comm.size(); ++i) {
    std::vector<std::byte> tmp(chunk);
    auto info = comm.recv(kAnySource, tag, tmp);
    if (!info.is_ok()) return info.status();
    if (info->bytes != chunk) {
      return corruption("alltoall: chunk size mismatch");
    }
    std::memcpy(out.data() +
                    static_cast<std::size_t>(info->source) * chunk,
                tmp.data(), chunk);
  }
  return Status::ok();
}

Status allreduce_sum_vec(Comm& comm, std::span<double> values) {
  // Gather-to-0, reduce, broadcast: adequate for the rank counts the
  // paper studies (<= 64) and trivially correct.
  const auto nprocs = static_cast<std::size_t>(comm.size());
  const int tag = collective_tag(comm, Op::kVecReduce);
  const std::size_t bytes = values.size() * sizeof(double);
  auto as_bytes = std::span<std::byte>(
      reinterpret_cast<std::byte*>(values.data()), bytes);
  if (comm.rank() == 0) {
    std::vector<double> incoming(values.size());
    auto in_bytes = std::span<std::byte>(
        reinterpret_cast<std::byte*>(incoming.data()), bytes);
    for (int r = 1; r < comm.size(); ++r) {
      auto info = comm.recv(kAnySource, tag, in_bytes);
      if (!info.is_ok()) return info.status();
      if (info->bytes != bytes) {
        return corruption("allreduce_sum_vec: length mismatch");
      }
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] += incoming[i];
      }
    }
  } else {
    comm.send(0, tag, as_bytes);
  }
  comm.bcast(0, as_bytes);
  (void)nprocs;
  return Status::ok();
}

}  // namespace ickpt::mpi

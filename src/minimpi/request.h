// Nonblocking point-to-point operations (MPI_Isend/Irecv style).
//
// isend is trivially asynchronous over minimpi's buffered channels; a
// RecvRequest parks a background matcher so computation can overlap
// the wait — which is how the paper's codes hide wavefront and halo
// latency inside the processing bursts.
#pragma once

#include <future>
#include <memory>

#include "minimpi/comm.h"

namespace ickpt::mpi {

/// Handle for a pending receive.  wait() blocks until the matching
/// message arrives and is copied into the buffer supplied at post
/// time; test() polls.  The buffer must stay alive until wait()/test()
/// returns true, and every request must be completed before its
/// communicator's world ends.  If the world aborts while the receive
/// is pending, wait() rethrows the abort.  Not copyable.
class RecvRequest {
 public:
  RecvRequest() = default;
  RecvRequest(RecvRequest&&) = default;
  RecvRequest& operator=(RecvRequest&&) = default;

  /// Blocks until completion; returns the receive metadata.
  Result<RecvInfo> wait();

  /// True once the message has arrived (wait() then returns
  /// immediately).
  bool test();

  bool valid() const noexcept { return future_.valid() || done_; }

 private:
  friend RecvRequest irecv(Comm& comm, int src, int tag,
                           std::span<std::byte> out);
  std::future<Result<RecvInfo>> future_;
  bool done_ = false;
  Result<RecvInfo> result_ = Status();  // populated once done
};

/// Post a nonblocking receive into `out`.
RecvRequest irecv(Comm& comm, int src, int tag, std::span<std::byte> out);

/// Nonblocking send.  minimpi sends are buffered (they never block on
/// the receiver), so isend completes immediately; provided for
/// API parity with the blocking call sites it replaces.
void isend(Comm& comm, int dst, int tag, std::span<const std::byte> data);

/// Wait for a set of receive requests; returns the first error.
Status wait_all(std::span<RecvRequest> requests);

}  // namespace ickpt::mpi

#include "minimpi/comm.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>

namespace ickpt::mpi {

namespace detail {

struct Message {
  int src;
  int tag;
  std::vector<std::byte> payload;
};

struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> queue;
};

struct World {
  explicit World(int n)
      : nprocs(n), mailboxes(static_cast<std::size_t>(n)),
        recv_bytes(static_cast<std::size_t>(n)),
        send_bytes(static_cast<std::size_t>(n)) {
    for (auto& m : mailboxes) m = std::make_unique<Mailbox>();
    for (auto& c : recv_bytes) c.store(0);
    for (auto& c : send_bytes) c.store(0);
  }

  int nprocs;
  std::atomic<bool> aborted{false};
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::vector<std::atomic<std::uint64_t>> recv_bytes;
  std::vector<std::atomic<std::uint64_t>> send_bytes;

  // Central barrier (sense-reversing via generation counter).
  std::mutex barrier_mu;
  std::condition_variable barrier_cv;
  int barrier_waiting = 0;
  std::uint64_t barrier_generation = 0;

  // Scratch for allreduce (guarded by the barrier protocol around it).
  std::mutex reduce_mu;
  std::condition_variable reduce_cv;
  int reduce_arrived = 0;
  int reduce_departed = 0;
  std::uint64_t reduce_generation = 0;
  double reduce_acc_d = 0.0;
  std::uint64_t reduce_acc_u = 0;

  bool matches(const Message& m, int src, int tag) const {
    return (src == kAnySource || m.src == src) &&
           (tag == kAnyTag || m.tag == tag);
  }
};

}  // namespace detail

using detail::Message;
using detail::World;

int Comm::size() const noexcept { return world_->nprocs; }

std::uint64_t Comm::bytes_received() const noexcept {
  return world_->recv_bytes[static_cast<std::size_t>(rank_)].load(
      std::memory_order_relaxed);
}

std::uint64_t Comm::bytes_sent() const noexcept {
  return world_->send_bytes[static_cast<std::size_t>(rank_)].load(
      std::memory_order_relaxed);
}

void Comm::send(int dst, int tag, std::span<const std::byte> data) {
  if (dst < 0 || dst >= world_->nprocs) {
    throw std::out_of_range("minimpi send: bad destination rank");
  }
  auto& box = *world_->mailboxes[static_cast<std::size_t>(dst)];
  Message m{rank_, tag, std::vector<std::byte>(data.begin(), data.end())};
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(m));
  }
  box.cv.notify_all();
  world_->send_bytes[static_cast<std::size_t>(rank_)].fetch_add(
      data.size(), std::memory_order_relaxed);
}

namespace {

Result<RecvInfo> pop_matching(World& world, int self, int src, int tag,
                              std::span<std::byte> out, bool blocking) {
  auto& box = *world.mailboxes[static_cast<std::size_t>(self)];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [&](const Message& m) {
                             return world.matches(m, src, tag);
                           });
    if (it != box.queue.end()) {
      if (it->payload.size() > out.size()) {
        return Status(ErrorCode::kOutOfRange,
                      "recv: message larger than buffer");
      }
      RecvInfo info{it->src, it->tag, it->payload.size()};
      std::memcpy(out.data(), it->payload.data(), it->payload.size());
      box.queue.erase(it);
      world.recv_bytes[static_cast<std::size_t>(self)].fetch_add(
          info.bytes, std::memory_order_relaxed);
      return info;
    }
    if (!blocking) return not_found("try_recv: no matching message");
    if (world.aborted.load(std::memory_order_relaxed)) {
      throw std::runtime_error("minimpi: world aborted while in recv");
    }
    box.cv.wait(lock);
  }
}

}  // namespace

Result<RecvInfo> Comm::recv(int src, int tag, std::span<std::byte> out) {
  return pop_matching(*world_, rank_, src, tag, out, /*blocking=*/true);
}

Result<RecvInfo> Comm::try_recv(int src, int tag, std::span<std::byte> out) {
  return pop_matching(*world_, rank_, src, tag, out, /*blocking=*/false);
}

Result<RecvInfo> Comm::sendrecv(int partner, int tag,
                                std::span<const std::byte> to_send,
                                std::span<std::byte> out) {
  send(partner, tag, to_send);  // buffered: cannot deadlock
  return recv(partner, tag, out);
}

void Comm::barrier() {
  std::unique_lock<std::mutex> lock(world_->barrier_mu);
  std::uint64_t gen = world_->barrier_generation;
  if (++world_->barrier_waiting == world_->nprocs) {
    world_->barrier_waiting = 0;
    ++world_->barrier_generation;
    world_->barrier_cv.notify_all();
    return;
  }
  world_->barrier_cv.wait(lock, [&] {
    return world_->barrier_generation != gen ||
           world_->aborted.load(std::memory_order_relaxed);
  });
  if (world_->barrier_generation == gen) {
    throw std::runtime_error("minimpi: world aborted while in barrier");
  }
}

void Comm::bcast(int root, std::span<std::byte> data) {
  constexpr int kBcastTag = -1000;  // internal tag space
  if (rank_ == root) {
    for (int r = 0; r < world_->nprocs; ++r) {
      if (r != root) send(r, kBcastTag, data);
    }
  } else {
    auto info = recv(root, kBcastTag, data);
    if (!info.is_ok()) {
      throw std::runtime_error("bcast recv failed: " +
                               info.status().to_string());
    }
  }
}

namespace {

/// Reduction round shared by the typed allreduces.
///
/// Protocol: an entry gate keeps new rounds out until the previous one
/// fully drains; each rank folds its value into the accumulator; the
/// last arrival publishes the result and bumps the generation; every
/// rank then reads the published result and the last departure resets
/// the round.  `fold(first)` merges this rank's value (first==true on
/// the round's first fold); `read()` extracts the published result.
template <typename Fold, typename Read>
auto allreduce_impl(World& world, Fold fold, Read read) {
  std::unique_lock<std::mutex> lock(world.reduce_mu);
  auto aborted = [&] {
    return world.aborted.load(std::memory_order_relaxed);
  };
  // Entry gate: the previous round holds arrived == nprocs until its
  // last reader resets it.
  world.reduce_cv.wait(lock, [&] {
    return world.reduce_arrived < world.nprocs || aborted();
  });
  if (aborted()) {
    throw std::runtime_error("minimpi: world aborted while in allreduce");
  }
  const std::uint64_t gen = world.reduce_generation;
  fold(world.reduce_arrived == 0);
  if (++world.reduce_arrived == world.nprocs) {
    ++world.reduce_generation;  // publishes the accumulator
    world.reduce_cv.notify_all();
  } else {
    world.reduce_cv.wait(lock, [&] {
      return world.reduce_generation != gen || aborted();
    });
    if (world.reduce_generation == gen) {
      throw std::runtime_error("minimpi: world aborted while in allreduce");
    }
  }
  auto result = read();
  if (++world.reduce_departed == world.nprocs) {
    world.reduce_arrived = 0;
    world.reduce_departed = 0;
    world.reduce_cv.notify_all();  // opens the entry gate
  }
  return result;
}

}  // namespace

double Comm::allreduce_sum(double value) {
  World& w = *world_;
  return allreduce_impl(
      w,
      [&](bool first) {
        if (first) w.reduce_acc_d = 0.0;
        w.reduce_acc_d += value;
      },
      [&] { return w.reduce_acc_d; });
}

double Comm::allreduce_max(double value) {
  World& w = *world_;
  return allreduce_impl(
      w,
      [&](bool first) {
        if (first) {
          w.reduce_acc_d = value;
        } else {
          w.reduce_acc_d = std::max(w.reduce_acc_d, value);
        }
      },
      [&] { return w.reduce_acc_d; });
}

std::uint64_t Comm::allreduce_sum_u64(std::uint64_t value) {
  World& w = *world_;
  return allreduce_impl(
      w,
      [&](bool first) {
        if (first) w.reduce_acc_u = 0;
        w.reduce_acc_u += value;
      },
      [&] { return w.reduce_acc_u; });
}

void Runtime::run(int nprocs, const std::function<void(Comm&)>& fn) {
  if (nprocs <= 0) throw std::invalid_argument("Runtime::run: nprocs <= 0");
  World world(nprocs);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < nprocs; ++r) {
    threads.emplace_back([&world, &fn, &err_mu, &first_error, r] {
      Comm comm(&world, r);
      try {
        fn(comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        // Wake everyone so blocked ranks can't hang forever once a
        // peer has died; their wait loops observe `aborted` and throw.
        world.aborted.store(true, std::memory_order_relaxed);
        for (auto& box : world.mailboxes) {
          std::lock_guard<std::mutex> box_lock(box->mu);
          box->cv.notify_all();
        }
        {
          std::lock_guard<std::mutex> lock(world.barrier_mu);
          world.barrier_cv.notify_all();
        }
        {
          std::lock_guard<std::mutex> lock(world.reduce_mu);
          world.reduce_cv.notify_all();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ickpt::mpi

// minimpi: an in-process message-passing runtime.
//
// Substitutes for the paper's MPI-over-QsNet substrate: ranks are
// threads inside one process, point-to-point messages are copied
// through per-rank mailboxes, and the collectives the proxy kernels
// need (barrier, bcast, reduce, allreduce, alltoall) are built on top.
//
// Per-rank traffic counters expose "data received per timeslice"
// (paper Figure 1b) to the sampler.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.h"

namespace ickpt::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Completed-receive metadata.
struct RecvInfo {
  int source = -1;
  int tag = -1;
  std::size_t bytes = 0;
};

namespace detail {
struct World;
}

/// Communicator bound to one rank.  All operations are blocking and
/// must be called from that rank's thread only.
class Comm {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Copy `data` into dst's mailbox.  Buffered send: never blocks on
  /// the receiver.
  void send(int dst, int tag, std::span<const std::byte> data);

  /// Block until a message matching (src, tag) arrives; copy at most
  /// out.size() bytes.  kAnySource / kAnyTag act as wildcards.
  /// Fails with kOutOfRange if the message is larger than `out`.
  Result<RecvInfo> recv(int src, int tag, std::span<std::byte> out);

  /// Non-blocking variant; kNotFound when no matching message queued.
  Result<RecvInfo> try_recv(int src, int tag, std::span<std::byte> out);

  /// Simultaneous exchange with a partner (no deadlock regardless of
  /// ordering, like MPI_Sendrecv).
  Result<RecvInfo> sendrecv(int partner, int tag,
                            std::span<const std::byte> to_send,
                            std::span<std::byte> out);

  /// Collectives over all ranks.
  void barrier();
  void bcast(int root, std::span<std::byte> data);
  double allreduce_sum(double value);
  double allreduce_max(double value);
  std::uint64_t allreduce_sum_u64(std::uint64_t value);

  /// Total payload bytes this rank has received / sent so far.
  std::uint64_t bytes_received() const noexcept;
  std::uint64_t bytes_sent() const noexcept;

  /// Per-rank collective-call counter.  Collectives are called in the
  /// same order on every rank, so this yields matching values across
  /// ranks; the higher-level collectives fold it into their internal
  /// tags so back-to-back calls can never interleave messages.
  int next_collective_seq() noexcept { return collective_seq_++; }

 private:
  friend class Runtime;
  friend struct detail::World;
  Comm(detail::World* world, int rank) : world_(world), rank_(rank) {}

  detail::World* world_;
  int rank_;
  int collective_seq_ = 0;
};

/// Launches `fn` on `nprocs` rank threads and joins them.
/// The first exception thrown by any rank is rethrown after join.
class Runtime {
 public:
  static void run(int nprocs, const std::function<void(Comm&)>& fn);
};

}  // namespace ickpt::mpi

#include "minimpi/request.h"

#include <chrono>

namespace ickpt::mpi {

Result<RecvInfo> RecvRequest::wait() {
  if (!done_) {
    if (!future_.valid()) {
      return failed_precondition("wait() on an empty request");
    }
    result_ = future_.get();
    done_ = true;
  }
  return result_;
}

bool RecvRequest::test() {
  if (done_) return true;
  if (!future_.valid()) return false;
  if (future_.wait_for(std::chrono::seconds(0)) ==
      std::future_status::ready) {
    result_ = future_.get();
    done_ = true;
    return true;
  }
  return false;
}

RecvRequest irecv(Comm& comm, int src, int tag, std::span<std::byte> out) {
  RecvRequest req;
  // The matcher thread performs the blocking recv; Comm's mailbox
  // operations are thread-safe, and the matching rules are identical
  // to a blocking recv posted at the same time.
  req.future_ = std::async(std::launch::async,
                           [&comm, src, tag, out]() -> Result<RecvInfo> {
                             return comm.recv(src, tag, out);
                           });
  return req;
}

void isend(Comm& comm, int dst, int tag, std::span<const std::byte> data) {
  comm.send(dst, tag, data);  // buffered: already nonblocking
}

Status wait_all(std::span<RecvRequest> requests) {
  Status first;
  for (RecvRequest& r : requests) {
    auto info = r.wait();
    if (!info.is_ok() && first.is_ok()) first = info.status();
  }
  return first;
}

}  // namespace ickpt::mpi

// Higher-level collectives built on Comm's point-to-point layer:
// gather, scatter, allgather, alltoall, and vector reductions — the
// operations the paper's applications use for transposes (FT),
// pipelined wavefronts (Sweep3D) and convergence checks (Sage).
//
// All operations are collective: every rank of the world must call
// them with compatible arguments.  Internal tags live in a reserved
// negative tag space and cannot collide with application tags (>= 0).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "minimpi/comm.h"

namespace ickpt::mpi {

/// Root collects `chunk` bytes from every rank (in rank order).
/// On the root, `out` must hold size() * chunk bytes; elsewhere it is
/// ignored.
Status gather(Comm& comm, int root, std::span<const std::byte> chunk,
              std::span<std::byte> out);

/// Root distributes consecutive `chunk`-byte pieces of `data` to each
/// rank; every rank receives its piece in `out` (chunk bytes).
Status scatter(Comm& comm, int root, std::span<const std::byte> data,
               std::span<std::byte> out);

/// Every rank contributes `chunk` bytes and receives all ranks'
/// contributions (size() * chunk bytes, rank order).
Status allgather(Comm& comm, std::span<const std::byte> chunk,
                 std::span<std::byte> out);

/// Personalized all-to-all: `send` holds size() pieces of `chunk`
/// bytes (piece i goes to rank i); `out` receives size() pieces
/// (piece i came from rank i).  The communication pattern of FT's
/// distributed transpose.
Status alltoall(Comm& comm, std::span<const std::byte> send,
                std::span<std::byte> out, std::size_t chunk);

/// Element-wise sum of a double vector across ranks (every rank gets
/// the result).  Used for residual/energy reductions.
Status allreduce_sum_vec(Comm& comm, std::span<double> values);

}  // namespace ickpt::mpi

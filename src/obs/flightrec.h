// Crash flight recorder: post-mortem observability for field failures.
//
// Once configured with a checkpoint directory, the flight recorder can
// dump the last N trace events (obs/trace.h) plus the metric registry
// to `<dir>/flightrec-<realtime-ns>.json` in two ways:
//
//   * dump(reason) — the normal-path dump, used when restore_chain or
//     fsck fails: full Snapshot::to_json() metrics plus decoded trace
//     events.  Allocates; normal threads only.
//   * crash dump — install_crash_handler() hooks fatal signals
//     (SIGABRT/SIGBUS/SIGILL/SIGFPE), and the memtrack fault table
//     calls dump_from_signal() before re-raising an unhandled SIGSEGV.
//     This path is async-signal-safe: it formats into buffers
//     preallocated by configure() with hand-rolled integer formatting,
//     reads metrics through the Registry's lock-free *_at() accessors
//     (histograms reduced to count/sum/min/max) and writes with
//     open(2)/write(2).
//
// Both paths write the same top-level shape (see
// docs/OBSERVABILITY.md):
//   {"flightrec":1, "reason":..., "signal_context":bool,
//    "timestamp_unix_ns":..., "metrics":{...},
//    "trace":{"emitted":..,"dropped":..,"events":[...]}}
//
// In-flight spans appear as their un-matched "B" events in the event
// list — the failing span is visible even though it never ended.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace ickpt::obs::flightrec {

/// Arm the flight recorder: dumps land in `dir`, carrying up to
/// `last_events` of the most recent trace events.  Preallocates every
/// buffer the signal path needs.  Re-configuring moves the target
/// directory; the first `last_events` wins.  Normal threads only.
void configure(const std::string& dir, std::size_t last_events = 512);

bool configured() noexcept;

/// Normal-path dump (full metrics snapshot + trace events).  Returns
/// the path written, or "" when unconfigured or the write failed.
std::string dump(std::string_view reason);

/// Install fatal-signal handlers (SIGABRT, SIGBUS, SIGILL, SIGFPE)
/// that dump before re-raising with default disposition.  Idempotent.
/// SIGSEGV stays owned by the memtrack fault table, which calls
/// dump_from_signal() itself on the not-ours crash path.
void install_crash_handler();

/// Async-signal-safe dump.  `reason` must be a literal or otherwise
/// immortal string.  No-op when unconfigured; at most one crash dump
/// is written per process.
void dump_from_signal(const char* reason) noexcept;

}  // namespace ickpt::obs::flightrec

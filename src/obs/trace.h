// Span tracing: a lock-free, fixed-capacity ring of trace events that
// records the *time structure* of a checkpoint or restore — per-shard
// encode spans, fault-handler instants, backend writes — where the
// metrics registry only keeps aggregates.
//
// Model: begin/end span pairs plus instant events, each carrying a
// monotonic timestamp, the emitting thread id, an interned name id and
// two u64 arguments.  Events land in a ring that overwrites the oldest
// entry when full, so tracing never blocks, never allocates on the hot
// path and always holds the most recent history (which is exactly what
// the crash flight recorder wants).
//
// Signal-safety contract (extends obs/metrics.h §9):
//   * trace_name() interns a name: takes a mutex, allocates.  Normal
//     threads only, typically once at startup next to the metric
//     handles.
//   * emit()/TraceSpan/trace_instant perform only relaxed/release
//     atomic stores into pre-allocated slots plus one cycle-counter
//     read (rdtsc/cntvct; converted to nanoseconds at read time).  No
//     locks, no allocation, no syscalls after the first per-thread tid
//     fetch — safe from the SIGSEGV fault handler.
//   * TraceRing::read_recent() copies events without allocating, so a
//     fatal-signal handler can drain the ring.
//   * When tracing is off (the default), every emit site costs one
//     relaxed load and branch; start_tracing() flips it on process-wide.
//
// Export: chrome_trace_json() renders events in the Chrome trace-event
// format ("B"/"E"/"i" phases), loadable in chrome://tracing and
// Perfetto (ui.perfetto.dev).  rollup_spans() pairs begin/end events
// into per-name totals for machine-readable bench records.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ickpt::obs {

/// Event category, fixed at name-interning time; exported as the
/// Chrome "cat" field so Perfetto can filter per subsystem.
enum class TraceCat : std::uint8_t {
  kOther = 0,
  kMemtrack,
  kCkpt,
  kStorage,
  kRestore,
  kFsck,
  kStudy,
  kBench,
  kNet,
};

std::string_view to_string(TraceCat cat) noexcept;

enum class TracePhase : std::uint8_t {
  kBegin = 0,
  kEnd = 1,
  kInstant = 2,
};

/// Intern a trace-point name; returns a process-stable id (> 0) for
/// the emit path.  Re-interning the same name returns the same id.
/// Returns 0 when the name table is full (emits with id 0 are kept
/// but decode as "?").  Mutex + allocation: normal threads only.
std::uint16_t trace_name(std::string_view name,
                         TraceCat cat = TraceCat::kOther);

/// Decode an interned id ("?" for 0 / unknown).
std::string_view trace_name_string(std::uint16_t id) noexcept;
TraceCat trace_name_cat(std::uint16_t id) noexcept;

/// A decoded event, as copied out of the ring.
struct TraceEvent {
  std::uint64_t seq = 0;    ///< global claim order (chronological)
  std::uint64_t ts_ns = 0;  ///< monotonic ns (cycle count at emit,
                            ///< calibrated to now_ns() at read time)
  std::uint32_t tid = 0;    ///< kernel thread id
  std::uint16_t name_id = 0;
  TracePhase phase = TracePhase::kInstant;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

/// Lock-free MPMC ring of trace events.  Writers claim slots with one
/// fetch_add and publish with a release store; readers detect torn
/// slots via the publication word and skip them.  A writer that stalls
/// for a full ring revolution can in principle leave one garbled (but
/// type-safe) event — the classic tradeoff for a wait-free emit path.
class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 15;  ///< 32768

  /// Capacity is rounded up to a power of two, minimum 8.
  explicit TraceRing(std::size_t capacity = kDefaultCapacity);
  ~TraceRing();

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Record one event.  Async-signal-safe, wait-free, never fails.
  void emit(std::uint16_t name_id, TracePhase phase, std::uint64_t arg0 = 0,
            std::uint64_t arg1 = 0) noexcept;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Total events ever emitted (including overwritten ones).
  std::uint64_t emitted() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }

  /// Events lost to wraparound so far.
  std::uint64_t dropped() const noexcept {
    const std::uint64_t n = emitted();
    return n > capacity() ? n - capacity() : 0;
  }

  /// Copy up to `max` of the most recent events into `out`, oldest
  /// first.  No allocation, no locks: safe from a fatal-signal
  /// handler.  Returns the number of events written.
  std::size_t read_recent(TraceEvent* out, std::size_t max) const noexcept;

  /// All currently-held events, oldest first (allocates; normal
  /// threads only).
  std::vector<TraceEvent> snapshot() const;

  /// Drop every event and reset counters.  NOT safe concurrently with
  /// emitters or readers — bench harnesses only, between arms.
  void reset() noexcept;

 private:
  struct Slot {
    std::atomic<std::uint64_t> pub{0};  ///< claim seq + 1; 0 = empty
    std::atomic<std::uint64_t> ts{0};
    std::atomic<std::uint64_t> meta{0};  ///< tid(32) | name(16) | phase(8)
    std::atomic<std::uint64_t> arg0{0};
    std::atomic<std::uint64_t> arg1{0};
  };

  Slot* slots_ = nullptr;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
};

namespace detail {
extern std::atomic<bool> g_tracing;
}  // namespace detail

/// True while process-wide tracing is on.  Relaxed load + branch: this
/// is the whole cost of a disabled trace point.
inline bool tracing() noexcept {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

/// Turn tracing on, allocating the process ring on first use (the ring
/// is immortal once allocated, like registry metrics — the capacity of
/// the first call wins).  Normal threads only.
void start_tracing(std::size_t capacity = TraceRing::kDefaultCapacity);
void stop_tracing() noexcept;

/// The process ring, or nullptr before the first start_tracing().
TraceRing* trace_ring() noexcept;

/// Emit into the process ring if tracing is on.  Async-signal-safe.
void trace_emit(std::uint16_t name_id, TracePhase phase,
                std::uint64_t arg0 = 0, std::uint64_t arg1 = 0) noexcept;

inline void trace_instant(std::uint16_t name_id, std::uint64_t arg0 = 0,
                          std::uint64_t arg1 = 0) noexcept {
  if (tracing()) trace_emit(name_id, TracePhase::kInstant, arg0, arg1);
}

/// RAII begin/end span over the process ring.  When tracing is off at
/// construction the destructor does nothing (one branch each way).
class TraceSpan {
 public:
  explicit TraceSpan(std::uint16_t name_id, std::uint64_t arg0 = 0,
                     std::uint64_t arg1 = 0) noexcept
      : id_(tracing() ? name_id : 0) {
    if (id_ != 0) trace_emit(id_, TracePhase::kBegin, arg0, arg1);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { end(); }

  /// Close the span now (idempotent); arg0/arg1 ride on the end event.
  void end(std::uint64_t arg0 = 0, std::uint64_t arg1 = 0) noexcept {
    if (id_ != 0) {
      trace_emit(id_, TracePhase::kEnd, arg0, arg1);
      id_ = 0;
    }
  }

 private:
  std::uint16_t id_;
};

/// Aggregate of all completed begin/end pairs of one name.
struct SpanRollup {
  std::string name;
  std::uint64_t count = 0;     ///< completed spans
  std::uint64_t total_ns = 0;  ///< summed durations
};

/// Pair begin/end events (per-thread stacks, chronological order) into
/// per-name totals, sorted by name.  Unmatched begins/ends are ignored.
std::vector<SpanRollup> rollup_spans(const std::vector<TraceEvent>& events);

/// Render events as a Chrome trace-event JSON document (an object with
/// a "traceEvents" array; timestamps in microseconds), loadable in
/// chrome://tracing and Perfetto.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// Snapshot the process ring and write it as Chrome trace JSON.
Status write_chrome_trace(const std::string& path);

}  // namespace ickpt::obs

#include "obs/metrics.h"

#include <time.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ickpt::obs {

namespace {

std::atomic<bool> g_enabled{true};

/// Geometric midpoint of bucket i (values in [2^(i-1), 2^i)).
double bucket_mid(int i) noexcept {
  if (i == 0) return 0.0;
  double lo = std::ldexp(1.0, i - 1);
  return lo * 1.5;
}

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

/// Format a histogram value for the console table, honouring the unit.
std::string fmt_value(double v, Unit unit) {
  char buf[48];
  switch (unit) {
    case Unit::kNanoseconds:
      if (v >= 1e9) {
        std::snprintf(buf, sizeof buf, "%.2f s", v / 1e9);
      } else if (v >= 1e6) {
        std::snprintf(buf, sizeof buf, "%.2f ms", v / 1e6);
      } else if (v >= 1e3) {
        std::snprintf(buf, sizeof buf, "%.2f us", v / 1e3);
      } else {
        std::snprintf(buf, sizeof buf, "%.0f ns", v);
      }
      return buf;
    case Unit::kBytes:
      if (v >= 1024.0 * 1024.0 * 1024.0) {
        std::snprintf(buf, sizeof buf, "%.2f GB", v / (1024.0 * 1024.0 * 1024.0));
      } else if (v >= 1024.0 * 1024.0) {
        std::snprintf(buf, sizeof buf, "%.2f MB", v / (1024.0 * 1024.0));
      } else if (v >= 1024.0) {
        std::snprintf(buf, sizeof buf, "%.2f KB", v / 1024.0);
      } else {
        std::snprintf(buf, sizeof buf, "%.0f B", v);
      }
      return buf;
    case Unit::kNone:
      std::snprintf(buf, sizeof buf, "%.6g", v);
      return buf;
  }
  return "?";
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t Histogram::min() const noexcept {
  std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == ~0ull ? 0 : v;
}

double Histogram::mean() const noexcept {
  std::uint64_t n = count();
  return n > 0 ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
}

double Histogram::approx_quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += static_cast<double>(bucket(i));
    if (seen >= target) return bucket_mid(i);
  }
  return static_cast<double>(max());
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

std::string_view to_string(Unit unit) noexcept {
  switch (unit) {
    case Unit::kNone: return "";
    case Unit::kNanoseconds: return "ns";
    case Unit::kBytes: return "bytes";
  }
  return "";
}

Registry& Registry::instance() {
  // Leaked on purpose: metric handles (including the one cached by the
  // SIGSEGV fault table) must stay valid through static destruction.
  static Registry* r = new Registry();
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : counters_) {
    if (e->name == name) return e->metric;
  }
  counters_.push_back(std::make_unique<Entry<Counter>>());
  counters_.back()->name = std::string(name);
  return counters_.back()->metric;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : gauges_) {
    if (e->name == name) return e->metric;
  }
  gauges_.push_back(std::make_unique<Entry<Gauge>>());
  gauges_.back()->name = std::string(name);
  return gauges_.back()->metric;
}

Histogram& Registry::histogram(std::string_view name, Unit unit) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : histograms_) {
    if (e->name == name) return e->metric;
  }
  histograms_.push_back(std::make_unique<Entry<Histogram>>());
  histograms_.back()->name = std::string(name);
  histograms_.back()->unit = unit;
  return histograms_.back()->metric;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.enabled = enabled();
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& e : counters_) {
    snap.counters.push_back({e->name, e->metric.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& e : gauges_) {
    snap.gauges.push_back({e->name, e->metric.value(), e->metric.max()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& e : histograms_) {
    const Histogram& h = e->metric;
    Snapshot::HistogramValue hv;
    hv.name = e->name;
    hv.unit = e->unit;
    hv.count = h.count();
    hv.sum = h.sum();
    hv.min = h.min();
    hv.max = h.max();
    hv.mean = h.mean();
    hv.p50 = h.approx_quantile(0.5);
    hv.p90 = h.approx_quantile(0.9);
    hv.p99 = h.approx_quantile(0.99);
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      std::uint64_t c = h.bucket(i);
      if (c != 0) hv.buckets.emplace_back(i, c);
    }
    snap.histograms.push_back(std::move(hv));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::reset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : counters_) e->metric.reset();
  for (const auto& e : gauges_) e->metric.reset();
  for (const auto& e : histograms_) e->metric.reset();
}

std::string Snapshot::to_json() const {
  std::string out;
  out.reserve(256 + 64 * (counters.size() + gauges.size()) +
              256 * histograms.size());
  out += "{\"enabled\":";
  out += enabled ? "true" : "false";
  out += ",\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    append_escaped(out, counters[i].name);
    out += "\":";
    append_u64(out, counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    append_escaped(out, gauges[i].name);
    out += "\":{\"value\":";
    append_i64(out, gauges[i].value);
    out += ",\"max\":";
    append_i64(out, gauges[i].max);
    out += '}';
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    if (i != 0) out += ',';
    out += '"';
    append_escaped(out, h.name);
    out += "\":{\"unit\":\"";
    append_escaped(out, to_string(h.unit));
    out += "\",\"count\":";
    append_u64(out, h.count);
    out += ",\"sum\":";
    append_u64(out, h.sum);
    out += ",\"min\":";
    append_u64(out, h.min);
    out += ",\"max\":";
    append_u64(out, h.max);
    out += ",\"mean\":";
    append_double(out, h.mean);
    out += ",\"p50\":";
    append_double(out, h.p50);
    out += ",\"p90\":";
    append_double(out, h.p90);
    out += ",\"p99\":";
    append_double(out, h.p99);
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b != 0) out += ',';
      out += '[';
      append_i64(out, h.buckets[b].first);
      out += ',';
      append_u64(out, h.buckets[b].second);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

TextTable Snapshot::table(const std::string& title) const {
  TextTable t(title);
  t.set_header({"Metric", "Count", "Mean", "p50", "p99", "Max", "Total"});
  for (const auto& c : counters) {
    std::string v;
    append_u64(v, c.value);
    t.add_row({c.name, "-", "-", "-", "-", "-", v});
  }
  for (const auto& g : gauges) {
    std::string v;
    append_i64(v, g.value);
    std::string m;
    append_i64(m, g.max);
    t.add_row({g.name + " (gauge)", "-", "-", "-", "-", m, v});
  }
  for (const auto& h : histograms) {
    std::string n;
    append_u64(n, h.count);
    t.add_row({h.name, n, fmt_value(h.mean, h.unit),
               fmt_value(h.p50, h.unit), fmt_value(h.p99, h.unit),
               fmt_value(static_cast<double>(h.max), h.unit),
               fmt_value(static_cast<double>(h.sum), h.unit)});
  }
  return t;
}

}  // namespace ickpt::obs

#include "obs/metrics.h"

#include <time.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ickpt::obs {

namespace {

std::atomic<bool> g_enabled{true};

/// Geometric midpoint of bucket i (values in [2^(i-1), 2^i)).
double bucket_mid(int i) noexcept {
  if (i == 0) return 0.0;
  double lo = std::ldexp(1.0, i - 1);
  return lo * 1.5;
}

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

/// Format a histogram value for the console table, honouring the unit.
std::string fmt_value(double v, Unit unit) {
  char buf[48];
  switch (unit) {
    case Unit::kNanoseconds:
      if (v >= 1e9) {
        std::snprintf(buf, sizeof buf, "%.2f s", v / 1e9);
      } else if (v >= 1e6) {
        std::snprintf(buf, sizeof buf, "%.2f ms", v / 1e6);
      } else if (v >= 1e3) {
        std::snprintf(buf, sizeof buf, "%.2f us", v / 1e3);
      } else {
        std::snprintf(buf, sizeof buf, "%.0f ns", v);
      }
      return buf;
    case Unit::kBytes:
      if (v >= 1024.0 * 1024.0 * 1024.0) {
        std::snprintf(buf, sizeof buf, "%.2f GB", v / (1024.0 * 1024.0 * 1024.0));
      } else if (v >= 1024.0 * 1024.0) {
        std::snprintf(buf, sizeof buf, "%.2f MB", v / (1024.0 * 1024.0));
      } else if (v >= 1024.0) {
        std::snprintf(buf, sizeof buf, "%.2f KB", v / 1024.0);
      } else {
        std::snprintf(buf, sizeof buf, "%.0f B", v);
      }
      return buf;
    case Unit::kNone:
      std::snprintf(buf, sizeof buf, "%.6g", v);
      return buf;
  }
  return "?";
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t Histogram::min() const noexcept {
  std::uint64_t v = min_.load(std::memory_order_relaxed);
  return v == ~0ull ? 0 : v;
}

double Histogram::mean() const noexcept {
  std::uint64_t n = count();
  return n > 0 ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
}

double Histogram::approx_quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double lo = static_cast<double>(min());
  const double hi = static_cast<double>(max());
  if (q <= 0.0) return lo;
  if (q >= 1.0) return hi;
  const double target = q * static_cast<double>(n);
  double seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += static_cast<double>(bucket(i));
    // Clamp the bucket midpoint to the observed range: a one-sample
    // histogram answers with the sample, and the saturated top bucket
    // ([2^62, inf)) cannot report past max().
    if (seen >= target) return std::clamp(bucket_mid(i), lo, hi);
  }
  return hi;
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

std::string_view to_string(Unit unit) noexcept {
  switch (unit) {
    case Unit::kNone: return "";
    case Unit::kNanoseconds: return "ns";
    case Unit::kBytes: return "bytes";
  }
  return "";
}

Registry& Registry::instance() {
  // Leaked on purpose: metric handles (including the one cached by the
  // SIGSEGV fault table) must stay valid through static destruction.
  static Registry* r = new Registry();
  return *r;
}

namespace {
// Shared sinks for registrations past kMaxPerKind: recording still
// works (no crash, no UB), the values just are not reported.
Counter g_overflow_counter;
Gauge g_overflow_gauge;
Histogram g_overflow_histogram;
}  // namespace

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = n_counters_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    if (counters_[i]->name == name) return counters_[i]->metric;
  }
  if (n >= kMaxPerKind) return g_overflow_counter;
  auto* e = new Entry<Counter>();  // immortal
  e->name = std::string(name);
  counters_[n] = e;
  n_counters_.store(n + 1, std::memory_order_release);
  return e->metric;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = n_gauges_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    if (gauges_[i]->name == name) return gauges_[i]->metric;
  }
  if (n >= kMaxPerKind) return g_overflow_gauge;
  auto* e = new Entry<Gauge>();  // immortal
  e->name = std::string(name);
  gauges_[n] = e;
  n_gauges_.store(n + 1, std::memory_order_release);
  return e->metric;
}

Histogram& Registry::histogram(std::string_view name, Unit unit) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = n_histograms_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    if (histograms_[i]->name == name) return histograms_[i]->metric;
  }
  if (n >= kMaxPerKind) return g_overflow_histogram;
  auto* e = new Entry<Histogram>();  // immortal
  e->name = std::string(name);
  e->unit = unit;
  histograms_[n] = e;
  n_histograms_.store(n + 1, std::memory_order_release);
  return e->metric;
}

const Counter* Registry::counter_at(std::size_t i,
                                    std::string_view* name) const noexcept {
  if (i >= counter_count()) return nullptr;
  const Entry<Counter>* e = counters_[i];
  if (name != nullptr) *name = e->name;
  return &e->metric;
}

const Gauge* Registry::gauge_at(std::size_t i,
                                std::string_view* name) const noexcept {
  if (i >= gauge_count()) return nullptr;
  const Entry<Gauge>* e = gauges_[i];
  if (name != nullptr) *name = e->name;
  return &e->metric;
}

const Histogram* Registry::histogram_at(std::size_t i, std::string_view* name,
                                        Unit* unit) const noexcept {
  if (i >= histogram_count()) return nullptr;
  const Entry<Histogram>* e = histograms_[i];
  if (name != nullptr) *name = e->name;
  if (unit != nullptr) *unit = e->unit;
  return &e->metric;
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.enabled = enabled();
  const std::size_t nc = counter_count();
  snap.counters.reserve(nc);
  for (std::size_t i = 0; i < nc; ++i) {
    const Entry<Counter>* e = counters_[i];
    snap.counters.push_back({e->name, e->metric.value()});
  }
  const std::size_t ng = gauge_count();
  snap.gauges.reserve(ng);
  for (std::size_t i = 0; i < ng; ++i) {
    const Entry<Gauge>* e = gauges_[i];
    snap.gauges.push_back({e->name, e->metric.value(), e->metric.max()});
  }
  const std::size_t nh = histogram_count();
  snap.histograms.reserve(nh);
  for (std::size_t i = 0; i < nh; ++i) {
    const Entry<Histogram>* e = histograms_[i];
    const Histogram& h = e->metric;
    Snapshot::HistogramValue hv;
    hv.name = e->name;
    hv.unit = e->unit;
    hv.count = h.count();
    hv.sum = h.sum();
    hv.min = h.min();
    hv.max = h.max();
    hv.mean = h.mean();
    hv.p50 = h.approx_quantile(0.5);
    hv.p90 = h.approx_quantile(0.9);
    hv.p99 = h.approx_quantile(0.99);
    for (int i2 = 0; i2 < Histogram::kBuckets; ++i2) {
      std::uint64_t c = h.bucket(i2);
      if (c != 0) hv.buckets.emplace_back(i2, c);
    }
    snap.histograms.push_back(std::move(hv));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::reset_all() noexcept {
  const std::size_t nc = counter_count();
  for (std::size_t i = 0; i < nc; ++i) counters_[i]->metric.reset();
  const std::size_t ng = gauge_count();
  for (std::size_t i = 0; i < ng; ++i) gauges_[i]->metric.reset();
  const std::size_t nh = histogram_count();
  for (std::size_t i = 0; i < nh; ++i) histograms_[i]->metric.reset();
}

std::string Snapshot::to_json() const {
  std::string out;
  out.reserve(256 + 64 * (counters.size() + gauges.size()) +
              256 * histograms.size());
  out += "{\"enabled\":";
  out += enabled ? "true" : "false";
  out += ",\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    append_escaped(out, counters[i].name);
    out += "\":";
    append_u64(out, counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    append_escaped(out, gauges[i].name);
    out += "\":{\"value\":";
    append_i64(out, gauges[i].value);
    out += ",\"max\":";
    append_i64(out, gauges[i].max);
    out += '}';
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    if (i != 0) out += ',';
    out += '"';
    append_escaped(out, h.name);
    out += "\":{\"unit\":\"";
    append_escaped(out, to_string(h.unit));
    out += "\",\"count\":";
    append_u64(out, h.count);
    out += ",\"sum\":";
    append_u64(out, h.sum);
    out += ",\"min\":";
    append_u64(out, h.min);
    out += ",\"max\":";
    append_u64(out, h.max);
    out += ",\"mean\":";
    append_double(out, h.mean);
    out += ",\"p50\":";
    append_double(out, h.p50);
    out += ",\"p90\":";
    append_double(out, h.p90);
    out += ",\"p99\":";
    append_double(out, h.p99);
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b != 0) out += ',';
      out += '[';
      append_i64(out, h.buckets[b].first);
      out += ',';
      append_u64(out, h.buckets[b].second);
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

TextTable Snapshot::table(const std::string& title) const {
  TextTable t(title);
  t.set_header({"Metric", "Count", "Mean", "p50", "p99", "Max", "Total"});
  for (const auto& c : counters) {
    std::string v;
    append_u64(v, c.value);
    t.add_row({c.name, "-", "-", "-", "-", "-", v});
  }
  for (const auto& g : gauges) {
    std::string v;
    append_i64(v, g.value);
    std::string m;
    append_i64(m, g.max);
    t.add_row({g.name + " (gauge)", "-", "-", "-", "-", m, v});
  }
  for (const auto& h : histograms) {
    std::string n;
    append_u64(n, h.count);
    t.add_row({h.name, n, fmt_value(h.mean, h.unit),
               fmt_value(h.p50, h.unit), fmt_value(h.p99, h.unit),
               fmt_value(static_cast<double>(h.max), h.unit),
               fmt_value(static_cast<double>(h.sum), h.unit)});
  }
  return t;
}

}  // namespace ickpt::obs

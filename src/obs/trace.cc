#include "obs/trace.h"

#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>

#include "obs/metrics.h"

namespace ickpt::obs {

namespace {

// ------------------------------------------------------- name interning
//
// A fixed table of immortal entries with an atomically published
// count: registration locks, the decode path (and the emit path, which
// only carries the id) never does.

constexpr std::size_t kMaxTraceNames = 512;

struct NameEntry {
  std::string name;
  TraceCat cat = TraceCat::kOther;
};

NameEntry* g_names[kMaxTraceNames];
std::atomic<std::size_t> g_name_count{0};
std::mutex g_name_mu;

/// Kernel thread id, cached per thread.  The cache is a trivially-
/// initialized TLS word, so reading it from a signal handler is safe;
/// the one-time gettid syscall is async-signal-safe too.
std::uint32_t self_tid() noexcept {
  thread_local std::uint32_t tid = 0;
  if (tid == 0) {
    tid = static_cast<std::uint32_t>(::syscall(SYS_gettid));
  }
  return tid;
}

std::uint64_t pack_meta(std::uint32_t tid, std::uint16_t name_id,
                        TracePhase phase) noexcept {
  return (std::uint64_t{tid} << 32) | (std::uint64_t{name_id} << 16) |
         (std::uint64_t{static_cast<std::uint8_t>(phase)} << 8);
}

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

// -------------------------------------------------------- tick timestamps
//
// The emit path stores a raw cycle-counter read; conversion to
// nanoseconds happens once per event at *read* time through an affine
// map calibrated against the monotonic clock.  This keeps the hot path
// free of clock_gettime entirely (a vDSO clock read costs more than
// the rest of the emit put together) and drops the per-fault tracing
// tax under the intrusiveness budget of §6.5.

#if defined(__x86_64__) || defined(__i386__)
std::uint64_t fast_ticks() noexcept { return __builtin_ia32_rdtsc(); }
#elif defined(__aarch64__)
std::uint64_t fast_ticks() noexcept {
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
}
#else
std::uint64_t fast_ticks() noexcept { return now_ns(); }
#endif

std::atomic<std::uint64_t> g_cal_ticks0{0};
std::atomic<std::uint64_t> g_cal_ns0{0};
std::atomic<std::uint64_t> g_cal_scale_bits{0};  ///< double ns/tick; 0=unset

/// Pin the calibration origin (first caller wins).
void calibrate_ticks() noexcept {
  std::uint64_t expected = 0;
  const std::uint64_t t = fast_ticks();
  if (g_cal_ticks0.compare_exchange_strong(expected, t,
                                           std::memory_order_acq_rel)) {
    g_cal_ns0.store(now_ns(), std::memory_order_release);
  }
}

/// Map a raw tick value to nanoseconds.  Async-signal-safe: atomics,
/// double arithmetic and (until the scale is cached) one clock read.
std::uint64_t ticks_to_ns(std::uint64_t ticks) noexcept {
  const std::uint64_t t0 = g_cal_ticks0.load(std::memory_order_acquire);
  const std::uint64_t n0 = g_cal_ns0.load(std::memory_order_acquire);
  if (t0 == 0) return ticks;  // never calibrated: raw ticks beat nothing
  double scale;
  const std::uint64_t bits = g_cal_scale_bits.load(std::memory_order_relaxed);
  if (bits != 0) {
    scale = std::bit_cast<double>(bits);
  } else {
    const std::uint64_t t1 = fast_ticks();
    const std::uint64_t n1 = now_ns();
    if (t1 <= t0 || n1 <= n0) return n0;
    scale = static_cast<double>(n1 - n0) / static_cast<double>(t1 - t0);
    if (n1 - n0 > 1'000'000) {  // >= 1 ms baseline: cache the slope
      g_cal_scale_bits.store(std::bit_cast<std::uint64_t>(scale),
                             std::memory_order_relaxed);
    }
  }
  const double delta =
      ticks >= t0 ? static_cast<double>(ticks - t0) * scale : 0.0;
  return n0 + static_cast<std::uint64_t>(delta);
}

}  // namespace

std::string_view to_string(TraceCat cat) noexcept {
  switch (cat) {
    case TraceCat::kOther: return "other";
    case TraceCat::kMemtrack: return "memtrack";
    case TraceCat::kCkpt: return "ckpt";
    case TraceCat::kStorage: return "storage";
    case TraceCat::kRestore: return "restore";
    case TraceCat::kFsck: return "fsck";
    case TraceCat::kStudy: return "study";
    case TraceCat::kBench: return "bench";
    case TraceCat::kNet: return "net";
  }
  return "other";
}

std::uint16_t trace_name(std::string_view name, TraceCat cat) {
  std::lock_guard<std::mutex> lock(g_name_mu);
  const std::size_t n = g_name_count.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    if (g_names[i]->name == name) {
      return static_cast<std::uint16_t>(i + 1);
    }
  }
  if (n >= kMaxTraceNames) return 0;
  auto* e = new NameEntry();  // immortal, like registry metrics
  e->name = std::string(name);
  e->cat = cat;
  g_names[n] = e;
  g_name_count.store(n + 1, std::memory_order_release);
  return static_cast<std::uint16_t>(n + 1);
}

std::string_view trace_name_string(std::uint16_t id) noexcept {
  const std::size_t n = g_name_count.load(std::memory_order_acquire);
  if (id == 0 || id > n) return "?";
  return g_names[id - 1]->name;
}

TraceCat trace_name_cat(std::uint16_t id) noexcept {
  const std::size_t n = g_name_count.load(std::memory_order_acquire);
  if (id == 0 || id > n) return TraceCat::kOther;
  return g_names[id - 1]->cat;
}

// -------------------------------------------------------------- TraceRing

TraceRing::TraceRing(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(std::max<std::size_t>(capacity, 8));
  slots_ = new Slot[cap];
  mask_ = cap - 1;
}

TraceRing::~TraceRing() { delete[] slots_; }

void TraceRing::emit(std::uint16_t name_id, TracePhase phase,
                     std::uint64_t arg0, std::uint64_t arg1) noexcept {
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[seq & mask_];
  // Invalidate, fill, publish.  A reader that overlaps any of this
  // sees pub change (or 0) and skips the slot.
  s.pub.store(0, std::memory_order_release);
  s.ts.store(fast_ticks(), std::memory_order_relaxed);
  s.meta.store(pack_meta(self_tid(), name_id, phase),
               std::memory_order_relaxed);
  s.arg0.store(arg0, std::memory_order_relaxed);
  s.arg1.store(arg1, std::memory_order_relaxed);
  s.pub.store(seq + 1, std::memory_order_release);
}

std::size_t TraceRing::read_recent(TraceEvent* out,
                                   std::size_t max) const noexcept {
  if (out == nullptr || max == 0) return 0;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t held = std::min<std::uint64_t>(head, capacity());
  const std::uint64_t want = std::min<std::uint64_t>(held, max);
  std::size_t n = 0;
  for (std::uint64_t seq = head - want; seq < head; ++seq) {
    const Slot& s = slots_[seq & mask_];
    const std::uint64_t pub = s.pub.load(std::memory_order_acquire);
    if (pub == 0) continue;  // being rewritten right now
    TraceEvent e;
    e.seq = pub - 1;
    e.ts_ns = ticks_to_ns(s.ts.load(std::memory_order_relaxed));
    const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
    e.arg0 = s.arg0.load(std::memory_order_relaxed);
    e.arg1 = s.arg1.load(std::memory_order_relaxed);
    if (s.pub.load(std::memory_order_acquire) != pub) continue;  // torn
    e.tid = static_cast<std::uint32_t>(meta >> 32);
    e.name_id = static_cast<std::uint16_t>(meta >> 16);
    const auto ph = static_cast<std::uint8_t>(meta >> 8);
    e.phase = ph <= 2 ? static_cast<TracePhase>(ph) : TracePhase::kInstant;
    out[n++] = e;
  }
  // Slots may hold a newer event than the claim range implies (a
  // concurrent emitter lapped us); keep chronological order anyway.
  std::sort(out, out + n,
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return n;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::vector<TraceEvent> events(capacity());
  events.resize(read_recent(events.data(), events.size()));
  return events;
}

void TraceRing::reset() noexcept {
  const std::size_t cap = capacity();
  for (std::size_t i = 0; i < cap; ++i) {
    slots_[i].pub.store(0, std::memory_order_relaxed);
  }
  head_.store(0, std::memory_order_release);
}

// ------------------------------------------------------ process tracing

namespace detail {
std::atomic<bool> g_tracing{false};
}  // namespace detail

namespace {
std::atomic<TraceRing*> g_ring{nullptr};
std::mutex g_ring_mu;
}  // namespace

void start_tracing(std::size_t capacity) {
  {
    std::lock_guard<std::mutex> lock(g_ring_mu);
    if (g_ring.load(std::memory_order_acquire) == nullptr) {
      // Immortal: the fault handler may hold a pointer past shutdown.
      g_ring.store(new TraceRing(capacity), std::memory_order_release);
    }
  }
  calibrate_ticks();
  detail::g_tracing.store(true, std::memory_order_release);
}

void stop_tracing() noexcept {
  detail::g_tracing.store(false, std::memory_order_release);
}

TraceRing* trace_ring() noexcept {
  return g_ring.load(std::memory_order_acquire);
}

void trace_emit(std::uint16_t name_id, TracePhase phase, std::uint64_t arg0,
                std::uint64_t arg1) noexcept {
  if (!tracing()) return;
  TraceRing* ring = g_ring.load(std::memory_order_acquire);
  if (ring != nullptr) ring->emit(name_id, phase, arg0, arg1);
}

// --------------------------------------------------------------- exports

std::vector<SpanRollup> rollup_spans(const std::vector<TraceEvent>& events) {
  struct Open {
    std::uint32_t tid;
    std::uint16_t name_id;
    std::uint64_t ts_ns;
  };
  std::vector<Open> stack;
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::string, Agg> agg;
  for (const TraceEvent& e : events) {
    if (e.phase == TracePhase::kBegin) {
      stack.push_back({e.tid, e.name_id, e.ts_ns});
    } else if (e.phase == TracePhase::kEnd) {
      // Match the innermost open begin of the same thread and name
      // (spans nest per thread; wraparound can orphan begins).
      for (std::size_t i = stack.size(); i > 0; --i) {
        Open& o = stack[i - 1];
        if (o.tid == e.tid && o.name_id == e.name_id) {
          Agg& a = agg[std::string(trace_name_string(e.name_id))];
          a.count += 1;
          a.total_ns += e.ts_ns >= o.ts_ns ? e.ts_ns - o.ts_ns : 0;
          stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i - 1));
          break;
        }
      }
    }
  }
  std::vector<SpanRollup> out;
  out.reserve(agg.size());
  for (const auto& [name, a] : agg) {
    out.push_back(SpanRollup{name, a.count, a.total_ns});
  }
  return out;
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(128 + events.size() * 144);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  char buf[64];
  const long long pid = static_cast<long long>(::getpid());
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += trace_name_string(e.name_id);
    out += "\",\"cat\":\"";
    out += to_string(trace_name_cat(e.name_id));
    out += "\",\"ph\":\"";
    switch (e.phase) {
      case TracePhase::kBegin: out += 'B'; break;
      case TracePhase::kEnd: out += 'E'; break;
      case TracePhase::kInstant: out += 'i'; break;
    }
    out += "\",\"ts\":";
    // Microseconds with ns precision, as the trace-event format wants.
    std::snprintf(buf, sizeof buf, "%llu.%03llu",
                  static_cast<unsigned long long>(e.ts_ns / 1000),
                  static_cast<unsigned long long>(e.ts_ns % 1000));
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"pid\":%lld,\"tid\":%llu", pid,
                  static_cast<unsigned long long>(e.tid));
    out += buf;
    if (e.phase == TracePhase::kInstant) out += ",\"s\":\"t\"";
    std::snprintf(buf, sizeof buf,
                  ",\"args\":{\"arg0\":%llu,\"arg1\":%llu}}",
                  static_cast<unsigned long long>(e.arg0),
                  static_cast<unsigned long long>(e.arg1));
    out += buf;
  }
  out += "]}";
  return out;
}

Status write_chrome_trace(const std::string& path) {
  TraceRing* ring = trace_ring();
  std::vector<TraceEvent> events;
  if (ring != nullptr) events = ring->snapshot();
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return io_error("cannot open trace file " + path);
  const std::string json = chrome_trace_json(events);
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  f.close();
  if (!f) return io_error("failed writing trace file " + path);
  return Status::ok();
}

}  // namespace ickpt::obs

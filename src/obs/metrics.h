// Process-wide observability registry: counters, gauges and
// fixed-bucket latency histograms cheap enough for the hottest paths
// in the system — including the SIGSEGV fault handler.
//
// Signal-safety contract (see DESIGN.md §9):
//   * Registration (counter()/gauge()/histogram()) takes a mutex and
//     allocates.  It must happen on a normal thread, never inside a
//     signal handler.
//   * After registration, Counter::inc, Gauge::set/add and
//     Histogram::record perform only relaxed atomic operations on
//     pre-allocated storage: no locks, no allocation, no syscalls.
//     They are safe from the fault handler and from any thread.
//   * Metric objects are never destroyed once registered; handles stay
//     valid for the life of the process.
//
// Recording can be globally disabled (set_enabled(false)); scoped
// timers then skip the clock reads entirely, so compiled-in-but-idle
// instrumentation costs one predictable branch.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/table.h"

namespace ickpt::obs {

/// True while metric recording is on (default).  Relaxed read.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonic nanoseconds (CLOCK_MONOTONIC; async-signal-safe).
std::uint64_t now_ns() noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depth, bytes in flight).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  /// High-water mark of set()/add() results since reset.
  std::int64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    v_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  /// set() that also maintains the high-water mark (still lock-free).
  void update(std::int64_t v) noexcept {
    set(v);
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed power-of-two-bucket histogram (bucket i counts values whose
/// bit width is i, i.e. v in [2^(i-1), 2^i)).  64 buckets cover the
/// full uint64 range, so record() never branches on range.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::uint64_t v) noexcept {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  /// Bucket of value v: its bit width, so bucket 0 holds only 0 and an
  /// exact power of two 2^k deterministically starts bucket k+1 (the
  /// bucket covering [2^k, 2^(k+1))).  Bucket 63 saturates: it absorbs
  /// everything from 2^62 up.
  static int bucket_index(std::uint64_t v) noexcept {
    const int w = static_cast<int>(std::bit_width(v));
    return w < kBuckets ? w : kBuckets - 1;
  }

  /// Smallest value bucket i can hold.
  static std::uint64_t bucket_lo(int i) noexcept {
    return i <= 0 ? 0 : 1ull << (i - 1);
  }

  /// Largest value bucket i can hold (inclusive; bucket 63 saturates).
  static std::uint64_t bucket_hi(int i) noexcept {
    if (i <= 0) return 0;
    if (i >= kBuckets - 1) return ~0ull;
    return (1ull << i) - 1;
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t min() const noexcept;  ///< 0 when empty
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(int i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double mean() const noexcept;

  /// Bucket-midpoint quantile estimate, clamped to the observed
  /// [min(), max()] range so a single-sample histogram answers every
  /// quantile with that sample and the saturated top bucket cannot
  /// overshoot max().  q <= 0 gives min(), q >= 1 gives max(), an
  /// empty histogram gives 0 for every q.
  double approx_quantile(double q) const noexcept;

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
};

/// Display/formatting hint for a histogram's values.
enum class Unit { kNone, kNanoseconds, kBytes };

std::string_view to_string(Unit unit) noexcept;

/// Point-in-time copy of every registered metric, detached from the
/// live registry (safe to keep, print, serialize).
struct Snapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
    std::int64_t max = 0;
  };
  struct HistogramValue {
    std::string name;
    Unit unit = Unit::kNone;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double mean = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
    std::vector<std::pair<int, std::uint64_t>> buckets;  ///< non-empty only
  };

  bool enabled = true;
  std::vector<CounterValue> counters;    ///< sorted by name
  std::vector<GaugeValue> gauges;        ///< sorted by name
  std::vector<HistogramValue> histograms;///< sorted by name

  /// Stable, machine-parseable JSON object.
  std::string to_json() const;

  /// Console table (counters and gauges first, then per-stage timing
  /// rows with mean/p50/p99/max and totals).
  TextTable table(const std::string& title = "metrics") const;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Process-wide metric registry.  Lookup is by dotted name
/// ("ckpt.encode_ns"); the first lookup creates the metric, later
/// lookups return the same object.
///
/// Storage is a fixed-capacity pointer array per metric kind with an
/// atomically published count, so *reads* — snapshot(), the *_count()
/// / *_at() accessors — never lock and never allocate beyond snapshot
/// copies.  The *_at() accessors are async-signal-safe, which is what
/// lets the crash flight recorder (obs/flightrec.h) dump metric values
/// from a fatal-signal handler.  Registration stays mutex-guarded.
class Registry {
 public:
  /// Fixed capacity per metric kind.  Registration past this returns a
  /// shared overflow sink that is never reported in snapshots.
  static constexpr std::size_t kMaxPerKind = 1024;

  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, Unit unit = Unit::kNanoseconds);

  Snapshot snapshot() const;
  std::string to_json() const { return snapshot().to_json(); }

  /// Zero every metric (names stay registered; handles stay valid).
  void reset_all() noexcept;

  // Lock-free, allocation-free, async-signal-safe reads over the
  // published prefix.  Indices < *_count() stay valid forever; *_at()
  // returns nullptr past the end.  `name` (and `unit`) receive views
  // into immortal registry storage.
  std::size_t counter_count() const noexcept {
    return n_counters_.load(std::memory_order_acquire);
  }
  std::size_t gauge_count() const noexcept {
    return n_gauges_.load(std::memory_order_acquire);
  }
  std::size_t histogram_count() const noexcept {
    return n_histograms_.load(std::memory_order_acquire);
  }
  const Counter* counter_at(std::size_t i,
                            std::string_view* name = nullptr) const noexcept;
  const Gauge* gauge_at(std::size_t i,
                        std::string_view* name = nullptr) const noexcept;
  const Histogram* histogram_at(std::size_t i,
                                std::string_view* name = nullptr,
                                Unit* unit = nullptr) const noexcept;

 private:
  Registry() = default;

  template <typename T>
  struct Entry {
    std::string name;
    Unit unit = Unit::kNone;
    T metric;
  };

  std::mutex mu_;  ///< guards registration only, never reads
  // Entries are heap-allocated once and never freed while the process
  // runs, so metric addresses are stable; slot i is written before the
  // count advances past i (release/acquire pairing).
  Entry<Counter>* counters_[kMaxPerKind] = {};
  Entry<Gauge>* gauges_[kMaxPerKind] = {};
  Entry<Histogram>* histograms_[kMaxPerKind] = {};
  std::atomic<std::size_t> n_counters_{0};
  std::atomic<std::size_t> n_gauges_{0};
  std::atomic<std::size_t> n_histograms_{0};
};

/// Shorthand for Registry::instance().
inline Registry& registry() { return Registry::instance(); }

}  // namespace ickpt::obs

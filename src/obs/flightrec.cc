#include "obs/flightrec.h"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ickpt::obs::flightrec {

namespace {

constexpr std::size_t kMaxDir = 3072;
constexpr std::size_t kMaxPath = 4096;

// All state the signal path touches is preallocated by configure() and
// published through g_armed; none of it is ever freed.
struct State {
  char dir[kMaxDir];
  std::size_t last_events = 0;
  TraceEvent* events = nullptr;  ///< capacity last_events
  char* buf = nullptr;           ///< JSON staging for the signal path
  std::size_t buf_cap = 0;
};

State g_state;
std::atomic<bool> g_armed{false};
std::mutex g_mu;
std::atomic<bool> g_crash_dumped{false};

std::uint64_t realtime_ns() noexcept {
  timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// ------------------------- async-signal-safe formatting primitives

std::size_t fmt_u64(char* out, std::uint64_t v) noexcept {
  char tmp[24];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
  return n;
}

std::size_t fmt_i64(char* out, std::int64_t v) noexcept {
  if (v >= 0) return fmt_u64(out, static_cast<std::uint64_t>(v));
  out[0] = '-';
  // Negate via u64 so INT64_MIN is handled.
  return 1 + fmt_u64(out + 1, ~static_cast<std::uint64_t>(v) + 1);
}

/// Bump-pointer JSON writer over the preallocated buffer; silently
/// truncates when full (the dump stays parse-broken rather than the
/// process crashing harder).
struct Sink {
  char* buf;
  std::size_t cap;
  std::size_t len = 0;

  void raw(const char* s, std::size_t n) noexcept {
    if (len + n > cap) n = cap - len;
    std::memcpy(buf + len, s, n);
    len += n;
  }
  void lit(const char* s) noexcept { raw(s, std::strlen(s)); }
  void u64(std::uint64_t v) noexcept {
    char tmp[24];
    raw(tmp, fmt_u64(tmp, v));
  }
  void i64(std::int64_t v) noexcept {
    char tmp[24];
    raw(tmp, fmt_i64(tmp, v));
  }
  /// Metric / trace-point names are controlled identifiers; quotes and
  /// backslashes are dropped rather than escaped to stay alloc-free.
  void name(std::string_view s) noexcept {
    for (char c : s) {
      if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
        continue;
      }
      raw(&c, 1);
    }
  }
};

void append_events_json(Sink& s, const TraceEvent* ev, std::size_t n) {
  s.lit("\"events\":[");
  for (std::size_t i = 0; i < n; ++i) {
    const TraceEvent& e = ev[i];
    if (i != 0) s.lit(",");
    s.lit("{\"seq\":");
    s.u64(e.seq);
    s.lit(",\"ts_ns\":");
    s.u64(e.ts_ns);
    s.lit(",\"tid\":");
    s.u64(e.tid);
    s.lit(",\"name\":\"");
    s.name(trace_name_string(e.name_id));
    s.lit("\",\"phase\":\"");
    switch (e.phase) {
      case TracePhase::kBegin: s.lit("B"); break;
      case TracePhase::kEnd: s.lit("E"); break;
      case TracePhase::kInstant: s.lit("i"); break;
    }
    s.lit("\",\"arg0\":");
    s.u64(e.arg0);
    s.lit(",\"arg1\":");
    s.u64(e.arg1);
    s.lit("}");
  }
  s.lit("]");
}

/// Reduced metrics JSON via the lock-free registry accessors — the
/// only metrics view safe from signal context.
void append_metrics_json_signal_safe(Sink& s) {
  const Registry& reg = Registry::instance();
  s.lit("\"metrics\":{\"counters\":{");
  const std::size_t nc = reg.counter_count();
  for (std::size_t i = 0; i < nc; ++i) {
    std::string_view nm;
    const Counter* c = reg.counter_at(i, &nm);
    if (i != 0) s.lit(",");
    s.lit("\"");
    s.name(nm);
    s.lit("\":");
    s.u64(c->value());
  }
  s.lit("},\"gauges\":{");
  const std::size_t ng = reg.gauge_count();
  for (std::size_t i = 0; i < ng; ++i) {
    std::string_view nm;
    const Gauge* g = reg.gauge_at(i, &nm);
    if (i != 0) s.lit(",");
    s.lit("\"");
    s.name(nm);
    s.lit("\":{\"value\":");
    s.i64(g->value());
    s.lit(",\"max\":");
    s.i64(g->max());
    s.lit("}");
  }
  s.lit("},\"histograms\":{");
  const std::size_t nh = reg.histogram_count();
  for (std::size_t i = 0; i < nh; ++i) {
    std::string_view nm;
    const Histogram* h = reg.histogram_at(i, &nm);
    if (i != 0) s.lit(",");
    s.lit("\"");
    s.name(nm);
    s.lit("\":{\"count\":");
    s.u64(h->count());
    s.lit(",\"sum\":");
    s.u64(h->sum());
    s.lit(",\"min\":");
    s.u64(h->min());
    s.lit(",\"max\":");
    s.u64(h->max());
    s.lit("}");
  }
  s.lit("}}");
}

/// Build "<dir>/flightrec-<ts>.json" into `path` (cap kMaxPath).
void make_path(char* path, std::uint64_t ts) noexcept {
  std::size_t n = std::strlen(g_state.dir);
  std::memcpy(path, g_state.dir, n);
  const char* stem = "/flightrec-";
  std::memcpy(path + n, stem, std::strlen(stem));
  n += std::strlen(stem);
  n += fmt_u64(path + n, ts);
  const char* ext = ".json";
  std::memcpy(path + n, ext, std::strlen(ext) + 1);
}

// ---------------------------------------------------- crash handling

void crash_handler(int signo) {
  const char* what = "signal";
  switch (signo) {
    case SIGABRT: what = "SIGABRT"; break;
    case SIGBUS: what = "SIGBUS"; break;
    case SIGILL: what = "SIGILL"; break;
    case SIGFPE: what = "SIGFPE"; break;
    default: break;
  }
  dump_from_signal(what);
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

void configure(const std::string& dir, std::size_t last_events) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (dir.size() >= kMaxDir) return;
  std::memcpy(g_state.dir, dir.c_str(), dir.size() + 1);
  if (g_state.events == nullptr) {
    if (last_events == 0) last_events = 1;
    g_state.last_events = last_events;
    g_state.events = new TraceEvent[last_events];
    // ~200 B/event + room for a full registry of reduced histograms.
    g_state.buf_cap = 64 * 1024 + last_events * 224;
    g_state.buf = new char[g_state.buf_cap];
  }
  g_armed.store(true, std::memory_order_release);
}

bool configured() noexcept {
  return g_armed.load(std::memory_order_acquire);
}

std::string dump(std::string_view reason) {
  if (!configured()) return "";
  std::lock_guard<std::mutex> lock(g_mu);
  const std::uint64_t ts = realtime_ns();

  std::string out;
  out.reserve(g_state.buf_cap);
  out += "{\"flightrec\":1,\"reason\":\"";
  for (char c : reason) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  out += "\",\"signal_context\":false,\"timestamp_unix_ns\":";
  {
    char tmp[24];
    out.append(tmp, fmt_u64(tmp, ts));
  }
  out += ",\"metrics\":";
  out += registry().to_json();
  out += ",\"trace\":{";
  TraceRing* ring = trace_ring();
  std::size_t n = 0;
  if (ring != nullptr) {
    n = ring->read_recent(g_state.events, g_state.last_events);
  }
  {
    char tmp[24];
    out += "\"emitted\":";
    out.append(tmp, fmt_u64(tmp, ring != nullptr ? ring->emitted() : 0));
    out += ",\"dropped\":";
    out.append(tmp, fmt_u64(tmp, ring != nullptr ? ring->dropped() : 0));
    out += ',';
  }
  {
    // Reuse the signal-path event formatter over a scratch sink.
    Sink s{g_state.buf, g_state.buf_cap};
    append_events_json(s, g_state.events, n);
    out.append(s.buf, s.len);
  }
  out += "}}";

  char path[kMaxPath];
  make_path(path, ts);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return "";
  f.write(out.data(), static_cast<std::streamsize>(out.size()));
  f.close();
  if (!f) return "";
  return path;
}

void install_crash_handler() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = crash_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGABRT, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);
  ::sigaction(SIGILL, &sa, nullptr);
  ::sigaction(SIGFPE, &sa, nullptr);
}

void dump_from_signal(const char* reason) noexcept {
  if (!configured()) return;
  if (g_crash_dumped.exchange(true, std::memory_order_acq_rel)) return;

  const std::uint64_t ts = realtime_ns();
  Sink s{g_state.buf, g_state.buf_cap};
  s.lit("{\"flightrec\":1,\"reason\":\"");
  s.name(reason);
  s.lit("\",\"signal_context\":true,\"timestamp_unix_ns\":");
  s.u64(ts);
  s.lit(",");
  append_metrics_json_signal_safe(s);
  s.lit(",\"trace\":{");
  TraceRing* ring = trace_ring();
  std::size_t n = 0;
  if (ring != nullptr) {
    n = ring->read_recent(g_state.events, g_state.last_events);
  }
  s.lit("\"emitted\":");
  s.u64(ring != nullptr ? ring->emitted() : 0);
  s.lit(",\"dropped\":");
  s.u64(ring != nullptr ? ring->dropped() : 0);
  s.lit(",");
  append_events_json(s, g_state.events, n);
  s.lit("}}");

  char path[kMaxPath];
  make_path(path, ts);
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  std::size_t off = 0;
  while (off < s.len) {
    const ssize_t w = ::write(fd, s.buf + off, s.len - off);
    if (w <= 0) break;
    off += static_cast<std::size_t>(w);
  }
  ::close(fd);
}

}  // namespace ickpt::obs::flightrec

// RAII stage timers over obs::Histogram.
//
// ScopedTimer reads the monotonic clock twice and records the elapsed
// nanoseconds; when recording is disabled (obs::set_enabled(false)) it
// skips both clock reads, so idle instrumentation costs one branch.
// Everything here is allocation-free and, like Histogram::record,
// safe from the SIGSEGV fault handler.
#pragma once

#include <cstdint>

#include "obs/metrics.h"

namespace ickpt::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) noexcept
      : h_(enabled() ? &h : nullptr), start_(h_ != nullptr ? now_ns() : 0) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() { stop(); }

  /// Record now instead of at scope exit (idempotent).
  void stop() noexcept {
    if (h_ != nullptr) {
      h_->record(now_ns() - start_);
      h_ = nullptr;
    }
  }

  /// Abandon without recording (e.g. the guarded operation failed and
  /// its latency would pollute the distribution).
  void cancel() noexcept { h_ = nullptr; }

 private:
  Histogram* h_;
  std::uint64_t start_;
};

/// Manual start/stop pair for stall accounting across non-lexical
/// scopes (condition-variable waits, future waits).
class StallClock {
 public:
  StallClock() noexcept : start_(enabled() ? now_ns() : 0) {}

  /// Elapsed ns since construction; 0 when recording is disabled.
  std::uint64_t elapsed_ns() const noexcept {
    return start_ != 0 ? now_ns() - start_ : 0;
  }

 private:
  std::uint64_t start_;
};

}  // namespace ickpt::obs

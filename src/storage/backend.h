// Storage backends for checkpoint data.
//
// The paper sizes checkpointing against two sinks (Section 3): the
// interconnect (QsNet II, 900 MB/s) and secondary storage (SCSI,
// 320 MB/s).  The backends here provide real persistence (file), fast
// in-memory storage (for diskless-style checkpointing and tests), a
// byte-counting null sink, a bandwidth-throttling decorator that
// models the 2004 ceilings, and a fault-injecting decorator for
// failure testing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace ickpt::obs {
class Counter;
class Histogram;
}  // namespace ickpt::obs

namespace ickpt::storage {

/// Sequential writer for one object.  close() must be called for the
/// object to become visible; destroying an unclosed writer aborts it.
class Writer {
 public:
  virtual ~Writer() = default;
  virtual Status write(std::span<const std::byte> data) = 0;
  virtual Status close() = 0;
  virtual std::uint64_t bytes_written() const noexcept = 0;
};

/// Sequential reader for one object.  Backends that can serve byte
/// ranges also implement read_at(), which the parallel restore path
/// uses to fetch page payloads without streaming the whole object.
class Reader {
 public:
  virtual ~Reader() = default;
  /// Reads up to out.size() bytes; returns the count (0 at EOF).
  virtual Result<std::size_t> read(std::span<std::byte> out) = 0;
  virtual std::uint64_t size() const noexcept = 0;

  /// True when read_at() is implemented.
  virtual bool supports_read_at() const noexcept { return false; }

  /// Reads up to out.size() bytes starting at `offset`; returns the
  /// count (0 when offset is at or past EOF).  May reposition the
  /// sequential cursor — callers must not interleave read() and
  /// read_at() on the same reader.
  virtual Result<std::size_t> read_at(std::uint64_t offset,
                                      std::span<std::byte> out) {
    (void)offset;
    (void)out;
    return unsupported("read_at not supported by this backend");
  }

  /// True when map_at() is implemented.
  virtual bool supports_map() const noexcept { return false; }

  /// Zero-copy view of exactly [offset, offset+length) of the object.
  /// The span stays valid until the Reader is destroyed; the object is
  /// immutable, so callers may hold it across decode.  File-backed
  /// readers serve this from one lazily created read-only mmap of the
  /// whole object (payload decode then reads mapped pages instead of
  /// read()+memcpy); memory-backed readers return a view of the stored
  /// buffer.  Ranges past EOF are kCorruption (the caller planned them
  /// from the object's own structure, so a short object is damage).
  virtual Result<std::span<const std::byte>> map_at(std::uint64_t offset,
                                                    std::size_t length) {
    (void)offset;
    (void)length;
    return unsupported("map_at not supported by this backend");
  }
};

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  virtual Result<std::unique_ptr<Writer>> create(const std::string& key) = 0;
  virtual Result<std::unique_ptr<Reader>> open(const std::string& key) = 0;
  virtual Status remove(const std::string& key) = 0;
  virtual Result<std::vector<std::string>> list() = 0;
  virtual bool exists(const std::string& key) = 0;

  /// Cumulative payload bytes accepted by close()d writers.
  virtual std::uint64_t total_bytes_stored() const noexcept = 0;
};

struct FileBackendOptions {
  /// Write objects with O_DIRECT through an aligned staging buffer,
  /// bypassing the page cache (the encode pipeline emits full-object
  /// buffers, so writes are large and sequential — ideal direct-I/O
  /// shape).  The filesystem's logical block size is probed once per
  /// backend directory (512 B, then 4 KiB); filesystems that refuse
  /// O_DIRECT (tmpfs, some overlayfs) fall back transparently to
  /// buffered writes and increment the storage.direct_io_fallback
  /// counter.  close()/rename visibility and flush() durability
  /// semantics are identical in both modes.
  bool direct_io = false;

  /// Make close() crash-durable: fdatasync the object bytes before the
  /// rename and fsync the parent directory after it, so a successfully
  /// returned close() survives power loss — never a visible-but-empty
  /// or lost object.  The rename alone orders visibility only within a
  /// running kernel.  Costs two device syncs per object (counted in
  /// storage.fsync_calls, timed in storage.publish_sync_ns, spanned as
  /// ckpt.publish_sync); turn off only for stores whose loss is
  /// acceptable (bench scratch, caches).
  bool durable_publish = true;
};

/// Test-only fault hooks for the file writers (no-ops in production).
namespace testing_hooks {
/// Force the O_DIRECT block size instead of probing (0 = probe again).
/// Lets tests exercise DirectFileWriter on filesystems whose probe
/// would refuse O_DIRECT.
void force_direct_block_size(std::size_t block);
/// Make the next `n` data-write syscalls issued by DirectFileWriter
/// fail with EINVAL (both the direct and the buffered path), so tests
/// can drive the mid-write fallback/recovery logic on any filesystem.
void fail_writes_einval(int n);
}  // namespace testing_hooks

/// Files under a directory; keys may contain '/' (subdirectories are
/// created on demand).  Writes go to a ".tmp" sibling and are renamed
/// on close so a crash never leaves a half-visible checkpoint.
Result<std::unique_ptr<StorageBackend>> make_file_backend(
    const std::string& directory);
Result<std::unique_ptr<StorageBackend>> make_file_backend(
    const std::string& directory, const FileBackendOptions& options);

/// In-memory objects (thread-safe).
std::unique_ptr<StorageBackend> make_memory_backend();

/// Discards all data, keeps byte counts (bandwidth quantification).
std::unique_ptr<StorageBackend> make_null_backend();

/// Decorator: models a fixed-bandwidth device.  Accumulates the
/// virtual seconds each write would take at `bytes_per_second`; when
/// `really_sleep` is set it also stalls the caller (for wall-clock
/// experiments).  The decorated backend must outlive the decorator.
class ThrottledBackend : public StorageBackend {
 public:
  ThrottledBackend(StorageBackend& inner, double bytes_per_second,
                   bool really_sleep = false);

  Result<std::unique_ptr<Writer>> create(const std::string& key) override;
  Result<std::unique_ptr<Reader>> open(const std::string& key) override;
  Status remove(const std::string& key) override;
  Result<std::vector<std::string>> list() override;
  bool exists(const std::string& key) override;
  std::uint64_t total_bytes_stored() const noexcept override;

  /// Total modelled transfer time so far, in seconds.
  double modeled_seconds() const noexcept;

 private:
  class ThrottledWriter;
  StorageBackend& inner_;
  double bytes_per_second_;
  bool really_sleep_;
  std::shared_ptr<std::atomic<std::uint64_t>> throttled_bytes_;
};

/// Decorator: publishes per-object write metrics to the process-wide
/// obs registry under `prefix` — "<prefix>.objects" / "<prefix>.bytes"
/// counters, a "<prefix>.write_ns" latency histogram (create() to
/// close(), as seen by the writing thread) and a "<prefix>.object_bytes"
/// size histogram.  Pure pass-through otherwise; the decorated backend
/// must outlive the decorator.
class MeteredBackend : public StorageBackend {
 public:
  explicit MeteredBackend(StorageBackend& inner,
                          const std::string& prefix = "storage");

  Result<std::unique_ptr<Writer>> create(const std::string& key) override;
  Result<std::unique_ptr<Reader>> open(const std::string& key) override;
  Status remove(const std::string& key) override;
  Result<std::vector<std::string>> list() override;
  bool exists(const std::string& key) override;
  std::uint64_t total_bytes_stored() const noexcept override;

 private:
  class MeteredWriter;
  StorageBackend& inner_;
  // Registry-owned metric objects; immortal, so writers may hold them.
  obs::Counter& objects_;
  obs::Counter& bytes_;
  obs::Histogram& write_ns_;
  obs::Histogram& object_bytes_;
};

/// Decorator: fails writes after `fail_after_bytes` total payload
/// bytes (kIoError), for failure-injection tests.
class FaultyBackend : public StorageBackend {
 public:
  FaultyBackend(StorageBackend& inner, std::uint64_t fail_after_bytes);

  Result<std::unique_ptr<Writer>> create(const std::string& key) override;
  Result<std::unique_ptr<Reader>> open(const std::string& key) override;
  Status remove(const std::string& key) override;
  Result<std::vector<std::string>> list() override;
  bool exists(const std::string& key) override;
  std::uint64_t total_bytes_stored() const noexcept override;

 private:
  class FaultyWriter;
  StorageBackend& inner_;
  std::shared_ptr<std::atomic<std::uint64_t>> budget_;
};

}  // namespace ickpt::storage

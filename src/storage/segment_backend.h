// Log-structured segment storage backend.
//
// One-file-per-object (FileBackend) dies at millions of small
// incrementals: every object costs an open, a rename, two syncs and a
// directory entry, and listing degenerates into a recursive scan.
// SegmentBackend packs objects into large append-only segment files
// instead — the design of stdchk's checkpoint store and the kivaloo
// lbs append-only block store:
//
//   * writes are strictly sequential appends into the active segment;
//     a commit is one record append plus (when durable) one fdatasync
//     on an already-open fd — no per-object open/rename/dir-sync;
//   * an in-memory index (key -> segment/offset/length) is rebuilt on
//     open, from a validated on-disk footer for sealed segments and by
//     a record scan (torn tail dropped) for unsealed ones;
//   * reads are served by pread / mmap straight out of the segment, so
//     Reader::read_at and map_at work exactly as with FileBackend;
//   * delete appends a tombstone; space comes back via compact(),
//     which rewrites the live objects of mostly-dead segments into the
//     active one and unlinks the husk — restartable and idempotent
//     (newest record wins on rebuild, so a crash mid-compaction leaves
//     harmless duplicates, never data loss).
//
// On-disk layout is documented in docs/FORMAT.md ("Segment store");
// the durability contract is DESIGN.md §12.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "storage/backend.h"

namespace ickpt::storage {

struct SegmentBackendOptions {
  /// Roll to a fresh segment once the active one exceeds this many
  /// bytes (the rolled segment is sealed with a footer).  Large enough
  /// to amortize per-file cost, small enough that compaction rewrites
  /// stay cheap.
  std::uint64_t segment_bytes = 64ull << 20;

  /// fdatasync the segment after every committed record, so close()
  /// returning OK means the object survives a crash (same contract as
  /// FileBackendOptions::durable_publish).  Off = visibility without
  /// durability until the next sync()/seal; only for stores whose loss
  /// is acceptable.
  bool durable = true;

  /// compact() rewrites a sealed segment when its live fraction falls
  /// strictly below this threshold.
  double compact_live_fraction = 0.5;
};

/// Aggregate shape of the store, for tests, fsck and capacity math.
struct SegmentStoreStats {
  std::uint64_t segments = 0;        ///< segment files on disk
  std::uint64_t live_objects = 0;    ///< keys in the index
  std::uint64_t live_bytes = 0;      ///< payload bytes still referenced
  std::uint64_t disk_bytes = 0;      ///< total segment file bytes
  std::uint64_t torn_records = 0;    ///< records dropped by open() scans
};

class SegmentBackend : public StorageBackend {
 public:
  ~SegmentBackend() override = default;

  /// Open (or create) the store under `directory`.  Rebuilds the index
  /// from every `seg-*.seg` present; a torn tail on the last-written
  /// segment is ignored (the interrupted record never committed).
  static Result<std::unique_ptr<SegmentBackend>> open_store(
      const std::string& directory, const SegmentBackendOptions& options);

  /// Force the unsynced tail of the active segment to the device.
  /// A no-op when `durable` already syncs every commit.
  virtual Status sync() = 0;

  /// Segment GC: rewrite the live objects of every sealed segment
  /// whose live fraction is below options.compact_live_fraction into
  /// the active segment, then unlink it.  Safe to re-run at any time;
  /// a crash between the rewrite and the unlink is repaired by the
  /// next open (newer copies win) + compact (re-unlinks).
  virtual Status compact() = 0;

  virtual SegmentStoreStats stats() const = 0;
};

/// Factory matching make_file_backend's shape.
Result<std::unique_ptr<StorageBackend>> make_segment_backend(
    const std::string& directory);
Result<std::unique_ptr<StorageBackend>> make_segment_backend(
    const std::string& directory, const SegmentBackendOptions& options);

/// True when `directory` holds a segment store (used by fsck and the
/// CLI to auto-select the backend for an existing store).
bool segment_store_present(const std::string& directory);

}  // namespace ickpt::storage

// AsyncWriter: double-buffered background persistence.
//
// The paper's feasibility argument compares IB against *device*
// bandwidth; hiding the device latency from the application requires
// overlapping checkpoint writes with computation.  AsyncWriter queues
// complete checkpoint objects and streams them to the backend from a
// worker thread, with a bounded buffer so memory stays predictable.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "storage/backend.h"

namespace ickpt::storage {

class AsyncWriter {
 public:
  struct Options {
    /// Max bytes queued before submit() blocks (back-pressure).
    std::size_t max_queued_bytes = 256 * 1024 * 1024;
  };

  /// The backend must outlive the writer.
  explicit AsyncWriter(StorageBackend& backend)
      : AsyncWriter(backend, default_options()) {}
  AsyncWriter(StorageBackend& backend, Options options);

  static Options default_options() { return Options{}; }
  ~AsyncWriter();

  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  /// Queue one complete object.  Blocks while the queue is full;
  /// returns immediately otherwise.  Fails if the writer has already
  /// recorded a backend error (fail-stop: no silent data loss).
  Status submit(std::string key, std::vector<std::byte> data);

  /// Block until everything queued so far is durably in the backend.
  /// Returns the first backend error encountered, if any.
  Status flush();

  std::uint64_t objects_written() const;
  std::uint64_t bytes_written() const;
  std::size_t queued_bytes() const;

 private:
  struct Item {
    std::string key;
    std::vector<std::byte> data;
  };

  void run();

  StorageBackend& backend_;
  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_producer_;
  std::condition_variable cv_consumer_;
  std::deque<Item> queue_;
  std::size_t queued_bytes_ = 0;
  std::uint64_t objects_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  Status first_error_;
  bool stopping_ = false;
  bool idle_ = true;
  std::thread worker_;
};

}  // namespace ickpt::storage

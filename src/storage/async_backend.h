// Adapter: expose an AsyncWriter as a StorageBackend.
//
// Writers buffer the whole object in memory and submit it to the
// AsyncWriter's worker on close(), so a Checkpointer writing through
// this backend overlaps checkpoint I/O with the application's next
// burst — the double-buffering a production deployment needs to hide
// the 320 MB/s disk behind the computation.
//
// Reads, listing and removal pass through to the AsyncWriter's
// underlying backend *after* a flush, so restore always sees a
// consistent store.
#pragma once

#include <memory>

#include "storage/async_writer.h"
#include "storage/backend.h"

namespace ickpt::storage {

/// `writer` and its underlying backend must outlive the adapter.
std::unique_ptr<StorageBackend> make_async_backend(
    AsyncWriter& writer, StorageBackend& underlying);

}  // namespace ickpt::storage

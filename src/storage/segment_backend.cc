#include "storage/segment_backend.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <vector>

#include "common/crc32.h"
#include "common/io_util.h"
#include "common/page.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace ickpt::storage {

namespace fs = std::filesystem;

namespace {

// ------------------------------------------------------------ on-disk
// Authoritative prose twin: docs/FORMAT.md, "Segment store layout".

#pragma pack(push, 1)

/// Precedes every record (object or tombstone).  header_crc covers the
/// first 24 bytes plus the key, so a torn or misaligned header is
/// rejected before its lengths are trusted.
struct RecordHeader {
  std::uint32_t magic = 0x47455349;  // "ISEG"
  std::uint8_t type = 0;             // 1 object, 2 tombstone
  std::uint8_t reserved[3] = {0, 0, 0};
  std::uint32_t key_len = 0;
  std::uint64_t payload_len = 0;
  std::uint32_t payload_crc = 0;
  std::uint32_t header_crc = 0;
};
static_assert(sizeof(RecordHeader) == 28);

/// One footer entry per record, in record order (replay order matters:
/// later records supersede earlier ones).
struct FooterEntry {
  std::uint8_t type = 0;
  std::uint32_t key_len = 0;
  std::uint64_t payload_off = 0;  // absolute offset of payload in segment
  std::uint64_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};
static_assert(sizeof(FooterEntry) == 25);

/// Fixed-size trailer at EOF of a sealed segment; locates and guards
/// the entries block so open() can index without scanning records.
struct FooterTrailer {
  std::uint32_t magic = 0x52544649;  // "IFTR"
  std::uint32_t entry_count = 0;
  std::uint64_t entries_bytes = 0;
  std::uint32_t entries_crc = 0;
  std::uint32_t end_magic = 0x444e4549;  // "IEND"
};
static_assert(sizeof(FooterTrailer) == 24);

#pragma pack(pop)

constexpr std::uint8_t kObject = 1;
constexpr std::uint8_t kTombstone = 2;
constexpr std::uint32_t kMaxKeyLen = 4096;

std::string segment_name(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg-%010llu.seg",
                static_cast<unsigned long long>(id));
  return buf;
}

/// seg-<10 digits>.seg -> id; nullopt for anything else.
bool parse_segment_name(const std::string& name, std::uint64_t* id) {
  if (name.size() != 18 || name.rfind("seg-", 0) != 0 ||
      name.compare(14, 4, ".seg") != 0) {
    return false;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 4; i < 14; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *id = v;
  return true;
}

std::uint32_t header_crc(const RecordHeader& h, std::string_view key) {
  Crc32 crc;
  crc.update(&h, offsetof(RecordHeader, header_crc));
  crc.update(key.data(), key.size());
  return crc.value();
}

struct SegmentMetrics {
  obs::Counter& fsync_calls;
  obs::Histogram& publish_sync_ns;
  obs::Counter& appends;
  obs::Counter& seals;
  obs::Counter& compactions;
  obs::Counter& torn_records;
  std::uint16_t publish_span;

  static SegmentMetrics& get() {
    auto& r = obs::registry();
    static SegmentMetrics m{
        r.counter("storage.fsync_calls"),
        r.histogram("storage.publish_sync_ns"),
        r.counter("storage.segment_appends"),
        r.counter("storage.segment_seals"),
        r.counter("storage.segment_compactions"),
        r.counter("storage.segment_torn_records"),
        obs::trace_name("ckpt.publish_sync", obs::TraceCat::kStorage)};
    return m;
  }
};

// ------------------------------------------------------------ in-memory

/// One segment file.  Immutable once it stops being the active
/// segment; readers share it via shared_ptr so compaction can unlink
/// the path while reads are in flight (the fd keeps the inode alive).
struct SegmentFile {
  std::uint64_t id = 0;
  fs::path path;
  int fd = -1;                    ///< O_RDWR (active) or O_RDONLY
  std::uint64_t record_bytes = 0; ///< bytes of record data (no footer)
  std::uint64_t live_bytes = 0;   ///< payload bytes the index points at
  bool sealed = false;

  ~SegmentFile() {
    if (fd >= 0) ::close(fd);
  }
};

using SegPtr = std::shared_ptr<SegmentFile>;

/// A record as known to the index / replay.
struct Rec {
  std::uint8_t type = 0;
  std::string key;
  std::uint64_t payload_off = 0;
  std::uint64_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};

struct IndexEntry {
  SegPtr seg;
  std::uint64_t payload_off = 0;
  std::uint64_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};

Status pread_exact(int fd, void* buf, std::size_t n, std::uint64_t off,
                   const fs::path& path) {
  std::size_t done = 0;
  auto* p = static_cast<std::byte*>(buf);
  while (done < n) {
    const ssize_t got =
        ::pread(fd, p + done, n - done, static_cast<off_t>(off + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return io_error("pread failed: " + path.string() + ": " +
                      std::strerror(errno));
    }
    if (got == 0) return corruption("short read in " + path.string());
    done += static_cast<std::size_t>(got);
  }
  return Status::ok();
}

// -------------------------------------------------------------- reader

/// Reader over one committed object.  read()/read_at() are pread into
/// the shared segment fd; map_at() makes one private read-only mapping
/// of the object's byte range (page-aligned window), owned by this
/// reader — identical lifetime rules to FileReader's whole-object map.
class SegmentReader final : public Reader {
 public:
  SegmentReader(SegPtr seg, std::uint64_t payload_off,
                std::uint64_t payload_len)
      : seg_(std::move(seg)), off_(payload_off), len_(payload_len) {}

  ~SegmentReader() override {
    if (map_ != nullptr) ::munmap(map_, map_len_);
  }

  Result<std::size_t> read(std::span<std::byte> out) override {
    ICKPT_ASSIGN_OR_RETURN(got, read_at(pos_, out));
    pos_ += got;
    return got;
  }

  bool supports_read_at() const noexcept override { return true; }
  Result<std::size_t> read_at(std::uint64_t offset,
                              std::span<std::byte> out) override {
    if (offset >= len_) return std::size_t{0};
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(out.size(),
                                                         len_ - offset));
    ICKPT_RETURN_IF_ERROR(
        pread_exact(seg_->fd, out.data(), n, off_ + offset, seg_->path));
    return n;
  }

  bool supports_map() const noexcept override { return true; }
  Result<std::span<const std::byte>> map_at(std::uint64_t offset,
                                            std::size_t length) override {
    if (length == 0) return std::span<const std::byte>{};
    if (offset > len_ || length > len_ - offset) {
      return corruption("map_at past end of object: " + seg_->path.string());
    }
    if (map_ == nullptr) {
      const std::uint64_t page = page_size();
      const std::uint64_t aligned = off_ & ~(page - 1);
      map_delta_ = static_cast<std::size_t>(off_ - aligned);
      map_len_ = static_cast<std::size_t>(len_) + map_delta_;
      void* m = ::mmap(nullptr, map_len_, PROT_READ, MAP_PRIVATE, seg_->fd,
                       static_cast<off_t>(aligned));
      if (m == MAP_FAILED) {
        map_len_ = 0;
        return io_error("mmap failed: " + seg_->path.string());
      }
      map_ = m;
    }
    return std::span<const std::byte>{
        static_cast<const std::byte*>(map_) + map_delta_ + offset, length};
  }

  std::uint64_t size() const noexcept override { return len_; }

 private:
  SegPtr seg_;
  std::uint64_t off_, len_;
  std::uint64_t pos_ = 0;
  void* map_ = nullptr;
  std::size_t map_len_ = 0;
  std::size_t map_delta_ = 0;
};

// ------------------------------------------------------------- backend

class SegmentBackendImpl final : public SegmentBackend {
 public:
  SegmentBackendImpl(fs::path dir, SegmentBackendOptions options)
      : dir_(std::move(dir)), options_(options) {}

  ~SegmentBackendImpl() override {
    std::lock_guard<std::mutex> lock(mu_);
    (void)seal_active_locked();  // best effort: footer for fast reopen
  }

  Status init();

  Result<std::unique_ptr<Writer>> create(const std::string& key) override;

  Result<std::unique_ptr<Reader>> open(const std::string& key) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) return not_found("no such object: " + key);
    return std::unique_ptr<Reader>(new SegmentReader(
        it->second.seg, it->second.payload_off, it->second.payload_len));
  }

  Status remove(const std::string& key) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) return not_found("no such object: " + key);
    ICKPT_RETURN_IF_ERROR(append_locked(kTombstone, key, {}, 0));
    drop_entry_locked(it);
    return Status::ok();
  }

  Result<std::vector<std::string>> list() override {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> keys;
    keys.reserve(index_.size());
    for (const auto& [k, e] : index_) keys.push_back(k);
    return keys;  // std::map iterates sorted
  }

  bool exists(const std::string& key) override {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.count(key) > 0;
  }

  std::uint64_t total_bytes_stored() const noexcept override {
    return total_.load(std::memory_order_relaxed);
  }

  Status sync() override {
    std::lock_guard<std::mutex> lock(mu_);
    return sync_active_locked();
  }

  Status compact() override;

  SegmentStoreStats stats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    SegmentStoreStats s;
    s.segments = segments_.size() + (active_ != nullptr ? 1 : 0);
    s.live_objects = index_.size();
    s.torn_records = torn_records_;
    for (const auto& [k, e] : index_) s.live_bytes += e.payload_len;
    auto add_disk = [&s](const SegPtr& seg) {
      std::error_code ec;
      const auto sz = fs::file_size(seg->path, ec);
      if (!ec) s.disk_bytes += sz;
    };
    for (const auto& [id, seg] : segments_) add_disk(seg);
    if (active_ != nullptr) add_disk(active_);
    return s;
  }

  /// Commit one buffered object (Writer::close path).
  Status commit(const std::string& key, std::span<const std::byte> payload) {
    if (key.empty() || key.size() > kMaxKeyLen) {
      return invalid_argument("bad key length: " + key);
    }
    const std::uint32_t crc = crc32(payload);
    std::lock_guard<std::mutex> lock(mu_);
    ICKPT_RETURN_IF_ERROR(append_locked(kObject, key, payload, crc));
    auto it = index_.find(key);
    if (it != index_.end()) drop_entry_locked(it);
    // append_locked may have rolled to a fresh segment, so derive the
    // offset from where the record actually landed.
    index_[key] = IndexEntry{active_, active_end_ - payload.size(),
                             payload.size(), crc};
    active_->live_bytes += payload.size();
    total_.fetch_add(payload.size(), std::memory_order_relaxed);
    return Status::ok();
  }

 private:
  class SegmentWriter;

  /// Remove `it` from the index and return the accounting to its
  /// segment.  Caller holds mu_.
  void drop_entry_locked(std::map<std::string, IndexEntry>::iterator it) {
    it->second.seg->live_bytes -= it->second.payload_len;
    index_.erase(it);
  }

  /// Append one record to the active segment (rolling/creating it as
  /// needed) and, when durable, sync it.  Caller holds mu_.
  Status append_locked(std::uint8_t type, const std::string& key,
                       std::span<const std::byte> payload,
                       std::uint32_t payload_crc) {
    if (active_ == nullptr || active_end_ >= options_.segment_bytes) {
      ICKPT_RETURN_IF_ERROR(seal_active_locked());
      ICKPT_RETURN_IF_ERROR(start_segment_locked());
    }
    RecordHeader h;
    h.type = type;
    h.key_len = static_cast<std::uint32_t>(key.size());
    h.payload_len = payload.size();
    h.payload_crc = payload_crc;
    h.header_crc = header_crc(h, key);

    // One contiguous append: header || key || payload.  Sequential
    // writes only — the whole point of the log structure.
    buf_.clear();
    buf_.reserve(sizeof h + key.size() +
                 (payload.size() < (1u << 20) ? payload.size() : 0));
    const auto* hb = reinterpret_cast<const std::byte*>(&h);
    buf_.insert(buf_.end(), hb, hb + sizeof h);
    const auto* kb = reinterpret_cast<const std::byte*>(key.data());
    buf_.insert(buf_.end(), kb, kb + key.size());
    auto st = ioutil::write_full(active_->fd, buf_);
    if (st.is_ok() && !payload.empty()) {
      st = ioutil::write_full(active_->fd, payload);
    }
    if (!st.is_ok()) {
      // The tail is now garbage; the next open()'s scan drops it.  Put
      // the cursor back so in-process retries overwrite it too.
      (void)::ftruncate(active_->fd, static_cast<off_t>(active_end_));
      (void)::lseek(active_->fd, static_cast<off_t>(active_end_), SEEK_SET);
      return st;
    }
    active_end_ += sizeof h + key.size() + payload.size();
    active_->record_bytes = active_end_;
    active_records_.push_back(Rec{type, key,
                                  active_end_ - payload.size(),
                                  payload.size(), payload_crc});
    unsynced_ = true;
    SegmentMetrics::get().appends.inc();
    if (options_.durable) ICKPT_RETURN_IF_ERROR(sync_active_locked());
    return Status::ok();
  }

  Status sync_active_locked() {
    if (!unsynced_ || active_ == nullptr) return Status::ok();
    auto& m = SegmentMetrics::get();
    obs::ScopedTimer timer(m.publish_sync_ns);
    obs::TraceSpan span(m.publish_span);
    m.fsync_calls.inc();
    if (::fdatasync(active_->fd) != 0) {
      return io_error("fdatasync failed: " + active_->path.string());
    }
    unsynced_ = false;
    return Status::ok();
  }

  Status start_segment_locked() {
    auto seg = std::make_shared<SegmentFile>();
    seg->id = next_id_++;
    seg->path = dir_ / segment_name(seg->id);
    seg->fd = ::open(seg->path.c_str(),
                     O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (seg->fd < 0) {
      return io_error("cannot create segment: " + seg->path.string() + ": " +
                      std::strerror(errno));
    }
    // The segment file's existence must itself survive a crash before
    // anything committed into it can be trusted durable.
    if (options_.durable) {
      int dfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
      if (dfd >= 0) {
        SegmentMetrics::get().fsync_calls.inc();
        (void)::fsync(dfd);
        ::close(dfd);
      }
    }
    active_ = std::move(seg);
    active_end_ = 0;
    active_records_.clear();
    unsynced_ = false;
    return Status::ok();
  }

  /// Write the footer for the active segment and retire it to the
  /// read-only set.  Caller holds mu_.
  Status seal_active_locked() {
    if (active_ == nullptr) return Status::ok();
    // Entries block, in record order.
    buf_.clear();
    for (const Rec& r : active_records_) {
      FooterEntry e;
      e.type = r.type;
      e.key_len = static_cast<std::uint32_t>(r.key.size());
      e.payload_off = r.payload_off;
      e.payload_len = r.payload_len;
      e.payload_crc = r.payload_crc;
      const auto* eb = reinterpret_cast<const std::byte*>(&e);
      buf_.insert(buf_.end(), eb, eb + sizeof e);
      const auto* kb = reinterpret_cast<const std::byte*>(r.key.data());
      buf_.insert(buf_.end(), kb, kb + r.key.size());
    }
    FooterTrailer t;
    t.entry_count = static_cast<std::uint32_t>(active_records_.size());
    t.entries_bytes = buf_.size();
    t.entries_crc = crc32(buf_);
    const auto* tb = reinterpret_cast<const std::byte*>(&t);
    buf_.insert(buf_.end(), tb, tb + sizeof t);
    ICKPT_RETURN_IF_ERROR(ioutil::write_full(active_->fd, buf_));
    unsynced_ = true;
    ICKPT_RETURN_IF_ERROR(sync_active_locked());
    active_->sealed = true;
    SegmentMetrics::get().seals.inc();
    segments_[active_->id] = std::move(active_);
    active_ = nullptr;
    active_records_.clear();
    active_end_ = 0;
    return Status::ok();
  }

  /// Records of an on-disk segment, via footer when sealed, else by a
  /// validating scan.  `validate_payloads` re-CRCs every payload (used
  /// on open for unsealed segments, where the tail may be torn).
  Result<std::vector<Rec>> load_records(const SegPtr& seg,
                                        std::uint64_t file_size,
                                        bool* sealed_out);

  Status replay_segment_locked(const SegPtr& seg,
                               const std::vector<Rec>& recs) {
    for (const Rec& r : recs) {
      auto it = index_.find(r.key);
      if (it != index_.end()) drop_entry_locked(it);
      if (r.type == kObject) {
        index_[r.key] = IndexEntry{seg, r.payload_off, r.payload_len,
                                   r.payload_crc};
        seg->live_bytes += r.payload_len;
      }
    }
    return Status::ok();
  }

  fs::path dir_;
  SegmentBackendOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, IndexEntry> index_;
  std::map<std::uint64_t, SegPtr> segments_;  ///< sealed / read-only
  SegPtr active_;
  std::uint64_t active_end_ = 0;
  std::vector<Rec> active_records_;
  std::vector<std::byte> buf_;  ///< append/footer scratch (under mu_)
  std::uint64_t next_id_ = 0;
  std::uint64_t torn_records_ = 0;
  bool unsynced_ = false;
  std::atomic<std::uint64_t> total_{0};
};

/// Buffers the object, then commits it as one record on close().
/// Objects are bounded by checkpoint size, which the encode pipeline
/// already materializes in memory — same cost profile as MemoryWriter.
class SegmentBackendImpl::SegmentWriter final : public Writer {
 public:
  SegmentWriter(SegmentBackendImpl& backend, std::string key)
      : backend_(backend), key_(std::move(key)) {}

  Status write(std::span<const std::byte> data) override {
    if (closed_) return failed_precondition("write after close");
    buf_.insert(buf_.end(), data.begin(), data.end());
    return Status::ok();
  }

  Status close() override {
    if (closed_) return Status::ok();
    closed_ = true;
    bytes_ = buf_.size();
    auto st = backend_.commit(key_, buf_);
    buf_.clear();
    buf_.shrink_to_fit();
    return st;
  }

  std::uint64_t bytes_written() const noexcept override {
    return closed_ ? bytes_ : buf_.size();
  }

 private:
  SegmentBackendImpl& backend_;
  std::string key_;
  std::vector<std::byte> buf_;
  std::uint64_t bytes_ = 0;
  bool closed_ = false;
};

Result<std::unique_ptr<Writer>> SegmentBackendImpl::create(
    const std::string& key) {
  if (key.empty() || key.size() > kMaxKeyLen) {
    return invalid_argument("bad key length: " + key);
  }
  return std::unique_ptr<Writer>(new SegmentWriter(*this, key));
}

Result<std::vector<Rec>> SegmentBackendImpl::load_records(
    const SegPtr& seg, std::uint64_t file_size, bool* sealed_out) {
  std::vector<Rec> recs;
  *sealed_out = false;

  // Sealed fast path: trailer at EOF locates the entries block.
  if (file_size >= sizeof(FooterTrailer)) {
    FooterTrailer t;
    auto st = pread_exact(seg->fd, &t, sizeof t,
                          file_size - sizeof t, seg->path);
    if (st.is_ok() && t.magic == FooterTrailer{}.magic &&
        t.end_magic == FooterTrailer{}.end_magic &&
        t.entries_bytes <= file_size - sizeof t) {
      std::vector<std::byte> entries(t.entries_bytes);
      const std::uint64_t entries_off =
          file_size - sizeof t - t.entries_bytes;
      st = pread_exact(seg->fd, entries.data(), entries.size(), entries_off,
                       seg->path);
      if (st.is_ok() && crc32(entries) == t.entries_crc) {
        std::size_t off = 0;
        bool ok = true;
        for (std::uint32_t i = 0; i < t.entry_count && ok; ++i) {
          if (off + sizeof(FooterEntry) > entries.size()) {
            ok = false;
            break;
          }
          FooterEntry e;
          std::memcpy(&e, entries.data() + off, sizeof e);
          off += sizeof e;
          if (e.key_len > kMaxKeyLen || off + e.key_len > entries.size() ||
              e.payload_off + e.payload_len > entries_off) {
            ok = false;
            break;
          }
          Rec r;
          r.type = e.type;
          r.key.assign(reinterpret_cast<const char*>(entries.data()) + off,
                       e.key_len);
          off += e.key_len;
          r.payload_off = e.payload_off;
          r.payload_len = e.payload_len;
          r.payload_crc = e.payload_crc;
          recs.push_back(std::move(r));
        }
        if (ok && off == entries.size()) {
          seg->record_bytes = entries_off;
          *sealed_out = true;
          return recs;
        }
        recs.clear();  // corrupt footer: fall through to the scan
      }
    }
  }

  // Scan path: walk records from the front; the first structurally or
  // CRC-invalid record ends the valid prefix (an append the crash
  // interrupted never committed — "complete object or nothing").
  std::uint64_t off = 0;
  std::vector<std::byte> payload;
  while (off + sizeof(RecordHeader) <= file_size) {
    RecordHeader h;
    ICKPT_RETURN_IF_ERROR(pread_exact(seg->fd, &h, sizeof h, off, seg->path));
    if (h.magic != RecordHeader{}.magic ||
        (h.type != kObject && h.type != kTombstone) ||
        h.key_len == 0 || h.key_len > kMaxKeyLen) {
      break;
    }
    const std::uint64_t total = sizeof h + h.key_len + h.payload_len;
    if (off + total > file_size) break;
    std::string key(h.key_len, '\0');
    ICKPT_RETURN_IF_ERROR(
        pread_exact(seg->fd, key.data(), key.size(), off + sizeof h,
                    seg->path));
    if (header_crc(h, key) != h.header_crc) break;
    const std::uint64_t payload_off = off + sizeof h + h.key_len;
    if (h.payload_len > 0) {
      payload.resize(h.payload_len);
      ICKPT_RETURN_IF_ERROR(pread_exact(seg->fd, payload.data(),
                                        payload.size(), payload_off,
                                        seg->path));
      if (crc32(payload) != h.payload_crc) break;
    }
    recs.push_back(Rec{h.type, std::move(key), payload_off, h.payload_len,
                       h.payload_crc});
    off += total;
  }
  if (off < file_size) {
    ++torn_records_;
    SegmentMetrics::get().torn_records.inc();
  }
  seg->record_bytes = off;
  return recs;
}

Status SegmentBackendImpl::init() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return io_error("cannot create " + dir_.string() + ": " + ec.message());
  }

  std::map<std::uint64_t, fs::path> found;
  for (auto it = fs::directory_iterator(dir_, ec);
       !ec && it != fs::directory_iterator(); ++it) {
    std::uint64_t id = 0;
    if (it->is_regular_file() &&
        parse_segment_name(it->path().filename().string(), &id)) {
      found[id] = it->path();
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, path] : found) {
    auto seg = std::make_shared<SegmentFile>();
    seg->id = id;
    seg->path = path;
    seg->fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (seg->fd < 0) {
      return io_error("cannot open segment: " + path.string() + ": " +
                      std::strerror(errno));
    }
    struct stat st{};
    if (::fstat(seg->fd, &st) != 0) {
      return io_error("fstat failed: " + path.string());
    }
    bool sealed = false;
    ICKPT_ASSIGN_OR_RETURN(
        recs, load_records(seg, static_cast<std::uint64_t>(st.st_size),
                           &sealed));
    seg->sealed = sealed;
    ICKPT_RETURN_IF_ERROR(replay_segment_locked(seg, recs));
    next_id_ = std::max(next_id_, id + 1);
    segments_[id] = std::move(seg);
  }
  return Status::ok();
}

Status SegmentBackendImpl::compact() {
  std::lock_guard<std::mutex> lock(mu_);
  SegmentMetrics::get().compactions.inc();

  // Candidates: read-only segments whose live fraction is below the
  // threshold.  Collected first — the rewrite loop mutates segments_.
  std::vector<SegPtr> victims;
  for (const auto& [id, seg] : segments_) {
    const double denom =
        static_cast<double>(std::max<std::uint64_t>(seg->record_bytes, 1));
    if (static_cast<double>(seg->live_bytes) / denom <
        options_.compact_live_fraction) {
      victims.push_back(seg);
    }
  }

  std::vector<std::byte> payload;
  for (const SegPtr& victim : victims) {
    const bool lowest_survivor =
        segments_.begin()->second->id == victim->id;
    bool dummy_sealed = false;
    std::error_code size_ec;
    const auto fsize = fs::file_size(victim->path, size_ec);
    if (size_ec) {
      return io_error("file_size failed: " + victim->path.string());
    }
    ICKPT_ASSIGN_OR_RETURN(recs,
                           load_records(victim, fsize, &dummy_sealed));
    for (const Rec& r : recs) {
      if (r.type == kObject) {
        auto it = index_.find(r.key);
        // Copy forward only the record the index still points at.
        if (it == index_.end() || it->second.seg != victim ||
            it->second.payload_off != r.payload_off) {
          continue;
        }
        payload.resize(r.payload_len);
        ICKPT_RETURN_IF_ERROR(pread_exact(victim->fd, payload.data(),
                                          payload.size(), r.payload_off,
                                          victim->path));
        ICKPT_RETURN_IF_ERROR(
            append_locked(kObject, r.key, payload, r.payload_crc));
        drop_entry_locked(index_.find(r.key));
        index_[r.key] =
            IndexEntry{active_, active_end_ - r.payload_len, r.payload_len,
                       r.payload_crc};
        active_->live_bytes += r.payload_len;
      } else if (!lowest_survivor && index_.count(r.key) == 0) {
        // A tombstone still shadowing an object in some older
        // surviving segment must move forward with us, or a rebuild
        // after the unlink would resurrect the key.  When this victim
        // is the oldest survivor there is nothing left to shadow.
        ICKPT_RETURN_IF_ERROR(append_locked(kTombstone, r.key, {}, 0));
      }
    }
    // Everything live has a newer copy on disk (synced when durable);
    // the husk can go.  Readers holding the SegPtr keep the inode.
    ICKPT_RETURN_IF_ERROR(sync_active_locked());
    segments_.erase(victim->id);
    std::error_code ec;
    fs::remove(victim->path, ec);
    if (ec) {
      return io_error("cannot unlink segment: " + victim->path.string() +
                      ": " + ec.message());
    }
  }
  return Status::ok();
}

}  // namespace

Result<std::unique_ptr<SegmentBackend>> SegmentBackend::open_store(
    const std::string& directory, const SegmentBackendOptions& options) {
  if (options.segment_bytes == 0) {
    return invalid_argument("segment_bytes must be > 0");
  }
  auto backend = std::make_unique<SegmentBackendImpl>(directory, options);
  ICKPT_RETURN_IF_ERROR(backend->init());
  return std::unique_ptr<SegmentBackend>(std::move(backend));
}

Result<std::unique_ptr<StorageBackend>> make_segment_backend(
    const std::string& directory) {
  return make_segment_backend(directory, SegmentBackendOptions{});
}

Result<std::unique_ptr<StorageBackend>> make_segment_backend(
    const std::string& directory, const SegmentBackendOptions& options) {
  ICKPT_ASSIGN_OR_RETURN(backend,
                         SegmentBackend::open_store(directory, options));
  return std::unique_ptr<StorageBackend>(std::move(backend));
}

bool segment_store_present(const std::string& directory) {
  std::error_code ec;
  for (auto it = fs::directory_iterator(directory, ec);
       !ec && it != fs::directory_iterator(); ++it) {
    std::uint64_t id = 0;
    if (it->is_regular_file() &&
        parse_segment_name(it->path().filename().string(), &id)) {
      return true;
    }
  }
  return false;
}

}  // namespace ickpt::storage

#include "storage/async_writer.h"

#include "obs/timer.h"
#include "obs/trace.h"

namespace ickpt::storage {

namespace {

/// Queue depth and producer stall time: the two signals that tell
/// whether async mode is hiding device latency or just buffering it.
struct AsyncMetrics {
  obs::Gauge& queue_bytes;
  obs::Counter& stalls;
  obs::Histogram& stall_ns;
  obs::Histogram& flush_ns;
  std::uint16_t t_write;  ///< "storage.async_write" span (worker thread)
  std::uint16_t t_flush;  ///< "storage.async_flush" span

  static AsyncMetrics& get() {
    static AsyncMetrics m{
        obs::registry().gauge("storage.async.queue_bytes"),
        obs::registry().counter("storage.async.stalls"),
        obs::registry().histogram("storage.async.stall_ns"),
        obs::registry().histogram("storage.async.flush_ns"),
        obs::trace_name("storage.async_write", obs::TraceCat::kStorage),
        obs::trace_name("storage.async_flush", obs::TraceCat::kStorage)};
    return m;
  }
};

}  // namespace

AsyncWriter::AsyncWriter(StorageBackend& backend, Options options)
    : backend_(backend), options_(options) {
  worker_ = std::thread([this] { run(); });
}

AsyncWriter::~AsyncWriter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_consumer_.notify_all();
  worker_.join();
}

Status AsyncWriter::submit(std::string key, std::vector<std::byte> data) {
  auto& metrics = AsyncMetrics::get();
  std::unique_lock<std::mutex> lock(mu_);
  auto admissible = [&] {
    return stopping_ || !first_error_.is_ok() ||
           queued_bytes_ + data.size() <= options_.max_queued_bytes ||
           queue_.empty();  // a single oversized object is admitted
  };
  if (!admissible()) {
    // Back-pressure: the device is behind and the application thread
    // is about to eat the latency async mode was meant to hide.
    metrics.stalls.inc();
    obs::StallClock stall;
    cv_producer_.wait(lock, admissible);
    if (obs::enabled()) metrics.stall_ns.record(stall.elapsed_ns());
  }
  if (stopping_) return failed_precondition("writer is shutting down");
  if (!first_error_.is_ok()) return first_error_;
  queued_bytes_ += data.size();
  metrics.queue_bytes.update(static_cast<std::int64_t>(queued_bytes_));
  queue_.push_back(Item{std::move(key), std::move(data)});
  idle_ = false;
  cv_consumer_.notify_one();
  return Status::ok();
}

Status AsyncWriter::flush() {
  auto& metrics = AsyncMetrics::get();
  obs::ScopedTimer timer(metrics.flush_ns);
  obs::TraceSpan span(metrics.t_flush);
  std::unique_lock<std::mutex> lock(mu_);
  cv_producer_.wait(lock, [&] {
    return (queue_.empty() && idle_) || !first_error_.is_ok();
  });
  return first_error_;
}

std::uint64_t AsyncWriter::objects_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_written_;
}

std::uint64_t AsyncWriter::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

std::size_t AsyncWriter::queued_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_bytes_;
}

void AsyncWriter::run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_consumer_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    Item item = std::move(queue_.front());
    queue_.pop_front();
    idle_ = false;
    lock.unlock();

    Status st;
    {
      obs::TraceSpan span(AsyncMetrics::get().t_write, item.data.size());
      auto writer = backend_.create(item.key);
      if (!writer.is_ok()) {
        st = writer.status();
      } else {
        st = (*writer)->write(item.data);
        if (st.is_ok()) st = (*writer)->close();
      }
    }

    lock.lock();
    queued_bytes_ -= item.data.size();
    AsyncMetrics::get().queue_bytes.set(
        static_cast<std::int64_t>(queued_bytes_));
    if (st.is_ok()) {
      ++objects_written_;
      bytes_written_ += item.data.size();
    } else if (first_error_.is_ok()) {
      first_error_ = st;
    }
    idle_ = queue_.empty();
    cv_producer_.notify_all();
  }
}

}  // namespace ickpt::storage

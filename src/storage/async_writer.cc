#include "storage/async_writer.h"

namespace ickpt::storage {

AsyncWriter::AsyncWriter(StorageBackend& backend, Options options)
    : backend_(backend), options_(options) {
  worker_ = std::thread([this] { run(); });
}

AsyncWriter::~AsyncWriter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_consumer_.notify_all();
  worker_.join();
}

Status AsyncWriter::submit(std::string key, std::vector<std::byte> data) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_producer_.wait(lock, [&] {
    return stopping_ || !first_error_.is_ok() ||
           queued_bytes_ + data.size() <= options_.max_queued_bytes ||
           queue_.empty();  // a single oversized object is admitted
  });
  if (stopping_) return failed_precondition("writer is shutting down");
  if (!first_error_.is_ok()) return first_error_;
  queued_bytes_ += data.size();
  queue_.push_back(Item{std::move(key), std::move(data)});
  idle_ = false;
  cv_consumer_.notify_one();
  return Status::ok();
}

Status AsyncWriter::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_producer_.wait(lock, [&] {
    return (queue_.empty() && idle_) || !first_error_.is_ok();
  });
  return first_error_;
}

std::uint64_t AsyncWriter::objects_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_written_;
}

std::uint64_t AsyncWriter::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

std::size_t AsyncWriter::queued_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_bytes_;
}

void AsyncWriter::run() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_consumer_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    Item item = std::move(queue_.front());
    queue_.pop_front();
    idle_ = false;
    lock.unlock();

    Status st;
    auto writer = backend_.create(item.key);
    if (!writer.is_ok()) {
      st = writer.status();
    } else {
      st = (*writer)->write(item.data);
      if (st.is_ok()) st = (*writer)->close();
    }

    lock.lock();
    queued_bytes_ -= item.data.size();
    if (st.is_ok()) {
      ++objects_written_;
      bytes_written_ += item.data.size();
    } else if (first_error_.is_ok()) {
      first_error_ = st;
    }
    idle_ = queue_.empty();
    cv_producer_.notify_all();
  }
}

}  // namespace ickpt::storage

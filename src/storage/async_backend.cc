#include "storage/async_backend.h"

namespace ickpt::storage {

namespace {

class BufferingWriter final : public Writer {
 public:
  BufferingWriter(AsyncWriter& writer, std::string key)
      : writer_(writer), key_(std::move(key)) {}

  Status write(std::span<const std::byte> data) override {
    if (closed_) return failed_precondition("write after close");
    buf_.insert(buf_.end(), data.begin(), data.end());
    return Status::ok();
  }

  Status close() override {
    if (closed_) return Status::ok();
    closed_ = true;
    bytes_ = buf_.size();
    return writer_.submit(std::move(key_), std::move(buf_));
  }

  std::uint64_t bytes_written() const noexcept override {
    return closed_ ? bytes_ : buf_.size();
  }

 private:
  AsyncWriter& writer_;
  std::string key_;
  std::vector<std::byte> buf_;
  std::uint64_t bytes_ = 0;
  bool closed_ = false;
};

class AsyncBackend final : public StorageBackend {
 public:
  AsyncBackend(AsyncWriter& writer, StorageBackend& underlying)
      : writer_(writer), underlying_(underlying) {}

  Result<std::unique_ptr<Writer>> create(const std::string& key) override {
    return std::unique_ptr<Writer>(new BufferingWriter(writer_, key));
  }

  Result<std::unique_ptr<Reader>> open(const std::string& key) override {
    ICKPT_RETURN_IF_ERROR(writer_.flush());
    return underlying_.open(key);
  }

  Status remove(const std::string& key) override {
    ICKPT_RETURN_IF_ERROR(writer_.flush());
    return underlying_.remove(key);
  }

  Result<std::vector<std::string>> list() override {
    ICKPT_RETURN_IF_ERROR(writer_.flush());
    return underlying_.list();
  }

  bool exists(const std::string& key) override {
    if (!writer_.flush().is_ok()) return false;
    return underlying_.exists(key);
  }

  std::uint64_t total_bytes_stored() const noexcept override {
    return underlying_.total_bytes_stored();
  }

 private:
  AsyncWriter& writer_;
  StorageBackend& underlying_;
};

}  // namespace

std::unique_ptr<StorageBackend> make_async_backend(
    AsyncWriter& writer, StorageBackend& underlying) {
  return std::make_unique<AsyncBackend>(writer, underlying);
}

}  // namespace ickpt::storage

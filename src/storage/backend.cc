#include "storage/backend.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>

#include "common/io_util.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace ickpt::storage {

namespace fs = std::filesystem;

// ------------------------------------------------------------------- file

namespace {

/// Direct-I/O observability: fallbacks (O_DIRECT refused — probe
/// failure or a mid-stream EINVAL) and writers that ran direct.
struct DirectIoMetrics {
  obs::Counter& fallbacks;
  obs::Counter& writers;

  static DirectIoMetrics& get() {
    auto& r = obs::registry();
    static DirectIoMetrics m{r.counter("storage.direct_io_fallback"),
                             r.counter("storage.direct_io_writers")};
    return m;
  }
};

/// Durable-publish observability, shared by every backend that syncs:
/// fsync/fdatasync syscalls issued and the wall time one publish
/// spends waiting on the device.
struct SyncMetrics {
  obs::Counter& fsync_calls;
  obs::Histogram& publish_sync_ns;
  std::uint16_t span;

  static SyncMetrics& get() {
    auto& r = obs::registry();
    static SyncMetrics m{
        r.counter("storage.fsync_calls"),
        r.histogram("storage.publish_sync_ns"),
        obs::trace_name("ckpt.publish_sync", obs::TraceCat::kStorage)};
    return m;
  }
};

// Test-only fault injection (see testing_hooks in backend.h).
std::atomic<std::size_t> g_forced_direct_block{0};
std::atomic<int> g_einval_writes{0};

/// True when the test hook says this write syscall must fail EINVAL.
bool consume_einval_fault() {
  int n = g_einval_writes.load(std::memory_order_relaxed);
  while (n > 0) {
    if (g_einval_writes.compare_exchange_weak(n, n - 1,
                                              std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// fdatasync `fd`, counting the call; kIoError on failure.
Status synced_fdatasync(int fd, const fs::path& what) {
  SyncMetrics::get().fsync_calls.inc();
  if (::fdatasync(fd) != 0) {
    return io_error("fdatasync failed: " + what.string() + ": " +
                    std::strerror(errno));
  }
  return Status::ok();
}

/// fsync the directory containing `child` so its rename/creation is
/// itself durable (a renamed file is lost on power loss until the
/// directory entry reaches the journal).
Status sync_parent_dir(const fs::path& child) {
  const fs::path dir = child.parent_path();
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return io_error("open dir for fsync failed: " + dir.string() + ": " +
                    std::strerror(errno));
  }
  SyncMetrics::get().fsync_calls.inc();
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return io_error("fsync dir failed: " + dir.string() + ": " +
                    std::strerror(errno));
  }
  return Status::ok();
}

/// Block-aligned heap buffer for O_DIRECT staging.
class AlignedBuf {
 public:
  AlignedBuf(std::size_t alignment, std::size_t size) {
    if (::posix_memalign(&p_, alignment, size) != 0) p_ = nullptr;
  }
  ~AlignedBuf() { std::free(p_); }
  AlignedBuf(const AlignedBuf&) = delete;
  AlignedBuf& operator=(const AlignedBuf&) = delete;

  unsigned char* data() noexcept { return static_cast<unsigned char*>(p_); }

 private:
  void* p_ = nullptr;
};

/// Probe the logical block size O_DIRECT needs under `dir`: open a
/// scratch file with O_DIRECT and try a 512-byte, then a 4-KiB
/// aligned write.  Returns the smallest size that works, or 0 when
/// the filesystem refuses direct I/O outright (tmpfs and some overlay
/// mounts fail the open or every write with EINVAL).  Called once per
/// backend directory; the result is cached by FileBackend.
std::size_t probe_direct_block_size(const fs::path& dir) {
  const fs::path probe = dir / ".ickpt-dio-probe.tmp";
  int fd = ::open(probe.c_str(),
                  O_WRONLY | O_CREAT | O_TRUNC | O_DIRECT | O_CLOEXEC, 0644);
  std::size_t found = 0;
  if (fd >= 0) {
    AlignedBuf buf(4096, 4096);  // 4 KiB alignment satisfies both probes
    if (buf.data() != nullptr) {
      std::memset(buf.data(), 0, 4096);
      for (std::size_t cand : {std::size_t{512}, std::size_t{4096}}) {
        if (::pwrite(fd, buf.data(), cand, 0) ==
            static_cast<ssize_t>(cand)) {
          found = cand;
          break;
        }
        if (errno != EINVAL) break;
      }
    }
    ::close(fd);
  }
  std::error_code ec;
  fs::remove(probe, ec);
  return found;
}

/// Publish `tmp` as `final_path`: optionally fdatasync the written
/// bytes, rename, then fsync the parent directory.  The sync pair is
/// what makes the atomic-rename publish *crash*-atomic — without it a
/// power loss can surface the renamed object empty (data never hit the
/// device) or lose the rename entirely (directory entry never hit the
/// journal).  `fd` must still be open on the tmp file when durable.
Status publish_file(int fd, const fs::path& tmp, const fs::path& final_path,
                    bool durable) {
  obs::ScopedTimer timer(SyncMetrics::get().publish_sync_ns);
  obs::TraceSpan span(SyncMetrics::get().span);
  const Status sync_st =
      durable ? synced_fdatasync(fd, tmp) : Status::ok();
  const int close_rc = ::close(fd);  // fd is consumed on every path
  ICKPT_RETURN_IF_ERROR(sync_st);
  if (close_rc != 0) {
    return io_error("close failed: " + tmp.string());
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) return io_error("rename failed: " + ec.message());
  if (durable) ICKPT_RETURN_IF_ERROR(sync_parent_dir(final_path));
  if (!durable) {
    timer.cancel();  // nothing was synced; keep the histogram honest
  }
  return Status::ok();
}

class FileWriter final : public Writer {
 public:
  FileWriter(fs::path tmp, fs::path final_path, bool durable,
             std::atomic<std::uint64_t>* total)
      : tmp_(std::move(tmp)),
        final_(std::move(final_path)),
        durable_(durable),
        total_(total) {
    fd_ = ::open(tmp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644);
  }
  ~FileWriter() override {
    if (!closed_) {
      if (fd_ >= 0) ::close(fd_);
      std::error_code ec;
      fs::remove(tmp_, ec);  // abort: discard partial object
    }
  }
  Status write(std::span<const std::byte> data) override {
    if (closed_) return failed_precondition("write after close");
    if (fd_ < 0) return io_error("file open failed: " + tmp_.string());
    auto st = ioutil::write_full(fd_, data);
    if (!st.is_ok()) return io_error("file write failed: " + tmp_.string());
    bytes_ += data.size();
    return Status::ok();
  }
  Status close() override {
    if (closed_) return Status::ok();
    if (fd_ < 0) return io_error("file open failed: " + tmp_.string());
    auto st = publish_file(fd_, tmp_, final_, durable_);
    fd_ = -1;  // publish_file closed it (or it is unusable)
    ICKPT_RETURN_IF_ERROR(st);
    closed_ = true;
    total_->fetch_add(bytes_, std::memory_order_relaxed);
    return Status::ok();
  }
  std::uint64_t bytes_written() const noexcept override { return bytes_; }

 private:
  fs::path tmp_, final_;
  int fd_ = -1;
  std::uint64_t bytes_ = 0;
  bool durable_;
  bool closed_ = false;
  std::atomic<std::uint64_t>* total_;
};

/// O_DIRECT writer: payload accumulates in a block-aligned staging
/// buffer and leaves in whole-buffer direct writes; close() writes the
/// remaining full blocks direct, then drops O_DIRECT (fcntl) for the
/// sub-block tail, so arbitrary object sizes need no padding and the
/// on-disk bytes are identical to the buffered writer's.  Any EINVAL
/// mid-stream (stale probe, filesystem boundary) permanently downgrades
/// this writer to buffered writes on the same fd — transparent to the
/// caller, counted in storage.direct_io_fallback.
class DirectFileWriter final : public Writer {
 public:
  /// 1 MiB staging: large enough to amortize syscalls, a multiple of
  /// every probe-able block size.
  static constexpr std::size_t kStageSize = 1u << 20;

  DirectFileWriter(fs::path tmp, fs::path final_path, std::size_t block,
                   bool durable, std::atomic<std::uint64_t>* total)
      : tmp_(std::move(tmp)),
        final_(std::move(final_path)),
        total_(total),
        block_(block),
        durable_(durable),
        stage_(block, kStageSize) {
    fd_ = ::open(tmp_.c_str(),
                 O_WRONLY | O_CREAT | O_TRUNC | O_DIRECT | O_CLOEXEC, 0644);
    if (fd_ < 0 && errno == EINVAL) {
      // The probe said yes but this file says no (e.g. a bind mount
      // inside the directory): degrade instead of failing the write.
      DirectIoMetrics::get().fallbacks.inc();
      direct_ = false;
      fd_ = ::open(tmp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                   0644);
    }
    if (direct_) DirectIoMetrics::get().writers.inc();
  }

  ~DirectFileWriter() override {
    if (!closed_) {
      if (fd_ >= 0) ::close(fd_);
      std::error_code ec;
      fs::remove(tmp_, ec);  // abort: discard partial object
    }
  }

  Status write(std::span<const std::byte> data) override {
    if (closed_) return failed_precondition("write after close");
    if (fd_ < 0 || stage_.data() == nullptr) {
      return io_error("direct writer open failed: " + tmp_.string());
    }
    const auto* src = reinterpret_cast<const unsigned char*>(data.data());
    std::size_t left = data.size();
    while (left > 0) {
      const std::size_t n = std::min(left, kStageSize - fill_);
      std::memcpy(stage_.data() + fill_, src, n);
      fill_ += n;
      src += n;
      left -= n;
      if (fill_ == kStageSize) {
        ICKPT_RETURN_IF_ERROR(drain(kStageSize));
      }
    }
    bytes_ += data.size();
    return Status::ok();
  }

  Status close() override {
    if (closed_) return Status::ok();
    if (fd_ < 0) return io_error("direct writer open failed: " + tmp_.string());
    // Full blocks leave direct; the tail needs the flag off.
    const std::size_t full = fill_ - fill_ % block_;
    if (full > 0) ICKPT_RETURN_IF_ERROR(drain(full));
    if (fill_ > 0) {
      drop_direct();
      ICKPT_RETURN_IF_ERROR(drain(fill_));
    }
    auto st = publish_file(fd_, tmp_, final_, durable_);
    fd_ = -1;  // publish_file consumed it
    ICKPT_RETURN_IF_ERROR(st);
    closed_ = true;
    total_->fetch_add(bytes_, std::memory_order_relaxed);
    return Status::ok();
  }

  std::uint64_t bytes_written() const noexcept override { return bytes_; }

 private:
  /// One data-write syscall, with the test fault hook applied.
  ssize_t raw_write(const void* buf, std::size_t n) {
    if (consume_einval_fault()) {
      errno = EINVAL;
      return -1;
    }
    return ::write(fd_, buf, n);
  }

  /// Write the first `n` staged bytes at the current file offset.  On
  /// EINVAL in direct mode, downgrade to buffered and retry.  EINVAL
  /// can also surface *after* the downgrade (the F_SETFL drop is
  /// advisory — some filesystems keep rejecting unaligned writes on an
  /// fd opened O_DIRECT): that lands in the same counted fallback path
  /// by reopening the tmp file without O_DIRECT at the current offset,
  /// never in an opaque io_error.
  Status drain(std::size_t n) {
    std::size_t done = 0;
    while (done < n && direct_) {
      ssize_t got = raw_write(stage_.data() + done, n - done);
      if (got < 0) {
        if (errno == EINTR) continue;
        if (errno == EINVAL) {
          DirectIoMetrics::get().fallbacks.inc();
          drop_direct();
          break;  // remainder goes through the buffered path below
        }
        return io_error("file write failed: " + tmp_.string());
      }
      done += static_cast<std::size_t>(got);
    }
    while (done < n) {
      ssize_t got = raw_write(stage_.data() + done, n - done);
      if (got < 0) {
        if (errno == EINTR) continue;
        if (errno == EINVAL && !reopened_) {
          DirectIoMetrics::get().fallbacks.inc();
          ICKPT_RETURN_IF_ERROR(reopen_buffered());
          continue;
        }
        return io_error("file write failed: " + tmp_.string());
      }
      done += static_cast<std::size_t>(got);
    }
    // Shift any remainder (only on the close() tail path, where a
    // partial drain never happens mid-buffer) and reset the fill.
    if (n < fill_) std::memmove(stage_.data(), stage_.data() + n, fill_ - n);
    fill_ -= n;
    return Status::ok();
  }

  void drop_direct() {
    if (!direct_) return;
    direct_ = false;
    const int flags = ::fcntl(fd_, F_GETFL);
    if (flags >= 0) ::fcntl(fd_, F_SETFL, flags & ~O_DIRECT);
  }

  /// Last-resort EINVAL recovery: swap the fd for one opened without
  /// O_DIRECT, positioned where the old one stopped.  Done at most
  /// once per writer.
  Status reopen_buffered() {
    reopened_ = true;
    const off_t off = ::lseek(fd_, 0, SEEK_CUR);
    if (off < 0) return io_error("lseek failed: " + tmp_.string());
    int fresh = ::open(tmp_.c_str(), O_WRONLY | O_CLOEXEC);
    if (fresh < 0) return io_error("reopen failed: " + tmp_.string());
    if (::lseek(fresh, off, SEEK_SET) != off) {
      ::close(fresh);
      return io_error("lseek failed: " + tmp_.string());
    }
    ::close(fd_);
    fd_ = fresh;
    direct_ = false;
    return Status::ok();
  }

  fs::path tmp_, final_;
  std::atomic<std::uint64_t>* total_;
  std::size_t block_;
  bool durable_;
  AlignedBuf stage_;
  std::size_t fill_ = 0;
  std::uint64_t bytes_ = 0;
  int fd_ = -1;
  bool direct_ = true;
  bool reopened_ = false;
  bool closed_ = false;
};

class FileReader final : public Reader {
 public:
  explicit FileReader(const fs::path& path)
      : path_(path), size_(fs::file_size(path)) {
    is_.open(path, std::ios::binary);
  }

  ~FileReader() override {
    if (map_ != nullptr) ::munmap(map_, static_cast<std::size_t>(size_));
  }
  Result<std::size_t> read(std::span<std::byte> out) override {
    is_.read(reinterpret_cast<char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
    auto got = static_cast<std::size_t>(is_.gcount());
    if (got == 0 && !is_.eof()) return io_error("file read failed");
    return got;
  }
  bool supports_read_at() const noexcept override { return true; }
  Result<std::size_t> read_at(std::uint64_t offset,
                              std::span<std::byte> out) override {
    if (offset >= size_) return std::size_t{0};
    is_.clear();
    is_.seekg(static_cast<std::streamoff>(offset));
    if (!is_) return io_error("file seek failed");
    is_.read(reinterpret_cast<char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
    auto got = static_cast<std::size_t>(is_.gcount());
    if (got == 0 && !is_.eof()) return io_error("file read failed");
    return got;
  }

  bool supports_map() const noexcept override { return true; }
  Result<std::span<const std::byte>> map_at(std::uint64_t offset,
                                            std::size_t length) override {
    if (length == 0) return std::span<const std::byte>{};
    if (offset > size_ || length > size_ - offset) {
      return corruption("map_at past end of object: " + path_.string());
    }
    if (map_ == nullptr) {
      int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
      if (fd < 0) return io_error("open for mmap failed: " + path_.string());
      void* m = ::mmap(nullptr, static_cast<std::size_t>(size_), PROT_READ,
                       MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (m == MAP_FAILED) {
        return io_error("mmap failed: " + path_.string());
      }
      map_ = m;
    }
    return std::span<const std::byte>{
        static_cast<const std::byte*>(map_) + offset, length};
  }

  std::uint64_t size() const noexcept override { return size_; }

 private:
  fs::path path_;
  std::ifstream is_;
  std::uint64_t size_;
  void* map_ = nullptr;  ///< whole-object mmap, created on first map_at
};

class FileBackend final : public StorageBackend {
 public:
  FileBackend(fs::path dir, FileBackendOptions options)
      : dir_(std::move(dir)), options_(options) {}

  Result<std::unique_ptr<Writer>> create(const std::string& key) override {
    fs::path final_path = dir_ / key;
    std::error_code ec;
    fs::create_directories(final_path.parent_path(), ec);
    fs::path tmp = final_path;
    tmp += ".tmp";
    if (options_.direct_io) {
      const std::size_t block = direct_block_size();
      if (block > 0) {
        return std::unique_ptr<Writer>(new DirectFileWriter(
            tmp, final_path, block, options_.durable_publish, &total_));
      }
      // Probe said no (counted once, below): buffered writes.
    }
    auto w = std::make_unique<FileWriter>(tmp, final_path,
                                          options_.durable_publish, &total_);
    return std::unique_ptr<Writer>(std::move(w));
  }

  Result<std::unique_ptr<Reader>> open(const std::string& key) override {
    fs::path p = dir_ / key;
    std::error_code ec;
    if (!fs::exists(p, ec)) return not_found("no such object: " + key);
    return std::unique_ptr<Reader>(new FileReader(p));
  }

  Status remove(const std::string& key) override {
    std::error_code ec;
    if (!fs::remove(dir_ / key, ec)) {
      return not_found("no such object: " + key);
    }
    return Status::ok();
  }

  Result<std::vector<std::string>> list() override {
    std::vector<std::string> keys;
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(dir_, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
      // ".tmp" siblings are unpublished writes (possibly left behind
      // by a crash mid-publish) — never visible objects.
      if (it->is_regular_file() && it->path().extension() != ".tmp") {
        keys.push_back(fs::relative(it->path(), dir_).string());
      }
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  bool exists(const std::string& key) override {
    std::error_code ec;
    return fs::exists(dir_ / key, ec);
  }

  std::uint64_t total_bytes_stored() const noexcept override {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  /// The O_DIRECT logical block size for this backend's directory,
  /// probed on the first direct writer and cached (0 = unsupported).
  /// One probe per directory, not per write: the answer is a property
  /// of the filesystem under `dir_`.
  std::size_t direct_block_size() {
    const std::size_t forced =
        g_forced_direct_block.load(std::memory_order_relaxed);
    if (forced > 0) return forced;
    std::call_once(probe_once_, [this] {
      probed_block_ = probe_direct_block_size(dir_);
      if (probed_block_ == 0) DirectIoMetrics::get().fallbacks.inc();
    });
    return probed_block_;
  }

  fs::path dir_;
  FileBackendOptions options_;
  std::once_flag probe_once_;
  std::size_t probed_block_ = 0;
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace

namespace testing_hooks {
void force_direct_block_size(std::size_t block) {
  g_forced_direct_block.store(block, std::memory_order_relaxed);
}
void fail_writes_einval(int n) {
  g_einval_writes.store(n, std::memory_order_relaxed);
}
}  // namespace testing_hooks

Result<std::unique_ptr<StorageBackend>> make_file_backend(
    const std::string& directory) {
  return make_file_backend(directory, FileBackendOptions{});
}

Result<std::unique_ptr<StorageBackend>> make_file_backend(
    const std::string& directory, const FileBackendOptions& options) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) return io_error("cannot create " + directory + ": " + ec.message());
  return std::unique_ptr<StorageBackend>(new FileBackend(directory, options));
}

// ----------------------------------------------------------------- memory

namespace {

// Objects are immutable once closed; readers share the buffer instead
// of copying it, so many concurrent readers of one object (parallel
// restore shards) cost O(1) memory each.
struct MemoryStore {
  std::mutex mu;
  std::map<std::string, std::shared_ptr<const std::vector<std::byte>>> objects;
  std::atomic<std::uint64_t> total{0};
};

class MemoryWriter final : public Writer {
 public:
  MemoryWriter(std::shared_ptr<MemoryStore> store, std::string key)
      : store_(std::move(store)), key_(std::move(key)) {}
  Status write(std::span<const std::byte> data) override {
    if (closed_) return failed_precondition("write after close");
    buf_.insert(buf_.end(), data.begin(), data.end());
    return Status::ok();
  }
  Status close() override {
    if (closed_) return Status::ok();
    closed_ = true;
    bytes_ = buf_.size();
    store_->total.fetch_add(buf_.size(), std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(store_->mu);
    store_->objects[key_] =
        std::make_shared<const std::vector<std::byte>>(std::move(buf_));
    return Status::ok();
  }
  std::uint64_t bytes_written() const noexcept override {
    return closed_ ? bytes_ : buf_.size();
  }

 private:
  std::shared_ptr<MemoryStore> store_;
  std::string key_;
  std::vector<std::byte> buf_;
  std::uint64_t bytes_ = 0;
  bool closed_ = false;
};

class MemoryReader final : public Reader {
 public:
  explicit MemoryReader(std::shared_ptr<const std::vector<std::byte>> data)
      : data_(std::move(data)) {}
  Result<std::size_t> read(std::span<std::byte> out) override {
    std::size_t n = std::min(out.size(), data_->size() - pos_);
    std::memcpy(out.data(), data_->data() + pos_, n);
    pos_ += n;
    return n;
  }
  bool supports_read_at() const noexcept override { return true; }
  Result<std::size_t> read_at(std::uint64_t offset,
                              std::span<std::byte> out) override {
    if (offset >= data_->size()) return std::size_t{0};
    std::size_t n = std::min<std::uint64_t>(out.size(),
                                            data_->size() - offset);
    std::memcpy(out.data(), data_->data() + offset, n);
    return n;
  }
  bool supports_map() const noexcept override { return true; }
  Result<std::span<const std::byte>> map_at(std::uint64_t offset,
                                            std::size_t length) override {
    if (length == 0) return std::span<const std::byte>{};
    if (offset > data_->size() || length > data_->size() - offset) {
      return corruption("map_at past end of object");
    }
    // The reader shares ownership of the immutable buffer, so the
    // view outlives concurrent removes of the key.
    return std::span<const std::byte>{data_->data() + offset, length};
  }
  std::uint64_t size() const noexcept override { return data_->size(); }

 private:
  std::shared_ptr<const std::vector<std::byte>> data_;
  std::size_t pos_ = 0;
};

class MemoryBackend final : public StorageBackend {
 public:
  MemoryBackend() : store_(std::make_shared<MemoryStore>()) {}

  Result<std::unique_ptr<Writer>> create(const std::string& key) override {
    return std::unique_ptr<Writer>(new MemoryWriter(store_, key));
  }
  Result<std::unique_ptr<Reader>> open(const std::string& key) override {
    std::lock_guard<std::mutex> lock(store_->mu);
    auto it = store_->objects.find(key);
    if (it == store_->objects.end()) {
      return not_found("no such object: " + key);
    }
    return std::unique_ptr<Reader>(new MemoryReader(it->second));
  }
  Status remove(const std::string& key) override {
    std::lock_guard<std::mutex> lock(store_->mu);
    if (store_->objects.erase(key) == 0) {
      return not_found("no such object: " + key);
    }
    return Status::ok();
  }
  Result<std::vector<std::string>> list() override {
    std::lock_guard<std::mutex> lock(store_->mu);
    std::vector<std::string> keys;
    keys.reserve(store_->objects.size());
    for (const auto& [k, data] : store_->objects) keys.push_back(k);
    return keys;
  }
  bool exists(const std::string& key) override {
    std::lock_guard<std::mutex> lock(store_->mu);
    return store_->objects.count(key) > 0;
  }
  std::uint64_t total_bytes_stored() const noexcept override {
    return store_->total.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<MemoryStore> store_;
};

// ------------------------------------------------------------------- null

class NullWriter final : public Writer {
 public:
  explicit NullWriter(std::atomic<std::uint64_t>* total) : total_(total) {}
  Status write(std::span<const std::byte> data) override {
    bytes_ += data.size();
    return Status::ok();
  }
  Status close() override {
    if (!closed_) {
      closed_ = true;
      total_->fetch_add(bytes_, std::memory_order_relaxed);
    }
    return Status::ok();
  }
  std::uint64_t bytes_written() const noexcept override { return bytes_; }

 private:
  std::uint64_t bytes_ = 0;
  bool closed_ = false;
  std::atomic<std::uint64_t>* total_;
};

class NullBackend final : public StorageBackend {
 public:
  Result<std::unique_ptr<Writer>> create(const std::string&) override {
    return std::unique_ptr<Writer>(new NullWriter(&total_));
  }
  Result<std::unique_ptr<Reader>> open(const std::string& key) override {
    return not_found("null backend stores nothing: " + key);
  }
  Status remove(const std::string&) override { return Status::ok(); }
  Result<std::vector<std::string>> list() override {
    return std::vector<std::string>{};
  }
  bool exists(const std::string&) override { return false; }
  std::uint64_t total_bytes_stored() const noexcept override {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace

std::unique_ptr<StorageBackend> make_memory_backend() {
  return std::make_unique<MemoryBackend>();
}

std::unique_ptr<StorageBackend> make_null_backend() {
  return std::make_unique<NullBackend>();
}

// -------------------------------------------------------------- throttled

class ThrottledBackend::ThrottledWriter final : public Writer {
 public:
  ThrottledWriter(std::unique_ptr<Writer> inner, double bytes_per_second,
                  bool really_sleep,
                  std::shared_ptr<std::atomic<std::uint64_t>> counter)
      : inner_(std::move(inner)),
        bps_(bytes_per_second),
        sleep_(really_sleep),
        counter_(std::move(counter)) {}

  Status write(std::span<const std::byte> data) override {
    ICKPT_RETURN_IF_ERROR(inner_->write(data));
    counter_->fetch_add(data.size(), std::memory_order_relaxed);
    if (sleep_ && bps_ > 0) {
      auto stall = std::chrono::duration<double>(
          static_cast<double>(data.size()) / bps_);
      std::this_thread::sleep_for(stall);
    }
    return Status::ok();
  }
  Status close() override { return inner_->close(); }
  std::uint64_t bytes_written() const noexcept override {
    return inner_->bytes_written();
  }

 private:
  std::unique_ptr<Writer> inner_;
  double bps_;
  bool sleep_;
  std::shared_ptr<std::atomic<std::uint64_t>> counter_;
};

ThrottledBackend::ThrottledBackend(StorageBackend& inner,
                                   double bytes_per_second, bool really_sleep)
    : inner_(inner),
      bytes_per_second_(bytes_per_second),
      really_sleep_(really_sleep),
      throttled_bytes_(std::make_shared<std::atomic<std::uint64_t>>(0)) {}

Result<std::unique_ptr<Writer>> ThrottledBackend::create(
    const std::string& key) {
  auto w = inner_.create(key);
  if (!w.is_ok()) return w.status();
  return std::unique_ptr<Writer>(
      new ThrottledWriter(std::move(w.value()), bytes_per_second_,
                          really_sleep_, throttled_bytes_));
}

Result<std::unique_ptr<Reader>> ThrottledBackend::open(
    const std::string& key) {
  return inner_.open(key);
}
Status ThrottledBackend::remove(const std::string& key) {
  return inner_.remove(key);
}
Result<std::vector<std::string>> ThrottledBackend::list() {
  return inner_.list();
}
bool ThrottledBackend::exists(const std::string& key) {
  return inner_.exists(key);
}
std::uint64_t ThrottledBackend::total_bytes_stored() const noexcept {
  return inner_.total_bytes_stored();
}
double ThrottledBackend::modeled_seconds() const noexcept {
  if (bytes_per_second_ <= 0) return 0;
  return static_cast<double>(
             throttled_bytes_->load(std::memory_order_relaxed)) /
         bytes_per_second_;
}

// ---------------------------------------------------------------- metered

class MeteredBackend::MeteredWriter final : public Writer {
 public:
  MeteredWriter(std::unique_ptr<Writer> inner, obs::Counter& objects,
                obs::Counter& bytes, obs::Histogram& write_ns,
                obs::Histogram& object_bytes)
      : inner_(std::move(inner)),
        objects_(objects),
        bytes_(bytes),
        write_ns_(write_ns),
        object_bytes_(object_bytes),
        start_ns_(obs::now_ns()) {}

  Status write(std::span<const std::byte> data) override {
    return inner_->write(data);
  }

  Status close() override {
    ICKPT_RETURN_IF_ERROR(inner_->close());
    const std::uint64_t n = inner_->bytes_written();
    objects_.inc();
    bytes_.inc(n);
    if (obs::enabled()) {
      write_ns_.record(obs::now_ns() - start_ns_);
      object_bytes_.record(n);
    }
    return Status::ok();
  }

  std::uint64_t bytes_written() const noexcept override {
    return inner_->bytes_written();
  }

 private:
  std::unique_ptr<Writer> inner_;
  obs::Counter& objects_;
  obs::Counter& bytes_;
  obs::Histogram& write_ns_;
  obs::Histogram& object_bytes_;
  std::uint64_t start_ns_;
};

MeteredBackend::MeteredBackend(StorageBackend& inner,
                               const std::string& prefix)
    : inner_(inner),
      objects_(obs::registry().counter(prefix + ".objects")),
      bytes_(obs::registry().counter(prefix + ".bytes")),
      write_ns_(obs::registry().histogram(prefix + ".write_ns")),
      object_bytes_(obs::registry().histogram(prefix + ".object_bytes",
                                              obs::Unit::kBytes)) {}

Result<std::unique_ptr<Writer>> MeteredBackend::create(
    const std::string& key) {
  auto w = inner_.create(key);
  if (!w.is_ok()) return w.status();
  return std::unique_ptr<Writer>(new MeteredWriter(
      std::move(w.value()), objects_, bytes_, write_ns_, object_bytes_));
}
Result<std::unique_ptr<Reader>> MeteredBackend::open(const std::string& key) {
  return inner_.open(key);
}
Status MeteredBackend::remove(const std::string& key) {
  return inner_.remove(key);
}
Result<std::vector<std::string>> MeteredBackend::list() {
  return inner_.list();
}
bool MeteredBackend::exists(const std::string& key) {
  return inner_.exists(key);
}
std::uint64_t MeteredBackend::total_bytes_stored() const noexcept {
  return inner_.total_bytes_stored();
}

// ----------------------------------------------------------------- faulty

class FaultyBackend::FaultyWriter final : public Writer {
 public:
  FaultyWriter(std::unique_ptr<Writer> inner,
               std::shared_ptr<std::atomic<std::uint64_t>> budget)
      : inner_(std::move(inner)), budget_(std::move(budget)) {}

  Status write(std::span<const std::byte> data) override {
    std::uint64_t before =
        budget_->load(std::memory_order_relaxed);
    if (before < data.size()) {
      budget_->store(0, std::memory_order_relaxed);
      return io_error("injected storage fault (budget exhausted)");
    }
    budget_->fetch_sub(data.size(), std::memory_order_relaxed);
    return inner_->write(data);
  }
  Status close() override { return inner_->close(); }
  std::uint64_t bytes_written() const noexcept override {
    return inner_->bytes_written();
  }

 private:
  std::unique_ptr<Writer> inner_;
  std::shared_ptr<std::atomic<std::uint64_t>> budget_;
};

FaultyBackend::FaultyBackend(StorageBackend& inner,
                             std::uint64_t fail_after_bytes)
    : inner_(inner),
      budget_(std::make_shared<std::atomic<std::uint64_t>>(
          fail_after_bytes)) {}

Result<std::unique_ptr<Writer>> FaultyBackend::create(const std::string& key) {
  auto w = inner_.create(key);
  if (!w.is_ok()) return w.status();
  return std::unique_ptr<Writer>(
      new FaultyWriter(std::move(w.value()), budget_));
}
Result<std::unique_ptr<Reader>> FaultyBackend::open(const std::string& key) {
  return inner_.open(key);
}
Status FaultyBackend::remove(const std::string& key) {
  return inner_.remove(key);
}
Result<std::vector<std::string>> FaultyBackend::list() {
  return inner_.list();
}
bool FaultyBackend::exists(const std::string& key) {
  return inner_.exists(key);
}
std::uint64_t FaultyBackend::total_bytes_stored() const noexcept {
  return inner_.total_bytes_stored();
}

}  // namespace ickpt::storage

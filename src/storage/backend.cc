#include "storage/backend.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>

#include "obs/metrics.h"

namespace ickpt::storage {

namespace fs = std::filesystem;

// ------------------------------------------------------------------- file

namespace {

class FileWriter final : public Writer {
 public:
  FileWriter(fs::path tmp, fs::path final_path,
             std::atomic<std::uint64_t>* total)
      : tmp_(std::move(tmp)), final_(std::move(final_path)), total_(total) {
    os_.open(tmp_, std::ios::binary | std::ios::trunc);
  }
  ~FileWriter() override {
    if (!closed_) {
      os_.close();
      std::error_code ec;
      fs::remove(tmp_, ec);  // abort: discard partial object
    }
  }
  Status write(std::span<const std::byte> data) override {
    if (closed_) return failed_precondition("write after close");
    os_.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!os_) return io_error("file write failed: " + tmp_.string());
    bytes_ += data.size();
    return Status::ok();
  }
  Status close() override {
    if (closed_) return Status::ok();
    os_.flush();
    if (!os_) return io_error("flush failed: " + tmp_.string());
    os_.close();
    std::error_code ec;
    fs::rename(tmp_, final_, ec);
    if (ec) return io_error("rename failed: " + ec.message());
    closed_ = true;
    total_->fetch_add(bytes_, std::memory_order_relaxed);
    return Status::ok();
  }
  std::uint64_t bytes_written() const noexcept override { return bytes_; }

 private:
  fs::path tmp_, final_;
  std::ofstream os_;
  std::uint64_t bytes_ = 0;
  bool closed_ = false;
  std::atomic<std::uint64_t>* total_;
};

class FileReader final : public Reader {
 public:
  explicit FileReader(const fs::path& path) : size_(fs::file_size(path)) {
    is_.open(path, std::ios::binary);
  }
  Result<std::size_t> read(std::span<std::byte> out) override {
    is_.read(reinterpret_cast<char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
    auto got = static_cast<std::size_t>(is_.gcount());
    if (got == 0 && !is_.eof()) return io_error("file read failed");
    return got;
  }
  bool supports_read_at() const noexcept override { return true; }
  Result<std::size_t> read_at(std::uint64_t offset,
                              std::span<std::byte> out) override {
    if (offset >= size_) return std::size_t{0};
    is_.clear();
    is_.seekg(static_cast<std::streamoff>(offset));
    if (!is_) return io_error("file seek failed");
    is_.read(reinterpret_cast<char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
    auto got = static_cast<std::size_t>(is_.gcount());
    if (got == 0 && !is_.eof()) return io_error("file read failed");
    return got;
  }
  std::uint64_t size() const noexcept override { return size_; }

 private:
  std::ifstream is_;
  std::uint64_t size_;
};

class FileBackend final : public StorageBackend {
 public:
  explicit FileBackend(fs::path dir) : dir_(std::move(dir)) {}

  Result<std::unique_ptr<Writer>> create(const std::string& key) override {
    fs::path final_path = dir_ / key;
    std::error_code ec;
    fs::create_directories(final_path.parent_path(), ec);
    fs::path tmp = final_path;
    tmp += ".tmp";
    auto w = std::make_unique<FileWriter>(tmp, final_path, &total_);
    return std::unique_ptr<Writer>(std::move(w));
  }

  Result<std::unique_ptr<Reader>> open(const std::string& key) override {
    fs::path p = dir_ / key;
    std::error_code ec;
    if (!fs::exists(p, ec)) return not_found("no such object: " + key);
    return std::unique_ptr<Reader>(new FileReader(p));
  }

  Status remove(const std::string& key) override {
    std::error_code ec;
    if (!fs::remove(dir_ / key, ec)) {
      return not_found("no such object: " + key);
    }
    return Status::ok();
  }

  Result<std::vector<std::string>> list() override {
    std::vector<std::string> keys;
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(dir_, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_regular_file()) {
        keys.push_back(fs::relative(it->path(), dir_).string());
      }
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  bool exists(const std::string& key) override {
    std::error_code ec;
    return fs::exists(dir_ / key, ec);
  }

  std::uint64_t total_bytes_stored() const noexcept override {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  fs::path dir_;
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace

Result<std::unique_ptr<StorageBackend>> make_file_backend(
    const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) return io_error("cannot create " + directory + ": " + ec.message());
  return std::unique_ptr<StorageBackend>(new FileBackend(directory));
}

// ----------------------------------------------------------------- memory

namespace {

// Objects are immutable once closed; readers share the buffer instead
// of copying it, so many concurrent readers of one object (parallel
// restore shards) cost O(1) memory each.
struct MemoryStore {
  std::mutex mu;
  std::map<std::string, std::shared_ptr<const std::vector<std::byte>>> objects;
  std::atomic<std::uint64_t> total{0};
};

class MemoryWriter final : public Writer {
 public:
  MemoryWriter(std::shared_ptr<MemoryStore> store, std::string key)
      : store_(std::move(store)), key_(std::move(key)) {}
  Status write(std::span<const std::byte> data) override {
    if (closed_) return failed_precondition("write after close");
    buf_.insert(buf_.end(), data.begin(), data.end());
    return Status::ok();
  }
  Status close() override {
    if (closed_) return Status::ok();
    closed_ = true;
    bytes_ = buf_.size();
    store_->total.fetch_add(buf_.size(), std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(store_->mu);
    store_->objects[key_] =
        std::make_shared<const std::vector<std::byte>>(std::move(buf_));
    return Status::ok();
  }
  std::uint64_t bytes_written() const noexcept override {
    return closed_ ? bytes_ : buf_.size();
  }

 private:
  std::shared_ptr<MemoryStore> store_;
  std::string key_;
  std::vector<std::byte> buf_;
  std::uint64_t bytes_ = 0;
  bool closed_ = false;
};

class MemoryReader final : public Reader {
 public:
  explicit MemoryReader(std::shared_ptr<const std::vector<std::byte>> data)
      : data_(std::move(data)) {}
  Result<std::size_t> read(std::span<std::byte> out) override {
    std::size_t n = std::min(out.size(), data_->size() - pos_);
    std::memcpy(out.data(), data_->data() + pos_, n);
    pos_ += n;
    return n;
  }
  bool supports_read_at() const noexcept override { return true; }
  Result<std::size_t> read_at(std::uint64_t offset,
                              std::span<std::byte> out) override {
    if (offset >= data_->size()) return std::size_t{0};
    std::size_t n = std::min<std::uint64_t>(out.size(),
                                            data_->size() - offset);
    std::memcpy(out.data(), data_->data() + offset, n);
    return n;
  }
  std::uint64_t size() const noexcept override { return data_->size(); }

 private:
  std::shared_ptr<const std::vector<std::byte>> data_;
  std::size_t pos_ = 0;
};

class MemoryBackend final : public StorageBackend {
 public:
  MemoryBackend() : store_(std::make_shared<MemoryStore>()) {}

  Result<std::unique_ptr<Writer>> create(const std::string& key) override {
    return std::unique_ptr<Writer>(new MemoryWriter(store_, key));
  }
  Result<std::unique_ptr<Reader>> open(const std::string& key) override {
    std::lock_guard<std::mutex> lock(store_->mu);
    auto it = store_->objects.find(key);
    if (it == store_->objects.end()) {
      return not_found("no such object: " + key);
    }
    return std::unique_ptr<Reader>(new MemoryReader(it->second));
  }
  Status remove(const std::string& key) override {
    std::lock_guard<std::mutex> lock(store_->mu);
    if (store_->objects.erase(key) == 0) {
      return not_found("no such object: " + key);
    }
    return Status::ok();
  }
  Result<std::vector<std::string>> list() override {
    std::lock_guard<std::mutex> lock(store_->mu);
    std::vector<std::string> keys;
    keys.reserve(store_->objects.size());
    for (const auto& [k, data] : store_->objects) keys.push_back(k);
    return keys;
  }
  bool exists(const std::string& key) override {
    std::lock_guard<std::mutex> lock(store_->mu);
    return store_->objects.count(key) > 0;
  }
  std::uint64_t total_bytes_stored() const noexcept override {
    return store_->total.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<MemoryStore> store_;
};

// ------------------------------------------------------------------- null

class NullWriter final : public Writer {
 public:
  explicit NullWriter(std::atomic<std::uint64_t>* total) : total_(total) {}
  Status write(std::span<const std::byte> data) override {
    bytes_ += data.size();
    return Status::ok();
  }
  Status close() override {
    if (!closed_) {
      closed_ = true;
      total_->fetch_add(bytes_, std::memory_order_relaxed);
    }
    return Status::ok();
  }
  std::uint64_t bytes_written() const noexcept override { return bytes_; }

 private:
  std::uint64_t bytes_ = 0;
  bool closed_ = false;
  std::atomic<std::uint64_t>* total_;
};

class NullBackend final : public StorageBackend {
 public:
  Result<std::unique_ptr<Writer>> create(const std::string&) override {
    return std::unique_ptr<Writer>(new NullWriter(&total_));
  }
  Result<std::unique_ptr<Reader>> open(const std::string& key) override {
    return not_found("null backend stores nothing: " + key);
  }
  Status remove(const std::string&) override { return Status::ok(); }
  Result<std::vector<std::string>> list() override {
    return std::vector<std::string>{};
  }
  bool exists(const std::string&) override { return false; }
  std::uint64_t total_bytes_stored() const noexcept override {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace

std::unique_ptr<StorageBackend> make_memory_backend() {
  return std::make_unique<MemoryBackend>();
}

std::unique_ptr<StorageBackend> make_null_backend() {
  return std::make_unique<NullBackend>();
}

// -------------------------------------------------------------- throttled

class ThrottledBackend::ThrottledWriter final : public Writer {
 public:
  ThrottledWriter(std::unique_ptr<Writer> inner, double bytes_per_second,
                  bool really_sleep,
                  std::shared_ptr<std::atomic<std::uint64_t>> counter)
      : inner_(std::move(inner)),
        bps_(bytes_per_second),
        sleep_(really_sleep),
        counter_(std::move(counter)) {}

  Status write(std::span<const std::byte> data) override {
    ICKPT_RETURN_IF_ERROR(inner_->write(data));
    counter_->fetch_add(data.size(), std::memory_order_relaxed);
    if (sleep_ && bps_ > 0) {
      auto stall = std::chrono::duration<double>(
          static_cast<double>(data.size()) / bps_);
      std::this_thread::sleep_for(stall);
    }
    return Status::ok();
  }
  Status close() override { return inner_->close(); }
  std::uint64_t bytes_written() const noexcept override {
    return inner_->bytes_written();
  }

 private:
  std::unique_ptr<Writer> inner_;
  double bps_;
  bool sleep_;
  std::shared_ptr<std::atomic<std::uint64_t>> counter_;
};

ThrottledBackend::ThrottledBackend(StorageBackend& inner,
                                   double bytes_per_second, bool really_sleep)
    : inner_(inner),
      bytes_per_second_(bytes_per_second),
      really_sleep_(really_sleep),
      throttled_bytes_(std::make_shared<std::atomic<std::uint64_t>>(0)) {}

Result<std::unique_ptr<Writer>> ThrottledBackend::create(
    const std::string& key) {
  auto w = inner_.create(key);
  if (!w.is_ok()) return w.status();
  return std::unique_ptr<Writer>(
      new ThrottledWriter(std::move(w.value()), bytes_per_second_,
                          really_sleep_, throttled_bytes_));
}

Result<std::unique_ptr<Reader>> ThrottledBackend::open(
    const std::string& key) {
  return inner_.open(key);
}
Status ThrottledBackend::remove(const std::string& key) {
  return inner_.remove(key);
}
Result<std::vector<std::string>> ThrottledBackend::list() {
  return inner_.list();
}
bool ThrottledBackend::exists(const std::string& key) {
  return inner_.exists(key);
}
std::uint64_t ThrottledBackend::total_bytes_stored() const noexcept {
  return inner_.total_bytes_stored();
}
double ThrottledBackend::modeled_seconds() const noexcept {
  if (bytes_per_second_ <= 0) return 0;
  return static_cast<double>(
             throttled_bytes_->load(std::memory_order_relaxed)) /
         bytes_per_second_;
}

// ---------------------------------------------------------------- metered

class MeteredBackend::MeteredWriter final : public Writer {
 public:
  MeteredWriter(std::unique_ptr<Writer> inner, obs::Counter& objects,
                obs::Counter& bytes, obs::Histogram& write_ns,
                obs::Histogram& object_bytes)
      : inner_(std::move(inner)),
        objects_(objects),
        bytes_(bytes),
        write_ns_(write_ns),
        object_bytes_(object_bytes),
        start_ns_(obs::now_ns()) {}

  Status write(std::span<const std::byte> data) override {
    return inner_->write(data);
  }

  Status close() override {
    ICKPT_RETURN_IF_ERROR(inner_->close());
    const std::uint64_t n = inner_->bytes_written();
    objects_.inc();
    bytes_.inc(n);
    if (obs::enabled()) {
      write_ns_.record(obs::now_ns() - start_ns_);
      object_bytes_.record(n);
    }
    return Status::ok();
  }

  std::uint64_t bytes_written() const noexcept override {
    return inner_->bytes_written();
  }

 private:
  std::unique_ptr<Writer> inner_;
  obs::Counter& objects_;
  obs::Counter& bytes_;
  obs::Histogram& write_ns_;
  obs::Histogram& object_bytes_;
  std::uint64_t start_ns_;
};

MeteredBackend::MeteredBackend(StorageBackend& inner,
                               const std::string& prefix)
    : inner_(inner),
      objects_(obs::registry().counter(prefix + ".objects")),
      bytes_(obs::registry().counter(prefix + ".bytes")),
      write_ns_(obs::registry().histogram(prefix + ".write_ns")),
      object_bytes_(obs::registry().histogram(prefix + ".object_bytes",
                                              obs::Unit::kBytes)) {}

Result<std::unique_ptr<Writer>> MeteredBackend::create(
    const std::string& key) {
  auto w = inner_.create(key);
  if (!w.is_ok()) return w.status();
  return std::unique_ptr<Writer>(new MeteredWriter(
      std::move(w.value()), objects_, bytes_, write_ns_, object_bytes_));
}
Result<std::unique_ptr<Reader>> MeteredBackend::open(const std::string& key) {
  return inner_.open(key);
}
Status MeteredBackend::remove(const std::string& key) {
  return inner_.remove(key);
}
Result<std::vector<std::string>> MeteredBackend::list() {
  return inner_.list();
}
bool MeteredBackend::exists(const std::string& key) {
  return inner_.exists(key);
}
std::uint64_t MeteredBackend::total_bytes_stored() const noexcept {
  return inner_.total_bytes_stored();
}

// ----------------------------------------------------------------- faulty

class FaultyBackend::FaultyWriter final : public Writer {
 public:
  FaultyWriter(std::unique_ptr<Writer> inner,
               std::shared_ptr<std::atomic<std::uint64_t>> budget)
      : inner_(std::move(inner)), budget_(std::move(budget)) {}

  Status write(std::span<const std::byte> data) override {
    std::uint64_t before =
        budget_->load(std::memory_order_relaxed);
    if (before < data.size()) {
      budget_->store(0, std::memory_order_relaxed);
      return io_error("injected storage fault (budget exhausted)");
    }
    budget_->fetch_sub(data.size(), std::memory_order_relaxed);
    return inner_->write(data);
  }
  Status close() override { return inner_->close(); }
  std::uint64_t bytes_written() const noexcept override {
    return inner_->bytes_written();
  }

 private:
  std::unique_ptr<Writer> inner_;
  std::shared_ptr<std::atomic<std::uint64_t>> budget_;
};

FaultyBackend::FaultyBackend(StorageBackend& inner,
                             std::uint64_t fail_after_bytes)
    : inner_(inner),
      budget_(std::make_shared<std::atomic<std::uint64_t>>(
          fail_after_bytes)) {}

Result<std::unique_ptr<Writer>> FaultyBackend::create(const std::string& key) {
  auto w = inner_.create(key);
  if (!w.is_ok()) return w.status();
  return std::unique_ptr<Writer>(
      new FaultyWriter(std::move(w.value()), budget_));
}
Result<std::unique_ptr<Reader>> FaultyBackend::open(const std::string& key) {
  return inner_.open(key);
}
Status FaultyBackend::remove(const std::string& key) {
  return inner_.remove(key);
}
Result<std::vector<std::string>> FaultyBackend::list() {
  return inner_.list();
}
bool FaultyBackend::exists(const std::string& key) {
  return inner_.exists(key);
}
std::uint64_t FaultyBackend::total_bytes_stored() const noexcept {
  return inner_.total_bytes_stored();
}

}  // namespace ickpt::storage

// Distribution analysis of per-slice metrics.
//
// The paper reports max and average; for provisioning a checkpoint
// device the tail matters too (a p99 IWS burst stalls the pipeline
// that max alone under- or over-states).  Quantiles and histograms
// over the IB series extend Tables 2/4 with distributional columns.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/time_series.h"

namespace ickpt::analysis {

/// Quantile with linear interpolation; q in [0, 1].  Returns 0 for an
/// empty sample set.  The input is copied and sorted internally.
double quantile(std::vector<double> values, double q);

struct Quantiles {
  std::size_t samples = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double max = 0;
};

/// Quantiles of the per-slice IB (bytes/s), skipping warm-up slices.
Quantiles ib_quantiles(const trace::TimeSeries& series,
                       std::size_t skip_first = 0);

struct HistogramBin {
  double lo = 0;
  double hi = 0;
  std::size_t count = 0;
};

/// Fixed-width histogram over [min, max] of the values (empty input ->
/// empty result; zero-width range -> single bin holding everything).
std::vector<HistogramBin> histogram(const std::vector<double>& values,
                                    std::size_t bins);

}  // namespace ickpt::analysis

// Feasibility analysis: compare measured incremental bandwidth against
// the technology ceilings the paper uses (Section 3):
//
//   Quadrics QsNet II (Elan4) network: 900 MB/s peak
//   SCSI secondary storage:            320 MB/s peak
//
// "By comparing the required bandwidth with the bandwidth available,
//  we will determine the feasibility of implementing a checkpoint
//  mechanism."
#pragma once

#include <string>

#include "analysis/metrics.h"
#include "common/units.h"

namespace ickpt::analysis {

/// 2004-era technology constants from the paper.
struct TechnologyCeilings {
  double network_bytes_per_s = 900.0 * static_cast<double>(kMB);
  double storage_bytes_per_s = 320.0 * static_cast<double>(kMB);
};

struct FeasibilityVerdict {
  double required_avg = 0;   ///< bytes/s
  double required_max = 0;   ///< bytes/s
  double frac_of_network_avg = 0;  ///< avg IB / network ceiling
  double frac_of_storage_avg = 0;  ///< avg IB / storage ceiling
  double frac_of_network_max = 0;
  double frac_of_storage_max = 0;
  bool network_feasible = false;   ///< max IB within network ceiling
  bool storage_feasible = false;   ///< max IB within storage ceiling

  bool feasible() const noexcept {
    return network_feasible && storage_feasible;
  }
};

FeasibilityVerdict assess_feasibility(const IBStats& stats,
                                      const TechnologyCeilings& tech = {});

/// One-line human-readable verdict for reports.
std::string describe(const FeasibilityVerdict& verdict);

}  // namespace ickpt::analysis

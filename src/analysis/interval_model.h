// Optimal checkpoint-interval modelling (Young / Daly).
//
// The paper motivates frequent checkpointing with BlueGene/L-class
// failure rates ("failures every few hours", §1) and measures the cost
// side: the IWS determines how many bytes each incremental checkpoint
// moves, and the device bandwidth turns that into seconds.  This
// module closes the loop: given the measured checkpoint cost and a
// machine MTBF, it yields the overhead-minimizing checkpoint interval
// and the expected efficiency — the quantity a system architect
// actually provisions against.
#pragma once

namespace ickpt::analysis {

/// Young's first-order optimum: interval = sqrt(2 * cost * mtbf).
/// Valid when cost << mtbf.
double young_interval(double checkpoint_cost_s, double mtbf_s);

/// Daly's higher-order refinement (J. T. Daly, 2006):
///   interval = sqrt(2 c M) * [1 + 1/3 sqrt(c/(2M)) + (1/9)(c/(2M))]
///              - c                      for c < 2M,
///   interval = M                        otherwise.
double daly_interval(double checkpoint_cost_s, double mtbf_s);

/// Expected fraction of wall time lost to checkpointing + rework +
/// restart for a given interval (first-order model):
///   waste = c/T + (T/2 + r) / M
/// where c = checkpoint cost, T = interval, r = restart cost, M = MTBF.
double expected_waste(double interval_s, double checkpoint_cost_s,
                      double mtbf_s, double restart_cost_s = 0.0);

struct IntervalPlan {
  double checkpoint_cost_s = 0;
  double interval_s = 0;   ///< Daly-optimal
  double waste = 0;        ///< expected lost fraction at that interval
  double efficiency = 0;   ///< 1 - waste, clamped to [0, 1]
};

/// Plan for an application: incremental checkpoint cost = bytes_per
/// checkpoint / device bandwidth; restart cost = footprint / bandwidth
/// (a full restore reads everything).
IntervalPlan plan_interval(double checkpoint_bytes, double footprint_bytes,
                           double device_bytes_per_s, double mtbf_s);

}  // namespace ickpt::analysis

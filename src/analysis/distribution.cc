#include "analysis/distribution.h"

#include <algorithm>
#include <cmath>

namespace ickpt::analysis {

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double pos = q * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

Quantiles ib_quantiles(const trace::TimeSeries& series,
                       std::size_t skip_first) {
  std::vector<double> ib;
  const auto& samples = series.samples();
  for (std::size_t i = skip_first; i < samples.size(); ++i) {
    ib.push_back(samples[i].ib_bytes_per_s());
  }
  Quantiles out;
  out.samples = ib.size();
  if (ib.empty()) return out;
  out.p50 = quantile(ib, 0.50);
  out.p90 = quantile(ib, 0.90);
  out.p99 = quantile(ib, 0.99);
  out.max = *std::max_element(ib.begin(), ib.end());
  return out;
}

std::vector<HistogramBin> histogram(const std::vector<double>& values,
                                    std::size_t bins) {
  std::vector<HistogramBin> out;
  if (values.empty() || bins == 0) return out;
  auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
  double mn = *mn_it, mx = *mx_it;
  if (mn == mx) {
    out.push_back(HistogramBin{mn, mx, values.size()});
    return out;
  }
  double width = (mx - mn) / static_cast<double>(bins);
  out.resize(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    out[b].lo = mn + static_cast<double>(b) * width;
    out[b].hi = out[b].lo + width;
  }
  for (double v : values) {
    auto b = static_cast<std::size_t>((v - mn) / width);
    if (b >= bins) b = bins - 1;  // v == max
    ++out[b].count;
  }
  return out;
}

}  // namespace ickpt::analysis

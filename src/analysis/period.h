// Iteration-period detection from the IWS time series.
//
// The paper observes that "the gap between processing bursts usually
// identifies the duration of the main iteration of these codes"
// (Section 6.2) and argues that this regular, bulk-synchronous
// structure can be discovered automatically at run time.  This module
// is that discovery: autocorrelation of the IWS series yields the main
// iteration period (Table 3), and re-sampling at that period yields
// the fraction of memory overwritten per iteration.
#pragma once

#include <cstddef>
#include <vector>

namespace ickpt::analysis {

struct PeriodEstimate {
  bool found = false;
  double period = 0.0;       ///< seconds
  double confidence = 0.0;   ///< autocorrelation peak value, in [0,1]
  std::size_t lag = 0;       ///< peak lag in samples
};

/// Detect the dominant period of `series` sampled every `dt` seconds.
/// `min_confidence` is the minimum normalized autocorrelation at the
/// peak.  Returns found=false for flat or aperiodic series, or when
/// the period is below the sampling resolution (2*dt).
PeriodEstimate detect_period(const std::vector<double>& series, double dt,
                             double min_confidence = 0.25);

/// Normalized (biased) autocorrelation r[k] for k in [0, max_lag].
/// r[0] == 1 unless the series is constant (then all zeros).
std::vector<double> autocorrelation(const std::vector<double>& series,
                                    std::size_t max_lag);

}  // namespace ickpt::analysis

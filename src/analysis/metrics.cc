#include "analysis/metrics.h"

#include "common/stats.h"

namespace ickpt::analysis {

IBStats compute_ib_stats(const trace::TimeSeries& series,
                         std::size_t skip_first) {
  SummaryStats ib(skip_first), iws(skip_first), ratio(skip_first);
  for (const auto& s : series.samples()) {
    ib.add(s.ib_bytes_per_s());
    iws.add(static_cast<double>(s.iws_bytes));
    ratio.add(s.iws_footprint_ratio());
  }
  IBStats out;
  out.samples = ib.count();
  out.avg_ib = ib.mean();
  out.max_ib = ib.max();
  out.avg_iws = iws.mean();
  out.max_iws = iws.max();
  out.avg_ratio = ratio.mean();
  return out;
}

FootprintStats compute_footprint_stats(const trace::TimeSeries& series,
                                       std::size_t skip_first) {
  SummaryStats fp(skip_first);
  for (const auto& s : series.samples()) {
    fp.add(static_cast<double>(s.footprint_bytes));
  }
  FootprintStats out;
  out.max_bytes = fp.max();
  out.avg_bytes = fp.mean();
  return out;
}

TrafficStats compute_traffic_stats(const trace::TimeSeries& series,
                                   std::size_t skip_first) {
  SummaryStats recv(skip_first);
  for (const auto& s : series.samples()) {
    recv.add(static_cast<double>(s.recv_bytes));
  }
  TrafficStats out;
  out.avg_recv = recv.mean();
  out.max_recv = recv.max();
  out.total_recv = recv.mean() * static_cast<double>(recv.count());
  return out;
}

}  // namespace ickpt::analysis

// Technology-trends projection (paper §6.6).
//
// The paper extrapolates: processor performance grows ~60 %/year while
// memory grows ~7 %/year, so scientific application throughput (and
// with it the rate at which memory is dirtied) roughly doubles every
// 2-3 years — while network and storage bandwidth grow faster still,
// making incremental checkpointing *more* feasible over time.  This
// module makes that argument quantitative and testable.
#pragma once

#include <vector>

namespace ickpt::analysis {

struct TrendModel {
  /// Annual growth rates (fraction per year).
  double app_ib_growth = 0.30;       ///< app doubling every ~2.6 years
  double network_growth = 0.80;      ///< e.g. QsNet 900 MB/s -> 10 GB/s IB by 2005
  double storage_growth = 0.40;

  /// Year-0 values in bytes/s.
  double app_ib0 = 0;
  double network0 = 0;
  double storage0 = 0;
};

struct TrendPoint {
  int year = 0;
  double app_ib = 0;
  double network = 0;
  double storage = 0;
  double frac_of_network = 0;
  double frac_of_storage = 0;
  bool feasible = false;
};

/// Project `years` points (year 0 .. years-1) of the model.
std::vector<TrendPoint> project(const TrendModel& model, int years);

/// First projected year in which the app's IB exceeds the slower
/// device (-1 if it never does within `horizon` years).  With the
/// paper's growth assumptions this returns -1: the headroom widens.
int infeasibility_year(const TrendModel& model, int horizon);

}  // namespace ickpt::analysis

#include "analysis/window.h"

#include <algorithm>

namespace ickpt::analysis {

Result<std::vector<std::size_t>> window_iws(const trace::WriteTrace& trace,
                                            std::size_t k) {
  if (k == 0) return invalid_argument("window_iws: k must be >= 1");
  const std::uint64_t slices = trace.slice_count();
  const std::size_t windows = static_cast<std::size_t>(slices / k);
  std::vector<std::size_t> iws(windows, 0);
  if (windows == 0) return iws;

  // One pass per window over a page bitmap (events are slice-ordered,
  // but window membership is computed from the event's slice, so the
  // pass is a single sweep with per-window bitmap resets).
  std::vector<std::uint8_t> seen(trace.region_pages(), 0);
  std::size_t current_window = 0;
  std::size_t current_count = 0;

  auto flush_to = [&](std::size_t window) {
    while (current_window < window && current_window < windows) {
      iws[current_window] = current_count;
      current_count = 0;
      std::fill(seen.begin(), seen.end(), 0);
      ++current_window;
    }
  };

  for (const auto& e : trace.events()) {
    std::size_t window = static_cast<std::size_t>(e.slice / k);
    if (window >= windows) break;  // trailing partial window
    flush_to(window);
    for (std::uint32_t p = 0; p < e.page_count; ++p) {
      std::size_t page = std::size_t{e.first_page} + p;
      if (page < seen.size() && !seen[page]) {
        seen[page] = 1;
        ++current_count;
      }
    }
  }
  flush_to(windows);
  return iws;
}

Result<std::vector<WindowPoint>> ib_curve(
    const trace::WriteTrace& trace,
    const std::vector<std::size_t>& multipliers) {
  std::vector<WindowPoint> out;
  out.reserve(multipliers.size());
  for (std::size_t k : multipliers) {
    auto iws = window_iws(trace, k);
    if (!iws.is_ok()) return iws.status();
    WindowPoint p;
    p.timeslice = static_cast<double>(k) * trace.timeslice();
    double sum = 0, mx = 0;
    for (std::size_t v : *iws) {
      sum += static_cast<double>(v);
      mx = std::max(mx, static_cast<double>(v));
    }
    if (!iws->empty()) {
      p.avg_iws_pages = sum / static_cast<double>(iws->size());
      p.max_iws_pages = mx;
      p.avg_ib_pages_per_s = p.avg_iws_pages / p.timeslice;
      p.max_ib_pages_per_s = p.max_iws_pages / p.timeslice;
    }
    out.push_back(p);
  }
  return out;
}

}  // namespace ickpt::analysis

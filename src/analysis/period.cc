#include "analysis/period.h"

#include <algorithm>
#include <cmath>

namespace ickpt::analysis {

std::vector<double> autocorrelation(const std::vector<double>& series,
                                    std::size_t max_lag) {
  const std::size_t n = series.size();
  std::vector<double> r(max_lag + 1, 0.0);
  if (n < 2) return r;

  double mean = 0;
  for (double x : series) mean += x;
  mean /= static_cast<double>(n);

  double var = 0;
  for (double x : series) var += (x - mean) * (x - mean);
  if (var <= 0) return r;  // constant series

  for (std::size_t k = 0; k <= max_lag && k < n; ++k) {
    double acc = 0;
    for (std::size_t i = 0; i + k < n; ++i) {
      acc += (series[i] - mean) * (series[i + k] - mean);
    }
    r[k] = acc / var;
  }
  return r;
}

PeriodEstimate detect_period(const std::vector<double>& series, double dt,
                             double min_confidence) {
  PeriodEstimate est;
  const std::size_t n = series.size();
  if (n < 8 || dt <= 0) return est;

  // Look for peaks up to half the series length.
  const std::size_t max_lag = n / 2;
  std::vector<double> r = autocorrelation(series, max_lag);

  // First local maximum above the confidence floor, scanning outward
  // from lag 2 (lag 1 is usually just smoothness).
  std::size_t best_lag = 0;
  double best_val = min_confidence;
  for (std::size_t k = 2; k + 1 <= max_lag; ++k) {
    if (r[k] > r[k - 1] && r[k] >= r[k + 1] && r[k] > best_val) {
      best_lag = k;
      best_val = r[k];
      break;  // first qualifying peak = fundamental period
    }
  }
  if (best_lag == 0) return est;

  // Refine: if a multiple of the peak has notably higher correlation,
  // the first peak was a sub-harmonic artifact; keep the fundamental
  // only if its strength is comparable.
  for (std::size_t mult = 2; mult * best_lag <= max_lag; ++mult) {
    std::size_t k = mult * best_lag;
    if (r[k] > best_val * 1.2) {
      best_lag = k;
      best_val = r[k];
    }
  }

  est.found = true;
  est.lag = best_lag;
  est.period = static_cast<double>(best_lag) * dt;
  est.confidence = std::min(1.0, best_val);
  return est;
}

}  // namespace ickpt::analysis

#include "analysis/feasibility.h"

#include <cstdio>

namespace ickpt::analysis {

FeasibilityVerdict assess_feasibility(const IBStats& stats,
                                      const TechnologyCeilings& tech) {
  FeasibilityVerdict v;
  v.required_avg = stats.avg_ib;
  v.required_max = stats.max_ib;
  if (tech.network_bytes_per_s > 0) {
    v.frac_of_network_avg = stats.avg_ib / tech.network_bytes_per_s;
    v.frac_of_network_max = stats.max_ib / tech.network_bytes_per_s;
  }
  if (tech.storage_bytes_per_s > 0) {
    v.frac_of_storage_avg = stats.avg_ib / tech.storage_bytes_per_s;
    v.frac_of_storage_max = stats.max_ib / tech.storage_bytes_per_s;
  }
  v.network_feasible = stats.max_ib <= tech.network_bytes_per_s;
  v.storage_feasible = stats.max_ib <= tech.storage_bytes_per_s;
  return v;
}

std::string describe(const FeasibilityVerdict& v) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "avg %s (%.0f%% net, %.0f%% disk), max %s -> %s",
                format_bandwidth(v.required_avg).c_str(),
                v.frac_of_network_avg * 100.0, v.frac_of_storage_avg * 100.0,
                format_bandwidth(v.required_max).c_str(),
                v.feasible() ? "FEASIBLE" : "EXCEEDS CEILING");
  return buf;
}

}  // namespace ickpt::analysis

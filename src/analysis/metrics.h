// Metrics over timeslice series: the paper's two performance metrics
// (Section 6.1) and the footprint characterization (Table 2).
//
//   Incremental Working Set (IWS): pages written in a timeslice.
//   Incremental Bandwidth (IB):    IWS size / timeslice length.
#pragma once

#include <cstddef>

#include "trace/time_series.h"

namespace ickpt::analysis {

/// Max/avg IB and IWS over a series, optionally skipping warm-up
/// slices (the paper excludes the initialization burst, Section 6.3).
struct IBStats {
  std::size_t samples = 0;
  double avg_ib = 0;      ///< bytes/s
  double max_ib = 0;      ///< bytes/s
  double avg_iws = 0;     ///< bytes
  double max_iws = 0;     ///< bytes
  double avg_ratio = 0;   ///< mean IWS / footprint, in [0,1]
};

IBStats compute_ib_stats(const trace::TimeSeries& series,
                         std::size_t skip_first = 0);

/// Footprint characterization (Table 2).
struct FootprintStats {
  double max_bytes = 0;
  double avg_bytes = 0;
};

FootprintStats compute_footprint_stats(const trace::TimeSeries& series,
                                       std::size_t skip_first = 0);

/// Aggregate communication volume.
struct TrafficStats {
  double total_recv = 0;   ///< bytes
  double avg_recv = 0;     ///< bytes per slice
  double max_recv = 0;     ///< bytes in the busiest slice
};

TrafficStats compute_traffic_stats(const trace::TimeSeries& series,
                                   std::size_t skip_first = 0);

}  // namespace ickpt::analysis

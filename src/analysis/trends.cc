#include "analysis/trends.h"

#include <cmath>

namespace ickpt::analysis {

std::vector<TrendPoint> project(const TrendModel& model, int years) {
  std::vector<TrendPoint> out;
  out.reserve(static_cast<std::size_t>(years));
  for (int y = 0; y < years; ++y) {
    TrendPoint p;
    p.year = y;
    p.app_ib = model.app_ib0 * std::pow(1.0 + model.app_ib_growth, y);
    p.network = model.network0 * std::pow(1.0 + model.network_growth, y);
    p.storage = model.storage0 * std::pow(1.0 + model.storage_growth, y);
    p.frac_of_network = p.network > 0 ? p.app_ib / p.network : 0;
    p.frac_of_storage = p.storage > 0 ? p.app_ib / p.storage : 0;
    p.feasible = p.app_ib <= p.network && p.app_ib <= p.storage;
    out.push_back(p);
  }
  return out;
}

int infeasibility_year(const TrendModel& model, int horizon) {
  for (const TrendPoint& p : project(model, horizon)) {
    if (!p.feasible) return p.year;
  }
  return -1;
}

}  // namespace ickpt::analysis

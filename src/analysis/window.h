// Window re-aggregation of write traces.
//
// A WriteTrace captured at a base timeslice carries the *sets* of
// pages written per slice.  Unioning k consecutive slices yields
// exactly the IWS of a k-times-longer timeslice — so one captured run
// reproduces the whole IB-vs-timeslice curve (Figure 2) without
// re-running the application per sweep point.  The benches use the
// direct sweep; this module provides the single-trace shortcut and
// the cross-validation between the two.
#pragma once

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "trace/write_trace.h"

namespace ickpt::analysis {

/// IWS (pages) per window of `k` consecutive base slices: element i is
/// the number of distinct pages written during slices [i*k, (i+1)*k).
/// Trailing partial windows are dropped (the paper reports whole
/// slices only).
Result<std::vector<std::size_t>> window_iws(const trace::WriteTrace& trace,
                                            std::size_t k);

struct WindowPoint {
  double timeslice = 0;   ///< seconds (k * base timeslice)
  double avg_iws_pages = 0;
  double max_iws_pages = 0;
  double avg_ib_pages_per_s = 0;
  double max_ib_pages_per_s = 0;
};

/// The Figure-2 curve from one trace: one point per multiplier in
/// `multipliers` (e.g. {1, 2, 5, 10, 20} with a 1 s base timeslice).
Result<std::vector<WindowPoint>> ib_curve(
    const trace::WriteTrace& trace,
    const std::vector<std::size_t>& multipliers);

}  // namespace ickpt::analysis

#include "analysis/bursts.h"

#include <algorithm>

#include "analysis/distribution.h"

namespace ickpt::analysis {

BurstSegmentation segment_bursts(const trace::TimeSeries& series,
                                 std::size_t skip_first) {
  BurstSegmentation out;
  const auto& samples = series.samples();
  if (samples.size() <= skip_first) return out;

  std::vector<double> iws;
  iws.reserve(samples.size() - skip_first);
  for (std::size_t i = skip_first; i < samples.size(); ++i) {
    iws.push_back(static_cast<double>(samples[i].iws_bytes));
  }
  double lo = quantile(iws, 0.20);
  double hi = quantile(iws, 0.80);
  out.threshold = (lo + hi) / 2.0;

  bool in_burst = false;
  Burst current;
  double burst_time = 0, gap_time = 0;
  for (std::size_t i = skip_first; i < samples.size(); ++i) {
    const auto& s = samples[i];
    const bool active =
        static_cast<double>(s.iws_bytes) > out.threshold;
    if (active) {
      burst_time += s.timeslice();
      if (!in_burst) {
        in_burst = true;
        current = Burst{};
        current.first_slice = i;
        current.t_start = s.t_start;
        current.peak_iws = 0;
      }
      current.last_slice = i;
      current.t_end = s.t_end;
      current.peak_iws = std::max(current.peak_iws,
                                  static_cast<double>(s.iws_bytes));
    } else {
      gap_time += s.timeslice();
      if (in_burst) {
        out.bursts.push_back(current);
        in_burst = false;
      }
    }
  }
  if (in_burst) out.bursts.push_back(current);

  if (!out.bursts.empty()) {
    double total_burst = 0;
    for (const auto& b : out.bursts) total_burst += b.duration();
    out.mean_burst_s = total_burst / static_cast<double>(out.bursts.size());
  }
  // Gaps between consecutive bursts only (leading/trailing partial
  // gaps would bias the mean).
  if (out.bursts.size() >= 2) {
    double total_gap = 0;
    for (std::size_t b = 1; b < out.bursts.size(); ++b) {
      total_gap += out.bursts[b].t_start - out.bursts[b - 1].t_end;
    }
    out.mean_gap_s =
        total_gap / static_cast<double>(out.bursts.size() - 1);
  }
  double total = burst_time + gap_time;
  out.duty_cycle = total > 0 ? burst_time / total : 0;
  return out;
}

}  // namespace ickpt::analysis

// Burst segmentation: classify the IWS time series into processing
// bursts and communication gaps (paper §6.2: "we can easily identify a
// regular pattern, with write bursts every 145s ... the communication
// bursts are placed between the processing bursts").
//
// A slice belongs to a burst when its IWS exceeds a threshold placed
// between the two modes of the series.  The segmentation yields the
// burst/gap durations and duty cycle — the quantities a checkpoint
// scheduler needs to pick placement (ablation X3).
#pragma once

#include <cstddef>
#include <vector>

#include "trace/time_series.h"

namespace ickpt::analysis {

struct Burst {
  std::size_t first_slice = 0;
  std::size_t last_slice = 0;   ///< inclusive
  double t_start = 0;
  double t_end = 0;
  double peak_iws = 0;          ///< bytes

  double duration() const noexcept { return t_end - t_start; }
};

struct BurstSegmentation {
  std::vector<Burst> bursts;
  double threshold = 0;         ///< bytes used to split burst/gap
  double mean_burst_s = 0;
  double mean_gap_s = 0;
  double duty_cycle = 0;        ///< burst time / total time
};

/// Segment `series` (skipping `skip_first` warm-up slices).  The
/// threshold defaults to the midpoint between the 20th and 80th IWS
/// percentiles; series with no bimodal structure yield zero or one
/// burst covering everything.
BurstSegmentation segment_bursts(const trace::TimeSeries& series,
                                 std::size_t skip_first = 0);

}  // namespace ickpt::analysis

#include "analysis/interval_model.h"

#include <algorithm>
#include <cmath>

namespace ickpt::analysis {

double young_interval(double checkpoint_cost_s, double mtbf_s) {
  if (checkpoint_cost_s <= 0 || mtbf_s <= 0) return 0;
  return std::sqrt(2.0 * checkpoint_cost_s * mtbf_s);
}

double daly_interval(double checkpoint_cost_s, double mtbf_s) {
  const double c = checkpoint_cost_s;
  const double m = mtbf_s;
  if (c <= 0 || m <= 0) return 0;
  if (c >= 2.0 * m) return m;
  const double ratio = c / (2.0 * m);
  const double base = std::sqrt(2.0 * c * m);
  return base * (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) - c;
}

double expected_waste(double interval_s, double checkpoint_cost_s,
                      double mtbf_s, double restart_cost_s) {
  if (interval_s <= 0 || mtbf_s <= 0) return 1.0;
  double waste = checkpoint_cost_s / interval_s +
                 (interval_s / 2.0 + restart_cost_s) / mtbf_s;
  return std::clamp(waste, 0.0, 1.0);
}

IntervalPlan plan_interval(double checkpoint_bytes, double footprint_bytes,
                           double device_bytes_per_s, double mtbf_s) {
  IntervalPlan plan;
  if (device_bytes_per_s <= 0 || mtbf_s <= 0) {
    plan.waste = 1.0;
    return plan;
  }
  plan.checkpoint_cost_s = checkpoint_bytes / device_bytes_per_s;
  const double restart = footprint_bytes / device_bytes_per_s;
  plan.interval_s = daly_interval(plan.checkpoint_cost_s, mtbf_s);
  plan.waste = expected_waste(plan.interval_s, plan.checkpoint_cost_s,
                              mtbf_s, restart);
  plan.efficiency = std::clamp(1.0 - plan.waste, 0.0, 1.0);
  return plan;
}

}  // namespace ickpt::analysis

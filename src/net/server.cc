#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <map>
#include <vector>

#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ickpt::net {

namespace {

/// Registry-owned net.* metrics (immortal, lock-free to record).
struct NetMetrics {
  obs::Counter& accepted;
  obs::Gauge& open;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Counter& protocol_errors;
  obs::Counter& idle_closed;
  obs::Counter& req_hello;
  obs::Counter& req_put;
  obs::Counter& req_get;
  obs::Counter& req_list;
  obs::Counter& req_delete;
  obs::Counter& req_stat;
  obs::Histogram& put_ns;
  obs::Histogram& get_ns;
  obs::Histogram& list_ns;
  obs::Histogram& delete_ns;
  obs::Histogram& stat_ns;

  static NetMetrics& get() {
    auto& r = obs::registry();
    static NetMetrics m{
        r.counter("net.connections"),
        r.gauge("net.conns_open"),
        r.counter("net.bytes_in"),
        r.counter("net.bytes_out"),
        r.counter("net.protocol_errors"),
        r.counter("net.idle_closed"),
        r.counter("net.req_hello"),
        r.counter("net.req_put"),
        r.counter("net.req_get"),
        r.counter("net.req_list"),
        r.counter("net.req_delete"),
        r.counter("net.req_stat"),
        r.histogram("net.put_ns"),
        r.histogram("net.get_ns"),
        r.histogram("net.list_ns"),
        r.histogram("net.delete_ns"),
        r.histogram("net.stat_ns"),
    };
    return m;
  }
};

/// Interned span names: one span per request, begin at the request
/// frame, end when the response (or the last body byte) is queued.
struct NetTrace {
  std::uint16_t t_put;
  std::uint16_t t_get;
  std::uint16_t t_list;
  std::uint16_t t_delete;
  std::uint16_t t_stat;

  static NetTrace& get() {
    static NetTrace t{
        obs::trace_name("net.put", obs::TraceCat::kNet),
        obs::trace_name("net.get", obs::TraceCat::kNet),
        obs::trace_name("net.list", obs::TraceCat::kNet),
        obs::trace_name("net.delete", obs::TraceCat::kNet),
        obs::trace_name("net.stat", obs::TraceCat::kNet),
    };
    return t;
  }
};

Status errno_error(const std::string& what) {
  return io_error(what + ": " + std::strerror(errno));
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return errno_error("fcntl(O_NONBLOCK)");
  }
  return Status::ok();
}

/// One client connection's state machine.
struct Conn {
  int fd = -1;
  bool helloed = false;
  bool want_close = false;      ///< close once the out queue drains
  bool dead = false;            ///< finished; reaped by the event loop
  std::string prefix;           ///< "tenant/<name>/" after HELLO

  std::vector<std::byte> in;    ///< unparsed request bytes
  std::size_t in_off = 0;       ///< consumed prefix of `in`

  std::deque<std::vector<std::byte>> out;
  std::size_t out_off = 0;      ///< sent prefix of out.front()
  std::size_t out_queued = 0;   ///< total unsent bytes across `out`

  // Streaming PUT in flight.
  std::unique_ptr<storage::Writer> put_writer;
  std::uint64_t put_t0 = 0;

  // Streaming GET in flight.
  std::unique_ptr<storage::Reader> get_reader;
  bool get_ranged = false;      ///< read_at cursor vs sequential read
  std::uint64_t get_next = 0;   ///< next offset (ranged mode)
  std::uint64_t get_left = 0;   ///< bytes still to send
  std::uint64_t get_sent = 0;
  std::uint64_t get_t0 = 0;

  std::uint64_t last_active_ns = 0;

  bool get_active() const noexcept { return get_reader != nullptr; }
};

}  // namespace

class Server::Impl {
 public:
  Impl(storage::StorageBackend& backend, ServerOptions options)
      : backend_(backend), options_(std::move(options)) {}

  ~Impl() {
    for (auto& [fd, conn] : conns_) ::close(fd);
    conns_.clear();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (stop_fd_ >= 0) ::close(stop_fd_);
  }

  Status init() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return errno_error("socket");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.bind.c_str(), &addr.sin_addr) != 1) {
      return invalid_argument("bad bind address: " + options_.bind);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
      return errno_error("bind " + options_.bind + ":" +
                         std::to_string(options_.port));
    }
    if (::listen(listen_fd_, 128) != 0) return errno_error("listen");
    ICKPT_RETURN_IF_ERROR(set_nonblocking(listen_fd_));

    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      return errno_error("getsockname");
    }
    port_ = ntohs(bound.sin_port);

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) return errno_error("epoll_create1");
    stop_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (stop_fd_ < 0) return errno_error("eventfd");

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
      return errno_error("epoll_ctl(listen)");
    }
    ev.events = EPOLLIN;
    ev.data.fd = stop_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, stop_fd_, &ev) != 0) {
      return errno_error("epoll_ctl(stop)");
    }
    return Status::ok();
  }

  std::uint16_t port() const noexcept { return port_; }

  std::size_t open_connections() const noexcept {
    return open_.load(std::memory_order_relaxed);
  }

  void stop() noexcept {
    const std::uint64_t one = 1;
    // eventfd write is async-signal-safe; ignore short-write (can't
    // happen for 8 bytes) and EAGAIN (counter already nonzero).
    [[maybe_unused]] ssize_t rc = ::write(stop_fd_, &one, sizeof one);
  }

  Status serve() {
    const std::uint64_t idle_ns =
        options_.idle_timeout_s > 0
            ? static_cast<std::uint64_t>(options_.idle_timeout_s * 1e9)
            : 0;
    // Sweep granularity: a quarter of the timeout, clamped to [10ms, 1s].
    const int wait_ms =
        idle_ns == 0
            ? 1000
            : static_cast<int>(std::clamp<std::uint64_t>(
                  idle_ns / 4'000'000, 10, 1000));

    epoll_event events[64];
    for (;;) {
      const int n = ::epoll_wait(epoll_fd_, events, 64, wait_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        return errno_error("epoll_wait");
      }
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == stop_fd_) return Status::ok();
        if (fd == listen_fd_) {
          accept_all();
          continue;
        }
        auto it = conns_.find(fd);
        if (it == conns_.end()) continue;
        Conn* conn = it->second.get();
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          close_conn(conn);
          continue;
        }
        if ((events[i].events & EPOLLOUT) != 0) on_writable(conn);
        // on_readable closes directly on EOF/read error; re-check.
        if (conns_.count(fd) == 0) continue;
        if ((events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0) {
          on_readable(conn);
        }
        // Connections the send path finished with are only *marked*
        // dead (handlers up the stack still hold the pointer); reap
        // them here, where nothing references them anymore.
        auto dead_it = conns_.find(fd);
        if (dead_it != conns_.end() && dead_it->second->dead) {
          close_conn(dead_it->second.get());
        }
      }
      if (idle_ns > 0) sweep_idle(idle_ns);
    }
  }

 private:
  // ------------------------------------------------------------ accept

  void accept_all() {
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN or transient error: try next wake
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
      ev.data.fd = fd;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        continue;
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->last_active_ns = obs::now_ns();
      conns_[fd] = std::move(conn);
      NetMetrics::get().accepted.inc();
      open_.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::get().open.update(
          static_cast<std::int64_t>(open_.load(std::memory_order_relaxed)));
    }
  }

  void close_conn(Conn* conn) {
    const int fd = conn->fd;
    // An unfinished PUT dies with the connection: the Writer is
    // destroyed unclosed, which aborts and discards the partial
    // object (never visible, same as a local crash mid-write).
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns_.erase(fd);
    open_.fetch_sub(1, std::memory_order_relaxed);
    NetMetrics::get().open.set(
        static_cast<std::int64_t>(open_.load(std::memory_order_relaxed)));
  }

  void sweep_idle(std::uint64_t idle_ns) {
    const std::uint64_t now = obs::now_ns();
    std::vector<Conn*> victims;
    for (auto& [fd, conn] : conns_) {
      if (now - conn->last_active_ns > idle_ns) victims.push_back(conn.get());
    }
    for (Conn* conn : victims) {
      NetMetrics::get().idle_closed.inc();
      close_conn(conn);
    }
  }

  // -------------------------------------------------------------- read

  void on_readable(Conn* conn) {
    std::byte buf[64 * 1024];
    bool got_any = false;
    bool eof = false;
    for (;;) {
      const ssize_t got = ::read(conn->fd, buf, sizeof buf);
      if (got < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(conn);
        return;
      }
      if (got == 0) {
        eof = true;
        break;
      }
      got_any = true;
      NetMetrics::get().bytes_in.inc(static_cast<std::uint64_t>(got));
      conn->in.insert(conn->in.end(), buf, buf + got);
    }
    if (got_any) {
      conn->last_active_ns = obs::now_ns();
      if (!process_frames(conn)) return;  // conn closed
    }
    if (eof) close_conn(conn);
  }

  /// Parse and handle every complete frame in the input buffer.
  /// Returns false when the connection was closed.
  bool process_frames(Conn* conn) {
    while (!conn->want_close) {
      const std::size_t avail = conn->in.size() - conn->in_off;
      if (avail < kFrameHeaderSize) break;
      auto header = decode_frame_header(
          std::span<const std::byte, kFrameHeaderSize>(
              conn->in.data() + conn->in_off, kFrameHeaderSize));
      if (!header.is_ok()) {
        // Unknown verb or hostile length: the stream cannot be
        // resynchronized, so reply and hang up.
        protocol_error(conn, ErrorCode::kInvalidArgument,
                       header.status().message());
        break;
      }
      if (avail < kFrameHeaderSize + header->len) break;  // partial frame
      const std::span<const std::byte> payload(
          conn->in.data() + conn->in_off + kFrameHeaderSize, header->len);
      conn->in_off += kFrameHeaderSize + header->len;
      if (!handle_frame(conn, *header, payload)) return false;
    }
    // Reclaim consumed bytes once the parse position passed the
    // halfway mark (amortized O(1) per byte).
    if (conn->in_off > 0 && conn->in_off * 2 >= conn->in.size()) {
      conn->in.erase(conn->in.begin(),
                     conn->in.begin() +
                         static_cast<std::ptrdiff_t>(conn->in_off));
      conn->in_off = 0;
    }
    return true;
  }

  /// Dispatch one frame.  Returns false when the connection was
  /// closed (caller must not touch it again).
  bool handle_frame(Conn* conn, const FrameHeader& header,
                    std::span<const std::byte> payload) {
    auto& m = NetMetrics::get();
    // While a GET body is streaming the client must wait for
    // DATA_END; anything else would interleave two responses.
    if (conn->get_active()) {
      protocol_error(conn, ErrorCode::kFailedPrecondition,
                     "request while a GET stream is in flight");
      return true;
    }
    if (!conn->helloed && header.verb != Verb::kHello) {
      protocol_error(conn, ErrorCode::kFailedPrecondition,
                     "first frame must be HELLO");
      return true;
    }
    switch (header.verb) {
      case Verb::kHello: {
        m.req_hello.inc();
        auto msg = parse_hello(payload);
        if (!msg.is_ok()) {
          protocol_error(conn, ErrorCode::kInvalidArgument,
                         msg.status().message());
          return true;
        }
        if (msg->version != kWireVersion) {
          protocol_error(conn, ErrorCode::kFailedPrecondition,
                         "version mismatch: client speaks " +
                             std::to_string(msg->version) +
                             ", server speaks " +
                             std::to_string(kWireVersion));
          return true;
        }
        if (!valid_tenant(msg->tenant)) {
          protocol_error(conn, ErrorCode::kInvalidArgument,
                         "invalid tenant name");
          return true;
        }
        conn->helloed = true;
        conn->prefix = "tenant/" + msg->tenant + "/";
        std::vector<std::byte> reply;
        put_u32(reply, kWireVersion);
        return send_frame(conn, Verb::kHelloOk, reply);
      }

      case Verb::kPutBegin: {
        m.req_put.inc();
        if (conn->put_writer != nullptr) {
          protocol_error(conn, ErrorCode::kFailedPrecondition,
                         "PUT_BEGIN while a PUT is already open");
          return true;
        }
        auto key = parse_key_only(payload);
        if (!key.is_ok() || !valid_key(*key)) {
          protocol_error(conn, ErrorCode::kInvalidArgument,
                         key.is_ok() ? "invalid key" :
                                       key.status().message());
          return true;
        }
        obs::trace_emit(NetTrace::get().t_put, obs::TracePhase::kBegin,
                        static_cast<std::uint64_t>(conn->fd));
        auto writer = backend_.create(conn->prefix + *key);
        if (!writer.is_ok()) {
          obs::trace_emit(NetTrace::get().t_put, obs::TracePhase::kEnd);
          // The client streams data without waiting for an ack, so the
          // frames already in flight have nowhere to go: hang up.
          conn->want_close = true;
          return send_err(conn, writer.status());
        }
        conn->put_writer = std::move(writer.value());
        conn->put_t0 = obs::now_ns();
        return true;  // no ack until PUT_END: data frames stream next
      }

      case Verb::kPutData: {
        if (conn->put_writer == nullptr) {
          protocol_error(conn, ErrorCode::kFailedPrecondition,
                         "PUT_DATA without PUT_BEGIN");
          return true;
        }
        auto st = conn->put_writer->write(payload);
        if (!st.is_ok()) {
          // Backend failure mid-stream: abort the object, report, and
          // close — the client's remaining chunks have nowhere to go.
          conn->put_writer.reset();
          obs::trace_emit(NetTrace::get().t_put, obs::TracePhase::kEnd);
          conn->want_close = true;
          return send_err(conn, st);
        }
        return true;
      }

      case Verb::kPutEnd: {
        if (conn->put_writer == nullptr) {
          protocol_error(conn, ErrorCode::kFailedPrecondition,
                         "PUT_END without PUT_BEGIN");
          return true;
        }
        const std::uint64_t bytes = conn->put_writer->bytes_written();
        auto st = conn->put_writer->close();
        conn->put_writer.reset();
        obs::trace_emit(NetTrace::get().t_put, obs::TracePhase::kEnd,
                        static_cast<std::uint64_t>(conn->fd), bytes);
        if (obs::enabled()) {
          m.put_ns.record(obs::now_ns() - conn->put_t0);
        }
        if (!st.is_ok()) return send_err(conn, st);
        return send_frame(conn, Verb::kOk, {});
      }

      case Verb::kPutAbort: {
        if (conn->put_writer == nullptr) {
          protocol_error(conn, ErrorCode::kFailedPrecondition,
                         "PUT_ABORT without PUT_BEGIN");
          return true;
        }
        conn->put_writer.reset();  // destroy unclosed = abort + discard
        obs::trace_emit(NetTrace::get().t_put, obs::TracePhase::kEnd);
        return send_frame(conn, Verb::kOk, {});
      }

      case Verb::kGet: {
        m.req_get.inc();
        auto msg = parse_get(payload);
        if (!msg.is_ok() || !valid_key(msg->key)) {
          protocol_error(conn, ErrorCode::kInvalidArgument,
                         msg.is_ok() ? "invalid key"
                                     : msg.status().message());
          return true;
        }
        obs::trace_emit(NetTrace::get().t_get, obs::TracePhase::kBegin,
                        static_cast<std::uint64_t>(conn->fd));
        auto reader = backend_.open(conn->prefix + msg->key);
        if (!reader.is_ok()) {
          obs::trace_emit(NetTrace::get().t_get, obs::TracePhase::kEnd);
          return send_err(conn, reader.status());
        }
        conn->get_reader = std::move(reader.value());
        conn->get_ranged = msg->offset != 0 || msg->length != kWholeObject;
        conn->get_next = msg->offset;
        const std::uint64_t size = conn->get_reader->size();
        const std::uint64_t past =
            msg->offset < size ? size - msg->offset : 0;
        conn->get_left =
            msg->length == kWholeObject ? past : std::min(msg->length, past);
        conn->get_sent = 0;
        conn->get_t0 = obs::now_ns();
        if (conn->get_ranged && !conn->get_reader->supports_read_at()) {
          conn->get_reader.reset();
          obs::trace_emit(NetTrace::get().t_get, obs::TracePhase::kEnd);
          return send_err(conn,
                          unsupported("backend cannot serve byte ranges"));
        }
        return pump_get(conn);
      }

      case Verb::kList: {
        m.req_list.inc();
        obs::TraceSpan span(NetTrace::get().t_list,
                            static_cast<std::uint64_t>(conn->fd));
        const std::uint64_t t0 = obs::now_ns();
        auto keys = backend_.list();
        if (!keys.is_ok()) return send_err(conn, keys.status());
        std::vector<std::string> visible;
        for (const auto& key : *keys) {
          if (key.rfind(conn->prefix, 0) == 0) {
            visible.push_back(key.substr(conn->prefix.size()));
          }
        }
        auto reply = build_list_ok(visible);
        if (reply.size() > kMaxFramePayload) {
          return send_err(
              conn, Status(ErrorCode::kResourceExhausted,
                           "listing exceeds the 1 MiB frame cap"));
        }
        if (obs::enabled()) m.list_ns.record(obs::now_ns() - t0);
        return send_frame(conn, Verb::kListOk, reply);
      }

      case Verb::kDelete: {
        m.req_delete.inc();
        obs::TraceSpan span(NetTrace::get().t_delete,
                            static_cast<std::uint64_t>(conn->fd));
        const std::uint64_t t0 = obs::now_ns();
        auto key = parse_key_only(payload);
        if (!key.is_ok() || !valid_key(*key)) {
          protocol_error(conn, ErrorCode::kInvalidArgument,
                         key.is_ok() ? "invalid key"
                                     : key.status().message());
          return true;
        }
        auto st = backend_.remove(conn->prefix + *key);
        if (obs::enabled()) m.delete_ns.record(obs::now_ns() - t0);
        if (!st.is_ok()) return send_err(conn, st);
        return send_frame(conn, Verb::kOk, {});
      }

      case Verb::kStat: {
        m.req_stat.inc();
        obs::TraceSpan span(NetTrace::get().t_stat,
                            static_cast<std::uint64_t>(conn->fd));
        const std::uint64_t t0 = obs::now_ns();
        auto key = parse_key_only(payload);
        if (!key.is_ok() || !valid_key(*key)) {
          protocol_error(conn, ErrorCode::kInvalidArgument,
                         key.is_ok() ? "invalid key"
                                     : key.status().message());
          return true;
        }
        auto reader = backend_.open(conn->prefix + *key);
        if (obs::enabled()) m.stat_ns.record(obs::now_ns() - t0);
        if (!reader.is_ok()) return send_err(conn, reader.status());
        return send_frame(conn, Verb::kStatOk,
                          build_stat_ok((*reader)->size()));
      }

      default:
        // Response verbs arriving at the server are protocol errors.
        protocol_error(conn, ErrorCode::kInvalidArgument,
                       "unexpected verb " +
                           std::string(to_string(header.verb)));
        return true;
    }
  }

  // --------------------------------------------------------------- get

  /// Stream DATA frames while the unsent queue is under the in-flight
  /// cap; on cap, pumping resumes from on_writable as bytes drain.
  /// Returns false when the connection was closed.
  bool pump_get(Conn* conn) {
    std::vector<std::byte> buf;
    while (conn->get_active()) {
      if (conn->get_left == 0) return finish_get(conn, Status::ok());
      if (conn->out_queued >= options_.max_inflight_bytes) return true;
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(conn->get_left, kChunkSize));
      buf.resize(want);
      Result<std::size_t> got = conn->get_ranged
                                    ? conn->get_reader->read_at(
                                          conn->get_next, buf)
                                    : conn->get_reader->read(buf);
      if (!got.is_ok()) return finish_get(conn, got.status());
      if (*got == 0) {
        // Object shorter than its own size() promised: damage.
        return finish_get(conn,
                          corruption("object truncated mid-stream"));
      }
      conn->get_next += *got;
      conn->get_left -= *got;
      conn->get_sent += *got;
      if (!send_frame(conn, Verb::kData, {buf.data(), *got})) return false;
    }
    return true;
  }

  /// Close out a GET stream: DATA_END on success, ERR on failure.
  bool finish_get(Conn* conn, const Status& st) {
    auto& m = NetMetrics::get();
    conn->get_reader.reset();
    obs::trace_emit(NetTrace::get().t_get, obs::TracePhase::kEnd,
                    static_cast<std::uint64_t>(conn->fd), conn->get_sent);
    if (obs::enabled()) m.get_ns.record(obs::now_ns() - conn->get_t0);
    if (!st.is_ok()) {
      // Mid-stream failure: the client has partial DATA, so the
      // stream cannot be completed coherently — report and hang up.
      conn->want_close = true;
      return send_err(conn, st);
    }
    return send_frame(conn, Verb::kDataEnd, {});
  }

  // ------------------------------------------------------------- write

  /// The send path never frees the Conn (callers up the stack hold
  /// the pointer): it marks the connection dead and the event loop
  /// reaps it at a safe point.
  void mark_dead(Conn* conn) {
    conn->dead = true;
    conn->want_close = true;
    conn->out.clear();
    conn->out_off = 0;
    conn->out_queued = 0;
  }

  /// Queue one frame and flush as much as the socket accepts.
  /// Returns false when the connection is finished (write error or
  /// close-after-drain); the caller must stop using it, but the Conn
  /// itself stays valid until the event loop reaps it.
  bool send_frame(Conn* conn, Verb verb, std::span<const std::byte> payload,
                  std::uint16_t code = 0) {
    if (conn->dead) return false;
    auto frame = build_frame(verb, payload, code);
    conn->out_queued += frame.size();
    conn->out.push_back(std::move(frame));
    return flush_out(conn);
  }

  bool send_err(Conn* conn, const Status& st) {
    return send_frame(conn, Verb::kErr, build_err_payload(st.message()),
                      to_wire_code(st.code()));
  }

  /// Protocol violation: count it, report it, and close after the
  /// reply drains.  The stream is never trusted again.
  void protocol_error(Conn* conn, ErrorCode code, const std::string& msg) {
    NetMetrics::get().protocol_errors.inc();
    conn->want_close = true;  // before the send: close once it drains
    (void)send_frame(conn, Verb::kErr, build_err_payload(msg),
                     to_wire_code(code));
  }

  /// Write queued bytes until EAGAIN or empty.  Returns false when
  /// the connection is finished (marked dead, reaped later).
  bool flush_out(Conn* conn) {
    if (conn->dead) return false;
    while (!conn->out.empty()) {
      const auto& front = conn->out.front();
      const std::size_t left = front.size() - conn->out_off;
      const ssize_t sent =
          ::send(conn->fd, front.data() + conn->out_off, left, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        mark_dead(conn);
        return false;
      }
      NetMetrics::get().bytes_out.inc(static_cast<std::uint64_t>(sent));
      conn->out_off += static_cast<std::size_t>(sent);
      conn->out_queued -= static_cast<std::size_t>(sent);
      if (conn->out_off == front.size()) {
        conn->out.pop_front();
        conn->out_off = 0;
      }
    }
    if (conn->want_close) {
      mark_dead(conn);
      return false;
    }
    return true;
  }

  /// EPOLLOUT: drain the queue, then resume a paused GET stream.
  void on_writable(Conn* conn) {
    conn->last_active_ns = obs::now_ns();
    if (!flush_out(conn)) return;
    if (conn->get_active()) (void)pump_get(conn);
  }

  storage::StorageBackend& backend_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int stop_fd_ = -1;
  std::uint16_t port_ = 0;
  std::map<int, std::unique_ptr<Conn>> conns_;
  std::atomic<std::size_t> open_{0};
};

Server::Server(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Server::~Server() = default;

Result<std::unique_ptr<Server>> Server::create(
    storage::StorageBackend& backend, const ServerOptions& options) {
  if (options.max_inflight_bytes == 0) {
    return invalid_argument("max_inflight_bytes must be > 0");
  }
  auto impl = std::make_unique<Impl>(backend, options);
  ICKPT_RETURN_IF_ERROR(impl->init());
  return std::unique_ptr<Server>(new Server(std::move(impl)));
}

std::uint16_t Server::port() const noexcept { return impl_->port(); }
Status Server::serve() { return impl_->serve(); }
void Server::stop() noexcept { impl_->stop(); }
std::size_t Server::open_connections() const noexcept {
  return impl_->open_connections();
}

}  // namespace ickpt::net

// RemoteBackend: a storage::StorageBackend that speaks the ickptd wire
// protocol (net/wire.h) over TCP, so the Checkpointer, restore_chain
// and `ickpt fsck` run unchanged against a network checkpoint store.
//
// Shape: a small pool of blocking connections (each HELLO-handshaken
// for one tenant).  A Writer leases one connection for the whole PUT
// stream (PUT_BEGIN .. PUT_DATA* .. PUT_END); Readers lease one per
// read() / read_at() call, issuing a ranged GET each time, so many
// readers share the pool.  Destroying an unclosed Writer sends
// PUT_ABORT — the partial object is never visible server-side, the
// same abort-and-discard semantics local writers have.
//
// map_at() is unsupported (there is no remote memory to view), so the
// restore path's mmap fast path transparently falls back to buffered
// read_at() — same bytes, one extra copy.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/status.h"
#include "storage/backend.h"

namespace ickpt::storage {

struct RemoteBackendOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Namespace on the server; every key is stored under
  /// "tenant/<tenant>/" and tenants cannot see each other.
  std::string tenant = "default";
  /// Idle connections kept for reuse.  More are dialed on demand (a
  /// burst of concurrent writers is never blocked on the pool); the
  /// surplus is closed on release.
  std::size_t pool_size = 4;
  /// Per-syscall send/receive timeout; <= 0 blocks forever.
  double io_timeout_s = 30.0;
};

/// Dials one connection eagerly so connectivity, protocol version and
/// tenant validity fail here rather than on first use.
Result<std::unique_ptr<StorageBackend>> make_remote_backend(
    const RemoteBackendOptions& options);

}  // namespace ickpt::storage

namespace ickpt::net {

/// Parse "host:port" (the CLI --addr form).  The last ':' splits, so
/// a bare port or a missing host is rejected with kInvalidArgument.
Result<std::pair<std::string, std::uint16_t>> parse_host_port(
    const std::string& addr);

}  // namespace ickpt::net

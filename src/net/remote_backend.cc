#include "net/remote_backend.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/io_util.h"
#include "net/wire.h"

namespace ickpt::storage {

namespace {

using net::Verb;

struct Frame {
  net::FrameHeader header;
  std::vector<std::byte> payload;
};

/// One blocking, HELLO-handshaken connection to ickptd.
class Connection {
 public:
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool healthy() const noexcept { return healthy_; }

  Status dial(const RemoteBackendOptions& options) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* found = nullptr;
    const std::string port = std::to_string(options.port);
    if (::getaddrinfo(options.host.c_str(), port.c_str(), &hints, &found) !=
            0 ||
        found == nullptr) {
      return io_error("cannot resolve " + options.host);
    }
    fd_ = ::socket(found->ai_family, found->ai_socktype | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      ::freeaddrinfo(found);
      return io_error(std::string("socket: ") + std::strerror(errno));
    }
    const int rc = ::connect(fd_, found->ai_addr, found->ai_addrlen);
    ::freeaddrinfo(found);
    if (rc != 0) {
      return io_error("connect " + options.host + ":" + port + ": " +
                      std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (options.io_timeout_s > 0) {
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(options.io_timeout_s);
      tv.tv_usec = static_cast<suseconds_t>(
          (options.io_timeout_s - static_cast<double>(tv.tv_sec)) * 1e6);
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    }
    healthy_ = true;

    // HELLO handshake: version + tenant, expect HELLO_OK.
    ICKPT_RETURN_IF_ERROR(
        send(Verb::kHello,
             net::build_hello({net::kWireVersion, options.tenant})));
    ICKPT_ASSIGN_OR_RETURN(reply, recv());
    if (reply.header.verb == Verb::kErr) return err_status(reply);
    if (reply.header.verb != Verb::kHelloOk) {
      return protocol_violation("expected HELLO_OK");
    }
    return Status::ok();
  }

  Status send(Verb verb, std::span<const std::byte> payload) {
    auto frame = net::build_frame(verb, payload);
    // send_full, not write_full: a daemon that closes mid-PUT must
    // surface as a Status (EPIPE), not SIGPIPE-kill the application.
    auto st = ioutil::send_full(fd_, frame);
    if (!st.is_ok()) healthy_ = false;
    return st;
  }

  Result<Frame> recv() {
    std::byte header_bytes[net::kFrameHeaderSize];
    ICKPT_ASSIGN_OR_RETURN(
        got, checked(ioutil::read_full(fd_, header_bytes)));
    if (got < net::kFrameHeaderSize) {
      healthy_ = false;
      return io_error("server closed the connection");
    }
    auto header = net::decode_frame_header(
        std::span<const std::byte, net::kFrameHeaderSize>(header_bytes));
    if (!header.is_ok()) {
      healthy_ = false;
      return header.status();
    }
    Frame frame;
    frame.header = *header;
    frame.payload.resize(header->len);
    if (header->len > 0) {
      ICKPT_ASSIGN_OR_RETURN(body,
                             checked(ioutil::read_full(fd_, frame.payload)));
      if (body < frame.payload.size()) {
        healthy_ = false;
        return io_error("server closed mid-frame");
      }
    }
    return frame;
  }

  /// Decode an ERR frame into the Status the server meant.
  static Status err_status(const Frame& frame) {
    auto msg = net::parse_err_payload(frame.payload);
    return Status(net::from_wire_code(frame.header.code),
                  msg.is_ok() ? *msg : "malformed error frame");
  }

  /// A reply that breaks the protocol: the stream position is lost,
  /// so the connection must not be reused.
  Status protocol_violation(const std::string& what) {
    healthy_ = false;
    return Status(ErrorCode::kInternal, "protocol violation: " + what);
  }

 private:
  Result<std::size_t> checked(Result<std::size_t> got) {
    if (!got.is_ok()) healthy_ = false;
    return got;
  }

  int fd_ = -1;
  bool healthy_ = false;
};

using ConnPtr = std::unique_ptr<Connection>;

class RemoteBackend final : public StorageBackend {
 public:
  explicit RemoteBackend(RemoteBackendOptions options)
      : options_(std::move(options)) {}

  Result<std::unique_ptr<Writer>> create(const std::string& key) override;
  Result<std::unique_ptr<Reader>> open(const std::string& key) override;

  Status remove(const std::string& key) override {
    if (!net::valid_key(key)) return invalid_argument("invalid key: " + key);
    ICKPT_ASSIGN_OR_RETURN(conn, acquire());
    auto st = round_trip(*conn, Verb::kDelete, net::build_key_only(key));
    release(std::move(conn));
    return st;
  }

  Result<std::vector<std::string>> list() override {
    ICKPT_ASSIGN_OR_RETURN(conn, acquire());
    auto listed = [&]() -> Result<std::vector<std::string>> {
      ICKPT_RETURN_IF_ERROR(conn->send(Verb::kList, {}));
      ICKPT_ASSIGN_OR_RETURN(reply, conn->recv());
      if (reply.header.verb == Verb::kErr) {
        return Connection::err_status(reply);
      }
      if (reply.header.verb != Verb::kListOk) {
        return conn->protocol_violation("expected LIST_OK");
      }
      return net::parse_list_ok(reply.payload);
    }();
    release(std::move(conn));
    return listed;
  }

  bool exists(const std::string& key) override {
    auto size = stat_key(key);
    return size.is_ok();
  }

  std::uint64_t total_bytes_stored() const noexcept override {
    return bytes_stored_.load(std::memory_order_relaxed);
  }

  /// STAT round trip; kNotFound when the object does not exist.
  Result<std::uint64_t> stat_key(const std::string& key) {
    if (!net::valid_key(key)) return invalid_argument("invalid key: " + key);
    ICKPT_ASSIGN_OR_RETURN(conn, acquire());
    auto size = [&]() -> Result<std::uint64_t> {
      ICKPT_RETURN_IF_ERROR(conn->send(Verb::kStat, net::build_key_only(key)));
      ICKPT_ASSIGN_OR_RETURN(reply, conn->recv());
      if (reply.header.verb == Verb::kErr) {
        return Connection::err_status(reply);
      }
      if (reply.header.verb != Verb::kStatOk) {
        return conn->protocol_violation("expected STAT_OK");
      }
      return net::parse_stat_ok(reply.payload);
    }();
    release(std::move(conn));
    return size;
  }

  /// Lease a pooled connection, dialing a fresh one when idle is empty.
  Result<ConnPtr> acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!idle_.empty()) {
        ConnPtr conn = std::move(idle_.back());
        idle_.pop_back();
        return conn;
      }
    }
    auto conn = std::make_unique<Connection>();
    ICKPT_RETURN_IF_ERROR(conn->dial(options_));
    return conn;
  }

  void release(ConnPtr conn) {
    if (conn == nullptr || !conn->healthy()) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (idle_.size() < options_.pool_size) idle_.push_back(std::move(conn));
  }

  void note_stored(std::uint64_t bytes) noexcept {
    bytes_stored_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// GET [offset, offset+len) of `key` into `out`; returns bytes
  /// received (0 when offset is at or past EOF).
  Result<std::size_t> fetch_range(const std::string& key,
                                  std::uint64_t offset,
                                  std::span<std::byte> out) {
    ICKPT_ASSIGN_OR_RETURN(conn, acquire());
    auto got = [&]() -> Result<std::size_t> {
      ICKPT_RETURN_IF_ERROR(conn->send(
          Verb::kGet, net::build_get({key, offset, out.size()})));
      std::size_t filled = 0;
      for (;;) {
        ICKPT_ASSIGN_OR_RETURN(reply, conn->recv());
        if (reply.header.verb == Verb::kData) {
          if (filled + reply.payload.size() > out.size()) {
            return conn->protocol_violation("DATA overruns the GET range");
          }
          std::memcpy(out.data() + filled, reply.payload.data(),
                      reply.payload.size());
          filled += reply.payload.size();
          continue;
        }
        if (reply.header.verb == Verb::kDataEnd) return filled;
        if (reply.header.verb == Verb::kErr) {
          // The stream died mid-body; the connection's framing state
          // is fine (ERR terminates the stream) but the server hangs
          // up after a mid-stream error, so don't reuse it.
          return Connection::err_status(reply);
        }
        return conn->protocol_violation("expected DATA/DATA_END");
      }
    }();
    release(std::move(conn));
    return got;
  }

 private:
  /// Request expecting a bare OK.
  static Status round_trip(Connection& conn, Verb verb,
                           std::span<const std::byte> payload) {
    ICKPT_RETURN_IF_ERROR(conn.send(verb, payload));
    ICKPT_ASSIGN_OR_RETURN(reply, conn.recv());
    if (reply.header.verb == Verb::kErr) return Connection::err_status(reply);
    if (reply.header.verb != Verb::kOk) {
      return conn.protocol_violation("expected OK");
    }
    return Status::ok();
  }

  friend class RemoteWriter;
  friend class RemoteReader;

  RemoteBackendOptions options_;
  std::mutex mu_;
  std::vector<ConnPtr> idle_;
  std::atomic<std::uint64_t> bytes_stored_{0};
};

/// Streams one PUT over a leased connection.  No per-chunk ack: the
/// server replies once, at PUT_END (or with an early ERR that surfaces
/// here as a failed write).
class RemoteWriter final : public Writer {
 public:
  RemoteWriter(RemoteBackend& backend, ConnPtr conn)
      : backend_(backend), conn_(std::move(conn)) {}

  ~RemoteWriter() override {
    if (closed_ || conn_ == nullptr) return;
    // Abort: discard the partial object but keep the connection
    // reusable when the server acks cleanly.
    auto st = RemoteBackend::round_trip(*conn_, Verb::kPutAbort, {});
    if (st.is_ok()) backend_.release(std::move(conn_));
  }

  Status write(std::span<const std::byte> data) override {
    if (closed_) return failed_precondition("write after close");
    while (!data.empty()) {
      const std::size_t n = std::min(data.size(), net::kChunkSize);
      auto st = conn_->send(Verb::kPutData, data.first(n));
      if (!st.is_ok()) {
        // The send path failing usually means the server already sent
        // an ERR and hung up; try to read it so the caller sees the
        // real reason, not EPIPE.
        auto pending = conn_->recv();
        closed_ = true;
        if (pending.is_ok() && pending->header.verb == Verb::kErr) {
          return Connection::err_status(*pending);
        }
        return st;
      }
      data = data.subspan(n);
      bytes_ += n;
    }
    return Status::ok();
  }

  Status close() override {
    if (closed_) return failed_precondition("close called twice");
    closed_ = true;
    auto st = RemoteBackend::round_trip(*conn_, Verb::kPutEnd, {});
    if (st.is_ok()) {
      backend_.note_stored(bytes_);
      backend_.release(std::move(conn_));
    }
    return st;
  }

  std::uint64_t bytes_written() const noexcept override { return bytes_; }

 private:
  RemoteBackend& backend_;
  ConnPtr conn_;
  std::uint64_t bytes_ = 0;
  bool closed_ = false;
};

/// Ranged-GET reader.  Holds no connection between calls: every
/// read()/read_at() leases one from the pool, so hundreds of readers
/// (parallel restore) share a handful of sockets.
class RemoteReader final : public Reader {
 public:
  RemoteReader(RemoteBackend& backend, std::string key, std::uint64_t size)
      : backend_(backend), key_(std::move(key)), size_(size) {}

  Result<std::size_t> read(std::span<std::byte> out) override {
    ICKPT_ASSIGN_OR_RETURN(got, backend_.fetch_range(key_, pos_, out));
    pos_ += got;
    return got;
  }

  Result<std::size_t> read_at(std::uint64_t offset,
                              std::span<std::byte> out) override {
    return backend_.fetch_range(key_, offset, out);
  }

  bool supports_read_at() const noexcept override { return true; }
  std::uint64_t size() const noexcept override { return size_; }

 private:
  RemoteBackend& backend_;
  std::string key_;
  std::uint64_t size_;
  std::uint64_t pos_ = 0;
};

Result<std::unique_ptr<Writer>> RemoteBackend::create(
    const std::string& key) {
  if (!net::valid_key(key)) return invalid_argument("invalid key: " + key);
  ICKPT_ASSIGN_OR_RETURN(conn, acquire());
  auto st = conn->send(Verb::kPutBegin, net::build_key_only(key));
  if (!st.is_ok()) return st;
  return std::unique_ptr<Writer>(
      std::make_unique<RemoteWriter>(*this, std::move(conn)));
}

Result<std::unique_ptr<Reader>> RemoteBackend::open(const std::string& key) {
  ICKPT_ASSIGN_OR_RETURN(size, stat_key(key));
  return std::unique_ptr<Reader>(
      std::make_unique<RemoteReader>(*this, key, size));
}

}  // namespace

Result<std::unique_ptr<StorageBackend>> make_remote_backend(
    const RemoteBackendOptions& options) {
  if (!net::valid_tenant(options.tenant)) {
    return invalid_argument("invalid tenant: " + options.tenant);
  }
  auto backend = std::make_unique<RemoteBackend>(options);
  // Fail fast: connectivity, version handshake and tenant validation
  // all happen on this eager dial.
  ICKPT_ASSIGN_OR_RETURN(probe, backend->acquire());
  backend->release(std::move(probe));
  return std::unique_ptr<StorageBackend>(std::move(backend));
}

}  // namespace ickpt::storage

namespace ickpt::net {

Result<std::pair<std::string, std::uint16_t>> parse_host_port(
    const std::string& addr) {
  const auto colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == addr.size()) {
    return invalid_argument("expected host:port, got '" + addr + "'");
  }
  const std::string host = addr.substr(0, colon);
  const std::string port_str = addr.substr(colon + 1);
  std::uint32_t port = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9') {
      return invalid_argument("bad port in '" + addr + "'");
    }
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 65535) return invalid_argument("port out of range: " + addr);
  }
  if (port == 0) return invalid_argument("port out of range: " + addr);
  return std::make_pair(host, static_cast<std::uint16_t>(port));
}

}  // namespace ickpt::net

// Wire format for the ickptd checkpoint store protocol.
//
// Everything on the socket is a length-prefixed frame:
//
//   offset  size  field
//   0       4     payload length (little-endian; excludes the header)
//   4       1     verb
//   5       1     flags (0; reserved)
//   6       2     status code (0 except in ERR frames)
//   8       len   payload
//
// Payload integers are little-endian; strings are a u16 length prefix
// followed by raw bytes.  The frame length is capped at
// kMaxFramePayload, so a hostile or corrupt length prefix can never
// make either side allocate unboundedly: decode_frame_header rejects
// it before any allocation happens.
//
// Request verbs (client -> server):
//   HELLO      u32 version, str tenant     -- must be the first frame
//   PUT_BEGIN  str key                     -- open a streaming upload
//   PUT_DATA   raw bytes                   -- body chunk (<= kChunkSize)
//   PUT_END    (empty)                     -- commit; object becomes
//                                             visible atomically
//   PUT_ABORT  (empty)                     -- discard the partial object
//   GET        str key, u64 offset, u64 length (kWholeObject = to EOF)
//   LIST       (empty)
//   DELETE     str key
//   STAT       str key
//
// Response verbs (server -> client):
//   HELLO_OK   u32 version
//   OK         (empty)                     -- PUT_END / PUT_ABORT / DELETE
//   ERR        str message; header code carries the ErrorCode
//   DATA       raw bytes                   -- GET body chunk
//   DATA_END   (empty)                     -- GET body complete
//   STAT_OK    u64 size
//   LIST_OK    u32 count, count x str key
//
// docs/PROTOCOL.md is the authoritative prose description (error
// codes, state machine, backpressure rules); this header and that
// document must change together.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace ickpt::net {

/// Protocol version spoken by this build; HELLO with any other value
/// is rejected (kFailedPrecondition).
inline constexpr std::uint32_t kWireVersion = 1;

/// Hard cap on a frame's payload.  Chosen so one DATA chunk plus
/// protocol framing always fits and nothing on either side ever
/// allocates more than ~1 MiB per frame.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/// Body chunk size used by PUT_DATA / DATA streams.
inline constexpr std::size_t kChunkSize = 256u * 1024;

/// GET length meaning "the rest of the object".
inline constexpr std::uint64_t kWholeObject = ~0ull;

inline constexpr std::size_t kFrameHeaderSize = 8;
inline constexpr std::size_t kMaxKeyLength = 4096;
inline constexpr std::size_t kMaxTenantLength = 64;

enum class Verb : std::uint8_t {
  // Requests.
  kHello = 0x01,
  kPutBegin = 0x02,
  kPutData = 0x03,
  kPutEnd = 0x04,
  kPutAbort = 0x05,
  kGet = 0x06,
  kList = 0x07,
  kDelete = 0x08,
  kStat = 0x09,
  // Responses.
  kHelloOk = 0x41,
  kOk = 0x42,
  kErr = 0x43,
  kData = 0x44,
  kDataEnd = 0x45,
  kStatOk = 0x46,
  kListOk = 0x47,
};

std::string_view to_string(Verb verb) noexcept;

struct FrameHeader {
  std::uint32_t len = 0;   ///< payload bytes after the header
  Verb verb = Verb::kOk;
  std::uint8_t flags = 0;
  std::uint16_t code = 0;  ///< wire ErrorCode; nonzero only in ERR
};

/// Serialize a header into its 8 wire bytes.
void encode_frame_header(const FrameHeader& h,
                         std::span<std::byte, kFrameHeaderSize> out);

/// Parse and validate 8 header bytes: unknown verbs and payload
/// lengths above kMaxFramePayload are kInvalidArgument (protocol
/// errors), never accepted.
Result<FrameHeader> decode_frame_header(
    std::span<const std::byte, kFrameHeaderSize> in);

// ----------------------------------------------------------------- codes

/// ErrorCode <-> u16 wire code.  Unknown wire codes decode as
/// kInternal so a newer peer can't crash an older one.
std::uint16_t to_wire_code(ErrorCode code) noexcept;
ErrorCode from_wire_code(std::uint16_t code) noexcept;

// --------------------------------------------------------------- append

// Append helpers (build payloads into a byte vector).
void put_u16(std::vector<std::byte>& out, std::uint16_t v);
void put_u32(std::vector<std::byte>& out, std::uint32_t v);
void put_u64(std::vector<std::byte>& out, std::uint64_t v);
void put_string(std::vector<std::byte>& out, std::string_view s);

/// Build a whole frame (header + payload) ready for the socket.
std::vector<std::byte> build_frame(Verb verb,
                                   std::span<const std::byte> payload,
                                   std::uint16_t code = 0);

// ---------------------------------------------------------------- parse

/// Bounds-checked payload cursor.  Every accessor fails with
/// kInvalidArgument once the payload is exhausted; expect_end()
/// rejects trailing garbage so frames are parsed exactly.
class WireCursor {
 public:
  explicit WireCursor(std::span<const std::byte> data) : data_(data) {}

  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  /// A u16-length-prefixed string capped at `max_len`.
  Result<std::string> string(std::size_t max_len = kMaxKeyLength);
  /// The rest of the payload as raw bytes (view into the input).
  std::span<const std::byte> rest() noexcept;

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  Status expect_end() const;

 private:
  Result<std::span<const std::byte>> take(std::size_t n);

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

// Typed payload builders + parsers for each message that carries
// structure.  Parsers validate exhaustively (length prefixes in
// bounds, no trailing bytes) and return kInvalidArgument on any
// malformation — the fuzz tests drive random bytes through them.

struct HelloMsg {
  std::uint32_t version = kWireVersion;
  std::string tenant;
};
std::vector<std::byte> build_hello(const HelloMsg& msg);
Result<HelloMsg> parse_hello(std::span<const std::byte> payload);

struct GetMsg {
  std::string key;
  std::uint64_t offset = 0;
  std::uint64_t length = kWholeObject;
};
std::vector<std::byte> build_get(const GetMsg& msg);
Result<GetMsg> parse_get(std::span<const std::byte> payload);

/// PUT_BEGIN, DELETE and STAT all carry exactly one key.
std::vector<std::byte> build_key_only(const std::string& key);
Result<std::string> parse_key_only(std::span<const std::byte> payload);

std::vector<std::byte> build_stat_ok(std::uint64_t size);
Result<std::uint64_t> parse_stat_ok(std::span<const std::byte> payload);

std::vector<std::byte> build_list_ok(const std::vector<std::string>& keys);
Result<std::vector<std::string>> parse_list_ok(
    std::span<const std::byte> payload);

std::vector<std::byte> build_err_payload(const std::string& message);
Result<std::string> parse_err_payload(std::span<const std::byte> payload);

/// A valid tenant name: nonempty, <= kMaxTenantLength, characters from
/// [A-Za-z0-9._-] only (it becomes a key prefix component, so '/' and
/// control bytes must never appear).
bool valid_tenant(std::string_view tenant) noexcept;

/// A valid object key: nonempty, <= kMaxKeyLength, printable ASCII,
/// no ".." path components and no leading '/' (keys map to relative
/// file paths in the file backend).
bool valid_key(std::string_view key) noexcept;

}  // namespace ickpt::net

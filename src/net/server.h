// ickptd server core: a single-threaded epoll event loop serving the
// wire protocol (net/wire.h) out of any storage::StorageBackend.
//
// Shape (the production-store tier the ROADMAP asks for):
//   * nonblocking sockets, edge-triggered epoll, one state machine per
//     connection — accept/read/parse/respond all on one thread, so no
//     locking anywhere in the request path;
//   * per-tenant namespaces: HELLO names a tenant, and every key the
//     connection uses is transparently prefixed "tenant/<name>/" in
//     the backing store, so tenants cannot see or touch each other's
//     objects;
//   * backpressure: response bytes queue per connection, and a GET
//     body is only pumped from the backend while the unsent queue is
//     below `max_inflight_bytes` — a slow reader stalls its own
//     stream, never the event loop's memory;
//   * idle timeout: connections quiet for `idle_timeout_s` are closed
//     (a PUT in flight counts as activity only when bytes arrive);
//   * PUT streams into a backend Writer; the object becomes visible
//     only at PUT_END.  A connection that drops mid-PUT (or sends
//     PUT_ABORT) destroys the writer unclosed, which every backend
//     treats as abort-and-discard — the same orphan-cleanup guarantee
//     local writers have.
//
// Observability: net.* counters/gauges/histograms (connections, per-
// verb requests, bytes in/out, request latency) and net.<verb> trace
// spans per request; docs/OBSERVABILITY.md lists them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/backend.h"

namespace ickpt::net {

struct ServerOptions {
  std::string bind = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Per-connection cap on queued-but-unsent response bytes; GET body
  /// pumping pauses above it.
  std::size_t max_inflight_bytes = 4u << 20;
  /// Close connections with no socket activity for this long.
  /// <= 0 disables the idle sweep.
  double idle_timeout_s = 60.0;
};

class Server {
 public:
  /// Bind + listen (so port() is valid immediately); serve() runs the
  /// loop.  The backend must outlive the server.
  static Result<std::unique_ptr<Server>> create(
      storage::StorageBackend& backend, const ServerOptions& options = {});

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (useful with options.port == 0).
  std::uint16_t port() const noexcept;

  /// Run the event loop on the calling thread until stop() is called.
  Status serve();

  /// Ask a running serve() to return.  Callable from any thread and
  /// from signal handlers (one eventfd write).
  void stop() noexcept;

  /// Currently open client connections (for tests and draining).
  std::size_t open_connections() const noexcept;

 private:
  class Impl;
  explicit Server(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace ickpt::net

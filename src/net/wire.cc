#include "net/wire.h"

#include <cstring>

namespace ickpt::net {

namespace {

bool known_verb(std::uint8_t v) noexcept {
  switch (static_cast<Verb>(v)) {
    case Verb::kHello:
    case Verb::kPutBegin:
    case Verb::kPutData:
    case Verb::kPutEnd:
    case Verb::kPutAbort:
    case Verb::kGet:
    case Verb::kList:
    case Verb::kDelete:
    case Verb::kStat:
    case Verb::kHelloOk:
    case Verb::kOk:
    case Verb::kErr:
    case Verb::kData:
    case Verb::kDataEnd:
    case Verb::kStatOk:
    case Verb::kListOk:
      return true;
  }
  return false;
}

}  // namespace

std::string_view to_string(Verb verb) noexcept {
  switch (verb) {
    case Verb::kHello: return "HELLO";
    case Verb::kPutBegin: return "PUT_BEGIN";
    case Verb::kPutData: return "PUT_DATA";
    case Verb::kPutEnd: return "PUT_END";
    case Verb::kPutAbort: return "PUT_ABORT";
    case Verb::kGet: return "GET";
    case Verb::kList: return "LIST";
    case Verb::kDelete: return "DELETE";
    case Verb::kStat: return "STAT";
    case Verb::kHelloOk: return "HELLO_OK";
    case Verb::kOk: return "OK";
    case Verb::kErr: return "ERR";
    case Verb::kData: return "DATA";
    case Verb::kDataEnd: return "DATA_END";
    case Verb::kStatOk: return "STAT_OK";
    case Verb::kListOk: return "LIST_OK";
  }
  return "?";
}

void encode_frame_header(const FrameHeader& h,
                         std::span<std::byte, kFrameHeaderSize> out) {
  const std::uint32_t len = h.len;
  out[0] = static_cast<std::byte>(len & 0xFF);
  out[1] = static_cast<std::byte>((len >> 8) & 0xFF);
  out[2] = static_cast<std::byte>((len >> 16) & 0xFF);
  out[3] = static_cast<std::byte>((len >> 24) & 0xFF);
  out[4] = static_cast<std::byte>(h.verb);
  out[5] = static_cast<std::byte>(h.flags);
  out[6] = static_cast<std::byte>(h.code & 0xFF);
  out[7] = static_cast<std::byte>((h.code >> 8) & 0xFF);
}

Result<FrameHeader> decode_frame_header(
    std::span<const std::byte, kFrameHeaderSize> in) {
  FrameHeader h;
  h.len = static_cast<std::uint32_t>(in[0]) |
          static_cast<std::uint32_t>(in[1]) << 8 |
          static_cast<std::uint32_t>(in[2]) << 16 |
          static_cast<std::uint32_t>(in[3]) << 24;
  const auto verb = static_cast<std::uint8_t>(in[4]);
  h.flags = static_cast<std::uint8_t>(in[5]);
  h.code = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(in[6]) |
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(in[7]) << 8));
  if (h.len > kMaxFramePayload) {
    return invalid_argument("frame payload length " + std::to_string(h.len) +
                            " exceeds cap " +
                            std::to_string(kMaxFramePayload));
  }
  if (!known_verb(verb)) {
    return invalid_argument("unknown verb " + std::to_string(verb));
  }
  h.verb = static_cast<Verb>(verb);
  return h;
}

// ----------------------------------------------------------------- codes

std::uint16_t to_wire_code(ErrorCode code) noexcept {
  return static_cast<std::uint16_t>(code);
}

ErrorCode from_wire_code(std::uint16_t code) noexcept {
  switch (static_cast<ErrorCode>(code)) {
    case ErrorCode::kOk:
    case ErrorCode::kInvalidArgument:
    case ErrorCode::kNotFound:
    case ErrorCode::kAlreadyExists:
    case ErrorCode::kOutOfRange:
    case ErrorCode::kFailedPrecondition:
    case ErrorCode::kIoError:
    case ErrorCode::kCorruption:
    case ErrorCode::kUnsupported:
    case ErrorCode::kResourceExhausted:
    case ErrorCode::kInternal:
      return static_cast<ErrorCode>(code);
  }
  return ErrorCode::kInternal;
}

// --------------------------------------------------------------- append

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xFF));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
  }
}

void put_string(std::vector<std::byte>& out, std::string_view s) {
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  out.insert(out.end(), p, p + s.size());
}

std::vector<std::byte> build_frame(Verb verb,
                                   std::span<const std::byte> payload,
                                   std::uint16_t code) {
  std::vector<std::byte> frame(kFrameHeaderSize + payload.size());
  FrameHeader h;
  h.len = static_cast<std::uint32_t>(payload.size());
  h.verb = verb;
  h.code = code;
  encode_frame_header(h, std::span<std::byte, kFrameHeaderSize>(
                             frame.data(), kFrameHeaderSize));
  if (!payload.empty()) {
    std::memcpy(frame.data() + kFrameHeaderSize, payload.data(),
                payload.size());
  }
  return frame;
}

// ---------------------------------------------------------------- parse

Result<std::span<const std::byte>> WireCursor::take(std::size_t n) {
  if (n > remaining()) {
    return invalid_argument("truncated payload: need " + std::to_string(n) +
                            " bytes, have " + std::to_string(remaining()));
  }
  auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

Result<std::uint16_t> WireCursor::u16() {
  ICKPT_ASSIGN_OR_RETURN(b, take(2));
  return static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(b[0]) |
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(b[1]) << 8));
}

Result<std::uint32_t> WireCursor::u32() {
  ICKPT_ASSIGN_OR_RETURN(b, take(4));
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint32_t>(b[static_cast<std::size_t>(i)]);
  }
  return v;
}

Result<std::uint64_t> WireCursor::u64() {
  ICKPT_ASSIGN_OR_RETURN(b, take(8));
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint64_t>(b[static_cast<std::size_t>(i)]);
  }
  return v;
}

Result<std::string> WireCursor::string(std::size_t max_len) {
  ICKPT_ASSIGN_OR_RETURN(len, u16());
  if (len > max_len) {
    return invalid_argument("string length " + std::to_string(len) +
                            " exceeds cap " + std::to_string(max_len));
  }
  ICKPT_ASSIGN_OR_RETURN(b, take(len));
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

std::span<const std::byte> WireCursor::rest() noexcept {
  auto view = data_.subspan(pos_);
  pos_ = data_.size();
  return view;
}

Status WireCursor::expect_end() const {
  if (pos_ != data_.size()) {
    return invalid_argument("trailing bytes after payload: " +
                            std::to_string(data_.size() - pos_));
  }
  return Status::ok();
}

// ------------------------------------------------------------- messages

std::vector<std::byte> build_hello(const HelloMsg& msg) {
  std::vector<std::byte> out;
  put_u32(out, msg.version);
  put_string(out, msg.tenant);
  return out;
}

Result<HelloMsg> parse_hello(std::span<const std::byte> payload) {
  WireCursor cur(payload);
  HelloMsg msg;
  ICKPT_ASSIGN_OR_RETURN(version, cur.u32());
  msg.version = version;
  ICKPT_ASSIGN_OR_RETURN(tenant, cur.string(kMaxTenantLength));
  msg.tenant = std::move(tenant);
  ICKPT_RETURN_IF_ERROR(cur.expect_end());
  return msg;
}

std::vector<std::byte> build_get(const GetMsg& msg) {
  std::vector<std::byte> out;
  put_string(out, msg.key);
  put_u64(out, msg.offset);
  put_u64(out, msg.length);
  return out;
}

Result<GetMsg> parse_get(std::span<const std::byte> payload) {
  WireCursor cur(payload);
  GetMsg msg;
  ICKPT_ASSIGN_OR_RETURN(key, cur.string());
  msg.key = std::move(key);
  ICKPT_ASSIGN_OR_RETURN(offset, cur.u64());
  msg.offset = offset;
  ICKPT_ASSIGN_OR_RETURN(length, cur.u64());
  msg.length = length;
  ICKPT_RETURN_IF_ERROR(cur.expect_end());
  return msg;
}

std::vector<std::byte> build_key_only(const std::string& key) {
  std::vector<std::byte> out;
  put_string(out, key);
  return out;
}

Result<std::string> parse_key_only(std::span<const std::byte> payload) {
  WireCursor cur(payload);
  ICKPT_ASSIGN_OR_RETURN(key, cur.string());
  ICKPT_RETURN_IF_ERROR(cur.expect_end());
  return key;
}

std::vector<std::byte> build_stat_ok(std::uint64_t size) {
  std::vector<std::byte> out;
  put_u64(out, size);
  return out;
}

Result<std::uint64_t> parse_stat_ok(std::span<const std::byte> payload) {
  WireCursor cur(payload);
  ICKPT_ASSIGN_OR_RETURN(size, cur.u64());
  ICKPT_RETURN_IF_ERROR(cur.expect_end());
  return size;
}

std::vector<std::byte> build_list_ok(const std::vector<std::string>& keys) {
  std::vector<std::byte> out;
  put_u32(out, static_cast<std::uint32_t>(keys.size()));
  for (const auto& key : keys) put_string(out, key);
  return out;
}

Result<std::vector<std::string>> parse_list_ok(
    std::span<const std::byte> payload) {
  WireCursor cur(payload);
  ICKPT_ASSIGN_OR_RETURN(count, cur.u32());
  // Each key costs at least its 2-byte length prefix; a count claiming
  // more entries than the payload could possibly hold is rejected
  // before any reservation happens.
  if (count > payload.size() / 2) {
    return invalid_argument("list count " + std::to_string(count) +
                            " impossible for payload of " +
                            std::to_string(payload.size()) + " bytes");
  }
  std::vector<std::string> keys;
  keys.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ICKPT_ASSIGN_OR_RETURN(key, cur.string());
    keys.push_back(std::move(key));
  }
  ICKPT_RETURN_IF_ERROR(cur.expect_end());
  return keys;
}

std::vector<std::byte> build_err_payload(const std::string& message) {
  std::vector<std::byte> out;
  // Error text is advisory; clip rather than reject long messages.
  std::string_view clipped(message);
  if (clipped.size() > kMaxKeyLength) clipped = clipped.substr(0, kMaxKeyLength);
  put_string(out, clipped);
  return out;
}

Result<std::string> parse_err_payload(std::span<const std::byte> payload) {
  WireCursor cur(payload);
  ICKPT_ASSIGN_OR_RETURN(message, cur.string());
  ICKPT_RETURN_IF_ERROR(cur.expect_end());
  return message;
}

bool valid_tenant(std::string_view tenant) noexcept {
  if (tenant.empty() || tenant.size() > kMaxTenantLength) return false;
  for (char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

bool valid_key(std::string_view key) noexcept {
  if (key.empty() || key.size() > kMaxKeyLength) return false;
  if (key.front() == '/') return false;
  for (char c : key) {
    if (static_cast<unsigned char>(c) < 0x20 ||
        static_cast<unsigned char>(c) > 0x7E) {
      return false;
    }
  }
  // Reject ".." as a full path component anywhere in the key.
  std::size_t start = 0;
  while (start <= key.size()) {
    const std::size_t slash = key.find('/', start);
    const std::size_t end = slash == std::string_view::npos ? key.size()
                                                            : slash;
    if (end - start == 2 && key[start] == '.' && key[start + 1] == '.') {
      return false;
    }
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
  return true;
}

}  // namespace ickpt::net

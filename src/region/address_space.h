// AddressSpace: the dynamically-evolving set of tracked data-memory
// blocks owned by one process (rank).
//
// Models the paper's view of a UNIX process's data memory (Section 4.1):
// initialized/uninitialized data (kStaticData), the heap (kHeap), and
// mmap'ed memory (kMmap).  Blocks can be mapped and unmapped at run
// time; unmapping detaches the pages from dirty tracking, reproducing
// the *memory exclusion* optimization (Section 4.2: "pages belonging to
// unmapped areas are not taken into account ... there is no need to
// checkpoint these pages").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "memtrack/tracker.h"

namespace ickpt::region {

using BlockId = std::uint32_t;
inline constexpr BlockId kInvalidBlock = 0xffffffffu;

enum class AreaKind { kStaticData, kHeap, kMmap };

std::string_view to_string(AreaKind kind) noexcept;

/// Handle to a mapped block.
struct BlockRef {
  BlockId id = kInvalidBlock;
  std::span<std::byte> mem;
};

/// Metadata describing one mapped block (for checkpoint manifests).
struct BlockInfo {
  BlockId id;
  std::string name;
  AreaKind kind;
  std::size_t bytes;
  memtrack::RegionId region;  ///< id inside the dirty tracker
  std::uintptr_t base;        ///< virtual address of the block
};

class AddressSpace {
 public:
  /// All blocks are registered with `tracker`; it must outlive *this.
  AddressSpace(memtrack::DirtyTracker& tracker, std::string name);
  ~AddressSpace();

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  /// Map a new zero-filled block of at least `bytes` (page-rounded),
  /// attach it to the dirty tracker, and pre-fault its pages.
  Result<BlockRef> map(std::size_t bytes, AreaKind kind, std::string name);

  /// Unmap a block: detach from tracking and release the memory.
  Status unmap(BlockId id);

  /// Span of a mapped block.
  Result<std::span<std::byte>> block_span(BlockId id);

  /// Metadata for one block / all blocks (sorted by id).
  Result<BlockInfo> block_info(BlockId id) const;
  std::vector<BlockInfo> blocks() const;

  /// Current total mapped bytes — the process's data memory footprint.
  std::size_t footprint_bytes() const noexcept { return footprint_; }

  /// Footprint broken down by data area (paper §4.1's initialized
  /// data / heap / mmap'ed memory split).  Index with AreaKind.
  struct KindBreakdown {
    std::size_t static_data = 0;
    std::size_t heap = 0;
    std::size_t mmap = 0;
  };
  KindBreakdown footprint_by_kind() const noexcept;

  /// Largest footprint ever observed (Table 2's "Maximum" column).
  std::size_t peak_footprint_bytes() const noexcept { return peak_; }

  std::size_t block_count() const noexcept { return blocks_.size(); }
  const std::string& name() const noexcept { return name_; }
  memtrack::DirtyTracker& tracker() noexcept { return tracker_; }

 private:
  struct Block {
    std::string name;
    AreaKind kind;
    PageArena arena;
    memtrack::RegionId region;
  };

  memtrack::DirtyTracker& tracker_;
  std::string name_;
  std::map<BlockId, Block> blocks_;
  BlockId next_id_ = 1;
  std::size_t footprint_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace ickpt::region

#include "region/address_space.h"

#include <utility>

namespace ickpt::region {

std::string_view to_string(AreaKind kind) noexcept {
  switch (kind) {
    case AreaKind::kStaticData: return "static";
    case AreaKind::kHeap: return "heap";
    case AreaKind::kMmap: return "mmap";
  }
  return "?";
}

AddressSpace::AddressSpace(memtrack::DirtyTracker& tracker, std::string name)
    : tracker_(tracker), name_(std::move(name)) {}

AddressSpace::~AddressSpace() {
  for (auto& [id, b] : blocks_) {
    (void)tracker_.detach(b.region);
  }
}

Result<BlockRef> AddressSpace::map(std::size_t bytes, AreaKind kind,
                                   std::string name) {
  if (bytes == 0) return invalid_argument("map: zero-size block");
  PageArena arena(bytes);
  arena.prefault();
  auto region = tracker_.attach(arena.span(),
                                name_ + "/" + name);
  if (!region.is_ok()) return region.status();

  BlockId id = next_id_++;
  std::span<std::byte> mem = arena.span();
  footprint_ += arena.size();
  peak_ = std::max(peak_, footprint_);
  blocks_.emplace(
      id, Block{std::move(name), kind, std::move(arena), region.value()});
  return BlockRef{id, mem};
}

Status AddressSpace::unmap(BlockId id) {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) return not_found("unmap: unknown block");
  ICKPT_RETURN_IF_ERROR(tracker_.detach(it->second.region));
  footprint_ -= it->second.arena.size();
  blocks_.erase(it);
  return Status::ok();
}

Result<std::span<std::byte>> AddressSpace::block_span(BlockId id) {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) return not_found("block_span: unknown block");
  return it->second.arena.span();
}

Result<BlockInfo> AddressSpace::block_info(BlockId id) const {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) return not_found("block_info: unknown block");
  const Block& b = it->second;
  return BlockInfo{id, b.name, b.kind, b.arena.size(), b.region,
                   reinterpret_cast<std::uintptr_t>(b.arena.data())};
}

AddressSpace::KindBreakdown AddressSpace::footprint_by_kind()
    const noexcept {
  KindBreakdown out;
  for (const auto& [id, b] : blocks_) {
    switch (b.kind) {
      case AreaKind::kStaticData: out.static_data += b.arena.size(); break;
      case AreaKind::kHeap: out.heap += b.arena.size(); break;
      case AreaKind::kMmap: out.mmap += b.arena.size(); break;
    }
  }
  return out;
}

std::vector<BlockInfo> AddressSpace::blocks() const {
  std::vector<BlockInfo> out;
  out.reserve(blocks_.size());
  for (const auto& [id, b] : blocks_) {
    out.push_back(BlockInfo{id, b.name, b.kind, b.arena.size(), b.region,
                            reinterpret_cast<std::uintptr_t>(b.arena.data())});
  }
  return out;
}

}  // namespace ickpt::region

#include "common/crc32.h"

#include <gtest/gtest.h>

#include <cstring>

namespace ickpt {
namespace {

std::span<const std::byte> as_bytes(const char* s) {
  return {reinterpret_cast<const std::byte*>(s), std::strlen(s)};
}

TEST(Crc32Test, KnownVectors) {
  // Standard IEEE CRC-32 check values.
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(as_bytes("")), 0x00000000u);
  EXPECT_EQ(crc32(as_bytes("a")), 0xE8B7BE43u);
  EXPECT_EQ(crc32(as_bytes("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32Test, IncrementalEqualsOneShot) {
  Crc32 inc;
  inc.update(as_bytes("1234"));
  inc.update(as_bytes("56789"));
  EXPECT_EQ(inc.value(), crc32(as_bytes("123456789")));
}

TEST(Crc32Test, ValueIsIdempotent) {
  Crc32 c;
  c.update(as_bytes("data"));
  auto v1 = c.value();
  auto v2 = c.value();
  EXPECT_EQ(v1, v2);
  c.update(as_bytes("more"));
  EXPECT_NE(c.value(), v1);
}

TEST(Crc32Test, ResetStartsOver) {
  Crc32 c;
  c.update(as_bytes("junk"));
  c.reset();
  c.update(as_bytes("123456789"));
  EXPECT_EQ(c.value(), 0xCBF43926u);
}

TEST(Crc32Test, SingleBitFlipChangesValue) {
  std::vector<std::byte> data(4096, std::byte{0x7f});
  auto base = crc32(data);
  for (std::size_t pos : {0u, 2048u, 4095u}) {
    data[pos] ^= std::byte{0x01};
    EXPECT_NE(crc32(data), base) << "flip at " << pos;
    data[pos] ^= std::byte{0x01};
  }
}

}  // namespace
}  // namespace ickpt

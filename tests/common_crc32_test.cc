#include "common/crc32.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"

namespace ickpt {
namespace {

/// Bit-at-a-time reference implementation (no tables).
std::uint32_t crc32_reference(std::span<const std::byte> data) {
  std::uint32_t c = 0xffffffffu;
  for (std::byte b : data) {
    c ^= static_cast<std::uint32_t>(b);
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
  }
  return ~c;
}

std::span<const std::byte> as_bytes(const char* s) {
  return {reinterpret_cast<const std::byte*>(s), std::strlen(s)};
}

TEST(Crc32Test, KnownVectors) {
  // Standard IEEE CRC-32 check values.
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(as_bytes("")), 0x00000000u);
  EXPECT_EQ(crc32(as_bytes("a")), 0xE8B7BE43u);
  EXPECT_EQ(crc32(as_bytes("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32Test, IncrementalEqualsOneShot) {
  Crc32 inc;
  inc.update(as_bytes("1234"));
  inc.update(as_bytes("56789"));
  EXPECT_EQ(inc.value(), crc32(as_bytes("123456789")));
}

TEST(Crc32Test, ValueIsIdempotent) {
  Crc32 c;
  c.update(as_bytes("data"));
  auto v1 = c.value();
  auto v2 = c.value();
  EXPECT_EQ(v1, v2);
  c.update(as_bytes("more"));
  EXPECT_NE(c.value(), v1);
}

TEST(Crc32Test, ResetStartsOver) {
  Crc32 c;
  c.update(as_bytes("junk"));
  c.reset();
  c.update(as_bytes("123456789"));
  EXPECT_EQ(c.value(), 0xCBF43926u);
}

TEST(Crc32Test, SliceBy8MatchesBitwiseReference) {
  // Random lengths and starting alignments exercise the 8-byte fast
  // path, the bytewise tail, and unaligned loads.
  Rng rng(1);
  std::vector<std::byte> data(4096 + 64);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_u64() & 0xff);
  }
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u, 4096u}) {
    for (std::size_t align : {0u, 1u, 3u, 7u}) {
      std::span<const std::byte> view{data.data() + align, len};
      EXPECT_EQ(crc32(view), crc32_reference(view))
          << "len=" << len << " align=" << align;
    }
  }
}

TEST(Crc32Test, ChunkedUpdatesMatchOneShot) {
  Rng rng(2);
  std::vector<std::byte> data(10000);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_u64() & 0xff);
  }
  Crc32 inc;
  std::size_t off = 0;
  while (off < data.size()) {
    std::size_t n = std::min<std::size_t>(1 + rng.next_index(977),
                                          data.size() - off);
    inc.update({data.data() + off, n});
    off += n;
  }
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32CombineTest, MatchesDirectHashOfConcatenation) {
  Rng rng(3);
  std::vector<std::byte> data(8192);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_u64() & 0xff);
  }
  for (std::size_t split : {0u, 1u, 9u, 4096u, 8191u, 8192u}) {
    auto a = crc32({data.data(), split});
    auto b = crc32({data.data() + split, data.size() - split});
    EXPECT_EQ(crc32_combine(a, b, data.size() - split), crc32(data))
        << "split=" << split;
  }
}

TEST(Crc32CombineTest, ZeroLengthIsIdentity) {
  auto c = crc32(std::span<const std::byte>{});
  auto d = crc32_reference(std::span<const std::byte>{});
  EXPECT_EQ(c, d);
  EXPECT_EQ(crc32_combine(0x12345678u, c, 0), 0x12345678u);
}

TEST(Crc32CombineTest, Associativity) {
  // combine(combine(A,B),C) == combine(A,combine(B,C)) over random
  // splits — the property the shard stitcher relies on.
  Rng rng(4);
  std::vector<std::byte> data(6000);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_u64() & 0xff);
  }
  for (int trial = 0; trial < 16; ++trial) {
    std::size_t i = rng.next_index(data.size());
    std::size_t j = i + rng.next_index(data.size() - i);
    const std::uint64_t len_b = j - i;
    const std::uint64_t len_c = data.size() - j;
    auto a = crc32({data.data(), i});
    auto b = crc32({data.data() + i, len_b});
    auto c = crc32({data.data() + j, len_c});
    auto left = crc32_combine(crc32_combine(a, b, len_b), c, len_c);
    auto right =
        crc32_combine(a, crc32_combine(b, c, len_c), len_b + len_c);
    EXPECT_EQ(left, right) << "i=" << i << " j=" << j;
    EXPECT_EQ(left, crc32(data));
  }
}

TEST(Crc32CombineTest, StreamingCombineMatchesUpdate) {
  Rng rng(5);
  std::vector<std::byte> head(100), tail(3000);
  for (auto& b : head) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  for (auto& b : tail) b = static_cast<std::byte>(rng.next_u64() & 0xff);

  Crc32 via_update;
  via_update.update(head);
  via_update.update(tail);

  Crc32 via_combine;
  via_combine.update(head);
  via_combine.combine(crc32(tail), tail.size());
  EXPECT_EQ(via_combine.value(), via_update.value());
}

/// Swap the process-wide CRC kernel for one test, restoring on exit.
class ScopedKernel {
 public:
  explicit ScopedKernel(CrcKernel k) : prev_(crc32_active_kernel()) {
    ok_ = crc32_set_kernel(k);
  }
  ~ScopedKernel() { crc32_set_kernel(prev_); }
  bool ok() const { return ok_; }

 private:
  CrcKernel prev_;
  bool ok_ = false;
};

std::vector<CrcKernel> available_hw_kernels() {
  std::vector<CrcKernel> out;
  for (CrcKernel k : {CrcKernel::kPclmul, CrcKernel::kArmCrc}) {
    if (crc32_kernel_available(k)) out.push_back(k);
  }
  return out;
}

TEST(Crc32KernelTest, Slice8AlwaysAvailable) {
  EXPECT_TRUE(crc32_kernel_available(CrcKernel::kSlice8));
  EXPECT_STREQ(crc32_kernel_name(CrcKernel::kSlice8), "slice8");
}

TEST(Crc32KernelTest, SetUnavailableKernelIsRefused) {
  const CrcKernel before = crc32_active_kernel();
  for (CrcKernel k : {CrcKernel::kPclmul, CrcKernel::kArmCrc}) {
    if (crc32_kernel_available(k)) continue;
    EXPECT_FALSE(crc32_set_kernel(k)) << crc32_kernel_name(k);
    EXPECT_EQ(crc32_active_kernel(), before)
        << "refused set must leave the active kernel alone";
  }
}

TEST(Crc32KernelTest, DefaultSelectionFallsBackWithoutHardware) {
  // On hosts with no usable CRC hardware, auto selection must land on
  // the portable kernel (the ISSUE's soft-only acceptance check).
  if (!available_hw_kernels().empty()) {
    GTEST_SKIP() << "host has hardware CRC; fallback path not reachable";
  }
  EXPECT_EQ(crc32_select_default_kernel(), CrcKernel::kSlice8);
}

TEST(Crc32KernelTest, HardwareMatchesSoftRandomized) {
  // Every available hardware kernel must produce bit-identical CRCs to
  // slice-by-8 over randomized lengths (0..4 KiB) and unaligned
  // starting offsets — covering the <64 B delegation path, the 16-byte
  // fold granularity, and odd tails.
  const auto hw = available_hw_kernels();
  if (hw.empty()) GTEST_SKIP() << "no hardware CRC kernel on this host";

  Rng rng(6);
  std::vector<std::byte> data(4096 + 64);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_u64() & 0xff);

  std::vector<std::pair<std::size_t, std::size_t>> cases;
  for (std::size_t len :
       {0u, 1u, 15u, 16u, 63u, 64u, 65u, 127u, 128u, 1000u, 4096u}) {
    for (std::size_t align : {0u, 1u, 3u, 7u, 13u}) cases.push_back({len, align});
  }
  for (int trial = 0; trial < 64; ++trial) {
    cases.push_back({rng.next_index(4097), rng.next_index(64)});
  }

  for (CrcKernel k : hw) {
    for (auto [len, align] : cases) {
      std::span<const std::byte> view{data.data() + align, len};
      std::uint32_t soft, fast;
      {
        ScopedKernel s(CrcKernel::kSlice8);
        ASSERT_TRUE(s.ok());
        soft = crc32(view);
      }
      {
        ScopedKernel s(k);
        ASSERT_TRUE(s.ok());
        fast = crc32(view);
      }
      EXPECT_EQ(fast, soft) << crc32_kernel_name(k) << " len=" << len
                            << " align=" << align;
    }
  }
}

TEST(Crc32KernelTest, CombineStitchesAcrossKernelBoundaries) {
  // The shard stitcher may fold CRCs computed by different kernels
  // (e.g. a process that flips ICKPT_CRC_IMPL between runs, or mixed
  // fleets).  combine() must be oblivious to which kernel hashed each
  // piece.
  const auto hw = available_hw_kernels();
  if (hw.empty()) GTEST_SKIP() << "no hardware CRC kernel on this host";

  Rng rng(7);
  std::vector<std::byte> data(8192);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_u64() & 0xff);

  std::uint32_t whole_soft;
  {
    ScopedKernel s(CrcKernel::kSlice8);
    whole_soft = crc32(data);
  }
  for (CrcKernel k : hw) {
    for (std::size_t split : {0u, 1u, 100u, 4096u, 8191u, 8192u}) {
      std::uint32_t a, b;
      {
        ScopedKernel s(CrcKernel::kSlice8);
        a = crc32({data.data(), split});
      }
      {
        ScopedKernel s(k);
        b = crc32({data.data() + split, data.size() - split});
        EXPECT_EQ(crc32(data), whole_soft) << crc32_kernel_name(k);
      }
      EXPECT_EQ(crc32_combine(a, b, data.size() - split), whole_soft)
          << crc32_kernel_name(k) << " split=" << split;
    }
  }
}

TEST(Crc32KernelTest, IncrementalUpdatesSpanKernelSwitch) {
  // A Crc32 accumulator whose update() calls straddle a kernel switch
  // must still match the one-shot value: kernel state is plain CRC
  // state, never kernel-private.
  const auto hw = available_hw_kernels();
  if (hw.empty()) GTEST_SKIP() << "no hardware CRC kernel on this host";

  Rng rng(8);
  std::vector<std::byte> data(5000);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_u64() & 0xff);

  for (CrcKernel k : hw) {
    Crc32 inc;
    {
      ScopedKernel s(CrcKernel::kSlice8);
      inc.update({data.data(), 1234});
    }
    {
      ScopedKernel s(k);
      inc.update({data.data() + 1234, data.size() - 1234});
    }
    EXPECT_EQ(inc.value(), crc32(data)) << crc32_kernel_name(k);
  }
}

TEST(Crc32Test, SingleBitFlipChangesValue) {
  std::vector<std::byte> data(4096, std::byte{0x7f});
  auto base = crc32(data);
  for (std::size_t pos : {0u, 2048u, 4095u}) {
    data[pos] ^= std::byte{0x01};
    EXPECT_NE(crc32(data), base) << "flip at " << pos;
    data[pos] ^= std::byte{0x01};
  }
}

}  // namespace
}  // namespace ickpt

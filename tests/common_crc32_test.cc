#include "common/crc32.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"

namespace ickpt {
namespace {

/// Bit-at-a-time reference implementation (no tables).
std::uint32_t crc32_reference(std::span<const std::byte> data) {
  std::uint32_t c = 0xffffffffu;
  for (std::byte b : data) {
    c ^= static_cast<std::uint32_t>(b);
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
  }
  return ~c;
}

std::span<const std::byte> as_bytes(const char* s) {
  return {reinterpret_cast<const std::byte*>(s), std::strlen(s)};
}

TEST(Crc32Test, KnownVectors) {
  // Standard IEEE CRC-32 check values.
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(as_bytes("")), 0x00000000u);
  EXPECT_EQ(crc32(as_bytes("a")), 0xE8B7BE43u);
  EXPECT_EQ(crc32(as_bytes("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32Test, IncrementalEqualsOneShot) {
  Crc32 inc;
  inc.update(as_bytes("1234"));
  inc.update(as_bytes("56789"));
  EXPECT_EQ(inc.value(), crc32(as_bytes("123456789")));
}

TEST(Crc32Test, ValueIsIdempotent) {
  Crc32 c;
  c.update(as_bytes("data"));
  auto v1 = c.value();
  auto v2 = c.value();
  EXPECT_EQ(v1, v2);
  c.update(as_bytes("more"));
  EXPECT_NE(c.value(), v1);
}

TEST(Crc32Test, ResetStartsOver) {
  Crc32 c;
  c.update(as_bytes("junk"));
  c.reset();
  c.update(as_bytes("123456789"));
  EXPECT_EQ(c.value(), 0xCBF43926u);
}

TEST(Crc32Test, SliceBy8MatchesBitwiseReference) {
  // Random lengths and starting alignments exercise the 8-byte fast
  // path, the bytewise tail, and unaligned loads.
  Rng rng(1);
  std::vector<std::byte> data(4096 + 64);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_u64() & 0xff);
  }
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u, 4096u}) {
    for (std::size_t align : {0u, 1u, 3u, 7u}) {
      std::span<const std::byte> view{data.data() + align, len};
      EXPECT_EQ(crc32(view), crc32_reference(view))
          << "len=" << len << " align=" << align;
    }
  }
}

TEST(Crc32Test, ChunkedUpdatesMatchOneShot) {
  Rng rng(2);
  std::vector<std::byte> data(10000);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_u64() & 0xff);
  }
  Crc32 inc;
  std::size_t off = 0;
  while (off < data.size()) {
    std::size_t n = std::min<std::size_t>(1 + rng.next_index(977),
                                          data.size() - off);
    inc.update({data.data() + off, n});
    off += n;
  }
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32CombineTest, MatchesDirectHashOfConcatenation) {
  Rng rng(3);
  std::vector<std::byte> data(8192);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_u64() & 0xff);
  }
  for (std::size_t split : {0u, 1u, 9u, 4096u, 8191u, 8192u}) {
    auto a = crc32({data.data(), split});
    auto b = crc32({data.data() + split, data.size() - split});
    EXPECT_EQ(crc32_combine(a, b, data.size() - split), crc32(data))
        << "split=" << split;
  }
}

TEST(Crc32CombineTest, ZeroLengthIsIdentity) {
  auto c = crc32(std::span<const std::byte>{});
  auto d = crc32_reference(std::span<const std::byte>{});
  EXPECT_EQ(c, d);
  EXPECT_EQ(crc32_combine(0x12345678u, c, 0), 0x12345678u);
}

TEST(Crc32CombineTest, Associativity) {
  // combine(combine(A,B),C) == combine(A,combine(B,C)) over random
  // splits — the property the shard stitcher relies on.
  Rng rng(4);
  std::vector<std::byte> data(6000);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_u64() & 0xff);
  }
  for (int trial = 0; trial < 16; ++trial) {
    std::size_t i = rng.next_index(data.size());
    std::size_t j = i + rng.next_index(data.size() - i);
    const std::uint64_t len_b = j - i;
    const std::uint64_t len_c = data.size() - j;
    auto a = crc32({data.data(), i});
    auto b = crc32({data.data() + i, len_b});
    auto c = crc32({data.data() + j, len_c});
    auto left = crc32_combine(crc32_combine(a, b, len_b), c, len_c);
    auto right =
        crc32_combine(a, crc32_combine(b, c, len_c), len_b + len_c);
    EXPECT_EQ(left, right) << "i=" << i << " j=" << j;
    EXPECT_EQ(left, crc32(data));
  }
}

TEST(Crc32CombineTest, StreamingCombineMatchesUpdate) {
  Rng rng(5);
  std::vector<std::byte> head(100), tail(3000);
  for (auto& b : head) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  for (auto& b : tail) b = static_cast<std::byte>(rng.next_u64() & 0xff);

  Crc32 via_update;
  via_update.update(head);
  via_update.update(tail);

  Crc32 via_combine;
  via_combine.update(head);
  via_combine.combine(crc32(tail), tail.size());
  EXPECT_EQ(via_combine.value(), via_update.value());
}

TEST(Crc32Test, SingleBitFlipChangesValue) {
  std::vector<std::byte> data(4096, std::byte{0x7f});
  auto base = crc32(data);
  for (std::size_t pos : {0u, 2048u, 4095u}) {
    data[pos] ^= std::byte{0x01};
    EXPECT_NE(crc32(data), base) << "flip at " << pos;
    data[pos] ^= std::byte{0x01};
  }
}

}  // namespace
}  // namespace ickpt

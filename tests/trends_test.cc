#include "analysis/trends.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace ickpt::analysis {
namespace {

TrendModel paper_model() {
  // Paper §6.6 anchored at 2004: Sage-1000MB needs 78.8 MB/s; QsNet II
  // provides 900 MB/s, SCSI 320 MB/s.
  TrendModel m;
  m.app_ib0 = 78.8 * static_cast<double>(kMB);
  m.network0 = 900.0 * static_cast<double>(kMB);
  m.storage0 = 320.0 * static_cast<double>(kMB);
  return m;
}

TEST(TrendsTest, YearZeroMatchesInputs) {
  auto pts = project(paper_model(), 1);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0].app_ib, 78.8 * static_cast<double>(kMB));
  EXPECT_NEAR(pts[0].frac_of_network, 0.0876, 1e-3);
  EXPECT_NEAR(pts[0].frac_of_storage, 0.246, 1e-3);
  EXPECT_TRUE(pts[0].feasible);
}

TEST(TrendsTest, PaperConclusionHeadroomWidens) {
  // "future improvements in networking and storage will make
  // incremental checkpointing even more effective" — the fraction of
  // device bandwidth consumed must shrink year over year.
  auto pts = project(paper_model(), 10);
  for (std::size_t y = 1; y < pts.size(); ++y) {
    EXPECT_LT(pts[y].frac_of_network, pts[y - 1].frac_of_network);
    EXPECT_LT(pts[y].frac_of_storage, pts[y - 1].frac_of_storage);
    EXPECT_TRUE(pts[y].feasible);
  }
  EXPECT_EQ(infeasibility_year(paper_model(), 15), -1);
}

TEST(TrendsTest, SlowDevicesEventuallyInfeasible) {
  TrendModel m = paper_model();
  m.network_growth = 0.0;
  m.storage_growth = 0.0;
  m.app_ib_growth = 0.5;
  // 78.8 * 1.5^y > 320 -> y >= 4 (78.8*5.06 = 399).
  EXPECT_EQ(infeasibility_year(m, 20), 4);
}

TEST(TrendsTest, GrowthCompounds) {
  TrendModel m;
  m.app_ib0 = 100;
  m.network0 = 1000;
  m.storage0 = 1000;
  m.app_ib_growth = 1.0;  // doubling yearly
  auto pts = project(m, 4);
  EXPECT_DOUBLE_EQ(pts[3].app_ib, 800.0);
}

TEST(TrendsTest, HorizonZero) {
  EXPECT_TRUE(project(paper_model(), 0).empty());
  EXPECT_EQ(infeasibility_year(paper_model(), 0), -1);
}

}  // namespace
}  // namespace ickpt::analysis

// Wire-format unit + fuzz tests: every parser must either return a
// valid message or a clean kInvalidArgument — truncated frames,
// oversized length prefixes, unknown verbs and random garbage must
// never crash or over-read (ASan/UBSan run this suite in CI).
#include "net/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"

namespace ickpt::net {
namespace {

std::vector<std::byte> header_bytes(const FrameHeader& h) {
  std::vector<std::byte> buf(kFrameHeaderSize);
  encode_frame_header(
      h, std::span<std::byte, kFrameHeaderSize>(buf.data(), buf.size()));
  return buf;
}

Result<FrameHeader> decode(const std::vector<std::byte>& buf) {
  return decode_frame_header(std::span<const std::byte, kFrameHeaderSize>(
      buf.data(), kFrameHeaderSize));
}

TEST(WireHeaderTest, RoundTripsEveryField) {
  FrameHeader h;
  h.len = 123456;
  h.verb = Verb::kErr;
  h.code = to_wire_code(ErrorCode::kNotFound);
  auto decoded = decode(header_bytes(h));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded->len, h.len);
  EXPECT_EQ(decoded->verb, Verb::kErr);
  EXPECT_EQ(from_wire_code(decoded->code), ErrorCode::kNotFound);
}

TEST(WireHeaderTest, RejectsOversizedLengthPrefix) {
  FrameHeader h;
  h.len = kMaxFramePayload + 1;
  h.verb = Verb::kPutData;
  auto decoded = decode(header_bytes(h));
  ASSERT_FALSE(decoded.is_ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kInvalidArgument);

  // 0xFFFFFFFF — the classic hostile length.
  auto buf = header_bytes(h);
  for (int i = 0; i < 4; ++i) buf[static_cast<std::size_t>(i)] = std::byte{0xFF};
  EXPECT_FALSE(decode(buf).is_ok());
}

TEST(WireHeaderTest, RejectsUnknownVerbs) {
  for (int v : {0x00, 0x0A, 0x3F, 0x48, 0x7F, 0xFF}) {
    FrameHeader h;
    h.len = 0;
    h.verb = Verb::kOk;
    auto buf = header_bytes(h);
    buf[4] = static_cast<std::byte>(v);
    auto decoded = decode(buf);
    ASSERT_FALSE(decoded.is_ok()) << "verb " << v;
    EXPECT_EQ(decoded.status().code(), ErrorCode::kInvalidArgument);
  }
}

TEST(WireMsgTest, HelloRoundTrip) {
  HelloMsg msg{kWireVersion, "tenant-a.1"};
  auto parsed = parse_hello(build_hello(msg));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->version, kWireVersion);
  EXPECT_EQ(parsed->tenant, "tenant-a.1");
}

TEST(WireMsgTest, GetRoundTrip) {
  GetMsg msg{"rank0/ckpt-00000000000000000007", 4096, 65536};
  auto parsed = parse_get(build_get(msg));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->key, msg.key);
  EXPECT_EQ(parsed->offset, 4096u);
  EXPECT_EQ(parsed->length, 65536u);
}

TEST(WireMsgTest, KeyStatListErrRoundTrip) {
  auto key = parse_key_only(build_key_only("a/b/c"));
  ASSERT_TRUE(key.is_ok());
  EXPECT_EQ(*key, "a/b/c");

  auto size = parse_stat_ok(build_stat_ok(1ull << 40));
  ASSERT_TRUE(size.is_ok());
  EXPECT_EQ(*size, 1ull << 40);

  std::vector<std::string> keys{"rank0/ckpt-1", "rank0/ckpt-2", "commit/2"};
  auto listed = parse_list_ok(build_list_ok(keys));
  ASSERT_TRUE(listed.is_ok());
  EXPECT_EQ(*listed, keys);

  auto empty = parse_list_ok(build_list_ok({}));
  ASSERT_TRUE(empty.is_ok());
  EXPECT_TRUE(empty->empty());

  auto err = parse_err_payload(build_err_payload("no such object: x"));
  ASSERT_TRUE(err.is_ok());
  EXPECT_EQ(*err, "no such object: x");
}

TEST(WireMsgTest, TruncationAtEveryByteFailsCleanly) {
  // Chop each well-formed payload at every length short of full; the
  // parser must fail (kInvalidArgument), never read past the span.
  const std::vector<std::vector<std::byte>> payloads = {
      build_hello({kWireVersion, "t"}),
      build_get({"some/key", 7, 1234}),
      build_key_only("rank1/ckpt-5"),
      build_stat_ok(42),
      build_list_ok({"a", "bb", "ccc"}),
      build_err_payload("boom"),
  };
  for (const auto& full : payloads) {
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      std::span<const std::byte> part(full.data(), cut);
      for (auto st : {parse_hello(part).status(), parse_get(part).status(),
                      parse_key_only(part).status(),
                      parse_stat_ok(part).status(),
                      parse_list_ok(part).status(),
                      parse_err_payload(part).status()}) {
        if (!st.is_ok()) {
          EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
        }
      }
    }
  }
}

TEST(WireMsgTest, TrailingGarbageRejected) {
  auto payload = build_stat_ok(9);
  payload.push_back(std::byte{0x5A});
  EXPECT_FALSE(parse_stat_ok(payload).is_ok());

  auto hello = build_hello({kWireVersion, "t"});
  hello.push_back(std::byte{0});
  EXPECT_FALSE(parse_hello(hello).is_ok());
}

TEST(WireMsgTest, ListCountCannotForceAllocation) {
  // A LIST_OK claiming 2^32-1 entries in a 4-byte payload must be
  // rejected before any reserve happens.
  std::vector<std::byte> payload;
  put_u32(payload, 0xFFFFFFFFu);
  auto parsed = parse_list_ok(payload);
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), ErrorCode::kInvalidArgument);
}

TEST(WireMsgTest, StringLengthPrefixBeyondCapRejected) {
  std::vector<std::byte> payload;
  put_u16(payload, 0xFFFF);  // claims a 65535-byte tenant
  payload.resize(payload.size() + 16, std::byte{'x'});
  std::vector<std::byte> hello;
  put_u32(hello, kWireVersion);
  hello.insert(hello.end(), payload.begin(), payload.end());
  EXPECT_FALSE(parse_hello(hello).is_ok());
}

TEST(WireValidationTest, TenantAndKeyRules) {
  EXPECT_TRUE(valid_tenant("default"));
  EXPECT_TRUE(valid_tenant("team-a.prod_1"));
  EXPECT_FALSE(valid_tenant(""));
  EXPECT_FALSE(valid_tenant("a/b"));
  EXPECT_FALSE(valid_tenant("spaced name"));
  EXPECT_FALSE(valid_tenant(std::string(kMaxTenantLength + 1, 'a')));

  EXPECT_TRUE(valid_key("rank0/ckpt-00000000000000000001"));
  EXPECT_TRUE(valid_key("commit/7"));
  EXPECT_FALSE(valid_key(""));
  EXPECT_FALSE(valid_key("/abs"));
  EXPECT_FALSE(valid_key("../escape"));
  EXPECT_FALSE(valid_key("a/../b"));
  EXPECT_FALSE(valid_key("tail/.."));
  EXPECT_TRUE(valid_key("dots..inside/ok"));
  EXPECT_FALSE(valid_key(std::string("k\x01") + "ey"));
  EXPECT_FALSE(valid_key(std::string(kMaxKeyLength + 1, 'k')));
}

// Deterministic random-garbage sweep: headers and payloads of random
// bytes and random lengths through every decode path.
TEST(WireFuzzTest, RandomGarbageSweep) {
  Rng rng(20260808);
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<std::byte> buf(rng.next_index(64));
    for (auto& b : buf) {
      b = static_cast<std::byte>(rng.next_index(256));
    }
    if (buf.size() >= kFrameHeaderSize) {
      auto h = decode_frame_header(std::span<const std::byte,
                                             kFrameHeaderSize>(
          buf.data(), kFrameHeaderSize));
      if (h.is_ok()) {
        EXPECT_LE(h->len, kMaxFramePayload);
      }
    }
    std::span<const std::byte> payload(buf);
    (void)parse_hello(payload);
    (void)parse_get(payload);
    (void)parse_key_only(payload);
    (void)parse_stat_ok(payload);
    (void)parse_list_ok(payload);
    (void)parse_err_payload(payload);
  }
}

// Mutation fuzz: start from valid payloads, flip random bytes, and
// require the parsers to stay well-behaved (ok or kInvalidArgument).
TEST(WireFuzzTest, MutatedValidPayloadsSweep) {
  Rng rng(424242);
  for (int iter = 0; iter < 5000; ++iter) {
    std::vector<std::byte> payload;
    const std::uint64_t pick = rng.next_index(4);
    if (pick == 0) {
      payload = build_hello({kWireVersion, "tenant"});
    } else if (pick == 1) {
      payload = build_get({"rank0/ckpt-1", rng.next_u64(), rng.next_u64()});
    } else if (pick == 2) {
      payload = build_list_ok({"a/1", "a/2", "b/3"});
    } else {
      payload = build_key_only("rank0/ckpt-2");
    }
    const int flips = 1 + static_cast<int>(rng.next_index(4));
    for (int f = 0; f < flips && !payload.empty(); ++f) {
      payload[rng.next_index(payload.size())] =
          static_cast<std::byte>(rng.next_index(256));
    }
    for (auto st : {parse_hello(payload).status(),
                    parse_get(payload).status(),
                    parse_list_ok(payload).status(),
                    parse_key_only(payload).status()}) {
      if (!st.is_ok()) {
        EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
      }
    }
  }
}

}  // namespace
}  // namespace ickpt::net

#include "storage/backend.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

namespace ickpt::storage {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string read_all(StorageBackend& backend, const std::string& key) {
  auto reader = backend.open(key);
  if (!reader.is_ok()) return "<open failed>";
  std::string out;
  std::byte buf[64];
  for (;;) {
    auto got = (*reader)->read(buf);
    if (!got.is_ok() || *got == 0) break;
    out.append(reinterpret_cast<const char*>(buf), *got);
  }
  return out;
}

class BackendParamTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "file") {
      dir_ = ::testing::TempDir() + "/ickpt_storage_test_" +
             std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()
                 ->current_test_info()
                 ->name();
      auto backend = make_file_backend(dir_);
      ASSERT_TRUE(backend.is_ok());
      backend_ = std::move(backend.value());
    } else {
      backend_ = make_memory_backend();
    }
  }
  void TearDown() override {
    backend_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  std::unique_ptr<StorageBackend> backend_;
};

TEST_P(BackendParamTest, WriteReadRoundTrip) {
  auto w = backend_->create("obj1");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("hello ")).is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("world")).is_ok());
  EXPECT_EQ((*w)->bytes_written(), 11u);
  ASSERT_TRUE((*w)->close().is_ok());
  EXPECT_EQ(read_all(*backend_, "obj1"), "hello world");
}

TEST_P(BackendParamTest, UnclosedWriterLeavesNoObject) {
  {
    auto w = backend_->create("ghost");
    ASSERT_TRUE(w.is_ok());
    ASSERT_TRUE((*w)->write(as_bytes("partial")).is_ok());
    // dropped without close
  }
  EXPECT_FALSE(backend_->exists("ghost"));
  EXPECT_FALSE(backend_->open("ghost").is_ok());
}

TEST_P(BackendParamTest, ListAndExists) {
  for (const char* k : {"a/1", "a/2", "b/1"}) {
    auto w = backend_->create(k);
    ASSERT_TRUE(w.is_ok());
    ASSERT_TRUE((*w)->close().is_ok());
  }
  EXPECT_TRUE(backend_->exists("a/2"));
  EXPECT_FALSE(backend_->exists("a/3"));
  auto keys = backend_->list();
  ASSERT_TRUE(keys.is_ok());
  ASSERT_EQ(keys->size(), 3u);
  EXPECT_EQ((*keys)[0], "a/1");
  EXPECT_EQ((*keys)[2], "b/1");
}

TEST_P(BackendParamTest, RemoveDeletes) {
  auto w = backend_->create("victim");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
  ASSERT_TRUE(backend_->remove("victim").is_ok());
  EXPECT_FALSE(backend_->exists("victim"));
  EXPECT_EQ(backend_->remove("victim").code(), ErrorCode::kNotFound);
}

TEST_P(BackendParamTest, OverwriteReplacesContent) {
  for (const char* content : {"v1", "version-two"}) {
    auto w = backend_->create("obj");
    ASSERT_TRUE(w.is_ok());
    ASSERT_TRUE((*w)->write(as_bytes(content)).is_ok());
    ASSERT_TRUE((*w)->close().is_ok());
  }
  EXPECT_EQ(read_all(*backend_, "obj"), "version-two");
}

TEST_P(BackendParamTest, TotalBytesStoredAccumulates) {
  EXPECT_EQ(backend_->total_bytes_stored(), 0u);
  auto w = backend_->create("x");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("12345")).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
  EXPECT_EQ(backend_->total_bytes_stored(), 5u);
}

TEST_P(BackendParamTest, OpenMissingKeyFails) {
  EXPECT_EQ(backend_->open("nope").status().code(), ErrorCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendParamTest,
                         ::testing::Values("file", "memory"),
                         [](const auto& info) { return info.param; });

TEST(NullBackendTest, CountsAndDiscards) {
  auto backend = make_null_backend();
  auto w = backend->create("whatever");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("123456789")).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
  EXPECT_EQ(backend->total_bytes_stored(), 9u);
  EXPECT_FALSE(backend->open("whatever").is_ok());
  EXPECT_FALSE(backend->exists("whatever"));
}

TEST(ThrottledBackendTest, ModelsTransferTime) {
  auto inner = make_memory_backend();
  ThrottledBackend throttled(*inner, /*bytes_per_second=*/1000.0);
  auto w = throttled.create("obj");
  ASSERT_TRUE(w.is_ok());
  std::vector<std::byte> data(2500, std::byte{1});
  ASSERT_TRUE((*w)->write(data).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
  EXPECT_DOUBLE_EQ(throttled.modeled_seconds(), 2.5);
  // The data itself flows through unmodified.
  EXPECT_EQ(read_all(throttled, "obj").size(), 2500u);
}

TEST(ThrottledBackendTest, PaperCeilingsAsConstants) {
  auto inner = make_null_backend();
  // SCSI disk at 320 MB/s: 78.8 MB/s of checkpoint data consumes ~25%
  // of the device (Section 6.3).
  ThrottledBackend disk(*inner, 320.0 * 1024 * 1024);
  auto w = disk.create("ckpt");
  ASSERT_TRUE(w.is_ok());
  std::vector<std::byte> mb(1024 * 1024, std::byte{0});
  for (int i = 0; i < 79; ++i) {
    ASSERT_TRUE((*w)->write(mb).is_ok());
  }
  ASSERT_TRUE((*w)->close().is_ok());
  EXPECT_NEAR(disk.modeled_seconds(), 79.0 / 320.0, 1e-6);
}

TEST(FaultyBackendTest, FailsAfterBudget) {
  auto inner = make_memory_backend();
  FaultyBackend faulty(*inner, /*fail_after_bytes=*/10);
  auto w = faulty.create("obj");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("12345")).is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("12345")).is_ok());
  auto st = (*w)->write(as_bytes("x"));
  EXPECT_EQ(st.code(), ErrorCode::kIoError);
}

TEST(FaultyBackendTest, BudgetSharedAcrossWriters) {
  auto inner = make_memory_backend();
  FaultyBackend faulty(*inner, 6);
  auto w1 = faulty.create("a");
  auto w2 = faulty.create("b");
  ASSERT_TRUE(w1.is_ok());
  ASSERT_TRUE(w2.is_ok());
  ASSERT_TRUE((*w1)->write(as_bytes("1234")).is_ok());
  EXPECT_EQ((*w2)->write(as_bytes("1234")).code(), ErrorCode::kIoError);
}

TEST(FileBackendTest, KeysWithSubdirectories) {
  std::string dir = ::testing::TempDir() + "/ickpt_subdir_test";
  auto backend = make_file_backend(dir);
  ASSERT_TRUE(backend.is_ok());
  auto w = (*backend)->create("deep/nested/key");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("data")).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
  EXPECT_TRUE((*backend)->exists("deep/nested/key"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ickpt::storage

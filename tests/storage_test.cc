#include "storage/backend.h"

#include <gtest/gtest.h>

#include "storage/segment_backend.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "obs/metrics.h"

namespace ickpt::storage {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string read_all(StorageBackend& backend, const std::string& key) {
  auto reader = backend.open(key);
  if (!reader.is_ok()) return "<open failed>";
  std::string out;
  std::byte buf[64];
  for (;;) {
    auto got = (*reader)->read(buf);
    if (!got.is_ok() || *got == 0) break;
    out.append(reinterpret_cast<const char*>(buf), *got);
  }
  return out;
}

class BackendParamTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "memory") {
      backend_ = make_memory_backend();
      return;
    }
    dir_ = ::testing::TempDir() + "/ickpt_storage_test_" +
           std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()
               ->current_test_info()
               ->name();
    auto backend = GetParam() == "segment" ? make_segment_backend(dir_)
                                           : make_file_backend(dir_);
    ASSERT_TRUE(backend.is_ok());
    backend_ = std::move(backend.value());
  }
  void TearDown() override {
    backend_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  std::unique_ptr<StorageBackend> backend_;
};

TEST_P(BackendParamTest, WriteReadRoundTrip) {
  auto w = backend_->create("obj1");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("hello ")).is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("world")).is_ok());
  EXPECT_EQ((*w)->bytes_written(), 11u);
  ASSERT_TRUE((*w)->close().is_ok());
  EXPECT_EQ(read_all(*backend_, "obj1"), "hello world");
}

TEST_P(BackendParamTest, UnclosedWriterLeavesNoObject) {
  {
    auto w = backend_->create("ghost");
    ASSERT_TRUE(w.is_ok());
    ASSERT_TRUE((*w)->write(as_bytes("partial")).is_ok());
    // dropped without close
  }
  EXPECT_FALSE(backend_->exists("ghost"));
  EXPECT_FALSE(backend_->open("ghost").is_ok());
}

TEST_P(BackendParamTest, ListAndExists) {
  for (const char* k : {"a/1", "a/2", "b/1"}) {
    auto w = backend_->create(k);
    ASSERT_TRUE(w.is_ok());
    ASSERT_TRUE((*w)->close().is_ok());
  }
  EXPECT_TRUE(backend_->exists("a/2"));
  EXPECT_FALSE(backend_->exists("a/3"));
  auto keys = backend_->list();
  ASSERT_TRUE(keys.is_ok());
  ASSERT_EQ(keys->size(), 3u);
  EXPECT_EQ((*keys)[0], "a/1");
  EXPECT_EQ((*keys)[2], "b/1");
}

TEST_P(BackendParamTest, RemoveDeletes) {
  auto w = backend_->create("victim");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
  ASSERT_TRUE(backend_->remove("victim").is_ok());
  EXPECT_FALSE(backend_->exists("victim"));
  EXPECT_EQ(backend_->remove("victim").code(), ErrorCode::kNotFound);
}

TEST_P(BackendParamTest, OverwriteReplacesContent) {
  for (const char* content : {"v1", "version-two"}) {
    auto w = backend_->create("obj");
    ASSERT_TRUE(w.is_ok());
    ASSERT_TRUE((*w)->write(as_bytes(content)).is_ok());
    ASSERT_TRUE((*w)->close().is_ok());
  }
  EXPECT_EQ(read_all(*backend_, "obj"), "version-two");
}

TEST_P(BackendParamTest, TotalBytesStoredAccumulates) {
  EXPECT_EQ(backend_->total_bytes_stored(), 0u);
  auto w = backend_->create("x");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("12345")).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
  EXPECT_EQ(backend_->total_bytes_stored(), 5u);
}

TEST_P(BackendParamTest, OpenMissingKeyFails) {
  EXPECT_EQ(backend_->open("nope").status().code(), ErrorCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendParamTest,
                         ::testing::Values("file", "memory", "segment"),
                         [](const auto& info) { return info.param; });

TEST(NullBackendTest, CountsAndDiscards) {
  auto backend = make_null_backend();
  auto w = backend->create("whatever");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("123456789")).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
  EXPECT_EQ(backend->total_bytes_stored(), 9u);
  EXPECT_FALSE(backend->open("whatever").is_ok());
  EXPECT_FALSE(backend->exists("whatever"));
}

TEST(ThrottledBackendTest, ModelsTransferTime) {
  auto inner = make_memory_backend();
  ThrottledBackend throttled(*inner, /*bytes_per_second=*/1000.0);
  auto w = throttled.create("obj");
  ASSERT_TRUE(w.is_ok());
  std::vector<std::byte> data(2500, std::byte{1});
  ASSERT_TRUE((*w)->write(data).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
  EXPECT_DOUBLE_EQ(throttled.modeled_seconds(), 2.5);
  // The data itself flows through unmodified.
  EXPECT_EQ(read_all(throttled, "obj").size(), 2500u);
}

TEST(ThrottledBackendTest, PaperCeilingsAsConstants) {
  auto inner = make_null_backend();
  // SCSI disk at 320 MB/s: 78.8 MB/s of checkpoint data consumes ~25%
  // of the device (Section 6.3).
  ThrottledBackend disk(*inner, 320.0 * 1024 * 1024);
  auto w = disk.create("ckpt");
  ASSERT_TRUE(w.is_ok());
  std::vector<std::byte> mb(1024 * 1024, std::byte{0});
  for (int i = 0; i < 79; ++i) {
    ASSERT_TRUE((*w)->write(mb).is_ok());
  }
  ASSERT_TRUE((*w)->close().is_ok());
  EXPECT_NEAR(disk.modeled_seconds(), 79.0 / 320.0, 1e-6);
}

TEST(FaultyBackendTest, FailsAfterBudget) {
  auto inner = make_memory_backend();
  FaultyBackend faulty(*inner, /*fail_after_bytes=*/10);
  auto w = faulty.create("obj");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("12345")).is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("12345")).is_ok());
  auto st = (*w)->write(as_bytes("x"));
  EXPECT_EQ(st.code(), ErrorCode::kIoError);
}

TEST(FaultyBackendTest, BudgetSharedAcrossWriters) {
  auto inner = make_memory_backend();
  FaultyBackend faulty(*inner, 6);
  auto w1 = faulty.create("a");
  auto w2 = faulty.create("b");
  ASSERT_TRUE(w1.is_ok());
  ASSERT_TRUE(w2.is_ok());
  ASSERT_TRUE((*w1)->write(as_bytes("1234")).is_ok());
  EXPECT_EQ((*w2)->write(as_bytes("1234")).code(), ErrorCode::kIoError);
}

TEST(ReaderMapTest, MemoryReaderServesZeroCopyViews) {
  auto backend = make_memory_backend();
  auto w = backend->create("obj");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("0123456789")).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());

  auto r = backend->open("obj");
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE((*r)->supports_map());
  auto view = (*r)->map_at(2, 5);
  ASSERT_TRUE(view.is_ok());
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(view->data()),
                        view->size()),
            "23456");
  // Zero-length views are fine at any offset (no bytes touched).
  auto empty = (*r)->map_at(10, 0);
  ASSERT_TRUE(empty.is_ok());
  EXPECT_TRUE(empty->empty());
  // Nonempty past-EOF ranges are corruption: the caller planned them
  // from the object's own structure.
  EXPECT_EQ((*r)->map_at(6, 5).status().code(), ErrorCode::kCorruption);
}

TEST(ReaderMapTest, FileReaderMapMatchesRead) {
  std::string dir = ::testing::TempDir() + "/ickpt_map_test";
  auto backend = make_file_backend(dir);
  ASSERT_TRUE(backend.is_ok());
  std::string payload;
  for (int i = 0; i < 1000; ++i) payload += "block" + std::to_string(i);
  auto w = (*backend)->create("obj");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes(payload)).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());

  auto r = (*backend)->open("obj");
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE((*r)->supports_map());
  // Whole object and interior windows agree byte-for-byte with read().
  auto whole = (*r)->map_at(0, payload.size());
  ASSERT_TRUE(whole.is_ok());
  EXPECT_EQ(std::memcmp(whole->data(), payload.data(), payload.size()), 0);
  auto window = (*r)->map_at(17, 4000);
  ASSERT_TRUE(window.is_ok());
  EXPECT_EQ(std::memcmp(window->data(), payload.data() + 17, 4000), 0);
  // Views from the same reader alias one mapping and stay valid
  // together.
  EXPECT_EQ(whole->data() + 17, window->data());
  EXPECT_EQ((*r)->map_at(payload.size(), 1).status().code(),
            ErrorCode::kCorruption);
  std::filesystem::remove_all(dir);
}

TEST(DirectIoTest, FallsBackWhenFilesystemRefusesODirect) {
  // TempDir is tmpfs in most CI containers, which rejects O_DIRECT —
  // the backend must degrade to buffered writes, count the fallback,
  // and produce byte-identical objects.  On filesystems that do accept
  // O_DIRECT the same assertions hold with zero fallback increments.
  std::string dir = ::testing::TempDir() + "/ickpt_dio_test";
  auto& fallbacks = obs::registry().counter("storage.direct_io_fallback");
  const std::uint64_t before = fallbacks.value();

  FileBackendOptions options;
  options.direct_io = true;
  auto backend = make_file_backend(dir, options);
  ASSERT_TRUE(backend.is_ok());

  std::string payload(1 << 20, 'x');
  for (std::size_t i = 0; i < payload.size(); i += 7) payload[i] = 'y';
  payload += "unaligned tail";  // forces the sub-block drop-direct path
  auto w = (*backend)->create("obj");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes(payload)).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
  EXPECT_EQ(read_all(**backend, "obj"), payload);
  EXPECT_EQ((*backend)->total_bytes_stored(), payload.size());

  // The probe runs once per backend directory: a second writer must
  // not add another fallback increment.
  auto w2 = (*backend)->create("obj2");
  ASSERT_TRUE(w2.is_ok());
  ASSERT_TRUE((*w2)->write(as_bytes("tiny")).is_ok());
  ASSERT_TRUE((*w2)->close().is_ok());
  const std::uint64_t after = fallbacks.value();
  EXPECT_LE(after - before, 1u);
  std::filesystem::remove_all(dir);
}

TEST(DirectIoTest, BufferedModeNeverTouchesFallbackCounter) {
  std::string dir = ::testing::TempDir() + "/ickpt_dio_off_test";
  auto& fallbacks = obs::registry().counter("storage.direct_io_fallback");
  const std::uint64_t before = fallbacks.value();
  auto backend = make_file_backend(dir);  // direct_io defaults off
  ASSERT_TRUE(backend.is_ok());
  auto w = (*backend)->create("obj");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("plain buffered")).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
  EXPECT_EQ(fallbacks.value(), before);
  std::filesystem::remove_all(dir);
}

TEST(DirectIoTest, MidWriteEinvalRecoversIntoCountedFallback) {
  // A filesystem can accept the O_DIRECT probe/open and still reject a
  // later write with EINVAL — including after the F_SETFL drop, which
  // is advisory.  The fault hook injects exactly that: the writer must
  // recover through the counted fallback path (never an opaque
  // io_error) and produce byte-identical content.
  std::string dir = ::testing::TempDir() + "/ickpt_dio_einval_test";
  std::filesystem::remove_all(dir);
  auto& fallbacks = obs::registry().counter("storage.direct_io_fallback");
  const std::uint64_t before = fallbacks.value();

  // Force the probe result so a DirectFileWriter is built even on
  // tmpfs, where the real probe would refuse O_DIRECT.
  testing_hooks::force_direct_block_size(512);
  FileBackendOptions options;
  options.direct_io = true;
  auto backend = make_file_backend(dir, options);
  ASSERT_TRUE(backend.is_ok());

  std::string payload((1 << 20) + 13, 'e');
  for (std::size_t i = 0; i < payload.size(); i += 11) payload[i] = 'E';
  auto w = (*backend)->create("obj");
  ASSERT_TRUE(w.is_ok());
  testing_hooks::fail_writes_einval(1);
  ASSERT_TRUE((*w)->write(as_bytes(payload)).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
  testing_hooks::fail_writes_einval(0);
  testing_hooks::force_direct_block_size(0);

  EXPECT_EQ(read_all(**backend, "obj"), payload);
  EXPECT_GT(fallbacks.value(), before);
  std::filesystem::remove_all(dir);
}

TEST(DirectIoTest, RepeatedEinvalAfterReopenIsAnError) {
  // The buffered reopen happens at most once per writer; a filesystem
  // that keeps EINVALing afterwards surfaces as a real error instead
  // of looping.
  std::string dir = ::testing::TempDir() + "/ickpt_dio_einval2_test";
  std::filesystem::remove_all(dir);
  testing_hooks::force_direct_block_size(512);
  FileBackendOptions options;
  options.direct_io = true;
  auto backend = make_file_backend(dir, options);
  ASSERT_TRUE(backend.is_ok());
  auto w = (*backend)->create("obj");
  ASSERT_TRUE(w.is_ok());
  std::string payload(2 << 20, 'r');
  testing_hooks::fail_writes_einval(1000);
  auto st = (*w)->write(as_bytes(payload));
  if (st.is_ok()) st = (*w)->close();
  testing_hooks::fail_writes_einval(0);
  testing_hooks::force_direct_block_size(0);
  EXPECT_EQ(st.code(), ErrorCode::kIoError);
  EXPECT_FALSE((*backend)->exists("obj"));
  std::filesystem::remove_all(dir);
}

TEST(DurablePublishTest, CloseSyncsFileAndDirectory) {
  std::string dir = ::testing::TempDir() + "/ickpt_durable_test";
  std::filesystem::remove_all(dir);
  auto& fsyncs = obs::registry().counter("storage.fsync_calls");

  auto backend = make_file_backend(dir);  // durable_publish defaults on
  ASSERT_TRUE(backend.is_ok());
  const std::uint64_t before = fsyncs.value();
  auto w = (*backend)->create("obj");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("must survive")).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
  // fdatasync(file) before the rename + fsync(parent dir) after it.
  EXPECT_GE(fsyncs.value() - before, 2u);
  EXPECT_EQ(read_all(**backend, "obj"), "must survive");
  std::filesystem::remove_all(dir);
}

TEST(DurablePublishTest, OptOutSkipsTheSyncs) {
  std::string dir = ::testing::TempDir() + "/ickpt_nondurable_test";
  std::filesystem::remove_all(dir);
  auto& fsyncs = obs::registry().counter("storage.fsync_calls");

  FileBackendOptions options;
  options.durable_publish = false;
  auto backend = make_file_backend(dir, options);
  ASSERT_TRUE(backend.is_ok());
  const std::uint64_t before = fsyncs.value();
  auto w = (*backend)->create("obj");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("scratch data")).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
  EXPECT_EQ(fsyncs.value(), before);
  EXPECT_EQ(read_all(**backend, "obj"), "scratch data");
  std::filesystem::remove_all(dir);
}

TEST(DurablePublishTest, SegmentCommitSyncsToo) {
  std::string dir = ::testing::TempDir() + "/ickpt_segdurable_test";
  std::filesystem::remove_all(dir);
  auto& fsyncs = obs::registry().counter("storage.fsync_calls");
  auto backend = make_segment_backend(dir);  // durable defaults on
  ASSERT_TRUE(backend.is_ok());
  const std::uint64_t before = fsyncs.value();
  auto w = (*backend)->create("obj");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("segment payload")).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
  EXPECT_GE(fsyncs.value() - before, 1u);
  std::filesystem::remove_all(dir);
}

TEST(FileBackendTest, ListHidesUnpublishedTmpFiles) {
  std::string dir = ::testing::TempDir() + "/ickpt_tmpskip_test";
  std::filesystem::remove_all(dir);
  auto backend = make_file_backend(dir);
  ASSERT_TRUE(backend.is_ok());
  auto w = (*backend)->create("real");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("published")).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
  // A crash mid-publish leaves a ".tmp" sibling behind; it must stay
  // invisible to list().
  std::ofstream(dir + "/victim.tmp") << "half-written";
  auto keys = (*backend)->list();
  ASSERT_TRUE(keys.is_ok());
  EXPECT_EQ(keys->size(), 1u);
  EXPECT_EQ((*keys)[0], "real");
  std::filesystem::remove_all(dir);
}

TEST(FileBackendTest, KeysWithSubdirectories) {
  std::string dir = ::testing::TempDir() + "/ickpt_subdir_test";
  auto backend = make_file_backend(dir);
  ASSERT_TRUE(backend.is_ok());
  auto w = (*backend)->create("deep/nested/key");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("data")).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
  EXPECT_TRUE((*backend)->exists("deep/nested/key"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ickpt::storage

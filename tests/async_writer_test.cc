#include "storage/async_writer.h"

#include <gtest/gtest.h>

#include <thread>

namespace ickpt::storage {
namespace {

std::vector<std::byte> payload(std::size_t n, std::byte fill) {
  return std::vector<std::byte>(n, fill);
}

TEST(AsyncWriterTest, WritesReachBackend) {
  auto backend = make_memory_backend();
  {
    AsyncWriter writer(*backend);
    ASSERT_TRUE(writer.submit("a", payload(100, std::byte{1})).is_ok());
    ASSERT_TRUE(writer.submit("b", payload(200, std::byte{2})).is_ok());
    ASSERT_TRUE(writer.flush().is_ok());
    EXPECT_EQ(writer.objects_written(), 2u);
    EXPECT_EQ(writer.bytes_written(), 300u);
  }
  EXPECT_TRUE(backend->exists("a"));
  EXPECT_TRUE(backend->exists("b"));
  auto r = backend->open("b");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ((*r)->size(), 200u);
}

TEST(AsyncWriterTest, DestructorDrainsQueue) {
  auto backend = make_memory_backend();
  {
    AsyncWriter writer(*backend);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(writer
                      .submit("k" + std::to_string(i),
                              payload(1000, std::byte{9}))
                      .is_ok());
    }
    ASSERT_TRUE(writer.flush().is_ok());
  }
  auto keys = backend->list();
  ASSERT_TRUE(keys.is_ok());
  EXPECT_EQ(keys->size(), 20u);
}

TEST(AsyncWriterTest, BackpressureBlocksThenDrains) {
  auto backend = make_memory_backend();
  AsyncWriter::Options opts;
  opts.max_queued_bytes = 1000;
  AsyncWriter writer(*backend, opts);
  // Many objects larger than the queue in aggregate: submit must
  // block-and-drain, not fail.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(writer
                    .submit("k" + std::to_string(i),
                            payload(400, std::byte{3}))
                    .is_ok());
  }
  ASSERT_TRUE(writer.flush().is_ok());
  EXPECT_EQ(writer.objects_written(), 50u);
  EXPECT_EQ(writer.queued_bytes(), 0u);
}

TEST(AsyncWriterTest, OversizedObjectStillAdmitted) {
  auto backend = make_memory_backend();
  AsyncWriter::Options opts;
  opts.max_queued_bytes = 10;
  AsyncWriter writer(*backend, opts);
  ASSERT_TRUE(writer.submit("big", payload(10000, std::byte{1})).is_ok());
  ASSERT_TRUE(writer.flush().is_ok());
  EXPECT_EQ(writer.objects_written(), 1u);
}

TEST(AsyncWriterTest, BackendErrorSurfacesOnFlush) {
  auto inner = make_memory_backend();
  FaultyBackend faulty(*inner, /*fail_after_bytes=*/50);
  AsyncWriter writer(faulty);
  ASSERT_TRUE(writer.submit("a", payload(40, std::byte{1})).is_ok());
  ASSERT_TRUE(writer.submit("b", payload(40, std::byte{1})).is_ok());
  Status st = writer.flush();
  EXPECT_EQ(st.code(), ErrorCode::kIoError);
  // Later submissions fail fast.
  EXPECT_FALSE(writer.submit("c", payload(1, std::byte{1})).is_ok());
}

TEST(AsyncWriterTest, ConcurrentProducers) {
  auto backend = make_memory_backend();
  AsyncWriter writer(*backend);
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&writer, t] {
      for (int i = 0; i < 25; ++i) {
        ASSERT_TRUE(writer
                        .submit("t" + std::to_string(t) + "_" +
                                    std::to_string(i),
                                payload(64, std::byte{7}))
                        .is_ok());
      }
    });
  }
  for (auto& p : producers) p.join();
  ASSERT_TRUE(writer.flush().is_ok());
  EXPECT_EQ(writer.objects_written(), 100u);
}

}  // namespace
}  // namespace ickpt::storage

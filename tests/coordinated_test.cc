// Coordinated multi-rank checkpoint/restore over minimpi, including
// failure injection on one rank and full crash/recovery round trips.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "checkpoint/coordinated.h"
#include "checkpoint/restore.h"
#include "common/rng.h"
#include "memtrack/explicit_engine.h"
#include "minimpi/comm.h"
#include "region/address_space.h"
#include "storage/backend.h"

namespace ickpt::checkpoint {
namespace {

using memtrack::ExplicitEngine;
using region::AddressSpace;
using region::AreaKind;

void scribble(std::span<std::byte> mem, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i + 8 <= mem.size(); i += 8) {
    std::uint64_t v = rng.next_u64();
    std::memcpy(mem.data() + i, &v, 8);
  }
}

TEST(CoordinatedTest, AllRanksCommitTogether) {
  constexpr int kRanks = 4;
  auto storage = storage::make_memory_backend();

  mpi::Runtime::run(kRanks, [&](mpi::Comm& comm) {
    ExplicitEngine engine;
    AddressSpace space(engine, "r" + std::to_string(comm.rank()));
    auto block = space.map(4 * page_size(), AreaKind::kHeap, "state");
    ASSERT_TRUE(block.is_ok());
    scribble(block->mem, static_cast<std::uint64_t>(comm.rank()) + 1);

    CheckpointerOptions opts;
    opts.rank = static_cast<std::uint32_t>(comm.rank());
    auto local = Checkpointer::create(space, storage.get(), opts).value();
    ASSERT_TRUE(engine.arm().is_ok());

    // Two coordinated checkpoints with writes in between.
    for (int round = 0; round < 2; ++round) {
      scribble(block->mem.subspan(0, page_size()),
               static_cast<std::uint64_t>(100 + round));
      engine.note_write(block->mem.data(), page_size());
      auto snap = engine.collect(true);
      ASSERT_TRUE(snap.is_ok());
      auto seq = CoordinatedCheckpointer::checkpoint(
          comm, *local, *snap, static_cast<double>(round), *storage);
      ASSERT_TRUE(seq.is_ok()) << seq.status().to_string();
    }
  });

  auto committed = CoordinatedCheckpointer::last_committed(*storage);
  ASSERT_TRUE(committed.is_ok());
  EXPECT_EQ(*committed, 1u);  // sequences 0 (full) and 1 (incremental)

  // Every rank's chain restores to that sequence.
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    auto state = restore_chain(*storage, r, *committed);
    ASSERT_TRUE(state.is_ok()) << "rank " << r;
    EXPECT_EQ(state->blocks.size(), 1u);
  }
}

TEST(CoordinatedTest, LastCommittedWithoutMarkers) {
  auto storage = storage::make_memory_backend();
  EXPECT_EQ(CoordinatedCheckpointer::last_committed(*storage).status().code(),
            ErrorCode::kNotFound);
}

TEST(CoordinatedTest, FailedRankAbortsCommit) {
  constexpr int kRanks = 3;
  auto storage = storage::make_memory_backend();

  mpi::Runtime::run(kRanks, [&](mpi::Comm& comm) {
    ExplicitEngine engine;
    AddressSpace space(engine, "r" + std::to_string(comm.rank()));
    auto block = space.map(16 * page_size(), AreaKind::kHeap, "state");
    ASSERT_TRUE(block.is_ok());

    CheckpointerOptions opts;
    opts.rank = static_cast<std::uint32_t>(comm.rank());

    // Rank 1's storage dies almost immediately.
    std::unique_ptr<storage::FaultyBackend> faulty;
    storage::StorageBackend* backend = storage.get();
    if (comm.rank() == 1) {
      faulty = std::make_unique<storage::FaultyBackend>(*storage, 64);
      backend = faulty.get();
    }
    auto local = Checkpointer::create(space, backend, opts).value();
    ASSERT_TRUE(engine.arm().is_ok());
    auto snap = engine.collect(true);
    ASSERT_TRUE(snap.is_ok());

    auto seq = CoordinatedCheckpointer::checkpoint(comm, *local, *snap, 0.0,
                                                   *storage);
    EXPECT_FALSE(seq.is_ok());  // every rank observes the failure
  });

  // No commit marker was written.
  EXPECT_FALSE(CoordinatedCheckpointer::last_committed(*storage).is_ok());
}

TEST(CoordinatedTest, CrashRecoveryRoundTrip) {
  // Simulate: run, checkpoint, "crash", restore into fresh spaces, and
  // verify the recovered state matches what was checkpointed.
  constexpr int kRanks = 2;
  auto storage = storage::make_memory_backend();
  std::vector<std::vector<std::byte>> truth(kRanks);

  mpi::Runtime::run(kRanks, [&](mpi::Comm& comm) {
    ExplicitEngine engine;
    AddressSpace space(engine, "r" + std::to_string(comm.rank()));
    auto block = space.map(8 * page_size(), AreaKind::kHeap, "grid");
    ASSERT_TRUE(block.is_ok());
    scribble(block->mem, static_cast<std::uint64_t>(comm.rank()) * 17 + 3);

    CheckpointerOptions opts;
    opts.rank = static_cast<std::uint32_t>(comm.rank());
    auto local = Checkpointer::create(space, storage.get(), opts).value();
    ASSERT_TRUE(engine.arm().is_ok());
    auto snap = engine.collect(true);
    ASSERT_TRUE(snap.is_ok());
    ASSERT_TRUE(CoordinatedCheckpointer::checkpoint(comm, *local, *snap, 5.0,
                                                    *storage)
                    .is_ok());

    // Record the ground truth at checkpoint time...
    truth[static_cast<std::size_t>(comm.rank())]
        .assign(block->mem.begin(), block->mem.end());
    // ...then keep computing past the checkpoint (this state is lost).
    scribble(block->mem, 999);
  });

  // "Recovery": rebuild each rank from storage.
  auto committed = CoordinatedCheckpointer::last_committed(*storage);
  ASSERT_TRUE(committed.is_ok());
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    auto state = restore_chain(*storage, r, *committed);
    ASSERT_TRUE(state.is_ok());
    EXPECT_DOUBLE_EQ(state->virtual_time, 5.0);

    ExplicitEngine engine;
    AddressSpace space(engine, "recovered");
    auto mapping = materialize(*state, space);
    ASSERT_TRUE(mapping.is_ok());
    ASSERT_EQ(mapping->size(), 1u);
    auto span = space.block_span(mapping->begin()->second);
    ASSERT_TRUE(span.is_ok());
    EXPECT_EQ(std::memcmp(span->data(), truth[r].data(), truth[r].size()),
              0)
        << "rank " << r << " state diverged";
  }
}

}  // namespace
}  // namespace ickpt::checkpoint

// Behavioural tests specific to the userfaultfd write-protect engine.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/arena.h"
#include "memtrack/uffd_engine.h"

namespace ickpt::memtrack {
namespace {

class UffdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!uffd_supported()) {
      GTEST_SKIP() << "userfaultfd write-protect unsupported";
    }
    auto engine = UffdEngine::create();
    ASSERT_TRUE(engine.is_ok()) << engine.status().to_string();
    engine_ = std::move(engine.value());
  }

  std::unique_ptr<UffdEngine> engine_;
};

TEST_F(UffdTest, TracksSingleWrite) {
  PageArena arena(8 * page_size());
  arena.prefault();
  auto id = engine_->attach(arena.span(), "u");
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(engine_->arm().is_ok());
  arena.data()[3 * page_size()] = std::byte{1};
  auto snap = engine_->collect(false);
  ASSERT_TRUE(snap.is_ok());
  ASSERT_EQ(snap->regions.size(), 1u);
  ASSERT_EQ(snap->regions[0].dirty_pages.size(), 1u);
  EXPECT_EQ(snap->regions[0].dirty_pages[0], 3u);
  EXPECT_EQ(engine_->counters().faults_handled, 1u);
}

TEST_F(UffdTest, RepeatedWritesFaultOnce) {
  PageArena arena(2 * page_size());
  arena.prefault();
  ASSERT_TRUE(engine_->attach(arena.span(), "u").is_ok());
  ASSERT_TRUE(engine_->arm().is_ok());
  for (int i = 0; i < 64; ++i) arena.data()[i] = std::byte{2};
  auto snap = engine_->collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(snap->dirty_pages(), 1u);
  EXPECT_EQ(engine_->counters().faults_handled, 1u);
}

TEST_F(UffdTest, RearmCyclesCleanly) {
  PageArena arena(4 * page_size());
  arena.prefault();
  ASSERT_TRUE(engine_->attach(arena.span(), "u").is_ok());
  ASSERT_TRUE(engine_->arm().is_ok());
  for (int interval = 0; interval < 5; ++interval) {
    std::size_t page = static_cast<std::size_t>(interval) % 4;
    arena.data()[page * page_size()] = std::byte{1};
    auto snap = engine_->collect(/*rearm=*/true);
    ASSERT_TRUE(snap.is_ok());
    ASSERT_EQ(snap->dirty_pages(), 1u) << "interval " << interval;
    EXPECT_EQ(snap->regions[0].dirty_pages[0], page);
  }
}

TEST_F(UffdTest, MultiThreadedWriters) {
  constexpr std::size_t kPages = 32;
  PageArena arena(kPages * page_size());
  arena.prefault();
  ASSERT_TRUE(engine_->attach(arena.span(), "mt").is_ok());
  ASSERT_TRUE(engine_->arm().is_ok());
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&arena, t] {
      for (std::size_t p = static_cast<std::size_t>(t); p < kPages; p += 4) {
        arena.data()[p * page_size()] = std::byte{1};
      }
    });
  }
  for (auto& w : writers) w.join();
  auto snap = engine_->collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(snap->dirty_pages(), kPages);
}

TEST_F(UffdTest, DetachReleasesRegion) {
  PageArena arena(2 * page_size());
  arena.prefault();
  auto id = engine_->attach(arena.span(), "d");
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(engine_->arm().is_ok());
  ASSERT_TRUE(engine_->detach(*id).is_ok());
  arena.data()[0] = std::byte{1};  // must not hang or fault-track
  EXPECT_EQ(engine_->region_count(), 0u);
  EXPECT_EQ(engine_->detach(*id).code(), ErrorCode::kNotFound);
}

TEST_F(UffdTest, UnalignedAttachRejected) {
  PageArena arena(2 * page_size());
  EXPECT_FALSE(engine_->attach(arena.span().subspan(8), "bad").is_ok());
}

TEST_F(UffdTest, WritesWhileUnarmedAreFree) {
  PageArena arena(2 * page_size());
  arena.prefault();
  ASSERT_TRUE(engine_->attach(arena.span(), "u").is_ok());
  arena.data()[0] = std::byte{1};  // not armed: no fault
  EXPECT_EQ(engine_->counters().faults_handled, 0u);
  ASSERT_TRUE(engine_->arm().is_ok());
  auto snap = engine_->collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(snap->dirty_pages(), 0u);
}

}  // namespace
}  // namespace ickpt::memtrack

// Span tracing: ring claim/publish semantics under wraparound and
// concurrent emitters, name interning, begin/end rollup, the Chrome
// trace-event export, and the async-signal-safe emit path driven by a
// real SIGSEGV from the mprotect engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/page.h"
#include "memtrack/mprotect_engine.h"
#include "obs/trace.h"
#include "tests/json_test_util.h"

namespace ickpt::obs {
namespace {

using testutil::JsonParser;
using testutil::JsonValue;

TEST(TraceNameTest, InterningIsStableAndDecodes) {
  const std::uint16_t a = trace_name("test.trace.alpha", TraceCat::kCkpt);
  const std::uint16_t b = trace_name("test.trace.beta", TraceCat::kRestore);
  ASSERT_NE(a, 0);
  ASSERT_NE(b, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(trace_name("test.trace.alpha", TraceCat::kCkpt), a);
  EXPECT_EQ(trace_name_string(a), "test.trace.alpha");
  EXPECT_EQ(trace_name_cat(a), TraceCat::kCkpt);
  EXPECT_EQ(trace_name_string(b), "test.trace.beta");
  EXPECT_EQ(trace_name_cat(b), TraceCat::kRestore);
  EXPECT_EQ(trace_name_string(0), "?");
  EXPECT_EQ(trace_name_cat(0), TraceCat::kOther);
}

TEST(TraceRingTest, HoldsEventsInEmitOrder) {
  const std::uint16_t id = trace_name("test.trace.order");
  TraceRing ring(64);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.emit(id, TracePhase::kInstant, i, i * 2);
  }
  EXPECT_EQ(ring.emitted(), 10u);
  EXPECT_EQ(ring.dropped(), 0u);
  auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (std::uint64_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(events[i].name_id, id);
    EXPECT_EQ(events[i].arg0, i);
    EXPECT_EQ(events[i].arg1, i * 2);
    EXPECT_EQ(events[i].phase, TracePhase::kInstant);
    if (i > 0) EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

TEST(TraceRingTest, WraparoundKeepsTheMostRecentEvents) {
  const std::uint16_t id = trace_name("test.trace.wrap");
  TraceRing ring(8);  // minimum capacity
  ASSERT_EQ(ring.capacity(), 8u);
  const std::uint64_t total = 8 * 5 + 3;  // several revolutions
  for (std::uint64_t i = 0; i < total; ++i) {
    ring.emit(id, TracePhase::kInstant, i);
  }
  EXPECT_EQ(ring.emitted(), total);
  EXPECT_EQ(ring.dropped(), total - 8);
  auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Exactly the newest 8, oldest first.
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(events[i].seq, total - 8 + i);
    EXPECT_EQ(events[i].arg0, total - 8 + i);
  }
}

TEST(TraceRingTest, ReadRecentTruncatesToMax) {
  const std::uint16_t id = trace_name("test.trace.recent");
  TraceRing ring(32);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.emit(id, TracePhase::kInstant, i);
  }
  TraceEvent out[5];
  const std::size_t n = ring.read_recent(out, 5);
  ASSERT_EQ(n, 5u);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i].arg0, 15 + i);  // the 5 newest
  }
  EXPECT_EQ(ring.read_recent(nullptr, 5), 0u);
  EXPECT_EQ(ring.read_recent(out, 0), 0u);
}

TEST(TraceRingTest, ResetDropsEverything) {
  const std::uint16_t id = trace_name("test.trace.reset");
  TraceRing ring(16);
  for (int i = 0; i < 40; ++i) ring.emit(id, TracePhase::kInstant);
  ring.reset();
  EXPECT_EQ(ring.emitted(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceRingTest, ConcurrentEmittersLoseNothingWhenSized) {
  // 4 threads x 4096 events into a 32768-slot ring: nothing wraps, so
  // every event must come out exactly once with its payload intact.
  // Run under TSan this doubles as the emit/read race check.
  const std::uint16_t id = trace_name("test.trace.mt");
  TraceRing ring(1u << 15);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 4096;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, id, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        ring.emit(id, TracePhase::kInstant,
                  static_cast<std::uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ring.emitted(), kThreads * kPerThread);
  auto events = ring.snapshot();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  std::set<std::uint64_t> args;
  std::set<std::uint32_t> tids;
  for (const auto& e : events) {
    args.insert(e.arg0);
    tids.insert(e.tid);
  }
  EXPECT_EQ(args.size(), kThreads * kPerThread);  // no duplicates, no loss
  EXPECT_EQ(tids.size(), kThreads);
}

TEST(TraceRingTest, ConcurrentReadersSkipTornSlots) {
  // Hammer a tiny ring from two writers while a reader snapshots: the
  // reader must only ever observe fully-published events (payload
  // matches the claimed name id), never garbage.
  const std::uint16_t id = trace_name("test.trace.torn");
  TraceRing ring(8);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ring.emit(id, TracePhase::kInstant, i, ~i);
        ++i;
      }
    });
  }
  for (int r = 0; r < 2000; ++r) {
    TraceEvent out[8];
    const std::size_t n = ring.read_recent(out, 8);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i].name_id, id);
      EXPECT_EQ(out[i].arg1, ~out[i].arg0);
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

TEST(TraceSpanTest, RollupPairsBeginEnd) {
  const std::uint16_t outer = trace_name("test.span.outer");
  const std::uint16_t inner = trace_name("test.span.inner");
  std::vector<TraceEvent> events;
  auto ev = [](std::uint16_t id, TracePhase ph, std::uint64_t ts,
               std::uint32_t tid) {
    TraceEvent e;
    e.name_id = id;
    e.phase = ph;
    e.ts_ns = ts;
    e.tid = tid;
    return e;
  };
  // Nested same-thread spans plus an interleaved span on thread 2 and
  // an unmatched begin that must be ignored.
  events.push_back(ev(outer, TracePhase::kBegin, 100, 1));
  events.push_back(ev(inner, TracePhase::kBegin, 110, 1));
  events.push_back(ev(outer, TracePhase::kBegin, 115, 2));
  events.push_back(ev(inner, TracePhase::kEnd, 140, 1));
  events.push_back(ev(outer, TracePhase::kEnd, 150, 1));
  events.push_back(ev(outer, TracePhase::kEnd, 165, 2));
  events.push_back(ev(inner, TracePhase::kBegin, 170, 1));  // unmatched
  auto rollups = rollup_spans(events);
  ASSERT_EQ(rollups.size(), 2u);
  // Sorted by name: inner before outer.
  EXPECT_EQ(rollups[0].name, "test.span.inner");
  EXPECT_EQ(rollups[0].count, 1u);
  EXPECT_EQ(rollups[0].total_ns, 30u);
  EXPECT_EQ(rollups[1].name, "test.span.outer");
  EXPECT_EQ(rollups[1].count, 2u);
  EXPECT_EQ(rollups[1].total_ns, 50u + 50u);
}

TEST(TraceExportTest, ChromeJsonParsesAndCarriesFields) {
  const std::uint16_t id = trace_name("test.export.span", TraceCat::kBench);
  std::vector<TraceEvent> events;
  TraceEvent b;
  b.name_id = id;
  b.phase = TracePhase::kBegin;
  b.ts_ns = 1234567;  // 1234.567 us
  b.tid = 42;
  b.arg0 = 7;
  b.arg1 = 9;
  TraceEvent e = b;
  e.phase = TracePhase::kEnd;
  e.ts_ns = 2234567;
  TraceEvent inst = b;
  inst.phase = TracePhase::kInstant;
  inst.ts_ns = 3000000;
  events = {b, e, inst};

  const std::string json = chrome_trace_json(events);
  JsonParser parser(json);
  JsonValue root = parser.parse();
  ASSERT_FALSE(parser.failed()) << json;
  auto& arr = root.object["traceEvents"];
  ASSERT_EQ(arr.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(arr.array.size(), 3u);
  EXPECT_EQ(arr.array[0].object["name"].str, "test.export.span");
  EXPECT_EQ(arr.array[0].object["cat"].str, "bench");
  EXPECT_EQ(arr.array[0].object["ph"].str, "B");
  EXPECT_DOUBLE_EQ(arr.array[0].object["ts"].number, 1234.567);
  EXPECT_DOUBLE_EQ(arr.array[0].object["tid"].number, 42.0);
  EXPECT_DOUBLE_EQ(arr.array[0].object["args"].object["arg0"].number, 7.0);
  EXPECT_EQ(arr.array[1].object["ph"].str, "E");
  EXPECT_EQ(arr.array[2].object["ph"].str, "i");
  EXPECT_EQ(arr.array[2].object["s"].str, "t");
}

// --------------------------------------------- process ring + fault path

TEST(TraceProcessTest, EmitRequiresTracingOn) {
  const std::uint16_t id = trace_name("test.process.gate");
  start_tracing();
  TraceRing* ring = trace_ring();
  ASSERT_NE(ring, nullptr);
  const std::uint64_t before = ring->emitted();
  trace_instant(id, 1);
  EXPECT_EQ(ring->emitted(), before + 1);
  stop_tracing();
  trace_instant(id, 2);
  EXPECT_EQ(ring->emitted(), before + 1);
  { TraceSpan dead(id); }  // constructed while off: both edges elided
  EXPECT_EQ(ring->emitted(), before + 1);
  start_tracing();
  {
    TraceSpan span(id, 3);
    span.end(4);
    span.end(5);  // idempotent: no second end event
  }
  EXPECT_EQ(ring->emitted(), before + 3);
  stop_tracing();
}

TEST(TraceProcessTest, FaultHandlerEmitsFromSignalContext) {
  // A real SIGSEGV through the mprotect engine must land a
  // "memtrack.fault" instant in the process ring: the emit path runs
  // entirely inside the signal handler.
  const std::size_t psize = page_size();
  PageArena arena(8 * psize);
  arena.prefault();
  memtrack::MProtectEngine engine;
  ASSERT_TRUE(engine.attach(arena.span(), "data").is_ok());
  ASSERT_TRUE(engine.arm().is_ok());

  start_tracing();
  TraceRing* ring = trace_ring();
  ASSERT_NE(ring, nullptr);
  const std::uint64_t before = ring->emitted();
  arena.data()[0] = std::byte{1};          // faults, unprotects, emits
  arena.data()[psize * 3] = std::byte{1};  // a second page
  stop_tracing();

  EXPECT_GE(ring->emitted(), before + 2);
  auto events = ring->snapshot();
  int fault_events = 0;
  for (const auto& e : events) {
    if (e.seq < before) continue;
    if (trace_name_string(e.name_id) == "memtrack.fault") {
      ++fault_events;
      EXPECT_EQ(e.phase, TracePhase::kInstant);
      EXPECT_EQ(trace_name_cat(e.name_id), TraceCat::kMemtrack);
      EXPECT_GE(e.arg1, 1u);  // pages unprotected by this fault
    }
  }
  EXPECT_GE(fault_events, 2);
  ASSERT_TRUE(engine.collect(false).is_ok());
}

}  // namespace
}  // namespace ickpt::obs

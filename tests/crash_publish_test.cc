// Kill-during-publish crash tests.
//
// The durability contract (DESIGN.md §12): once close() returns OK
// with durable publish on, the object survives a crash; an object
// whose publish was interrupted is either completely present or
// completely absent after reopen — never torn.  Each test forks a
// child that writes objects forever and SIGKILLs it at a random
// moment, then reopens the store in the parent and checks every
// visible object is bit-exact.
//
// SIGKILL cannot be blocked or handled, so whatever the child was
// inside — write(), fdatasync(), rename() — stops dead, which is as
// close to a crash as a test can get without pulling power.  (True
// power-loss testing needs dm-flakey or a VM; what this test pins
// down is the atomicity of publish across process death.)
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "checkpoint/inspect.h"
#include "common/crc32.h"
#include "storage/backend.h"
#include "storage/segment_backend.h"

namespace ickpt::storage {
namespace {

namespace fs = std::filesystem;

/// Deterministic payload for object `i`: size and bytes derived from
/// the index, so the parent can verify content without shared state.
std::vector<std::byte> payload_for(int i) {
  std::vector<std::byte> data(1000 + 37 * static_cast<std::size_t>(i % 50));
  for (std::size_t j = 0; j < data.size(); ++j) {
    data[j] = static_cast<std::byte>((i * 131 + static_cast<int>(j)) & 0xff);
  }
  return data;
}

/// Child body: open the store and publish objects obj-0, obj-1, ...
/// until SIGKILL arrives.  _exit on any error (the parent treats a
/// non-signal exit as a test failure).
[[noreturn]] void writer_child(const std::string& dir, bool segment) {
  auto backend = segment ? make_segment_backend(dir)
                         : make_file_backend(dir);
  if (!backend.is_ok()) _exit(3);
  for (int i = 0;; ++i) {
    auto writer = (*backend)->create("obj-" + std::to_string(i));
    if (!writer.is_ok()) _exit(4);
    auto data = payload_for(i);
    if (!(*writer)->write(data).is_ok()) _exit(5);
    if (!(*writer)->close().is_ok()) _exit(6);
  }
}

/// Fork a writer, let it publish for `grace_us`, SIGKILL it, reopen
/// and verify: every visible object byte-exact, the visible prefix
/// contiguous (no committed object missing below the highest one).
void run_crash_round(const std::string& dir, bool segment,
                     useconds_t grace_us) {
  fs::remove_all(dir);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) writer_child(dir, segment);

  ::usleep(grace_us);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus))
      << "child exited with " << WEXITSTATUS(wstatus)
      << " instead of dying on SIGKILL";

  auto backend = segment ? make_segment_backend(dir)
                         : make_file_backend(dir);
  ASSERT_TRUE(backend.is_ok()) << backend.status().message();
  auto keys = (*backend)->list();
  ASSERT_TRUE(keys.is_ok());

  int highest = -1;
  for (const auto& key : *keys) {
    ASSERT_EQ(key.rfind("obj-", 0), 0u) << "unexpected key " << key;
    const int i = std::stoi(key.substr(4));
    highest = std::max(highest, i);

    // Complete object or nothing: the bytes must match exactly.
    auto reader = (*backend)->open(key);
    ASSERT_TRUE(reader.is_ok());
    const auto expected = payload_for(i);
    ASSERT_EQ((*reader)->size(), expected.size())
        << key << " is torn (size mismatch)";
    std::vector<std::byte> got(expected.size());
    std::size_t off = 0;
    while (off < got.size()) {
      auto n = (*reader)->read({got.data() + off, got.size() - off});
      ASSERT_TRUE(n.is_ok());
      ASSERT_GT(*n, 0u) << key << " is torn (short object)";
      off += *n;
    }
    ASSERT_EQ(std::memcmp(got.data(), expected.data(), got.size()), 0)
        << key << " is torn (content mismatch)";
  }

  // Durable publish means close()-returned == crash-survivable, so
  // the committed prefix has no holes: if obj-N is visible, the child
  // had finished close(obj-K) for every K < N.
  for (int i = 0; i <= highest; ++i) {
    EXPECT_TRUE((*backend)->exists("obj-" + std::to_string(i)))
        << "obj-" << i << " lost below surviving obj-" << highest;
  }
}

class CrashPublishTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::string dir() const {
    return ::testing::TempDir() + "/ickpt_crash_" + GetParam() + "_" +
           std::to_string(::getpid());
  }
};

TEST_P(CrashPublishTest, KillDuringPublishNeverTearsObjects) {
  const bool segment = GetParam() == "segment";
  // Several rounds at different kill points so the SIGKILL lands in
  // different phases of the publish sequence across runs.
  for (useconds_t grace : {2000u, 7000u, 15000u, 40000u}) {
    run_crash_round(dir(), segment, grace);
    if (HasFatalFailure()) return;
  }
  fs::remove_all(dir());
}

TEST_P(CrashPublishTest, FsckHealthyAfterKill) {
  // fsck's store walk must also see nothing wrong — checkpoint-level
  // health on top of object-level integrity.  The keys here are not
  // checkpoint-format keys, so inspect_store reports them as unknown
  // objects at worst; what must hold is that it does not crash and
  // the walk completes.
  const bool segment = GetParam() == "segment";
  const std::string d = dir();
  run_crash_round(d, segment, 10000);
  if (HasFatalFailure()) return;
  auto backend = segment ? make_segment_backend(d) : make_file_backend(d);
  ASSERT_TRUE(backend.is_ok());
  auto report = checkpoint::inspect_store(**backend);
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  fs::remove_all(d);
}

INSTANTIATE_TEST_SUITE_P(Backends, CrashPublishTest,
                         ::testing::Values("file", "segment"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace ickpt::storage

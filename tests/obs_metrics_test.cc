// Observability registry: counter/gauge/histogram semantics, handle
// identity, enabled-gating, thread safety of the record path, and a
// JSON round-trip through a minimal in-test parser.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace ickpt::obs {
namespace {

// The registry is process-global and never unregisters, so every test
// uses its own metric names and treats pre-existing metrics as
// background noise.

TEST(ObsCounterTest, IncrementAndReset) {
  auto& c = registry().counter("test.counter.basic");
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounterTest, GetOrCreateReturnsSameObject) {
  auto& a = registry().counter("test.counter.identity");
  auto& b = registry().counter("test.counter.identity");
  EXPECT_EQ(&a, &b);
  auto& other = registry().counter("test.counter.identity2");
  EXPECT_NE(&a, &other);
}

TEST(ObsGaugeTest, UpdateTracksHighWater) {
  auto& g = registry().gauge("test.gauge.hw");
  g.reset();
  g.update(5);
  g.update(17);
  g.update(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max(), 17);
}

TEST(ObsHistogramTest, BucketIndexByBitWidth) {
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(1023), 10);
  EXPECT_EQ(Histogram::bucket_index(1024), 11);
  EXPECT_EQ(Histogram::bucket_index(~0ull), Histogram::kBuckets - 1);
}

TEST(ObsHistogramTest, StatsAndQuantiles) {
  auto& h = registry().histogram("test.hist.stats", Unit::kNone);
  h.reset();
  for (int i = 0; i < 100; ++i) h.record(10);   // bucket 4: [8,16)
  for (int i = 0; i < 10; ++i) h.record(1000);  // bucket 10: [512,1024)
  EXPECT_EQ(h.count(), 110u);
  EXPECT_EQ(h.sum(), 100u * 10 + 10u * 1000);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.mean(), (100.0 * 10 + 10.0 * 1000) / 110.0, 1e-9);
  // p50 lands in the low bucket, p99 in the high one; the estimate is
  // the bucket's geometric midpoint so assert the bucket, not the
  // exact value.
  EXPECT_GE(h.approx_quantile(0.5), 8.0);
  EXPECT_LT(h.approx_quantile(0.5), 16.0);
  EXPECT_GE(h.approx_quantile(0.99), 512.0);
  EXPECT_LT(h.approx_quantile(0.99), 1024.0);
}

TEST(ObsHistogramTest, EmptyHistogramIsZeroed) {
  auto& h = registry().histogram("test.hist.empty", Unit::kNone);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.approx_quantile(0.5), 0.0);
}

TEST(ObsTimerTest, ScopedTimerRecordsWhenEnabled) {
  auto& h = registry().histogram("test.timer.on", Unit::kNanoseconds);
  h.reset();
  set_enabled(true);
  { ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(ObsTimerTest, ScopedTimerSkipsWhenDisabled) {
  auto& h = registry().histogram("test.timer.off", Unit::kNanoseconds);
  h.reset();
  set_enabled(false);
  { ScopedTimer t(h); }
  set_enabled(true);
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsTimerTest, CancelAndIdempotentStop) {
  auto& h = registry().histogram("test.timer.cancel", Unit::kNanoseconds);
  h.reset();
  {
    ScopedTimer t(h);
    t.cancel();
  }
  EXPECT_EQ(h.count(), 0u);
  {
    ScopedTimer t(h);
    t.stop();
    t.stop();  // second stop must not double-record
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(ObsRegistryTest, ThreadedIncrementsAreExact) {
  auto& c = registry().counter("test.counter.threads");
  auto& h = registry().histogram("test.hist.threads", Unit::kNone);
  c.reset();
  h.reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(7);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ------------------------------------------------------ JSON round-trip

/// Minimal JSON value — just enough to check what Snapshot emits.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    EXPECT_EQ(pos_, s_.size()) << "trailing garbage";
    return v;
  }

  bool failed() const { return failed_; }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) {
      failed_ = true;
      return false;
    }
    ++pos_;
    return true;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': case 'f': return boolean();
      default: return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    consume('{');
    if (peek() == '}') {
      consume('}');
      return v;
    }
    while (true) {
      JsonValue key = string_value();
      consume(':');
      v.object[key.str] = value();
      if (peek() != ',') break;
      consume(',');
    }
    consume('}');
    return v;
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    consume('[');
    if (peek() == ']') {
      consume(']');
      return v;
    }
    while (true) {
      v.array.push_back(value());
      if (peek() != ',') break;
      consume(',');
    }
    consume(']');
    return v;
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    if (!consume('"')) return v;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) {
        ++pos_;
        switch (s_[pos_]) {
          case 'n': v.str += '\n'; break;
          case 't': v.str += '\t'; break;
          default: v.str += s_[pos_]; break;
        }
      } else {
        v.str += s_[pos_];
      }
      ++pos_;
    }
    if (pos_ < s_.size()) ++pos_;  // closing quote
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      failed_ = true;
    }
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) {
      failed_ = true;
      return v;
    }
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

TEST(ObsJsonTest, SnapshotRoundTrips) {
  registry().counter("test.json.counter").reset();
  registry().counter("test.json.counter").inc(1234);
  auto& g = registry().gauge("test.json.gauge");
  g.reset();
  g.update(77);
  g.update(50);
  auto& h = registry().histogram("test.json.hist", Unit::kNanoseconds);
  h.reset();
  for (int i = 0; i < 5; ++i) h.record(100);

  auto snap = registry().snapshot();
  const std::string json = snap.to_json();

  JsonParser parser(json);
  JsonValue root = parser.parse();
  ASSERT_FALSE(parser.failed()) << json;
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);

  ASSERT_TRUE(root.object.count("enabled"));
  EXPECT_EQ(root.object["enabled"].kind, JsonValue::Kind::kBool);

  auto& counters = root.object["counters"];
  ASSERT_EQ(counters.kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(counters.object.count("test.json.counter")) << json;
  EXPECT_DOUBLE_EQ(counters.object["test.json.counter"].number, 1234.0);

  auto& gauges = root.object["gauges"];
  ASSERT_EQ(gauges.kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(gauges.object.count("test.json.gauge"));
  EXPECT_DOUBLE_EQ(gauges.object["test.json.gauge"].object["value"].number,
                   50.0);
  EXPECT_DOUBLE_EQ(gauges.object["test.json.gauge"].object["max"].number,
                   77.0);

  auto& hists = root.object["histograms"];
  ASSERT_EQ(hists.kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(hists.object.count("test.json.hist"));
  auto& hv = hists.object["test.json.hist"];
  EXPECT_EQ(hv.object["unit"].str, "ns");
  EXPECT_DOUBLE_EQ(hv.object["count"].number, 5.0);
  EXPECT_DOUBLE_EQ(hv.object["sum"].number, 500.0);
  EXPECT_DOUBLE_EQ(hv.object["min"].number, 100.0);
  EXPECT_DOUBLE_EQ(hv.object["max"].number, 100.0);
  // 100 has bit width 7, so the only non-empty bucket is [64,128).
  ASSERT_EQ(hv.object["buckets"].array.size(), 1u);
  EXPECT_DOUBLE_EQ(hv.object["buckets"].array[0].array[0].number, 7.0);
  EXPECT_DOUBLE_EQ(hv.object["buckets"].array[0].array[1].number, 5.0);
}

TEST(ObsJsonTest, EscapesSpecialCharacters) {
  registry().counter("test.json.\"quoted\"\\name").inc();
  const std::string json = registry().to_json();
  JsonParser parser(json);
  JsonValue root = parser.parse();
  ASSERT_FALSE(parser.failed()) << json;
  EXPECT_TRUE(
      root.object["counters"].object.count("test.json.\"quoted\"\\name"))
      << json;
}

TEST(ObsSnapshotTest, TableListsEveryMetric) {
  registry().counter("test.table.counter").inc();
  registry().histogram("test.table.hist", Unit::kNanoseconds).record(5);
  auto table = registry().snapshot().table("t");
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("test.table.counter"), std::string::npos);
  EXPECT_NE(out.find("test.table.hist"), std::string::npos);
}

}  // namespace
}  // namespace ickpt::obs

// Observability registry: counter/gauge/histogram semantics, handle
// identity, enabled-gating, thread safety of the record path, and a
// JSON round-trip through a minimal in-test parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/timer.h"
#include "tests/json_test_util.h"

namespace ickpt::obs {
namespace {

// The registry is process-global and never unregisters, so every test
// uses its own metric names and treats pre-existing metrics as
// background noise.

TEST(ObsCounterTest, IncrementAndReset) {
  auto& c = registry().counter("test.counter.basic");
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounterTest, GetOrCreateReturnsSameObject) {
  auto& a = registry().counter("test.counter.identity");
  auto& b = registry().counter("test.counter.identity");
  EXPECT_EQ(&a, &b);
  auto& other = registry().counter("test.counter.identity2");
  EXPECT_NE(&a, &other);
}

TEST(ObsGaugeTest, UpdateTracksHighWater) {
  auto& g = registry().gauge("test.gauge.hw");
  g.reset();
  g.update(5);
  g.update(17);
  g.update(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max(), 17);
}

TEST(ObsHistogramTest, BucketIndexByBitWidth) {
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(1023), 10);
  EXPECT_EQ(Histogram::bucket_index(1024), 11);
  EXPECT_EQ(Histogram::bucket_index(~0ull), Histogram::kBuckets - 1);
}

TEST(ObsHistogramTest, PowerOfTwoBoundariesAreDeterministic) {
  // Exact powers of two open a new bucket: 2^k has bit width k+1, so
  // it is the first value of bucket k+1, and bucket_lo/bucket_hi agree
  // with bucket_index about where every boundary lies.
  for (int k = 0; k < 63; ++k) {
    const std::uint64_t v = 1ull << k;
    const int idx = Histogram::bucket_index(v);
    EXPECT_EQ(idx, std::min(k + 1, Histogram::kBuckets - 1)) << "k=" << k;
    EXPECT_GE(v, Histogram::bucket_lo(idx)) << "k=" << k;
    EXPECT_LE(v, Histogram::bucket_hi(idx)) << "k=" << k;
    if (v > 1) {
      // The predecessor lands one bucket down, never shares the bucket.
      EXPECT_EQ(Histogram::bucket_index(v - 1), idx - 1) << "k=" << k;
      EXPECT_EQ(Histogram::bucket_hi(idx - 1), v - 1) << "k=" << k;
      EXPECT_EQ(Histogram::bucket_lo(idx), v) << "k=" << k;
    }
  }
}

TEST(ObsHistogramTest, QuantileOnEmptyAndExtremeArgs) {
  auto& h = registry().histogram("test.hist.q_empty", Unit::kNone);
  h.reset();
  EXPECT_EQ(h.approx_quantile(-1.0), 0.0);
  EXPECT_EQ(h.approx_quantile(0.0), 0.0);
  EXPECT_EQ(h.approx_quantile(0.5), 0.0);
  EXPECT_EQ(h.approx_quantile(1.0), 0.0);
  EXPECT_EQ(h.approx_quantile(2.0), 0.0);
}

TEST(ObsHistogramTest, QuantileOfSingleSampleIsTheSample) {
  auto& h = registry().histogram("test.hist.q_single", Unit::kNone);
  h.reset();
  h.record(1000);  // bucket [512,1024): the old midpoint estimate
                   // overshot to 768..; min/max clamping answers 1000
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.approx_quantile(q), 1000.0) << "q=" << q;
  }
}

TEST(ObsHistogramTest, QuantileStaysWithinObservedRange) {
  auto& h = registry().histogram("test.hist.q_range", Unit::kNone);
  h.reset();
  // Saturate the top bucket: without clamping, the midpoint of
  // [2^62, ~0] overflows past max().
  h.record(~0ull);
  h.record(~0ull - 1);
  EXPECT_EQ(h.approx_quantile(0.99), static_cast<double>(h.max()));
  h.record(3);
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_GE(h.approx_quantile(q), static_cast<double>(h.min()));
    EXPECT_LE(h.approx_quantile(q), static_cast<double>(h.max()));
  }
}

TEST(ObsHistogramTest, StatsAndQuantiles) {
  auto& h = registry().histogram("test.hist.stats", Unit::kNone);
  h.reset();
  for (int i = 0; i < 100; ++i) h.record(10);   // bucket 4: [8,16)
  for (int i = 0; i < 10; ++i) h.record(1000);  // bucket 10: [512,1024)
  EXPECT_EQ(h.count(), 110u);
  EXPECT_EQ(h.sum(), 100u * 10 + 10u * 1000);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.mean(), (100.0 * 10 + 10.0 * 1000) / 110.0, 1e-9);
  // p50 lands in the low bucket, p99 in the high one; the estimate is
  // the bucket's geometric midpoint so assert the bucket, not the
  // exact value.
  EXPECT_GE(h.approx_quantile(0.5), 8.0);
  EXPECT_LT(h.approx_quantile(0.5), 16.0);
  EXPECT_GE(h.approx_quantile(0.99), 512.0);
  EXPECT_LT(h.approx_quantile(0.99), 1024.0);
}

TEST(ObsHistogramTest, EmptyHistogramIsZeroed) {
  auto& h = registry().histogram("test.hist.empty", Unit::kNone);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.approx_quantile(0.5), 0.0);
}

TEST(ObsTimerTest, ScopedTimerRecordsWhenEnabled) {
  auto& h = registry().histogram("test.timer.on", Unit::kNanoseconds);
  h.reset();
  set_enabled(true);
  { ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(ObsTimerTest, ScopedTimerSkipsWhenDisabled) {
  auto& h = registry().histogram("test.timer.off", Unit::kNanoseconds);
  h.reset();
  set_enabled(false);
  { ScopedTimer t(h); }
  set_enabled(true);
  EXPECT_EQ(h.count(), 0u);
}

TEST(ObsTimerTest, CancelAndIdempotentStop) {
  auto& h = registry().histogram("test.timer.cancel", Unit::kNanoseconds);
  h.reset();
  {
    ScopedTimer t(h);
    t.cancel();
  }
  EXPECT_EQ(h.count(), 0u);
  {
    ScopedTimer t(h);
    t.stop();
    t.stop();  // second stop must not double-record
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(ObsRegistryTest, ThreadedIncrementsAreExact) {
  auto& c = registry().counter("test.counter.threads");
  auto& h = registry().histogram("test.hist.threads", Unit::kNone);
  c.reset();
  h.reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(7);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ------------------------------------------------------ JSON round-trip

using testutil::JsonParser;
using testutil::JsonValue;

TEST(ObsJsonTest, SnapshotRoundTrips) {
  registry().counter("test.json.counter").reset();
  registry().counter("test.json.counter").inc(1234);
  auto& g = registry().gauge("test.json.gauge");
  g.reset();
  g.update(77);
  g.update(50);
  auto& h = registry().histogram("test.json.hist", Unit::kNanoseconds);
  h.reset();
  for (int i = 0; i < 5; ++i) h.record(100);

  auto snap = registry().snapshot();
  const std::string json = snap.to_json();

  JsonParser parser(json);
  JsonValue root = parser.parse();
  ASSERT_FALSE(parser.failed()) << json;
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);

  ASSERT_TRUE(root.object.count("enabled"));
  EXPECT_EQ(root.object["enabled"].kind, JsonValue::Kind::kBool);

  auto& counters = root.object["counters"];
  ASSERT_EQ(counters.kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(counters.object.count("test.json.counter")) << json;
  EXPECT_DOUBLE_EQ(counters.object["test.json.counter"].number, 1234.0);

  auto& gauges = root.object["gauges"];
  ASSERT_EQ(gauges.kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(gauges.object.count("test.json.gauge"));
  EXPECT_DOUBLE_EQ(gauges.object["test.json.gauge"].object["value"].number,
                   50.0);
  EXPECT_DOUBLE_EQ(gauges.object["test.json.gauge"].object["max"].number,
                   77.0);

  auto& hists = root.object["histograms"];
  ASSERT_EQ(hists.kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(hists.object.count("test.json.hist"));
  auto& hv = hists.object["test.json.hist"];
  EXPECT_EQ(hv.object["unit"].str, "ns");
  EXPECT_DOUBLE_EQ(hv.object["count"].number, 5.0);
  EXPECT_DOUBLE_EQ(hv.object["sum"].number, 500.0);
  EXPECT_DOUBLE_EQ(hv.object["min"].number, 100.0);
  EXPECT_DOUBLE_EQ(hv.object["max"].number, 100.0);
  // 100 has bit width 7, so the only non-empty bucket is [64,128).
  ASSERT_EQ(hv.object["buckets"].array.size(), 1u);
  EXPECT_DOUBLE_EQ(hv.object["buckets"].array[0].array[0].number, 7.0);
  EXPECT_DOUBLE_EQ(hv.object["buckets"].array[0].array[1].number, 5.0);
}

TEST(ObsJsonTest, EscapesSpecialCharacters) {
  registry().counter("test.json.\"quoted\"\\name").inc();
  const std::string json = registry().to_json();
  JsonParser parser(json);
  JsonValue root = parser.parse();
  ASSERT_FALSE(parser.failed()) << json;
  EXPECT_TRUE(
      root.object["counters"].object.count("test.json.\"quoted\"\\name"))
      << json;
}

TEST(ObsSnapshotTest, TableListsEveryMetric) {
  registry().counter("test.table.counter").inc();
  registry().histogram("test.table.hist", Unit::kNanoseconds).record(5);
  auto table = registry().snapshot().table("t");
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("test.table.counter"), std::string::npos);
  EXPECT_NE(out.find("test.table.hist"), std::string::npos);
}

}  // namespace
}  // namespace ickpt::obs

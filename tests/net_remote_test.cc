// Acceptance: the full checkpoint -> restore pipeline run through
// RemoteBackend against a live ickptd must be byte-equivalent to the
// same pipeline run against a local FileBackend — identical object
// bytes in the store, identical restored state, healthy fsck.
#include "net/remote_backend.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <thread>

#include "checkpoint/checkpointer.h"
#include "checkpoint/inspect.h"
#include "checkpoint/restore.h"
#include "common/io_util.h"
#include "common/rng.h"
#include "net/wire.h"
#include "memtrack/explicit_engine.h"
#include "net/server.h"
#include "region/address_space.h"
#include "storage/backend.h"
#include "storage/segment_backend.h"

namespace ickpt::checkpoint {
namespace {

using memtrack::ExplicitEngine;
using region::AddressSpace;
using region::AreaKind;

void fill_pattern(std::span<std::byte> mem, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i < mem.size(); i += 8) {
    std::uint64_t v = rng.next_u64();
    std::memcpy(mem.data() + i, &v, std::min<std::size_t>(8, mem.size() - i));
  }
}

std::vector<std::byte> read_object(storage::StorageBackend& store,
                                   const std::string& key) {
  auto reader = store.open(key);
  EXPECT_TRUE(reader.is_ok()) << key << ": " << reader.status().message();
  std::vector<std::byte> data((*reader)->size());
  std::size_t off = 0;
  while (off < data.size()) {
    auto got = (*reader)->read({data.data() + off, data.size() - off});
    EXPECT_TRUE(got.is_ok());
    if (!got.is_ok() || *got == 0) break;
    off += *got;
  }
  EXPECT_EQ(off, data.size());
  return data;
}

/// One rank's synthetic workload: a few blocks, dirtied and
/// checkpointed identically on every instance, so two Harness objects
/// driven with the same seeds produce byte-identical chains.
class Harness {
 public:
  explicit Harness(storage::StorageBackend* store)
      : space_(engine_, "rank0"),
        ckpt_(Checkpointer::create(space_, store).value()) {}

  void build_chain() {
    auto a = space_.map(8 * page_size(), AreaKind::kHeap, "a");
    auto b = space_.map(4 * page_size(), AreaKind::kHeap, "b");
    ASSERT_TRUE(a.is_ok() && b.is_ok());
    fill_pattern(a->mem, 101);
    fill_pattern(b->mem, 202);
    ASSERT_TRUE(ckpt_->checkpoint_full(1.0).is_ok());

    for (int step = 0; step < 4; ++step) {
      // Touch a deterministic subset of pages each step.
      Rng rng(1000 + static_cast<std::uint64_t>(step));
      for (int t = 0; t < 3; ++t) {
        auto mem = (t % 2 == 0) ? a->mem : b->mem;
        const std::size_t pages = mem.size() / page_size();
        auto page = mem.subspan(rng.next_index(pages) * page_size(),
                                page_size());
        fill_pattern(page, 5000 + static_cast<std::uint64_t>(step * 3 + t));
        engine_.note_write(page.data(), page.size());
      }
      auto snap = engine_.collect(true);
      ASSERT_TRUE(snap.is_ok());
      ASSERT_TRUE(
          ckpt_->checkpoint_incremental(*snap, 2.0 + step).is_ok());
    }
  }

 private:
  ExplicitEngine engine_;
  AddressSpace space_;
  std::unique_ptr<Checkpointer> ckpt_;
};

class NetRemoteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ickpt_net_remote_" +
           std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
    remote_dir_ = dir_ + "/remote";
    local_dir_ = dir_ + "/local";

    auto served = storage::make_file_backend(remote_dir_);
    ASSERT_TRUE(served.is_ok());
    served_ = std::move(served.value());
    auto server = net::Server::create(*served_);
    ASSERT_TRUE(server.is_ok()) << server.status().message();
    server_ = std::move(server.value());
    serve_thread_ = std::thread([this] { (void)server_->serve(); });
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->stop();
      serve_thread_.join();
    }
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<storage::StorageBackend> connect() {
    storage::RemoteBackendOptions options;
    options.host = "127.0.0.1";
    options.port = server_->port();
    options.io_timeout_s = 10.0;
    auto remote = storage::make_remote_backend(options);
    EXPECT_TRUE(remote.is_ok()) << remote.status().message();
    return std::move(remote.value());
  }

  std::string dir_, remote_dir_, local_dir_;
  std::unique_ptr<storage::StorageBackend> served_;
  std::unique_ptr<net::Server> server_;
  std::thread serve_thread_;
};

TEST_F(NetRemoteTest, ChainThroughDaemonMatchesLocalFileBackendByteForByte) {
  // Same workload into a remote store (via ickptd) and a local one.
  auto remote = connect();
  Harness remote_rank(remote.get());
  remote_rank.build_chain();

  auto local = storage::make_file_backend(local_dir_);
  ASSERT_TRUE(local.is_ok());
  Harness local_rank(local->get());
  local_rank.build_chain();

  // Identical key sets...
  auto remote_keys = remote->list();
  auto local_keys = (*local)->list();
  ASSERT_TRUE(remote_keys.is_ok() && local_keys.is_ok());
  std::sort(remote_keys->begin(), remote_keys->end());
  std::sort(local_keys->begin(), local_keys->end());
  ASSERT_EQ(*remote_keys, *local_keys);
  ASSERT_EQ(remote_keys->size(), 5u);  // 1 full + 4 incrementals

  // ...and identical bytes, object by object (fuzz-level identity:
  // the network hop must not perturb a single byte).
  for (const auto& key : *remote_keys) {
    auto via_net = read_object(*remote, key);
    auto via_disk = read_object(**local, key);
    ASSERT_EQ(via_net.size(), via_disk.size()) << key;
    EXPECT_EQ(0, std::memcmp(via_net.data(), via_disk.data(),
                             via_net.size()))
        << "byte mismatch in " << key;
  }

  // Server-side, objects live under the tenant prefix in the dir the
  // daemon serves; a FileBackend rooted there sees the same store.
  auto rerooted =
      storage::make_file_backend(remote_dir_ + "/tenant/default");
  ASSERT_TRUE(rerooted.is_ok());

  // Restore through the network equals restore from local disk,
  // block for block.
  auto via_net = restore_chain(*remote, 0);
  auto via_disk = restore_chain(**local, 0);
  auto via_reroot = restore_chain(**rerooted, 0);
  ASSERT_TRUE(via_net.is_ok()) << via_net.status().message();
  ASSERT_TRUE(via_disk.is_ok() && via_reroot.is_ok());
  for (const auto* other : {&*via_disk, &*via_reroot}) {
    EXPECT_EQ(via_net->sequence, other->sequence);
    ASSERT_EQ(via_net->blocks.size(), other->blocks.size());
    auto ia = via_net->blocks.begin();
    auto ib = other->blocks.begin();
    for (; ia != via_net->blocks.end(); ++ia, ++ib) {
      ASSERT_EQ(ia->second.data.size(), ib->second.data.size());
      EXPECT_EQ(0, std::memcmp(ia->second.data.data(),
                               ib->second.data.data(),
                               ia->second.data.size()))
          << "restored block " << ia->first;
    }
  }

  // fsck over the network store: healthy, same shape as local.
  auto net_report = inspect_store(*remote);
  auto disk_report = inspect_store(**local);
  ASSERT_TRUE(net_report.is_ok()) << net_report.status().message();
  ASSERT_TRUE(disk_report.is_ok());
  EXPECT_TRUE(net_report->healthy());
  ASSERT_EQ(net_report->chains.count(0u), 1u);
  const auto& net_chain = net_report->chains.at(0);
  const auto& disk_chain = disk_report->chains.at(0);
  EXPECT_EQ(net_chain.elements.size(), disk_chain.elements.size());
  EXPECT_EQ(net_chain.total_bytes, disk_chain.total_bytes);
  EXPECT_TRUE(net_chain.recoverable);
  EXPECT_EQ(net_chain.recoverable_upto, disk_chain.recoverable_upto);
}

TEST_F(NetRemoteTest, RestoreToleratesDamageTheSameWayOverTheNetwork) {
  auto remote = connect();
  Harness rank(remote.get());
  rank.build_chain();
  auto pristine = restore_chain(*remote, 0);
  ASSERT_TRUE(pristine.is_ok()) << pristine.status().message();

  // Corrupt the newest object server-side (under the tenant prefix).
  auto keys = served_->list();
  ASSERT_TRUE(keys.is_ok());
  std::vector<std::string> chain_keys;
  for (const auto& key : *keys) {
    if (key.find("rank0/") != std::string::npos) chain_keys.push_back(key);
  }
  std::sort(chain_keys.begin(), chain_keys.end());
  ASSERT_FALSE(chain_keys.empty());
  const std::string victim = chain_keys.back();
  auto data = read_object(*served_, victim);
  data[data.size() / 2] ^= std::byte{0xFF};
  auto writer = served_->create(victim);
  ASSERT_TRUE(writer.is_ok());
  ASSERT_TRUE((*writer)->write(data).is_ok());
  ASSERT_TRUE((*writer)->close().is_ok());

  // Strict restore over the network reports corruption; the truncated-
  // tail mode recovers to the last good prefix — same behavior as the
  // local backends.
  auto strict = restore_chain(*remote, 0);
  EXPECT_EQ(strict.status().code(), ErrorCode::kCorruption);

  RestoreOptions lenient;
  lenient.allow_truncated_tail = true;
  auto recovered = restore_chain(*remote, 0, lenient);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().message();
  EXPECT_LT(recovered->sequence, pristine->sequence);
}

// Acceptance: the same chain pushed through a live daemon serving a
// SegmentBackend restores byte-identically to a local FileBackend
// chain — the network store works unchanged over the log-structured
// layout (ickptd --backend=segment).
TEST(NetSegmentStoreTest, ChainThroughSegmentServedDaemonMatchesFile) {
  const std::string dir = ::testing::TempDir() + "/ickpt_net_segment_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);

  auto served = storage::make_segment_backend(dir + "/remote");
  ASSERT_TRUE(served.is_ok()) << served.status().message();
  auto server = net::Server::create(**served);
  ASSERT_TRUE(server.is_ok()) << server.status().message();
  std::thread serve_thread([&] { (void)(*server)->serve(); });

  storage::RemoteBackendOptions options;
  options.host = "127.0.0.1";
  options.port = (*server)->port();
  options.io_timeout_s = 10.0;
  auto remote = storage::make_remote_backend(options);
  ASSERT_TRUE(remote.is_ok()) << remote.status().message();

  Harness remote_rank(remote->get());
  remote_rank.build_chain();
  auto local = storage::make_file_backend(dir + "/local");
  ASSERT_TRUE(local.is_ok());
  Harness local_rank(local->get());
  local_rank.build_chain();

  auto remote_keys = (*remote)->list();
  auto local_keys = (*local)->list();
  ASSERT_TRUE(remote_keys.is_ok() && local_keys.is_ok());
  std::sort(remote_keys->begin(), remote_keys->end());
  std::sort(local_keys->begin(), local_keys->end());
  ASSERT_EQ(*remote_keys, *local_keys);
  for (const auto& key : *remote_keys) {
    auto via_net = read_object(**remote, key);
    auto via_disk = read_object(**local, key);
    ASSERT_EQ(via_net.size(), via_disk.size()) << key;
    EXPECT_EQ(0,
              std::memcmp(via_net.data(), via_disk.data(), via_net.size()))
        << "byte mismatch in " << key;
  }

  auto via_net = restore_chain(**remote, 0);
  auto via_disk = restore_chain(**local, 0);
  ASSERT_TRUE(via_net.is_ok()) << via_net.status().message();
  ASSERT_TRUE(via_disk.is_ok());
  EXPECT_EQ(via_net->sequence, via_disk->sequence);
  ASSERT_EQ(via_net->blocks.size(), via_disk->blocks.size());
  auto ia = via_net->blocks.begin();
  auto ib = via_disk->blocks.begin();
  for (; ia != via_net->blocks.end(); ++ia, ++ib) {
    ASSERT_EQ(ia->second.data.size(), ib->second.data.size());
    EXPECT_EQ(0, std::memcmp(ia->second.data.data(),
                             ib->second.data.data(),
                             ia->second.data.size()))
        << "restored block " << ia->first;
  }

  // fsck over the segment store through the daemon: healthy.
  auto report = inspect_store(**remote);
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  EXPECT_TRUE(report->healthy());

  (*server)->stop();
  serve_thread.join();
  std::filesystem::remove_all(dir);
}

// Regression for the client send path: a daemon that hangs up in the
// middle of an upload must surface as a Status from write()/close(),
// not deliver SIGPIPE and kill the scientific application.  Before
// the switch to send(MSG_NOSIGNAL) this test died on the signal.
TEST(RemoteBackendSigpipeTest, ServerClosingMidPutReturnsStatus) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof addr),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t addr_len = sizeof addr;
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  // Minimal fake daemon: answer the handshake and the PUT_BEGIN, then
  // slam the door as soon as body data starts arriving.
  std::thread fake([listen_fd] {
    int cfd = ::accept(listen_fd, nullptr, nullptr);
    if (cfd < 0) return;
    auto read_frame = [cfd]() -> Result<net::FrameHeader> {
      std::byte header_bytes[net::kFrameHeaderSize];
      auto got = ioutil::read_full(cfd, header_bytes);
      if (!got.is_ok() || *got < net::kFrameHeaderSize) {
        return io_error("peer gone");
      }
      ICKPT_ASSIGN_OR_RETURN(
          header, net::decode_frame_header(
                      std::span<const std::byte, net::kFrameHeaderSize>(
                          header_bytes)));
      std::vector<std::byte> payload(header.len);
      if (header.len > 0) {
        auto body = ioutil::read_full(cfd, payload);
        if (!body.is_ok()) return io_error("peer gone");
      }
      return header;
    };
    auto reply = [cfd](net::Verb verb) {
      auto frame = net::build_frame(verb, {});
      (void)ioutil::send_full(cfd, frame);
    };
    auto hello = read_frame();
    if (hello.is_ok() && hello->verb == net::Verb::kHello) {
      reply(net::Verb::kHelloOk);
    }
    auto put_begin = read_frame();
    if (put_begin.is_ok() && put_begin->verb == net::Verb::kPutBegin) {
      reply(net::Verb::kOk);
    }
    // First body frame header arrives... and the daemon dies mid-PUT.
    (void)read_frame();
    ::close(cfd);
  });

  storage::RemoteBackendOptions options;
  options.host = "127.0.0.1";
  options.port = port;
  options.io_timeout_s = 10.0;
  auto remote = storage::make_remote_backend(options);
  ASSERT_TRUE(remote.is_ok()) << remote.status().message();

  auto writer = (*remote)->create("victim");
  ASSERT_TRUE(writer.is_ok()) << writer.status().message();

  // Pump chunks until the broken pipe surfaces.  Early writes may land
  // in the socket buffer; the close must eventually come back as a
  // clean Status while this process stays alive.
  std::vector<std::byte> chunk(net::kChunkSize, std::byte{0x5a});
  Status st = Status::ok();
  for (int i = 0; i < 512 && st.is_ok(); ++i) st = (*writer)->write(chunk);
  EXPECT_FALSE(st.is_ok()) << "write never observed the hangup";
  EXPECT_EQ(st.code(), ErrorCode::kIoError) << st.message();

  writer->reset();  // abort path must also survive the dead socket
  fake.join();
  ::close(listen_fd);
}

}  // namespace
}  // namespace ickpt::checkpoint

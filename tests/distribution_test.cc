#include "analysis/distribution.h"

#include <gtest/gtest.h>

#include "common/page.h"

namespace ickpt::analysis {
namespace {

TEST(QuantileTest, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile({7.0}, 1.0), 7.0);
}

TEST(QuantileTest, InterpolatesLinearly) {
  std::vector<double> v = {0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.125), 5.0);  // midpoint of 0 and 10
}

TEST(QuantileTest, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(quantile({30, 0, 20, 40, 10}, 0.5), 20.0);
}

TEST(QuantileTest, ClampsOutOfRangeQ) {
  std::vector<double> v = {1, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.5), 3.0);
}

TEST(IbQuantilesTest, ComputesFromSeries) {
  trace::TimeSeries ts;
  for (int i = 0; i < 100; ++i) {
    trace::Sample s;
    s.index = static_cast<std::uint64_t>(i);
    s.t_start = i;
    s.t_end = i + 1;
    s.iws_bytes = static_cast<std::size_t>(i + 1) * page_size();
    ts.add(s);
  }
  auto q = ib_quantiles(ts);
  EXPECT_EQ(q.samples, 100u);
  EXPECT_NEAR(q.p50, 50.5 * static_cast<double>(page_size()),
              static_cast<double>(page_size()));
  EXPECT_DOUBLE_EQ(q.max, 100.0 * static_cast<double>(page_size()));
  EXPECT_GT(q.p99, q.p90);
  EXPECT_GT(q.p90, q.p50);
}

TEST(IbQuantilesTest, SkipFirstExcludesWarmup) {
  trace::TimeSeries ts;
  for (int i = 0; i < 10; ++i) {
    trace::Sample s;
    s.t_end = 1;
    s.iws_bytes = (i == 0 ? 1000u : 1u) * page_size();
    ts.add(s);
  }
  auto q = ib_quantiles(ts, 1);
  EXPECT_EQ(q.samples, 9u);
  EXPECT_DOUBLE_EQ(q.max, static_cast<double>(page_size()));
}

TEST(HistogramTest, CountsFallInRightBins) {
  std::vector<double> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 10};
  auto h = histogram(v, 5);
  ASSERT_EQ(h.size(), 5u);
  std::size_t total = 0;
  for (const auto& bin : h) total += bin.count;
  EXPECT_EQ(total, v.size());
  EXPECT_DOUBLE_EQ(h.front().lo, 0.0);
  EXPECT_DOUBLE_EQ(h.back().hi, 10.0);
  EXPECT_EQ(h[0].count, 2u);  // 0, 1
  EXPECT_EQ(h[4].count, 2u);  // 8, 10 (max lands in last bin)
}

TEST(HistogramTest, DegenerateInputs) {
  EXPECT_TRUE(histogram({}, 4).empty());
  EXPECT_TRUE(histogram({1.0, 2.0}, 0).empty());
  auto constant = histogram({5.0, 5.0, 5.0}, 4);
  ASSERT_EQ(constant.size(), 1u);
  EXPECT_EQ(constant[0].count, 3u);
}

}  // namespace
}  // namespace ickpt::analysis

// Per-engine behavioural tests: attach/detach lifecycle, arm/collect
// semantics, fault absorption (mprotect), pagemap scanning (soft-dirty),
// and explicit notification.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "common/arena.h"
#include "memtrack/explicit_engine.h"
#include "memtrack/fault_table.h"
#include "memtrack/mprotect_engine.h"
#include "memtrack/softdirty_engine.h"
#include "memtrack/tracker.h"

namespace ickpt::memtrack {
namespace {

std::vector<std::uint32_t> dirty_pages_of(const DirtySnapshot& snap,
                                          RegionId id) {
  for (const auto& r : snap.regions) {
    if (r.id == id) return r.dirty_pages;
  }
  return {};
}

// ---------------------------------------------------------------- mprotect

TEST(MProtectEngineTest, TracksSingleWrite) {
  PageArena arena(8 * page_size());
  arena.prefault();
  MProtectEngine engine;
  auto id = engine.attach(arena.span(), "data");
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(engine.arm().is_ok());

  arena.data()[3 * page_size()] = std::byte{1};

  auto snap = engine.collect(/*rearm=*/false);
  ASSERT_TRUE(snap.is_ok());
  auto pages = dirty_pages_of(*snap, *id);
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_EQ(pages[0], 3u);
  EXPECT_EQ(engine.counters().faults_handled, 1u);
}

TEST(MProtectEngineTest, NoWritesMeansEmptySnapshot) {
  PageArena arena(4 * page_size());
  MProtectEngine engine;
  auto id = engine.attach(arena.span(), "quiet");
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(engine.arm().is_ok());
  // Reads must not fault or dirty anything.
  volatile std::byte x = arena.data()[0];
  (void)x;
  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(snap->dirty_pages(), 0u);
}

TEST(MProtectEngineTest, RepeatedWritesSamePageCountOnce) {
  PageArena arena(2 * page_size());
  MProtectEngine engine;
  auto id = engine.attach(arena.span(), "r");
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(engine.arm().is_ok());
  for (int i = 0; i < 100; ++i) arena.data()[i] = std::byte{7};
  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(snap->dirty_pages(), 1u);
  // Only the first write faults; the other 99 run at full speed.
  EXPECT_EQ(engine.counters().faults_handled, 1u);
}

TEST(MProtectEngineTest, RearmStartsFreshInterval) {
  PageArena arena(4 * page_size());
  MProtectEngine engine;
  auto id = engine.attach(arena.span(), "r");
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(engine.arm().is_ok());
  arena.data()[0] = std::byte{1};
  auto s1 = engine.collect(/*rearm=*/true);
  ASSERT_TRUE(s1.is_ok());
  EXPECT_EQ(s1->dirty_pages(), 1u);

  arena.data()[2 * page_size()] = std::byte{2};
  auto s2 = engine.collect(false);
  ASSERT_TRUE(s2.is_ok());
  auto pages = dirty_pages_of(*s2, *id);
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_EQ(pages[0], 2u);
}

TEST(MProtectEngineTest, CollectWithoutRearmLeavesMemoryWritable) {
  PageArena arena(2 * page_size());
  MProtectEngine engine;
  ASSERT_TRUE(engine.attach(arena.span(), "w").is_ok());
  ASSERT_TRUE(engine.arm().is_ok());
  arena.data()[0] = std::byte{1};
  ASSERT_TRUE(engine.collect(false).is_ok());
  std::uint64_t faults_before = engine.counters().faults_handled;
  arena.data()[page_size()] = std::byte{2};  // must not fault
  EXPECT_EQ(engine.counters().faults_handled, faults_before);
  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(snap->dirty_pages(), 0u);  // untracked while unarmed
}

TEST(MProtectEngineTest, MultipleRegions) {
  PageArena a(4 * page_size()), b(4 * page_size());
  MProtectEngine engine;
  auto ia = engine.attach(a.span(), "a");
  auto ib = engine.attach(b.span(), "b");
  ASSERT_TRUE(ia.is_ok());
  ASSERT_TRUE(ib.is_ok());
  EXPECT_EQ(engine.region_count(), 2u);
  EXPECT_EQ(engine.tracked_bytes(), 8 * page_size());
  ASSERT_TRUE(engine.arm().is_ok());
  a.data()[0] = std::byte{1};
  b.data()[page_size()] = std::byte{1};
  b.data()[3 * page_size()] = std::byte{1};
  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(dirty_pages_of(*snap, *ia).size(), 1u);
  EXPECT_EQ(dirty_pages_of(*snap, *ib).size(), 2u);
}

TEST(MProtectEngineTest, DetachRestoresAccess) {
  PageArena arena(2 * page_size());
  MProtectEngine engine;
  auto id = engine.attach(arena.span(), "d");
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(engine.arm().is_ok());
  ASSERT_TRUE(engine.detach(*id).is_ok());
  arena.data()[0] = std::byte{9};  // must not crash or fault
  EXPECT_EQ(engine.region_count(), 0u);
  EXPECT_EQ(engine.counters().faults_handled, 0u);
}

TEST(MProtectEngineTest, DetachUnknownIdFails) {
  MProtectEngine engine;
  EXPECT_EQ(engine.detach(12345).code(), ErrorCode::kNotFound);
}

TEST(MProtectEngineTest, AttachRejectsUnalignedRange) {
  PageArena arena(2 * page_size());
  MProtectEngine engine;
  auto bad = engine.attach(arena.span().subspan(1), "unaligned");
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kInvalidArgument);
  auto empty = engine.attach({}, "empty");
  EXPECT_FALSE(empty.is_ok());
}

TEST(MProtectEngineTest, AttachWhileArmedProtectsNewRegion) {
  MProtectEngine engine;
  PageArena a(2 * page_size());
  ASSERT_TRUE(engine.attach(a.span(), "a").is_ok());
  ASSERT_TRUE(engine.arm().is_ok());
  PageArena b(2 * page_size());
  auto ib = engine.attach(b.span(), "b");
  ASSERT_TRUE(ib.is_ok());
  b.data()[0] = std::byte{1};
  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(dirty_pages_of(*snap, *ib).size(), 1u);
}

TEST(MProtectEngineTest, FaultBatchingOverapproximates) {
  PageArena arena(16 * page_size());
  MProtectEngine::Options opts;
  opts.fault_batch_pages = 4;
  MProtectEngine engine(opts);
  auto id = engine.attach(arena.span(), "batched");
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(engine.arm().is_ok());
  arena.data()[0] = std::byte{1};  // one write...
  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  // ...but a whole batch marked dirty, with a single fault.
  EXPECT_EQ(dirty_pages_of(*snap, *id).size(), 4u);
  EXPECT_EQ(engine.counters().faults_handled, 1u);
}

TEST(MProtectEngineTest, FaultBatchClampsAtRegionEnd) {
  PageArena arena(4 * page_size());
  MProtectEngine::Options opts;
  opts.fault_batch_pages = 16;
  MProtectEngine engine(opts);
  auto id = engine.attach(arena.span(), "clamp");
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(engine.arm().is_ok());
  arena.data()[3 * page_size()] = std::byte{1};
  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(dirty_pages_of(*snap, *id).size(), 1u);
}

TEST(MProtectEngineTest, WritesFromMultipleThreads) {
  constexpr std::size_t kPages = 64;
  PageArena arena(kPages * page_size());
  MProtectEngine engine;
  auto id = engine.attach(arena.span(), "mt");
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(engine.arm().is_ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&arena, t] {
      for (std::size_t p = static_cast<std::size_t>(t); p < kPages; p += 4) {
        arena.data()[p * page_size()] = std::byte{1};
      }
    });
  }
  for (auto& th : threads) th.join();
  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(snap->dirty_pages(), kPages);
}

TEST(MProtectEngineTest, TwoEnginesCoexist) {
  MProtectEngine e1, e2;
  PageArena a(2 * page_size()), b(2 * page_size());
  auto ia = e1.attach(a.span(), "e1");
  auto ib = e2.attach(b.span(), "e2");
  ASSERT_TRUE(ia.is_ok());
  ASSERT_TRUE(ib.is_ok());
  ASSERT_TRUE(e1.arm().is_ok());
  ASSERT_TRUE(e2.arm().is_ok());
  a.data()[0] = std::byte{1};
  b.data()[page_size()] = std::byte{1};
  auto s1 = e1.collect(false);
  auto s2 = e2.collect(false);
  ASSERT_TRUE(s1.is_ok());
  ASSERT_TRUE(s2.is_ok());
  EXPECT_EQ(s1->dirty_pages(), 1u);
  EXPECT_EQ(s2->dirty_pages(), 1u);
}

TEST(MProtectEngineTest, SnapshotReportsBytes) {
  PageArena arena(4 * page_size());
  MProtectEngine engine;
  ASSERT_TRUE(engine.attach(arena.span(), "bytes").is_ok());
  ASSERT_TRUE(engine.arm().is_ok());
  arena.data()[0] = std::byte{1};
  arena.data()[page_size()] = std::byte{1};
  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(snap->dirty_bytes(), 2 * page_size());
  EXPECT_EQ(snap->tracked_bytes(), 4 * page_size());
}

// --------------------------------------------------------------- softdirty

class SoftDirtyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!soft_dirty_supported()) {
      GTEST_SKIP() << "soft-dirty not supported in this kernel";
    }
  }
};

TEST_F(SoftDirtyTest, TracksSingleWrite) {
  auto engine = SoftDirtyEngine::create();
  ASSERT_TRUE(engine.is_ok());
  PageArena arena(8 * page_size());
  arena.prefault();
  auto id = (*engine)->attach(arena.span(), "sd");
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE((*engine)->arm().is_ok());
  arena.data()[5 * page_size()] = std::byte{1};
  auto snap = (*engine)->collect(false);
  ASSERT_TRUE(snap.is_ok());
  auto pages = dirty_pages_of(*snap, *id);
  ASSERT_EQ(pages.size(), 1u);
  EXPECT_EQ(pages[0], 5u);
}

TEST_F(SoftDirtyTest, RearmClearsBits) {
  auto engine = SoftDirtyEngine::create();
  ASSERT_TRUE(engine.is_ok());
  PageArena arena(4 * page_size());
  arena.prefault();
  ASSERT_TRUE((*engine)->attach(arena.span(), "sd").is_ok());
  ASSERT_TRUE((*engine)->arm().is_ok());
  arena.data()[0] = std::byte{1};
  auto s1 = (*engine)->collect(/*rearm=*/true);
  ASSERT_TRUE(s1.is_ok());
  EXPECT_EQ(s1->dirty_pages(), 1u);
  auto s2 = (*engine)->collect(false);
  ASSERT_TRUE(s2.is_ok());
  EXPECT_EQ(s2->dirty_pages(), 0u);
}

TEST_F(SoftDirtyTest, ScanCountsPages) {
  auto engine = SoftDirtyEngine::create();
  ASSERT_TRUE(engine.is_ok());
  PageArena arena(16 * page_size());
  arena.prefault();
  ASSERT_TRUE((*engine)->attach(arena.span(), "sd").is_ok());
  ASSERT_TRUE((*engine)->arm().is_ok());
  ASSERT_TRUE((*engine)->collect(false).is_ok());
  EXPECT_GE((*engine)->counters().pages_scanned, 16u);
}

// ---------------------------------------------------------------- explicit

TEST(ExplicitEngineTest, NotedWritesAppear) {
  PageArena arena(8 * page_size());
  ExplicitEngine engine;
  auto id = engine.attach(arena.span(), "x");
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(engine.arm().is_ok());
  engine.note_write(arena.data() + 2 * page_size(), 1);
  engine.note_write(arena.data() + 4 * page_size() + 100, 2 * page_size());
  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  auto pages = dirty_pages_of(*snap, *id);
  // Page 2 plus pages 4,5,6 (write of 2 pages starting mid-page 4).
  ASSERT_EQ(pages.size(), 4u);
  EXPECT_EQ(pages[0], 2u);
  EXPECT_EQ(pages[1], 4u);
  EXPECT_EQ(pages[3], 6u);
}

TEST(ExplicitEngineTest, NotesIgnoredWhenUnarmed) {
  PageArena arena(2 * page_size());
  ExplicitEngine engine;
  ASSERT_TRUE(engine.attach(arena.span(), "x").is_ok());
  engine.note_write(arena.data(), 1);  // before arm: dropped
  ASSERT_TRUE(engine.arm().is_ok());
  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(snap->dirty_pages(), 0u);
}

TEST(ExplicitEngineTest, NotesOutsideRegionsIgnored) {
  PageArena arena(2 * page_size());
  PageArena other(2 * page_size());
  ExplicitEngine engine;
  ASSERT_TRUE(engine.attach(arena.span(), "x").is_ok());
  ASSERT_TRUE(engine.arm().is_ok());
  engine.note_write(other.data(), other.size());
  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(snap->dirty_pages(), 0u);
}

TEST(ExplicitEngineTest, ZeroLengthNoteIsNoop) {
  PageArena arena(page_size());
  ExplicitEngine engine;
  ASSERT_TRUE(engine.attach(arena.span(), "x").is_ok());
  ASSERT_TRUE(engine.arm().is_ok());
  engine.note_write(arena.data(), 0);
  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(snap->dirty_pages(), 0u);
}

// ----------------------------------------------------------------- factory

TEST(FactoryTest, MakesEachKind) {
  auto mp = make_tracker(EngineKind::kMProtect);
  ASSERT_TRUE(mp.is_ok());
  EXPECT_EQ((*mp)->kind(), EngineKind::kMProtect);

  auto ex = make_tracker(EngineKind::kExplicit);
  ASSERT_TRUE(ex.is_ok());
  EXPECT_EQ((*ex)->kind(), EngineKind::kExplicit);

  auto sd = make_tracker(EngineKind::kSoftDirty);
  if (soft_dirty_supported()) {
    ASSERT_TRUE(sd.is_ok());
    EXPECT_EQ((*sd)->kind(), EngineKind::kSoftDirty);
  } else {
    EXPECT_EQ(sd.status().code(), ErrorCode::kUnsupported);
  }
}

TEST(FactoryTest, KindNames) {
  EXPECT_EQ(to_string(EngineKind::kMProtect), "mprotect");
  EXPECT_EQ(to_string(EngineKind::kSoftDirty), "softdirty");
  EXPECT_EQ(to_string(EngineKind::kExplicit), "explicit");
}

// -------------------------------------------------------------- faulttable

TEST(FaultTableTest, PublishUnpublishCycle) {
  auto& table = detail::FaultTable::instance();
  int before = table.published_count();
  AtomicBitmap bm(4);
  std::atomic<std::uint64_t> ctr{0};
  int slot = table.publish(0x1000, 0x5000, &bm, &ctr, 1);
  ASSERT_NE(slot, detail::FaultTable::kNoSlot);
  EXPECT_EQ(table.published_count(), before + 1);
  table.unpublish(slot);
  EXPECT_EQ(table.published_count(), before);
}

TEST(FaultTableTest, SlotsAreReused) {
  auto& table = detail::FaultTable::instance();
  AtomicBitmap bm(4);
  std::atomic<std::uint64_t> ctr{0};
  int s1 = table.publish(0x10000, 0x14000, &bm, &ctr, 1);
  table.unpublish(s1);
  int s2 = table.publish(0x20000, 0x24000, &bm, &ctr, 1);
  EXPECT_EQ(s2, s1);
  table.unpublish(s2);
}

}  // namespace
}  // namespace ickpt::memtrack

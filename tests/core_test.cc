// Core façade: run_study configurations and the wall-clock Monitor.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "apps/catalog.h"
#include "common/arena.h"
#include "core/monitor.h"
#include "core/study.h"

namespace ickpt {
namespace {

TEST(StudyTest, AutoRunLength) {
  EXPECT_DOUBLE_EQ(auto_run_length(0.16, 1.0), 40.0);   // slice-bound
  EXPECT_DOUBLE_EQ(auto_run_length(145.0, 1.0), 580.0); // period-bound
  EXPECT_DOUBLE_EQ(auto_run_length(145.0, 20.0), 800.0);
  EXPECT_DOUBLE_EQ(auto_run_length(1000.0, 20.0), 1200.0);  // capped
}

TEST(StudyTest, RejectsBadConfig) {
  StudyConfig cfg;
  cfg.app = "no-such-app";
  EXPECT_FALSE(run_study(cfg).is_ok());

  cfg.app = "lu";
  cfg.nprocs = 0;
  EXPECT_FALSE(run_study(cfg).is_ok());

  cfg.nprocs = 1;
  cfg.timeslice = 0;
  EXPECT_FALSE(run_study(cfg).is_ok());
}

TEST(StudyTest, SerialStudyProducesSamples) {
  StudyConfig cfg;
  cfg.app = "lu";
  cfg.timeslice = 1.0;
  cfg.footprint_scale = 1.0 / 64.0;
  cfg.run_vs = 20.0;
  auto r = run_study(cfg);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  ASSERT_EQ(r->per_rank.size(), 1u);
  EXPECT_GE(r->per_rank[0].size(), 19u);
  EXPECT_GT(r->ib.avg_ib, 0.0);
  EXPECT_GT(r->iterations, 20u);
  EXPECT_DOUBLE_EQ(r->period_s, 0.7);
}

TEST(StudyTest, ExplicitEngineWorksToo) {
  StudyConfig cfg;
  cfg.app = "sp";
  cfg.engine = memtrack::EngineKind::kExplicit;
  cfg.footprint_scale = 1.0 / 64.0;
  cfg.run_vs = 10.0;
  auto r = run_study(cfg);
  ASSERT_TRUE(r.is_ok());
  EXPECT_GT(r->ib.avg_ib, 0.0);
}

TEST(StudyTest, EnginesAgreeOnIWS) {
  // The mprotect engine and the explicit notifications must measure
  // the same IWS for the same deterministic kernel.
  auto run_with = [](memtrack::EngineKind kind) {
    StudyConfig cfg;
    cfg.app = "bt";
    cfg.engine = kind;
    cfg.footprint_scale = 1.0 / 64.0;
    cfg.run_vs = 15.0;
    cfg.seed = 7;
    auto r = run_study(cfg);
    EXPECT_TRUE(r.is_ok());
    return r->ib.avg_iws;
  };
  double mp = run_with(memtrack::EngineKind::kMProtect);
  double ex = run_with(memtrack::EngineKind::kExplicit);
  EXPECT_NEAR(mp, ex, 0.02 * mp);
}

TEST(StudyTest, MultiRankStudyTracksEveryRank) {
  StudyConfig cfg;
  cfg.app = "sp";
  cfg.nprocs = 4;
  cfg.footprint_scale = 1.0 / 64.0;
  cfg.run_vs = 8.0;
  auto r = run_study(cfg);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  ASSERT_EQ(r->per_rank.size(), 4u);
  for (const auto& series : r->per_rank) {
    EXPECT_GE(series.size(), 7u);
  }
  EXPECT_GT(r->mean_rank_avg_ib, 0.0);
  // Bulk synchrony: ranks should look alike (within 15%).
  auto s0 = analysis::compute_ib_stats(r->per_rank[0]).avg_ib;
  auto s3 = analysis::compute_ib_stats(r->per_rank[3]).avg_ib;
  EXPECT_NEAR(s0, s3, 0.15 * s0);
}

TEST(StudyTest, MultiRankRecordsTraffic) {
  StudyConfig cfg;
  cfg.app = "ft";
  cfg.nprocs = 2;
  cfg.footprint_scale = 1.0 / 64.0;
  cfg.run_vs = 10.0;
  auto r = run_study(cfg);
  ASSERT_TRUE(r.is_ok());
  auto traffic = analysis::compute_traffic_stats(r->per_rank[0]);
  EXPECT_GT(traffic.total_recv, 0.0);
}

TEST(StudyTest, TrackedRanksSubset) {
  StudyConfig cfg;
  cfg.app = "lu";
  cfg.nprocs = 4;
  cfg.tracked_ranks = 1;
  cfg.footprint_scale = 1.0 / 64.0;
  cfg.run_vs = 5.0;
  auto r = run_study(cfg);
  ASSERT_TRUE(r.is_ok());
  EXPECT_GT(r->per_rank[0].size(), 0u);
  EXPECT_EQ(r->per_rank[1].size(), 0u);  // untracked rank: no series
}

TEST(StudyTest, IncludeInitCapturesInitializationBurst) {
  StudyConfig cfg;
  cfg.app = "ft";
  cfg.footprint_scale = 1.0 / 64.0;
  cfg.run_vs = 10.0;
  cfg.include_init = true;
  auto with_init = run_study(cfg);
  ASSERT_TRUE(with_init.is_ok());
  // Figure 1(a)'s "initial peak ... caused by data initialization":
  // the first slice's IWS should be near the whole footprint.
  const auto& first = with_init->per_rank[0][0];
  EXPECT_GT(first.iws_footprint_ratio(), 0.5);
}

TEST(StudyTest, SamplePhaseShiftsBoundaries) {
  StudyConfig cfg;
  cfg.app = "lu";
  cfg.engine = memtrack::EngineKind::kExplicit;
  cfg.footprint_scale = 1.0 / 64.0;
  cfg.run_vs = 10.0;
  cfg.sample_phase = 0.25;
  auto r = run_study(cfg);
  ASSERT_TRUE(r.is_ok());
  const auto& s = r->per_rank[0];
  ASSERT_GE(s.size(), 2u);
  // Boundaries land at init_end + k + 0.25.
  double frac = s[0].t_end - std::floor(s[0].t_end);
  EXPECT_NEAR(frac, 0.25, 1e-6);
}

TEST(StudyTest, CaptureTraceReplaysToSameIWS) {
  StudyConfig cfg;
  cfg.app = "sp";
  cfg.engine = memtrack::EngineKind::kExplicit;
  cfg.footprint_scale = 1.0 / 64.0;
  cfg.run_vs = 8.0;
  cfg.capture_trace = true;
  auto r = run_study(cfg);
  ASSERT_TRUE(r.is_ok());
  ASSERT_GT(r->write_trace.events().size(), 0u);
  ASSERT_GT(r->write_trace.region_pages(), 0u);

  // Replaying the captured trace reproduces the measured IWS series.
  auto tracker = memtrack::make_tracker(memtrack::EngineKind::kExplicit);
  ASSERT_TRUE(tracker.is_ok());
  PageArena arena(r->write_trace.region_pages() * page_size());
  auto iws = r->write_trace.replay(**tracker, arena.span());
  ASSERT_TRUE(iws.is_ok());
  const auto& series = r->per_rank[0];
  ASSERT_LE(series.size(), iws->size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ((*iws)[i], series[i].iws_pages) << "slice " << i;
  }
}

// ------------------------------------------------------------- monitor

TEST(MonitorTest, CreateRejectsBadTimeslice) {
  MonitorOptions opts;
  opts.timeslice = 0;
  EXPECT_FALSE(Monitor::create(opts).is_ok());
}

TEST(MonitorTest, MonitorsUserMemory) {
  MonitorOptions opts;
  opts.timeslice = 0.05;
  auto monitor = Monitor::create(opts);
  ASSERT_TRUE(monitor.is_ok());

  PageArena field(16 * page_size());
  auto id = (*monitor)->attach(field.span(), "field");
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE((*monitor)->start().is_ok());

  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (std::chrono::steady_clock::now() < deadline) {
    for (std::size_t p = 0; p < 4; ++p) {
      field.data()[p * page_size()] = std::byte{1};
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  (*monitor)->stop();

  auto stats = (*monitor)->ib_stats();
  EXPECT_GE(stats.samples, 2u);
  EXPECT_GT(stats.avg_iws, 0.0);
  auto verdict = (*monitor)->feasibility();
  EXPECT_TRUE(verdict.feasible());  // 4 pages / 50 ms is tiny

  ASSERT_TRUE((*monitor)->detach(*id).is_ok());
}

}  // namespace
}  // namespace ickpt

// Stress the process-wide fault table: many regions, concurrent
// faulting across engines, publish/unpublish churn while other
// regions keep faulting.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "memtrack/mprotect_engine.h"

namespace ickpt::memtrack {
namespace {

TEST(FaultTableStressTest, ManyRegionsManyIntervals) {
  constexpr int kRegions = 64;
  constexpr std::size_t kPagesPerRegion = 16;
  MProtectEngine engine;
  std::vector<PageArena> arenas;
  arenas.reserve(kRegions);
  std::vector<RegionId> ids;
  for (int r = 0; r < kRegions; ++r) {
    arenas.emplace_back(kPagesPerRegion * page_size());
    arenas.back().prefault();
    auto id = engine.attach(arenas.back().span(),
                            "r" + std::to_string(r));
    ASSERT_TRUE(id.is_ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(engine.arm().is_ok());
  for (int interval = 0; interval < 10; ++interval) {
    for (int r = interval % 2; r < kRegions; r += 2) {
      auto pg = static_cast<std::size_t>(interval) % kPagesPerRegion;
      arenas[static_cast<std::size_t>(r)]
          .data()[pg * page_size()] = std::byte{1};
    }
    auto snap = engine.collect(true);
    ASSERT_TRUE(snap.is_ok());
    EXPECT_EQ(snap->dirty_pages(), kRegions / 2u) << "interval " << interval;
  }
}

TEST(FaultTableStressTest, ChurnWhileOthersFault) {
  // One stable region takes faults from a writer thread while the main
  // thread attaches/detaches scratch regions — exercising the seqlock
  // publish path against the lock-free handler reads.
  MProtectEngine engine;
  PageArena stable(256 * page_size());
  stable.prefault();
  auto stable_id = engine.attach(stable.span(), "stable");
  ASSERT_TRUE(stable_id.is_ok());
  ASSERT_TRUE(engine.arm().is_ok());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> writes{0};
  std::thread writer([&] {
    std::size_t p = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      stable.data()[p * page_size()] = std::byte{1};
      p = (p + 1) % 256;
      writes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (int i = 0; i < 200; ++i) {
    PageArena scratch(4 * page_size());
    scratch.prefault();
    auto id = engine.attach(scratch.span(), "scratch");
    ASSERT_TRUE(id.is_ok());
    scratch.data()[0] = std::byte{2};
    ASSERT_TRUE(engine.detach(*id).is_ok());
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(writes.load(), 0u);

  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  // The stable region's dirty pages survived the churn.
  EXPECT_GT(snap->dirty_pages(), 0u);
}

TEST(FaultTableStressTest, ConcurrentEnginesDoNotInterfere) {
  constexpr int kEngines = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int e = 0; e < kEngines; ++e) {
    threads.emplace_back([&failures] {
      MProtectEngine engine;
      PageArena arena(32 * page_size());
      arena.prefault();
      auto id = engine.attach(arena.span(), "own");
      if (!id.is_ok()) {
        ++failures;
        return;
      }
      for (int interval = 0; interval < 20; ++interval) {
        if (!engine.arm().is_ok()) {
          ++failures;
          return;
        }
        for (std::size_t p = 0; p < 32; p += 2) {
          arena.data()[p * page_size()] = std::byte{3};
        }
        auto snap = engine.collect(false);
        if (!snap.is_ok() || snap->dirty_pages() != 16) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace ickpt::memtrack

// Calibration tests: the proxy kernels must reproduce the paper's
// measured characteristics within tolerance.
//
//   Table 2: footprint max/avg
//   Table 3: main-iteration period, overwrite fraction
//   Table 4: avg/max incremental bandwidth at a 1 s timeslice
//
// Tolerances are deliberately looser for maxima (alignment-sensitive
// with few iterations) and for the two apps whose paper numbers are
// internally in tension with their own Table 3 (see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "analysis/period.h"
#include "apps/catalog.h"
#include "common/units.h"
#include "core/study.h"

namespace ickpt {
namespace {

constexpr double kScale = 1.0 / 16.0;

double mb(double bytes) { return bytes / static_cast<double>(kMB); }

StudyResult run_or_die(StudyConfig cfg) {
  auto r = run_study(cfg);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return std::move(r.value());
}

class CalibrationTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CalibrationTest, FootprintMatchesTable2) {
  StudyConfig cfg;
  cfg.app = GetParam();
  cfg.timeslice = 1.0;
  cfg.footprint_scale = kScale;
  auto r = run_or_die(cfg);
  auto t = apps::paper_targets(GetParam()).value();

  double max_mb = mb(r.footprint.max_bytes) / kScale;
  double avg_mb = mb(r.footprint.avg_bytes) / kScale;
  EXPECT_NEAR(max_mb, t.footprint_max_mb, 0.08 * t.footprint_max_mb)
      << "footprint max";
  EXPECT_NEAR(avg_mb, t.footprint_avg_mb, 0.10 * t.footprint_avg_mb)
      << "footprint avg";
}

TEST_P(CalibrationTest, AvgIBMatchesTable4) {
  StudyConfig cfg;
  cfg.app = GetParam();
  cfg.timeslice = 1.0;
  cfg.footprint_scale = kScale;
  auto r = run_or_die(cfg);
  auto t = apps::paper_targets(GetParam()).value();

  double avg = mb(r.ib.avg_ib) / kScale;
  // Sweep3D's paper maximum exceeds what its own Table 3 overwrite
  // fraction permits; our self-consistent proxy sits ~13% low on the
  // average (documented in EXPERIMENTS.md).
  double tol = GetParam() == "sweep3d" ? 0.20 : 0.15;
  EXPECT_NEAR(avg, t.avg_ib1_mb_s, tol * t.avg_ib1_mb_s);
}

TEST_P(CalibrationTest, MaxIBWithinTolerance) {
  StudyConfig cfg;
  cfg.app = GetParam();
  cfg.timeslice = 1.0;
  cfg.footprint_scale = kScale;
  cfg.run_vs = 0;  // auto
  auto r = run_or_die(cfg);
  auto t = apps::paper_targets(GetParam()).value();

  double max_ib = mb(r.ib.max_ib) / kScale;
  if (GetParam() == "sweep3d") {
    // Structural ceiling: see EXPERIMENTS.md.  Max must still exceed
    // the average and stay below the union bound per slice.
    EXPECT_GT(max_ib, 40.0);
    EXPECT_LT(max_ib, t.max_ib1_mb_s);
  } else {
    EXPECT_NEAR(max_ib, t.max_ib1_mb_s, 0.25 * t.max_ib1_mb_s);
  }
}

TEST_P(CalibrationTest, OverwriteFractionMatchesTable3) {
  // Sampling with timeslice == period makes each slice's IWS the
  // per-iteration union, i.e. Table 3's "Percent of Memory
  // Overwritten".
  auto t = apps::paper_targets(GetParam()).value();
  StudyConfig cfg;
  cfg.app = GetParam();
  cfg.timeslice = t.period_s;
  cfg.footprint_scale = kScale;
  cfg.run_vs = std::min(12.0 * t.period_s, 900.0);
  auto r = run_or_die(cfg);

  EXPECT_NEAR(r.ib.avg_ratio, t.overwrite_frac, 0.10)
      << "overwrite fraction per iteration";
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, CalibrationTest,
    ::testing::Values("sage-1000", "sage-500", "sage-100", "sage-50",
                      "sweep3d", "sp", "lu", "bt", "ft"),
    [](const auto& info) {
      std::string n = info.param;
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(CalibrationPeriodTest, DetectedPeriodsMatchTable3) {
  // Period detection from the IWS series (paper §6.2: the burst
  // structure identifies the main iteration).  Resolvable only when
  // the period spans multiple timeslices, so sample NAS apps finer.
  struct Case {
    const char* app;
    double timeslice;
  };
  for (const Case& c : {Case{"sage-50", 1.0}, Case{"sweep3d", 0.5},
                        Case{"ft", 0.1}, Case{"lu", 0.05}}) {
    auto t = apps::paper_targets(c.app).value();
    StudyConfig cfg;
    cfg.app = c.app;
    cfg.timeslice = c.timeslice;
    cfg.footprint_scale = 1.0 / 32.0;
    cfg.run_vs = std::min(10.0 * t.period_s, 250.0);
    auto r = run_or_die(cfg);

    auto est = analysis::detect_period(r.per_rank[0].iws_bytes_series(),
                                       c.timeslice);
    ASSERT_TRUE(est.found) << c.app;
    EXPECT_NEAR(est.period, t.period_s, 0.25 * t.period_s) << c.app;
  }
}

TEST(CalibrationDecayTest, IBDecaysWithTimeslice) {
  // Figure 2/3 shape: avg IB at tau=20 is far below avg IB at tau=1,
  // and IWS(tau) is non-decreasing in tau.
  for (const char* app : {"sage-100", "ft", "sp"}) {
    StudyConfig cfg;
    cfg.app = app;
    cfg.footprint_scale = kScale;

    cfg.timeslice = 1.0;
    auto r1 = run_or_die(cfg);
    cfg.timeslice = 20.0;
    auto r20 = run_or_die(cfg);

    EXPECT_LT(r20.ib.avg_ib, 0.45 * r1.ib.avg_ib) << app;
    EXPECT_GE(r20.ib.avg_iws, 0.95 * r1.ib.avg_iws) << app;
  }
}

}  // namespace
}  // namespace ickpt

#include "common/log.h"

#include <gtest/gtest.h>

namespace ickpt {
namespace {

TEST(LogTest, DefaultLevelIsWarn) {
  // Note: other tests may have altered the level; set explicitly.
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(LogTest, SetAndGetRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
  set_log_level(LogLevel::kWarn);
}

TEST(LogTest, MacroRespectsLevel) {
  // Below-threshold messages must not evaluate their stream arguments.
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "payload";
  };
  ICKPT_LOG(kDebug) << expensive();
  ICKPT_LOG(kInfo) << expensive();
  EXPECT_EQ(evaluations, 0);
  ICKPT_LOG(kError) << "error path runs (" << expensive() << ")";
  EXPECT_EQ(evaluations, 1);
  set_log_level(LogLevel::kWarn);
}

TEST(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 0;
  };
  ICKPT_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::kWarn);
}

}  // namespace
}  // namespace ickpt

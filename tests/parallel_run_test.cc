// Coordinated parallel recoverable execution: global commits, crash
// mid-run, world-consistent resume.
#include "core/parallel_run.h"

#include <gtest/gtest.h>

#include <array>

#include <cstring>

#include "storage/backend.h"

namespace ickpt {
namespace {

/// Each rank owns a counter block; each step adds (rank+1).  One
/// CounterBody is shared by all rank threads, so the spans are held
/// per rank.
struct CounterBody {
  std::array<std::span<std::byte>, 8> mems;
  int crash_rank = -1;   ///< rank that fails...
  int crash_step = -1;   ///< ...at this step

  std::span<std::byte> mem(int rank) const {
    return mems[static_cast<std::size_t>(rank)];
  }

  Status operator()(RankContext& ctx, bool declare, int step) {
    auto rank = static_cast<std::size_t>(ctx.comm.rank());
    if (declare) {
      auto block = ctx.run.add_block(page_size(), "counter");
      if (!block.is_ok()) return block.status();
      mems[rank] = *block;
      return Status::ok();
    }
    if (ctx.comm.rank() == crash_rank && step == crash_step) {
      return internal_error("injected failure");
    }
    auto* v = reinterpret_cast<std::uint64_t*>(mems[rank].data());
    *v += static_cast<std::uint64_t>(ctx.comm.rank() + 1);
    return Status::ok();
  }
};

TEST(ParallelRunTest, CleanRunCommitsEveryStep) {
  auto storage = storage::make_memory_backend();
  ParallelRunOptions opts;
  opts.nprocs = 3;
  opts.total_steps = 6;
  opts.checkpoint_every = 1;
  CounterBody body;
  auto r = run_parallel_recoverable(
      *storage, opts,
      [&body](RankContext& ctx, bool declare, int step) {
        return body(ctx, declare, step);
      });
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r->first_step, 0);
  EXPECT_EQ(r->committed_steps, 6);
}

TEST(ParallelRunTest, CrashThenResumeCompletesConsistently) {
  auto storage = storage::make_memory_backend();
  ParallelRunOptions opts;
  opts.nprocs = 2;
  opts.total_steps = 10;
  opts.checkpoint_every = 2;

  // Phase 1: rank 1 dies at step 7 (last commit was after step 5).
  {
    CounterBody body;
    body.crash_rank = 1;
    body.crash_step = 7;
    auto r = run_parallel_recoverable(
        *storage, opts,
        [&body](RankContext& ctx, bool declare, int step) {
          return body(ctx, declare, step);
        });
    EXPECT_FALSE(r.is_ok());
  }

  // Phase 2: restart resumes from step 6 on *both* ranks (committed
  // line), reruns 6..9, and finishes.
  {
    CounterBody body;
    auto r = run_parallel_recoverable(
        *storage, opts,
        [&body](RankContext& ctx, bool declare, int step) {
          return body(ctx, declare, step);
        });
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    EXPECT_EQ(r->first_step, 6);
    EXPECT_EQ(r->committed_steps, 10);
  }

  // Phase 3: one more restart just verifies the final counters:
  // exactly total_steps * (rank+1) per rank — each step applied once.
  {
    ParallelRunOptions verify = opts;
    verify.total_steps = 10;  // nothing left to do
    std::vector<std::uint64_t> finals(2, 0);
    CounterBody body;
    auto r = run_parallel_recoverable(
        *storage, verify,
        [&body, &finals](RankContext& ctx, bool declare, int step) {
          Status st = body(ctx, declare, step);
          if (declare) {
            finals[static_cast<std::size_t>(ctx.comm.rank())] = 0;
          }
          return st;
        });
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r->first_step, 10);  // fully complete: no steps run
  }
}

TEST(ParallelRunTest, FinalStateIsExact) {
  auto storage = storage::make_memory_backend();
  ParallelRunOptions opts;
  opts.nprocs = 2;
  opts.total_steps = 8;
  opts.checkpoint_every = 2;

  // Crash at step 5 (commit line after step 3), then finish.
  {
    CounterBody body;
    body.crash_rank = 0;
    body.crash_step = 5;
    (void)run_parallel_recoverable(
        *storage, opts,
        [&body](RankContext& ctx, bool declare, int step) {
          return body(ctx, declare, step);
        });
  }
  std::vector<std::uint64_t> finals(2, 0);
  {
    CounterBody body;
    auto r = run_parallel_recoverable(
        *storage, opts,
        [&body, &finals](RankContext& ctx, bool declare, int step) {
          Status st = body(ctx, declare, step);
          if (!declare && step == 7) {
            finals[static_cast<std::size_t>(ctx.comm.rank())] =
                *reinterpret_cast<std::uint64_t*>(
                    body.mem(ctx.comm.rank()).data());
          }
          return st;
        });
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  }
  // Each of the 8 steps applied exactly once per rank.
  EXPECT_EQ(finals[0], 8u * 1u);
  EXPECT_EQ(finals[1], 8u * 2u);
}

TEST(ParallelRunTest, RejectsBadOptions) {
  auto storage = storage::make_memory_backend();
  ParallelRunOptions opts;
  opts.nprocs = 0;
  EXPECT_FALSE(run_parallel_recoverable(
                   *storage, opts,
                   [](RankContext&, bool, int) { return Status::ok(); })
                   .is_ok());
  opts.nprocs = 1;
  opts.checkpoint_every = 0;
  EXPECT_FALSE(run_parallel_recoverable(
                   *storage, opts,
                   [](RankContext&, bool, int) { return Status::ok(); })
                   .is_ok());
}

}  // namespace
}  // namespace ickpt

// SegmentBackend-specific behavior: reopen persistence (footer fast
// path and unsealed-scan path), torn-tail truncation, tombstone
// durability, compaction correctness, and byte-equivalence of a full
// checkpoint/restore chain against FileBackend (the oracle).
#include "storage/segment_backend.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "checkpoint/checkpointer.h"
#include "checkpoint/inspect.h"
#include "checkpoint/restore.h"
#include "common/page.h"
#include "common/rng.h"
#include "memtrack/explicit_engine.h"
#include "region/address_space.h"
#include "storage/backend.h"

namespace ickpt::storage {
namespace {

namespace fs = std::filesystem;

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string read_all(StorageBackend& backend, const std::string& key) {
  auto reader = backend.open(key);
  if (!reader.is_ok()) return "<open failed>";
  std::string out;
  std::byte buf[256];
  for (;;) {
    auto got = (*reader)->read(buf);
    if (!got.is_ok() || *got == 0) break;
    out.append(reinterpret_cast<const char*>(buf), *got);
  }
  return out;
}

void put(StorageBackend& backend, const std::string& key,
         const std::string& value) {
  auto w = backend.create(key);
  ASSERT_TRUE(w.is_ok()) << w.status().message();
  ASSERT_TRUE((*w)->write(as_bytes(value)).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());
}

class SegmentBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ickpt_segment_test_" +
           std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  Result<std::unique_ptr<SegmentBackend>> open(
      SegmentBackendOptions options = {}) {
    return SegmentBackend::open_store(dir_, options);
  }

  std::vector<fs::path> segment_files() const {
    std::vector<fs::path> out;
    for (const auto& e : fs::directory_iterator(dir_)) {
      if (e.path().extension() == ".seg") out.push_back(e.path());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::string dir_;
};

TEST_F(SegmentBackendTest, SurvivesReopenViaFooter) {
  {
    auto b = open();
    ASSERT_TRUE(b.is_ok()) << b.status().message();
    put(**b, "alpha", "first object");
    put(**b, "beta", "second object");
    put(**b, "alpha", "first object, rewritten");
    // Destructor seals the active segment with a footer.
  }
  auto b = open();
  ASSERT_TRUE(b.is_ok()) << b.status().message();
  EXPECT_EQ(read_all(**b, "alpha"), "first object, rewritten");
  EXPECT_EQ(read_all(**b, "beta"), "second object");
  EXPECT_EQ((*b)->stats().live_objects, 2u);
  EXPECT_EQ((*b)->stats().torn_records, 0u);
}

TEST_F(SegmentBackendTest, SurvivesReopenWithoutFooter) {
  {
    auto b = open();
    ASSERT_TRUE(b.is_ok());
    put(**b, "k1", "payload one");
    put(**b, "k2", "payload two");
  }
  // Chop the footer off so the reopen has to take the scan path —
  // exactly the state a crash before seal leaves behind.
  auto segs = segment_files();
  ASSERT_EQ(segs.size(), 1u);
  const auto size = fs::file_size(segs[0]);
  // Footer = entries block + 24-byte trailer; records for two short
  // objects are well under size-100, so removing 100 bytes is enough
  // to destroy the trailer without touching the records... compute
  // exactly instead: both records fit in the front; drop the last
  // trailer-sized chunk plus entries (2 entries ~ 25+2 and 25+2).
  ASSERT_GT(size, 78u);
  fs::resize_file(segs[0], size - 78);
  auto b = open();
  ASSERT_TRUE(b.is_ok()) << b.status().message();
  EXPECT_EQ(read_all(**b, "k1"), "payload one");
  EXPECT_EQ(read_all(**b, "k2"), "payload two");
}

TEST_F(SegmentBackendTest, TornTailIsDroppedNotFatal) {
  {
    auto b = open();
    ASSERT_TRUE(b.is_ok());
    put(**b, "good", "committed before the crash");
  }
  // Simulate a torn append: garbage bytes after the sealed content.
  auto segs = segment_files();
  ASSERT_EQ(segs.size(), 1u);
  // First remove the footer so the scan path runs, then add garbage.
  {
    std::ofstream f(segs[0], std::ios::binary | std::ios::app);
    f.write("ISEG garbage that is not a valid record header at all", 53);
  }
  auto b = open();
  ASSERT_TRUE(b.is_ok()) << b.status().message();
  EXPECT_EQ(read_all(**b, "good"), "committed before the crash");
  EXPECT_EQ((*b)->stats().live_objects, 1u);
}

TEST_F(SegmentBackendTest, HalfWrittenRecordIsInvisible) {
  {
    auto b = open();
    ASSERT_TRUE(b.is_ok());
    put(**b, "whole", std::string(1000, 'w'));
  }
  auto segs = segment_files();
  ASSERT_EQ(segs.size(), 1u);
  {
    // Append the first half of what a real record would look like:
    // a valid-magic header claiming a large payload that never lands.
    std::ofstream f(segs[0], std::ios::binary | std::ios::app);
    const char header[28] = {'I', 'S', 'E', 'G', 1, 0, 0, 0, 4, 0, 0, 0};
    f.write(header, sizeof header);
    f.write("torn", 4);
  }
  auto b = open();
  ASSERT_TRUE(b.is_ok()) << b.status().message();
  EXPECT_EQ((*b)->stats().live_objects, 1u);
  EXPECT_EQ(read_all(**b, "whole"), std::string(1000, 'w'));
  EXPECT_FALSE((*b)->exists("torn"));
}

TEST_F(SegmentBackendTest, TombstoneSurvivesReopen) {
  {
    auto b = open();
    ASSERT_TRUE(b.is_ok());
    put(**b, "doomed", "to be deleted");
    put(**b, "kept", "stays");
    ASSERT_TRUE((*b)->remove("doomed").is_ok());
  }
  auto b = open();
  ASSERT_TRUE(b.is_ok());
  EXPECT_FALSE((*b)->exists("doomed"));
  EXPECT_EQ(read_all(**b, "kept"), "stays");
}

TEST_F(SegmentBackendTest, RollsSegmentsAtConfiguredSize) {
  SegmentBackendOptions opt;
  opt.segment_bytes = 4 << 10;
  auto b = open(opt);
  ASSERT_TRUE(b.is_ok());
  const std::string blob(1 << 10, 'x');
  for (int i = 0; i < 20; ++i) {
    put(**b, "obj-" + std::to_string(i), blob);
  }
  EXPECT_GT((*b)->stats().segments, 2u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(read_all(**b, "obj-" + std::to_string(i)), blob);
  }
  // Everything still there after a reopen across many segments.
  b->reset();
  auto b2 = open(opt);
  ASSERT_TRUE(b2.is_ok());
  EXPECT_EQ((*b2)->stats().live_objects, 20u);
  EXPECT_EQ(read_all(**b2, "obj-7"), blob);
}

TEST_F(SegmentBackendTest, CompactReclaimsDeadSegments) {
  SegmentBackendOptions opt;
  opt.segment_bytes = 4 << 10;
  auto b = open(opt);
  ASSERT_TRUE(b.is_ok());
  const std::string blob(1 << 10, 'y');
  // Fill several segments, then overwrite every key so the early
  // segments become fully dead.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 12; ++i) {
      put(**b, "obj-" + std::to_string(i), blob);
    }
  }
  const auto before = (*b)->stats();
  ASSERT_TRUE((*b)->compact().is_ok());
  const auto after = (*b)->stats();
  EXPECT_LT(after.disk_bytes, before.disk_bytes);
  EXPECT_EQ(after.live_objects, 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(read_all(**b, "obj-" + std::to_string(i)), blob);
  }
  // Idempotent: a second pass is a no-op that changes nothing.
  ASSERT_TRUE((*b)->compact().is_ok());
  EXPECT_EQ((*b)->stats().live_objects, 12u);
  // And the compacted store reopens intact.
  b->reset();
  auto b2 = open(opt);
  ASSERT_TRUE(b2.is_ok());
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(read_all(**b2, "obj-" + std::to_string(i)), blob);
  }
}

TEST_F(SegmentBackendTest, CompactDoesNotResurrectDeletedKeys) {
  SegmentBackendOptions opt;
  opt.segment_bytes = 2 << 10;
  {
    auto b = open(opt);
    ASSERT_TRUE(b.is_ok());
    // Object lands in segment 0; pad until it rolls; the tombstone
    // then lands in a later segment.
    put(**b, "zombie", std::string(512, 'z'));
    put(**b, "pad-a", std::string(1600, 'p'));
    put(**b, "pad-b", std::string(1600, 'p'));
    ASSERT_TRUE((*b)->remove("zombie").is_ok());
    // Overwrite the pads so their old segments go mostly-dead and the
    // tombstone's segment is a compaction candidate.
    put(**b, "pad-a", std::string(1600, 'q'));
    put(**b, "pad-b", std::string(1600, 'q'));
    ASSERT_TRUE((*b)->compact().is_ok());
    EXPECT_FALSE((*b)->exists("zombie"));
  }
  // The dangerous moment: rebuild from what compaction left behind.
  auto b = open(opt);
  ASSERT_TRUE(b.is_ok());
  EXPECT_FALSE((*b)->exists("zombie"));
  EXPECT_EQ(read_all(**b, "pad-a"), std::string(1600, 'q'));
}

TEST_F(SegmentBackendTest, ReadAtAndMapAtServeRanges) {
  auto b = open();
  ASSERT_TRUE(b.is_ok());
  std::string blob(100000, '\0');
  std::mt19937 rng(42);
  for (auto& c : blob) c = static_cast<char>(rng());
  put(**b, "blob", blob);

  auto r = (*b)->open("blob");
  ASSERT_TRUE(r.is_ok());
  ASSERT_TRUE((*r)->supports_read_at());
  ASSERT_TRUE((*r)->supports_map());
  EXPECT_EQ((*r)->size(), blob.size());

  std::byte buf[1000];
  auto got = (*r)->read_at(40000, buf);
  ASSERT_TRUE(got.is_ok());
  ASSERT_EQ(*got, sizeof buf);
  EXPECT_EQ(std::memcmp(buf, blob.data() + 40000, sizeof buf), 0);

  auto span = (*r)->map_at(65000, 2000);
  ASSERT_TRUE(span.is_ok()) << span.status().message();
  ASSERT_EQ(span->size(), 2000u);
  EXPECT_EQ(std::memcmp(span->data(), blob.data() + 65000, 2000), 0);

  // Past-EOF map is corruption, same contract as FileReader.
  EXPECT_FALSE((*r)->map_at(99999, 2).is_ok());
}

TEST_F(SegmentBackendTest, ReadersSurviveCompactionOfTheirSegment) {
  SegmentBackendOptions opt;
  opt.segment_bytes = 1 << 10;
  auto b = open(opt);
  ASSERT_TRUE(b.is_ok());
  put(**b, "pinned", std::string(700, 'p'));
  auto r = (*b)->open("pinned");
  ASSERT_TRUE(r.is_ok());
  // Make the pinned object's segment mostly dead, then compact: the
  // file is unlinked but the open reader holds the inode via its fd.
  put(**b, "pinned", std::string(700, 'P'));
  put(**b, "filler", std::string(700, 'f'));
  ASSERT_TRUE((*b)->compact().is_ok());
  std::byte buf[700];
  auto got = (*r)->read_at(0, buf);
  ASSERT_TRUE(got.is_ok());
  ASSERT_EQ(*got, sizeof buf);
  EXPECT_EQ(std::memcmp(buf, std::string(700, 'p').data(), sizeof buf), 0);
  // The fresh copy reads the new content.
  EXPECT_EQ(read_all(**b, "pinned"), std::string(700, 'P'));
}

TEST_F(SegmentBackendTest, SegmentStorePresentDetects) {
  EXPECT_FALSE(segment_store_present(dir_));
  {
    auto b = open();
    ASSERT_TRUE(b.is_ok());
    put(**b, "k", "v");
  }
  EXPECT_TRUE(segment_store_present(dir_));
}

/// One rank's synthetic workload (same shape as net_remote_test's
/// harness): driven with fixed seeds, two instances produce
/// byte-identical chains, which makes FileBackend a byte-identity
/// oracle for SegmentBackend.
class ChainHarness {
 public:
  explicit ChainHarness(StorageBackend* store)
      : space_(engine_, "rank0"),
        ckpt_(checkpoint::Checkpointer::create(space_, store).value()) {}

  void build_chain() {
    auto a = space_.map(8 * page_size(), region::AreaKind::kHeap, "a");
    auto b = space_.map(4 * page_size(), region::AreaKind::kHeap, "b");
    ASSERT_TRUE(a.is_ok() && b.is_ok());
    fill_pattern(a->mem, 101);
    fill_pattern(b->mem, 202);
    ASSERT_TRUE(ckpt_->checkpoint_full(1.0).is_ok());
    for (int step = 0; step < 4; ++step) {
      Rng rng(1000 + static_cast<std::uint64_t>(step));
      for (int t = 0; t < 3; ++t) {
        auto mem = (t % 2 == 0) ? a->mem : b->mem;
        const std::size_t pages = mem.size() / page_size();
        auto page =
            mem.subspan(rng.next_index(pages) * page_size(), page_size());
        fill_pattern(page, 5000 + static_cast<std::uint64_t>(step * 3 + t));
        engine_.note_write(page.data(), page.size());
      }
      auto snap = engine_.collect(true);
      ASSERT_TRUE(snap.is_ok());
      ASSERT_TRUE(ckpt_->checkpoint_incremental(*snap, 2.0 + step).is_ok());
    }
  }

 private:
  static void fill_pattern(std::span<std::byte> mem, std::uint64_t seed) {
    Rng rng(seed);
    for (std::size_t i = 0; i < mem.size(); i += 8) {
      std::uint64_t v = rng.next_u64();
      std::memcpy(mem.data() + i, &v,
                  std::min<std::size_t>(8, mem.size() - i));
    }
  }

  memtrack::ExplicitEngine engine_;
  region::AddressSpace space_;
  std::unique_ptr<checkpoint::Checkpointer> ckpt_;
};

// The acceptance bar: a full incremental checkpoint chain written
// through Checkpointer restores byte-identically from SegmentBackend
// and FileBackend, and inspect_store (fsck's engine) sees a healthy
// segment store.
TEST_F(SegmentBackendTest, CheckpointChainMatchesFileBackendByteForByte) {
  const std::string file_dir = dir_ + "_file";
  fs::remove_all(file_dir);
  auto file_backend = make_file_backend(file_dir);
  ASSERT_TRUE(file_backend.is_ok());
  auto seg_backend = make_segment_backend(dir_);
  ASSERT_TRUE(seg_backend.is_ok());

  {
    ChainHarness file_rank(file_backend->get());
    file_rank.build_chain();
  }
  {
    ChainHarness seg_rank(seg_backend->get());
    seg_rank.build_chain();
  }

  // Same keys, and every object byte-identical across backends.
  auto file_keys = (*file_backend)->list();
  auto seg_keys = (*seg_backend)->list();
  ASSERT_TRUE(file_keys.is_ok());
  ASSERT_TRUE(seg_keys.is_ok());
  std::sort(file_keys->begin(), file_keys->end());
  std::sort(seg_keys->begin(), seg_keys->end());
  ASSERT_EQ(*file_keys, *seg_keys);
  ASSERT_EQ(seg_keys->size(), 5u);  // 1 full + 4 incrementals
  for (const auto& key : *file_keys) {
    EXPECT_EQ(read_all(**file_backend, key), read_all(**seg_backend, key))
        << "object " << key << " differs between backends";
  }

  // Restore from the segment store equals restore from the file
  // store, block for block.
  auto via_seg = checkpoint::restore_chain(**seg_backend, 0);
  auto via_file = checkpoint::restore_chain(**file_backend, 0);
  ASSERT_TRUE(via_seg.is_ok()) << via_seg.status().message();
  ASSERT_TRUE(via_file.is_ok());
  EXPECT_EQ(via_seg->sequence, via_file->sequence);
  ASSERT_EQ(via_seg->blocks.size(), via_file->blocks.size());
  auto ia = via_seg->blocks.begin();
  auto ib = via_file->blocks.begin();
  for (; ia != via_seg->blocks.end(); ++ia, ++ib) {
    ASSERT_EQ(ia->second.data.size(), ib->second.data.size());
    EXPECT_EQ(0, std::memcmp(ia->second.data.data(), ib->second.data.data(),
                             ia->second.data.size()))
        << "restored block " << ia->first;
  }

  // fsck's engine runs unchanged over the segment store — and still
  // does after a reopen (footer-rebuilt index) and a compaction.
  auto report = checkpoint::inspect_store(**seg_backend);
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  EXPECT_TRUE(report->healthy());

  seg_backend->reset();
  auto reopened = SegmentBackend::open_store(dir_, {});
  ASSERT_TRUE(reopened.is_ok());
  ASSERT_TRUE((*reopened)->compact().is_ok());
  auto report2 = checkpoint::inspect_store(**reopened);
  ASSERT_TRUE(report2.is_ok());
  EXPECT_TRUE(report2->healthy());

  fs::remove_all(file_dir);
}

// Reopen with durable=false still round-trips (sync() forces the tail).
TEST_F(SegmentBackendTest, NonDurableModeSyncsOnDemand) {
  SegmentBackendOptions opt;
  opt.durable = false;
  auto b = open(opt);
  ASSERT_TRUE(b.is_ok());
  put(**b, "lazy", "written without per-commit fsync");
  ASSERT_TRUE((*b)->sync().is_ok());
  EXPECT_EQ(read_all(**b, "lazy"), "written without per-commit fsync");
}

}  // namespace
}  // namespace ickpt::storage

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <vector>

namespace ickpt {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrently) {
  ThreadPool pool(2);
  // Two tasks that each wait for the other: only completes if both
  // run at the same time.
  std::atomic<int> arrived{0};
  auto rendezvous = [&arrived] {
    arrived.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (arrived.load() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  };
  pool.submit(rendezvous);
  pool.submit(rendezvous);
  pool.wait_idle();
  EXPECT_EQ(arrived.load(), 2);
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    // No wait_idle: the destructor must finish the queue.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, PerTaskFuturesOrderResults) {
  // The checkpointer's pattern: promise per task, consumed in submit
  // order while workers complete out of order.
  ThreadPool pool(4);
  std::vector<int> results(64, -1);
  std::vector<std::future<void>> done;
  done.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    auto promise = std::make_shared<std::promise<void>>();
    done.push_back(promise->get_future());
    pool.submit([&results, i, promise] {
      results[i] = static_cast<int>(i);
      promise->set_value();
    });
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    done[i].wait();
    EXPECT_EQ(results[i], static_cast<int>(i));
  }
}

}  // namespace
}  // namespace ickpt

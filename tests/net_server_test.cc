// ickptd server tests: full round trips through RemoteBackend against
// a live in-process epoll server, plus raw-socket abuse — protocol
// negatives, client drops mid-PUT, backpressure and idle timeouts.
#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "common/io_util.h"
#include "common/rng.h"
#include "net/remote_backend.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "storage/backend.h"

namespace ickpt::net {
namespace {

using namespace std::chrono_literals;

std::vector<std::byte> pattern_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next_index(256));
  return out;
}

/// Spin until `pred` holds or ~2s pass.
template <typename Pred>
bool eventually(Pred&& pred) {
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

/// A hand-driven blocking client for protocol-abuse tests.
class RawClient {
 public:
  ~RawClient() { close(); }

  bool connect_to(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    timeval tv{5, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr) == 0;
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  Status send_raw(std::span<const std::byte> bytes) {
    return ioutil::write_full(fd_, bytes);
  }

  Status send_frame(Verb verb, std::span<const std::byte> payload) {
    return send_raw(build_frame(verb, payload));
  }

  struct Frame {
    FrameHeader header;
    std::vector<std::byte> payload;
  };

  Result<Frame> recv_frame() {
    std::byte hdr[kFrameHeaderSize];
    ICKPT_ASSIGN_OR_RETURN(got, ioutil::read_full(fd_, hdr));
    if (got < kFrameHeaderSize) return io_error("connection closed");
    ICKPT_ASSIGN_OR_RETURN(
        header, decode_frame_header(
                    std::span<const std::byte, kFrameHeaderSize>(hdr)));
    Frame frame;
    frame.header = header;
    frame.payload.resize(header.len);
    if (header.len > 0) {
      ICKPT_ASSIGN_OR_RETURN(body, ioutil::read_full(fd_, frame.payload));
      if (body < frame.payload.size()) return io_error("closed mid-frame");
    }
    return frame;
  }

  /// True when the server closed the connection (clean EOF or reset).
  bool at_eof() {
    std::byte b;
    const ssize_t got = ::read(fd_, &b, 1);
    return got == 0 || (got < 0 && errno == ECONNRESET);
  }

  Status hello(const std::string& tenant = "t") {
    ICKPT_RETURN_IF_ERROR(
        send_frame(Verb::kHello, build_hello({kWireVersion, tenant})));
    ICKPT_ASSIGN_OR_RETURN(reply, recv_frame());
    if (reply.header.verb != Verb::kHelloOk) {
      return internal_error("expected HELLO_OK");
    }
    return Status::ok();
  }

 private:
  int fd_ = -1;
};

class NetServerTest : public ::testing::Test {
 protected:
  void start(ServerOptions options = {}) {
    backend_ = storage::make_memory_backend();
    auto server = Server::create(*backend_, options);
    ASSERT_TRUE(server.is_ok()) << server.status().message();
    server_ = std::move(server.value());
    serve_thread_ = std::thread([this] { serve_status_ = server_->serve(); });
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->stop();
      serve_thread_.join();
      EXPECT_TRUE(serve_status_.is_ok()) << serve_status_.message();
    }
  }

  storage::RemoteBackendOptions remote_options(
      const std::string& tenant = "t") {
    storage::RemoteBackendOptions options;
    options.host = "127.0.0.1";
    options.port = server_->port();
    options.tenant = tenant;
    options.io_timeout_s = 5.0;
    return options;
  }

  std::unique_ptr<storage::StorageBackend> backend_;
  std::unique_ptr<Server> server_;
  std::thread serve_thread_;
  Status serve_status_;
};

TEST_F(NetServerTest, PutGetRoundTripAcrossChunks) {
  start();
  auto remote = storage::make_remote_backend(remote_options());
  ASSERT_TRUE(remote.is_ok()) << remote.status().message();
  auto& store = **remote;

  // 1 MiB exercises PUT_DATA and DATA chunking in both directions.
  const auto payload = pattern_bytes(1u << 20, 1);
  {
    auto writer = store.create("rank0/ckpt-1");
    ASSERT_TRUE(writer.is_ok()) << writer.status().message();
    // Uneven slices so frame boundaries never line up with chunk size.
    std::span<const std::byte> rest(payload);
    while (!rest.empty()) {
      const std::size_t n = std::min<std::size_t>(rest.size(), 300001);
      ASSERT_TRUE((*writer)->write(rest.first(n)).is_ok());
      rest = rest.subspan(n);
    }
    EXPECT_EQ((*writer)->bytes_written(), payload.size());
    ASSERT_TRUE((*writer)->close().is_ok());
  }

  EXPECT_TRUE(store.exists("rank0/ckpt-1"));
  EXPECT_EQ(store.total_bytes_stored(), payload.size());
  auto listed = store.list();
  ASSERT_TRUE(listed.is_ok());
  EXPECT_EQ(*listed, std::vector<std::string>{"rank0/ckpt-1"});

  // Server-side, the object lives under the tenant prefix.
  auto raw_listed = backend_->list();
  ASSERT_TRUE(raw_listed.is_ok());
  EXPECT_EQ(*raw_listed, std::vector<std::string>{"tenant/t/rank0/ckpt-1"});

  auto reader = store.open("rank0/ckpt-1");
  ASSERT_TRUE(reader.is_ok()) << reader.status().message();
  EXPECT_EQ((*reader)->size(), payload.size());
  EXPECT_TRUE((*reader)->supports_read_at());

  // Sequential read in odd-sized slices.
  std::vector<std::byte> got(payload.size());
  std::size_t pos = 0;
  for (;;) {
    const std::size_t want =
        std::min<std::size_t>(got.size() - pos + 17, 123457);
    std::vector<std::byte> chunk(want);
    auto n = (*reader)->read(chunk);
    ASSERT_TRUE(n.is_ok()) << n.status().message();
    if (*n == 0) break;
    ASSERT_LE(pos + *n, got.size());
    std::memcpy(got.data() + pos, chunk.data(), *n);
    pos += *n;
  }
  EXPECT_EQ(pos, payload.size());
  EXPECT_EQ(got, payload);

  // Ranged reads: cross-chunk, tail, and past-EOF.
  std::vector<std::byte> range(300000);
  auto n = (*reader)->read_at(200000, range);
  ASSERT_TRUE(n.is_ok());
  ASSERT_EQ(*n, range.size());
  EXPECT_EQ(0, std::memcmp(range.data(), payload.data() + 200000, *n));

  n = (*reader)->read_at(payload.size() - 5, range);
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(*n, 5u);

  n = (*reader)->read_at(payload.size() + 7, range);
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(*n, 0u);

  ASSERT_TRUE(store.remove("rank0/ckpt-1").is_ok());
  EXPECT_FALSE(store.exists("rank0/ckpt-1"));
  EXPECT_EQ(store.open("rank0/ckpt-1").status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(store.remove("rank0/ckpt-1").code(), ErrorCode::kNotFound);
}

TEST_F(NetServerTest, WriterDestroyedUncloseDiscardsObject) {
  start();
  auto remote = storage::make_remote_backend(remote_options());
  ASSERT_TRUE(remote.is_ok());
  auto& store = **remote;

  {
    auto writer = store.create("doomed");
    ASSERT_TRUE(writer.is_ok());
    ASSERT_TRUE((*writer)->write(pattern_bytes(100000, 2)).is_ok());
    // Falls out of scope unclosed: PUT_ABORT, never visible.
  }
  EXPECT_FALSE(store.exists("doomed"));
  auto raw_listed = backend_->list();
  ASSERT_TRUE(raw_listed.is_ok());
  EXPECT_TRUE(raw_listed->empty());
  EXPECT_EQ(store.total_bytes_stored(), 0u);
}

TEST_F(NetServerTest, ClientDropMidPutNeverPublishes) {
  start();
  RawClient client;
  ASSERT_TRUE(client.connect_to(server_->port()));
  ASSERT_TRUE(client.hello().is_ok());
  ASSERT_TRUE(
      client.send_frame(Verb::kPutBegin, build_key_only("torn")).is_ok());
  const auto chunk = pattern_bytes(64 * 1024, 3);
  ASSERT_TRUE(client.send_frame(Verb::kPutData, chunk).is_ok());
  client.close();  // vanish without PUT_END

  ASSERT_TRUE(eventually([&] { return server_->open_connections() == 0; }));
  auto listed = backend_->list();
  ASSERT_TRUE(listed.is_ok());
  EXPECT_TRUE(listed->empty());
}

TEST_F(NetServerTest, TenantsAreIsolated) {
  start();
  auto a = storage::make_remote_backend(remote_options("alpha"));
  auto b = storage::make_remote_backend(remote_options("beta"));
  ASSERT_TRUE(a.is_ok() && b.is_ok());

  const auto bytes_a = pattern_bytes(1000, 4);
  const auto bytes_b = pattern_bytes(2000, 5);
  for (auto [store, bytes] : {std::pair{&**a, &bytes_a}, {&**b, &bytes_b}}) {
    auto writer = store->create("shared-key");
    ASSERT_TRUE(writer.is_ok());
    ASSERT_TRUE((*writer)->write(*bytes).is_ok());
    ASSERT_TRUE((*writer)->close().is_ok());
  }

  for (auto [store, bytes] : {std::pair{&**a, &bytes_a}, {&**b, &bytes_b}}) {
    auto listed = store->list();
    ASSERT_TRUE(listed.is_ok());
    EXPECT_EQ(*listed, std::vector<std::string>{"shared-key"});
    auto reader = store->open("shared-key");
    ASSERT_TRUE(reader.is_ok());
    ASSERT_EQ((*reader)->size(), bytes->size());
    std::vector<std::byte> got(bytes->size());
    auto n = (*reader)->read(got);
    ASSERT_TRUE(n.is_ok());
    EXPECT_EQ(*n, bytes->size());
    EXPECT_EQ(got, *bytes);
  }

  // Deleting in one tenant leaves the other's object alone.
  ASSERT_TRUE((*a)->remove("shared-key").is_ok());
  EXPECT_FALSE((*a)->exists("shared-key"));
  EXPECT_TRUE((*b)->exists("shared-key"));
}

TEST_F(NetServerTest, ProtocolNegativesCountAndClose) {
  start();
  auto& errors = obs::registry().counter("net.protocol_errors");

  struct Case {
    const char* name;
    ErrorCode want;
    std::function<void(RawClient&)> drive;
  };
  const Case cases[] = {
      {"verb before HELLO", ErrorCode::kFailedPrecondition,
       [](RawClient& c) {
         ASSERT_TRUE(c.send_frame(Verb::kList, {}).is_ok());
       }},
      {"HELLO version mismatch", ErrorCode::kFailedPrecondition,
       [](RawClient& c) {
         ASSERT_TRUE(c.send_frame(Verb::kHello,
                                  build_hello({kWireVersion + 1, "t"}))
                         .is_ok());
       }},
      {"bad tenant", ErrorCode::kInvalidArgument,
       [](RawClient& c) {
         ASSERT_TRUE(c.send_frame(Verb::kHello,
                                  build_hello({kWireVersion, "a/b"}))
                         .is_ok());
       }},
      {"unknown verb", ErrorCode::kInvalidArgument,
       [](RawClient& c) {
         FrameHeader h;
         h.len = 0;
         h.verb = Verb::kOk;
         std::vector<std::byte> hdr(kFrameHeaderSize);
         encode_frame_header(h, std::span<std::byte, kFrameHeaderSize>(
                                    hdr.data(), hdr.size()));
         hdr[4] = std::byte{0xEE};
         ASSERT_TRUE(c.send_raw(hdr).is_ok());
       }},
      {"oversized length prefix", ErrorCode::kInvalidArgument,
       [](RawClient& c) {
         std::vector<std::byte> hdr(kFrameHeaderSize, std::byte{0xFF});
         ASSERT_TRUE(c.send_raw(hdr).is_ok());
       }},
      {"PUT_DATA without PUT_BEGIN", ErrorCode::kFailedPrecondition,
       [](RawClient& c) {
         ASSERT_TRUE(c.hello().is_ok());
         ASSERT_TRUE(
             c.send_frame(Verb::kPutData, pattern_bytes(16, 6)).is_ok());
       }},
      {"traversal key", ErrorCode::kInvalidArgument,
       [](RawClient& c) {
         ASSERT_TRUE(c.hello().is_ok());
         ASSERT_TRUE(c.send_frame(Verb::kPutBegin,
                                  build_key_only("../escape"))
                         .is_ok());
       }},
      {"response verb sent to server", ErrorCode::kInvalidArgument,
       [](RawClient& c) {
         ASSERT_TRUE(c.hello().is_ok());
         ASSERT_TRUE(c.send_frame(Verb::kDataEnd, {}).is_ok());
       }},
  };

  for (const auto& abuse : cases) {
    SCOPED_TRACE(abuse.name);
    const std::uint64_t before = errors.value();
    RawClient client;
    ASSERT_TRUE(client.connect_to(server_->port()));
    abuse.drive(client);
    auto reply = client.recv_frame();
    ASSERT_TRUE(reply.is_ok()) << reply.status().message();
    EXPECT_EQ(reply->header.verb, Verb::kErr);
    EXPECT_EQ(from_wire_code(reply->header.code), abuse.want);
    auto msg = parse_err_payload(reply->payload);
    ASSERT_TRUE(msg.is_ok());
    EXPECT_FALSE(msg->empty());
    EXPECT_TRUE(client.at_eof()) << "server must hang up";
    EXPECT_EQ(errors.value(), before + 1);
  }

  // After all that abuse the server still serves new clients.
  auto remote = storage::make_remote_backend(remote_options());
  ASSERT_TRUE(remote.is_ok()) << remote.status().message();
  auto writer = (*remote)->create("still-alive");
  ASSERT_TRUE(writer.is_ok());
  ASSERT_TRUE((*writer)->close().is_ok());
  EXPECT_TRUE((*remote)->exists("still-alive"));
}

TEST_F(NetServerTest, BackpressurePumpsLargeGetThroughTinyWindow) {
  ServerOptions options;
  options.max_inflight_bytes = 64 * 1024;  // far below the object size
  start(options);
  auto remote = storage::make_remote_backend(remote_options());
  ASSERT_TRUE(remote.is_ok());
  auto& store = **remote;

  const auto payload = pattern_bytes(2u << 20, 7);
  auto writer = store.create("big");
  ASSERT_TRUE(writer.is_ok());
  ASSERT_TRUE((*writer)->write(payload).is_ok());
  ASSERT_TRUE((*writer)->close().is_ok());

  auto reader = store.open("big");
  ASSERT_TRUE(reader.is_ok());
  std::vector<std::byte> got(payload.size());
  auto n = (*reader)->read_at(0, got);
  ASSERT_TRUE(n.is_ok()) << n.status().message();
  EXPECT_EQ(*n, payload.size());
  EXPECT_EQ(got, payload);
}

TEST_F(NetServerTest, IdleConnectionsAreReaped) {
  ServerOptions options;
  options.idle_timeout_s = 0.1;
  start(options);
  auto& reaped = obs::registry().counter("net.idle_closed");
  const std::uint64_t before = reaped.value();

  RawClient client;
  ASSERT_TRUE(client.connect_to(server_->port()));
  ASSERT_TRUE(client.hello().is_ok());
  ASSERT_TRUE(eventually([&] { return server_->open_connections() == 0; }));
  EXPECT_GE(reaped.value(), before + 1);
  EXPECT_TRUE(client.at_eof());
}

TEST_F(NetServerTest, StatAndGetMissingObject) {
  start();
  auto remote = storage::make_remote_backend(remote_options());
  ASSERT_TRUE(remote.is_ok());
  EXPECT_FALSE((*remote)->exists("nope"));
  EXPECT_EQ((*remote)->open("nope").status().code(), ErrorCode::kNotFound);
}

TEST_F(NetServerTest, RejectsBadRemoteOptions) {
  start();
  auto options = remote_options("bad/tenant");
  EXPECT_EQ(storage::make_remote_backend(options).status().code(),
            ErrorCode::kInvalidArgument);

  auto unreachable = remote_options();
  unreachable.port = 1;  // nothing listens there
  EXPECT_FALSE(storage::make_remote_backend(unreachable).is_ok());

  EXPECT_FALSE(parse_host_port("nocolon").is_ok());
  EXPECT_FALSE(parse_host_port(":123").is_ok());
  EXPECT_FALSE(parse_host_port("host:").is_ok());
  EXPECT_FALSE(parse_host_port("host:99999").is_ok());
  EXPECT_FALSE(parse_host_port("host:12x").is_ok());
  auto parsed = parse_host_port("127.0.0.1:8080");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->first, "127.0.0.1");
  EXPECT_EQ(parsed->second, 8080);
}

}  // namespace
}  // namespace ickpt::net

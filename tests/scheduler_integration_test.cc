// End-to-end: BurstAwareScheduler driving a Checkpointer from the
// sampler's on_sample hook over a real calibrated kernel — the
// complete "detect the gap, cut the checkpoint there" loop.
#include <gtest/gtest.h>

#include "apps/scripted_kernel.h"
#include "checkpoint/checkpointer.h"
#include "checkpoint/restore.h"
#include "checkpoint/scheduler.h"
#include "memtrack/mprotect_engine.h"
#include "sim/sampler.h"
#include "sim/virtual_clock.h"
#include "storage/backend.h"

namespace ickpt {
namespace {

TEST(SchedulerIntegrationTest, ChecksAndRestoresAtBurstBoundaries) {
  memtrack::MProtectEngine engine;
  sim::VirtualClock clock;
  apps::AppConfig cfg;
  cfg.footprint_scale = 1.0 / 64.0;
  auto app = apps::make_app("sage-50", cfg, engine, clock);
  ASSERT_TRUE(app.is_ok());
  ASSERT_TRUE((*app)->init().is_ok());

  auto storage = storage::make_memory_backend();
  auto ckpt =
      checkpoint::Checkpointer::create((*app)->space(), storage.get()).value();

  checkpoint::BurstAwareScheduler::Options sched_opts;
  sched_opts.min_interval = 5.0;
  sched_opts.max_interval = 60.0;
  checkpoint::BurstAwareScheduler scheduler(sched_opts);

  std::vector<double> fire_times;
  sim::SamplerOptions sopts;
  sopts.timeslice = 1.0;
  sopts.on_sample = [&](const trace::Sample& s,
                        const memtrack::DirtySnapshot& snap) {
    if (scheduler.observe(s)) {
      auto meta = ckpt->checkpoint_incremental(snap, s.t_end);
      ASSERT_TRUE(meta.is_ok());
      fire_times.push_back(s.t_end);
    }
  };
  sim::TimesliceSampler sampler(engine, clock, sopts);
  ASSERT_TRUE(sampler.start().is_ok());
  // ~6 iterations of the 20 s period.
  ASSERT_TRUE((*app)->run_until(clock, clock.now() + 120.0).is_ok());
  sampler.stop();

  // The scheduler fired roughly once per iteration...
  ASSERT_GE(fire_times.size(), 4u);
  EXPECT_LE(fire_times.size(), 12u);
  // ...not every slice (rate limiting + burst avoidance).
  for (std::size_t i = 1; i < fire_times.size(); ++i) {
    EXPECT_GE(fire_times[i] - fire_times[i - 1], 5.0 - 1e-9);
  }
  // And the chain restores.
  auto state = checkpoint::restore_chain(*storage, 0);
  ASSERT_TRUE(state.is_ok());
  EXPECT_FALSE(state->blocks.empty());
}

TEST(SchedulerIntegrationTest, ForcedCheckpointsBoundRollbackWindow) {
  // BT has no quiet gaps at a 1 s timeslice (period 0.4 s): the
  // scheduler must still fire via max_interval.
  memtrack::MProtectEngine engine;
  sim::VirtualClock clock;
  apps::AppConfig cfg;
  cfg.footprint_scale = 1.0 / 64.0;
  auto app = apps::make_app("bt", cfg, engine, clock);
  ASSERT_TRUE(app.is_ok());
  ASSERT_TRUE((*app)->init().is_ok());

  checkpoint::BurstAwareScheduler::Options sched_opts;
  sched_opts.min_interval = 2.0;
  sched_opts.max_interval = 10.0;
  checkpoint::BurstAwareScheduler scheduler(sched_opts);

  int fires = 0;
  sim::SamplerOptions sopts;
  sopts.timeslice = 1.0;
  sopts.on_sample = [&](const trace::Sample& s,
                        const memtrack::DirtySnapshot&) {
    if (scheduler.observe(s)) ++fires;
  };
  sim::TimesliceSampler sampler(engine, clock, sopts);
  ASSERT_TRUE(sampler.start().is_ok());
  ASSERT_TRUE((*app)->run_until(clock, clock.now() + 60.0).is_ok());
  sampler.stop();

  EXPECT_GE(fires, 4);  // ~every 10 s over 60 s
  EXPECT_GT(scheduler.forced(), 0u);
}

}  // namespace
}  // namespace ickpt

#include "common/stats.h"

#include <gtest/gtest.h>

namespace ickpt {
namespace {

TEST(StatsTest, EmptyIsZero) {
  SummaryStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(StatsTest, SingleSample) {
  SummaryStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StatsTest, KnownSequence) {
  SummaryStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(StatsTest, SkipFirstDiscardsWarmup) {
  // Mirrors the paper's methodology: "omitting the first [run] because
  // the first experiment takes considerably longer" (Section 5).
  SummaryStats s(/*skip_first=*/2);
  s.add(1000.0);  // warm-up spikes
  s.add(900.0);
  s.add(10.0);
  s.add(20.0);
  EXPECT_EQ(s.skipped(), 2u);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.max(), 20.0);
  EXPECT_DOUBLE_EQ(s.mean(), 15.0);
}

TEST(StatsTest, NegativeValues) {
  SummaryStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(StatsTest, ResetClearsEverything) {
  SummaryStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_TRUE(s.empty());
  s.add(10.0);
  EXPECT_EQ(s.mean(), 10.0);
  EXPECT_EQ(s.count(), 1u);
}

TEST(StatsTest, MeanIsStableForManySamples) {
  SummaryStats s;
  for (int i = 0; i < 100000; ++i) s.add(7.5);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_NEAR(s.variance(), 0.0, 1e-12);
}

}  // namespace
}  // namespace ickpt

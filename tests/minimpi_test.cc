#include "minimpi/comm.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

namespace ickpt::mpi {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

TEST(RuntimeTest, RunsAllRanks) {
  std::atomic<int> count{0};
  Runtime::run(4, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 4);
    EXPECT_GE(comm.rank(), 0);
    EXPECT_LT(comm.rank(), 4);
    ++count;
  });
  EXPECT_EQ(count.load(), 4);
}

TEST(RuntimeTest, RejectsBadWorldSize) {
  EXPECT_THROW(Runtime::run(0, [](Comm&) {}), std::invalid_argument);
}

TEST(RuntimeTest, PropagatesException) {
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& comm) {
                              if (comm.rank() == 1) {
                                throw std::runtime_error("rank 1 died");
                              }
                            }),
               std::runtime_error);
}

TEST(RuntimeTest, AbortUnblocksPeersStuckInRecv) {
  // Rank 0 dies; rank 1 is blocked in recv and must be released.
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& comm) {
                              if (comm.rank() == 0) {
                                throw std::runtime_error("croak");
                              }
                              std::byte buf[8];
                              (void)comm.recv(0, 1, buf);
                            }),
               std::runtime_error);
}

TEST(P2PTest, SendRecvDeliversPayload) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, as_bytes("hello"));
    } else {
      std::byte buf[16];
      auto info = comm.recv(0, 7, buf);
      ASSERT_TRUE(info.is_ok());
      EXPECT_EQ(info->source, 0);
      EXPECT_EQ(info->tag, 7);
      EXPECT_EQ(info->bytes, 5u);
      EXPECT_EQ(std::memcmp(buf, "hello", 5), 0);
    }
  });
}

TEST(P2PTest, TagMatching) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, as_bytes("one"));
      comm.send(1, 2, as_bytes("two"));
    } else {
      std::byte buf[16];
      auto second = comm.recv(0, 2, buf);  // out of order by tag
      ASSERT_TRUE(second.is_ok());
      EXPECT_EQ(std::memcmp(buf, "two", 3), 0);
      auto first = comm.recv(0, 1, buf);
      ASSERT_TRUE(first.is_ok());
      EXPECT_EQ(std::memcmp(buf, "one", 3), 0);
    }
  });
}

TEST(P2PTest, WildcardSourceAndTag) {
  Runtime::run(3, [](Comm& comm) {
    if (comm.rank() != 2) {
      comm.send(2, comm.rank() + 10, as_bytes("x"));
    } else {
      std::byte buf[4];
      for (int i = 0; i < 2; ++i) {
        auto info = comm.recv(kAnySource, kAnyTag, buf);
        ASSERT_TRUE(info.is_ok());
        EXPECT_GE(info->tag, 10);
      }
    }
  });
}

TEST(P2PTest, RecvBufferTooSmallFails) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, as_bytes("0123456789"));
    } else {
      std::byte buf[4];
      auto info = comm.recv(0, 1, buf);
      EXPECT_FALSE(info.is_ok());
      EXPECT_EQ(info.status().code(), ErrorCode::kOutOfRange);
    }
  });
}

TEST(P2PTest, TryRecvNonBlocking) {
  Runtime::run(2, [](Comm& comm) {
    std::byte buf[8];
    if (comm.rank() == 1) {
      // Nothing has been sent yet: rank 0 is blocked waiting for our
      // go-ahead, so this try_recv is guaranteed to find nothing.
      auto nothing = comm.try_recv(0, 5, buf);
      EXPECT_EQ(nothing.status().code(), ErrorCode::kNotFound);
      comm.send(0, 99, as_bytes("go"));
      auto info = comm.recv(0, 5, buf);
      EXPECT_TRUE(info.is_ok());
    } else {
      std::byte go[4];
      ASSERT_TRUE(comm.recv(1, 99, go).is_ok());
      comm.send(1, 5, as_bytes("now"));
    }
  });
}

TEST(P2PTest, SendToBadRankThrows) {
  Runtime::run(1, [](Comm& comm) {
    std::byte b{0};
    EXPECT_THROW(comm.send(5, 1, {&b, 1}), std::out_of_range);
    EXPECT_THROW(comm.send(-1, 1, {&b, 1}), std::out_of_range);
  });
}

TEST(P2PTest, SendRecvExchange) {
  Runtime::run(2, [](Comm& comm) {
    std::string mine = comm.rank() == 0 ? "from0" : "from1";
    std::byte buf[8];
    auto info = comm.sendrecv(1 - comm.rank(), 3, as_bytes(mine), buf);
    ASSERT_TRUE(info.is_ok());
    std::string expected = comm.rank() == 0 ? "from1" : "from0";
    EXPECT_EQ(std::memcmp(buf, expected.data(), 5), 0);
  });
}

TEST(TrafficTest, CountersTrackPayloadBytes) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, as_bytes("abcd"));
      comm.barrier();
      EXPECT_EQ(comm.bytes_sent(), 4u);
      EXPECT_EQ(comm.bytes_received(), 0u);
    } else {
      std::byte buf[8];
      ASSERT_TRUE(comm.recv(0, 1, buf).is_ok());
      comm.barrier();
      EXPECT_EQ(comm.bytes_received(), 4u);
    }
  });
}

TEST(CollectiveTest, BarrierSynchronizes) {
  std::atomic<int> phase{0};
  Runtime::run(4, [&](Comm& comm) {
    ++phase;
    comm.barrier();
    EXPECT_EQ(phase.load(), 4);  // nobody passes until all arrived
    comm.barrier();
  });
}

TEST(CollectiveTest, RepeatedBarriers) {
  Runtime::run(3, [](Comm& comm) {
    for (int i = 0; i < 50; ++i) comm.barrier();
  });
}

TEST(CollectiveTest, BcastFromEachRoot) {
  Runtime::run(3, [](Comm& comm) {
    for (int root = 0; root < 3; ++root) {
      std::byte buf[4] = {};
      if (comm.rank() == root) {
        buf[0] = std::byte{static_cast<unsigned char>(root + 1)};
      }
      comm.bcast(root, buf);
      EXPECT_EQ(buf[0], std::byte{static_cast<unsigned char>(root + 1)});
    }
  });
}

TEST(CollectiveTest, AllreduceSum) {
  Runtime::run(4, [](Comm& comm) {
    double sum = comm.allreduce_sum(static_cast<double>(comm.rank() + 1));
    EXPECT_DOUBLE_EQ(sum, 10.0);  // 1+2+3+4
  });
}

TEST(CollectiveTest, AllreduceMax) {
  Runtime::run(4, [](Comm& comm) {
    double mx = comm.allreduce_max(static_cast<double>(comm.rank() * 3));
    EXPECT_DOUBLE_EQ(mx, 9.0);
  });
}

TEST(CollectiveTest, AllreduceSumU64) {
  Runtime::run(3, [](Comm& comm) {
    std::uint64_t sum = comm.allreduce_sum_u64(
        static_cast<std::uint64_t>(comm.rank()) + 100);
    EXPECT_EQ(sum, 303u);
  });
}

TEST(CollectiveTest, BackToBackAllreducesKeepRoundsSeparate) {
  Runtime::run(4, [](Comm& comm) {
    for (int i = 0; i < 100; ++i) {
      double sum = comm.allreduce_sum(1.0);
      ASSERT_DOUBLE_EQ(sum, 4.0) << "round " << i;
    }
  });
}

TEST(CollectiveTest, SingleRankCollectivesAreIdentity) {
  Runtime::run(1, [](Comm& comm) {
    comm.barrier();
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(3.5), 3.5);
    EXPECT_DOUBLE_EQ(comm.allreduce_max(-1.0), -1.0);
    std::byte buf[2] = {std::byte{9}, std::byte{9}};
    comm.bcast(0, buf);
    EXPECT_EQ(buf[0], std::byte{9});
  });
}

TEST(StressTest, RingExchangeManyRounds) {
  constexpr int kRanks = 8;
  constexpr int kRounds = 30;
  Runtime::run(kRanks, [](Comm& comm) {
    const int right = (comm.rank() + 1) % comm.size();
    std::vector<std::byte> payload(256, std::byte{1});
    std::vector<std::byte> incoming(256);
    for (int round = 0; round < kRounds; ++round) {
      comm.send(right, round, payload);
      auto info = comm.recv(kAnySource, round, incoming);
      ASSERT_TRUE(info.is_ok());
      ASSERT_EQ(info->bytes, 256u);
    }
    EXPECT_EQ(comm.bytes_received(), 256u * kRounds);
  });
}

}  // namespace
}  // namespace ickpt::mpi

#include "analysis/window.h"

#include <gtest/gtest.h>

#include "core/study.h"

namespace ickpt::analysis {
namespace {

TEST(WindowTest, UnionsAcrossSlices) {
  trace::WriteTrace t(100, 1.0);
  t.record(0, 0, 10);    // slice 0: pages 0-9
  t.record(1, 5, 10);    // slice 1: pages 5-14 (overlap 5-9)
  t.record(2, 50, 5);    // slice 2: pages 50-54
  t.record(3, 50, 5);    // slice 3: same pages again

  auto k1 = window_iws(t, 1);
  ASSERT_TRUE(k1.is_ok());
  EXPECT_EQ(*k1, (std::vector<std::size_t>{10, 10, 5, 5}));

  auto k2 = window_iws(t, 2);
  ASSERT_TRUE(k2.is_ok());
  // Window 0 = slices 0+1 union = pages 0-14 -> 15; window 1 = 5.
  EXPECT_EQ(*k2, (std::vector<std::size_t>{15, 5}));

  auto k4 = window_iws(t, 4);
  ASSERT_TRUE(k4.is_ok());
  EXPECT_EQ(*k4, (std::vector<std::size_t>{20}));
}

TEST(WindowTest, PartialTrailingWindowDropped) {
  trace::WriteTrace t(10, 1.0);
  t.record(0, 0, 1);
  t.record(1, 1, 1);
  t.record(2, 2, 1);
  auto k2 = window_iws(t, 2);
  ASSERT_TRUE(k2.is_ok());
  ASSERT_EQ(k2->size(), 1u);  // slice 2 alone is a partial window
  EXPECT_EQ((*k2)[0], 2u);
}

TEST(WindowTest, RejectsZeroK) {
  trace::WriteTrace t(4, 1.0);
  EXPECT_FALSE(window_iws(t, 0).is_ok());
}

TEST(WindowTest, EmptySlicesAreZero) {
  trace::WriteTrace t(16, 1.0);
  t.record(0, 0, 4);
  t.record(3, 0, 4);
  auto k1 = window_iws(t, 1);
  ASSERT_TRUE(k1.is_ok());
  EXPECT_EQ(*k1, (std::vector<std::size_t>{4, 0, 0, 4}));
}

TEST(WindowTest, IbCurveIsMonotonicInIws) {
  trace::WriteTrace t(64, 1.0);
  // Sweep through 8 pages per slice, wrapping over 32 pages.
  for (std::uint64_t s = 0; s < 16; ++s) {
    t.record(s, static_cast<std::uint32_t>((s * 8) % 32), 8);
  }
  auto curve = ib_curve(t, {1, 2, 4, 8});
  ASSERT_TRUE(curve.is_ok());
  ASSERT_EQ(curve->size(), 4u);
  // IWS grows with the window until it saturates at 32 pages...
  EXPECT_DOUBLE_EQ((*curve)[0].avg_iws_pages, 8);
  EXPECT_DOUBLE_EQ((*curve)[1].avg_iws_pages, 16);
  EXPECT_DOUBLE_EQ((*curve)[2].avg_iws_pages, 32);
  EXPECT_DOUBLE_EQ((*curve)[3].avg_iws_pages, 32);
  // ...while IB decays once saturated (Figure 2's shape).
  EXPECT_GT((*curve)[2].avg_ib_pages_per_s,
            (*curve)[3].avg_ib_pages_per_s);
}

TEST(WindowTest, CrossValidatesAgainstDirectSweep) {
  // The single-trace window curve must agree with actually re-running
  // the study at the longer timeslice.
  StudyConfig base;
  base.app = "sp";
  base.engine = memtrack::EngineKind::kExplicit;
  base.footprint_scale = 1.0 / 64.0;
  base.timeslice = 1.0;
  base.run_vs = 40.0;
  base.capture_trace = true;
  auto r1 = run_study(base);
  ASSERT_TRUE(r1.is_ok());

  auto curve = ib_curve(r1->write_trace, {5});
  ASSERT_TRUE(curve.is_ok());

  StudyConfig direct = base;
  direct.capture_trace = false;
  direct.timeslice = 5.0;
  auto r5 = run_study(direct);
  ASSERT_TRUE(r5.is_ok());

  double direct_pages = r5->ib.avg_iws / static_cast<double>(page_size());
  EXPECT_NEAR((*curve)[0].avg_iws_pages, direct_pages,
              0.06 * direct_pages);
}

}  // namespace
}  // namespace ickpt::analysis

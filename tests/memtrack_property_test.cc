// Property-based, parameterized tests over the dirty-tracking engines.
//
// Core invariant: for any write pattern, every engine must report
// exactly the set of pages covered by the writes (the mprotect and
// soft-dirty engines at page precision, the explicit engine by
// construction).  The engines must agree with each other.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/arena.h"
#include "common/rng.h"
#include "memtrack/tracker.h"

namespace ickpt::memtrack {
namespace {

struct Params {
  EngineKind kind;
  std::size_t pages;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<Params>& info) {
  return std::string(to_string(info.param.kind)) + "_" +
         std::to_string(info.param.pages) + "p_s" +
         std::to_string(info.param.seed);
}

class EnginePropertyTest : public ::testing::TestWithParam<Params> {
 protected:
  void SetUp() override {
    if (GetParam().kind == EngineKind::kSoftDirty && !soft_dirty_supported()) {
      GTEST_SKIP() << "soft-dirty unsupported";
    }
    if (GetParam().kind == EngineKind::kUffd && !uffd_supported()) {
      GTEST_SKIP() << "userfaultfd-wp unsupported";
    }
    auto t = make_tracker(GetParam().kind);
    ASSERT_TRUE(t.is_ok()) << t.status().to_string();
    tracker_ = std::move(t.value());
  }

  /// Writes one byte in each page of `pages` and notifies the explicit
  /// engine; hardware engines ignore the notification.
  void write_pages(PageArena& arena, const std::set<std::size_t>& pages,
                   Rng& rng) {
    for (std::size_t p : pages) {
      std::size_t off = p * page_size() + rng.next_index(page_size());
      arena.data()[off] = std::byte{0xCD};
      tracker_->note_write(arena.data() + off, 1);
    }
  }

  std::unique_ptr<DirtyTracker> tracker_;
};

TEST_P(EnginePropertyTest, ReportsExactlyTheWrittenPages) {
  const auto& p = GetParam();
  PageArena arena(p.pages * page_size());
  arena.prefault();
  Rng rng(p.seed);

  auto id = tracker_->attach(arena.span(), "prop");
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(tracker_->arm().is_ok());

  std::set<std::size_t> expected;
  std::size_t writes = 1 + rng.next_index(p.pages);
  for (std::size_t i = 0; i < writes; ++i) {
    expected.insert(rng.next_index(p.pages));
  }
  write_pages(arena, expected, rng);

  auto snap = tracker_->collect(false);
  ASSERT_TRUE(snap.is_ok());
  ASSERT_EQ(snap->regions.size(), 1u);
  const auto& dirty = snap->regions[0].dirty_pages;
  std::set<std::size_t> got(dirty.begin(), dirty.end());
  EXPECT_EQ(got, expected);
}

TEST_P(EnginePropertyTest, ConsecutiveIntervalsAreIndependent) {
  const auto& p = GetParam();
  PageArena arena(p.pages * page_size());
  arena.prefault();
  Rng rng(p.seed ^ 0xabcdef);

  ASSERT_TRUE(tracker_->attach(arena.span(), "iv").is_ok());
  ASSERT_TRUE(tracker_->arm().is_ok());

  for (int interval = 0; interval < 5; ++interval) {
    std::set<std::size_t> expected;
    std::size_t writes = 1 + rng.next_index(p.pages / 2 + 1);
    for (std::size_t i = 0; i < writes; ++i) {
      expected.insert(rng.next_index(p.pages));
    }
    write_pages(arena, expected, rng);
    auto snap = tracker_->collect(/*rearm=*/true);
    ASSERT_TRUE(snap.is_ok());
    const auto& dirty = snap->regions[0].dirty_pages;
    std::set<std::size_t> got(dirty.begin(), dirty.end());
    EXPECT_EQ(got, expected) << "interval " << interval;
  }
}

TEST_P(EnginePropertyTest, DirtyPagesSortedAndUnique) {
  const auto& p = GetParam();
  PageArena arena(p.pages * page_size());
  arena.prefault();
  Rng rng(p.seed + 17);
  ASSERT_TRUE(tracker_->attach(arena.span(), "sorted").is_ok());
  ASSERT_TRUE(tracker_->arm().is_ok());
  std::set<std::size_t> pages;
  for (std::size_t i = 0; i < p.pages; ++i) {
    if (rng.next_bool(0.5)) pages.insert(i);
  }
  write_pages(arena, pages, rng);
  auto snap = tracker_->collect(false);
  ASSERT_TRUE(snap.is_ok());
  const auto& dirty = snap->regions[0].dirty_pages;
  EXPECT_TRUE(std::is_sorted(dirty.begin(), dirty.end()));
  EXPECT_EQ(std::adjacent_find(dirty.begin(), dirty.end()), dirty.end());
}

TEST_P(EnginePropertyTest, FullSweepDirtiesEverything) {
  const auto& p = GetParam();
  PageArena arena(p.pages * page_size());
  arena.prefault();
  ASSERT_TRUE(tracker_->attach(arena.span(), "sweep").is_ok());
  ASSERT_TRUE(tracker_->arm().is_ok());
  for (std::size_t i = 0; i < arena.size(); i += 64) {
    arena.data()[i] = std::byte{1};
  }
  tracker_->note_write(arena.data(), arena.size());
  auto snap = tracker_->collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(snap->dirty_pages(), p.pages);
  EXPECT_EQ(snap->dirty_bytes(), arena.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EnginePropertyTest,
    ::testing::Values(
        Params{EngineKind::kMProtect, 16, 1}, Params{EngineKind::kMProtect, 64, 2},
        Params{EngineKind::kMProtect, 257, 3},
        Params{EngineKind::kSoftDirty, 16, 1}, Params{EngineKind::kSoftDirty, 64, 2},
        Params{EngineKind::kSoftDirty, 257, 3},
        Params{EngineKind::kUffd, 16, 1}, Params{EngineKind::kUffd, 64, 2},
        Params{EngineKind::kUffd, 257, 3},
        Params{EngineKind::kExplicit, 16, 1}, Params{EngineKind::kExplicit, 64, 2},
        Params{EngineKind::kExplicit, 257, 3}),
    param_name);

// Cross-engine agreement: run the same pattern through mprotect and
// explicit (and soft-dirty when available) and require identical sets.
TEST(EngineEquivalenceTest, EnginesAgreeOnRandomPatterns) {
  constexpr std::size_t kPages = 128;
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    std::vector<std::unique_ptr<DirtyTracker>> trackers;
    auto mp = make_tracker(EngineKind::kMProtect);
    ASSERT_TRUE(mp.is_ok());
    trackers.push_back(std::move(mp.value()));
    auto ex = make_tracker(EngineKind::kExplicit);
    ASSERT_TRUE(ex.is_ok());
    trackers.push_back(std::move(ex.value()));
    if (soft_dirty_supported()) {
      auto sd = make_tracker(EngineKind::kSoftDirty);
      ASSERT_TRUE(sd.is_ok());
      trackers.push_back(std::move(sd.value()));
    }
    if (uffd_supported()) {
      auto uf = make_tracker(EngineKind::kUffd);
      ASSERT_TRUE(uf.is_ok());
      trackers.push_back(std::move(uf.value()));
    }

    std::vector<std::set<std::size_t>> results;
    for (auto& tr : trackers) {
      PageArena arena(kPages * page_size());
      arena.prefault();
      ASSERT_TRUE(tr->attach(arena.span(), "eq").is_ok());
      ASSERT_TRUE(tr->arm().is_ok());
      Rng rng(seed);  // same seed -> same pattern for each engine
      std::size_t writes = 1 + rng.next_index(kPages * 2);
      for (std::size_t i = 0; i < writes; ++i) {
        std::size_t page = rng.next_index(kPages);
        std::size_t off = page * page_size() + rng.next_index(page_size());
        arena.data()[off] = std::byte{0x5A};
        tr->note_write(arena.data() + off, 1);
      }
      auto snap = tr->collect(false);
      ASSERT_TRUE(snap.is_ok());
      const auto& dirty = snap->regions[0].dirty_pages;
      results.emplace_back(dirty.begin(), dirty.end());
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[0], results[i])
          << "engine " << i << " disagrees at seed " << seed;
    }
  }
}

}  // namespace
}  // namespace ickpt::memtrack

#include "sim/virtual_clock.h"

#include <gtest/gtest.h>

#include <vector>

namespace ickpt::sim {
namespace {

TEST(VirtualClockTest, StartsAtZeroAndAdvances) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance(0.0);
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
}

TEST(VirtualClockTest, NegativeAdvanceThrows) {
  VirtualClock clock;
  EXPECT_THROW(clock.advance(-0.1), std::invalid_argument);
}

TEST(VirtualClockTest, PeriodicCallbackFiresAtBoundaries) {
  VirtualClock clock;
  std::vector<double> fires;
  clock.subscribe_periodic(1.0, [&](double t) { fires.push_back(t); });
  clock.advance(3.5);
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_DOUBLE_EQ(fires[0], 1.0);
  EXPECT_DOUBLE_EQ(fires[1], 2.0);
  EXPECT_DOUBLE_EQ(fires[2], 3.0);
  EXPECT_DOUBLE_EQ(clock.now(), 3.5);
}

TEST(VirtualClockTest, ManySmallAdvancesCrossBoundariesOnce) {
  VirtualClock clock;
  int fires = 0;
  clock.subscribe_periodic(1.0, [&](double) { ++fires; });
  // 0.0625 is exact in binary: 80 steps sum to exactly 5.0.
  for (int i = 0; i < 80; ++i) clock.advance(0.0625);
  EXPECT_EQ(fires, 5);
}

TEST(VirtualClockTest, CallbackSeesBoundaryTimeAsNow) {
  VirtualClock clock;
  double seen = -1;
  clock.subscribe_periodic(2.0, [&](double t) {
    seen = t;
    EXPECT_DOUBLE_EQ(clock.now(), t);
  });
  clock.advance(2.5);
  EXPECT_DOUBLE_EQ(seen, 2.0);
}

TEST(VirtualClockTest, TwoSubscribersInterleaveInTimeOrder) {
  VirtualClock clock;
  std::vector<std::pair<char, double>> log;
  clock.subscribe_periodic(1.0, [&](double t) { log.push_back({'a', t}); });
  clock.subscribe_periodic(1.5, [&](double t) { log.push_back({'b', t}); });
  clock.advance(3.0);
  // a@1, b@1.5, a@2, a@3, b@3: ties (a@3, b@3) fire in subscription order.
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log[0].first, 'a');
  EXPECT_DOUBLE_EQ(log[0].second, 1.0);
  EXPECT_EQ(log[1].first, 'b');
  EXPECT_DOUBLE_EQ(log[1].second, 1.5);
  EXPECT_EQ(log[2].first, 'a');
  EXPECT_EQ(log[3].first, 'a');
  EXPECT_EQ(log[4].first, 'b');
}

TEST(VirtualClockTest, UnsubscribeStopsFiring) {
  VirtualClock clock;
  int fires = 0;
  int id = clock.subscribe_periodic(1.0, [&](double) { ++fires; });
  clock.advance(2.5);
  EXPECT_EQ(fires, 2);
  clock.unsubscribe(id);
  clock.advance(5.0);
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(clock.subscriber_count(), 0u);
}

TEST(VirtualClockTest, CallbackMayUnsubscribeItself) {
  VirtualClock clock;
  int fires = 0;
  int id = 0;
  id = clock.subscribe_periodic(1.0, [&](double) {
    ++fires;
    clock.unsubscribe(id);
  });
  clock.advance(5.0);
  EXPECT_EQ(fires, 1);
}

TEST(VirtualClockTest, PhaseOffsetsFirstFire) {
  VirtualClock clock;
  std::vector<double> fires;
  clock.subscribe_periodic(1.0, [&](double t) { fires.push_back(t); }, 0.25);
  clock.advance(2.5);
  ASSERT_EQ(fires.size(), 2u);
  EXPECT_DOUBLE_EQ(fires[0], 1.25);
  EXPECT_DOUBLE_EQ(fires[1], 2.25);
}

TEST(VirtualClockTest, ZeroPeriodThrows) {
  VirtualClock clock;
  EXPECT_THROW(clock.subscribe_periodic(0.0, [](double) {}),
               std::invalid_argument);
}

TEST(VirtualClockTest, ReentrantAdvanceThrows) {
  VirtualClock clock;
  clock.subscribe_periodic(1.0, [&](double) {
    EXPECT_THROW(clock.advance(1.0), std::logic_error);
  });
  clock.advance(1.5);
}

TEST(VirtualClockTest, SubscribeAfterTimePassed) {
  VirtualClock clock;
  clock.advance(10.0);
  std::vector<double> fires;
  clock.subscribe_periodic(2.0, [&](double t) { fires.push_back(t); });
  clock.advance(4.0);
  ASSERT_EQ(fires.size(), 2u);
  EXPECT_DOUBLE_EQ(fires[0], 12.0);
  EXPECT_DOUBLE_EQ(fires[1], 14.0);
}

}  // namespace
}  // namespace ickpt::sim

// Randomized end-to-end checkpoint/restore fuzzing: random block
// geometries, random write/map/unmap sequences, random restore points.
// The invariant: restoring the chain at any checkpointed sequence
// reproduces the exact memory state that existed at that checkpoint.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <map>

#include "checkpoint/checkpointer.h"
#include "checkpoint/restore.h"
#include "common/rng.h"
#include "memtrack/explicit_engine.h"
#include "region/address_space.h"
#include "storage/backend.h"

namespace ickpt::checkpoint {
namespace {

using memtrack::ExplicitEngine;
using region::AddressSpace;
using region::AreaKind;
using region::BlockId;

/// A ground-truth shadow of the address space: block id -> contents.
using Shadow = std::map<std::uint32_t, std::vector<std::byte>>;

Shadow snapshot_space(AddressSpace& space) {
  Shadow shadow;
  for (const auto& info : space.blocks()) {
    auto span = space.block_span(info.id);
    EXPECT_TRUE(span.is_ok());
    shadow[info.id] =
        std::vector<std::byte>(span->begin(), span->end());
  }
  return shadow;
}

void expect_state_matches(const RestoredState& state, const Shadow& truth,
                          std::uint64_t seq) {
  ASSERT_EQ(state.blocks.size(), truth.size()) << "at sequence " << seq;
  for (const auto& [id, expected] : truth) {
    auto it = state.blocks.find(id);
    ASSERT_NE(it, state.blocks.end())
        << "block " << id << " missing at sequence " << seq;
    ASSERT_EQ(it->second.data.size(), expected.size());
    EXPECT_EQ(std::memcmp(it->second.data.data(), expected.data(),
                          expected.size()),
              0)
        << "block " << id << " differs at sequence " << seq;
  }
}

class CheckpointFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckpointFuzzTest, EverySequenceRestoresExactly) {
  Rng rng(GetParam());
  ExplicitEngine engine;
  AddressSpace space(engine, "fuzz");
  auto storage = storage::make_memory_backend();
  CheckpointerOptions opts;
  opts.full_every = 1 + rng.next_index(8);
  opts.compress = rng.next_bool(0.5);
  auto ckpt = Checkpointer::create(space, storage.get(), opts).value();

  // Start with 1-4 blocks of random sizes.
  std::vector<BlockId> live;
  int initial = 1 + static_cast<int>(rng.next_index(4));
  for (int b = 0; b < initial; ++b) {
    auto ref = space.map((1 + rng.next_index(12)) * page_size(),
                         rng.next_bool(0.5) ? AreaKind::kHeap
                                            : AreaKind::kMmap,
                         "blk" + std::to_string(b));
    ASSERT_TRUE(ref.is_ok());
    live.push_back(ref->id);
  }
  ASSERT_TRUE(engine.arm().is_ok());

  // Interleave writes, maps, unmaps and checkpoints; remember the
  // ground truth at every checkpoint.
  std::map<std::uint64_t, Shadow> truth_at;
  const int steps = 24;
  for (int step = 0; step < steps; ++step) {
    double action = rng.next_double();
    if (action < 0.55 && !live.empty()) {
      // Write a random page range of a random live block.
      BlockId id = live[rng.next_index(live.size())];
      auto span = space.block_span(id);
      ASSERT_TRUE(span.is_ok());
      std::size_t pages = span->size() / page_size();
      std::size_t first = rng.next_index(pages);
      std::size_t count = 1 + rng.next_index(pages - first);
      auto* base = span->data() + first * page_size();
      for (std::size_t i = 0; i < count * page_size(); i += 8) {
        std::uint64_t v = rng.next_u64();
        std::memcpy(base + i, &v, 8);
      }
      engine.note_write(base, count * page_size());
    } else if (action < 0.70) {
      // Map a new block (exercises zero-fill of fresh blocks).
      auto ref = space.map((1 + rng.next_index(8)) * page_size(),
                           AreaKind::kMmap,
                           "dyn" + std::to_string(step));
      ASSERT_TRUE(ref.is_ok());
      live.push_back(ref->id);
      // Sometimes write its first page immediately.
      if (rng.next_bool(0.6)) {
        std::uint64_t v = rng.next_u64();
        std::memcpy(ref->mem.data(), &v, 8);
        engine.note_write(ref->mem.data(), 8);
      }
    } else if (action < 0.80 && live.size() > 1) {
      // Unmap (memory exclusion mid-interval).
      std::size_t idx = rng.next_index(live.size());
      ASSERT_TRUE(space.unmap(live[idx]).is_ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      // Checkpoint and record the ground truth.
      auto snap = engine.collect(/*rearm=*/true);
      ASSERT_TRUE(snap.is_ok());
      auto meta = ckpt->checkpoint_incremental(*snap,
                                              static_cast<double>(step));
      ASSERT_TRUE(meta.is_ok()) << meta.status().to_string();
      truth_at[meta->sequence] = snapshot_space(space);
    }
  }
  // Final checkpoint so the last state is always covered.
  auto snap = engine.collect(true);
  ASSERT_TRUE(snap.is_ok());
  auto meta = ckpt->checkpoint_incremental(*snap, steps);
  ASSERT_TRUE(meta.is_ok());
  truth_at[meta->sequence] = snapshot_space(space);

  // Every recorded sequence must restore to its exact ground truth —
  // through the planned pipeline (serial and parallel decode) and the
  // serial reference restorer, all byte-identical.
  for (const auto& [seq, truth] : truth_at) {
    auto reference = restore_chain_serial(*storage, 0, seq);
    ASSERT_TRUE(reference.is_ok())
        << "seq " << seq << ": " << reference.status().to_string();
    EXPECT_EQ(reference->sequence, seq);
    expect_state_matches(*reference, truth, seq);

    for (int threads : {1, 4}) {
      for (bool map_reads : {false, true}) {
        RestoreOptions ropts;
        ropts.upto = seq;
        ropts.decode_threads = threads;
        ropts.map_reads = map_reads;
        auto state = restore_chain(*storage, 0, ropts);
        ASSERT_TRUE(state.is_ok())
            << "seq " << seq << " (threads " << threads << ", map "
            << map_reads << "): " << state.status().to_string();
        EXPECT_EQ(state->sequence, seq);
        expect_state_matches(*state, truth, seq);
        EXPECT_EQ(state->virtual_time, reference->virtual_time);
      }
    }
  }
}

TEST(CheckpointFuzzTest, FileBackedMapReadsMatchBufferedReads) {
  // Same invariant against a real file backend, where map_reads decodes
  // from an actual read-only mmap of each object: mapped and buffered
  // restores must be byte-identical to the serial reference.
  const std::string dir = ::testing::TempDir() + "/ickpt_fuzz_map_test";
  std::filesystem::remove_all(dir);

  Rng rng(99);
  ExplicitEngine engine;
  AddressSpace space(engine, "fuzzmap");
  auto storage = storage::make_file_backend(dir);
  ASSERT_TRUE(storage.is_ok());
  CheckpointerOptions opts;
  opts.full_every = 3;
  opts.compress = true;
  auto ckpt = Checkpointer::create(space, storage->get(), opts).value();

  auto ref = space.map(16 * page_size(), AreaKind::kHeap, "blk");
  ASSERT_TRUE(ref.is_ok());
  ASSERT_TRUE(engine.arm().is_ok());

  std::map<std::uint64_t, Shadow> truth_at;
  for (int step = 0; step < 8; ++step) {
    auto span = space.block_span(ref->id);
    ASSERT_TRUE(span.is_ok());
    std::size_t first = rng.next_index(16);
    auto* base = span->data() + first * page_size();
    for (std::size_t i = 0; i < page_size(); i += 8) {
      std::uint64_t v = rng.next_u64();
      std::memcpy(base + i, &v, 8);
    }
    engine.note_write(base, page_size());
    auto snap = engine.collect(true);
    ASSERT_TRUE(snap.is_ok());
    auto meta = ckpt->checkpoint_incremental(*snap, step);
    ASSERT_TRUE(meta.is_ok());
    truth_at[meta->sequence] = snapshot_space(space);
  }

  for (const auto& [seq, truth] : truth_at) {
    for (bool map_reads : {false, true}) {
      RestoreOptions ropts;
      ropts.upto = seq;
      ropts.map_reads = map_reads;
      auto state = restore_chain(**storage, 0, ropts);
      ASSERT_TRUE(state.is_ok())
          << "seq " << seq << " (map " << map_reads
          << "): " << state.status().to_string();
      expect_state_matches(*state, truth, seq);
    }
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ickpt::checkpoint

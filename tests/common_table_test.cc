#include "common/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/units.h"

namespace ickpt {
namespace {

TEST(TableTest, PrintsAlignedColumns) {
  TextTable t("Demo");
  t.set_header({"Application", "MB"});
  t.add_row({"Sage-1000MB", "954.6"});
  t.add_row({"LU", "16.6"});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("Sage-1000MB"), std::string::npos);
  EXPECT_NE(out.find("Application"), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(78.84, 1), "78.8");
  EXPECT_EQ(TextTable::num(78.86, 1), "78.9");
  EXPECT_EQ(TextTable::num(3.0, 0), "3");
  EXPECT_EQ(TextTable::num(0.1234, 3), "0.123");
}

TEST(TableTest, CsvRoundTrip) {
  TextTable t("csv");
  t.set_header({"a", "b"});
  t.add_row({"1", "hello, world"});
  t.add_row({"2", "quote\"inside"});
  std::string path = ::testing::TempDir() + "/table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"hello, world\"");
  std::getline(in, line);
  EXPECT_EQ(line, "2,\"quote\"\"inside\"");
  std::remove(path.c_str());
}

TEST(TableTest, CsvEscape) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(TableTest, CsvWriteFailsOnBadPath) {
  TextTable t("x");
  t.set_header({"a"});
  EXPECT_FALSE(t.write_csv("/nonexistent-dir-xyz/file.csv"));
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2 * kKB), "2.00 KB");
  EXPECT_EQ(format_bytes(954 * kMB + 629146), "955 MB");  // rounds 954.6
  EXPECT_EQ(format_bytes(3 * kGB), "3.00 GB");
}

TEST(UnitsTest, MbConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_mb(from_mb(105.5)), 105.5);
  EXPECT_EQ(from_mb(1.0), kMB);
  EXPECT_DOUBLE_EQ(to_mb(kGB), 1024.0);
}

TEST(UnitsTest, FormatBandwidthClampsNegative) {
  EXPECT_EQ(format_bandwidth(-5.0), "0.00 B/s");
}

}  // namespace
}  // namespace ickpt

#include "memtrack/bitmap.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ickpt::memtrack {
namespace {

TEST(BitmapTest, StartsClear) {
  AtomicBitmap b(200);
  EXPECT_EQ(b.size_bits(), 200u);
  EXPECT_EQ(b.count(), 0u);
  for (std::size_t i = 0; i < 200; ++i) EXPECT_FALSE(b.test(i));
}

TEST(BitmapTest, SetAndTest) {
  AtomicBitmap b(128);
  EXPECT_TRUE(b.set(0));
  EXPECT_TRUE(b.set(63));
  EXPECT_TRUE(b.set(64));
  EXPECT_TRUE(b.set(127));
  EXPECT_FALSE(b.set(0));  // already set
  EXPECT_EQ(b.count(), 4u);
  EXPECT_TRUE(b.test(63));
  EXPECT_FALSE(b.test(62));
}

TEST(BitmapTest, ClearResets) {
  AtomicBitmap b(70);
  b.set(5);
  b.set(69);
  b.clear();
  EXPECT_EQ(b.count(), 0u);
  EXPECT_FALSE(b.test(5));
}

TEST(BitmapTest, DrainReturnsSortedIndicesAndClears) {
  AtomicBitmap b(300);
  for (std::size_t i : {7u, 64u, 65u, 299u}) b.set(i);
  std::vector<std::uint32_t> out;
  b.drain_set_bits(out, 300);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 7u);
  EXPECT_EQ(out[1], 64u);
  EXPECT_EQ(out[2], 65u);
  EXPECT_EQ(out[3], 299u);
  EXPECT_EQ(b.count(), 0u);
}

TEST(BitmapTest, DrainRespectsLimit) {
  AtomicBitmap b(128);
  b.set(10);
  b.set(100);
  std::vector<std::uint32_t> out;
  b.drain_set_bits(out, /*limit_bits=*/50);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 10u);
}

TEST(BitmapTest, CopyDoesNotClear) {
  AtomicBitmap b(64);
  b.set(3);
  std::vector<std::uint32_t> out;
  b.copy_set_bits(out, 64);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(b.test(3));
}

TEST(BitmapTest, ConcurrentSettersLoseNoBits) {
  constexpr std::size_t kBits = 64 * 1024;
  AtomicBitmap b(kBits);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&b, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < kBits;
           i += kThreads) {
        b.set(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(b.count(), kBits);
}

TEST(BitmapTest, WordBoundaryBits) {
  AtomicBitmap b(129);
  b.set(63);
  b.set(64);
  b.set(128);
  std::vector<std::uint32_t> out;
  b.copy_set_bits(out, 129);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], 128u);
}

}  // namespace
}  // namespace ickpt::memtrack

// Sanity of the calibration solver in apps/catalog.cc: the derived
// spike/hot/cold constants must be physically meaningful for every
// Sage configuration, and the phase structures must respect the
// footprint geometry.
#include <gtest/gtest.h>

#include "apps/catalog.h"

namespace ickpt::apps {
namespace {

const Phase* find_kind(const KernelSpec& spec, Phase::Kind kind) {
  for (const auto& p : spec.phases) {
    if (p.kind == kind) return &p;
  }
  return nullptr;
}

TEST(CatalogSolverTest, SageConstantsArePhysical) {
  for (const char* name :
       {"sage-1000", "sage-500", "sage-100", "sage-50"}) {
    auto spec = find_spec(name);
    ASSERT_TRUE(spec.is_ok()) << name;
    auto t = paper_targets(name).value();
    const double active = t.overwrite_frac * 0.816 * t.footprint_max_mb;

    const Phase* spike = find_kind(*spec, Phase::Kind::kSweep);
    const Phase* burst = find_kind(*spec, Phase::Kind::kHotCold);
    const Phase* comm = find_kind(*spec, Phase::Kind::kComm);
    ASSERT_NE(spike, nullptr) << name;
    ASSERT_NE(burst, nullptr) << name;
    ASSERT_NE(comm, nullptr) << name;

    // Spike fits in the active set and is positive.
    EXPECT_GT(spike->segment.len_mb, 0) << name;
    EXPECT_LE(spike->segment.len_mb, active + 1e-9) << name;
    // Hot region positive and below the active set.
    EXPECT_GT(burst->hot_mb, 0) << name;
    EXPECT_LT(burst->hot_mb, active) << name;
    // Cold range covers [hot, active).
    EXPECT_NEAR(burst->cold_range.offset_mb, burst->hot_mb, 1e-9) << name;
    EXPECT_NEAR(burst->cold_range.offset_mb + burst->cold_range.len_mb,
                active, 1e-6)
        << name;
    // Cold rate positive and able to cover the cold range within one
    // iteration (the union-equals-active-set floor).
    EXPECT_GT(burst->cold_rate_mb_s, 0) << name;
    EXPECT_GE(burst->cold_rate_mb_s * burst->duration,
              burst->cold_range.len_mb - 1e-6)
        << name;
    // Phase times: spike + burst + comm ~ the period.
    EXPECT_NEAR(spike->duration + burst->duration + comm->duration,
                t.period_s, 0.01 * t.period_s)
        << name;
  }
}

TEST(CatalogSolverTest, ParityPairsCoverBothParities) {
  // Every parity-gated phase must have a counterpart of the opposite
  // parity with the same duration, or the period would alternate.
  for (const char* name : {"ft", "sweep3d", "sp", "lu", "bt"}) {
    auto spec = find_spec(name);
    ASSERT_TRUE(spec.is_ok());
    double even = 0, odd = 0;
    for (const auto& p : spec->phases) {
      if (p.parity == 0) even += p.duration;
      if (p.parity == 1) odd += p.duration;
    }
    EXPECT_NEAR(even, odd, 1e-9) << name;
  }
}

TEST(CatalogSolverTest, SegmentsStayInsideFootprint) {
  for (const auto& name : catalog_names()) {
    auto spec = find_spec(name);
    ASSERT_TRUE(spec.is_ok());
    for (const auto& p : spec->phases) {
      if (p.kind == Phase::Kind::kSweep) {
        EXPECT_LE(p.segment.offset_mb + p.segment.len_mb,
                  spec->footprint_mb + 1e-6)
            << name;
      }
      if (p.kind == Phase::Kind::kHotCold) {
        EXPECT_LE(p.cold_range.offset_mb + p.cold_range.len_mb,
                  spec->footprint_mb + 1e-6)
            << name;
      }
      EXPECT_GE(p.duration, 0) << name;
    }
  }
}

TEST(CatalogSolverTest, CommGrowthOnlyForSage) {
  for (const auto& name : catalog_names()) {
    auto spec = find_spec(name);
    ASSERT_TRUE(spec.is_ok());
    if (name.rfind("sage", 0) == 0) {
      EXPECT_GT(spec->comm_growth_per_log2p, 0) << name;
      EXPECT_TRUE(spec->dynamic) << name;
    } else {
      EXPECT_FALSE(spec->dynamic) << name;
    }
  }
}

}  // namespace
}  // namespace ickpt::apps

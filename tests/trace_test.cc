#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/arena.h"
#include "memtrack/explicit_engine.h"
#include "trace/time_series.h"
#include "trace/write_trace.h"

namespace ickpt::trace {
namespace {

Sample make_sample(std::uint64_t i, double t0, double t1, std::size_t pages,
                   std::size_t footprint, std::uint64_t recv = 0) {
  Sample s;
  s.index = i;
  s.t_start = t0;
  s.t_end = t1;
  s.iws_pages = pages;
  s.iws_bytes = pages * page_size();
  s.footprint_bytes = footprint;
  s.recv_bytes = recv;
  return s;
}

TEST(SampleTest, DerivedMetrics) {
  Sample s = make_sample(0, 0, 2.0, 10, 40 * page_size());
  EXPECT_DOUBLE_EQ(s.timeslice(), 2.0);
  EXPECT_DOUBLE_EQ(s.ib_bytes_per_s(),
                   static_cast<double>(10 * page_size()) / 2.0);
  EXPECT_DOUBLE_EQ(s.iws_footprint_ratio(), 0.25);
}

TEST(SampleTest, DegenerateValuesAreSafe) {
  Sample s;  // zero everything
  EXPECT_DOUBLE_EQ(s.ib_bytes_per_s(), 0.0);
  EXPECT_DOUBLE_EQ(s.iws_footprint_ratio(), 0.0);
}

TEST(TimeSeriesTest, SeriesExtraction) {
  TimeSeries ts("test");
  ts.add(make_sample(0, 0, 1, 4, 100, 50));
  ts.add(make_sample(1, 1, 2, 8, 100, 70));
  EXPECT_EQ(ts.size(), 2u);
  auto iws = ts.iws_bytes_series();
  EXPECT_DOUBLE_EQ(iws[0], static_cast<double>(4 * page_size()));
  auto ib = ts.ib_series();
  EXPECT_DOUBLE_EQ(ib[1], static_cast<double>(8 * page_size()));
  auto recv = ts.recv_series();
  EXPECT_DOUBLE_EQ(recv[0], 50.0);
  auto fp = ts.footprint_series();
  EXPECT_DOUBLE_EQ(fp[0], 100.0);
}

TEST(TimeSeriesTest, CsvRoundTrip) {
  TimeSeries ts("rt");
  ts.add(make_sample(0, 0, 1, 4, 100, 7));
  ts.add(make_sample(1, 1, 2.5, 9, 120, 0));
  std::string path = ::testing::TempDir() + "/series.csv";
  ASSERT_TRUE(ts.write_csv(path).is_ok());

  auto loaded = TimeSeries::read_csv(path);
  ASSERT_TRUE(loaded.is_ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].iws_pages, 4u);
  EXPECT_EQ((*loaded)[1].footprint_bytes, 120u);
  EXPECT_DOUBLE_EQ((*loaded)[1].t_end, 2.5);
  std::remove(path.c_str());
}

TEST(TimeSeriesTest, ReadMissingFileFails) {
  EXPECT_FALSE(TimeSeries::read_csv("/nonexistent/none.csv").is_ok());
}

TEST(TimeSeriesTest, ReadRejectsGarbageRow) {
  std::string path = ::testing::TempDir() + "/garbage.csv";
  {
    std::ofstream os(path);
    os << "header\nthis,is,not,numbers\n";
  }
  auto loaded = TimeSeries::read_csv(path);
  EXPECT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCorruption);
  std::remove(path.c_str());
}

TEST(WriteTraceTest, RecordSnapshotCompressesRuns) {
  WriteTrace trace(100, 1.0);
  trace.record_snapshot(0, {1, 2, 3, 7, 9, 10});
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].first_page, 1u);
  EXPECT_EQ(trace.events()[0].page_count, 3u);
  EXPECT_EQ(trace.events()[1].first_page, 7u);
  EXPECT_EQ(trace.events()[1].page_count, 1u);
  EXPECT_EQ(trace.events()[2].first_page, 9u);
  EXPECT_EQ(trace.events()[2].page_count, 2u);
}

TEST(WriteTraceTest, ReplayReproducesIWS) {
  WriteTrace trace(32, 1.0);
  trace.record(0, 0, 4);    // slice 0: pages 0-3
  trace.record(1, 10, 2);   // slice 1: pages 10-11
  trace.record(1, 0, 1);    // slice 1: page 0 again
  trace.record(3, 31, 1);   // slice 3 (slice 2 empty)

  memtrack::ExplicitEngine engine;
  PageArena arena(32 * page_size());
  auto iws = trace.replay(engine, arena.span());
  ASSERT_TRUE(iws.is_ok());
  ASSERT_EQ(iws->size(), 4u);
  EXPECT_EQ((*iws)[0], 4u);
  EXPECT_EQ((*iws)[1], 3u);
  EXPECT_EQ((*iws)[2], 0u);
  EXPECT_EQ((*iws)[3], 1u);
}

TEST(WriteTraceTest, ReplayRequiresEnoughMemory) {
  WriteTrace trace(64, 1.0);
  trace.record(0, 0, 1);
  memtrack::ExplicitEngine engine;
  PageArena small(8 * page_size());
  EXPECT_FALSE(trace.replay(engine, small.span()).is_ok());
}

TEST(WriteTraceTest, SaveLoadRoundTrip) {
  WriteTrace trace(16, 2.5);
  trace.record(0, 3, 2);
  trace.record(2, 0, 16);
  std::string path = ::testing::TempDir() + "/trace.wt";
  ASSERT_TRUE(trace.save(path).is_ok());

  auto loaded = WriteTrace::load(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded->region_pages(), 16u);
  EXPECT_DOUBLE_EQ(loaded->timeslice(), 2.5);
  ASSERT_EQ(loaded->events().size(), 2u);
  EXPECT_EQ(loaded->events()[1].page_count, 16u);
  EXPECT_EQ(loaded->slice_count(), 3u);
  std::remove(path.c_str());
}

TEST(WriteTraceTest, LoadRejectsBadHeader) {
  std::string path = ::testing::TempDir() + "/bad.wt";
  {
    std::ofstream os(path);
    os << "not a trace\n";
  }
  auto loaded = WriteTrace::load(path);
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCorruption);
  std::remove(path.c_str());
}

TEST(WriteTraceTest, LoadRejectsTruncatedEvents) {
  std::string path = ::testing::TempDir() + "/trunc.wt";
  {
    std::ofstream os(path);
    os << "ickpt-write-trace v1\n16 1.0 5\n0 1 2\n";  // claims 5, has 1
  }
  auto loaded = WriteTrace::load(path);
  EXPECT_EQ(loaded.status().code(), ErrorCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ickpt::trace

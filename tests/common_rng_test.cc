#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ickpt {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double x = r.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng r(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng base(42);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (s1.next_u64() == s2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace ickpt

// The plan-then-decode restore pipeline: parallel-vs-serial byte
// identity, upto filtering, gap and corruption handling (strict and
// truncated-tail), memory exclusion across long chains, decode-once
// accounting, numeric sequence ordering at the key-pad boundary, and
// store repair.
#include "checkpoint/restore.h"

#include <gtest/gtest.h>

#include <cstring>

#include "checkpoint/checkpointer.h"
#include "checkpoint/format.h"
#include "checkpoint/inspect.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "memtrack/explicit_engine.h"
#include "obs/metrics.h"
#include "region/address_space.h"
#include "storage/backend.h"
#include "tests/chunked_backend_fake.h"

namespace ickpt::checkpoint {
namespace {

using memtrack::ExplicitEngine;
using region::AddressSpace;
using region::AreaKind;

void fill_pattern(std::span<std::byte> mem, std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i < mem.size(); i += 8) {
    std::uint64_t v = rng.next_u64();
    std::memcpy(mem.data() + i, &v, std::min<std::size_t>(8, mem.size() - i));
  }
}

void expect_states_identical(const RestoredState& a, const RestoredState& b) {
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_DOUBLE_EQ(a.virtual_time, b.virtual_time);
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  auto ia = a.blocks.begin();
  auto ib = b.blocks.begin();
  for (; ia != a.blocks.end(); ++ia, ++ib) {
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second.name, ib->second.name);
    EXPECT_EQ(ia->second.kind, ib->second.kind);
    ASSERT_EQ(ia->second.data.size(), ib->second.data.size())
        << "block " << ia->first;
    EXPECT_EQ(std::memcmp(ia->second.data.data(), ib->second.data.data(),
                          ia->second.data.size()),
              0)
        << "content mismatch in block " << ia->first;
  }
}

class RestoreChainTest : public ::testing::Test {
 protected:
  RestoreChainTest()
      : storage_(storage::make_memory_backend()),
        space_(engine_, "rank0"),
        ckpt_(Checkpointer::create(space_, storage_.get()).value()) {}

  /// Map a block, fill it, and return its span.
  std::span<std::byte> add_block(std::size_t pages, const char* name,
                                 std::uint64_t seed) {
    auto b = space_.map(pages * page_size(), AreaKind::kHeap, name);
    EXPECT_TRUE(b.is_ok());
    fill_pattern(b->mem, seed);
    ids_.push_back(b->id);
    return b->mem;
  }

  /// Dirty `page` of `mem` with fresh content and tell the tracker.
  void touch(std::span<std::byte> mem, std::size_t page,
             std::uint64_t seed) {
    auto p = mem.subspan(page * page_size(), page_size());
    fill_pattern(p, seed);
    engine_.note_write(p.data(), p.size());
  }

  void incremental(double vt) {
    auto snap = engine_.collect(true);
    ASSERT_TRUE(snap.is_ok());
    ASSERT_TRUE(ckpt_->checkpoint_incremental(*snap, vt).is_ok());
  }

  std::vector<std::byte> read_object(const std::string& key) {
    auto reader = storage_->open(key);
    EXPECT_TRUE(reader.is_ok());
    std::vector<std::byte> data((*reader)->size());
    std::size_t off = 0;
    while (off < data.size()) {
      auto got = (*reader)->read({data.data() + off, data.size() - off});
      EXPECT_TRUE(got.is_ok());
      if (*got == 0) break;
      off += *got;
    }
    return data;
  }

  void write_object(const std::string& key,
                    std::span<const std::byte> data) {
    auto w = storage_->create(key);
    ASSERT_TRUE(w.is_ok());
    ASSERT_TRUE((*w)->write(data).is_ok());
    ASSERT_TRUE((*w)->close().is_ok());
  }

  /// Flip one byte inside the last page payload (just ahead of the
  /// trailer), which a restore that needs this object must detect.
  void corrupt_payload(const std::string& key) {
    auto data = read_object(key);
    ASSERT_GT(data.size(), sizeof(FileTrailer) + 16);
    data[data.size() - sizeof(FileTrailer) - 8] ^= std::byte{0xFF};
    write_object(key, data);
  }

  /// Destroy the object's header so not even its sequence is readable.
  void corrupt_header(const std::string& key) {
    auto data = read_object(key);
    std::memset(data.data(), 0x5A, std::min<std::size_t>(16, data.size()));
    write_object(key, data);
  }

  /// Standard chain: 1 full + `increments` incrementals over block "a"
  /// (8 pages), each touching two pages.  Chain sequences are
  /// 0..increments.
  std::span<std::byte> build_chain(int increments) {
    auto a = add_block(8, "a", 1);
    EXPECT_TRUE(ckpt_->checkpoint_full(0.0).is_ok());
    EXPECT_TRUE(engine_.arm().is_ok());
    for (int i = 1; i <= increments; ++i) {
      touch(a, static_cast<std::size_t>(i) % 8, 100 + i);
      touch(a, static_cast<std::size_t>(i * 3 + 1) % 8, 200 + i);
      incremental(static_cast<double>(i));
    }
    return a;
  }

  ExplicitEngine engine_;
  std::unique_ptr<storage::StorageBackend> storage_;
  AddressSpace space_;
  std::unique_ptr<Checkpointer> ckpt_;
  std::vector<region::BlockId> ids_;
};

TEST_F(RestoreChainTest, ParallelMatchesSerialAcrossEventfulChain) {
  // An eventful chain: several blocks, a mid-chain unmap (memory
  // exclusion) and a mid-chain map (zero-filled birth + later dirty).
  auto a = add_block(8, "a", 1);
  auto b = add_block(3, "b", 2);
  ASSERT_TRUE(ckpt_->checkpoint_full(0.0).is_ok());
  ASSERT_TRUE(engine_.arm().is_ok());

  touch(a, 2, 11);
  touch(b, 1, 12);
  incremental(1.0);

  ASSERT_TRUE(space_.unmap(ids_[1]).is_ok());  // drop "b"
  touch(a, 5, 13);
  incremental(2.0);

  auto c = add_block(4, "c", 3);
  for (std::size_t p = 0; p < 4; ++p) touch(c, p, 20 + p);
  touch(a, 0, 14);
  incremental(3.0);

  touch(c, 2, 30);
  incremental(4.0);

  auto serial = restore_chain_serial(*storage_, 0);
  ASSERT_TRUE(serial.is_ok());
  EXPECT_EQ(serial->blocks.count(ids_[1]), 0u);  // exclusion applied

  for (int threads : {1, 2, 4}) {
    RestoreOptions opts;
    opts.decode_threads = threads;
    auto planned = restore_chain(*storage_, 0, opts);
    ASSERT_TRUE(planned.is_ok()) << planned.status().to_string();
    expect_states_identical(*serial, *planned);
  }
}

TEST_F(RestoreChainTest, MemoryExclusionAcrossThreeIncrementals) {
  auto a = add_block(4, "a", 1);
  add_block(2, "b", 2);
  add_block(2, "c", 3);
  ASSERT_TRUE(ckpt_->checkpoint_full(0.0).is_ok());
  ASSERT_TRUE(engine_.arm().is_ok());

  ASSERT_TRUE(space_.unmap(ids_[1]).is_ok());
  touch(a, 0, 10);
  incremental(1.0);

  ASSERT_TRUE(space_.unmap(ids_[2]).is_ok());
  touch(a, 1, 11);
  incremental(2.0);

  touch(a, 2, 12);
  incremental(3.0);

  auto planned = restore_chain(*storage_, 0);
  ASSERT_TRUE(planned.is_ok());
  EXPECT_EQ(planned->blocks.size(), 1u);
  EXPECT_EQ(planned->blocks.count(ids_[0]), 1u);
  EXPECT_EQ(std::memcmp(planned->blocks[ids_[0]].data.data(), a.data(),
                        a.size()),
            0);

  auto serial = restore_chain_serial(*storage_, 0);
  ASSERT_TRUE(serial.is_ok());
  expect_states_identical(*serial, *planned);
}

TEST_F(RestoreChainTest, UptoRestoresEveryIntermediateState) {
  build_chain(5);
  for (std::uint64_t upto = 0; upto <= 5; ++upto) {
    auto serial = restore_chain_serial(*storage_, 0, upto);
    ASSERT_TRUE(serial.is_ok()) << "upto " << upto;
    EXPECT_EQ(serial->sequence, upto);
    auto planned = restore_chain(*storage_, 0, upto);
    ASSERT_TRUE(planned.is_ok()) << "upto " << upto;
    expect_states_identical(*serial, *planned);
  }
}

// Regression (the old restorer fully parsed objects newer than `upto`
// before discarding them, so damage there failed unrelated restores):
// a corrupt object NEWER than the requested sequence must not matter.
TEST_F(RestoreChainTest, CorruptPayloadNewerThanUptoIsIgnored) {
  build_chain(4);
  corrupt_payload(checkpoint_key(0, 4));
  auto state = restore_chain(*storage_, 0, /*upto=*/2);
  ASSERT_TRUE(state.is_ok()) << state.status().to_string();
  EXPECT_EQ(state->sequence, 2u);
  // ... while a restore that needs the object still fails.
  auto full = restore_chain(*storage_, 0);
  EXPECT_FALSE(full.is_ok());
  EXPECT_EQ(full.status().code(), ErrorCode::kCorruption);
}

TEST_F(RestoreChainTest, ObliteratedHeaderNewerThanUptoIsIgnored) {
  build_chain(4);
  corrupt_header(checkpoint_key(0, 4));  // sequence only via the key
  auto state = restore_chain(*storage_, 0, /*upto=*/2);
  ASSERT_TRUE(state.is_ok()) << state.status().to_string();
  EXPECT_EQ(state->sequence, 2u);
}

TEST_F(RestoreChainTest, GapIsDetectedStrictly) {
  build_chain(4);
  ASSERT_TRUE(storage_->remove(checkpoint_key(0, 2)).is_ok());
  auto state = restore_chain(*storage_, 0);
  ASSERT_FALSE(state.is_ok());
  EXPECT_EQ(state.status().code(), ErrorCode::kCorruption);
  EXPECT_NE(state.status().message().find("chain gap"), std::string::npos);
}

TEST_F(RestoreChainTest, GapRecoversToPrefixWithTruncatedTail) {
  auto a = build_chain(4);
  (void)a;
  ASSERT_TRUE(storage_->remove(checkpoint_key(0, 2)).is_ok());
  RestoreOptions opts;
  opts.allow_truncated_tail = true;
  auto state = restore_chain(*storage_, 0, opts);
  ASSERT_TRUE(state.is_ok()) << state.status().to_string();
  EXPECT_EQ(state->sequence, 1u);
  auto reference = restore_chain_serial(*storage_, 0, 1);
  ASSERT_TRUE(reference.is_ok());
  expect_states_identical(*reference, *state);
}

TEST_F(RestoreChainTest, CorruptTailStrictVsTruncated) {
  build_chain(4);
  corrupt_payload(checkpoint_key(0, 4));

  auto strict = restore_chain(*storage_, 0);
  ASSERT_FALSE(strict.is_ok());
  EXPECT_EQ(strict.status().code(), ErrorCode::kCorruption);

  RestoreOptions opts;
  opts.allow_truncated_tail = true;
  auto state = restore_chain(*storage_, 0, opts);
  ASSERT_TRUE(state.is_ok()) << state.status().to_string();
  EXPECT_EQ(state->sequence, 3u);
  // The serial oracle still parses every object in the store, so give
  // it a clean one: drop the corrupt tail before comparing.
  ASSERT_TRUE(storage_->remove(checkpoint_key(0, 4)).is_ok());
  auto reference = restore_chain_serial(*storage_, 0, 3);
  ASSERT_TRUE(reference.is_ok());
  expect_states_identical(*reference, *state);
}

TEST_F(RestoreChainTest, CorruptMidChainTruncatesToPrefix) {
  build_chain(5);
  corrupt_payload(checkpoint_key(0, 2));

  auto strict = restore_chain(*storage_, 0);
  ASSERT_FALSE(strict.is_ok());
  EXPECT_EQ(strict.status().code(), ErrorCode::kCorruption);

  RestoreOptions opts;
  opts.allow_truncated_tail = true;
  auto state = restore_chain(*storage_, 0, opts);
  ASSERT_TRUE(state.is_ok()) << state.status().to_string();
  EXPECT_EQ(state->sequence, 1u);  // everything after 2 is unusable too
  // Clean store for the serial oracle (it parses everything).
  for (std::uint64_t s = 2; s <= 5; ++s) {
    ASSERT_TRUE(storage_->remove(checkpoint_key(0, s)).is_ok());
  }
  auto reference = restore_chain_serial(*storage_, 0, 1);
  ASSERT_TRUE(reference.is_ok());
  expect_states_identical(*reference, *state);
}

TEST_F(RestoreChainTest, ObliteratedTailObjectStillRecovers) {
  build_chain(3);
  corrupt_header(checkpoint_key(0, 3));
  RestoreOptions opts;
  opts.allow_truncated_tail = true;
  auto state = restore_chain(*storage_, 0, opts);
  ASSERT_TRUE(state.is_ok()) << state.status().to_string();
  EXPECT_EQ(state->sequence, 2u);
}

TEST_F(RestoreChainTest, DecodesEachSurvivingPageExactlyOnce) {
  build_chain(6);  // 8-page block, 6 incrementals x 2 pages
  auto& reg = obs::registry();
  auto& decoded = reg.counter("restore.pages_decoded");
  auto& skipped = reg.counter("restore.pages_skipped");
  const std::uint64_t d0 = decoded.value();
  const std::uint64_t s0 = skipped.value();

  auto state = restore_chain(*storage_, 0);
  ASSERT_TRUE(state.is_ok());

  // The final footprint is one 8-page block: exactly 8 page decodes no
  // matter how often the chain rewrote them; every superseded write is
  // skipped (CRC-checked but never decoded).
  EXPECT_EQ(decoded.value() - d0, 8u);
  EXPECT_EQ(skipped.value() - s0, 8u + 6u * 2u - 8u);
}

TEST_F(RestoreChainTest, SequentialChunkedBackendRestores) {
  build_chain(4);
  auto reference = restore_chain(*storage_, 0);
  ASSERT_TRUE(reference.is_ok());

  // A 37-byte-per-read, sequential-only view of the same store must
  // produce identical bytes through the scanner and shard fallbacks.
  storage::ChunkedBackend chunked(*storage_, 37);
  for (int threads : {1, 4}) {
    RestoreOptions opts;
    opts.decode_threads = threads;
    auto state = restore_chain(chunked, 0, opts);
    ASSERT_TRUE(state.is_ok()) << state.status().to_string();
    expect_states_identical(*reference, *state);
  }
}

// --- Sequence ordering at the key zero-pad boundary -----------------

/// Rewrite header sequence/parent and re-seal the trailer CRC.
void patch_sequences(std::vector<std::byte>& data, std::uint64_t seq,
                     std::uint64_t parent) {
  FileHeader h;
  std::memcpy(&h, data.data(), sizeof h);
  h.sequence = seq;
  h.parent_sequence = parent;
  std::memcpy(data.data(), &h, sizeof h);
  FileTrailer t;
  std::memcpy(&t, data.data() + data.size() - sizeof t, sizeof t);
  t.crc32 = crc32({data.data(), data.size() - sizeof t});
  std::memcpy(data.data() + data.size() - sizeof t, &t, sizeof t);
}

TEST_F(RestoreChainTest, RestoresChainsPastTheOldPadBoundary) {
  // Chains written by the old 12-digit-pad writer mis-sort
  // lexicographically at sequence >= 10^12 ("1000000000000" sorts
  // before "999999999999").  Rebuild this fixture's chain there and
  // require numeric ordering to restore it.
  const std::uint64_t kBase = 999999999999ull;  // 10^12 - 1
  auto a = build_chain(2);
  (void)a;
  char buf[64];
  for (std::uint64_t s = 0; s <= 2; ++s) {
    auto data = read_object(checkpoint_key(0, s));
    patch_sequences(data, kBase + s, s == 0 ? kBase : kBase + s - 1);
    std::snprintf(buf, sizeof buf, "rank0/ckpt-%012llu",
                  static_cast<unsigned long long>(kBase + s));
    write_object(buf, data);
    ASSERT_TRUE(storage_->remove(checkpoint_key(0, s)).is_ok());
  }

  auto planned = restore_chain(*storage_, 0);
  ASSERT_TRUE(planned.is_ok()) << planned.status().to_string();
  EXPECT_EQ(planned->sequence, kBase + 2);
  auto serial = restore_chain_serial(*storage_, 0);
  ASSERT_TRUE(serial.is_ok()) << serial.status().to_string();
  expect_states_identical(*serial, *planned);

  // And fsck agrees the store is healthy despite the mixed ordering.
  auto report = inspect_chain(*storage_, 0);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report->healthy()) << report->problems.front();
  EXPECT_EQ(report->recoverable_upto, kBase + 2);
}

TEST(CheckpointKeyTest, KeysSortLexicographicallyAcrossPadBoundary) {
  // Regression: with the 12-digit pad these compared the wrong way.
  EXPECT_LT(checkpoint_key(0, 999999999999ull),
            checkpoint_key(0, 1000000000000ull));
  EXPECT_LT(checkpoint_key(0, 0), checkpoint_key(0, UINT64_MAX));
}

// --- Repair ---------------------------------------------------------

TEST_F(RestoreChainTest, RepairQuarantinesCorruptTail) {
  build_chain(4);
  corrupt_payload(checkpoint_key(0, 3));  // kills 3 and orphans 4

  auto rep = repair_store(*storage_);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  EXPECT_TRUE(rep->clean());
  ASSERT_EQ(rep->recovered_upto.count(0u), 1u);
  EXPECT_EQ(rep->recovered_upto[0], 2u);
  EXPECT_EQ(rep->dropped.size(), 2u);

  // The bytes moved, not vanished.
  for (const auto& d : rep->dropped) {
    EXPECT_FALSE(storage_->exists(d.key));
    EXPECT_TRUE(storage_->exists(d.quarantine_key));
  }

  // After repair: strict restore works and fsck is clean.
  auto state = restore_chain(*storage_, 0);
  ASSERT_TRUE(state.is_ok()) << state.status().to_string();
  EXPECT_EQ(state->sequence, 2u);
  auto report = inspect_store(*storage_);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report->healthy());

  // Idempotent: a second pass drops nothing.
  auto again = repair_store(*storage_);
  ASSERT_TRUE(again.is_ok());
  EXPECT_TRUE(again->dropped.empty());
}

TEST_F(RestoreChainTest, RepairQuarantinesUnplaceableOrphan) {
  build_chain(2);
  const std::byte junk[4] = {std::byte{'J'}, std::byte{'U'},
                             std::byte{'N'}, std::byte{'K'}};
  write_object("rank0/not-a-checkpoint", junk);

  auto rep = repair_store(*storage_);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_string();
  ASSERT_EQ(rep->dropped.size(), 1u);
  EXPECT_EQ(rep->dropped[0].key, "rank0/not-a-checkpoint");
  EXPECT_FALSE(storage_->exists("rank0/not-a-checkpoint"));
  EXPECT_EQ(rep->recovered_upto[0], 2u);
}

TEST_F(RestoreChainTest, RepairLeavesHealthyStoreAlone) {
  build_chain(3);
  auto rep = repair_store(*storage_);
  ASSERT_TRUE(rep.is_ok());
  EXPECT_TRUE(rep->dropped.empty());
  EXPECT_TRUE(rep->clean());
  EXPECT_EQ(rep->recovered_upto[0], 3u);
}

}  // namespace
}  // namespace ickpt::checkpoint

#include "common/io_util.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace ickpt::ioutil {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

TEST(IoUtilTest, ReadFullAssemblesShortReads) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Writer dribbles the payload in small pieces; read_full must stitch
  // them into one exact-length read.
  const std::string payload = "incremental checkpointing is feasible";
  std::thread writer([&] {
    for (char c : payload) {
      ASSERT_TRUE(write_full(fds[1], as_bytes(std::string(1, c))).is_ok());
    }
    ::close(fds[1]);
  });
  std::vector<std::byte> buf(payload.size());
  auto got = read_full(fds[0], buf);
  writer.join();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, payload.size());
  EXPECT_EQ(std::memcmp(buf.data(), payload.data(), payload.size()), 0);
  ::close(fds[0]);
}

TEST(IoUtilTest, ReadFullReturnsShortCountAtEof) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(write_full(fds[1], as_bytes("abc")).is_ok());
  ::close(fds[1]);
  std::vector<std::byte> buf(16);
  auto got = read_full(fds[0], buf);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, 3u);
  auto eof = read_full(fds[0], buf);
  ASSERT_TRUE(eof.is_ok());
  EXPECT_EQ(*eof, 0u);
  ::close(fds[0]);
}

TEST(IoUtilTest, WriteFullPushesThroughTinySocketBuffers) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  // Shrink the send buffer so a large write must go through several
  // short ::write calls.
  int small = 4096;
  ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof small);
  const std::size_t n = 1u << 20;
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>(i * 131 + 7);
  }
  std::thread writer([&] {
    ASSERT_TRUE(write_full(sv[0], out).is_ok());
    ::close(sv[0]);
  });
  std::vector<std::byte> in(n);
  auto got = read_full(sv[1], in);
  writer.join();
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, n);
  EXPECT_EQ(std::memcmp(in.data(), out.data(), n), 0);
  ::close(sv[1]);
}

TEST(IoUtilTest, WriteFullReportsErrno) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);
  // Writing to a pipe with no reader raises SIGPIPE by default; tests
  // want the EPIPE status instead.
  ::signal(SIGPIPE, SIG_IGN);
  auto st = write_full(fds[1], as_bytes("doomed"));
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), ErrorCode::kIoError);
  ::close(fds[1]);
}

TEST(IoUtilTest, GenericReadFullHandlesChunkedSources) {
  // A source that returns at most 3 bytes per call.
  const std::string payload = "0123456789abcdef";
  std::size_t pos = 0;
  auto rd = [&](std::span<std::byte> out) -> Result<std::size_t> {
    const std::size_t n =
        std::min({out.size(), std::size_t{3}, payload.size() - pos});
    std::memcpy(out.data(), payload.data() + pos, n);
    pos += n;
    return n;
  };
  std::vector<std::byte> buf(payload.size());
  auto got = read_full(rd, buf);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, payload.size());
  EXPECT_EQ(std::memcmp(buf.data(), payload.data(), payload.size()), 0);

  // EOF mid-request yields a short count, not an error.
  pos = 0;
  std::vector<std::byte> big(64);
  auto short_got = read_full(rd, big);
  ASSERT_TRUE(short_got.is_ok());
  EXPECT_EQ(*short_got, payload.size());

  // Errors propagate unchanged.
  auto bad = [](std::span<std::byte>) -> Result<std::size_t> {
    return io_error("injected");
  };
  std::vector<std::byte> tiny(4);
  EXPECT_EQ(read_full(bad, tiny).status().code(), ErrorCode::kIoError);
}

TEST(SendFullTest, MovesEveryByteAcrossASocketPair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::vector<std::byte> payload(100000, std::byte{0xab});
  std::thread receiver([&] {
    std::vector<std::byte> got(payload.size());
    auto n = read_full(sv[1], got);
    EXPECT_TRUE(n.is_ok());
    EXPECT_EQ(*n, payload.size());
    EXPECT_EQ(std::memcmp(got.data(), payload.data(), got.size()), 0);
  });
  EXPECT_TRUE(send_full(sv[0], payload).is_ok());
  receiver.join();
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(SendFullTest, ClosedPeerIsAStatusNotSigpipe) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[1]);  // peer hangs up before we send
  // With plain write() this would raise SIGPIPE and kill the test
  // runner; MSG_NOSIGNAL turns it into EPIPE -> kIoError.
  std::vector<std::byte> payload(4096, std::byte{0x01});
  auto st = send_full(sv[0], payload);
  EXPECT_EQ(st.code(), ErrorCode::kIoError);
  ::close(sv[0]);
}

}  // namespace
}  // namespace ickpt::ioutil

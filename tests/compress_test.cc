// Page encodings: zero elision, word RLE, plain fallback, and the
// end-to-end effect on checkpoint size.
#include "checkpoint/compress.h"

#include <gtest/gtest.h>

#include <cstring>

#include "checkpoint/checkpointer.h"
#include "checkpoint/restore.h"
#include "common/page.h"
#include "common/rng.h"
#include "memtrack/explicit_engine.h"
#include "region/address_space.h"
#include "storage/backend.h"

namespace ickpt::checkpoint {
namespace {

std::vector<std::byte> make_page(std::byte fill) {
  return std::vector<std::byte>(page_size(), fill);
}

TEST(CompressTest, ZeroPageDetection) {
  auto page = make_page(std::byte{0});
  EXPECT_TRUE(is_zero_page(page));
  page[page.size() - 1] = std::byte{1};
  EXPECT_FALSE(is_zero_page(page));
  page[page.size() - 1] = std::byte{0};
  page[0] = std::byte{1};
  EXPECT_FALSE(is_zero_page(page));
}

TEST(CompressTest, ZeroPageEncodesToNothing) {
  auto page = make_page(std::byte{0});
  std::vector<std::byte> out;
  EXPECT_EQ(encode_page(page, out), PageEncoding::kZero);
  EXPECT_TRUE(out.empty());

  std::vector<std::byte> decoded(page_size(), std::byte{0x55});
  ASSERT_TRUE(decode_page(PageEncoding::kZero, out, decoded).is_ok());
  EXPECT_TRUE(is_zero_page(decoded));
}

TEST(CompressTest, ConstantPageUsesRle) {
  auto page = make_page(std::byte{0x42});
  std::vector<std::byte> out;
  EXPECT_EQ(encode_page(page, out), PageEncoding::kRle);
  EXPECT_EQ(out.size(), 16u);  // one (count, word) pair

  std::vector<std::byte> decoded(page_size());
  ASSERT_TRUE(decode_page(PageEncoding::kRle, out, decoded).is_ok());
  EXPECT_EQ(std::memcmp(decoded.data(), page.data(), page.size()), 0);
}

TEST(CompressTest, StructuredPageRoundTrips) {
  // A few constant runs: typical of initialized coordinate arrays.
  std::vector<std::byte> page(page_size());
  auto* words = reinterpret_cast<std::uint64_t*>(page.data());
  std::size_t n = page.size() / 8;
  for (std::size_t i = 0; i < n; ++i) words[i] = i / 64;

  std::vector<std::byte> out;
  auto enc = encode_page(page, out);
  EXPECT_EQ(enc, PageEncoding::kRle);
  EXPECT_LT(out.size(), page.size() / 2);

  std::vector<std::byte> decoded(page_size());
  ASSERT_TRUE(decode_page(enc, out, decoded).is_ok());
  EXPECT_EQ(std::memcmp(decoded.data(), page.data(), page.size()), 0);
}

TEST(CompressTest, RandomPageFallsBackToPlain) {
  std::vector<std::byte> page(page_size());
  Rng rng(7);
  for (auto& b : page) b = static_cast<std::byte>(rng.next_u64());
  std::vector<std::byte> out;
  EXPECT_EQ(encode_page(page, out), PageEncoding::kPlain);
  EXPECT_EQ(out.size(), page.size());

  std::vector<std::byte> decoded(page_size());
  ASSERT_TRUE(decode_page(PageEncoding::kPlain, out, decoded).is_ok());
  EXPECT_EQ(std::memcmp(decoded.data(), page.data(), page.size()), 0);
}

TEST(CompressTest, DecodeRejectsMalformedPayloads) {
  std::vector<std::byte> page(page_size());
  // Zero encoding with spurious payload.
  std::vector<std::byte> junk(8, std::byte{1});
  EXPECT_EQ(decode_page(PageEncoding::kZero, junk, page).code(),
            ErrorCode::kCorruption);
  // Plain with wrong size.
  EXPECT_EQ(decode_page(PageEncoding::kPlain, junk, page).code(),
            ErrorCode::kCorruption);
  // RLE with non-multiple size.
  std::vector<std::byte> odd(13, std::byte{1});
  EXPECT_EQ(decode_page(PageEncoding::kRle, odd, page).code(),
            ErrorCode::kCorruption);
  // RLE overrunning the page.
  struct {
    std::uint64_t count;
    std::uint64_t word;
  } pair = {page_size(), 7};  // count in words > page words
  std::vector<std::byte> overrun(16);
  std::memcpy(overrun.data(), &pair, 16);
  EXPECT_EQ(decode_page(PageEncoding::kRle, overrun, page).code(),
            ErrorCode::kCorruption);
  // RLE underfilling the page.
  pair.count = 1;
  std::memcpy(overrun.data(), &pair, 16);
  EXPECT_EQ(decode_page(PageEncoding::kRle, overrun, page).code(),
            ErrorCode::kCorruption);
  // Unknown encoding id.
  EXPECT_EQ(decode_page(static_cast<PageEncoding>(99), {}, page).code(),
            ErrorCode::kCorruption);
}

TEST(CompressTest, CheckpointOfSparseBlockShrinks) {
  memtrack::ExplicitEngine engine;
  region::AddressSpace space(engine, "r");
  auto block = space.map(64 * page_size(), region::AreaKind::kHeap, "b");
  ASSERT_TRUE(block.is_ok());
  // Touch 4 pages with noise; the rest stay zero.
  Rng rng(3);
  for (std::size_t p : {0u, 10u, 20u, 30u}) {
    auto* words = reinterpret_cast<std::uint64_t*>(
        block->mem.data() + p * page_size());
    for (std::size_t i = 0; i < page_size() / 8; ++i) {
      words[i] = rng.next_u64();
    }
  }
  auto storage = storage::make_memory_backend();

  CheckpointerOptions with;
  auto compressed = Checkpointer::create(space, storage.get(), with).value();
  auto m1 = compressed->checkpoint_full(0.0);
  ASSERT_TRUE(m1.is_ok());
  EXPECT_EQ(m1->zero_pages, 60u);
  EXPECT_LT(m1->file_bytes, 6 * page_size());

  CheckpointerOptions without;
  without.rank = 1;
  without.compress = false;
  auto plain = Checkpointer::create(space, storage.get(), without).value();
  auto m2 = plain->checkpoint_full(0.0);
  ASSERT_TRUE(m2.is_ok());
  EXPECT_GT(m2->file_bytes, 64 * page_size());
  EXPECT_GT(m2->file_bytes, 10 * m1->file_bytes);

  // Both restore to identical content.
  auto s1 = restore_chain(*storage, 0);
  auto s2 = restore_chain(*storage, 1);
  ASSERT_TRUE(s1.is_ok());
  ASSERT_TRUE(s2.is_ok());
  const auto& d1 = s1->blocks.begin()->second.data;
  const auto& d2 = s2->blocks.begin()->second.data;
  ASSERT_EQ(d1.size(), d2.size());
  EXPECT_EQ(std::memcmp(d1.data(), d2.data(), d1.size()), 0);
  EXPECT_EQ(std::memcmp(d1.data(), block->mem.data(), d1.size()), 0);
}

}  // namespace
}  // namespace ickpt::checkpoint

#include "common/page.h"

#include <gtest/gtest.h>

namespace ickpt {
namespace {

TEST(PageTest, PageSizeIsPowerOfTwo) {
  std::size_t p = page_size();
  EXPECT_GT(p, 0u);
  EXPECT_EQ(p & (p - 1), 0u);
  EXPECT_EQ(std::size_t{1} << page_shift(), p);
}

TEST(PageTest, FloorAndCeil) {
  std::size_t p = page_size();
  EXPECT_EQ(page_floor(0), 0u);
  EXPECT_EQ(page_ceil(0), 0u);
  EXPECT_EQ(page_floor(1), 0u);
  EXPECT_EQ(page_ceil(1), p);
  EXPECT_EQ(page_floor(p), p);
  EXPECT_EQ(page_ceil(p), p);
  EXPECT_EQ(page_floor(p + 1), p);
  EXPECT_EQ(page_ceil(p + 1), 2 * p);
}

TEST(PageTest, PagesFor) {
  std::size_t p = page_size();
  EXPECT_EQ(pages_for(0), 0u);
  EXPECT_EQ(pages_for(1), 1u);
  EXPECT_EQ(pages_for(p), 1u);
  EXPECT_EQ(pages_for(p + 1), 2u);
  EXPECT_EQ(pages_for(10 * p), 10u);
}

TEST(PageTest, RangeContainsAndOverlaps) {
  std::size_t p = page_size();
  PageRange a{0, 4 * p};
  PageRange b{4 * p, 8 * p};
  PageRange c{2 * p, 6 * p};
  EXPECT_TRUE(a.contains(0));
  EXPECT_TRUE(a.contains(4 * p - 1));
  EXPECT_FALSE(a.contains(4 * p));
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(b.overlaps(c));
  EXPECT_EQ(a.pages(), 4u);
  EXPECT_EQ(a.bytes(), 4 * p);
}

TEST(PageTest, RangeCovering) {
  std::size_t p = page_size();
  alignas(64) static char buf[1];
  PageRange r = page_range_covering(buf, 1);
  EXPECT_EQ(r.begin % p, 0u);
  EXPECT_EQ(r.end % p, 0u);
  EXPECT_EQ(r.pages(), 1u);
  EXPECT_TRUE(r.contains(reinterpret_cast<std::uintptr_t>(buf)));
}

TEST(PageTest, RangeCoveringSpansTwoPages) {
  std::size_t p = page_size();
  PageRange r = page_range_covering(reinterpret_cast<void*>(p - 1), 2);
  EXPECT_EQ(r.begin, 0u);
  EXPECT_EQ(r.end, 2 * p);
}

TEST(PageTest, EmptyRange) {
  PageRange r{100, 100};
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.bytes(), 0u);
}

}  // namespace
}  // namespace ickpt

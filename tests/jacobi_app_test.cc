// Jacobi3DApp: a real stencil solver behind the AppKernel interface.
#include "apps/jacobi_app.h"

#include "apps/catalog.h"

#include <gtest/gtest.h>

#include "core/study.h"
#include "memtrack/explicit_engine.h"
#include "sim/virtual_clock.h"

namespace ickpt::apps {
namespace {

AppConfig tiny_config() {
  AppConfig cfg;
  cfg.footprint_scale = 1.0 / 64.0;  // ~1 MB: n ~ 40
  return cfg;
}

TEST(JacobiAppTest, InitAllocatesTwoGrids) {
  memtrack::ExplicitEngine engine;
  sim::VirtualClock clock;
  Jacobi3DApp app(tiny_config(), engine, clock);
  ASSERT_TRUE(app.init().is_ok());
  EXPECT_EQ(app.space().block_count(), 2u);
  EXPECT_GE(app.grid_dim(), 8u);
  EXPECT_GT(app.footprint_bytes(), 0u);
  EXPECT_GT(clock.now(), 0.0);
}

TEST(JacobiAppTest, IterateBeforeInitFails) {
  memtrack::ExplicitEngine engine;
  sim::VirtualClock clock;
  Jacobi3DApp app(tiny_config(), engine, clock);
  EXPECT_EQ(app.iterate().code(), ErrorCode::kFailedPrecondition);
}

TEST(JacobiAppTest, HeatDiffusesFromBoundary) {
  memtrack::ExplicitEngine engine;
  sim::VirtualClock clock;
  Jacobi3DApp app(tiny_config(), engine, clock);
  ASSERT_TRUE(app.init().is_ok());
  double before = app.checksum();
  for (int s = 0; s < 5; ++s) ASSERT_TRUE(app.iterate().is_ok());
  // Heat flows inward from the hot plane: total energy grows.
  EXPECT_GT(app.checksum(), before);
  EXPECT_EQ(app.iterations(), 5u);
}

TEST(JacobiAppTest, IterationAdvancesClockByPeriod) {
  memtrack::ExplicitEngine engine;
  sim::VirtualClock clock;
  Jacobi3DApp app(tiny_config(), engine, clock);
  ASSERT_TRUE(app.init().is_ok());
  double t0 = clock.now();
  ASSERT_TRUE(app.iterate().is_ok());
  EXPECT_NEAR(clock.now() - t0, Jacobi3DApp::kPeriod, 0.05);
}

TEST(JacobiAppTest, DoubleBufferingDirtiesHalfFootprint) {
  memtrack::ExplicitEngine engine;
  sim::VirtualClock clock;
  Jacobi3DApp app(tiny_config(), engine, clock);
  ASSERT_TRUE(app.init().is_ok());
  ASSERT_TRUE(engine.arm().is_ok());
  ASSERT_TRUE(app.iterate().is_ok());
  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  double ratio = static_cast<double>(snap->dirty_bytes()) /
                 static_cast<double>(app.footprint_bytes());
  // One sweep writes the interior of one grid: just under half.
  EXPECT_GT(ratio, 0.30);
  EXPECT_LT(ratio, 0.55);
}

TEST(JacobiAppTest, RunsThroughStudyPipeline) {
  StudyConfig cfg;
  cfg.app = "jacobi3d";
  cfg.timeslice = 1.0;
  cfg.footprint_scale = 1.0 / 64.0;
  cfg.run_vs = 12.0;
  auto r = run_study(cfg);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_GT(r->ib.avg_ib, 0.0);
  EXPECT_DOUBLE_EQ(r->period_s, Jacobi3DApp::kPeriod);
  EXPECT_GT(r->iterations, 10u);
}

TEST(JacobiAppTest, MultiRankHaloExchange) {
  StudyConfig cfg;
  cfg.app = "jacobi3d";
  cfg.nprocs = 3;
  cfg.footprint_scale = 1.0 / 64.0;
  cfg.run_vs = 6.0;
  auto r = run_study(cfg);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  auto traffic = analysis::compute_traffic_stats(r->per_rank[0]);
  EXPECT_GT(traffic.total_recv, 0.0);  // halos actually travelled
}

TEST(JacobiAppTest, ListedAsExtraApp) {
  auto extras = extra_app_names();
  ASSERT_EQ(extras.size(), 1u);
  EXPECT_EQ(extras[0], "jacobi3d");
  auto period = app_period("jacobi3d");
  ASSERT_TRUE(period.is_ok());
  EXPECT_DOUBLE_EQ(*period, Jacobi3DApp::kPeriod);
  EXPECT_FALSE(find_spec("jacobi3d").is_ok());  // not a scripted app
}

}  // namespace
}  // namespace ickpt::apps

// Synthetic burst-model generator + its use as analysis ground truth.
#include "trace/synthetic.h"

#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "analysis/period.h"
#include "common/units.h"

namespace ickpt::trace {
namespace {

BurstModel basic_model() {
  BurstModel m;
  m.period_s = 10;
  m.burst_frac = 0.8;
  m.spike_mb = 20;
  m.hot_mb = 15;
  m.cold_mb_per_s = 2;
  m.active_mb = 40;
  m.footprint_mb = 100;
  m.comm_recv_mb_per_s = 1.0;
  return m;
}

TEST(SyntheticTest, SliceCountMatchesDuration) {
  auto series = synthesize(basic_model(), 1.0, 50.0);
  EXPECT_EQ(series.size(), 50u);
  auto coarse = synthesize(basic_model(), 5.0, 50.0);
  EXPECT_EQ(coarse.size(), 10u);
}

TEST(SyntheticTest, InitBurstInFirstSlice) {
  auto series = synthesize(basic_model(), 1.0, 20.0);
  EXPECT_NEAR(static_cast<double>(series[0].iws_bytes),
              100.0 * static_cast<double>(kMB),
              static_cast<double>(kMB));
  EXPECT_GT(series[0].iws_bytes, series[1].iws_bytes);
}

TEST(SyntheticTest, BurstAndGapStructure) {
  auto series = synthesize(basic_model(), 1.0, 40.0);
  // Slices in the comm gap (phase in [8, 10)) have no writes but
  // positive receive traffic.
  const auto& gap = series[8];  // t in [8, 9): gap of iteration 0
  EXPECT_EQ(gap.iws_bytes, 0u);
  EXPECT_GT(gap.recv_bytes, 0u);
  // Burst slices (away from the spike) carry hot + cold.
  const auto& burst = series[12];  // t in [12,13): phase 2 of iter 1
  EXPECT_NEAR(static_cast<double>(burst.iws_bytes),
              17.0 * static_cast<double>(kMB),
              0.5 * static_cast<double>(kMB));
  EXPECT_EQ(burst.recv_bytes, 0u);
}

TEST(SyntheticTest, SpikeSliceIsLargest) {
  auto series = synthesize(basic_model(), 1.0, 40.0);
  // Slice at t=10 contains iteration 1's spike: spike + hot + cold.
  const auto& spike = series[10];
  EXPECT_NEAR(static_cast<double>(spike.iws_bytes),
              37.0 * static_cast<double>(kMB),
              0.5 * static_cast<double>(kMB));
}

TEST(SyntheticTest, ActiveSetCapsWideWindows) {
  auto series = synthesize(basic_model(), 8.0, 80.0);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LE(series[i].iws_bytes,
              static_cast<std::size_t>(2 * 40.0 *
                                       static_cast<double>(kMB)))
        << "slice " << i;
  }
}

TEST(SyntheticTest, PeriodDetectionRecoversModelPeriod) {
  // The analysis stack must recover the generator's period across a
  // grid of models — ground-truth property testing.
  for (double period : {6.0, 10.0, 14.0, 25.0}) {
    for (double burst_frac : {0.6, 0.8}) {
      BurstModel m = basic_model();
      m.period_s = period;
      m.burst_frac = burst_frac;
      auto series = synthesize(m, 1.0, 20 * period);
      auto iws = series.iws_bytes_series();
      iws.erase(iws.begin());  // drop the init peak
      auto est = analysis::detect_period(iws, 1.0);
      ASSERT_TRUE(est.found) << "period " << period;
      EXPECT_NEAR(est.period, period, 1.0)
          << "period " << period << " burst " << burst_frac;
    }
  }
}

TEST(SyntheticTest, AvgIBPredictionMatchesSeries) {
  BurstModel m = basic_model();
  auto series = synthesize(m, 1.0, 400.0);
  auto stats = analysis::compute_ib_stats(series, /*skip_first=*/1);
  double predicted = expected_avg_ib_mb(m, 1.0) * static_cast<double>(kMB);
  EXPECT_NEAR(stats.avg_ib, predicted, 0.15 * predicted);
}

TEST(SyntheticTest, IBDecaysWithTimeslice) {
  BurstModel m = basic_model();
  auto fine = synthesize(m, 1.0, 300.0);
  auto coarse = synthesize(m, 10.0, 300.0);
  auto f = analysis::compute_ib_stats(fine, 1);
  auto c = analysis::compute_ib_stats(coarse, 1);
  EXPECT_LT(c.avg_ib, 0.6 * f.avg_ib);
}

}  // namespace
}  // namespace ickpt::trace

// Behavioural tests of the proxy kernels: allocation shape, phase
// structure, determinism, and dynamic-memory behaviour.
#include <gtest/gtest.h>

#include "apps/catalog.h"
#include "apps/scripted_kernel.h"
#include "common/units.h"
#include "memtrack/explicit_engine.h"
#include "sim/virtual_clock.h"

namespace ickpt::apps {
namespace {

using memtrack::ExplicitEngine;

AppConfig small_config() {
  AppConfig cfg;
  cfg.footprint_scale = 1.0 / 64.0;
  return cfg;
}

TEST(CatalogTest, AllNamesResolve) {
  for (const auto& name : catalog_names()) {
    auto spec = find_spec(name);
    ASSERT_TRUE(spec.is_ok()) << name;
    EXPECT_EQ(spec->name, name);
    EXPECT_GT(spec->footprint_mb, 0) << name;
    EXPECT_GT(spec->period_s, 0) << name;
    EXPECT_FALSE(spec->phases.empty()) << name;
    EXPECT_TRUE(paper_targets(name).is_ok()) << name;
  }
  EXPECT_FALSE(find_spec("no-such-app").is_ok());
  EXPECT_FALSE(paper_targets("no-such-app").is_ok());
}

TEST(CatalogTest, Figure2NamesAreSubsetOfCatalog) {
  auto all = catalog_names();
  for (const auto& name : figure2_names()) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end()) << name;
  }
  EXPECT_EQ(figure2_names().size(), 6u);
}

TEST(CatalogTest, PhaseDurationsSumToPeriod) {
  for (const auto& name : catalog_names()) {
    auto spec = find_spec(name);
    ASSERT_TRUE(spec.is_ok());
    // Count parity-gated phases once (they alternate iterations).
    double sum = 0;
    for (const auto& p : spec->phases) {
      if (p.parity == 1) continue;
      sum += p.duration;
    }
    EXPECT_NEAR(sum, spec->period_s, 0.05 * spec->period_s) << name;
  }
}

TEST(CatalogTest, PaperTargetsMatchTable2And3) {
  auto t = paper_targets("sage-1000");
  ASSERT_TRUE(t.is_ok());
  EXPECT_DOUBLE_EQ(t->footprint_max_mb, 954.6);
  EXPECT_DOUBLE_EQ(t->footprint_avg_mb, 779.5);
  EXPECT_DOUBLE_EQ(t->period_s, 145);
  EXPECT_DOUBLE_EQ(t->overwrite_frac, 0.53);
  auto ft = paper_targets("ft");
  ASSERT_TRUE(ft.is_ok());
  EXPECT_DOUBLE_EQ(ft->avg_ib1_mb_s, 92.1);
}

TEST(ScriptedKernelTest, InitAllocatesFootprint) {
  ExplicitEngine engine;
  sim::VirtualClock clock;
  auto app = make_app("lu", small_config(), engine, clock);
  ASSERT_TRUE(app.is_ok());
  ASSERT_TRUE((*app)->init().is_ok());
  double expected = 16.6 * static_cast<double>(kMB) / 64.0;
  EXPECT_NEAR(static_cast<double>((*app)->footprint_bytes()), expected,
              expected * 0.02 + 2 * static_cast<double>(page_size()));
  EXPECT_GT(clock.now(), 0.0);  // init consumed virtual time
}

TEST(ScriptedKernelTest, IterateAdvancesClockByPeriod) {
  ExplicitEngine engine;
  sim::VirtualClock clock;
  auto app = make_app("sp", small_config(), engine, clock);
  ASSERT_TRUE(app.is_ok());
  ASSERT_TRUE((*app)->init().is_ok());
  double t0 = clock.now();
  ASSERT_TRUE((*app)->iterate().is_ok());
  EXPECT_NEAR(clock.now() - t0, 0.16, 0.02);
  EXPECT_NEAR((*app)->period(), 0.16, 0.02);
}

TEST(ScriptedKernelTest, RunUntilReachesTargetTime) {
  ExplicitEngine engine;
  sim::VirtualClock clock;
  auto app = make_app("bt", small_config(), engine, clock);
  ASSERT_TRUE(app.is_ok());
  ASSERT_TRUE((*app)->init().is_ok());
  ASSERT_TRUE((*app)->run_until(clock, 5.0).is_ok());
  EXPECT_GE(clock.now(), 5.0);
  auto* kernel = static_cast<ScriptedKernel*>(app->get());
  EXPECT_GT(kernel->iterations(), 5u);
}

TEST(ScriptedKernelTest, StaticAppsHaveConstantFootprint) {
  ExplicitEngine engine;
  sim::VirtualClock clock;
  auto app = make_app("sweep3d", small_config(), engine, clock);
  ASSERT_TRUE(app.is_ok());
  ASSERT_TRUE((*app)->init().is_ok());
  std::size_t fp0 = (*app)->footprint_bytes();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE((*app)->iterate().is_ok());
  EXPECT_EQ((*app)->footprint_bytes(), fp0);
}

TEST(ScriptedKernelTest, SageFootprintFollowsAmrWave) {
  ExplicitEngine engine;
  sim::VirtualClock clock;
  AppConfig cfg = small_config();
  auto app = make_app("sage-100", cfg, engine, clock);
  ASSERT_TRUE(app.is_ok());
  ASSERT_TRUE((*app)->init().is_ok());
  std::vector<std::size_t> footprints;
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE((*app)->iterate().is_ok());
    footprints.push_back((*app)->footprint_bytes());
  }
  auto [mn, mx] = std::minmax_element(footprints.begin(), footprints.end());
  EXPECT_GT(*mx, *mn);  // footprint oscillates
  // Amplitude: max/min should reflect the fill wave (1.0 vs 0.632).
  EXPECT_GT(static_cast<double>(*mx) / static_cast<double>(*mn), 1.2);
}

TEST(ScriptedKernelTest, ParityPhasesAlternate) {
  // FT writes buffer A on even iterations, buffer B on odd.
  ExplicitEngine engine;
  sim::VirtualClock clock;
  auto app = make_app("ft", small_config(), engine, clock);
  ASSERT_TRUE(app.is_ok());
  ASSERT_TRUE((*app)->init().is_ok());

  auto iterate_and_collect = [&]() {
    EXPECT_TRUE(engine.arm().is_ok());
    EXPECT_TRUE((*app)->iterate().is_ok());
    auto snap = engine.collect(false);
    EXPECT_TRUE(snap.is_ok());
    // Return the set of dirty page indices of the (single) region.
    std::set<std::uint32_t> pages;
    for (const auto& r : snap->regions) {
      pages.insert(r.dirty_pages.begin(), r.dirty_pages.end());
    }
    return pages;
  };
  auto even = iterate_and_collect();
  auto odd = iterate_and_collect();
  auto even2 = iterate_and_collect();
  EXPECT_EQ(even, even2);  // same parity -> same pages
  EXPECT_NE(even, odd);    // opposite parity -> different buffer
}

TEST(ScriptedKernelTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    ExplicitEngine engine;
    sim::VirtualClock clock;
    AppConfig cfg;
    cfg.footprint_scale = 1.0 / 64.0;
    cfg.seed = 1234;
    auto app = make_app("sage-50", cfg, engine, clock);
    EXPECT_TRUE(app.is_ok());
    EXPECT_TRUE((*app)->init().is_ok());
    std::vector<std::size_t> footprints;
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE((*app)->iterate().is_ok());
      footprints.push_back((*app)->footprint_bytes());
    }
    return footprints;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ScriptedKernelTest, WriteLogicalTouchesTrackedMemory) {
  ExplicitEngine engine;
  sim::VirtualClock clock;
  auto app = make_app("lu", small_config(), engine, clock);
  ASSERT_TRUE(app.is_ok());
  ASSERT_TRUE((*app)->init().is_ok());
  ASSERT_TRUE(engine.arm().is_ok());
  auto* kernel = static_cast<ScriptedKernel*>(app->get());
  kernel->write_logical(0, 3 * page_size());
  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(snap->dirty_pages(), 3u);
}

TEST(ScriptedKernelTest, CommPhaseStretchesWithRankCount) {
  // §6.4.2's mechanism: the communication phase grows ~log2(P), so the
  // period grows slightly and per-rank IB drops slightly.
  auto period_at = [](int nprocs) {
    ExplicitEngine engine;
    sim::VirtualClock clock;
    AppConfig cfg;
    cfg.footprint_scale = 1.0 / 64.0;
    cfg.nprocs = nprocs;
    auto app = make_app("sage-50", cfg, engine, clock);
    EXPECT_TRUE(app.is_ok());
    return (*app)->period();
  };
  double p8 = period_at(8);
  double p64 = period_at(64);
  EXPECT_GT(p64, p8);
  EXPECT_LT(p64, 1.2 * p8);  // "slightly": a few percent, not 2x
  // Static NAS apps do not stretch.
  ExplicitEngine engine;
  sim::VirtualClock clock;
  AppConfig cfg;
  cfg.footprint_scale = 1.0 / 64.0;
  cfg.nprocs = 64;
  auto bt = make_app("bt", cfg, engine, clock);
  ASSERT_TRUE(bt.is_ok());
  EXPECT_NEAR((*bt)->period(), 0.4, 1e-9);
}

TEST(ScriptedKernelTest, UnknownAppFails) {
  ExplicitEngine engine;
  sim::VirtualClock clock;
  EXPECT_FALSE(make_app("quantum-chromodynamics", small_config(), engine,
                        clock)
                   .is_ok());
}

}  // namespace
}  // namespace ickpt::apps

#include "analysis/bursts.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "trace/synthetic.h"

namespace ickpt::analysis {
namespace {

trace::TimeSeries square_wave(int cycles, int burst, int gap,
                              std::size_t hi_mb, std::size_t lo_mb) {
  trace::TimeSeries ts;
  std::uint64_t i = 0;
  auto add = [&](std::size_t mb) {
    trace::Sample s;
    s.index = i;
    s.t_start = static_cast<double>(i);
    s.t_end = static_cast<double>(i + 1);
    s.iws_bytes = mb * kMB;
    ts.add(s);
    ++i;
  };
  for (int c = 0; c < cycles; ++c) {
    for (int b = 0; b < burst; ++b) add(hi_mb);
    for (int g = 0; g < gap; ++g) add(lo_mb);
  }
  return ts;
}

TEST(BurstsTest, SegmentsSquareWave) {
  auto ts = square_wave(5, 6, 4, 100, 2);
  auto seg = segment_bursts(ts);
  ASSERT_EQ(seg.bursts.size(), 5u);
  EXPECT_NEAR(seg.mean_burst_s, 6.0, 0.01);
  EXPECT_NEAR(seg.mean_gap_s, 4.0, 0.01);
  EXPECT_NEAR(seg.duty_cycle, 0.6, 0.01);
  EXPECT_DOUBLE_EQ(seg.bursts[0].peak_iws,
                   100.0 * static_cast<double>(kMB));
  EXPECT_EQ(seg.bursts[1].first_slice, 10u);
}

TEST(BurstsTest, EmptyAndFlatSeries) {
  trace::TimeSeries empty;
  EXPECT_TRUE(segment_bursts(empty).bursts.empty());

  auto flat = square_wave(1, 10, 0, 50, 0);
  auto seg = segment_bursts(flat);
  // All slices identical: threshold equals the value, nothing exceeds
  // it strictly -> no burst detected (or one; both acceptable).
  EXPECT_LE(seg.bursts.size(), 1u);
}

TEST(BurstsTest, SkipFirstDropsInitPeak) {
  auto ts = square_wave(3, 5, 5, 80, 1);
  // Prepend a giant init slice by rebuilding with index shift.
  trace::TimeSeries with_init;
  trace::Sample init;
  init.t_start = -1;
  init.t_end = 0;
  init.iws_bytes = 1000 * kMB;
  with_init.add(init);
  for (const auto& s : ts.samples()) with_init.add(s);

  auto seg = segment_bursts(with_init, /*skip_first=*/1);
  EXPECT_EQ(seg.bursts.size(), 3u);
}

TEST(BurstsTest, SyntheticModelDutyCycleMatchesBurstFrac) {
  trace::BurstModel m;
  m.period_s = 20;
  m.burst_frac = 0.7;
  m.spike_mb = 10;
  m.hot_mb = 30;
  m.cold_mb_per_s = 3;
  m.active_mb = 80;
  m.footprint_mb = 120;
  auto series = synthesize(m, 1.0, 300.0);
  auto seg = segment_bursts(series, /*skip_first=*/1);
  ASSERT_GE(seg.bursts.size(), 10u);
  EXPECT_NEAR(seg.duty_cycle, 0.7, 0.08);
  EXPECT_NEAR(seg.mean_burst_s, 14.0, 2.0);
  EXPECT_NEAR(seg.mean_gap_s, 6.0, 2.0);
}

TEST(BurstsTest, BurstPeriodMatchesTable3ForSage) {
  // Mean burst + mean gap ~ the main-iteration period: the paper's
  // "the gap between processing bursts identifies the duration of the
  // main iteration".
  trace::BurstModel m;
  m.period_s = 20;  // sage-50
  m.burst_frac = 0.78;
  m.spike_mb = 18;
  m.hot_mb = 11;
  m.cold_mb_per_s = 1.3;
  m.active_mb = 26;
  m.footprint_mb = 55;
  auto series = synthesize(m, 1.0, 400.0);
  auto seg = segment_bursts(series, 1);
  ASSERT_GE(seg.bursts.size(), 2u);
  EXPECT_NEAR(seg.mean_burst_s + seg.mean_gap_s, 20.0, 2.0);
}

}  // namespace
}  // namespace ickpt::analysis

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/feasibility.h"
#include "analysis/metrics.h"
#include "analysis/period.h"
#include "common/page.h"
#include "common/units.h"

namespace ickpt::analysis {
namespace {

trace::Sample sample(std::uint64_t i, double dt, std::size_t iws_bytes,
                     std::size_t footprint, std::uint64_t recv = 0) {
  trace::Sample s;
  s.index = i;
  s.t_start = static_cast<double>(i) * dt;
  s.t_end = s.t_start + dt;
  s.iws_bytes = iws_bytes;
  s.iws_pages = iws_bytes / page_size();
  s.footprint_bytes = footprint;
  s.recv_bytes = recv;
  return s;
}

TEST(MetricsTest, IBStatsBasics) {
  trace::TimeSeries ts;
  ts.add(sample(0, 1.0, 10 * kMB, 100 * kMB));
  ts.add(sample(1, 1.0, 30 * kMB, 100 * kMB));
  auto stats = compute_ib_stats(ts);
  EXPECT_EQ(stats.samples, 2u);
  EXPECT_DOUBLE_EQ(stats.avg_ib, 20.0 * static_cast<double>(kMB));
  EXPECT_DOUBLE_EQ(stats.max_ib, 30.0 * static_cast<double>(kMB));
  EXPECT_DOUBLE_EQ(stats.avg_iws, 20.0 * static_cast<double>(kMB));
  EXPECT_DOUBLE_EQ(stats.max_iws, 30.0 * static_cast<double>(kMB));
  EXPECT_NEAR(stats.avg_ratio, 0.2, 1e-9);
}

TEST(MetricsTest, SkipFirstExcludesWarmup) {
  trace::TimeSeries ts;
  ts.add(sample(0, 1.0, 500 * kMB, 500 * kMB));  // init burst
  ts.add(sample(1, 1.0, 10 * kMB, 500 * kMB));
  ts.add(sample(2, 1.0, 10 * kMB, 500 * kMB));
  auto stats = compute_ib_stats(ts, /*skip_first=*/1);
  EXPECT_EQ(stats.samples, 2u);
  EXPECT_DOUBLE_EQ(stats.max_ib, 10.0 * static_cast<double>(kMB));
}

TEST(MetricsTest, FootprintStats) {
  trace::TimeSeries ts;
  ts.add(sample(0, 1.0, 0, 80 * kMB));
  ts.add(sample(1, 1.0, 0, 120 * kMB));
  ts.add(sample(2, 1.0, 0, 100 * kMB));
  auto fp = compute_footprint_stats(ts);
  EXPECT_DOUBLE_EQ(fp.max_bytes, 120.0 * static_cast<double>(kMB));
  EXPECT_DOUBLE_EQ(fp.avg_bytes, 100.0 * static_cast<double>(kMB));
}

TEST(MetricsTest, TrafficStats) {
  trace::TimeSeries ts;
  ts.add(sample(0, 1.0, 0, 0, 100));
  ts.add(sample(1, 1.0, 0, 0, 300));
  auto t = compute_traffic_stats(ts);
  EXPECT_DOUBLE_EQ(t.avg_recv, 200.0);
  EXPECT_DOUBLE_EQ(t.max_recv, 300.0);
  EXPECT_DOUBLE_EQ(t.total_recv, 400.0);
}

TEST(MetricsTest, EmptySeries) {
  trace::TimeSeries ts;
  auto stats = compute_ib_stats(ts);
  EXPECT_EQ(stats.samples, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_ib, 0.0);
}

// ------------------------------------------------------------------ period

TEST(PeriodTest, AutocorrelationOfConstantIsZero) {
  std::vector<double> flat(100, 5.0);
  auto r = autocorrelation(flat, 10);
  for (double v : r) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(PeriodTest, AutocorrelationLagZeroIsOne) {
  std::vector<double> x;
  for (int i = 0; i < 64; ++i) x.push_back(std::sin(0.3 * i));
  auto r = autocorrelation(x, 8);
  EXPECT_NEAR(r[0], 1.0, 1e-12);
}

TEST(PeriodTest, DetectsSinePeriod) {
  std::vector<double> x;
  const double period = 20.0;  // samples
  for (int i = 0; i < 400; ++i) {
    x.push_back(std::sin(2 * 3.14159265 * i / period));
  }
  auto est = detect_period(x, /*dt=*/0.5);
  ASSERT_TRUE(est.found);
  EXPECT_NEAR(est.period, 20.0 * 0.5, 0.5);
  EXPECT_GT(est.confidence, 0.8);
}

TEST(PeriodTest, DetectsBurstTrainPeriod) {
  // Mimics an IWS series: bursts of writes every 14 slices.
  std::vector<double> x(280, 1.0);
  for (std::size_t i = 0; i < x.size(); i += 14) {
    for (std::size_t j = i; j < std::min(i + 5, x.size()); ++j) {
      x[j] = 100.0;
    }
  }
  auto est = detect_period(x, 1.0);
  ASSERT_TRUE(est.found);
  EXPECT_NEAR(est.period, 14.0, 1.0);
}

TEST(PeriodTest, FlatSeriesHasNoPeriod) {
  std::vector<double> flat(100, 3.0);
  EXPECT_FALSE(detect_period(flat, 1.0).found);
}

TEST(PeriodTest, NoiseHasNoPeriod) {
  std::vector<double> x;
  std::uint64_t state = 12345;
  for (int i = 0; i < 200; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    x.push_back(static_cast<double>(state >> 40));
  }
  auto est = detect_period(x, 1.0);
  // White noise may occasionally show a weak spurious peak; require
  // that any detection is low-confidence.
  if (est.found) EXPECT_LT(est.confidence, 0.5);
}

TEST(PeriodTest, TooShortSeries) {
  std::vector<double> x = {1, 2, 3};
  EXPECT_FALSE(detect_period(x, 1.0).found);
}

// ------------------------------------------------------------- feasibility

TEST(FeasibilityTest, PaperHeadlineNumbers) {
  // Sage-1000MB: avg 78.8 MB/s is 9% of the 900 MB/s network and 25%
  // of the 320 MB/s disk (Section 6.3).
  IBStats stats;
  stats.avg_ib = 78.8 * static_cast<double>(kMB);
  stats.max_ib = 274.9 * static_cast<double>(kMB);
  auto v = assess_feasibility(stats);
  EXPECT_NEAR(v.frac_of_network_avg, 0.0876, 0.001);
  EXPECT_NEAR(v.frac_of_storage_avg, 0.246, 0.001);
  EXPECT_TRUE(v.network_feasible);
  EXPECT_TRUE(v.storage_feasible);
  EXPECT_TRUE(v.feasible());
}

TEST(FeasibilityTest, ExceedingStorageCeilingFlagged) {
  IBStats stats;
  stats.avg_ib = 100.0 * static_cast<double>(kMB);
  stats.max_ib = 400.0 * static_cast<double>(kMB);  // > 320 disk
  auto v = assess_feasibility(stats);
  EXPECT_TRUE(v.network_feasible);
  EXPECT_FALSE(v.storage_feasible);
  EXPECT_FALSE(v.feasible());
}

TEST(FeasibilityTest, CustomCeilings) {
  IBStats stats;
  stats.avg_ib = 50 * static_cast<double>(kMB);
  stats.max_ib = 50 * static_cast<double>(kMB);
  TechnologyCeilings slow;
  slow.network_bytes_per_s = 10.0 * static_cast<double>(kMB);
  slow.storage_bytes_per_s = 10.0 * static_cast<double>(kMB);
  auto v = assess_feasibility(stats, slow);
  EXPECT_FALSE(v.feasible());
  EXPECT_DOUBLE_EQ(v.frac_of_network_avg, 5.0);
}

TEST(FeasibilityTest, DescribeMentionsVerdict) {
  IBStats stats;
  stats.avg_ib = 10 * static_cast<double>(kMB);
  stats.max_ib = 20 * static_cast<double>(kMB);
  auto text = describe(assess_feasibility(stats));
  EXPECT_NE(text.find("FEASIBLE"), std::string::npos);
}

}  // namespace
}  // namespace ickpt::analysis

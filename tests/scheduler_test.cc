#include "checkpoint/scheduler.h"

#include <gtest/gtest.h>

#include "common/page.h"

namespace ickpt::checkpoint {
namespace {

trace::Sample slice(std::uint64_t i, double dt, std::size_t iws_mb) {
  trace::Sample s;
  s.index = i;
  s.t_start = static_cast<double>(i) * dt;
  s.t_end = s.t_start + dt;
  s.iws_bytes = iws_mb * 1024 * 1024;
  s.iws_pages = s.iws_bytes / page_size();
  return s;
}

/// Bursty series: `burst` slices of high IWS, then `gap` quiet slices.
std::vector<trace::Sample> bursty_series(int cycles, int burst, int gap,
                                         std::size_t hi, std::size_t lo) {
  std::vector<trace::Sample> out;
  std::uint64_t i = 0;
  for (int c = 0; c < cycles; ++c) {
    for (int b = 0; b < burst; ++b) out.push_back(slice(i++, 1.0, hi));
    for (int g = 0; g < gap; ++g) out.push_back(slice(i++, 1.0, lo));
  }
  return out;
}

TEST(SchedulerTest, FiresInQuietGaps) {
  BurstAwareScheduler::Options opts;
  opts.min_interval = 2.0;
  opts.max_interval = 100.0;
  BurstAwareScheduler sched(opts);

  int fires_in_gap = 0, fires_in_burst = 0;
  for (const auto& s : bursty_series(6, 8, 3, 100, 2)) {
    bool quiet = s.iws_bytes < 10u * 1024 * 1024;
    if (sched.observe(s)) {
      (quiet ? fires_in_gap : fires_in_burst)++;
    }
  }
  EXPECT_GE(fires_in_gap, 4);
  EXPECT_EQ(fires_in_burst, 0);
}

TEST(SchedulerTest, MaxIntervalForcesCheckpoint) {
  BurstAwareScheduler::Options opts;
  opts.max_interval = 10.0;
  BurstAwareScheduler sched(opts);

  // Constant high IWS: no quiet gap ever appears.
  int fires = 0;
  for (int i = 0; i < 50; ++i) {
    if (sched.observe(slice(static_cast<std::uint64_t>(i), 1.0, 100))) {
      ++fires;
    }
  }
  EXPECT_GE(fires, 4);  // ~every 10 s over 50 s
  EXPECT_EQ(sched.forced(), sched.decisions());
}

TEST(SchedulerTest, MinIntervalRateLimits) {
  BurstAwareScheduler::Options opts;
  opts.min_interval = 5.0;
  opts.max_interval = 1000.0;
  BurstAwareScheduler sched(opts);

  // Permanently quiet after a burst: without the rate limit it would
  // fire every slice.
  int fires = 0;
  for (const auto& s : bursty_series(1, 5, 40, 100, 1)) {
    if (sched.observe(s)) ++fires;
  }
  EXPECT_LE(fires, 9);  // 45 slices / 5 s min interval
  EXPECT_GE(fires, 3);
}

TEST(SchedulerTest, WarmupSuppressesEarlyFires) {
  BurstAwareScheduler::Options opts;
  opts.warmup_slices = 10;
  opts.min_interval = 0.0;
  BurstAwareScheduler sched(opts);
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (sched.observe(slice(static_cast<std::uint64_t>(i), 1.0, 1))) {
      ++fires;
    }
  }
  EXPECT_EQ(fires, 0);
}

// Regression: before the first fire, the interval was measured from
// t=0, so a scheduler attached mid-trace (first sample at t=1000)
// instantly exceeded max_interval and forced a checkpoint into the
// middle of a burst.
TEST(SchedulerTest, MidTraceAttachmentDoesNotForceImmediateFire) {
  BurstAwareScheduler::Options opts;
  opts.max_interval = 10.0;
  BurstAwareScheduler sched(opts);

  // Constant high IWS starting at t=1000: the first forced fire must
  // come ~max_interval after attachment, not on the first eligible
  // slice.
  const std::uint64_t kStart = 1000;
  int fires = 0;
  double first_fire = 0;
  for (int i = 0; i < 50; ++i) {
    auto s = slice(kStart + static_cast<std::uint64_t>(i), 1.0, 100);
    if (sched.observe(s)) {
      if (fires == 0) first_fire = s.t_end;
      ++fires;
    }
  }
  // Attachment anchor is the first sample's t_end (1001).
  EXPECT_GE(first_fire, 1001.0 + opts.max_interval);
  EXPECT_GE(fires, 3);  // still fires periodically afterwards
  EXPECT_EQ(sched.forced(), sched.decisions());
}

TEST(SchedulerTest, EwmaTracksLevel) {
  BurstAwareScheduler sched;
  for (int i = 0; i < 50; ++i) {
    sched.observe(slice(static_cast<std::uint64_t>(i), 1.0, 64));
  }
  EXPECT_NEAR(sched.ewma_iws(), 64.0 * 1024 * 1024, 1024.0);
}

}  // namespace
}  // namespace ickpt::checkpoint

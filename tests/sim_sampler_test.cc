#include "sim/sampler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/arena.h"
#include "memtrack/explicit_engine.h"
#include "memtrack/mprotect_engine.h"

namespace ickpt::sim {
namespace {

TEST(TimesliceSamplerTest, RecordsIWSPerSlice) {
  memtrack::ExplicitEngine engine;
  PageArena arena(10 * page_size());
  ASSERT_TRUE(engine.attach(arena.span(), "a").is_ok());
  VirtualClock clock;
  SamplerOptions opts;
  opts.timeslice = 1.0;
  TimesliceSampler sampler(engine, clock, opts);
  ASSERT_TRUE(sampler.start().is_ok());

  // Slice 1: dirty 3 pages.  Slice 2: dirty 1 page.
  engine.note_write(arena.data(), 3 * page_size());
  clock.advance(1.0);
  engine.note_write(arena.data() + 5 * page_size(), 1);
  clock.advance(1.0);

  const auto& series = sampler.series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].iws_pages, 3u);
  EXPECT_EQ(series[0].iws_bytes, 3 * page_size());
  EXPECT_DOUBLE_EQ(series[0].t_start, 0.0);
  EXPECT_DOUBLE_EQ(series[0].t_end, 1.0);
  EXPECT_EQ(series[1].iws_pages, 1u);
  EXPECT_EQ(series[1].footprint_bytes, 10 * page_size());
}

TEST(TimesliceSamplerTest, IBComputation) {
  memtrack::ExplicitEngine engine;
  PageArena arena(8 * page_size());
  ASSERT_TRUE(engine.attach(arena.span(), "a").is_ok());
  VirtualClock clock;
  SamplerOptions opts;
  opts.timeslice = 2.0;
  TimesliceSampler sampler(engine, clock, opts);
  ASSERT_TRUE(sampler.start().is_ok());
  engine.note_write(arena.data(), 4 * page_size());
  clock.advance(2.0);
  ASSERT_EQ(sampler.series().size(), 1u);
  EXPECT_DOUBLE_EQ(sampler.series()[0].ib_bytes_per_s(),
                   static_cast<double>(4 * page_size()) / 2.0);
  EXPECT_DOUBLE_EQ(sampler.series()[0].iws_footprint_ratio(), 0.5);
}

TEST(TimesliceSamplerTest, RecvProbeDeltas) {
  memtrack::ExplicitEngine engine;
  PageArena arena(page_size());
  ASSERT_TRUE(engine.attach(arena.span(), "a").is_ok());
  VirtualClock clock;
  std::uint64_t fake_recv = 100;
  SamplerOptions opts;
  opts.timeslice = 1.0;
  opts.recv_probe = [&] { return fake_recv; };
  TimesliceSampler sampler(engine, clock, opts);
  ASSERT_TRUE(sampler.start().is_ok());

  fake_recv = 250;
  clock.advance(1.0);
  fake_recv = 250;
  clock.advance(1.0);
  fake_recv = 300;
  clock.advance(1.0);

  const auto& s = sampler.series();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].recv_bytes, 150u);  // 250 - initial 100
  EXPECT_EQ(s[1].recv_bytes, 0u);
  EXPECT_EQ(s[2].recv_bytes, 50u);
}

TEST(TimesliceSamplerTest, OnSampleHookSeesSnapshot) {
  memtrack::ExplicitEngine engine;
  PageArena arena(4 * page_size());
  ASSERT_TRUE(engine.attach(arena.span(), "a").is_ok());
  VirtualClock clock;
  std::size_t hook_pages = 0;
  SamplerOptions opts;
  opts.timeslice = 1.0;
  opts.on_sample = [&](const trace::Sample& s,
                       const memtrack::DirtySnapshot& snap) {
    hook_pages = snap.dirty_pages();
    EXPECT_EQ(s.iws_pages, snap.dirty_pages());
  };
  TimesliceSampler sampler(engine, clock, opts);
  ASSERT_TRUE(sampler.start().is_ok());
  engine.note_write(arena.data(), 2 * page_size());
  clock.advance(1.0);
  EXPECT_EQ(hook_pages, 2u);
}

TEST(TimesliceSamplerTest, StartTwiceFails) {
  memtrack::ExplicitEngine engine;
  VirtualClock clock;
  TimesliceSampler sampler(engine, clock, SamplerOptions{});
  ASSERT_TRUE(sampler.start().is_ok());
  EXPECT_EQ(sampler.start().code(), ErrorCode::kFailedPrecondition);
}

TEST(TimesliceSamplerTest, StopEndsSampling) {
  memtrack::ExplicitEngine engine;
  PageArena arena(2 * page_size());
  ASSERT_TRUE(engine.attach(arena.span(), "a").is_ok());
  VirtualClock clock;
  SamplerOptions opts;
  opts.timeslice = 1.0;
  TimesliceSampler sampler(engine, clock, opts);
  ASSERT_TRUE(sampler.start().is_ok());
  clock.advance(1.0);
  sampler.stop();
  clock.advance(5.0);
  EXPECT_EQ(sampler.series().size(), 1u);
  EXPECT_FALSE(sampler.running());
}

TEST(TimesliceSamplerTest, SlicesAreContiguous) {
  memtrack::ExplicitEngine engine;
  PageArena arena(page_size());
  ASSERT_TRUE(engine.attach(arena.span(), "a").is_ok());
  VirtualClock clock;
  SamplerOptions opts;
  opts.timeslice = 0.5;
  TimesliceSampler sampler(engine, clock, opts);
  ASSERT_TRUE(sampler.start().is_ok());
  for (int i = 0; i < 20; ++i) clock.advance(0.13);
  const auto& s = sampler.series();
  ASSERT_GE(s.size(), 4u);
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_DOUBLE_EQ(s[i].t_start, s[i - 1].t_end);
    EXPECT_NEAR(s[i].timeslice(), 0.5, 1e-9);
  }
}

TEST(WallClockSamplerTest, CollectsRealTimeSamples) {
  memtrack::MProtectEngine engine;
  PageArena arena(8 * page_size());
  ASSERT_TRUE(engine.attach(arena.span(), "wall").is_ok());
  SamplerOptions opts;
  opts.timeslice = 0.05;  // 50 ms slices
  WallClockSampler sampler(engine, opts);
  ASSERT_TRUE(sampler.start().is_ok());

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(240);
  while (std::chrono::steady_clock::now() < deadline) {
    arena.data()[0] = std::byte{1};
    arena.data()[3 * page_size()] = std::byte{2};
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.stop();

  auto series = sampler.series();
  ASSERT_GE(series.size(), 2u);
  // Writes kept hitting the same two pages, so every complete slice
  // should report exactly 2 dirty pages.
  std::size_t with_two = 0;
  for (const auto& s : series.samples()) {
    if (s.iws_pages == 2) ++with_two;
  }
  EXPECT_GE(with_two, series.size() / 2);
}

TEST(WallClockSamplerTest, StopWithoutStartIsSafe) {
  memtrack::ExplicitEngine engine;
  WallClockSampler sampler(engine, SamplerOptions{});
  sampler.stop();  // no-op
  EXPECT_EQ(sampler.series().size(), 0u);
}

}  // namespace
}  // namespace ickpt::sim

#include "region/address_space.h"

#include <gtest/gtest.h>

#include <cstring>

#include "memtrack/explicit_engine.h"
#include "memtrack/mprotect_engine.h"

namespace ickpt::region {
namespace {

using memtrack::ExplicitEngine;
using memtrack::MProtectEngine;

TEST(AddressSpaceTest, MapCreatesTrackedBlock) {
  ExplicitEngine engine;
  AddressSpace space(engine, "rank0");
  auto ref = space.map(10 * page_size(), AreaKind::kHeap, "field");
  ASSERT_TRUE(ref.is_ok());
  EXPECT_EQ(ref->mem.size(), 10 * page_size());
  EXPECT_EQ(space.footprint_bytes(), 10 * page_size());
  EXPECT_EQ(space.block_count(), 1u);
  EXPECT_EQ(engine.region_count(), 1u);
}

TEST(AddressSpaceTest, MapRoundsToPages) {
  ExplicitEngine engine;
  AddressSpace space(engine, "r");
  auto ref = space.map(100, AreaKind::kHeap, "tiny");
  ASSERT_TRUE(ref.is_ok());
  EXPECT_EQ(ref->mem.size(), page_size());
}

TEST(AddressSpaceTest, MapZeroFails) {
  ExplicitEngine engine;
  AddressSpace space(engine, "r");
  EXPECT_FALSE(space.map(0, AreaKind::kHeap, "nil").is_ok());
}

TEST(AddressSpaceTest, UnmapDetachesAndShrinksFootprint) {
  ExplicitEngine engine;
  AddressSpace space(engine, "r");
  auto a = space.map(4 * page_size(), AreaKind::kHeap, "a");
  auto b = space.map(2 * page_size(), AreaKind::kMmap, "b");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_TRUE(space.unmap(a->id).is_ok());
  EXPECT_EQ(space.footprint_bytes(), 2 * page_size());
  EXPECT_EQ(engine.region_count(), 1u);
  EXPECT_EQ(space.unmap(a->id).code(), ErrorCode::kNotFound);
}

TEST(AddressSpaceTest, PeakFootprintIsSticky) {
  ExplicitEngine engine;
  AddressSpace space(engine, "r");
  auto a = space.map(8 * page_size(), AreaKind::kHeap, "a");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(space.unmap(a->id).is_ok());
  auto b = space.map(page_size(), AreaKind::kHeap, "b");
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(space.footprint_bytes(), page_size());
  EXPECT_EQ(space.peak_footprint_bytes(), 8 * page_size());
}

TEST(AddressSpaceTest, BlockInfoAndEnumeration) {
  ExplicitEngine engine;
  AddressSpace space(engine, "rk");
  auto a = space.map(page_size(), AreaKind::kStaticData, "data");
  auto b = space.map(page_size(), AreaKind::kMmap, "buf");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());

  auto info = space.block_info(a->id);
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info->name, "data");
  EXPECT_EQ(info->kind, AreaKind::kStaticData);
  EXPECT_EQ(info->bytes, page_size());

  auto all = space.blocks();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].id, a->id);
  EXPECT_EQ(all[1].id, b->id);
  EXPECT_FALSE(space.block_info(999).is_ok());
}

TEST(AddressSpaceTest, MemoryExclusionDropsDirtyPages) {
  // Paper §4.2: pages of unmapped areas leave the checkpoint set.
  ExplicitEngine engine;
  AddressSpace space(engine, "r");
  auto a = space.map(4 * page_size(), AreaKind::kMmap, "doomed");
  auto b = space.map(4 * page_size(), AreaKind::kHeap, "kept");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_TRUE(engine.arm().is_ok());

  engine.note_write(a->mem.data(), a->mem.size());
  engine.note_write(b->mem.data(), page_size());
  ASSERT_TRUE(space.unmap(a->id).is_ok());

  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(snap->dirty_pages(), 1u);  // only "kept"'s page remains
}

TEST(AddressSpaceTest, DestructorDetachesEverything) {
  ExplicitEngine engine;
  {
    AddressSpace space(engine, "r");
    ASSERT_TRUE(space.map(page_size(), AreaKind::kHeap, "a").is_ok());
    ASSERT_TRUE(space.map(page_size(), AreaKind::kHeap, "b").is_ok());
    EXPECT_EQ(engine.region_count(), 2u);
  }
  EXPECT_EQ(engine.region_count(), 0u);
}

TEST(AddressSpaceTest, WorksWithMProtectEngine) {
  MProtectEngine engine;
  AddressSpace space(engine, "r");
  auto ref = space.map(4 * page_size(), AreaKind::kHeap, "live");
  ASSERT_TRUE(ref.is_ok());
  ASSERT_TRUE(engine.arm().is_ok());
  ref->mem[2 * page_size()] = std::byte{1};
  auto snap = engine.collect(false);
  ASSERT_TRUE(snap.is_ok());
  EXPECT_EQ(snap->dirty_pages(), 1u);
}

TEST(AddressSpaceTest, MappedMemoryIsZeroFilled) {
  ExplicitEngine engine;
  AddressSpace space(engine, "r");
  auto ref = space.map(2 * page_size(), AreaKind::kHeap, "z");
  ASSERT_TRUE(ref.is_ok());
  for (std::size_t i = 0; i < ref->mem.size(); i += 64) {
    ASSERT_EQ(ref->mem[i], std::byte{0});
  }
}

TEST(AddressSpaceTest, FootprintByKind) {
  ExplicitEngine engine;
  AddressSpace space(engine, "r");
  ASSERT_TRUE(space.map(page_size(), AreaKind::kStaticData, "d").is_ok());
  ASSERT_TRUE(space.map(2 * page_size(), AreaKind::kHeap, "h1").is_ok());
  auto h2 = space.map(3 * page_size(), AreaKind::kHeap, "h2");
  ASSERT_TRUE(h2.is_ok());
  ASSERT_TRUE(space.map(4 * page_size(), AreaKind::kMmap, "m").is_ok());

  auto kinds = space.footprint_by_kind();
  EXPECT_EQ(kinds.static_data, page_size());
  EXPECT_EQ(kinds.heap, 5 * page_size());
  EXPECT_EQ(kinds.mmap, 4 * page_size());
  EXPECT_EQ(kinds.static_data + kinds.heap + kinds.mmap,
            space.footprint_bytes());

  ASSERT_TRUE(space.unmap(h2->id).is_ok());
  EXPECT_EQ(space.footprint_by_kind().heap, 2 * page_size());
}

TEST(AreaKindTest, Names) {
  EXPECT_EQ(to_string(AreaKind::kStaticData), "static");
  EXPECT_EQ(to_string(AreaKind::kHeap), "heap");
  EXPECT_EQ(to_string(AreaKind::kMmap), "mmap");
}

}  // namespace
}  // namespace ickpt::region

// Typed flag parsing: syntax forms, defaults, and the hard-error
// cases that the old string-map parser silently swallowed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/flags.h"

namespace ickpt {
namespace {

/// Build an argv-style vector; index 0 is the program name.
std::vector<char*> make_argv(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return argv;
}

TEST(FlagSetTest, ParsesEveryType) {
  std::string s = "default";
  int i = 1;
  double d = 0.5;
  bool b = false;
  FlagSet flags("prog");
  flags.add_string("name", &s, "a string");
  flags.add_int("count", &i, "an int");
  flags.add_double("ratio", &d, "a double");
  flags.add_bool("fast", &b, "a bool");

  std::vector<std::string> args = {"prog",    "--name", "xyz",  "--count",
                                   "7",       "--ratio", "2.25", "--fast"};
  auto argv = make_argv(args);
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()).is_ok());
  EXPECT_EQ(s, "xyz");
  EXPECT_EQ(i, 7);
  EXPECT_DOUBLE_EQ(d, 2.25);
  EXPECT_TRUE(b);
}

TEST(FlagSetTest, EqualsSyntax) {
  int i = 0;
  std::string s;
  FlagSet flags("prog");
  flags.add_int("n", &i, "");
  flags.add_string("out", &s, "");
  std::vector<std::string> args = {"prog", "--n=42", "--out=a=b"};
  auto argv = make_argv(args);
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()).is_ok());
  EXPECT_EQ(i, 42);
  EXPECT_EQ(s, "a=b");  // only the first '=' splits
}

TEST(FlagSetTest, DefaultsSurviveWhenUnset) {
  int i = 11;
  bool b = true;
  FlagSet flags("prog");
  flags.add_int("n", &i, "");
  flags.add_bool("keep", &b, "");
  std::vector<std::string> args = {"prog"};
  auto argv = make_argv(args);
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()).is_ok());
  EXPECT_EQ(i, 11);
  EXPECT_TRUE(b);
}

TEST(FlagSetTest, BoolForms) {
  for (const auto& [value, expected] :
       std::vector<std::pair<std::string, bool>>{{"true", true},
                                                 {"false", false},
                                                 {"1", true},
                                                 {"0", false},
                                                 {"yes", true},
                                                 {"no", false}}) {
    bool b = !expected;  // ensure the parse actually flips it
    FlagSet flags("prog");
    flags.add_bool("flag", &b, "");
    std::vector<std::string> args = {"prog", "--flag=" + value};
    auto argv = make_argv(args);
    ASSERT_TRUE(
        flags.parse(static_cast<int>(argv.size()), argv.data()).is_ok())
        << value;
    EXPECT_EQ(b, expected) << value;
  }
}

TEST(FlagSetTest, BareBoolDoesNotEatNextArg) {
  bool b = false;
  std::string s;
  FlagSet flags("prog");
  flags.add_bool("fast", &b, "");
  flags.add_string("name", &s, "");
  std::vector<std::string> args = {"prog", "--fast", "--name", "x"};
  auto argv = make_argv(args);
  ASSERT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()).is_ok());
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "x");
}

TEST(FlagSetTest, UnknownFlagIsError) {
  FlagSet flags("prog");
  std::vector<std::string> args = {"prog", "--mystery", "1"};
  auto argv = make_argv(args);
  auto st = flags.parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(st.to_string().find("mystery"), std::string::npos);
}

TEST(FlagSetTest, MissingValueIsError) {
  std::string s;
  FlagSet flags("prog");
  flags.add_string("name", &s, "");
  {
    std::vector<std::string> args = {"prog", "--name"};
    auto argv = make_argv(args);
    auto st = flags.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_FALSE(st.is_ok());
    EXPECT_NE(st.to_string().find("requires a value"), std::string::npos);
  }
  {
    // A following flag token is not a value either.
    std::vector<std::string> args = {"prog", "--name", "--other"};
    auto argv = make_argv(args);
    EXPECT_FALSE(
        flags.parse(static_cast<int>(argv.size()), argv.data()).is_ok());
  }
}

TEST(FlagSetTest, MalformedNumbersAreErrors) {
  int i = 0;
  double d = 0;
  FlagSet flags("prog");
  flags.add_int("n", &i, "");
  flags.add_double("x", &d, "");
  for (const auto& bad : std::vector<std::vector<std::string>>{
           {"prog", "--n", "12abc"},
           {"prog", "--n", ""},
           {"prog", "--n", "1e3"},   // ints reject exponent syntax
           {"prog", "--x", "fast"},
           {"prog", "--x", "1.5x"}}) {
    auto args = bad;
    auto argv = make_argv(args);
    EXPECT_FALSE(
        flags.parse(static_cast<int>(argv.size()), argv.data()).is_ok())
        << bad[1] << " " << bad[2];
  }
}

TEST(FlagSetTest, PositionalRejectedUnlessAllowed) {
  FlagSet flags("prog");
  std::vector<std::string> args = {"prog", "stray"};
  auto argv = make_argv(args);
  EXPECT_FALSE(
      flags.parse(static_cast<int>(argv.size()), argv.data()).is_ok());

  FlagSet lenient("prog");
  lenient.allow_positional(true);
  auto argv2 = make_argv(args);
  ASSERT_TRUE(
      lenient.parse(static_cast<int>(argv2.size()), argv2.data()).is_ok());
  ASSERT_EQ(lenient.positional().size(), 1u);
  EXPECT_EQ(lenient.positional()[0], "stray");
}

TEST(FlagSetTest, HelpListsFlagsAndDefaults) {
  std::string s = "abc";
  int i = 3;
  FlagSet flags("prog");
  flags.add_string("name", &s, "the name");
  flags.add_int("n", &i, "the count");
  auto help = flags.help();
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("the name"), std::string::npos);
  EXPECT_NE(help.find("abc"), std::string::npos);  // default shown
  EXPECT_NE(help.find("--n"), std::string::npos);
  EXPECT_NE(help.find("3"), std::string::npos);
}

}  // namespace
}  // namespace ickpt

#include "minimpi/collectives.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

namespace ickpt::mpi {
namespace {

std::vector<std::byte> rank_payload(int rank, std::size_t chunk) {
  std::vector<std::byte> out(chunk);
  for (std::size_t i = 0; i < chunk; ++i) {
    out[i] = static_cast<std::byte>(
        (static_cast<std::size_t>(rank) * 131 + i) & 0xff);
  }
  return out;
}

TEST(GatherTest, RootCollectsInRankOrder) {
  constexpr std::size_t kChunk = 64;
  for (int root : {0, 2}) {
    Runtime::run(4, [root](Comm& comm) {
      auto mine = rank_payload(comm.rank(), kChunk);
      std::vector<std::byte> out(4 * kChunk);
      ASSERT_TRUE(gather(comm, root, mine, out).is_ok());
      if (comm.rank() == root) {
        for (int r = 0; r < 4; ++r) {
          auto expected = rank_payload(r, kChunk);
          EXPECT_EQ(std::memcmp(out.data() +
                                    static_cast<std::size_t>(r) * kChunk,
                                expected.data(), kChunk),
                    0)
              << "rank " << r << " piece, root " << root;
        }
      }
    });
  }
}

TEST(GatherTest, SmallOutputRejectedAtRoot) {
  Runtime::run(2, [](Comm& comm) {
    std::vector<std::byte> mine(16);
    std::vector<std::byte> out(16);  // needs 32
    if (comm.rank() == 0) {
      EXPECT_EQ(gather(comm, 0, mine, out).code(),
                ErrorCode::kInvalidArgument);
      // Drain the peer's send so the world ends cleanly.
      std::vector<std::byte> big(32);
      (void)comm.recv(kAnySource, kAnyTag, big);
    } else {
      ASSERT_TRUE(gather(comm, 0, mine, out).is_ok());
    }
  });
}

TEST(ScatterTest, PiecesArriveInOrder) {
  constexpr std::size_t kChunk = 32;
  Runtime::run(3, [](Comm& comm) {
    std::vector<std::byte> all;
    if (comm.rank() == 1) {
      for (int r = 0; r < 3; ++r) {
        auto piece = rank_payload(r, kChunk);
        all.insert(all.end(), piece.begin(), piece.end());
      }
    }
    std::vector<std::byte> mine(kChunk);
    ASSERT_TRUE(scatter(comm, 1, all, mine).is_ok());
    auto expected = rank_payload(comm.rank(), kChunk);
    EXPECT_EQ(std::memcmp(mine.data(), expected.data(), kChunk), 0);
  });
}

TEST(AllgatherTest, EveryRankSeesEverything) {
  constexpr std::size_t kChunk = 48;
  Runtime::run(4, [](Comm& comm) {
    auto mine = rank_payload(comm.rank(), kChunk);
    std::vector<std::byte> out(4 * kChunk);
    ASSERT_TRUE(allgather(comm, mine, out).is_ok());
    for (int r = 0; r < 4; ++r) {
      auto expected = rank_payload(r, kChunk);
      ASSERT_EQ(std::memcmp(out.data() +
                                static_cast<std::size_t>(r) * kChunk,
                            expected.data(), kChunk),
                0)
          << "rank " << comm.rank() << " piece " << r;
    }
  });
}

TEST(AlltoallTest, TransposePattern) {
  // Piece (sender s -> receiver r) carries the byte value 16*s + r.
  constexpr std::size_t kChunk = 8;
  Runtime::run(4, [](Comm& comm) {
    std::vector<std::byte> send(4 * kChunk);
    for (int r = 0; r < 4; ++r) {
      std::memset(send.data() + static_cast<std::size_t>(r) * kChunk,
                  16 * comm.rank() + r, kChunk);
    }
    std::vector<std::byte> out(4 * kChunk);
    ASSERT_TRUE(alltoall(comm, send, out, kChunk).is_ok());
    for (int s = 0; s < 4; ++s) {
      auto expected = static_cast<std::byte>(16 * s + comm.rank());
      for (std::size_t i = 0; i < kChunk; ++i) {
        ASSERT_EQ(out[static_cast<std::size_t>(s) * kChunk + i], expected)
            << "from rank " << s;
      }
    }
  });
}

TEST(AlltoallTest, RepeatedRoundsStayConsistent) {
  constexpr std::size_t kChunk = 16;
  Runtime::run(3, [](Comm& comm) {
    for (int round = 0; round < 20; ++round) {
      std::vector<std::byte> send(3 * kChunk,
                                  static_cast<std::byte>(comm.rank() + round));
      std::vector<std::byte> out(3 * kChunk);
      ASSERT_TRUE(alltoall(comm, send, out, kChunk).is_ok());
      for (int s = 0; s < 3; ++s) {
        ASSERT_EQ(out[static_cast<std::size_t>(s) * kChunk],
                  static_cast<std::byte>(s + round))
            << "round " << round;
      }
    }
  });
}

TEST(VecReduceTest, SumsElementwise) {
  Runtime::run(4, [](Comm& comm) {
    std::vector<double> v = {1.0 * comm.rank(), 10.0, -2.5};
    ASSERT_TRUE(allreduce_sum_vec(comm, v).is_ok());
    EXPECT_DOUBLE_EQ(v[0], 0 + 1 + 2 + 3);
    EXPECT_DOUBLE_EQ(v[1], 40.0);
    EXPECT_DOUBLE_EQ(v[2], -10.0);
  });
}

TEST(VecReduceTest, SingleRankIdentity) {
  Runtime::run(1, [](Comm& comm) {
    std::vector<double> v = {3.25};
    ASSERT_TRUE(allreduce_sum_vec(comm, v).is_ok());
    EXPECT_DOUBLE_EQ(v[0], 3.25);
  });
}

TEST(CollectiveMixTest, InterleavedWithP2P) {
  // Collectives must not steal application messages (tag isolation).
  Runtime::run(2, [](Comm& comm) {
    std::vector<std::byte> app_msg(4, std::byte{0x77});
    comm.send(1 - comm.rank(), /*tag=*/5, app_msg);

    std::vector<std::byte> mine(8, static_cast<std::byte>(comm.rank()));
    std::vector<std::byte> out(16);
    ASSERT_TRUE(allgather(comm, mine, out).is_ok());

    std::byte buf[8];
    auto info = comm.recv(1 - comm.rank(), 5, buf);
    ASSERT_TRUE(info.is_ok());
    EXPECT_EQ(buf[0], std::byte{0x77});
  });
}

}  // namespace
}  // namespace ickpt::mpi

#include "common/status.h"

#include <gtest/gtest.h>

namespace ickpt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = io_error("disk on fire");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.to_string(), "IO_ERROR: disk on fire");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(to_string(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = not_found("nope");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status helper_returning_error() {
  ICKPT_RETURN_IF_ERROR(invalid_argument("bad"));
  return internal_error("unreachable");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  Status s = helper_returning_error();
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
}

Status helper_assign_or_return(bool fail, int* out) {
  auto make = [&]() -> Result<int> {
    if (fail) return failed_precondition("no value");
    return 7;
  };
  ICKPT_ASSIGN_OR_RETURN(v, make());
  *out = v;
  return Status::ok();
}

TEST(StatusTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(helper_assign_or_return(false, &out).is_ok());
  EXPECT_EQ(out, 7);
  EXPECT_EQ(helper_assign_or_return(true, &out).code(),
            ErrorCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ickpt

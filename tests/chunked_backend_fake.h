// Test fake: a pass-through storage decorator whose readers serve at
// most `max_read` bytes per read() call and advertise no random
// access.  Models a legitimate streaming backend (socket, pipe) so
// tests can verify that header reads use read-exact loops and that the
// restore pipeline's sequential fallbacks work.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/backend.h"

namespace ickpt::storage {

class ChunkedBackend : public StorageBackend {
 public:
  ChunkedBackend(StorageBackend& inner, std::size_t max_read)
      : inner_(inner), max_read_(max_read) {}

  Result<std::unique_ptr<Writer>> create(const std::string& key) override {
    return inner_.create(key);
  }
  Result<std::unique_ptr<Reader>> open(const std::string& key) override {
    auto r = inner_.open(key);
    if (!r.is_ok()) return r.status();
    return {std::unique_ptr<Reader>(
        new ChunkedReader(std::move(*r), max_read_))};
  }
  Status remove(const std::string& key) override { return inner_.remove(key); }
  Result<std::vector<std::string>> list() override { return inner_.list(); }
  bool exists(const std::string& key) override { return inner_.exists(key); }
  std::uint64_t total_bytes_stored() const noexcept override {
    return inner_.total_bytes_stored();
  }

 private:
  class ChunkedReader : public Reader {
   public:
    ChunkedReader(std::unique_ptr<Reader> inner, std::size_t max_read)
        : inner_(std::move(inner)), max_read_(max_read) {}
    Result<std::size_t> read(std::span<std::byte> out) override {
      return inner_->read(out.subspan(0, std::min(out.size(), max_read_)));
    }
    std::uint64_t size() const noexcept override { return inner_->size(); }
    // supports_read_at() stays false: strictly sequential.

   private:
    std::unique_ptr<Reader> inner_;
    std::size_t max_read_;
  };

  StorageBackend& inner_;
  std::size_t max_read_;
};

}  // namespace ickpt::storage

// RecoverableRun: automatic checkpoint/restart of stepwise
// computations, including crash-equivalent teardown and corrupted /
// mismatched recovery layouts.
#include "core/recoverable.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "storage/backend.h"

namespace ickpt {
namespace {

/// The "computation": each step adds step+1 to every counter cell.
void apply_step(std::span<std::byte> mem, int step) {
  auto* v = reinterpret_cast<std::uint64_t*>(mem.data());
  std::size_t n = mem.size() / sizeof(std::uint64_t);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] += static_cast<std::uint64_t>(step) + 1;
  }
}

std::uint64_t expected_after(int steps) {
  std::uint64_t total = 0;
  for (int s = 0; s < steps; ++s) total += static_cast<std::uint64_t>(s) + 1;
  return total;
}

TEST(RecoverableTest, FreshStartBeginsAtZero) {
  auto backend = storage::make_memory_backend();
  auto run = RecoverableRun::create(*backend, {});
  ASSERT_TRUE(run.is_ok());
  ASSERT_TRUE((*run)->add_block(2 * page_size(), "state").is_ok());
  auto first = (*run)->begin();
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(*first, 0);
}

TEST(RecoverableTest, CrashAndResumeProducesExactResult) {
  auto backend = storage::make_memory_backend();
  constexpr int kTotalSteps = 20;
  constexpr int kCrashAfter = 13;

  // Phase 1: run to the crash point, checkpointing every 3 steps.
  {
    RecoverableRun::Options opts;
    opts.checkpoint_every = 3;
    auto run = RecoverableRun::create(*backend, opts);
    ASSERT_TRUE(run.is_ok());
    auto mem = (*run)->add_block(4 * page_size(), "counters");
    ASSERT_TRUE(mem.is_ok());
    auto first = (*run)->begin();
    ASSERT_TRUE(first.is_ok());
    ASSERT_EQ(*first, 0);
    for (int s = 0; s < kCrashAfter; ++s) {
      apply_step(*mem, s);
      ASSERT_TRUE((*run)->did_step(s).is_ok());
    }
  }  // destructor == crash: uncheckpointed work is lost

  // Phase 2: a fresh process resumes from the chain.
  {
    RecoverableRun::Options opts;
    opts.checkpoint_every = 3;
    auto run = RecoverableRun::create(*backend, opts);
    ASSERT_TRUE(run.is_ok());
    auto mem = (*run)->add_block(4 * page_size(), "counters");
    ASSERT_TRUE(mem.is_ok());
    auto first = (*run)->begin();
    ASSERT_TRUE(first.is_ok()) << first.status().to_string();
    // Last checkpoint was after step 11 (steps 0-11, every 3) -> resume
    // at 12.
    EXPECT_EQ(*first, 12);
    for (int s = *first; s < kTotalSteps; ++s) {
      apply_step(*mem, s);
      ASSERT_TRUE((*run)->did_step(s).is_ok());
    }
    auto* v = reinterpret_cast<std::uint64_t*>(mem->data());
    EXPECT_EQ(v[0], expected_after(kTotalSteps));
    EXPECT_EQ(v[100], expected_after(kTotalSteps));
  }
}

TEST(RecoverableTest, MultipleBlocksRestoreIndependently) {
  auto backend = storage::make_memory_backend();
  {
    auto run = RecoverableRun::create(*backend, {});
    ASSERT_TRUE(run.is_ok());
    auto a = (*run)->add_block(page_size(), "a");
    auto b = (*run)->add_block(2 * page_size(), "b");
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    ASSERT_TRUE((*run)->begin().is_ok());
    std::memset(a->data(), 0xAA, a->size());
    std::memset(b->data(), 0xBB, b->size());
    ASSERT_TRUE((*run)->did_step(0).is_ok());
  }
  {
    auto run = RecoverableRun::create(*backend, {});
    ASSERT_TRUE(run.is_ok());
    auto a = (*run)->add_block(page_size(), "a");
    auto b = (*run)->add_block(2 * page_size(), "b");
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    auto first = (*run)->begin();
    ASSERT_TRUE(first.is_ok());
    EXPECT_EQ(*first, 1);
    EXPECT_EQ((*a)[0], std::byte{0xAA});
    EXPECT_EQ((*b)[b->size() - 1], std::byte{0xBB});
  }
}

TEST(RecoverableTest, LayoutMismatchIsRejected) {
  auto backend = storage::make_memory_backend();
  {
    auto run = RecoverableRun::create(*backend, {});
    ASSERT_TRUE(run.is_ok());
    ASSERT_TRUE((*run)->add_block(page_size(), "a").is_ok());
    ASSERT_TRUE((*run)->begin().is_ok());
    ASSERT_TRUE((*run)->did_step(0).is_ok());
  }
  {
    // Restart declares a different layout: two blocks instead of one.
    auto run = RecoverableRun::create(*backend, {});
    ASSERT_TRUE(run.is_ok());
    ASSERT_TRUE((*run)->add_block(page_size(), "a").is_ok());
    ASSERT_TRUE((*run)->add_block(page_size(), "b").is_ok());
    auto first = (*run)->begin();
    ASSERT_FALSE(first.is_ok());
    EXPECT_EQ(first.status().code(), ErrorCode::kCorruption);
  }
  {
    // Or the same block count but a different size.
    auto run = RecoverableRun::create(*backend, {});
    ASSERT_TRUE(run.is_ok());
    ASSERT_TRUE((*run)->add_block(3 * page_size(), "a").is_ok());
    auto first = (*run)->begin();
    ASSERT_FALSE(first.is_ok());
    EXPECT_EQ(first.status().code(), ErrorCode::kCorruption);
  }
}

TEST(RecoverableTest, ApiMisuseIsCaught) {
  auto backend = storage::make_memory_backend();
  auto run = RecoverableRun::create(*backend, {});
  ASSERT_TRUE(run.is_ok());
  EXPECT_EQ((*run)->did_step(0).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ((*run)->checkpoint_now().code(),
            ErrorCode::kFailedPrecondition);
  ASSERT_TRUE((*run)->add_block(page_size(), "a").is_ok());
  ASSERT_TRUE((*run)->begin().is_ok());
  EXPECT_EQ((*run)->begin().status().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ((*run)->add_block(page_size(), "late").status().code(),
            ErrorCode::kFailedPrecondition);

  RecoverableRun::Options bad;
  bad.checkpoint_every = 0;
  EXPECT_FALSE(RecoverableRun::create(*backend, bad).is_ok());
}

TEST(RecoverableTest, ChainIsGarbageCollected) {
  auto backend = storage::make_memory_backend();
  RecoverableRun::Options opts;
  opts.checkpoint_every = 1;
  opts.full_every = 4;
  auto run = RecoverableRun::create(*backend, opts);
  ASSERT_TRUE(run.is_ok());
  auto mem = (*run)->add_block(page_size(), "x");
  ASSERT_TRUE(mem.is_ok());
  ASSERT_TRUE((*run)->begin().is_ok());
  for (int s = 0; s < 20; ++s) {
    apply_step(*mem, s);
    ASSERT_TRUE((*run)->did_step(s).is_ok());
  }
  // Old chain prefixes are removed after every re-seed: the chain in
  // storage stays bounded (<= full_every + 1 objects).
  auto keys = backend->list();
  ASSERT_TRUE(keys.is_ok());
  EXPECT_LE(keys->size(), 6u);
}

TEST(RecoverableTest, CheckpointNowIsImmediate) {
  auto backend = storage::make_memory_backend();
  RecoverableRun::Options opts;
  opts.checkpoint_every = 1000;  // periodic policy effectively off
  auto run = RecoverableRun::create(*backend, opts);
  ASSERT_TRUE(run.is_ok());
  auto mem = (*run)->add_block(page_size(), "x");
  ASSERT_TRUE(mem.is_ok());
  ASSERT_TRUE((*run)->begin().is_ok());
  apply_step(*mem, 0);
  ASSERT_TRUE((*run)->did_step(0).is_ok());  // no checkpoint (policy)
  EXPECT_TRUE((*run)->checkpointer().chain().empty());
  ASSERT_TRUE((*run)->checkpoint_now().is_ok());
  EXPECT_FALSE((*run)->checkpointer().chain().empty());
}

}  // namespace
}  // namespace ickpt

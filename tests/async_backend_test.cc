// Async backend adapter: checkpoints written through the AsyncWriter
// reach the underlying store and restore correctly, with I/O
// overlapped against the writer thread.
#include "storage/async_backend.h"

#include <gtest/gtest.h>

#include <cstring>

#include "checkpoint/checkpointer.h"
#include "checkpoint/restore.h"
#include "memtrack/explicit_engine.h"
#include "region/address_space.h"

namespace ickpt::storage {
namespace {

std::span<const std::byte> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

TEST(AsyncBackendTest, WriteCloseSubmitsToWorker) {
  auto underlying = make_memory_backend();
  AsyncWriter writer(*underlying);
  auto backend = make_async_backend(writer, *underlying);

  auto w = backend->create("obj");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("abc")).is_ok());
  ASSERT_TRUE((*w)->write(as_bytes("def")).is_ok());
  EXPECT_EQ((*w)->bytes_written(), 6u);
  ASSERT_TRUE((*w)->close().is_ok());

  // Reads flush first, so the object is always visible.
  EXPECT_TRUE(backend->exists("obj"));
  auto r = backend->open("obj");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ((*r)->size(), 6u);
}

TEST(AsyncBackendTest, ListAndRemoveFlush) {
  auto underlying = make_memory_backend();
  AsyncWriter writer(*underlying);
  auto backend = make_async_backend(writer, *underlying);
  for (int i = 0; i < 5; ++i) {
    auto w = backend->create("k" + std::to_string(i));
    ASSERT_TRUE(w.is_ok());
    ASSERT_TRUE((*w)->write(as_bytes("x")).is_ok());
    ASSERT_TRUE((*w)->close().is_ok());
  }
  auto keys = backend->list();
  ASSERT_TRUE(keys.is_ok());
  EXPECT_EQ(keys->size(), 5u);
  ASSERT_TRUE(backend->remove("k3").is_ok());
  EXPECT_FALSE(backend->exists("k3"));
}

TEST(AsyncBackendTest, CheckpointChainThroughAsyncPath) {
  auto underlying = make_memory_backend();
  AsyncWriter writer(*underlying);
  auto backend = make_async_backend(writer, *underlying);

  memtrack::ExplicitEngine engine;
  region::AddressSpace space(engine, "r");
  auto block = space.map(8 * page_size(), region::AreaKind::kHeap, "b");
  ASSERT_TRUE(block.is_ok());
  std::memset(block->mem.data(), 0x3C, block->mem.size());

  auto ckpt =
      checkpoint::Checkpointer::create(space, backend.get()).value();
  ASSERT_TRUE(ckpt->checkpoint_full(0.0).is_ok());
  ASSERT_TRUE(engine.arm().is_ok());
  for (int step = 1; step <= 6; ++step) {
    block->mem[static_cast<std::size_t>(step) * page_size()] =
        std::byte{static_cast<unsigned char>(step)};
    engine.note_write(
        block->mem.data() + static_cast<std::size_t>(step) * page_size(),
        1);
    auto snap = engine.collect(true);
    ASSERT_TRUE(snap.is_ok());
    ASSERT_TRUE(ckpt->checkpoint_incremental(*snap, step).is_ok());
  }
  ASSERT_TRUE(writer.flush().is_ok());

  // Restore from the *underlying* store directly: everything arrived.
  auto state = checkpoint::restore_chain(*underlying, 0);
  ASSERT_TRUE(state.is_ok());
  const auto& data = state->blocks.begin()->second.data;
  EXPECT_EQ(std::memcmp(data.data(), block->mem.data(), data.size()), 0);
}

TEST(AsyncBackendTest, UnderlyingErrorSurfacesOnFlushPath) {
  auto underlying = make_memory_backend();
  FaultyBackend faulty(*underlying, /*fail_after_bytes=*/16);
  AsyncWriter writer(faulty);
  auto backend = make_async_backend(writer, *underlying);

  auto w = backend->create("big");
  ASSERT_TRUE(w.is_ok());
  std::vector<std::byte> payload(64, std::byte{1});
  ASSERT_TRUE((*w)->write(payload).is_ok());  // buffered: succeeds
  ASSERT_TRUE((*w)->close().is_ok());         // submit: queued
  // The failure appears at the synchronization point.
  auto keys = backend->list();
  EXPECT_FALSE(keys.is_ok());
}

}  // namespace
}  // namespace ickpt::storage

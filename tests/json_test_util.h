// Minimal JSON value + recursive-descent parser for asserting on the
// documents the observability layer emits (Snapshot::to_json, the
// Chrome trace export, flight-recorder files, BENCH_*.json).  Test
// support only: failures surface through gtest expectations and the
// failed() flag, not exceptions.
#pragma once

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>
#include <vector>

namespace ickpt::testutil {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    EXPECT_EQ(pos_, s_.size()) << "trailing garbage";
    return v;
  }

  bool failed() const { return failed_; }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) {
      failed_ = true;
      return false;
    }
    ++pos_;
    return true;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': case 'f': return boolean();
      default: return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    consume('{');
    if (peek() == '}') {
      consume('}');
      return v;
    }
    while (true) {
      JsonValue key = string_value();
      consume(':');
      v.object[key.str] = value();
      if (peek() != ',') break;
      consume(',');
    }
    consume('}');
    return v;
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    consume('[');
    if (peek() == ']') {
      consume(']');
      return v;
    }
    while (true) {
      v.array.push_back(value());
      if (peek() != ',') break;
      consume(',');
    }
    consume(']');
    return v;
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    if (!consume('"')) return v;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) {
        ++pos_;
        switch (s_[pos_]) {
          case 'n': v.str += '\n'; break;
          case 't': v.str += '\t'; break;
          default: v.str += s_[pos_]; break;
        }
      } else {
        v.str += s_[pos_];
      }
      ++pos_;
    }
    if (pos_ < s_.size()) ++pos_;  // closing quote
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      failed_ = true;
    }
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) {
      failed_ = true;
      return v;
    }
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace ickpt::testutil

#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <utility>

namespace ickpt {
namespace {

TEST(ArenaTest, DefaultIsEmpty) {
  PageArena a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.data(), nullptr);
}

TEST(ArenaTest, AllocatesPageAligned) {
  PageArena a(1000);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.size(), page_size());
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % page_size(), 0u);
}

TEST(ArenaTest, ZeroFilled) {
  PageArena a(3 * page_size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], std::byte{0}) << "at offset " << i;
  }
}

TEST(ArenaTest, WritableAndReadable) {
  PageArena a(2 * page_size());
  std::memset(a.data(), 0xAB, a.size());
  EXPECT_EQ(a.data()[0], std::byte{0xAB});
  EXPECT_EQ(a.data()[a.size() - 1], std::byte{0xAB});
}

TEST(ArenaTest, MoveTransfersOwnership) {
  PageArena a(page_size());
  std::byte* p = a.data();
  PageArena b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)

  PageArena c;
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(ArenaTest, RangeMatchesSpan) {
  PageArena a(4 * page_size());
  PageRange r = a.range();
  EXPECT_EQ(r.begin, reinterpret_cast<std::uintptr_t>(a.data()));
  EXPECT_EQ(r.bytes(), a.size());
  EXPECT_EQ(r.pages(), 4u);
}

TEST(ArenaTest, ResetReleases) {
  PageArena a(page_size());
  a.reset();
  EXPECT_TRUE(a.empty());
  a.reset();  // idempotent
  EXPECT_TRUE(a.empty());
}

TEST(ArenaTest, PrefaultTouchesEveryPage) {
  PageArena a(8 * page_size());
  a.prefault();  // must not crash; pages stay zero
  for (std::size_t off = 0; off < a.size(); off += page_size()) {
    EXPECT_EQ(a.data()[off], std::byte{0});
  }
}

TEST(ArenaTest, ZeroBytesYieldsEmpty) {
  PageArena a(0);
  EXPECT_TRUE(a.empty());
}

}  // namespace
}  // namespace ickpt

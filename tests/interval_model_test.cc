#include "analysis/interval_model.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace ickpt::analysis {
namespace {

TEST(YoungTest, KnownValue) {
  // c = 10 s, M = 2000 s -> sqrt(2*10*2000) = 200 s.
  EXPECT_DOUBLE_EQ(young_interval(10, 2000), 200.0);
}

TEST(YoungTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(young_interval(0, 1000), 0.0);
  EXPECT_DOUBLE_EQ(young_interval(10, 0), 0.0);
}

TEST(DalyTest, ApproachesYoungForSmallCost) {
  // c << M: Daly ~ Young - c.
  double young = young_interval(1, 100000);
  double daly = daly_interval(1, 100000);
  EXPECT_NEAR(daly, young - 1, 0.05 * young);
}

TEST(DalyTest, CapsAtMtbfForHugeCost) {
  EXPECT_DOUBLE_EQ(daly_interval(5000, 1000), 1000.0);
}

TEST(WasteTest, FirstOrderShape) {
  // waste = c/T + T/(2M): minimized near the Young interval.
  double c = 10, m = 2000;
  double t_opt = young_interval(c, m);
  double w_opt = expected_waste(t_opt, c, m);
  EXPECT_LT(w_opt, expected_waste(t_opt / 4, c, m));
  EXPECT_LT(w_opt, expected_waste(t_opt * 4, c, m));
  EXPECT_NEAR(w_opt, 2.0 * c / t_opt, 1e-9);  // c/T == T/2M at optimum
}

TEST(WasteTest, RestartCostAdds) {
  double base = expected_waste(100, 10, 2000, 0);
  double with_restart = expected_waste(100, 10, 2000, 50);
  EXPECT_GT(with_restart, base);
  EXPECT_NEAR(with_restart - base, 50.0 / 2000.0, 1e-12);
}

TEST(WasteTest, ClampsToUnity) {
  EXPECT_DOUBLE_EQ(expected_waste(1, 100, 10), 1.0);
  EXPECT_DOUBLE_EQ(expected_waste(0, 1, 10), 1.0);
}

TEST(PlanTest, PaperScaleExample) {
  // Sage-1000MB-like: ~79 MB per 1 s slice checkpointed to a 320 MB/s
  // disk, few-hour MTBF (the paper's BlueGene/L motivation).
  double ckpt_bytes = 79.0 * static_cast<double>(kMB);
  double footprint = 954.6 * static_cast<double>(kMB);
  double disk = 320.0 * static_cast<double>(kMB);
  double mtbf = 4 * 3600.0;
  auto plan = plan_interval(ckpt_bytes, footprint, disk, mtbf);

  EXPECT_NEAR(plan.checkpoint_cost_s, 0.247, 0.001);
  // sqrt(2 * 0.247 * 14400) ~ 84 s: checkpoints every minute-and-a-half.
  EXPECT_NEAR(plan.interval_s, 84.0, 4.0);
  // Overhead well under 1 %: the feasibility headline in time terms.
  EXPECT_LT(plan.waste, 0.01);
  EXPECT_GT(plan.efficiency, 0.99);
}

TEST(PlanTest, BadDeviceYieldsZeroEfficiency) {
  auto plan = plan_interval(1000, 1000, 0, 3600);
  EXPECT_DOUBLE_EQ(plan.efficiency, 0.0);
}

}  // namespace
}  // namespace ickpt::analysis

// Chain/store inspection (checkpoint fsck).
#include "checkpoint/inspect.h"

#include <gtest/gtest.h>

#include <cstring>

#include "checkpoint/checkpointer.h"
#include "checkpoint/coordinated.h"
#include "common/rng.h"
#include "memtrack/explicit_engine.h"
#include "minimpi/comm.h"
#include "region/address_space.h"
#include "storage/backend.h"
#include "tests/chunked_backend_fake.h"

namespace ickpt::checkpoint {
namespace {

using memtrack::ExplicitEngine;
using region::AddressSpace;
using region::AreaKind;

class InspectTest : public ::testing::Test {
 protected:
  InspectTest()
      : storage_(storage::make_memory_backend()),
        space_(engine_, "r"),
        ckpt_(space_, *storage_, CheckpointerOptions{}) {}

  void write_chain(int increments) {
    auto block = space_.map(4 * page_size(), AreaKind::kHeap, "s");
    ASSERT_TRUE(block.is_ok());
    block_ = block->mem;
    ASSERT_TRUE(ckpt_.checkpoint_full(0.0).is_ok());
    ASSERT_TRUE(engine_.arm().is_ok());
    Rng rng(5);
    for (int i = 0; i < increments; ++i) {
      block_[rng.next_index(block_.size())] = std::byte{0xEE};
      engine_.note_write(block_.data(), 1);
      auto snap = engine_.collect(true);
      ASSERT_TRUE(snap.is_ok());
      ASSERT_TRUE(
          ckpt_.checkpoint_incremental(*snap, i + 1.0).is_ok());
    }
  }

  ExplicitEngine engine_;
  std::unique_ptr<storage::StorageBackend> storage_;
  AddressSpace space_;
  Checkpointer ckpt_;
  std::span<std::byte> block_;
};

TEST_F(InspectTest, HealthyChainReportsClean) {
  write_chain(4);
  auto report = inspect_chain(*storage_, 0);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report->healthy()) << report->problems.front();
  EXPECT_EQ(report->elements.size(), 5u);
  EXPECT_TRUE(report->elements[0].full);
  EXPECT_FALSE(report->elements[1].full);
  EXPECT_TRUE(report->recoverable);
  EXPECT_EQ(report->recoverable_upto, 4u);
  EXPECT_GT(report->total_bytes, 0u);
}

// Regression: inspect_object issued a single read() for the header
// and mistook a legitimate short read for corruption.  A streaming
// backend serving 7 bytes at a time must still inspect cleanly.
TEST_F(InspectTest, ShortReadingBackendInspectsCleanly) {
  write_chain(3);
  storage::ChunkedBackend chunked(*storage_, 7);
  auto report = inspect_chain(chunked, 0);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report->healthy()) << report->problems.front();
  EXPECT_EQ(report->elements.size(), 4u);
  EXPECT_TRUE(report->recoverable);
}

TEST_F(InspectTest, MissingRankReportsProblem) {
  auto report = inspect_chain(*storage_, 7);
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(report->healthy());
  EXPECT_FALSE(report->recoverable);
}

TEST_F(InspectTest, CorruptedElementIsFlagged) {
  write_chain(3);
  // Corrupt the second incremental in place.
  std::string key = ckpt_.chain()[2].key;
  auto reader = storage_->open(key);
  ASSERT_TRUE(reader.is_ok());
  std::vector<std::byte> data((*reader)->size());
  std::size_t off = 0;
  while (off < data.size()) {
    auto got = (*reader)->read({data.data() + off, data.size() - off});
    ASSERT_TRUE(got.is_ok());
    if (*got == 0) break;
    off += *got;
  }
  data[data.size() / 2] ^= std::byte{0xFF};
  auto w = storage_->create(key);
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE((*w)->write(data).is_ok());
  ASSERT_TRUE((*w)->close().is_ok());

  auto report = inspect_chain(*storage_, 0);
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(report->healthy());
  // The chain is broken at element 2: the parent link of element 3
  // dangles, and restore (which walks through it) must fail too, so
  // the report lists both findings.
  EXPECT_GE(report->problems.size(), 1u);
}

TEST_F(InspectTest, MissingMiddleElementBreaksParentLink) {
  write_chain(3);
  ASSERT_TRUE(storage_->remove(ckpt_.chain()[1].key).is_ok());
  auto report = inspect_chain(*storage_, 0);
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(report->healthy());
  bool found = false;
  for (const auto& p : report->problems) {
    if (p.find("broken parent link") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(InspectTest, IncrementalOnlyChainIsUnrecoverable) {
  write_chain(2);
  // Delete the full root.
  ASSERT_TRUE(storage_->remove(ckpt_.chain()[0].key).is_ok());
  auto report = inspect_chain(*storage_, 0);
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(report->recoverable);
  bool found = false;
  for (const auto& p : report->problems) {
    if (p.find("no full checkpoint") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(InspectStoreTest, MultiRankStoreWithCommits) {
  auto storage = storage::make_memory_backend();
  mpi::Runtime::run(3, [&](mpi::Comm& comm) {
    ExplicitEngine engine;
    AddressSpace space(engine, "r" + std::to_string(comm.rank()));
    auto block = space.map(2 * page_size(), AreaKind::kHeap, "b");
    ASSERT_TRUE(block.is_ok());
    CheckpointerOptions opts;
    opts.rank = static_cast<std::uint32_t>(comm.rank());
    auto local = Checkpointer::create(space, storage.get(), opts).value();
    ASSERT_TRUE(engine.arm().is_ok());
    for (int round = 0; round < 2; ++round) {
      auto snap = engine.collect(true);
      ASSERT_TRUE(snap.is_ok());
      ASSERT_TRUE(CoordinatedCheckpointer::checkpoint(
                      comm, *local, *snap, round, *storage)
                      .is_ok());
    }
  });

  auto report = inspect_store(*storage);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report->healthy());
  EXPECT_EQ(report->chains.size(), 3u);
  ASSERT_EQ(report->commit_markers.size(), 2u);
  EXPECT_EQ(report->commit_markers.back(), 1u);
}

TEST(InspectStoreTest, CommitBeyondChainIsFlagged) {
  auto storage = storage::make_memory_backend();
  ExplicitEngine engine;
  AddressSpace space(engine, "r");
  auto block = space.map(page_size(), AreaKind::kHeap, "b");
  ASSERT_TRUE(block.is_ok());
  auto ckpt = Checkpointer::create(space, storage.get()).value();
  ASSERT_TRUE(ckpt->checkpoint_full(0.0).is_ok());

  // Forge a commit marker pointing past the chain.
  auto w = storage->create("commit/000000000009");
  ASSERT_TRUE(w.is_ok());
  std::uint64_t payload[2] = {9, 1};
  ASSERT_TRUE(
      (*w)->write({reinterpret_cast<const std::byte*>(payload), 16})
          .is_ok());
  ASSERT_TRUE((*w)->close().is_ok());

  auto report = inspect_store(*storage);
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(report->healthy());
}

TEST(InspectStoreTest, EmptyStoreIsTriviallyHealthy) {
  auto storage = storage::make_memory_backend();
  auto report = inspect_store(*storage);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report->healthy());
  EXPECT_TRUE(report->chains.empty());
}

}  // namespace
}  // namespace ickpt::checkpoint

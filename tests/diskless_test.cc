// Diskless checkpointing: buddy replication over minimpi and recovery
// after a simulated node loss.
#include "checkpoint/diskless.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "checkpoint/checkpointer.h"
#include "checkpoint/restore.h"
#include "common/rng.h"
#include "memtrack/explicit_engine.h"
#include "region/address_space.h"

namespace ickpt::checkpoint {
namespace {

using memtrack::ExplicitEngine;
using region::AddressSpace;
using region::AreaKind;

TEST(DisklessTest, BuddyRing) {
  EXPECT_EQ(buddy_of(0, 4), 1);
  EXPECT_EQ(buddy_of(3, 4), 0);
  EXPECT_EQ(buddy_of(0, 2), 1);
  EXPECT_EQ(buddy_of(1, 2), 0);
}

TEST(DisklessTest, RequiresTwoRanks) {
  mpi::Runtime::run(1, [](mpi::Comm& comm) {
    auto store = storage::make_memory_backend();
    EXPECT_EQ(replicate_chain(comm, *store, {}).code(),
              ErrorCode::kFailedPrecondition);
  });
}

TEST(DisklessTest, ReplicatesAndRecoversAcrossNodeLoss) {
  constexpr int kRanks = 3;
  // One store per "node", plus ground truth of each rank's memory.
  std::vector<std::unique_ptr<storage::StorageBackend>> node_store;
  for (int r = 0; r < kRanks; ++r) {
    node_store.push_back(storage::make_memory_backend());
  }
  std::vector<std::vector<std::byte>> truth(kRanks);

  mpi::Runtime::run(kRanks, [&](mpi::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    ExplicitEngine engine;
    AddressSpace space(engine, "n" + std::to_string(comm.rank()));
    auto block = space.map(4 * page_size(), AreaKind::kHeap, "state");
    ASSERT_TRUE(block.is_ok());
    Rng rng(static_cast<std::uint64_t>(comm.rank()) * 31 + 7);
    for (std::size_t i = 0; i + 8 <= block->mem.size(); i += 8) {
      std::uint64_t v = rng.next_u64();
      std::memcpy(block->mem.data() + i, &v, 8);
    }
    truth[rank].assign(block->mem.begin(), block->mem.end());

    CheckpointerOptions opts;
    opts.rank = static_cast<std::uint32_t>(comm.rank());
    auto local =
        Checkpointer::create(space, node_store[rank].get(), opts).value();
    ASSERT_TRUE(engine.arm().is_ok());
    ASSERT_TRUE(local->checkpoint_full(0.0).is_ok());
    auto snap = engine.collect(true);
    ASSERT_TRUE(snap.is_ok());
    ASSERT_TRUE(local->checkpoint_incremental(*snap, 1.0).is_ok());

    // Replicate the whole local chain to the buddy node.
    std::vector<std::string> keys;
    for (const auto& meta : local->chain()) keys.push_back(meta.key);
    ASSERT_TRUE(replicate_chain(comm, *node_store[rank], keys).is_ok())
        << "rank " << comm.rank();
  });

  // "Node 1 dies": its local store is gone.  Its buddy replicas live
  // on node 0's buddy (rank 1's buddy is rank 2) — replicas of rank r
  // live on node buddy_of(r).
  node_store[1].reset();
  int holder = buddy_of(1, kRanks);  // node 2 holds rank 1's replicas
  auto fresh = storage::make_memory_backend();
  auto recovered = recover_from_buddy(
      *node_store[static_cast<std::size_t>(holder)], 1, *fresh);
  ASSERT_TRUE(recovered.is_ok()) << recovered.status().to_string();
  EXPECT_EQ(*recovered, 2u);  // full + incremental

  auto state = restore_chain(*fresh, 1);
  ASSERT_TRUE(state.is_ok());
  const auto& data = state->blocks.begin()->second.data;
  ASSERT_EQ(data.size(), truth[1].size());
  EXPECT_EQ(std::memcmp(data.data(), truth[1].data(), data.size()), 0);
}

TEST(DisklessTest, RecoverWithoutReplicasFails) {
  auto empty = storage::make_memory_backend();
  auto dest = storage::make_memory_backend();
  EXPECT_EQ(recover_from_buddy(*empty, 5, *dest).status().code(),
            ErrorCode::kNotFound);
}

TEST(DisklessTest, AsymmetricChainLengths) {
  // Ranks replicate different numbers of objects; counts are
  // announced, so nothing deadlocks or cross-matches.
  mpi::Runtime::run(2, [](mpi::Comm& comm) {
    auto store = storage::make_memory_backend();
    int count = comm.rank() == 0 ? 3 : 1;
    std::vector<std::string> keys;
    for (int i = 0; i < count; ++i) {
      std::string key = "rank" + std::to_string(comm.rank()) + "/obj" +
                        std::to_string(i);
      auto w = store->create(key);
      ASSERT_TRUE(w.is_ok());
      std::vector<std::byte> payload(
          16 + static_cast<std::size_t>(i) * 8,
          static_cast<std::byte>(comm.rank() * 16 + i));
      ASSERT_TRUE((*w)->write(payload).is_ok());
      ASSERT_TRUE((*w)->close().is_ok());
      keys.push_back(key);
    }
    ASSERT_TRUE(replicate_chain(comm, *store, keys).is_ok());

    // Each rank now holds the other's replicas.
    int other = 1 - comm.rank();
    int expected = other == 0 ? 3 : 1;
    int found = 0;
    auto listing = store->list();
    ASSERT_TRUE(listing.is_ok());
    for (const auto& k : *listing) {
      if (k.rfind("buddy/rank" + std::to_string(other), 0) == 0) ++found;
    }
    EXPECT_EQ(found, expected);
  });
}

}  // namespace
}  // namespace ickpt::checkpoint

// Parallel encode pipeline: sharded encoding must produce output
// byte-identical to the serial writer for every thread count and
// compression setting, and the async path must round-trip through
// restore after the flush barrier.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "checkpoint/checkpointer.h"
#include "checkpoint/restore.h"
#include "common/rng.h"
#include "memtrack/explicit_engine.h"
#include "region/address_space.h"
#include "storage/backend.h"

namespace ickpt::checkpoint {
namespace {

using memtrack::ExplicitEngine;
using region::AddressSpace;
using region::AreaKind;

/// Mixed content: zero pages, constant-word (RLE) pages, random pages.
void fill_mixed(std::span<std::byte> mem, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t psize = page_size();
  for (std::size_t off = 0; off < mem.size(); off += psize) {
    auto page = mem.subspan(off, std::min(psize, mem.size() - off));
    switch (rng.next_index(4)) {
      case 0:
        std::memset(page.data(), 0, page.size());
        break;
      case 1: {
        std::uint64_t w = rng.next_u64();
        for (std::size_t i = 0; i + 8 <= page.size(); i += 8) {
          std::memcpy(page.data() + i, &w, 8);
        }
        break;
      }
      default:
        for (std::size_t i = 0; i + 8 <= page.size(); i += 8) {
          std::uint64_t w = rng.next_u64();
          std::memcpy(page.data() + i, &w, 8);
        }
        break;
    }
  }
}

std::vector<std::byte> read_all(storage::StorageBackend& backend,
                                const std::string& key) {
  auto reader = backend.open(key);
  EXPECT_TRUE(reader.is_ok()) << key;
  std::vector<std::byte> data((*reader)->size());
  std::size_t off = 0;
  while (off < data.size()) {
    auto got = (*reader)->read({data.data() + off, data.size() - off});
    EXPECT_TRUE(got.is_ok());
    if (*got == 0) break;
    off += *got;
  }
  EXPECT_EQ(off, data.size());
  return data;
}

class ParallelEncodeTest : public ::testing::Test {
 protected:
  ParallelEncodeTest() : space_(engine_, "rank0") {
    // Several blocks with ragged sizes so shard boundaries land both
    // inside and across runs.
    auto a = space_.map(37 * page_size(), AreaKind::kHeap, "a");
    auto b = space_.map(3 * page_size(), AreaKind::kMmap, "b");
    auto c = space_.map(129 * page_size(), AreaKind::kStaticData, "c");
    fill_mixed(a->mem, 1);
    fill_mixed(b->mem, 2);
    fill_mixed(c->mem, 3);
    blocks_ = {a->mem, b->mem, c->mem};
  }

  /// One dirty snapshot with scattered runs across all blocks.
  memtrack::DirtySnapshot make_dirty_snapshot() {
    EXPECT_TRUE(engine_.arm().is_ok());
    Rng rng(99);
    for (auto mem : blocks_) {
      const std::size_t pages = mem.size() / page_size();
      for (std::size_t p = 0; p < pages; ++p) {
        if (rng.next_bool(0.4)) {
          fill_mixed(mem.subspan(p * page_size(), page_size()),
                     rng.next_u64());
          engine_.note_write(mem.data() + p * page_size(), page_size());
        }
      }
    }
    auto snap = engine_.collect(true);
    EXPECT_TRUE(snap.is_ok());
    return std::move(snap.value());
  }

  /// Write full + incremental with the given options into a fresh
  /// memory backend; returns the backend for inspection.
  std::unique_ptr<storage::StorageBackend> write_chain(
      const memtrack::DirtySnapshot& snap, CheckpointerOptions opts) {
    auto backend = storage::make_memory_backend();
    auto ckpt = Checkpointer::create(space_, backend.get(), opts).value();
    EXPECT_TRUE(ckpt->checkpoint_full(0.0).is_ok());
    EXPECT_TRUE(ckpt->checkpoint_incremental(snap, 1.0).is_ok());
    EXPECT_TRUE(ckpt->flush().is_ok());
    return backend;
  }

  ExplicitEngine engine_;
  AddressSpace space_;
  std::vector<std::span<std::byte>> blocks_;
};

TEST_F(ParallelEncodeTest, OutputByteIdenticalToSerial) {
  auto snap = make_dirty_snapshot();
  for (bool compress : {true, false}) {
    CheckpointerOptions serial;
    serial.compress = compress;
    serial.encode_threads = 1;
    auto reference = write_chain(snap, serial);
    auto keys = reference->list();
    ASSERT_TRUE(keys.is_ok());
    ASSERT_EQ(keys->size(), 2u);

    for (int threads : {2, 8}) {
      CheckpointerOptions parallel = serial;
      parallel.encode_threads = threads;
      auto got = write_chain(snap, parallel);
      for (const auto& key : *keys) {
        EXPECT_EQ(read_all(*got, key), read_all(*reference, key))
            << "threads=" << threads << " compress=" << compress
            << " key=" << key;
      }
    }
  }
}

TEST_F(ParallelEncodeTest, ParallelChainRoundTripsThroughRestore) {
  auto snap = make_dirty_snapshot();
  CheckpointerOptions opts;
  opts.encode_threads = 8;
  auto backend = write_chain(snap, opts);

  auto state = restore_chain(*backend, 0);
  ASSERT_TRUE(state.is_ok());
  auto live = space_.blocks();
  ASSERT_EQ(state->blocks.size(), live.size());
  for (const auto& info : live) {
    auto it = state->blocks.find(info.id);
    ASSERT_NE(it, state->blocks.end());
    auto span = space_.block_span(info.id);
    ASSERT_TRUE(span.is_ok());
    ASSERT_EQ(it->second.data.size(), span->size());
    EXPECT_EQ(std::memcmp(it->second.data.data(), span->data(),
                          span->size()),
              0)
        << "block " << info.id;
  }
}

TEST_F(ParallelEncodeTest, AsyncMatchesSyncAndRestores) {
  auto snap = make_dirty_snapshot();
  CheckpointerOptions sync_opts;
  auto reference = write_chain(snap, sync_opts);

  CheckpointerOptions async_opts;
  async_opts.async = true;
  async_opts.encode_threads = 4;
  auto got = write_chain(snap, async_opts);  // write_chain flushes

  auto keys = reference->list();
  ASSERT_TRUE(keys.is_ok());
  for (const auto& key : *keys) {
    EXPECT_EQ(read_all(*got, key), read_all(*reference, key)) << key;
  }
  EXPECT_TRUE(restore_chain(*got, 0).is_ok());
}

TEST_F(ParallelEncodeTest, AsyncSurfacesBackendErrorAtFlush) {
  auto backend = storage::make_memory_backend();
  storage::FaultyBackend faulty(*backend, /*fail_after_bytes=*/page_size());
  CheckpointerOptions opts;
  opts.async = true;
  auto ckpt = Checkpointer::create(space_, &faulty, opts).value();
  // Encode succeeds into memory; the device error appears at the
  // barrier, not before.
  auto meta = ckpt->checkpoint_full(0.0);
  ASSERT_TRUE(meta.is_ok());
  auto flushed = ckpt->flush();
  EXPECT_FALSE(flushed.is_ok());
  EXPECT_EQ(flushed.code(), ErrorCode::kIoError);
}

TEST_F(ParallelEncodeTest, EmptyIncrementalParallelMatchesSerial) {
  // No dirty pages at all: headers-only object, zero shards.
  memtrack::DirtySnapshot empty;
  CheckpointerOptions serial;
  auto a = write_chain(empty, serial);
  CheckpointerOptions parallel;
  parallel.encode_threads = 8;
  auto b = write_chain(empty, parallel);
  auto keys = a->list();
  ASSERT_TRUE(keys.is_ok());
  for (const auto& key : *keys) {
    EXPECT_EQ(read_all(*b, key), read_all(*a, key)) << key;
  }
}

}  // namespace
}  // namespace ickpt::checkpoint
